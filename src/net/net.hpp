// Network backend layer (paper Sec. 4.2).
//
// LCI isolates network backends from the core runtime behind a thin wrapper
// operating on two resources: a *network context* (global resources; one per
// LCI runtime) and a *network device* (critical-path resources; one per LCI
// device). The backend must support posting send/recv/write/read, polling a
// completion queue, and (de)registering memory; it does NOT need tag matching
// or unexpected-message handling — the LCI progress engine keeps enough
// receives pre-posted.
//
// The paper's backends are libibverbs (ibv) and libfabric (ofi). This
// reproduction has no RDMA hardware, so the backend here is a *simulated
// fabric*: an in-process network connecting N simulated ranks. What the
// simulation preserves — deliberately, because it is what the paper's
// multithreaded evaluation measures — is the *lock granularity* of the two
// real backends:
//
//  * lock_model_t::ibv — mirrors the mlx5 provider analysis of Sec. 4.2.3:
//    each queue pair, the shared receive queue, and the completion queue are
//    protected by their own spinlock, shadowed at this layer by try-lock
//    wrappers. The `td_strategy_t` attribute reproduces `ibv_td_strategy`:
//    `per_qp` gives every QP its own lock, `all_qp` one lock for all QPs of a
//    device, `none` additionally funnels all sends in the fabric through a
//    shared "uUAR" lock (modelling driver-owned hardware resources shared
//    across queue pairs).
//
//  * lock_model_t::ofi — mirrors the cxi/verbs provider analysis of
//    Sec. 4.2.4: one endpoint spinlock serializes post_send/post_recv and
//    poll_cq alike.
//
// Data movement itself is memcpy: sends copy through per-device "wire"
// mailboxes (lock-free FAA queues standing in for NIC DMA engines, so the
// wire adds no host-lock contention), and RDMA write/read directly access
// remote *registered* memory with bounds checks.
//
// Beyond the simulation, two *real* multi-process backends implement the same
// contract (see docs/INTERNALS.md "Net backends"):
//
//  * backend_t::shm — per-peer ring buffers in a POSIX shared-memory segment
//    with futex doorbells; peer death is a tombstone word in the segment.
//  * backend_t::tcp — nonblocking loopback sockets, length-prefixed framing,
//    a writev-style sender and an epoll-driven ingress pump; peer death is a
//    hangup / ECONNRESET on the connection.
//
// Both are selected per process with the runtime attr `backend` (env default
// LCI_BACKEND) and bootstrapped from LCI_RANK / LCI_NRANKS / LCI_JOB_DIR —
// the environment scripts/launch_local.sh sets up for each forked rank.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

namespace lci::net {

using mr_id_t = uint32_t;
inline constexpr mr_id_t invalid_mr = ~uint32_t{0};

// Which transport implements the fabric contract below.
enum class backend_t : uint8_t { sim, shm, tcp };

const char* to_string(backend_t backend) noexcept;
// Parses "sim" / "shm" / "tcp" (case-sensitive). Returns false on anything
// else; *out is untouched then.
bool backend_from_string(const char* name, backend_t* out) noexcept;
// LCI_BACKEND environment default ("" / unset = sim). Throws fatal on an
// unknown value — a typo silently falling back to sim would "pass" a
// multi-process job without any processes talking to each other.
backend_t backend_env_default();

enum class lock_model_t : uint8_t { ibv, ofi };
enum class td_strategy_t : uint8_t { per_qp, all_qp, none };

// Deterministic fault injection. Under organic load the fabric returns
// retry_lock / retry_full only on rare real contention, which leaves the
// runtime's backlog and retry paths nearly untested. This policy lets a
// per-device, seeded RNG force those results on demand:
//
//  * retry_rate — probability that post_send/post_write/post_read bounces
//    with a retry result before touching any fabric state (split between
//    retry_lock and retry_full by lock_fraction),
//  * send_depth / wire_depth — shrink the effective send-queue and
//    wire-mailbox depths used by the backpressure checks, forcing organic
//    retry_full under modest traffic,
//  * delay_rate / delay_polls — hold a wire message back for a number of
//    delivery attempts (per-sender FIFO order is preserved, so this models
//    slow links at the completion-visibility level, not reordering),
//  * kill_rank / kill_after_ops — deterministic peer death: once the doomed
//    rank's devices have completed kill_after_ops successful posts (0 = dead
//    from the start), the rank dies fabric-wide. Posts naming it (and posts
//    it makes) return peer_down, and messages already queued to or from it
//    evaporate as silent wire drops,
//  * loss_rate — per-message probability that a wire push is accepted but the
//    message silently evaporates (models a lossy link; the sender sees ok).
//
// Each device derives its RNG stream from (seed, rank, context, device
// index), so a single-threaded replay is bit-reproducible; multithreaded
// runs keep per-device determinism of the decision sequence while the
// interleaving chooses which operation draws each decision.
struct fault_config_t {
  double retry_rate = 0.0;     // [0,1] forced-retry probability per post
  double lock_fraction = 0.5;  // injected retries reported as retry_lock
  uint64_t seed = 0x5eed5eedull;
  // Cap on injected retries per device (0 = unlimited). A nonzero cap
  // guarantees forward progress even at retry_rate == 1.0.
  uint64_t max_faults = 0;
  std::size_t send_depth = 0;  // 0 = use config_t::cq_depth
  std::size_t wire_depth = 0;  // 0 = use config_t::wire_depth
  double delay_rate = 0.0;     // [0,1] per-message delivery-delay probability
  uint32_t delay_polls = 4;    // delivery attempts a delayed message skips
  // Peer-death schedule: rank to kill (-1 = nobody) and the number of
  // successful posts its devices complete before dying (0 = dead at start).
  int kill_rank = -1;
  uint64_t kill_after_ops = 0;
  // Silent wire-drop probability per message (the sender still sees ok).
  double loss_rate = 0.0;
  // Transport-specific faults (ignored by the sim backend):
  //  * tcp_reset_rate — per-flush probability that a peer link is torn down
  //    as if the connection had been reset (both sides observe peer death),
  //  * tcp_short_write_rate — per-flush probability that only a prefix of the
  //    staged bytes is handed to the socket (exercises partial-send resume),
  //  * shm_ring_shrink — when nonzero, the producer-side capacity check
  //    pretends each ring holds only this many bytes (clamped so any single
  //    frame still fits), forcing backpressure under modest traffic.
  double tcp_reset_rate = 0.0;
  double tcp_short_write_rate = 0.0;
  std::size_t shm_ring_shrink = 0;

  bool enabled() const {
    return retry_rate > 0.0 || send_depth != 0 || wire_depth != 0 ||
           delay_rate > 0.0 || kill_rank >= 0 || loss_rate > 0.0 ||
           tcp_reset_rate > 0.0 || tcp_short_write_rate > 0.0 ||
           shm_ring_shrink != 0;
  }
};

struct config_t {
  lock_model_t lock_model = lock_model_t::ibv;
  td_strategy_t td_strategy = td_strategy_t::per_qp;
  // Per-device completion-queue depth; a full CQ back-pressures sends.
  std::size_t cq_depth = 65536;
  // Per-device wire-mailbox depth; a full mailbox back-pressures senders
  // (models NIC flow control / RNR).
  std::size_t wire_depth = 65536;
  // Max entries delivered from the wire per poll (models NIC event burst).
  std::size_t poll_burst = 64;
  // Optional timing model: when nonzero, a message becomes deliverable at
  // send-time + latency + size/bandwidth. Zero (default) = instantaneous
  // wire, the pure lock-structure model. RDMA data movement itself stays
  // synchronous; notifications ride the modelled wire, which approximates
  // transfer time at the completion-visibility level.
  double latency_us = 0.0;
  double bandwidth_gbps = 0.0;  // 0 = infinite
  // Deterministic fault injection (off by default; see fault_config_t).
  fault_config_t fault{};
  // Heartbeat liveness timeout for the real backends (0 = off, the default):
  // a peer not heard from (no frames, no beacons, no shm progress-epoch
  // advance) for this long is declared dead, feeding the same death-epoch
  // purge a crash does. The sim backend ignores it (threads in one process
  // cannot be partitioned). Env default: LCI_PEER_TIMEOUT_MS.
  uint64_t peer_timeout_us = 0;
};

// Completion kinds. `remote_write` / `remote_read` are target-side
// notifications generated by write-with-immediate and read-with-notification
// (the latter is an extension the paper's interconnects lacked).
enum class op_t : uint8_t { send, recv, write, read, remote_write, remote_read };

// Wakeup doorbell: the owner of a device may register one; the backend rings
// it whenever new work lands on the device that a future poll_cq would
// observe (a wire arrival pushed by a peer, or a local completion that needs
// dispatching). ring() must be cheap, non-blocking for the common case, and
// safe from any thread — it is called from *senders'* critical paths. It is a
// hint, not a guarantee of exactly-once: spurious rings are fine, and owners
// that sleep on it must bound the sleep (see core/progress_engine.hpp).
class doorbell_t {
 public:
  virtual ~doorbell_t() = default;
  virtual void ring() noexcept = 0;
};

enum class post_result_t : uint8_t {
  ok,
  retry_lock,  // try-lock wrapper missed (Sec. 4.2.2)
  retry_full,  // send queue / wire mailbox full
  retry_nobuf, // no pre-posted receive available (only from post paths)
  peer_down    // the named peer (or this rank itself) is dead — never retry
};

struct cqe_t {
  op_t op{};
  int peer_rank = -1;
  uint32_t imm = 0;
  std::size_t length = 0;
  void* buffer = nullptr;        // recv: buffer the payload landed in
  void* user_context = nullptr;  // cookie from the posting call
};

struct poll_result_t {
  std::size_t count = 0;
  bool lock_missed = false;  // poll try-lock failed; caller should retry later
};

class device_t {
 public:
  virtual ~device_t() = default;

  // Index of this device within its rank (routing key: messages sent from
  // device i arrive at the target rank's device i mod device-count).
  virtual int index() const = 0;

  virtual post_result_t post_recv(void* buffer, std::size_t size,
                                  void* user_context) = 0;
  virtual post_result_t post_send(int peer_rank, const void* buffer,
                                  std::size_t size, uint32_t imm,
                                  void* user_context) = 0;
  virtual post_result_t post_write(int peer_rank, const void* local,
                                   std::size_t size, mr_id_t remote_mr,
                                   std::size_t remote_offset, bool notify,
                                   uint32_t imm, void* user_context) = 0;
  virtual post_result_t post_read(int peer_rank, void* local, std::size_t size,
                                  mr_id_t remote_mr, std::size_t remote_offset,
                                  bool notify, uint32_t imm,
                                  void* user_context) = 0;
  virtual poll_result_t poll_cq(cqe_t* out, std::size_t max) = 0;

  // Diagnostics.
  virtual std::size_t preposted_recvs() const = 0;
  // Retries forced by the fault-injection policy on this device (0 when
  // injection is off or the backend does not support it).
  virtual uint64_t injected_faults() const { return 0; }
  // Peer-failure reporting. is_peer_down answers for a specific rank;
  // death_epoch is a fabric-wide counter bumped on every kill, letting owners
  // detect "somebody died since I last looked" with one relaxed load.
  virtual bool is_peer_down(int rank) const {
    (void)rank;
    return false;
  }
  virtual uint64_t death_epoch() const { return 0; }
  // Wire messages that evaporated at this device (loss_rate drops plus
  // messages discarded because an endpoint was dead).
  virtual uint64_t wire_dropped() const { return 0; }

  // Registers (nullptr: clears) the wakeup doorbell. The doorbell must
  // outlive the device or be cleared before it dies; backends without wakeup
  // support may ignore it (owners fall back to bounded sleeps).
  virtual void set_doorbell(doorbell_t* doorbell) { (void)doorbell; }

  // Single-consumer completion-queue mode (opt-in). An owner that guarantees
  // at most one thread drains this device's CQ at a time — e.g. a sharded
  // device whose progress loop claims each shard's CQ through a cursor — may
  // enable this during setup, before any traffic flows. Backends that honour
  // it replace the lock-model CQ lock with a bounded lock-free MPSC queue: a
  // CAS-claimed consumer, lock-free producers, and an RMW-free empty fast
  // path for idle polls. Backends without such a mode ignore the call, and
  // the default-off state is bit-identical to the pre-MPSC behavior.
  virtual void set_single_consumer(bool enable) { (void)enable; }
};

class context_t {
 public:
  virtual ~context_t() = default;
  virtual int rank() const = 0;
  virtual int nranks() const = 0;
  virtual std::unique_ptr<device_t> create_device() = 0;
  // Registration is required before memory may be the target of remote
  // write/read. Throws std::out_of_range on remote bounds violations at
  // access time.
  virtual mr_id_t register_memory(void* base, std::size_t size) = 0;
  virtual void deregister_memory(mr_id_t id) = 0;
};

// Transport-health statistics, read at counter-snapshot time (never reset):
// heartbeat beacons this process emitted, peers this process declared dead by
// liveness timeout, and producer waits on a full SHM ring (futex-backed
// backpressure). All zero on backends without the machinery (sim).
struct fabric_health_t {
  uint64_t heartbeats_sent = 0;
  uint64_t peers_timed_out = 0;
  uint64_t backpressure_waits = 0;
};

class fabric_t {
 public:
  virtual ~fabric_t() = default;
  virtual backend_t kind() const = 0;
  virtual int nranks() const = 0;
  virtual const config_t& config() const = 0;
  virtual fabric_health_t health() const { return {}; }
  virtual std::unique_ptr<context_t> create_context(int rank) = 0;
  // Largest single post_send payload the transport can ever carry. Sends are
  // not chunked (only write/read are), so a frame above this bound would be
  // rejected with retry_full forever — owners must validate their eager
  // frame size against it up front. SIZE_MAX when unbounded (sim).
  virtual std::size_t max_send_payload() const { return SIZE_MAX; }
  // Test hook: kills a rank at runtime, independent of the kill schedule.
  // Returns false if the backend cannot (or the rank is already dead).
  // sim and shm kill any rank fabric-wide. tcp kills its own rank directly
  // (sockets hang up, peers observe it); a *remote* rank is killed by sending
  // it a poison control frame — the victim shuts its sockets down on receipt,
  // with a local-timeout fallback at the caller in case the victim never
  // reacts — so the call returns true once the poison is on its way, before
  // the death is globally visible.
  virtual bool kill_rank(int rank) {
    (void)rank;
    return false;
  }
};

// Factory for the simulated fabric.
std::shared_ptr<fabric_t> create_sim_fabric(int nranks,
                                            const config_t& config = {});

// Rank / size of the calling process per the bootstrap environment
// (LCI_RANK / LCI_NRANKS; 0 / 1 when unset).
int bootstrap_rank();
int bootstrap_nranks();

// Fault policy from the environment, overlaid on `base`: LCI_FAULT_LOSS_RATE,
// LCI_FAULT_DELAY_RATE, LCI_FAULT_DELAY_POLLS, LCI_FAULT_RETRY_RATE,
// LCI_FAULT_LOCK_FRACTION, LCI_FAULT_SEED, LCI_FAULT_MAX,
// LCI_FAULT_KILL_RANK, LCI_FAULT_KILL_AFTER_OPS, LCI_FAULT_TCP_RESET_RATE,
// LCI_FAULT_TCP_SHORT_WRITE_RATE, LCI_FAULT_SHM_RING_SHRINK. This is how a
// launch_local.sh job (forked ranks, env contract) injects faults into the
// real backends, where no in-process config handoff exists.
fault_config_t fault_env_config(const fault_config_t& base = {});

// LCI_PEER_TIMEOUT_MS converted to microseconds (0 when unset/empty).
uint64_t peer_timeout_env_us();

// Generic factory. For sim this is a single-rank in-process fabric (threads
// join ranks via lci::sim::world_t instead); for shm/tcp it builds the
// calling process's endpoint of the job described by the bootstrap
// environment and blocks until all ranks have connected.
std::shared_ptr<fabric_t> create_fabric(backend_t backend,
                                        const config_t& config = {});

}  // namespace lci::net
