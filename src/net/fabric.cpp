#include <chrono>
#include <mutex>
#include <stdexcept>
#include <string>

#include "net/sim_fabric.hpp"
#include "util/backoff.hpp"

namespace lci::net {

std::shared_ptr<fabric_t> create_sim_fabric(int nranks,
                                            const config_t& config) {
  if (nranks <= 0) throw std::invalid_argument("fabric needs >= 1 rank");
  return std::make_shared<detail::sim_fabric_t>(nranks, config);
}

namespace detail {

sim_fabric_t::sim_fabric_t(int nranks, const config_t& config)
    : nranks_(nranks), config_(config) {
  ranks_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r)
    ranks_.push_back(std::make_unique<rank_state_t>());
  const fault_config_t& fault = config_.fault;
  if (fault.kill_rank >= 0 && fault.kill_rank < nranks &&
      fault.kill_after_ops == 0) {
    // Dead from the start: no devices exist yet, so no doorbells to ring.
    ranks_[static_cast<std::size_t>(fault.kill_rank)]->dead.store(
        true, std::memory_order_release);
    death_epoch_.fetch_add(1, std::memory_order_release);
  }
}

sim_fabric_t::~sim_fabric_t() = default;

std::unique_ptr<context_t> sim_fabric_t::create_context(int rank) {
  if (rank < 0 || rank >= nranks_)
    throw std::out_of_range("context rank out of range");
  return std::make_unique<sim_context_t>(shared_from_this(), rank,
                                         next_context_index(rank));
}

int sim_fabric_t::next_context_index(int rank) {
  rank_state_t& state = *ranks_[static_cast<std::size_t>(rank)];
  std::lock_guard<util::spinlock_t> guard(state.context_lock);
  const int index = state.next_context++;
  state.context_storage.push_back(std::make_unique<context_devices_t>());
  state.contexts.put_extend(static_cast<std::size_t>(index),
                            state.context_storage.back().get());
  return index;
}

int sim_fabric_t::register_device(int rank, int context,
                                  sim_device_t* device) {
  rank_state_t& state = *ranks_[static_cast<std::size_t>(rank)];
  context_devices_t* slot =
      state.contexts.get(static_cast<std::size_t>(context));
  return static_cast<int>(slot->devices.push_back(device));
}

void sim_fabric_t::publish_device(int rank, int context, int index,
                                  sim_device_t* device) {
  rank_state_t& state = *ranks_[static_cast<std::size_t>(rank)];
  context_devices_t* slot =
      state.contexts.get(static_cast<std::size_t>(context));
  slot->devices.put(static_cast<std::size_t>(index), device);
}

void sim_fabric_t::unregister_device(int rank, int context, int index) {
  rank_state_t& state = *ranks_[static_cast<std::size_t>(rank)];
  context_devices_t* slot =
      state.contexts.get(static_cast<std::size_t>(context));
  slot->devices.put(static_cast<std::size_t>(index), nullptr);
  // Drain peers still pinned inside route() -> wire_push() -> doorbell ring:
  // they routed before the slot was cleared and may hold a pointer to this
  // device. After the count hits zero no such pointer survives. Pins span a
  // single post call, so this wait is short and cannot deadlock (a pinned
  // thread never unregisters or blocks on teardown).
  util::backoff_t backoff;
  while (state.route_pins.load(std::memory_order_acquire) != 0)
    backoff.spin();
}

sim_device_t* sim_fabric_t::route(int rank, int context,
                                  int src_index) const {
  const rank_state_t& state = *ranks_[static_cast<std::size_t>(rank)];
  if (static_cast<std::size_t>(context) >= state.contexts.size())
    return nullptr;  // the peer has not created this context yet
  const context_devices_t* slot =
      state.contexts.get(static_cast<std::size_t>(context));
  if (slot == nullptr) return nullptr;
  const auto& devices = slot->devices;
  const std::size_t n = devices.size();
  if (n == 0) return nullptr;
  const std::size_t start = static_cast<std::size_t>(src_index) % n;
  for (std::size_t k = 0; k < n; ++k) {
    if (sim_device_t* d = devices.get((start + k) % n)) return d;
  }
  return nullptr;
}

bool sim_fabric_t::kill_rank(int rank) {
  if (rank < 0 || rank >= nranks_) return false;
  rank_state_t& victim = *ranks_[static_cast<std::size_t>(rank)];
  bool expected = false;
  if (!victim.dead.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel))
    return false;  // already dead
  death_epoch_.fetch_add(1, std::memory_order_release);
  // Wake every live device: sleeping progress engines must notice the epoch
  // bump and run the dead-peer purge. The pin keeps each rank's devices (and
  // their doorbells) alive across the ring, exactly like a send path would.
  for (int r = 0; r < nranks_; ++r) {
    rank_state_t& state = *ranks_[static_cast<std::size_t>(r)];
    auto pin = pin_route(r);
    const std::size_t ncontexts = state.contexts.size();
    for (std::size_t c = 0; c < ncontexts; ++c) {
      const context_devices_t* slot = state.contexts.get(c);
      if (slot == nullptr) continue;
      const std::size_t n = slot->devices.size();
      for (std::size_t i = 0; i < n; ++i) {
        if (sim_device_t* d = slot->devices.get(i)) d->ring_doorbell();
      }
    }
  }
  return true;
}

void sim_fabric_t::note_post(int rank) {
  const fault_config_t& fault = config_.fault;
  if (fault.kill_rank != rank) return;
  if (is_dead(rank)) return;
  if (kill_ops_posted_.fetch_add(1, std::memory_order_acq_rel) + 1 >=
      fault.kill_after_ops)
    kill_rank(rank);
}

uint64_t sim_fabric_t::ready_time_ns(std::size_t size) const {
  if (config_.latency_us <= 0.0 && config_.bandwidth_gbps <= 0.0) return 0;
  const auto now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  double delay_ns = config_.latency_us * 1e3;
  if (config_.bandwidth_gbps > 0.0)
    delay_ns += static_cast<double>(size) / config_.bandwidth_gbps;  // B/GBps = ns
  return now + static_cast<uint64_t>(delay_ns);
}

mr_id_t sim_fabric_t::register_memory(int rank, void* base, std::size_t size) {
  rank_state_t& state = *ranks_[static_cast<std::size_t>(rank)];
  std::lock_guard<util::spinlock_t> guard(state.mr_lock);
  mr_record_t* record;
  mr_id_t id;
  if (!state.mr_freelist.empty()) {
    id = state.mr_freelist.back();
    state.mr_freelist.pop_back();
    record = state.mrs.get(id);
  } else {
    state.mr_storage.push_back(std::make_unique<mr_record_t>());
    record = state.mr_storage.back().get();
    id = static_cast<mr_id_t>(state.mrs.push_back(record));
  }
  record->base = base;
  record->size = size;
  record->valid.store(true, std::memory_order_release);
  return id;
}

void sim_fabric_t::deregister_memory(int rank, mr_id_t id) {
  rank_state_t& state = *ranks_[static_cast<std::size_t>(rank)];
  std::lock_guard<util::spinlock_t> guard(state.mr_lock);
  mr_record_t* record = state.mrs.get(id);
  if (record == nullptr || !record->valid.load(std::memory_order_acquire))
    throw std::invalid_argument("deregistering an unregistered MR");
  record->valid.store(false, std::memory_order_release);
  state.mr_freelist.push_back(id);
}

char* sim_fabric_t::resolve_remote(int rank, mr_id_t id, std::size_t offset,
                                   std::size_t size) const {
  const rank_state_t& state = *ranks_[static_cast<std::size_t>(rank)];
  mr_record_t* record = id < state.mrs.size() ? state.mrs.get(id) : nullptr;
  if (record == nullptr || !record->valid.load(std::memory_order_acquire))
    throw std::invalid_argument("remote access to an unregistered MR (rank " +
                                std::to_string(rank) + ", mr " +
                                std::to_string(id) + ")");
  if (offset > record->size || size > record->size - offset)
    throw std::out_of_range("remote access beyond the registered region");
  return static_cast<char*>(record->base) + offset;
}

int sim_context_t::nranks() const { return fabric_->nranks(); }

std::unique_ptr<device_t> sim_context_t::create_device() {
  return std::make_unique<sim_device_t>(fabric_.get(), rank_, index_);
}

mr_id_t sim_context_t::register_memory(void* base, std::size_t size) {
  return fabric_->register_memory(rank_, base, size);
}

void sim_context_t::deregister_memory(mr_id_t id) {
  fabric_->deregister_memory(rank_, id);
}

}  // namespace detail
}  // namespace lci::net
