// Backend selection: names, the LCI_BACKEND environment default, and the
// generic fabric factory dispatching to sim / shm / tcp.
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "net/bootstrap.hpp"
#include "net/ep_common.hpp"
#include "net/net.hpp"

namespace lci::net {

const char* to_string(backend_t backend) noexcept {
  switch (backend) {
    case backend_t::sim:
      return "sim";
    case backend_t::shm:
      return "shm";
    case backend_t::tcp:
      return "tcp";
  }
  return "?";
}

bool backend_from_string(const char* name, backend_t* out) noexcept {
  if (name == nullptr || out == nullptr) return false;
  if (std::strcmp(name, "sim") == 0) {
    *out = backend_t::sim;
    return true;
  }
  if (std::strcmp(name, "shm") == 0) {
    *out = backend_t::shm;
    return true;
  }
  if (std::strcmp(name, "tcp") == 0) {
    *out = backend_t::tcp;
    return true;
  }
  return false;
}

backend_t backend_env_default() {
  const char* env = std::getenv("LCI_BACKEND");
  if (env == nullptr || env[0] == '\0') return backend_t::sim;
  backend_t backend;
  if (!backend_from_string(env, &backend))
    throw std::runtime_error(
        std::string("LCI_BACKEND must be sim, shm, or tcp (got \"") + env +
        "\")");
  return backend;
}

int bootstrap_rank() { return bootstrap::rank(); }
int bootstrap_nranks() { return bootstrap::nranks(); }

std::shared_ptr<fabric_t> create_fabric(backend_t backend,
                                        const config_t& config) {
  switch (backend) {
    case backend_t::sim:
      // One in-process rank; multi-rank sim worlds are built explicitly via
      // create_sim_fabric (lci::sim::world_t).
      return create_sim_fabric(1, config);
    case backend_t::shm:
      return detail::create_shm_fabric(bootstrap::rank(), bootstrap::nranks(),
                                       config);
    case backend_t::tcp:
      return detail::create_tcp_fabric(bootstrap::rank(), bootstrap::nranks(),
                                       config);
  }
  throw std::runtime_error("create_fabric: unknown backend");
}

}  // namespace lci::net
