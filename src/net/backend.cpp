// Backend selection: names, the LCI_BACKEND environment default, and the
// generic fabric factory dispatching to sim / shm / tcp.
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "net/bootstrap.hpp"
#include "net/ep_common.hpp"
#include "net/net.hpp"

namespace lci::net {

const char* to_string(backend_t backend) noexcept {
  switch (backend) {
    case backend_t::sim:
      return "sim";
    case backend_t::shm:
      return "shm";
    case backend_t::tcp:
      return "tcp";
  }
  return "?";
}

bool backend_from_string(const char* name, backend_t* out) noexcept {
  if (name == nullptr || out == nullptr) return false;
  if (std::strcmp(name, "sim") == 0) {
    *out = backend_t::sim;
    return true;
  }
  if (std::strcmp(name, "shm") == 0) {
    *out = backend_t::shm;
    return true;
  }
  if (std::strcmp(name, "tcp") == 0) {
    *out = backend_t::tcp;
    return true;
  }
  return false;
}

backend_t backend_env_default() {
  const char* env = std::getenv("LCI_BACKEND");
  if (env == nullptr || env[0] == '\0') return backend_t::sim;
  backend_t backend;
  if (!backend_from_string(env, &backend))
    throw std::runtime_error(
        std::string("LCI_BACKEND must be sim, shm, or tcp (got \"") + env +
        "\")");
  return backend;
}

int bootstrap_rank() { return bootstrap::rank(); }
int bootstrap_nranks() { return bootstrap::nranks(); }

namespace {

double env_rate(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  const double v = std::atof(env);
  return v >= 0.0 ? v : fallback;
}

uint64_t env_u64(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  const long long v = std::atoll(env);
  return v >= 0 ? static_cast<uint64_t>(v) : fallback;
}

}  // namespace

fault_config_t fault_env_config(const fault_config_t& base) {
  fault_config_t fault = base;
  fault.loss_rate = env_rate("LCI_FAULT_LOSS_RATE", fault.loss_rate);
  fault.delay_rate = env_rate("LCI_FAULT_DELAY_RATE", fault.delay_rate);
  fault.delay_polls = static_cast<uint32_t>(
      env_u64("LCI_FAULT_DELAY_POLLS", fault.delay_polls));
  fault.retry_rate = env_rate("LCI_FAULT_RETRY_RATE", fault.retry_rate);
  fault.lock_fraction =
      env_rate("LCI_FAULT_LOCK_FRACTION", fault.lock_fraction);
  fault.seed = env_u64("LCI_FAULT_SEED", fault.seed);
  fault.max_faults = env_u64("LCI_FAULT_MAX", fault.max_faults);
  const char* kill = std::getenv("LCI_FAULT_KILL_RANK");
  if (kill != nullptr && kill[0] != '\0') fault.kill_rank = std::atoi(kill);
  fault.kill_after_ops =
      env_u64("LCI_FAULT_KILL_AFTER_OPS", fault.kill_after_ops);
  fault.tcp_reset_rate =
      env_rate("LCI_FAULT_TCP_RESET_RATE", fault.tcp_reset_rate);
  fault.tcp_short_write_rate =
      env_rate("LCI_FAULT_TCP_SHORT_WRITE_RATE", fault.tcp_short_write_rate);
  fault.shm_ring_shrink = static_cast<std::size_t>(
      env_u64("LCI_FAULT_SHM_RING_SHRINK", fault.shm_ring_shrink));
  return fault;
}

uint64_t peer_timeout_env_us() {
  return env_u64("LCI_PEER_TIMEOUT_MS", 0) * 1000;
}

std::shared_ptr<fabric_t> create_fabric(backend_t backend,
                                        const config_t& config) {
  switch (backend) {
    case backend_t::sim:
      // One in-process rank; multi-rank sim worlds are built explicitly via
      // create_sim_fabric (lci::sim::world_t).
      return create_sim_fabric(1, config);
    case backend_t::shm:
    case backend_t::tcp: {
      // Real backends are created from the forked-child env contract, so the
      // fault policy and liveness timeout ride the environment too.
      config_t real = config;
      real.fault = fault_env_config(real.fault);
      if (real.peer_timeout_us == 0)
        real.peer_timeout_us = peer_timeout_env_us();
      // Taken before any handshake wait: a rank that dies mid-handshake is
      // detected by its peers' bootstrap probes instead of a blind timeout.
      bootstrap::announce_self();
      return backend == backend_t::shm
                 ? detail::create_shm_fabric(bootstrap::rank(),
                                             bootstrap::nranks(), real)
                 : detail::create_tcp_fabric(bootstrap::rank(),
                                             bootstrap::nranks(), real);
    }
  }
  throw std::runtime_error("create_fabric: unknown backend");
}

}  // namespace lci::net
