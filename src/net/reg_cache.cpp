#include "net/reg_cache.hpp"

#include <mutex>

namespace lci::net {

reg_cache_t::~reg_cache_t() {
  // Deregister whatever is resident. Entries still referenced at teardown
  // are a caller bug (a release was lost); deregistering anyway keeps the
  // fabric's MR table clean for the teardown-order audit.
  for (const auto& kv : by_base_) context_->deregister_memory(kv.second.mr);
}

reg_handle_t reg_cache_t::acquire(void* base, std::size_t size) {
  if (capacity_ == 0) return {context_->register_memory(base, size), 0};
  const uintptr_t lo = reinterpret_cast<uintptr_t>(base);
  std::unique_lock<util::spinlock_t> guard(lock_);
  // Covering interval: the greatest entry starting at or below `lo`.
  auto it = by_base_.upper_bound(lo);
  if (it != by_base_.begin()) {
    --it;
    entry_t& entry = it->second;
    const uintptr_t entry_lo = reinterpret_cast<uintptr_t>(entry.base);
    if (lo >= entry_lo && lo - entry_lo + size <= entry.size) {
      ++entry.refs;
      ++hits_;
      return {entry.mr, static_cast<std::size_t>(lo - entry_lo)};
    }
  }
  // An idle entry at the same base that is too small blocks the slot —
  // retire it and register the larger range in its place. A *referenced*
  // blocking entry cannot be retired; spill to an uncached registration.
  auto same = by_base_.find(lo);
  if (same != by_base_.end()) {
    if (same->second.refs != 0) {
      ++misses_;
      guard.unlock();
      return {context_->register_memory(base, size), 0};
    }
    context_->deregister_memory(same->second.mr);
    by_mr_.erase(same->second.mr);
    by_base_.erase(same);
    ++evictions_;
  }
  ++misses_;
  guard.unlock();
  // Register outside the lock: the fabric call may take its own locks and
  // nothing below depends on the map staying unchanged meanwhile.
  const mr_id_t mr = context_->register_memory(base, size);
  guard.lock();
  entry_t entry;
  entry.base = base;
  entry.size = size;
  entry.mr = mr;
  entry.refs = 1;
  auto inserted = by_base_.emplace(lo, entry);
  if (!inserted.second) {
    // Lost a race for the slot while unlocked; keep ours as uncached.
    return {mr, 0};
  }
  by_mr_.emplace(mr, lo);
  if (by_base_.size() > capacity_) evict_lru_locked();
  return {mr, 0};
}

void reg_cache_t::release(mr_id_t id) {
  if (capacity_ != 0) {
    std::unique_lock<util::spinlock_t> guard(lock_);
    auto it = by_mr_.find(id);
    if (it != by_mr_.end()) {
      entry_t& entry = by_base_.at(it->second);
      if (entry.refs > 0) --entry.refs;
      if (entry.refs == 0) entry.last_use = ++tick_;
      return;  // stays resident for reuse
    }
  }
  // Unknown to the cache: a direct or spilled registration.
  context_->deregister_memory(id);
}

void reg_cache_t::flush() {
  std::unique_lock<util::spinlock_t> guard(lock_);
  for (auto it = by_base_.begin(); it != by_base_.end();) {
    if (it->second.refs == 0) {
      context_->deregister_memory(it->second.mr);
      by_mr_.erase(it->second.mr);
      it = by_base_.erase(it);
    } else {
      ++it;
    }
  }
}

reg_cache_t::stats_t reg_cache_t::stats() const {
  std::unique_lock<util::spinlock_t> guard(lock_);
  stats_t out;
  out.hits = hits_;
  out.misses = misses_;
  out.evictions = evictions_;
  out.entries = by_base_.size();
  return out;
}

void reg_cache_t::evict_lru_locked() {
  while (by_base_.size() > capacity_) {
    auto victim = by_base_.end();
    for (auto it = by_base_.begin(); it != by_base_.end(); ++it) {
      if (it->second.refs != 0) continue;
      if (victim == by_base_.end() ||
          it->second.last_use < victim->second.last_use)
        victim = it;
    }
    if (victim == by_base_.end()) return;  // everything referenced; overfull
    context_->deregister_memory(victim->second.mr);
    by_mr_.erase(victim->second.mr);
    by_base_.erase(victim);
    ++evictions_;
  }
}

}  // namespace lci::net
