#include "net/bootstrap.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace lci::net::bootstrap {

namespace {

int env_int(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  return std::atoi(env);
}

void validate_key(const std::string& key) {
  for (const char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok)
      throw std::runtime_error("bootstrap: key is not filename-safe: " + key);
  }
}

// Single-process fallback store (no job directory needed).
std::mutex& local_lock() {
  static std::mutex lock;
  return lock;
}
std::map<std::string, std::string>& local_store() {
  static std::map<std::string, std::string> store;
  return store;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool path_exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

// Barrier epochs, so one barrier name can be reused (a per-name counter
// makes each use a distinct file set).
std::map<std::string, int>& barrier_epochs() {
  static std::map<std::string, int> epochs;
  return epochs;
}

// The fd holding this rank's boot-liveness flock. Held (leaked) for the
// process lifetime; the kernel releases the lock on any exit.
int& announce_fd() {
  static int fd = -1;
  return fd;
}

}  // namespace

void announce_self() {
  const std::string dir = job_dir();
  if (dir.empty() || nranks() <= 1) return;
  std::lock_guard<std::mutex> guard(local_lock());
  int& fd = announce_fd();
  if (fd >= 0) return;
  const std::string path = dir + "/boot-" + std::to_string(rank());
  fd = ::open(path.c_str(), O_CREAT | O_RDWR, 0600);
  if (fd < 0 || ::flock(fd, LOCK_EX | LOCK_NB) != 0)
    throw std::runtime_error("bootstrap: cannot take liveness marker " + path);
}

bool rank_alive(int r) {
  const std::string dir = job_dir();
  if (dir.empty()) return true;
  const std::string path = dir + "/boot-" + std::to_string(r);
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return true;  // not announced yet — may still be launching
  const bool lock_free = ::flock(fd, LOCK_EX | LOCK_NB) == 0;
  ::close(fd);  // releases the probe's lock if it got one
  return !lock_free;
}

int rank() {
  const int r = env_int("LCI_RANK", 0);
  const int n = nranks();
  if (r < 0 || r >= n)
    throw std::runtime_error("bootstrap: LCI_RANK out of [0, LCI_NRANKS)");
  return r;
}

int nranks() {
  const int n = env_int("LCI_NRANKS", 1);
  if (n <= 0) throw std::runtime_error("bootstrap: LCI_NRANKS must be >= 1");
  return n;
}

std::string job_dir() {
  const char* env = std::getenv("LCI_JOB_DIR");
  return env != nullptr ? std::string(env) : std::string();
}

std::string job_id() {
  const char* env = std::getenv("LCI_JOB_ID");
  if (env != nullptr && env[0] != '\0') return env;
  const std::string dir = job_dir();
  if (!dir.empty()) {
    // Stable across the job's ranks: hash the shared directory path.
    uint64_t h = 1469598103934665603ull;  // FNV-1a
    for (const char c : dir) h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
  }
  return "pid" + std::to_string(::getpid());
}

void put(const std::string& key, const std::string& value) {
  validate_key(key);
  const std::string dir = job_dir();
  if (dir.empty()) {
    if (nranks() > 1)
      throw std::runtime_error("bootstrap: LCI_JOB_DIR required for multi-rank jobs");
    std::lock_guard<std::mutex> guard(local_lock());
    local_store()[key] = value;
    return;
  }
  const std::string tmp =
      dir + "/kv-" + key + ".tmp." + std::to_string(::getpid());
  const std::string final_path = dir + "/kv-" + key;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("bootstrap: cannot write " + tmp);
    out << value;
  }
  if (::rename(tmp.c_str(), final_path.c_str()) != 0)
    throw std::runtime_error("bootstrap: rename failed for " + final_path +
                             ": " + std::strerror(errno));
}

std::string get(const std::string& key, int timeout_ms, int owner_rank) {
  validate_key(key);
  const std::string dir = job_dir();
  if (dir.empty()) {
    std::lock_guard<std::mutex> guard(local_lock());
    auto it = local_store().find(key);
    if (it == local_store().end())
      throw std::runtime_error("bootstrap: key not published: " + key);
    return it->second;
  }
  const std::string path = dir + "/kv-" + key;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::string value;
  int polls = 0;
  while (!read_file(path, &value)) {
    if (std::chrono::steady_clock::now() >= deadline)
      throw std::runtime_error("bootstrap: timeout waiting for key " + key);
    if (owner_rank >= 0 && ++polls % 50 == 0 && !rank_alive(owner_rank))
      throw std::runtime_error("bootstrap: rank " +
                               std::to_string(owner_rank) +
                               " died before publishing key " + key);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return value;
}

void barrier(const std::string& name, int timeout_ms) {
  validate_key(name);
  const int n = nranks();
  if (n == 1) return;
  const std::string dir = job_dir();
  if (dir.empty())
    throw std::runtime_error("bootstrap: LCI_JOB_DIR required for barrier");
  int epoch;
  {
    std::lock_guard<std::mutex> guard(local_lock());
    epoch = barrier_epochs()[name]++;
  }
  const std::string base =
      dir + "/bar-" + name + "-" + std::to_string(epoch) + "-";
  {
    std::ofstream out(base + std::to_string(rank()));
    if (!out)
      throw std::runtime_error("bootstrap: cannot write barrier marker");
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (int r = 0; r < n; ++r) {
    int polls = 0;
    while (!path_exists(base + std::to_string(r))) {
      if (std::chrono::steady_clock::now() >= deadline)
        throw std::runtime_error("bootstrap: timeout in barrier " + name +
                                 " waiting for rank " + std::to_string(r));
      if (++polls % 50 == 0 && !rank_alive(r))
        throw std::runtime_error("bootstrap: rank " + std::to_string(r) +
                                 " died before reaching barrier " + name);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

}  // namespace lci::net::bootstrap
