// File-based bootstrap for the real multi-process backends (the stand-in for
// the paper's PMI bootstrapping, like upstream LCI's bootstrap/pmi layer).
//
// A "job" is N processes launched by scripts/launch_local.sh, which exports
// for each rank:
//
//   LCI_BACKEND  = shm | tcp
//   LCI_RANK     = 0..N-1
//   LCI_NRANKS   = N
//   LCI_JOB_DIR  = a fresh directory shared by all ranks of the job
//   LCI_JOB_ID   = a short unique token (names the SHM segment)
//
// The job directory implements a tiny key-value store (publish/lookup, used
// by the TCP backend to exchange listen ports) and a counted barrier. Both
// are plain files: put() writes atomically (temp file + rename), get() polls
// for the key, barrier() creates a per-rank marker and waits for all N. Every
// wait is bounded by a timeout so a crashed rank turns into a clean fatal
// error instead of a hang.
//
// Single-process use (LCI_NRANKS unset or 1) needs no job directory: get()
// reads back this process's own put()s and barrier() returns immediately.
#pragma once

#include <string>

namespace lci::net::bootstrap {

// Rank / size of the calling process (env LCI_RANK / LCI_NRANKS; 0 / 1 when
// unset). Throws fatal on inconsistent values (rank outside [0, nranks)).
int rank();
int nranks();

// Job directory (env LCI_JOB_DIR; empty when unset). Required when
// nranks() > 1 — the KV store and barrier live there.
std::string job_dir();

// Short unique job token for global-namespace names (the SHM segment). Env
// LCI_JOB_ID when set, otherwise derived from the job directory path, and
// from the PID for single-process jobs.
std::string job_id();

// Handshake liveness: each rank holds an exclusive flock on
// <job_dir>/boot-<rank> for its whole life (the kernel releases it on ANY
// death, including SIGKILL and the zombie window where kill(pid, 0) still
// says alive). announce_self takes the lock (idempotent; called on fabric
// creation, before any handshake wait); rank_alive answers false only
// definitively — the rank announced and then died. A rank that has not
// announced yet reads as alive (it may still be launching).
void announce_self();
bool rank_alive(int rank);

// Key-value publish / lookup. Keys must be short and filename-safe
// ([A-Za-z0-9._-]); values are opaque strings.
void put(const std::string& key, const std::string& value);
// Blocks until the key appears; throws fatal after timeout_ms. When
// owner_rank is given, the wait also probes that rank's liveness marker and
// fails fast with a clear error if the publisher died mid-handshake,
// instead of burning the whole blind timeout.
std::string get(const std::string& key, int timeout_ms = 30000,
                int owner_rank = -1);

// Counted barrier over all ranks of the job. Reusable: each call site name
// carries an internal epoch, so the same name may be used repeatedly. Waits
// probe the awaited rank's liveness marker: a rank that died before arriving
// fails the barrier fast instead of hanging until the blind timeout.
void barrier(const std::string& name, int timeout_ms = 30000);

}  // namespace lci::net::bootstrap
