// Memory-registration cache.
//
// Registration (pinning) is the most expensive verb on a real NIC — the
// paper's rendezvous path pays it per transfer unless registrations are
// reused. This cache sits between the runtime's internal rendezvous
// registrations and the fabric: acquire() returns a cached MR when an
// existing registered interval covers the requested range (a *hit*, no
// fabric call), and registers + inserts otherwise (a *miss*). Entries are
// refcounted; release() drops a reference, and entries at zero references
// stay resident for reuse until capacity forces LRU eviction (which is when
// the underlying deregistration actually happens).
//
// Buffers that bypass the cache still flow through release(): an MR id the
// cache has never seen is deregistered directly (uncached passthrough), so
// callers need not know how a given id was obtained. capacity 0 disables
// caching entirely — acquire degenerates to register, release to deregister,
// and no statistics are counted.
//
// The cache assumes a single owner of the registered ranges (the runtime):
// it does not watch for the memory being freed or remapped behind it, which
// is the classic registration-cache hazard. That is acceptable here because
// the runtime only caches registrations for buffers whose lifetime it
// brackets (rendezvous posts release before completion is delivered).
#pragma once

#include <cstdint>
#include <map>

#include "net/net.hpp"
#include "util/spinlock.hpp"

namespace lci::net {

// Result of an acquire: the MR plus the offset of the requested base inside
// the registered interval. A cache hit may be served by an entry whose base
// lies *below* the requested pointer, so remote peers addressing the buffer
// through this MR must add `offset` to every remote offset they use —
// dropping it lands RDMA traffic at the cached entry's base instead of the
// requested buffer.
struct reg_handle_t {
  mr_id_t mr = invalid_mr;
  std::size_t offset = 0;
};

class reg_cache_t {
 public:
  struct stats_t {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t entries = 0;  // resident entries (referenced + idle)
  };

  // `context` must outlive the cache. `capacity` is the maximum number of
  // resident entries (0 = caching off).
  reg_cache_t(context_t* context, std::size_t capacity)
      : context_(context), capacity_(capacity) {}
  ~reg_cache_t();

  reg_cache_t(const reg_cache_t&) = delete;
  reg_cache_t& operator=(const reg_cache_t&) = delete;

  // MR covering [base, base + size). Hit: a resident interval covers the
  // range (its refcount rises) and the handle's offset locates `base` inside
  // it. Miss: registers with the fabric and inserts (offset 0).
  reg_handle_t acquire(void* base, std::size_t size);

  // Drops one reference. Ids not owned by the cache (capacity 0, direct
  // registrations, collision spills) are deregistered immediately.
  void release(mr_id_t id);

  // Deregisters every idle (refcount 0) entry. Referenced entries stay.
  void flush();

  stats_t stats() const;

 private:
  struct entry_t {
    void* base = nullptr;
    std::size_t size = 0;
    mr_id_t mr = invalid_mr;
    uint32_t refs = 0;
    uint64_t last_use = 0;  // LRU stamp, meaningful while refs == 0
  };

  void evict_lru_locked();

  context_t* const context_;
  const std::size_t capacity_;

  mutable util::spinlock_t lock_;
  std::map<uintptr_t, entry_t> by_base_;
  std::map<mr_id_t, uintptr_t> by_mr_;
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace lci::net
