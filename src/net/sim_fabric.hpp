// Internal definitions of the simulated fabric (not part of the public
// backend interface in net.hpp).
#pragma once

#include <atomic>
#include <cstring>
#include <deque>
#include <memory>
#include <vector>

#include "net/net.hpp"
#include "util/lcrq.hpp"
#include "util/mpmc_array.hpp"
#include "util/mpsc_queue.hpp"
#include "util/rng.hpp"
#include "util/spinlock.hpp"

namespace lci::net::detail {

// One message "on the wire". Small payloads are stored inline; larger ones on
// the heap. Eager traffic in LCI is bounded by the packet size, but the wire
// itself accepts anything that fits a pre-posted buffer at the target.
struct wire_msg_t {
  static constexpr std::size_t inline_capacity = 128;

  op_t kind = op_t::send;  // send | remote_write | remote_read
  int src_rank = -1;
  uint32_t imm = 0;
  uint32_t size = 0;
  uint64_t ready_ns = 0;    // timing model: deliverable once now >= ready_ns
  uint32_t defer_polls = 0; // fault injection: delivery attempts to skip
  uint64_t trace_id = 0;    // wire span id (0 = untraced); see core/trace.hpp
  std::unique_ptr<char[]> heap;
  char inline_data[inline_capacity] = {};

  wire_msg_t() = default;
  wire_msg_t(wire_msg_t&&) = default;
  wire_msg_t& operator=(wire_msg_t&&) = default;

  void set_payload(const void* src, std::size_t n) {
    size = static_cast<uint32_t>(n);
    if (n == 0) return;
    if (n <= inline_capacity) {
      std::memcpy(inline_data, src, n);
    } else {
      heap.reset(new char[n]);
      std::memcpy(heap.get(), src, n);
    }
  }

  const char* data() const noexcept {
    return heap ? heap.get() : inline_data;
  }
};

struct prepost_t {
  void* buffer = nullptr;
  std::size_t size = 0;
  void* user_context = nullptr;
};

struct mr_record_t {
  void* base = nullptr;
  std::size_t size = 0;
  std::atomic<bool> valid{false};
};

class sim_fabric_t;

class sim_device_t final : public device_t {
 public:
  sim_device_t(sim_fabric_t* fabric, int rank, int context);
  ~sim_device_t() override;

  int index() const override { return index_; }
  post_result_t post_recv(void* buffer, std::size_t size,
                          void* user_context) override;
  post_result_t post_send(int peer_rank, const void* buffer, std::size_t size,
                          uint32_t imm, void* user_context) override;
  post_result_t post_write(int peer_rank, const void* local, std::size_t size,
                           mr_id_t remote_mr, std::size_t remote_offset,
                           bool notify, uint32_t imm,
                           void* user_context) override;
  post_result_t post_read(int peer_rank, void* local, std::size_t size,
                          mr_id_t remote_mr, std::size_t remote_offset,
                          bool notify, uint32_t imm,
                          void* user_context) override;
  poll_result_t poll_cq(cqe_t* out, std::size_t max) override;
  std::size_t preposted_recvs() const override {
    return srq_count_.load(std::memory_order_relaxed);
  }
  uint64_t injected_faults() const override {
    return injected_faults_.load(std::memory_order_relaxed);
  }
  bool is_peer_down(int rank) const override;
  uint64_t death_epoch() const override;
  uint64_t wire_dropped() const override {
    return wire_dropped_.load(std::memory_order_relaxed);
  }
  void set_doorbell(doorbell_t* doorbell) override {
    doorbell_.store(doorbell, std::memory_order_release);
  }
  // Swaps the lock-model CQ lock for the bounded lock-free MPSC queue (see
  // poll_cq). Setup-time only: the caller must enable it before any traffic
  // flows on this device, and before any thread other than the constructing
  // one touches it.
  void set_single_consumer(bool enable) override;

  // Wire-side entry point used by peer devices ("the NIC DMA engine").
  bool wire_push(wire_msg_t msg);

 private:
  friend class sim_fabric_t;

  // Acquires the send-path lock per the configured model/strategy. Returns a
  // disengaged guard on try-lock miss.
  util::try_lock_wrapper_t::guard_t acquire_send_lock(int peer_rank);

  // Fault injection: draws from the per-device RNG stream; returns ok when
  // no fault fires, retry_lock/retry_full otherwise.
  post_result_t maybe_inject_fault();
  // Effective backpressure depths (fault policy may shrink the configured
  // ones).
  std::size_t effective_send_depth() const;
  std::size_t effective_wire_depth() const;

  // Under the polling lock: move deliverable wire messages into the CQ.
  void deliver_from_wire();
  // false: RNR (no pre-posted recv). now_cache amortizes the clock read
  // across a delivery burst: 0 = not read yet, filled on first timed message.
  bool deliver_one(wire_msg_t& msg, uint64_t& now_cache);

  // CQ access shims: the MPSC queue when single-consumer mode is on, the
  // legacy LCRQ otherwise.
  void push_cqe(cqe_t cqe);
  std::size_t cq_size_approx() const noexcept {
    return mpsc_cq_ ? mpsc_cq_->size_approx() : cq_.size_approx();
  }
  // Send-side backpressure threshold. In MPSC mode the queue is bounded, so
  // posts additionally stop at half the ring: each in-flight poster adds at
  // most one element past its own threshold check, so the ring cannot
  // overflow unless more than capacity/2 threads post simultaneously.
  std::size_t send_depth_limit() const;
  // Single-consumer poll path: claim, drain, release (see poll_cq).
  poll_result_t poll_cq_mpsc(cqe_t* out, std::size_t max);

  // Rings the registered doorbell (if any): new work is observable on this
  // device. Called by peers from wire_push and locally after pushing
  // dispatch-worthy completions.
  void ring_doorbell() noexcept {
    if (doorbell_t* d = doorbell_.load(std::memory_order_acquire)) d->ring();
  }

  sim_fabric_t* const fabric_;
  const int rank_;
  const int context_;
  int index_ = -1;

  util::lcrq_t<wire_msg_t> wire_{1024};
  util::lcrq_t<cqe_t> cq_{1024};
  // Single-consumer mode (set_single_consumer): completions flow through
  // this bounded lock-free MPSC ring instead of cq_, and poll_cq claims the
  // consumer role per poll instead of taking the lock-model CQ lock.
  std::unique_ptr<util::mpsc_queue_t<cqe_t>> mpsc_cq_;
  std::deque<wire_msg_t> rnr_stash_;  // guarded by the polling lock / claim
  // Mirror of rnr_stash_.size(), readable without the polling lock: the MPSC
  // empty fast path must see stalled messages without claiming the consumer.
  std::atomic<std::size_t> rnr_depth_{0};
  std::atomic<doorbell_t*> doorbell_{nullptr};

  // Fault-injection state: a deterministic per-device RNG stream (seeded
  // from the policy seed and this device's coordinates) and the injected
  // count exposed through injected_faults().
  util::spinlock_t fault_lock_;
  util::xoshiro256_t fault_rng_;
  std::atomic<uint64_t> injected_faults_{0};
  std::atomic<uint64_t> wire_dropped_{0};

  util::spinlock_t srq_inner_lock_;
  std::deque<prepost_t> srq_;
  std::atomic<std::size_t> srq_count_{0};

  // Lock layout (paper Sec. 4.2.3/4.2.4). ibv: per-object locks; ofi: one
  // endpoint lock used for every operation.
  util::try_lock_wrapper_t cq_lock_;
  util::try_lock_wrapper_t srq_lock_;
  util::try_lock_wrapper_t ep_lock_;
  util::try_lock_wrapper_t qp_shared_lock_;           // all_qp / none
  std::unique_ptr<util::try_lock_wrapper_t[]> qp_locks_;  // per_qp
};

class sim_context_t final : public context_t {
 public:
  sim_context_t(std::shared_ptr<sim_fabric_t> fabric, int rank, int index)
      : fabric_(std::move(fabric)), rank_(rank), index_(index) {}

  int rank() const override { return rank_; }
  int nranks() const override;
  std::unique_ptr<device_t> create_device() override;
  mr_id_t register_memory(void* base, std::size_t size) override;
  void deregister_memory(mr_id_t id) override;
  int index() const noexcept { return index_; }

 private:
  std::shared_ptr<sim_fabric_t> fabric_;
  const int rank_;
  // Connection namespace: devices of context k only exchange messages with
  // devices of the peer ranks' context k (contexts must be created in the
  // same order on every rank, like every other replicated resource).
  const int index_;
};

class sim_fabric_t final : public fabric_t,
                           public std::enable_shared_from_this<sim_fabric_t> {
 public:
  sim_fabric_t(int nranks, const config_t& config);
  ~sim_fabric_t() override;

  backend_t kind() const override { return backend_t::sim; }
  int nranks() const override { return nranks_; }
  const config_t& config() const override { return config_; }
  std::unique_ptr<context_t> create_context(int rank) override;
  // Peer death. kill_rank marks the rank dead (idempotent; also the
  // kill_after_ops trigger), bumps the fabric-wide death epoch and rings every
  // live device's doorbell so sleeping progress engines wake up and purge.
  bool kill_rank(int rank) override;
  bool is_dead(int rank) const {
    return ranks_[static_cast<std::size_t>(rank)]->dead.load(
        std::memory_order_acquire);
  }
  uint64_t death_epoch() const {
    return death_epoch_.load(std::memory_order_acquire);
  }
  // Kill schedule bookkeeping: called by a device after each successful post;
  // the kill_rank dies once its devices complete kill_after_ops posts.
  void note_post(int rank);

  // Device registry, scoped by context index (connection namespace).
  // register_device reserves a slot (pass nullptr to keep it unroutable);
  // publish_device makes a fully constructed device visible to route().
  int register_device(int rank, int context, sim_device_t* device);
  void publish_device(int rank, int context, int index, sim_device_t* device);
  void unregister_device(int rank, int context, int index);
  // RAII pin on a target rank's device registry: while held, a pointer
  // returned by route() (and the doorbell it rings) stays valid —
  // unregister_device drains all pins before the device memory can go away.
  // Take it before route() and hold it across wire_push(), which rings the
  // target's doorbell *after* the push: without the pin the receiver can
  // consume the message, complete and tear down between the push and the
  // ring.
  class route_pin_t {
   public:
    explicit route_pin_t(std::atomic<int>& count) : count_(&count) {
      count_->fetch_add(1, std::memory_order_acquire);
    }
    route_pin_t(const route_pin_t&) = delete;
    route_pin_t& operator=(const route_pin_t&) = delete;
    ~route_pin_t() { count_->fetch_sub(1, std::memory_order_release); }

   private:
    std::atomic<int>* const count_;
  };
  route_pin_t pin_route(int rank) {
    return route_pin_t(ranks_[static_cast<std::size_t>(rank)]->route_pins);
  }
  // Routing: messages from device `src_index` of context `context` arrive at
  // the target rank's same-context device src_index mod device-count
  // (skipping freed slots).
  sim_device_t* route(int rank, int context, int src_index) const;
  // Context index allocation (monotonic per rank).
  int next_context_index(int rank);

  // Memory registration (per-rank tables, readable by any rank).
  mr_id_t register_memory(int rank, void* base, std::size_t size);
  void deregister_memory(int rank, mr_id_t id);
  // Resolves a remote address or throws (invalid MR / bounds violation).
  char* resolve_remote(int rank, mr_id_t id, std::size_t offset,
                       std::size_t size) const;

  // Shared "uUAR" hardware lock used by the td_strategy_t::none model.
  util::spinlock_t& uuar_lock() { return uuar_lock_; }

  // Timing model: earliest delivery time for a message of `size` bytes sent
  // now (0 when the model is off).
  uint64_t ready_time_ns(std::size_t size) const;

 private:
  struct context_devices_t {
    util::mpmc_array_t<sim_device_t*> devices{8};
  };
  struct rank_state_t {
    std::atomic<bool> dead{false};   // set once by kill_rank, never cleared
    std::atomic<int> route_pins{0};  // peers inside route() -> push -> ring
    util::mpmc_array_t<context_devices_t*> contexts{8};
    util::spinlock_t context_lock;
    std::vector<std::unique_ptr<context_devices_t>> context_storage;
    int next_context = 0;  // guarded by context_lock
    util::mpmc_array_t<mr_record_t*> mrs{8};
    util::spinlock_t mr_lock;
    std::vector<mr_id_t> mr_freelist;                  // guarded by mr_lock
    std::vector<std::unique_ptr<mr_record_t>> mr_storage;  // guarded by mr_lock
  };

  const int nranks_;
  const config_t config_;
  std::vector<std::unique_ptr<rank_state_t>> ranks_;
  util::spinlock_t uuar_lock_;
  std::atomic<uint64_t> death_epoch_{0};
  std::atomic<uint64_t> kill_ops_posted_{0};  // kill schedule progress
};

}  // namespace lci::net::detail
