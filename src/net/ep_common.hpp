// Shared machinery of the real multi-process backends (SHM and TCP).
//
// Both transports move *frames*: a fixed-size header (whose first word is the
// payload length — the "length prefix" of the TCP framing, and the record
// size of the SHM rings) followed by the payload. The header carries
// everything the receiving process needs to dispatch without shared address
// space:
//
//  * send       — eager message; matches a pre-posted receive at the target
//                 device (or parks in an RNR stash until one is posted).
//  * write      — RDMA-write emulation: payload + target MR id + offset. The
//                 target resolves the MR in its local table and memcpys; the
//                 notify flag on the final chunk raises a remote_write CQE
//                 (this is how the rendezvous FIN immediate travels, so data
//                 and FIN ride one frame and ordering holds by construction).
//  * read_req   — RDMA-read emulation, request leg: MR id + offset + length +
//                 a correlation cookie. The target snapshots the region and
//                 answers with read_resp frames; notify raises remote_read.
//  * read_resp  — response leg: payload lands at the initiator's local
//                 buffer (found via the cookie); the final chunk raises the
//                 initiator's read CQE.
//
// Large messages are chunked (a frame never exceeds max_chunk_bytes), so
// bounded rings / socket buffers never have to fit a whole rendezvous
// payload. A message is accepted atomically: either all its frames are
// pushed/queued, or the post returns retry_full — per-peer FIFO order is
// preserved because a peer with queued chunks rejects new messages until the
// queue drains. Chunk payloads reference the caller's buffer (no copy); the
// local completion CQE is raised only after the last chunk is handed to the
// transport, which is exactly the buffer-reuse contract.
//
// The fabric owns the per-process state the sim kept per rank: the device
// registry (routing: src device i of context k → local context-k device
// i mod count), the MR table (only ever resolved by its owning process), the
// doorbell list, and the peer-death ledger. Subclasses provide the actual
// byte transport: push_frame() on the egress side and pump() on the ingress
// side (called from poll_cq under a try-lock, so any polling thread drives
// ingress but never two at once).
#pragma once

#include <atomic>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "net/net.hpp"
#include "util/mpmc_array.hpp"
#include "util/mpsc_queue.hpp"
#include "util/rng.hpp"
#include "util/spinlock.hpp"

namespace lci::net::detail {

enum class frame_kind_t : uint8_t {
  send = 0,
  write = 1,
  read_req = 2,
  read_resp = 3,
  // Control plane (fabric-consumed, never routed to a device):
  //  * ping/pong — heartbeat liveness beacons (config_t::peer_timeout_us),
  //  * poison — remote kill_rank: the receiver treats it as an order to die
  //    (shuts down its transport so every peer observes the death).
  ping = 4,
  pong = 5,
  poison = 6,
  // SHM ring bookkeeping (never dispatched): padding to the end of the ring.
  wrap = 0xff,
};

constexpr uint8_t frame_flag_notify = 0x1;  // raise the target-side CQE
constexpr uint8_t frame_flag_last = 0x2;    // final chunk of its message

struct frame_header_t {
  uint32_t payload_size = 0;  // bytes following this header
  uint8_t kind = 0;           // frame_kind_t
  uint8_t flags = 0;
  uint8_t src_device = 0;     // routing: source device index (mod count)
  uint8_t context = 0;        // routing: connection namespace (context index)
  int32_t src_rank = -1;
  uint32_t imm = 0;
  uint32_t mr = invalid_mr;   // write/read_req: target MR id
  uint32_t pad = 0;
  uint64_t offset = 0;        // write/read_req: offset into the target MR;
                              // read_resp: offset into the initiator's buffer
  uint64_t cookie = 0;        // read_req/read_resp: initiator correlation
  uint64_t aux = 0;           // read_req: requested length
  uint64_t trace_id = 0;      // sender-side wire span (diagnostic carry)
};
static_assert(sizeof(frame_header_t) == 56, "frame header layout");

struct ep_mr_record_t {
  void* base = nullptr;
  std::size_t size = 0;
  bool valid = false;
};

class ep_fabric_t;

class ep_device_t final : public device_t {
 public:
  ep_device_t(ep_fabric_t* fabric, int context);
  ~ep_device_t() override;

  int index() const override { return index_; }
  post_result_t post_recv(void* buffer, std::size_t size,
                          void* user_context) override;
  post_result_t post_send(int peer_rank, const void* buffer, std::size_t size,
                          uint32_t imm, void* user_context) override;
  post_result_t post_write(int peer_rank, const void* local, std::size_t size,
                           mr_id_t remote_mr, std::size_t remote_offset,
                           bool notify, uint32_t imm,
                           void* user_context) override;
  post_result_t post_read(int peer_rank, void* local, std::size_t size,
                          mr_id_t remote_mr, std::size_t remote_offset,
                          bool notify, uint32_t imm,
                          void* user_context) override;
  poll_result_t poll_cq(cqe_t* out, std::size_t max) override;
  std::size_t preposted_recvs() const override {
    return srq_count_.load(std::memory_order_relaxed);
  }
  bool is_peer_down(int rank) const override;
  uint64_t death_epoch() const override;
  uint64_t wire_dropped() const override {
    return wire_dropped_.load(std::memory_order_relaxed);
  }
  uint64_t injected_faults() const override {
    return injected_faults_.load(std::memory_order_relaxed);
  }
  void set_doorbell(doorbell_t* doorbell) override;

  // Ingress: called by the fabric pump (and by loopback posts) with a parsed
  // frame. The payload pointer is only valid for the duration of the call.
  void accept_frame(const frame_header_t& header, const char* payload);

  // Peer death cleanup: drop queued chunks to the rank (their messages
  // complete locally, like sim wire messages evaporating after the local CQE
  // was already delivered) and complete outstanding reads from it.
  void purge_peer(int rank);

  void ring_doorbell() noexcept {
    if (doorbell_t* d = doorbell_.load(std::memory_order_acquire)) d->ring();
  }

  int context() const { return context_; }

  // Single-consumer CQ mode (receive-path sharding; see net.hpp). Setup-time
  // only — call before any traffic reaches the device. The lock-model CQ
  // deque becomes an overflow spill behind a bounded lock-free MPSC ring:
  // producers never spin (the CQ stays logically unbounded) and per-producer
  // FIFO — the order that matters for non-overtaking, since one sender's
  // frames are always dispatched by one thread — is preserved by routing
  // *every* push to the spill once it opens, until the consumer drains it.
  void set_single_consumer(bool enable) override;

 private:
  struct prepost_t {
    void* buffer = nullptr;
    std::size_t size = 0;
    void* user_context = nullptr;
  };
  struct stash_t {  // RNR: arrived sends waiting for a pre-posted receive
    int src_rank = -1;
    uint32_t imm = 0;
    std::size_t size = 0;
    std::unique_ptr<char[]> data;
  };
  // One outbound frame awaiting transport capacity. Chunk payloads alias the
  // poster's buffer (held live by the completion contract); target-generated
  // read responses own a heap snapshot instead.
  struct pending_tx_t {
    frame_header_t header;
    const char* payload = nullptr;
    std::unique_ptr<char[]> owned;
    // Raised after this frame (the message's last) reaches the transport.
    bool complete_local = false;
    cqe_t local_cqe{};
    // Head-of-queue frame currently being pushed by a drainer (outside
    // tx_lock_). A second drainer backs off; purge_peer leaves it in place.
    bool in_flight = false;
  };
  struct pending_read_t {
    int peer_rank = -1;
    void* local = nullptr;
    std::size_t size = 0;
    std::size_t received = 0;
    void* user_context = nullptr;
  };

  void push_cqe(const cqe_t& cqe);
  // Deterministic fault injection (mirrors the sim device: the same seed mix
  // of fault.seed / rank / context / device index, so a given seed replays
  // the same fault schedule). maybe_inject_fault answers ok or a forced
  // retry; draw_loss decides whether a whole posted message evaporates on
  // the wire (local CQE still fires — the sim drop semantics).
  post_result_t maybe_inject_fault();
  bool draw_loss();
  // Pushes/queues every frame of a message. Precondition: the peer's pending
  // queue is empty (FIFO rule). Never fails: frames that do not fit are
  // queued; death mid-push drops the tail and completes locally.
  void submit_frames(int peer_rank, std::vector<pending_tx_t> frames);
  // Tries to push the peer's queued frames; returns true when empty.
  bool drain_pending(int peer_rank);
  void drain_all_pending();
  bool pending_empty(int peer_rank);

  ep_fabric_t* const fabric_;
  const int context_;
  int index_ = -1;

  // Legacy mode: cq_ is the CQ (cq_lock_ per push/poll). MPSC mode
  // (mpsc_cq_ != null): cq_ is the overflow spill, spilled_ tells producers
  // the spill is open and consumers that it needs draining.
  mutable util::spinlock_t cq_lock_;
  std::deque<cqe_t> cq_;
  std::unique_ptr<util::mpsc_queue_t<cqe_t>> mpsc_cq_;
  std::atomic<bool> spilled_{false};

  mutable util::spinlock_t srq_lock_;
  std::deque<prepost_t> srq_;
  std::deque<stash_t> rnr_stash_;
  std::atomic<std::size_t> srq_count_{0};

  mutable util::spinlock_t tx_lock_;
  std::map<int, std::deque<pending_tx_t>> pending_tx_;

  mutable util::spinlock_t read_lock_;
  std::map<uint64_t, pending_read_t> pending_reads_;
  std::atomic<uint64_t> next_cookie_{1};

  std::atomic<doorbell_t*> doorbell_{nullptr};
  std::atomic<uint64_t> wire_dropped_{0};

  mutable util::spinlock_t fault_lock_;
  util::xoshiro256_t fault_rng_;  // fault_lock_ guarded
  std::atomic<uint64_t> injected_faults_{0};

  friend class ep_fabric_t;
};

class ep_context_t final : public context_t {
 public:
  ep_context_t(std::shared_ptr<ep_fabric_t> fabric, int index)
      : fabric_(std::move(fabric)), index_(index) {}
  int rank() const override;
  int nranks() const override;
  std::unique_ptr<device_t> create_device() override;
  mr_id_t register_memory(void* base, std::size_t size) override;
  void deregister_memory(mr_id_t id) override;

 private:
  std::shared_ptr<ep_fabric_t> fabric_;
  const int index_;
};

class ep_fabric_t : public fabric_t,
                    public std::enable_shared_from_this<ep_fabric_t> {
 public:
  ep_fabric_t(int self_rank, int nranks, const config_t& config);
  ~ep_fabric_t() override;

  int nranks() const override { return nranks_; }
  const config_t& config() const override { return config_; }
  std::unique_ptr<context_t> create_context(int rank) override;

  int self_rank() const { return self_; }

  // --- peer-death ledger ---------------------------------------------------
  // Subclasses with fabric-wide shared state (SHM tombstones) override the
  // queries; the local ledger is the TCP default.
  virtual bool is_dead(int rank) const {
    return dead_[static_cast<std::size_t>(rank)].load(
        std::memory_order_acquire);
  }
  virtual uint64_t death_epoch() const {
    return death_epoch_.load(std::memory_order_acquire);
  }
  // Marks a rank dead in the local ledger and runs the device purge +
  // doorbell storm. Idempotent; returns true when the rank newly
  // transitioned (the caller that won the race).
  bool mark_dead_local(int rank);

  // --- transport hooks (subclass-provided) ---------------------------------
  enum class push_status_t : uint8_t { ok, full, down };
  // Hands one frame to the transport. header.payload_size bytes at `payload`
  // (may be null when 0). Must be callable from any thread.
  virtual push_status_t push_frame(int peer, const frame_header_t& header,
                                   const char* payload) = 0;
  // Ingress: parse available frames (bounded burst) and dispatch_frame each.
  // Called with the pump lock held (single pumper at a time).
  virtual void pump(std::size_t burst) = 0;

  // Loopback-aware egress used by devices: self-sends dispatch directly.
  push_status_t push_frame_any(int peer, const frame_header_t& header,
                               const char* payload);

  // Runs the pump under a try-lock; also detects death-epoch changes (e.g. a
  // tombstone written by another process) and purges the newly dead.
  void pump_once();

  // Ingress front door: feeds the liveness ledger, consumes control frames
  // (ping/pong/poison), applies delay_rate staging, then routes data frames
  // to a local device. Frames from dead ranks are dropped (counted on the
  // routed device).
  void dispatch_frame(const frame_header_t& header, const char* payload);

  void ring_all_doorbells();

  fabric_health_t health() const override {
    fabric_health_t h;
    h.heartbeats_sent = heartbeats_sent_.load(std::memory_order_relaxed);
    h.peers_timed_out = peers_timed_out_.load(std::memory_order_relaxed);
    h.backpressure_waits =
        backpressure_waits_.load(std::memory_order_relaxed);
    return h;
  }

  // --- liveness (config_t::peer_timeout_us, 0 = off) -----------------------
  // Fed by every ingress frame and by transport-level signals of life (e.g.
  // epoll readiness on a peer's socket).
  void note_heard(int rank);
  // Heartbeat beacon: hands a ping frame to the transport (counted in
  // heartbeats_sent). Called from the backend listener thread.
  void send_ping(int peer);
  // Periodic liveness check — backend listener thread only. Applies a freeze
  // grace: if our own loop gap exceeds timeout/2 (we were the one stopped),
  // the ledger is stale, so it is refreshed instead of judging peers.
  void liveness_sweep();
  uint64_t peer_timeout_us() const { return config_.peer_timeout_us; }
  static uint64_t now_us();

  // kill_rank/kill_after_ops fault schedule: devices call note_post after
  // each successfully posted operation; hitting the budget kills self so
  // every peer observes a mid-run crash.
  void note_post();

  // --- device registry -----------------------------------------------------
  int add_device(int context, ep_device_t* device);
  void remove_device(int context, int index);

  // --- MR table (process-local; resolved only by the owning process) -------
  mr_id_t register_memory(void* base, std::size_t size);
  void deregister_memory(mr_id_t id);
  // nullptr on an invalid MR or bounds violation (the frame is dropped and
  // counted — a remote throw cannot unwind into the remote poster here).
  char* resolve_mr(mr_id_t id, std::size_t offset, std::size_t size);

  std::size_t max_chunk_bytes() const { return max_chunk_bytes_; }
  std::size_t max_send_payload() const override { return max_send_payload_; }

 protected:
  // Subclass hook run (under the pump lock) when a rank is newly observed
  // dead — close/drop transport state for it.
  virtual void on_peer_dead(int rank) { (void)rank; }

  // A peer exceeded the liveness timeout. Returns true when the rank newly
  // transitioned to dead (counted in peers_timed_out). The local-ledger
  // default fits TCP; SHM re-probes the pid and tombstones fabric-wide.
  virtual bool on_liveness_timeout(int rank) { return mark_dead_local(rank); }

  // Order-to-die from a poison control frame: shut the transport down so
  // every peer observes the death. Default: kill_rank(self).
  virtual void poison_self();

  // Subclass ctor tail hook: honors kill_after_ops == 0 (dead from launch).
  void apply_kill_schedule();

  // SHM futex backpressure + epoch-stamp heartbeats report through these.
  void note_backpressure_wait() {
    backpressure_waits_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_heartbeat_sent() {
    heartbeats_sent_.fetch_add(1, std::memory_order_relaxed);
  }

  const int self_;
  const int nranks_;
  const config_t config_;
  std::size_t max_chunk_bytes_ = 256 * 1024;
  // Largest un-chunked (send) frame payload the transport accepts; set by the
  // subclass from its ring / staging capacity.
  std::size_t max_send_payload_ = SIZE_MAX;

 private:
  // Receive-side delay_rate staging. A delayed frame is held as an owned
  // copy for polls_left pump rounds; frames arriving behind it from the same
  // sender queue after it (per-sender FIFO survives the hold).
  struct delayed_frame_t {
    frame_header_t header;
    std::unique_ptr<char[]> payload;
    uint32_t polls_left = 0;
  };
  // True when the frame was staged (caller must not deliver it).
  bool maybe_delay_frame(const frame_header_t& header, const char* payload);
  void drain_delayed();  // pump-lock held
  void handle_control(const frame_header_t& header);
  // The routing half of dispatch (post-liveness, post-delay).
  void route_frame(const frame_header_t& header, const char* payload);

  std::unique_ptr<std::atomic<bool>[]> dead_;
  std::atomic<uint64_t> death_epoch_{0};
  uint64_t purged_epoch_ = 0;  // pump-lock guarded
  std::unique_ptr<bool[]> purged_;  // pump-lock guarded

  util::spinlock_t pump_lock_;

  mutable util::spinlock_t delay_lock_;
  std::vector<std::deque<delayed_frame_t>> delayed_;  // delay_lock_ guarded
  util::xoshiro256_t delay_rng_;                      // delay_lock_ guarded
  std::atomic<bool> has_delayed_{false};

  std::unique_ptr<std::atomic<uint64_t>[]> last_heard_us_;
  uint64_t last_sweep_us_ = 0;  // listener thread only
  std::atomic<uint64_t> post_count_{0};
  std::atomic<uint64_t> heartbeats_sent_{0};
  std::atomic<uint64_t> peers_timed_out_{0};
  std::atomic<uint64_t> backpressure_waits_{0};

  // Steering table: per-context device slots readable lock-free (the same
  // publish/null-slot pattern as the sim fabric), so route_frame lands a
  // frame on the destination shard's device without taking dev_lock_ — the
  // old code serialized every ingress frame *and its payload memcpy* behind
  // that lock. dev_lock_ still serializes mutation (add/remove/create).
  // Removal safety: remove_device nulls the slot, then spins until
  // routers_ == 0, so no route that could have read the pointer is still in
  // accept_frame when the device dies (quiescence, not hazard pointers —
  // removal is teardown-rate).
  struct context_devices_t {
    util::mpmc_array_t<ep_device_t*> slots{8};
  };
  mutable util::spinlock_t dev_lock_;
  util::mpmc_array_t<context_devices_t*> contexts_{8};
  std::vector<std::unique_ptr<context_devices_t>> context_storage_;  // dev_lock_
  std::atomic<std::size_t> routers_{0};  // in-flight lock-free route_frames
  int next_context_ = 0;  // dev_lock_ guarded

  mutable util::spinlock_t mr_lock_;
  std::vector<ep_mr_record_t> mrs_;
  std::vector<mr_id_t> mr_freelist_;
};

// Transport factories (invoked through net::create_fabric).
std::shared_ptr<fabric_t> create_shm_fabric(int self_rank, int nranks,
                                            const config_t& config);
std::shared_ptr<fabric_t> create_tcp_fabric(int self_rank, int nranks,
                                            const config_t& config);

}  // namespace lci::net::detail
