#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <mutex>

// Recording-side tracing only (header-inline; lci_net does not link the core
// library). Wire spans cover push -> delivery; err codes are the wire's own:
// 0 = delivered, wire_err_rejected = backpressure bounce, wire_err_dropped =
// evaporated (dead sender/target or injected loss).
#include "core/trace.hpp"
#include "net/sim_fabric.hpp"

namespace lci::net::detail {

constexpr uint8_t wire_err_rejected = 1;
constexpr uint8_t wire_err_dropped = 2;

namespace {
inline void end_wire_span(uint64_t trace_id, uint8_t err, int rank = -1,
                          uint64_t size = 0) {
  lci::trace::end(lci::trace::span_t{trace_id, 0}, lci::trace::kind_t::wire,
                  err, rank, 0, size);
}
}  // namespace

sim_device_t::sim_device_t(sim_fabric_t* fabric, int rank, int context)
    : fabric_(fabric), rank_(rank), context_(context) {
  if (fabric_->config().lock_model == lock_model_t::ibv &&
      fabric_->config().td_strategy == td_strategy_t::per_qp) {
    qp_locks_ = std::make_unique<util::try_lock_wrapper_t[]>(
        static_cast<std::size_t>(fabric_->nranks()));
  }
  // Reserve the registry slot first (its index feeds the RNG derivation)
  // but publish `this` only once construction is complete: route() skips
  // null slots, so no peer can reach a half-built device. Registering the
  // pointer up front let a fast peer's wire_push draw from the fault RNG
  // while this constructor was still seeding it.
  index_ = fabric_->register_device(rank_, context_, nullptr);
  // Derive this device's fault-injection stream from its coordinates so a
  // fixed policy seed reproduces the same per-device decision sequence.
  uint64_t mix = fabric_->config().fault.seed;
  mix ^= util::splitmix64(mix) + static_cast<uint64_t>(rank_);
  mix ^= util::splitmix64(mix) + static_cast<uint64_t>(context_);
  mix ^= util::splitmix64(mix) + static_cast<uint64_t>(index_);
  fault_rng_ = util::xoshiro256_t(mix);
  fabric_->publish_device(rank_, context_, index_, this);
}

sim_device_t::~sim_device_t() {
  fabric_->unregister_device(rank_, context_, index_);
}

void sim_device_t::set_single_consumer(bool enable) {
  if (!enable) {
    mpsc_cq_.reset();
    return;
  }
  if (mpsc_cq_) return;
  // Bounded by design; clamped so a deep configured cq_depth does not turn
  // into megabytes of ring per shard. Overflow backpressures through
  // send_depth_limit() (posts) and the delivery-loop room check (wire).
  const std::size_t cap =
      std::min<std::size_t>(std::max<std::size_t>(fabric_->config().cq_depth,
                                                  1024),
                            8192);
  mpsc_cq_ = std::make_unique<util::mpsc_queue_t<cqe_t>>(cap);
}

void sim_device_t::push_cqe(cqe_t cqe) {
  if (mpsc_cq_) {
    // Unreachable in practice: producers stop at send_depth_limit() (half
    // the ring) and the delivery loop checks for room, so full here needs
    // more simultaneous posters than capacity/2. Spin rather than lose a
    // completion; some poller drains the ring in any such scenario.
    while (!mpsc_cq_->try_push(cqe)) {
    }
    return;
  }
  cq_.push(std::move(cqe));
}

std::size_t sim_device_t::send_depth_limit() const {
  const std::size_t depth = effective_send_depth();
  if (!mpsc_cq_) return depth;
  return std::min(depth, mpsc_cq_->capacity() / 2);
}

post_result_t sim_device_t::maybe_inject_fault() {
  const fault_config_t& fault = fabric_->config().fault;
  if (fault.retry_rate <= 0.0) return post_result_t::ok;
  if (fault.max_faults != 0 &&
      injected_faults_.load(std::memory_order_relaxed) >= fault.max_faults)
    return post_result_t::ok;
  bool as_lock_miss;
  {
    std::lock_guard<util::spinlock_t> guard(fault_lock_);
    if (fault_rng_.uniform() >= fault.retry_rate) return post_result_t::ok;
    as_lock_miss = fault_rng_.uniform() < fault.lock_fraction;
  }
  injected_faults_.fetch_add(1, std::memory_order_relaxed);
  return as_lock_miss ? post_result_t::retry_lock : post_result_t::retry_full;
}

std::size_t sim_device_t::effective_send_depth() const {
  const config_t& cfg = fabric_->config();
  return cfg.fault.send_depth != 0 ? std::min(cfg.fault.send_depth,
                                              cfg.cq_depth)
                                   : cfg.cq_depth;
}

std::size_t sim_device_t::effective_wire_depth() const {
  const config_t& cfg = fabric_->config();
  return cfg.fault.wire_depth != 0 ? std::min(cfg.fault.wire_depth,
                                              cfg.wire_depth)
                                   : cfg.wire_depth;
}

util::try_lock_wrapper_t::guard_t sim_device_t::acquire_send_lock(
    int peer_rank) {
  const config_t& cfg = fabric_->config();
  if (cfg.lock_model == lock_model_t::ofi) return ep_lock_.guard();
  switch (cfg.td_strategy) {
    case td_strategy_t::per_qp:
      return qp_locks_[static_cast<std::size_t>(peer_rank)].guard();
    case td_strategy_t::all_qp:
    case td_strategy_t::none:
      return qp_shared_lock_.guard();
  }
  return {};
}

post_result_t sim_device_t::post_recv(void* buffer, std::size_t size,
                                      void* user_context) {
  if (fabric_->is_dead(rank_)) return post_result_t::peer_down;
  const bool ofi = fabric_->config().lock_model == lock_model_t::ofi;
  auto guard = ofi ? ep_lock_.guard() : srq_lock_.guard();
  if (!guard) return post_result_t::retry_lock;
  {
    std::lock_guard<util::spinlock_t> inner(srq_inner_lock_);
    srq_.push_back(prepost_t{buffer, size, user_context});
  }
  srq_count_.fetch_add(1, std::memory_order_relaxed);
  return post_result_t::ok;
}

post_result_t sim_device_t::post_send(int peer_rank, const void* buffer,
                                      std::size_t size, uint32_t imm,
                                      void* user_context) {
  if (fabric_->is_dead(rank_) || fabric_->is_dead(peer_rank))
    return post_result_t::peer_down;
  if (const auto fault = maybe_inject_fault(); fault != post_result_t::ok)
    return fault;
  auto guard = acquire_send_lock(peer_rank);
  if (!guard) return post_result_t::retry_lock;
  // td_strategy_t::none: queue pairs share driver-owned hardware resources
  // (uUARs) whose lock is not visible to the try-lock wrapper, so sends
  // additionally serialize fabric-wide (Sec. 4.2.3).
  std::unique_lock<util::spinlock_t> uuar;
  if (fabric_->config().lock_model == lock_model_t::ibv &&
      fabric_->config().td_strategy == td_strategy_t::none) {
    uuar = std::unique_lock<util::spinlock_t>(fabric_->uuar_lock());
  }
  if (cq_size_approx() >= send_depth_limit())
    return post_result_t::retry_full;  // send queue full
  // Pinned until return: wire_push rings the target's doorbell after the
  // push, and the pin keeps the routed device (and doorbell) alive for it.
  auto pin = fabric_->pin_route(peer_rank);
  sim_device_t* target = fabric_->route(peer_rank, context_, index_);
  if (target == nullptr) return post_result_t::retry_full;

  wire_msg_t msg;
  msg.kind = op_t::send;
  msg.src_rank = rank_;
  msg.imm = imm;
  msg.ready_ns = fabric_->ready_time_ns(size);
  msg.set_payload(buffer, size);
  // Wire span: opened here so its id travels with the message; a rejected
  // push ends it immediately (the retried post opens a fresh one). The tag
  // slot carries the source device index — routing pairs it with the target
  // rank's same-index device, so it doubles as the receive-side shard id for
  // trace_summary.py's per-shard breakdown.
  const trace::span_t wire_span =
      trace::begin(trace::kind_t::wire, peer_rank,
                   static_cast<uint32_t>(index_), size);
  msg.trace_id = wire_span.id;
  if (!target->wire_push(std::move(msg))) {
    trace::end(wire_span, trace::kind_t::wire, wire_err_rejected, peer_rank);
    return post_result_t::retry_full;
  }

  // Local completion: the source buffer was copied onto the wire, so it is
  // immediately reusable (RDMA send semantics).
  push_cqe(cqe_t{op_t::send, peer_rank, imm, size, nullptr, user_context});
  fabric_->note_post(rank_);
  return post_result_t::ok;
}

post_result_t sim_device_t::post_write(int peer_rank, const void* local,
                                       std::size_t size, mr_id_t remote_mr,
                                       std::size_t remote_offset, bool notify,
                                       uint32_t imm, void* user_context) {
  if (fabric_->is_dead(rank_) || fabric_->is_dead(peer_rank))
    return post_result_t::peer_down;
  if (const auto fault = maybe_inject_fault(); fault != post_result_t::ok)
    return fault;
  auto guard = acquire_send_lock(peer_rank);
  if (!guard) return post_result_t::retry_lock;
  std::unique_lock<util::spinlock_t> uuar;
  if (fabric_->config().lock_model == lock_model_t::ibv &&
      fabric_->config().td_strategy == td_strategy_t::none) {
    uuar = std::unique_lock<util::spinlock_t>(fabric_->uuar_lock());
  }
  if (cq_size_approx() >= send_depth_limit())
    return post_result_t::retry_full;

  // Pinned until return: keeps the routed device (and its doorbell, rung by
  // wire_push after the push) alive across the notify delivery.
  auto pin = fabric_->pin_route(peer_rank);
  sim_device_t* target = nullptr;
  if (notify) {
    target = fabric_->route(peer_rank, context_, index_);
    if (target == nullptr) return post_result_t::retry_full;
  }
  char* remote = fabric_->resolve_remote(peer_rank, remote_mr, remote_offset,
                                         size);  // throws on violation
  std::memcpy(remote, local, size);
  if (notify) {
    wire_msg_t msg;
    msg.kind = op_t::remote_write;
    msg.src_rank = rank_;
    msg.imm = imm;
    msg.size = static_cast<uint32_t>(size);
    msg.ready_ns = fabric_->ready_time_ns(size);
    const trace::span_t wire_span =
        trace::begin(trace::kind_t::wire, peer_rank,
                     static_cast<uint32_t>(index_), size);
    msg.trace_id = wire_span.id;
    if (!target->wire_push(std::move(msg))) {
      trace::end(wire_span, trace::kind_t::wire, wire_err_rejected, peer_rank);
      return post_result_t::retry_full;
    }
  }
  push_cqe(cqe_t{op_t::write, peer_rank, imm, size, nullptr, user_context});
  // The write CQE carries a completion the owner must dispatch; a sleeping
  // progress engine on this very device would otherwise only notice it at
  // the bounded-sleep timeout.
  ring_doorbell();
  fabric_->note_post(rank_);
  return post_result_t::ok;
}

post_result_t sim_device_t::post_read(int peer_rank, void* local,
                                      std::size_t size, mr_id_t remote_mr,
                                      std::size_t remote_offset, bool notify,
                                      uint32_t imm, void* user_context) {
  if (fabric_->is_dead(rank_) || fabric_->is_dead(peer_rank))
    return post_result_t::peer_down;
  if (const auto fault = maybe_inject_fault(); fault != post_result_t::ok)
    return fault;
  auto guard = acquire_send_lock(peer_rank);
  if (!guard) return post_result_t::retry_lock;
  std::unique_lock<util::spinlock_t> uuar;
  if (fabric_->config().lock_model == lock_model_t::ibv &&
      fabric_->config().td_strategy == td_strategy_t::none) {
    uuar = std::unique_lock<util::spinlock_t>(fabric_->uuar_lock());
  }
  if (cq_size_approx() >= send_depth_limit())
    return post_result_t::retry_full;

  // Pinned until return: keeps the routed device (and its doorbell, rung by
  // wire_push after the push) alive across the notify delivery.
  auto pin = fabric_->pin_route(peer_rank);
  sim_device_t* target = nullptr;
  if (notify) {
    target = fabric_->route(peer_rank, context_, index_);
    if (target == nullptr) return post_result_t::retry_full;
  }
  const char* remote =
      fabric_->resolve_remote(peer_rank, remote_mr, remote_offset, size);
  std::memcpy(local, remote, size);
  if (notify) {
    // "RDMA read with notification": the paper's interconnects lack it
    // (Sec. 4.3); the simulated fabric provides it as an extension.
    wire_msg_t msg;
    msg.kind = op_t::remote_read;
    msg.src_rank = rank_;
    msg.imm = imm;
    msg.size = static_cast<uint32_t>(size);
    msg.ready_ns = fabric_->ready_time_ns(size);
    const trace::span_t wire_span =
        trace::begin(trace::kind_t::wire, peer_rank,
                     static_cast<uint32_t>(index_), size);
    msg.trace_id = wire_span.id;
    if (!target->wire_push(std::move(msg))) {
      trace::end(wire_span, trace::kind_t::wire, wire_err_rejected, peer_rank);
      return post_result_t::retry_full;
    }
  }
  push_cqe(cqe_t{op_t::read, peer_rank, imm, size, nullptr, user_context});
  ring_doorbell();
  fabric_->note_post(rank_);
  return post_result_t::ok;
}

bool sim_device_t::wire_push(wire_msg_t msg) {
  // A dead target evaporates everything pushed at it. The sender normally
  // checks liveness before routing here; this catches the race with a
  // concurrent kill. Report success — from the wire's point of view the
  // message was accepted, it just never arrives.
  if (fabric_->is_dead(rank_)) {
    wire_dropped_.fetch_add(1, std::memory_order_relaxed);
    end_wire_span(msg.trace_id, wire_err_dropped, rank_, msg.size);
    return true;
  }
  if (wire_.size_approx() >= effective_wire_depth()) return false;
  const fault_config_t& fault = fabric_->config().fault;
  if (fault.loss_rate > 0.0) {
    // Silent drop rides the target device's RNG stream, like delivery delay.
    bool lost;
    {
      std::lock_guard<util::spinlock_t> guard(fault_lock_);
      lost = fault_rng_.uniform() < fault.loss_rate;
    }
    if (lost) {
      wire_dropped_.fetch_add(1, std::memory_order_relaxed);
      end_wire_span(msg.trace_id, wire_err_dropped, rank_, msg.size);
      return true;
    }
  }
  if (fault.delay_rate > 0.0) {
    // Delivery delay rides the target device's RNG stream (the decision is
    // "the wire is slow getting this to the target").
    std::lock_guard<util::spinlock_t> guard(fault_lock_);
    if (fault_rng_.uniform() < fault.delay_rate)
      msg.defer_polls = fault.delay_polls;
  }
  wire_.push(std::move(msg));
  // Ring *after* the push so the woken owner's next poll observes the
  // message. Runs on the sender's thread — ring() is an atomic load plus, at
  // worst, a condvar notify when the target's engine is asleep.
  ring_doorbell();
  return true;
}

bool sim_device_t::deliver_one(wire_msg_t& msg, uint64_t& now_cache) {
  if (msg.defer_polls > 0) {
    // Injected delivery delay: skip this attempt. The message stays at the
    // head of its FIFO (wire or RNR stash), so per-sender order holds.
    --msg.defer_polls;
    return false;
  }
  if (msg.ready_ns != 0) {
    // Timing model: not yet "on this side of the wire". FIFO per sender, so
    // head-of-line blocking here is the modelled serialization. One clock
    // read per delivery burst: the caller's cache persists across messages.
    if (now_cache == 0) {
      now_cache = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count());
    }
    if (now_cache < msg.ready_ns) return false;
  }
  if (msg.kind == op_t::send) {
    prepost_t prepost;
    {
      std::lock_guard<util::spinlock_t> inner(srq_inner_lock_);
      if (srq_.empty()) return false;  // receiver-not-ready
      prepost = srq_.front();
      srq_.pop_front();
    }
    srq_count_.fetch_sub(1, std::memory_order_relaxed);
    assert(msg.size <= prepost.size &&
           "eager message larger than the pre-posted buffer");
    // Release-safe clamp: never overrun the pre-posted buffer. The CQE still
    // reports the full wire length, so the consumer can detect the overrun
    // (the LCI progress engine completes such receives with an error).
    std::memcpy(prepost.buffer, msg.data(),
                std::min<std::size_t>(msg.size, prepost.size));
    push_cqe(cqe_t{op_t::recv, msg.src_rank, msg.imm, msg.size,
                   prepost.buffer, prepost.user_context});
  } else {
    push_cqe(
        cqe_t{msg.kind, msg.src_rank, msg.imm, msg.size, nullptr, nullptr});
  }
  end_wire_span(msg.trace_id, 0, msg.src_rank, msg.size);
  return true;
}

void sim_device_t::deliver_from_wire() {
  const std::size_t burst = fabric_->config().poll_burst;
  std::size_t delivered = 0;
  uint64_t now_cache = 0;  // lazily filled by the first timed message
  // MPSC mode: deliveries stop while the bounded ring is near capacity so a
  // delivery can never find it full (racing producers stay below
  // send_depth_limit(), half the ring, so a one-burst margin suffices).
  const auto cq_has_room = [this]() {
    return !mpsc_cq_ ||
           mpsc_cq_->size_approx() + 1 < mpsc_cq_->capacity();
  };
  // Messages stalled earlier on receiver-not-ready go first (they are older).
  while (!rnr_stash_.empty() && delivered < burst && cq_has_room()) {
    if (fabric_->is_dead(rnr_stash_.front().src_rank)) {
      // The sender died while this message waited: it evaporates.
      wire_dropped_.fetch_add(1, std::memory_order_relaxed);
      end_wire_span(rnr_stash_.front().trace_id, wire_err_dropped,
                    rnr_stash_.front().src_rank, rnr_stash_.front().size);
      rnr_stash_.pop_front();
      rnr_depth_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    if (!deliver_one(rnr_stash_.front(), now_cache)) return;
    rnr_stash_.pop_front();
    rnr_depth_.fetch_sub(1, std::memory_order_relaxed);
    ++delivered;
  }
  while (delivered < burst && cq_has_room()) {
    auto msg = wire_.try_pop();
    if (!msg) break;
    if (fabric_->is_dead(msg->src_rank)) {
      wire_dropped_.fetch_add(1, std::memory_order_relaxed);
      end_wire_span(msg->trace_id, wire_err_dropped, msg->src_rank, msg->size);
      continue;
    }
    if (!deliver_one(*msg, now_cache)) {
      rnr_stash_.push_back(std::move(*msg));
      rnr_depth_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    ++delivered;
  }
}

poll_result_t sim_device_t::poll_cq(cqe_t* out, std::size_t max) {
  if (mpsc_cq_) return poll_cq_mpsc(out, max);
  const bool ofi = fabric_->config().lock_model == lock_model_t::ofi;
  auto guard = ofi ? ep_lock_.guard() : cq_lock_.guard();
  if (!guard) return poll_result_t{0, true};
  if (fabric_->is_dead(rank_)) {
    // A dead rank observes nothing: everything queued at it evaporates.
    while (auto msg = wire_.try_pop()) {
      wire_dropped_.fetch_add(1, std::memory_order_relaxed);
      end_wire_span(msg->trace_id, wire_err_dropped, msg->src_rank, msg->size);
    }
    for (const wire_msg_t& stalled : rnr_stash_)
      end_wire_span(stalled.trace_id, wire_err_dropped, stalled.src_rank,
                    stalled.size);
    rnr_stash_.clear();
    rnr_depth_.store(0, std::memory_order_relaxed);
    while (cq_.try_pop()) {
    }
    return poll_result_t{0, false};
  }
  deliver_from_wire();
  std::size_t count = 0;
  while (count < max) {
    auto cqe = cq_.try_pop();
    if (!cqe) break;
    out[count++] = *cqe;
  }
  return poll_result_t{count, false};
}

// Single-consumer mode: no lock-model lock on the poll path at all. The CQ
// is the bounded MPSC ring; the consumer role is claimed per poll with one
// CAS, and an idle poll — nothing completed, nothing on the wire, nothing
// stalled — returns after three relaxed loads without even the claim.
poll_result_t sim_device_t::poll_cq_mpsc(cqe_t* out, std::size_t max) {
  // Empty fast path (RMW-free). A push racing past these loads is caught by
  // the next poll — exactly the eventual-visibility contract poll loops
  // already live with. A dead rank with nothing queued needs no drain.
  if (mpsc_cq_->empty_approx() &&
      rnr_depth_.load(std::memory_order_relaxed) == 0 &&
      wire_.empty_approx())
    return poll_result_t{0, false};
  auto claim = mpsc_cq_->try_claim_consumer();
  // Another thread is consuming; it is making the progress this poll would
  // have made. Not a lock miss: the lock-model locks were never touched.
  if (!claim) return poll_result_t{0, false};
  if (fabric_->is_dead(rank_)) {
    // A dead rank observes nothing: everything queued at it evaporates.
    while (auto msg = wire_.try_pop()) {
      wire_dropped_.fetch_add(1, std::memory_order_relaxed);
      end_wire_span(msg->trace_id, wire_err_dropped, msg->src_rank, msg->size);
    }
    for (const wire_msg_t& stalled : rnr_stash_)
      end_wire_span(stalled.trace_id, wire_err_dropped, stalled.src_rank,
                    stalled.size);
    rnr_stash_.clear();
    rnr_depth_.store(0, std::memory_order_relaxed);
    while (mpsc_cq_->try_pop()) {
    }
    return poll_result_t{0, false};
  }
  deliver_from_wire();
  std::size_t count = 0;
  while (count < max) {
    auto cqe = mpsc_cq_->try_pop();
    if (!cqe) break;
    out[count++] = *cqe;
  }
  return poll_result_t{count, false};
}

bool sim_device_t::is_peer_down(int rank) const {
  return rank >= 0 && rank < fabric_->nranks() && fabric_->is_dead(rank);
}

uint64_t sim_device_t::death_epoch() const { return fabric_->death_epoch(); }

}  // namespace lci::net::detail
