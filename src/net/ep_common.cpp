#include "net/ep_common.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <stdexcept>

#include "core/trace.hpp"

namespace lci::net::detail {

namespace {
// Wire-span error codes shared with the sim backend (core/trace.hpp renders
// them): 0 = handed to the transport, 1 = rejected (backpressure bounce),
// 2 = dropped (peer death).
constexpr uint8_t wire_err_rejected = 1;
constexpr uint8_t wire_err_dropped = 2;
}  // namespace

// ---------------------------------------------------------------------------
// ep_device_t
// ---------------------------------------------------------------------------

ep_device_t::ep_device_t(ep_fabric_t* fabric, int context)
    : fabric_(fabric), context_(context) {
  index_ = fabric_->add_device(context_, this);
  // Same seed mix as the sim device: a given (seed, rank, context, device)
  // replays the same fault schedule regardless of backend.
  uint64_t mix = fabric_->config().fault.seed;
  mix ^= util::splitmix64(mix) + static_cast<uint64_t>(fabric_->self_rank());
  mix ^= util::splitmix64(mix) + static_cast<uint64_t>(context_);
  mix ^= util::splitmix64(mix) + static_cast<uint64_t>(index_);
  fault_rng_ = util::xoshiro256_t(mix);
}

post_result_t ep_device_t::maybe_inject_fault() {
  const fault_config_t& fault = fabric_->config().fault;
  if (fault.retry_rate <= 0.0) return post_result_t::ok;
  if (fault.max_faults != 0 &&
      injected_faults_.load(std::memory_order_relaxed) >= fault.max_faults)
    return post_result_t::ok;
  std::lock_guard<util::spinlock_t> guard(fault_lock_);
  if (fault_rng_.uniform() >= fault.retry_rate) return post_result_t::ok;
  injected_faults_.fetch_add(1, std::memory_order_relaxed);
  return fault_rng_.uniform() < fault.lock_fraction
             ? post_result_t::retry_lock
             : post_result_t::retry_full;
}

bool ep_device_t::draw_loss() {
  const fault_config_t& fault = fabric_->config().fault;
  if (fault.loss_rate <= 0.0) return false;
  std::lock_guard<util::spinlock_t> guard(fault_lock_);
  return fault_rng_.uniform() < fault.loss_rate;
}

ep_device_t::~ep_device_t() {
  fabric_->remove_device(context_, index_);
}

void ep_device_t::set_doorbell(doorbell_t* doorbell) {
  doorbell_.store(doorbell, std::memory_order_release);
}

bool ep_device_t::is_peer_down(int rank) const {
  return fabric_->is_dead(rank);
}

uint64_t ep_device_t::death_epoch() const { return fabric_->death_epoch(); }

void ep_device_t::set_single_consumer(bool enable) {
  if (!enable) {
    mpsc_cq_.reset();
    return;
  }
  if (mpsc_cq_) return;
  const std::size_t cap = std::min<std::size_t>(
      std::max<std::size_t>(fabric_->config().cq_depth, 1024), 8192);
  mpsc_cq_ = std::make_unique<util::mpsc_queue_t<cqe_t>>(cap);
}

void ep_device_t::push_cqe(const cqe_t& cqe) {
  if (mpsc_cq_) {
    // Fast path: one Vyukov push, no lock. The spill opens only when the
    // ring fills; once open, every push detours through it (under cq_lock_)
    // until the consumer drains it — that keeps per-producer FIFO intact,
    // which is the order non-overtaking needs (one sender's frames are
    // always dispatched by one thread).
    if (!spilled_.load(std::memory_order_relaxed) && mpsc_cq_->try_push(cqe)) {
      ring_doorbell();
      return;
    }
    {
      std::lock_guard<util::spinlock_t> guard(cq_lock_);
      // Re-check under the lock: the consumer clears spilled_ under
      // cq_lock_, so the flag is authoritative here. A racing ring slot may
      // also have freed up.
      if (spilled_.load(std::memory_order_relaxed) ||
          !mpsc_cq_->try_push(cqe)) {
        spilled_.store(true, std::memory_order_relaxed);
        cq_.push_back(cqe);
      }
    }
    ring_doorbell();
    return;
  }
  {
    std::lock_guard<util::spinlock_t> guard(cq_lock_);
    cq_.push_back(cqe);
  }
  ring_doorbell();
}

post_result_t ep_device_t::post_recv(void* buffer, std::size_t size,
                                     void* user_context) {
  std::lock_guard<util::spinlock_t> guard(srq_lock_);
  if (!rnr_stash_.empty()) {
    // An already-arrived send was waiting for this receive.
    stash_t msg = std::move(rnr_stash_.front());
    rnr_stash_.pop_front();
    std::memcpy(buffer, msg.data.get(), std::min(size, msg.size));
    // Like the sim, the CQE reports the full wire length so the owner can
    // detect truncation.
    push_cqe(cqe_t{op_t::recv, msg.src_rank, msg.imm, msg.size, buffer,
                   user_context});
    return post_result_t::ok;
  }
  srq_.push_back(prepost_t{buffer, size, user_context});
  srq_count_.fetch_add(1, std::memory_order_relaxed);
  return post_result_t::ok;
}

post_result_t ep_device_t::post_send(int peer_rank, const void* buffer,
                                     std::size_t size, uint32_t imm,
                                     void* user_context) {
  if (fabric_->is_dead(peer_rank) || fabric_->is_dead(fabric_->self_rank()))
    return post_result_t::peer_down;
  if (const auto fault = maybe_inject_fault(); fault != post_result_t::ok)
    return fault;
  if (!drain_pending(peer_rank)) return post_result_t::retry_full;

  const trace::span_t wire_span =
      trace::begin(trace::kind_t::wire, peer_rank, 0, size);
  if (draw_loss()) {
    // The message evaporates on the wire: the local completion still fires
    // (the data left our hands — sim loss_rate drops behave the same).
    trace::end(wire_span, trace::kind_t::wire, wire_err_dropped, peer_rank);
    wire_dropped_.fetch_add(1, std::memory_order_relaxed);
    push_cqe(cqe_t{op_t::send, peer_rank, imm, size, nullptr, user_context});
    fabric_->note_post();
    return post_result_t::ok;
  }
  frame_header_t header;
  header.payload_size = static_cast<uint32_t>(size);
  header.kind = static_cast<uint8_t>(frame_kind_t::send);
  header.flags = frame_flag_last;
  header.src_device = static_cast<uint8_t>(index_ & 0xff);
  header.context = static_cast<uint8_t>(context_ & 0xff);
  header.src_rank = fabric_->self_rank();
  header.imm = imm;
  header.trace_id = wire_span.id;
  const auto status = fabric_->push_frame_any(
      peer_rank, header, static_cast<const char*>(buffer));
  if (status == ep_fabric_t::push_status_t::full) {
    trace::end(wire_span, trace::kind_t::wire, wire_err_rejected, peer_rank);
    return post_result_t::retry_full;
  }
  if (status == ep_fabric_t::push_status_t::down) {
    trace::end(wire_span, trace::kind_t::wire, wire_err_dropped, peer_rank);
    return post_result_t::peer_down;
  }
  trace::end(wire_span, trace::kind_t::wire, 0, peer_rank);
  push_cqe(cqe_t{op_t::send, peer_rank, imm, size, nullptr, user_context});
  fabric_->note_post();
  return post_result_t::ok;
}

post_result_t ep_device_t::post_write(int peer_rank, const void* local,
                                      std::size_t size, mr_id_t remote_mr,
                                      std::size_t remote_offset, bool notify,
                                      uint32_t imm, void* user_context) {
  if (fabric_->is_dead(peer_rank) || fabric_->is_dead(fabric_->self_rank()))
    return post_result_t::peer_down;
  if (const auto fault = maybe_inject_fault(); fault != post_result_t::ok)
    return fault;
  if (!drain_pending(peer_rank)) return post_result_t::retry_full;

  const trace::span_t wire_span =
      trace::begin(trace::kind_t::wire, peer_rank, 0, size);
  if (draw_loss()) {
    trace::end(wire_span, trace::kind_t::wire, wire_err_dropped, peer_rank);
    wire_dropped_.fetch_add(1, std::memory_order_relaxed);
    push_cqe(cqe_t{op_t::write, peer_rank, imm, size, nullptr, user_context});
    fabric_->note_post();
    return post_result_t::ok;
  }
  const std::size_t chunk = fabric_->max_chunk_bytes();
  std::vector<pending_tx_t> frames;
  std::size_t done = 0;
  do {
    const std::size_t n = std::min(chunk, size - done);
    pending_tx_t tx;
    tx.header.payload_size = static_cast<uint32_t>(n);
    tx.header.kind = static_cast<uint8_t>(frame_kind_t::write);
    tx.header.src_device = static_cast<uint8_t>(index_ & 0xff);
    tx.header.context = static_cast<uint8_t>(context_ & 0xff);
    tx.header.src_rank = fabric_->self_rank();
    tx.header.mr = remote_mr;
    tx.header.offset = remote_offset + done;
    tx.header.aux = size;  // full message size (remote_write CQE length)
    tx.header.trace_id = wire_span.id;
    tx.payload = static_cast<const char*>(local) + done;
    done += n;
    if (done >= size) {
      tx.header.flags = frame_flag_last |
                        (notify ? frame_flag_notify : uint8_t{0});
      tx.header.imm = imm;
      tx.complete_local = true;
      tx.local_cqe =
          cqe_t{op_t::write, peer_rank, imm, size, nullptr, user_context};
    }
    frames.push_back(std::move(tx));
  } while (done < size);
  submit_frames(peer_rank, std::move(frames));
  trace::end(wire_span, trace::kind_t::wire, 0, peer_rank);
  fabric_->note_post();
  return post_result_t::ok;
}

post_result_t ep_device_t::post_read(int peer_rank, void* local,
                                     std::size_t size, mr_id_t remote_mr,
                                     std::size_t remote_offset, bool notify,
                                     uint32_t imm, void* user_context) {
  if (fabric_->is_dead(peer_rank) || fabric_->is_dead(fabric_->self_rank()))
    return post_result_t::peer_down;
  if (const auto fault = maybe_inject_fault(); fault != post_result_t::ok)
    return fault;
  if (!drain_pending(peer_rank)) return post_result_t::retry_full;

  uint64_t cookie;
  {
    std::lock_guard<util::spinlock_t> guard(read_lock_);
    cookie = next_cookie_.fetch_add(1, std::memory_order_relaxed);
    pending_reads_[cookie] =
        pending_read_t{peer_rank, local, size, 0, user_context};
  }
  const trace::span_t wire_span =
      trace::begin(trace::kind_t::wire, peer_rank, 0, size);
  if (draw_loss()) {
    // The request evaporates mid-wire. The pending-read entry stays: the op
    // finishes through its deadline/cancel path or when the peer dies (the
    // purge completes outstanding reads), never silently.
    trace::end(wire_span, trace::kind_t::wire, wire_err_dropped, peer_rank);
    wire_dropped_.fetch_add(1, std::memory_order_relaxed);
    fabric_->note_post();
    return post_result_t::ok;
  }
  frame_header_t header;
  header.payload_size = 0;
  header.kind = static_cast<uint8_t>(frame_kind_t::read_req);
  header.flags = notify ? frame_flag_notify : uint8_t{0};
  header.src_device = static_cast<uint8_t>(index_ & 0xff);
  header.context = static_cast<uint8_t>(context_ & 0xff);
  header.src_rank = fabric_->self_rank();
  header.imm = imm;
  header.mr = remote_mr;
  header.offset = remote_offset;
  header.cookie = cookie;
  header.aux = size;
  header.trace_id = wire_span.id;
  const auto status = fabric_->push_frame_any(peer_rank, header, nullptr);
  if (status != ep_fabric_t::push_status_t::ok) {
    {
      std::lock_guard<util::spinlock_t> guard(read_lock_);
      pending_reads_.erase(cookie);
    }
    trace::end(wire_span, trace::kind_t::wire,
               status == ep_fabric_t::push_status_t::down ? wire_err_dropped
                                                          : wire_err_rejected,
               peer_rank);
    return status == ep_fabric_t::push_status_t::down
               ? post_result_t::peer_down
               : post_result_t::retry_full;
  }
  trace::end(wire_span, trace::kind_t::wire, 0, peer_rank);
  fabric_->note_post();
  return post_result_t::ok;
}

bool ep_device_t::pending_empty(int peer_rank) {
  std::lock_guard<util::spinlock_t> guard(tx_lock_);
  auto it = pending_tx_.find(peer_rank);
  return it == pending_tx_.end() || it->second.empty();
}

void ep_device_t::submit_frames(int peer_rank,
                                std::vector<pending_tx_t> frames) {
  // Queue first, then drain: keeps the push outside tx_lock_ (a loopback
  // push re-enters dispatch) while preserving per-peer FIFO.
  {
    std::lock_guard<util::spinlock_t> guard(tx_lock_);
    auto& queue = pending_tx_[peer_rank];
    for (auto& frame : frames) queue.push_back(std::move(frame));
  }
  drain_pending(peer_rank);
}

bool ep_device_t::drain_pending(int peer_rank) {
  for (;;) {
    // Claim the head under the lock, push outside it (a loopback push
    // re-enters dispatch). A second drainer backs off a claimed head; the
    // pop / un-claim happens back under the lock, rechecking that the purge
    // has not swept the queue away meanwhile.
    frame_header_t header;
    const char* payload = nullptr;
    {
      std::lock_guard<util::spinlock_t> guard(tx_lock_);
      auto it = pending_tx_.find(peer_rank);
      if (it == pending_tx_.end() || it->second.empty()) return true;
      pending_tx_t& head = it->second.front();
      if (head.in_flight) return false;  // another drainer owns it
      head.in_flight = true;
      header = head.header;
      payload = head.owned != nullptr ? head.owned.get() : head.payload;
    }
    const auto status = fabric_->push_frame_any(peer_rank, header, payload);
    bool complete_local = false;
    cqe_t local_cqe{};
    {
      std::lock_guard<util::spinlock_t> guard(tx_lock_);
      auto it = pending_tx_.find(peer_rank);
      const bool head_alive = it != pending_tx_.end() &&
                              !it->second.empty() &&
                              it->second.front().in_flight;
      if (!head_alive) return true;  // purge swept the queue (and completed)
      if (status == ep_fabric_t::push_status_t::full) {
        it->second.front().in_flight = false;
        return false;
      }
      complete_local = it->second.front().complete_local;
      local_cqe = it->second.front().local_cqe;
      it->second.pop_front();
    }
    if (status == ep_fabric_t::push_status_t::down) {
      // The rest of the message evaporates; the local completion still
      // fires (the data left our hands — sim wire drops behave the same).
      wire_dropped_.fetch_add(1, std::memory_order_relaxed);
      if (complete_local) push_cqe(local_cqe);
      purge_peer(peer_rank);
      return true;
    }
    if (complete_local) push_cqe(local_cqe);
  }
}

void ep_device_t::drain_all_pending() {
  std::vector<int> peers;
  {
    std::lock_guard<util::spinlock_t> guard(tx_lock_);
    for (const auto& [peer, queue] : pending_tx_)
      if (!queue.empty()) peers.push_back(peer);
  }
  for (const int peer : peers) drain_pending(peer);
}

poll_result_t ep_device_t::poll_cq(cqe_t* out, std::size_t max) {
  fabric_->pump_once();
  drain_all_pending();
  poll_result_t result;
  if (mpsc_cq_) {
    // Empty fast path after the pump: two relaxed loads, no claim CAS —
    // this is what makes a progress loop over N mostly-idle shards cheap.
    if (mpsc_cq_->empty_approx() && !spilled_.load(std::memory_order_relaxed))
      return result;
    auto claim = mpsc_cq_->try_claim_consumer();
    if (!claim) return result;  // another thread is consuming this round
    while (result.count < max) {
      auto cqe = mpsc_cq_->try_pop();
      if (!cqe) break;
      out[result.count++] = *cqe;
    }
    // Ring drained to empty (all ring entries predate all spill entries, so
    // this order preserves FIFO): now serve the spill. While spilled_ is
    // set no producer pushes the ring, so it stays empty across this drain;
    // clearing the flag under cq_lock_ hands producers the ring back.
    if (result.count < max && spilled_.load(std::memory_order_relaxed)) {
      std::lock_guard<util::spinlock_t> guard(cq_lock_);
      while (result.count < max && !cq_.empty()) {
        out[result.count++] = cq_.front();
        cq_.pop_front();
      }
      if (cq_.empty()) spilled_.store(false, std::memory_order_relaxed);
    }
    return result;
  }
  std::lock_guard<util::spinlock_t> guard(cq_lock_);
  while (result.count < max && !cq_.empty()) {
    out[result.count++] = cq_.front();
    cq_.pop_front();
  }
  return result;
}

void ep_device_t::accept_frame(const frame_header_t& header,
                               const char* payload) {
  switch (static_cast<frame_kind_t>(header.kind)) {
    case frame_kind_t::send: {
      std::lock_guard<util::spinlock_t> guard(srq_lock_);
      if (srq_.empty()) {
        stash_t stash;
        stash.src_rank = header.src_rank;
        stash.imm = header.imm;
        stash.size = header.payload_size;
        if (header.payload_size != 0) {
          stash.data.reset(new char[header.payload_size]);
          std::memcpy(stash.data.get(), payload, header.payload_size);
        }
        rnr_stash_.push_back(std::move(stash));
        ring_doorbell();
        return;
      }
      prepost_t prepost = srq_.front();
      srq_.pop_front();
      srq_count_.fetch_sub(1, std::memory_order_relaxed);
      std::memcpy(prepost.buffer, payload,
                  std::min<std::size_t>(prepost.size, header.payload_size));
      push_cqe(cqe_t{op_t::recv, header.src_rank, header.imm,
                     header.payload_size, prepost.buffer,
                     prepost.user_context});
      return;
    }
    case frame_kind_t::write: {
      char* target =
          fabric_->resolve_mr(header.mr, header.offset, header.payload_size);
      if (target == nullptr) {
        wire_dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      std::memcpy(target, payload, header.payload_size);
      if (header.flags & frame_flag_notify)
        push_cqe(cqe_t{op_t::remote_write, header.src_rank, header.imm,
                       static_cast<std::size_t>(header.aux), nullptr,
                       nullptr});
      return;
    }
    case frame_kind_t::read_req: {
      const std::size_t size = static_cast<std::size_t>(header.aux);
      char* source = fabric_->resolve_mr(header.mr, header.offset, size);
      if (source == nullptr) {
        wire_dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // Snapshot the region now (read semantics) and answer in owned
      // chunks. The frames are queued, not pushed — a direct push could
      // loop back into dispatch while the registry lock is held.
      const std::size_t chunk = fabric_->max_chunk_bytes();
      std::vector<pending_tx_t> frames;
      std::size_t done = 0;
      do {
        const std::size_t n = std::min(chunk, size - done);
        pending_tx_t tx;
        tx.header.payload_size = static_cast<uint32_t>(n);
        tx.header.kind = static_cast<uint8_t>(frame_kind_t::read_resp);
        tx.header.src_device = header.src_device;  // route back to the asker
        tx.header.context = header.context;
        tx.header.src_rank = fabric_->self_rank();
        tx.header.offset = done;  // offset into the initiator's buffer
        tx.header.cookie = header.cookie;
        tx.header.aux = size;
        if (n != 0) {
          tx.owned.reset(new char[n]);
          std::memcpy(tx.owned.get(), source + done, n);
        }
        done += n;
        if (done >= size) tx.header.flags = frame_flag_last;
        frames.push_back(std::move(tx));
      } while (done < size);
      {
        std::lock_guard<util::spinlock_t> guard(tx_lock_);
        auto& queue = pending_tx_[header.src_rank];
        for (auto& frame : frames) queue.push_back(std::move(frame));
      }
      ring_doorbell();  // a poller must come back to drain the response
      if (header.flags & frame_flag_notify)
        push_cqe(cqe_t{op_t::remote_read, header.src_rank, header.imm, size,
                       nullptr, nullptr});
      return;
    }
    case frame_kind_t::read_resp: {
      std::lock_guard<util::spinlock_t> guard(read_lock_);
      auto it = pending_reads_.find(header.cookie);
      if (it == pending_reads_.end()) {
        wire_dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      pending_read_t& read = it->second;
      if (header.offset + header.payload_size <= read.size)
        std::memcpy(static_cast<char*>(read.local) + header.offset, payload,
                    header.payload_size);
      read.received += header.payload_size;
      if (header.flags & frame_flag_last) {
        push_cqe(cqe_t{op_t::read, read.peer_rank, 0, read.size, read.local,
                       read.user_context});
        pending_reads_.erase(it);
      }
      return;
    }
    case frame_kind_t::ping:
    case frame_kind_t::pong:
    case frame_kind_t::poison:
    case frame_kind_t::wrap:
      return;  // control / ring bookkeeping; consumed before device routing
  }
}

void ep_device_t::purge_peer(int rank) {
  // Queued chunks to the dead peer evaporate; messages whose final chunk was
  // queued still complete locally (their data left the poster's hands when
  // the post was accepted).
  std::vector<cqe_t> completions;
  {
    std::lock_guard<util::spinlock_t> guard(tx_lock_);
    auto it = pending_tx_.find(rank);
    if (it != pending_tx_.end()) {
      auto& queue = it->second;
      // An in-flight head belongs to its drainer: leave it in place (the
      // drainer pops it and raises its completion), sweep only the rest.
      const std::size_t keep =
          !queue.empty() && queue.front().in_flight ? 1 : 0;
      while (queue.size() > keep) {
        pending_tx_t& tx = queue.back();
        wire_dropped_.fetch_add(1, std::memory_order_relaxed);
        if (tx.complete_local) completions.push_back(tx.local_cqe);
        queue.pop_back();
      }
    }
  }
  // Outstanding reads from the dead peer: complete them (the sim's reads
  // are synchronous and can never be cut off mid-flight; the data here is
  // whatever chunks arrived). The owner observes the death separately
  // through the death epoch / is_peer_down.
  {
    std::lock_guard<util::spinlock_t> guard(read_lock_);
    for (auto it = pending_reads_.begin(); it != pending_reads_.end();) {
      if (it->second.peer_rank == rank) {
        completions.push_back(cqe_t{op_t::read, rank, 0, it->second.size,
                                    it->second.local,
                                    it->second.user_context});
        wire_dropped_.fetch_add(1, std::memory_order_relaxed);
        it = pending_reads_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const cqe_t& cqe : completions) push_cqe(cqe);
}

// ---------------------------------------------------------------------------
// ep_context_t
// ---------------------------------------------------------------------------

int ep_context_t::rank() const { return fabric_->self_rank(); }
int ep_context_t::nranks() const { return fabric_->nranks(); }

std::unique_ptr<device_t> ep_context_t::create_device() {
  return std::make_unique<ep_device_t>(fabric_.get(), index_);
}

mr_id_t ep_context_t::register_memory(void* base, std::size_t size) {
  return fabric_->register_memory(base, size);
}

void ep_context_t::deregister_memory(mr_id_t id) {
  fabric_->deregister_memory(id);
}

// ---------------------------------------------------------------------------
// ep_fabric_t
// ---------------------------------------------------------------------------

ep_fabric_t::ep_fabric_t(int self_rank, int nranks, const config_t& config)
    : self_(self_rank), nranks_(nranks), config_(config) {
  dead_.reset(new std::atomic<bool>[static_cast<std::size_t>(nranks)]);
  purged_.reset(new bool[static_cast<std::size_t>(nranks)]);
  last_heard_us_.reset(
      new std::atomic<uint64_t>[static_cast<std::size_t>(nranks)]);
  const uint64_t now = now_us();
  for (int r = 0; r < nranks; ++r) {
    dead_[static_cast<std::size_t>(r)].store(false, std::memory_order_relaxed);
    purged_[static_cast<std::size_t>(r)] = false;
    last_heard_us_[static_cast<std::size_t>(r)].store(
        now, std::memory_order_relaxed);
  }
  delayed_.resize(static_cast<std::size_t>(nranks));
  // A distinct stream from the devices' (constant salt instead of a device
  // index) so receive-side delay draws do not correlate with post faults.
  uint64_t mix = config_.fault.seed;
  mix ^= util::splitmix64(mix) + static_cast<uint64_t>(self_rank);
  mix ^= util::splitmix64(mix) + 0x9e3779b97f4a7c15ull;
  delay_rng_ = util::xoshiro256_t(mix);
}

uint64_t ep_fabric_t::now_us() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void ep_fabric_t::note_heard(int rank) {
  if (rank < 0 || rank >= nranks_ || rank == self_) return;
  last_heard_us_[static_cast<std::size_t>(rank)].store(
      now_us(), std::memory_order_relaxed);
}

void ep_fabric_t::send_ping(int peer) {
  if (peer < 0 || peer >= nranks_ || peer == self_) return;
  if (is_dead(peer) || is_dead(self_)) return;
  frame_header_t header;
  header.kind = static_cast<uint8_t>(frame_kind_t::ping);
  header.src_rank = self_;
  if (push_frame(peer, header, nullptr) == push_status_t::ok)
    heartbeats_sent_.fetch_add(1, std::memory_order_relaxed);
}

void ep_fabric_t::liveness_sweep() {
  const uint64_t timeout = config_.peer_timeout_us;
  if (timeout == 0) return;
  const uint64_t now = now_us();
  const uint64_t last = last_sweep_us_;
  last_sweep_us_ = now;
  if (last == 0 || now - last > timeout / 2) {
    // Our own loop stalled (first sweep, or we were the one SIGSTOPped): the
    // staleness indicts us, not the peers — refresh instead of judging, and
    // give everyone a full timeout to be heard again.
    for (int r = 0; r < nranks_; ++r)
      last_heard_us_[static_cast<std::size_t>(r)].store(
          now, std::memory_order_relaxed);
    return;
  }
  for (int r = 0; r < nranks_; ++r) {
    if (r == self_ || is_dead(r)) continue;
    const uint64_t heard =
        last_heard_us_[static_cast<std::size_t>(r)].load(
            std::memory_order_relaxed);
    // heard can postdate this sweep's `now` sample: note_heard runs
    // concurrently (pump / listener readiness), and on a loaded box this
    // thread can sit preempted between sampling `now` and loading `heard`.
    // Unsigned now - heard would wrap to ~2^64 and kill a peer that was
    // heard microseconds ago.
    if (heard >= now || now - heard <= timeout) continue;
    if (on_liveness_timeout(r))
      peers_timed_out_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ep_fabric_t::note_post() {
  const fault_config_t& fault = config_.fault;
  if (fault.kill_rank != self_ || fault.kill_after_ops == 0) return;
  if (is_dead(self_)) return;
  if (post_count_.fetch_add(1, std::memory_order_relaxed) + 1 >=
      fault.kill_after_ops)
    kill_rank(self_);
}

void ep_fabric_t::apply_kill_schedule() {
  const fault_config_t& fault = config_.fault;
  // kill_after_ops == 0: dead from launch (the sim fabric does the same).
  if (fault.kill_rank == self_ && fault.kill_after_ops == 0) kill_rank(self_);
}

void ep_fabric_t::poison_self() { kill_rank(self_); }

ep_fabric_t::~ep_fabric_t() = default;

std::unique_ptr<context_t> ep_fabric_t::create_context(int rank) {
  if (rank != self_)
    throw std::invalid_argument(
        "real backends host exactly one rank per process");
  int index;
  {
    std::lock_guard<util::spinlock_t> guard(dev_lock_);
    index = next_context_++;
    context_storage_.push_back(std::make_unique<context_devices_t>());
    contexts_.push_back(context_storage_.back().get());
  }
  return std::make_unique<ep_context_t>(
      std::static_pointer_cast<ep_fabric_t>(shared_from_this()), index);
}

bool ep_fabric_t::mark_dead_local(int rank) {
  if (rank < 0 || rank >= nranks_) return false;
  bool expected = false;
  if (!dead_[static_cast<std::size_t>(rank)].compare_exchange_strong(
          expected, true, std::memory_order_acq_rel))
    return false;
  death_epoch_.fetch_add(1, std::memory_order_release);
  ring_all_doorbells();
  return true;
}

ep_fabric_t::push_status_t ep_fabric_t::push_frame_any(
    int peer, const frame_header_t& header, const char* payload) {
  if (is_dead(peer) || is_dead(self_)) return push_status_t::down;
  if (peer == self_) {
    dispatch_frame(header, payload);
    return push_status_t::ok;
  }
  return push_frame(peer, header, payload);
}

void ep_fabric_t::pump_once() {
  if (!pump_lock_.try_lock()) return;
  pump(config_.poll_burst != 0 ? config_.poll_burst : 64);
  drain_delayed();
  // A death observed since the last pump (a tombstone another process wrote,
  // a hangup, a kill_rank call) triggers the one-time per-rank purge.
  const uint64_t epoch = death_epoch();
  if (epoch != purged_epoch_) {
    for (int r = 0; r < nranks_; ++r) {
      if (purged_[static_cast<std::size_t>(r)] || !is_dead(r)) continue;
      purged_[static_cast<std::size_t>(r)] = true;
      on_peer_dead(r);
      std::lock_guard<util::spinlock_t> guard(dev_lock_);
      for (const auto& ctx : context_storage_) {
        const std::size_t n = ctx->slots.size();
        for (std::size_t i = 0; i < n; ++i)
          if (ep_device_t* device = ctx->slots.get(i)) device->purge_peer(r);
      }
    }
    purged_epoch_ = epoch;
    ring_all_doorbells();
  }
  pump_lock_.unlock();
}

void ep_fabric_t::dispatch_frame(const frame_header_t& header,
                                 const char* payload) {
  if (header.src_rank >= 0 && header.src_rank < nranks_ &&
      header.src_rank != self_) {
    if (is_dead(header.src_rank))
      return;  // traffic from a dead rank evaporates (nowhere to land)
    note_heard(header.src_rank);
  }
  const auto kind = static_cast<frame_kind_t>(header.kind);
  if (kind == frame_kind_t::ping || kind == frame_kind_t::pong ||
      kind == frame_kind_t::poison) {
    handle_control(header);
    return;
  }
  if (maybe_delay_frame(header, payload)) return;
  route_frame(header, payload);
}

void ep_fabric_t::handle_control(const frame_header_t& header) {
  switch (static_cast<frame_kind_t>(header.kind)) {
    case frame_kind_t::ping: {
      // Answer so a one-directional traffic pattern still proves both sides
      // alive. Best-effort: a full transport just means the next ping tries.
      const int src = header.src_rank;
      if (src < 0 || src >= nranks_ || src == self_) return;
      if (is_dead(src) || is_dead(self_)) return;
      frame_header_t pong;
      pong.kind = static_cast<uint8_t>(frame_kind_t::pong);
      pong.src_rank = self_;
      push_frame(src, pong, nullptr);
      return;
    }
    case frame_kind_t::pong:
      return;  // its job was done by note_heard at the front door
    case frame_kind_t::poison:
      // Remote kill_rank: an order to die. Shut the transport down so every
      // peer observes the death organically.
      poison_self();
      return;
    default:
      return;
  }
}

bool ep_fabric_t::maybe_delay_frame(const frame_header_t& header,
                                    const char* payload) {
  const fault_config_t& fault = config_.fault;
  if (fault.delay_rate <= 0.0) return false;
  const int src = header.src_rank;
  if (src < 0 || src >= nranks_ || src == self_) return false;
  std::lock_guard<util::spinlock_t> guard(delay_lock_);
  auto& queue = delayed_[static_cast<std::size_t>(src)];
  uint32_t polls = 0;
  if (delay_rng_.uniform() < fault.delay_rate)
    polls = fault.delay_polls != 0 ? fault.delay_polls : 1;
  // An undelayed frame behind a held one still queues (polls 0): per-sender
  // FIFO survives the hold.
  if (polls == 0 && queue.empty()) return false;
  delayed_frame_t held;
  held.header = header;
  if (header.payload_size != 0) {
    held.payload.reset(new char[header.payload_size]);
    std::memcpy(held.payload.get(), payload, header.payload_size);
  }
  held.polls_left = polls;
  queue.push_back(std::move(held));
  has_delayed_.store(true, std::memory_order_release);
  return true;
}

void ep_fabric_t::drain_delayed() {
  // Pump lock held: single drainer. One hold-countdown tick per pump round,
  // then every consecutively ready frame delivers in arrival order.
  if (!has_delayed_.load(std::memory_order_acquire)) return;
  bool any_left = false;
  for (int src = 0; src < nranks_; ++src) {
    for (;;) {
      delayed_frame_t frame;
      {
        std::lock_guard<util::spinlock_t> guard(delay_lock_);
        auto& queue = delayed_[static_cast<std::size_t>(src)];
        if (queue.empty()) break;
        delayed_frame_t& head = queue.front();
        if (head.polls_left != 0) {
          --head.polls_left;
          any_left = true;
          break;
        }
        frame = std::move(head);
        queue.pop_front();
      }
      if (!is_dead(src))  // stale frames from a dead rank evaporate
        route_frame(frame.header,
                    frame.payload != nullptr ? frame.payload.get() : nullptr);
    }
  }
  if (!any_left) {
    std::lock_guard<util::spinlock_t> guard(delay_lock_);
    bool any = false;
    for (const auto& queue : delayed_)
      if (!queue.empty()) {
        any = true;
        break;
      }
    has_delayed_.store(any, std::memory_order_release);
  }
}

void ep_fabric_t::route_frame(const frame_header_t& header,
                              const char* payload) {
  // Lock-free steering: index-mod pick the destination shard's device and
  // hand it the frame without dev_lock_ — concurrent routers (the pumper
  // plus any loopback poster) deliver in parallel instead of serializing
  // behind one lock across the payload memcpy. The seq_cst ordering pairs
  // with remove_device's fence: either the remover sees our router count
  // (and waits), or we see its nulled slot.
  routers_.fetch_add(1, std::memory_order_seq_cst);
  const std::size_t ctx_index = header.context;
  if (ctx_index < contexts_.size()) {
    if (context_devices_t* ctx = contexts_.get(ctx_index)) {
      const std::size_t n = ctx->slots.size();
      if (n != 0) {
        const std::size_t start =
            static_cast<std::size_t>(header.src_device) % n;
        for (std::size_t k = 0; k < n; ++k) {
          if (ep_device_t* device = ctx->slots.get((start + k) % n)) {
            device->accept_frame(header, payload);
            break;
          }
        }
      }
    }
  }
  routers_.fetch_sub(1, std::memory_order_release);
}

void ep_fabric_t::ring_all_doorbells() {
  std::lock_guard<util::spinlock_t> guard(dev_lock_);
  const std::size_t nctx = contexts_.size();
  for (std::size_t c = 0; c < nctx; ++c) {
    context_devices_t* ctx = contexts_.get(c);
    if (ctx == nullptr) continue;
    const std::size_t n = ctx->slots.size();
    for (std::size_t i = 0; i < n; ++i)
      if (ep_device_t* device = ctx->slots.get(i)) device->ring_doorbell();
  }
}

int ep_fabric_t::add_device(int context, ep_device_t* device) {
  std::lock_guard<util::spinlock_t> guard(dev_lock_);
  auto& slots = context_storage_.at(static_cast<std::size_t>(context))->slots;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slots.get(i) == nullptr) {
      slots.put(i, device);
      return static_cast<int>(i);
    }
  }
  return static_cast<int>(slots.push_back(device));
}

void ep_fabric_t::remove_device(int context, int index) {
  {
    std::lock_guard<util::spinlock_t> guard(dev_lock_);
    context_storage_.at(static_cast<std::size_t>(context))
        ->slots.put(static_cast<std::size_t>(index), nullptr);
  }
  // Quiesce: a route_frame that read the pointer before the null landed may
  // still be inside accept_frame — wait it out (teardown-rate path). The
  // fence orders our null store before the routers_ reads, pairing with the
  // seq_cst increment in route_frame.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  while (routers_.load(std::memory_order_acquire) != 0) {
  }
}

mr_id_t ep_fabric_t::register_memory(void* base, std::size_t size) {
  std::lock_guard<util::spinlock_t> guard(mr_lock_);
  if (!mr_freelist_.empty()) {
    const mr_id_t id = mr_freelist_.back();
    mr_freelist_.pop_back();
    mrs_[id] = ep_mr_record_t{base, size, true};
    return id;
  }
  mrs_.push_back(ep_mr_record_t{base, size, true});
  return static_cast<mr_id_t>(mrs_.size() - 1);
}

void ep_fabric_t::deregister_memory(mr_id_t id) {
  std::lock_guard<util::spinlock_t> guard(mr_lock_);
  if (id >= mrs_.size() || !mrs_[id].valid)
    throw std::invalid_argument("deregistering an unregistered MR");
  mrs_[id].valid = false;
  mr_freelist_.push_back(id);
}

char* ep_fabric_t::resolve_mr(mr_id_t id, std::size_t offset,
                              std::size_t size) {
  std::lock_guard<util::spinlock_t> guard(mr_lock_);
  if (id >= mrs_.size() || !mrs_[id].valid) return nullptr;
  const ep_mr_record_t& record = mrs_[id];
  // Overflow-safe: offset and size come off the wire, and `offset + size`
  // can wrap for a hostile/corrupt uint64 offset, passing the naive check.
  if (offset > record.size || size > record.size - offset) return nullptr;
  return static_cast<char*>(record.base) + offset;
}

}  // namespace lci::net::detail
