// SHM backend: per-peer ring buffers in one POSIX shared-memory segment.
//
// Segment layout (created and initialized by rank 0, attached by the rest):
//
//   [segment header]  magic / nranks / ring capacity / ready flag /
//                     fabric-wide death epoch
//   [rank slots]      per rank: pid, tombstone word, futex doorbell word
//   [rings]           nranks * nranks SPSC byte rings; ring(src, dst) carries
//                     frames from process src to process dst
//
// Each ring is a power-of-two byte buffer with head (consumer) / tail
// (producer) offsets. Only process `src` produces into ring(src, dst) — a
// process-local per-destination lock serializes its threads — and only
// process `dst` consumes, under the fabric pump lock. Frames are contiguous:
// a frame that would straddle the end of the buffer is preceded by a `wrap`
// filler record, so payloads never need scatter-gather.
//
// Doorbells: after pushing, the producer bumps the destination's doorbell
// word and FUTEX_WAKEs it. A fabric-owned listener thread FUTEX_WAITs on the
// local word and rings every registered device doorbell on each bump — the
// cross-process analogue of the sim's direct doorbell ring.
//
// Peer death: kill_rank (any rank, from any process) sets the victim's
// tombstone word and bumps the shared death epoch — every process observes
// both on its next pump. A rank killed by the OS (kill -9) cannot write its
// tombstone, so liveness is additionally probed with kill(pid, 0): on every
// ring-full bounce and periodically during the pump. ESRCH converts to a
// tombstone exactly as an explicit kill would.
#include "net/ep_common.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#ifdef __linux__
#include <linux/futex.h>
#include <sys/syscall.h>
#endif

#include "net/bootstrap.hpp"

namespace lci::net::detail {

namespace {

constexpr uint64_t shm_magic = 0x4c43495f53484d31ull;  // "LCI_SHM1"

void futex_wake_all(std::atomic<uint32_t>* word) {
#ifdef __linux__
  ::syscall(SYS_futex, reinterpret_cast<uint32_t*>(word), FUTEX_WAKE, INT32_MAX,
            nullptr, nullptr, 0);
#else
  (void)word;
#endif
}

void futex_wait(std::atomic<uint32_t>* word, uint32_t expected,
                long timeout_ms) {
#ifdef __linux__
  struct timespec ts;
  ts.tv_sec = timeout_ms / 1000;
  ts.tv_nsec = (timeout_ms % 1000) * 1000000L;
  ::syscall(SYS_futex, reinterpret_cast<uint32_t*>(word), FUTEX_WAIT, expected,
            &ts, nullptr, 0);
#else
  (void)word;
  (void)expected;
  std::this_thread::sleep_for(std::chrono::milliseconds(timeout_ms));
#endif
}

struct alignas(64) shm_rank_slot_t {
  std::atomic<int32_t> pid;
  std::atomic<uint32_t> tombstone;
  std::atomic<uint32_t> doorbell;
  // Heartbeat stamp (liveness): bumped by the owner's listener thread and
  // progress path. A pid can be alive (kill(pid,0) == 0, flock held) while
  // the process is frozen — a stale epoch is the only tell.
  std::atomic<uint64_t> progress_epoch;
};

struct alignas(64) shm_ring_hdr_t {
  alignas(64) std::atomic<uint64_t> head;  // consumer offset (monotonic)
  alignas(64) std::atomic<uint64_t> tail;  // producer offset (monotonic)
  // Futex backpressure: `consumed` bumps once per pump burst that freed ring
  // space; a producer that found the ring full parks on it (bounded wait)
  // instead of spinning. `waiters` gates the wake syscall.
  alignas(64) std::atomic<uint32_t> consumed;
  std::atomic<uint32_t> waiters;
};

struct shm_seg_hdr_t {
  uint64_t magic;
  int32_t nranks;
  uint32_t reserved;
  uint64_t ring_bytes;
  std::atomic<uint32_t> ready;
  std::atomic<uint64_t> death_epoch;
};

std::size_t round_pow2(std::size_t v) {
  std::size_t p = 64;
  while (p < v) p <<= 1;
  return p;
}

std::size_t env_ring_bytes() {
  const char* env = std::getenv("LCI_SHM_RING_KB");
  const long kb = env != nullptr && env[0] != '\0' ? std::atol(env) : 1024;
  return round_pow2(static_cast<std::size_t>(kb > 0 ? kb : 1024) * 1024);
}

class shm_fabric_t final : public ep_fabric_t {
 public:
  shm_fabric_t(int self_rank, int nranks, const config_t& config)
      : ep_fabric_t(self_rank, nranks, config),
        ring_bytes_(env_ring_bytes()),
        seg_name_("/lci-" + bootstrap::job_id()) {
    max_chunk_bytes_ = std::min<std::size_t>(max_chunk_bytes_, ring_bytes_ / 4);
    // A frame must be contiguous in the ring, and the worst-case wrap filler
    // consumes up to one frame's length — so only frames of at most half the
    // capacity are guaranteed to ever fit. Sends are not chunked; anything
    // larger would bounce with `full` forever (see max_send_payload()).
    max_send_payload_ = ring_bytes_ / 2 - sizeof(frame_header_t);
    producer_locks_.reset(
        new util::spinlock_t[static_cast<std::size_t>(nranks)]);
    epoch_cache_.reset(new uint64_t[static_cast<std::size_t>(nranks)]());
    attach();
    bootstrap::barrier("shm-attach");
    start_listener();
    apply_kill_schedule();
  }

  ~shm_fabric_t() override {
    stop_listener();
    if (lock_fd_ >= 0) ::close(lock_fd_);
    if (map_ != nullptr) ::munmap(map_, map_bytes_);
    // Rank 0 owns the name. A crashed rank 0 leaves the segment behind;
    // scripts/launch_local.sh removes it when the job exits.
    if (self_ == 0) ::shm_unlink(seg_name_.c_str());
  }

  backend_t kind() const override { return backend_t::shm; }

  bool is_dead(int rank) const override {
    return slot(rank)->tombstone.load(std::memory_order_acquire) != 0;
  }

  uint64_t death_epoch() const override {
    return header()->death_epoch.load(std::memory_order_acquire);
  }

  bool kill_rank(int rank) override {
    if (rank < 0 || rank >= nranks_) return false;
    return tombstone(rank);
  }

  push_status_t push_frame(int peer, const frame_header_t& header,
                           const char* payload) override {
    const std::size_t need =
        align8(sizeof(frame_header_t) + header.payload_size);
    shm_ring_hdr_t* ring = ring_hdr(self_, peer);
    uint32_t seen;
    {
      std::lock_guard<util::spinlock_t> guard(
          producer_locks_[static_cast<std::size_t>(peer)]);
      // Loaded before the fullness check: a consumer bump between the check
      // and the futex wait makes the wait return immediately (no lost wake).
      seen = ring->consumed.load(std::memory_order_acquire);
      char* data = ring_data(self_, peer);
      const std::size_t cap = ring_bytes_;
      // Ring-shrink fault: pretend the ring is smaller (clamped so any single
      // frame still eventually fits — shrinking below 2*need would turn a
      // retry_full bounce into a livelock).
      std::size_t cap_eff = cap;
      const std::size_t shrink = config_.fault.shm_ring_shrink;
      if (shrink != 0) cap_eff = std::min(cap, std::max(shrink, 2 * need));
      uint64_t head = ring->head.load(std::memory_order_acquire);
      uint64_t tail = ring->tail.load(std::memory_order_relaxed);
      std::size_t off = static_cast<std::size_t>(tail) & (cap - 1);
      std::size_t pad = 0;
      if (need > cap - off) pad = cap - off;  // frame must not straddle the end
      if (static_cast<std::size_t>(tail - head) + pad + need <= cap_eff)
        return write_frame(ring, data, header, payload, peer, tail, off, pad,
                           need);
    }
    // Full. A dead consumer's ring never drains — probe it now so the bounce
    // converts to peer_down instead of a retry livelock. Otherwise park on
    // the consumer-progress word (bounded; the producer lock is released so
    // sibling threads are not held hostage) and surface retry_full upward —
    // deadlines and cancel still fire.
    probe_peer(peer);
    if (is_dead(peer)) return push_status_t::down;
    ring->waiters.fetch_add(1, std::memory_order_acq_rel);
    futex_wait(&ring->consumed, seen, 1);
    ring->waiters.fetch_sub(1, std::memory_order_acq_rel);
    note_backpressure_wait();
    return push_status_t::full;
  }

 private:
  // The fitting half of push_frame, still under the producer lock.
  push_status_t write_frame(shm_ring_hdr_t* ring, char* data,
                            const frame_header_t& header, const char* payload,
                            int peer, uint64_t tail, std::size_t off,
                            std::size_t pad, std::size_t need) {
    if (pad != 0) {
      if (pad >= sizeof(frame_header_t)) {
        frame_header_t wrap{};
        wrap.payload_size =
            static_cast<uint32_t>(pad - sizeof(frame_header_t));
        wrap.kind = static_cast<uint8_t>(frame_kind_t::wrap);
        std::memcpy(data + off, &wrap, sizeof(wrap));
      }
      // pad < header size: the consumer skips the remainder implicitly.
      tail += pad;
      off = 0;
    }
    std::memcpy(data + off, &header, sizeof(header));
    if (header.payload_size != 0)
      std::memcpy(data + off + sizeof(frame_header_t), payload,
                  header.payload_size);
    ring->tail.store(tail + need, std::memory_order_release);
    // Doorbell: bump + wake the consumer process's listener.
    shm_rank_slot_t* s = slot(peer);
    s->doorbell.fetch_add(1, std::memory_order_release);
    futex_wake_all(&s->doorbell);
    return push_status_t::ok;
  }

  void pump(std::size_t burst) override {
    if (++pump_calls_ % 4096 == 0) {
      probe_all_peers();
      // The progress path also stamps the heartbeat epoch, so a process
      // whose listener is starved but is otherwise making progress still
      // beacons life to its peers.
      if (peer_timeout_us() != 0)
        slot(self_)->progress_epoch.fetch_add(1, std::memory_order_release);
    }
    std::vector<char> copy;
    for (int src = 0; src < nranks_; ++src) {
      if (src == self_) continue;
      const bool src_dead = is_dead(src);
      shm_ring_hdr_t* ring = ring_hdr(src, self_);
      char* data = ring_data(src, self_);
      const std::size_t cap = ring_bytes_;
      uint64_t head = ring->head.load(std::memory_order_relaxed);
      const uint64_t head_at_entry = head;
      for (std::size_t n = 0; n < burst; ++n) {
        const uint64_t tail = ring->tail.load(std::memory_order_acquire);
        if (head == tail) break;
        std::size_t off = static_cast<std::size_t>(head) & (cap - 1);
        if (cap - off < sizeof(frame_header_t)) {
          head += cap - off;  // implicit pad at the very end of the buffer
          off = 0;
          if (head == tail) break;
        }
        frame_header_t header;
        std::memcpy(&header, data + off, sizeof(header));
        const std::size_t need =
            align8(sizeof(frame_header_t) + header.payload_size);
        if (static_cast<frame_kind_t>(header.kind) == frame_kind_t::wrap) {
          head += need;
          ring->head.store(head, std::memory_order_release);
          continue;
        }
        // Copy out before advancing head: dispatch may block on device
        // locks and the producer must be able to reuse the space only after
        // we are done with the bytes.
        const char* payload = data + off + sizeof(frame_header_t);
        if (src_dead) {
          head += need;
          ring->head.store(head, std::memory_order_release);
          continue;  // evaporates; dispatch would drop it anyway
        }
        copy.assign(payload, payload + header.payload_size);
        head += need;
        dispatch_frame(header, copy.data());
        ring->head.store(head, std::memory_order_release);
      }
      if (head != head_at_entry) {
        // Space was freed: bump the consumer-progress word and wake any
        // producer parked on the full ring.
        ring->consumed.fetch_add(1, std::memory_order_release);
        if (ring->waiters.load(std::memory_order_acquire) != 0)
          futex_wake_all(&ring->consumed);
      }
    }
  }

 private:
  static std::size_t align8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

  shm_seg_hdr_t* header() const {
    return reinterpret_cast<shm_seg_hdr_t*>(map_);
  }
  shm_rank_slot_t* slot(int rank) const {
    return reinterpret_cast<shm_rank_slot_t*>(
               static_cast<char*>(map_) + slots_off_) +
           rank;
  }
  shm_ring_hdr_t* ring_hdr(int src, int dst) const {
    return reinterpret_cast<shm_ring_hdr_t*>(
        static_cast<char*>(map_) + rings_off_ +
        static_cast<std::size_t>(src * nranks_ + dst) * ring_stride_);
  }
  char* ring_data(int src, int dst) const {
    return reinterpret_cast<char*>(ring_hdr(src, dst)) + sizeof(shm_ring_hdr_t);
  }

  bool tombstone(int rank) {
    uint32_t expected = 0;
    if (!slot(rank)->tombstone.compare_exchange_strong(
            expected, 1, std::memory_order_acq_rel))
      return false;
    header()->death_epoch.fetch_add(1, std::memory_order_release);
    // Wake every rank's listener so sleeping progress engines purge.
    for (int r = 0; r < nranks_; ++r) {
      slot(r)->doorbell.fetch_add(1, std::memory_order_release);
      futex_wake_all(&slot(r)->doorbell);
    }
    return true;
  }

  // Liveness: each rank holds an exclusive flock on <job_dir>/alive-<rank>
  // for its whole life (taken before the attach barrier, so every peer's lock
  // exists before anyone probes). The kernel releases the lock on ANY death —
  // including SIGKILL, and including the zombie window before the launcher
  // reaps the process, where a kill(pid, 0) probe would still say "alive".
  // The pid check stays as a cheap first test (ESRCH is definitive).
  void probe_peer(int rank) {
    if (rank == self_ || is_dead(rank)) return;
    const int32_t pid = slot(rank)->pid.load(std::memory_order_acquire);
    if (pid <= 0) return;  // not attached yet
    if (::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH) {
      tombstone(rank);
      return;
    }
    if (lock_dir_.empty()) return;
    const std::string path = lock_dir_ + "/alive-" + std::to_string(rank);
    const int fd = ::open(path.c_str(), O_RDWR);
    if (fd < 0) return;
    if (::flock(fd, LOCK_EX | LOCK_NB) == 0) tombstone(rank);
    ::close(fd);  // releases the probe's lock if it got one
  }

  void probe_all_peers() {
    for (int r = 0; r < nranks_; ++r) probe_peer(r);
  }

  // Heartbeats (listener thread): stamp our own epoch, harvest peers' epoch
  // advances into the last-heard ledger, then let the generic sweep judge.
  void heartbeat_tick() {
    slot(self_)->progress_epoch.fetch_add(1, std::memory_order_release);
    note_heartbeat_sent();
    for (int r = 0; r < nranks_; ++r) {
      if (r == self_ || is_dead(r)) continue;
      const uint64_t e =
          slot(r)->progress_epoch.load(std::memory_order_acquire);
      if (e != epoch_cache_[static_cast<std::size_t>(r)]) {
        epoch_cache_[static_cast<std::size_t>(r)] = e;
        note_heard(r);
      }
    }
    liveness_sweep();
  }

  bool on_liveness_timeout(int rank) override {
    // Definitive probes first: a pid/flock-dead peer tombstones through
    // probe_peer and is an organic death, not a timeout.
    probe_peer(rank);
    if (is_dead(rank)) return false;
    // pid alive, lock held, epoch frozen: wedged. Tombstone fabric-wide so
    // every survivor folds it through the death-epoch purge.
    return tombstone(rank);
  }

  void attach() {
    const std::size_t hdr_bytes = align_up(sizeof(shm_seg_hdr_t), 64);
    const std::size_t slots_bytes =
        align_up(sizeof(shm_rank_slot_t) * static_cast<std::size_t>(nranks_),
                 64);
    ring_stride_ = sizeof(shm_ring_hdr_t) + ring_bytes_;
    slots_off_ = hdr_bytes;
    rings_off_ = hdr_bytes + slots_bytes;
    map_bytes_ = rings_off_ + static_cast<std::size_t>(nranks_ * nranks_) *
                                  ring_stride_;
    int fd = -1;
    if (self_ == 0) {
      ::shm_unlink(seg_name_.c_str());  // stale segment from a crashed job
      fd = ::shm_open(seg_name_.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
      if (fd < 0)
        throw std::runtime_error("shm_open(create) failed for " + seg_name_);
      if (::ftruncate(fd, static_cast<off_t>(map_bytes_)) != 0) {
        ::close(fd);
        throw std::runtime_error("ftruncate failed for " + seg_name_);
      }
    } else {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::seconds(30);
      while ((fd = ::shm_open(seg_name_.c_str(), O_RDWR, 0600)) < 0) {
        if (std::chrono::steady_clock::now() >= deadline)
          throw std::runtime_error("timeout attaching to " + seg_name_);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    map_ = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED, fd,
                  0);
    ::close(fd);
    if (map_ == MAP_FAILED) {
      map_ = nullptr;
      throw std::runtime_error("mmap failed for " + seg_name_);
    }
    if (self_ == 0) {
      shm_seg_hdr_t* hdr = header();
      hdr->magic = shm_magic;
      hdr->nranks = nranks_;
      hdr->ring_bytes = ring_bytes_;
      hdr->death_epoch.store(0, std::memory_order_relaxed);
      for (int r = 0; r < nranks_; ++r) {
        slot(r)->pid.store(0, std::memory_order_relaxed);
        slot(r)->tombstone.store(0, std::memory_order_relaxed);
        slot(r)->doorbell.store(0, std::memory_order_relaxed);
        slot(r)->progress_epoch.store(0, std::memory_order_relaxed);
      }
      for (int s = 0; s < nranks_; ++s)
        for (int d = 0; d < nranks_; ++d) {
          ring_hdr(s, d)->head.store(0, std::memory_order_relaxed);
          ring_hdr(s, d)->tail.store(0, std::memory_order_relaxed);
          ring_hdr(s, d)->consumed.store(0, std::memory_order_relaxed);
          ring_hdr(s, d)->waiters.store(0, std::memory_order_relaxed);
        }
      hdr->ready.store(1, std::memory_order_release);
    } else {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::seconds(30);
      while (header()->ready.load(std::memory_order_acquire) != 1) {
        if (std::chrono::steady_clock::now() >= deadline)
          throw std::runtime_error("timeout waiting for segment init");
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (header()->magic != shm_magic || header()->nranks != nranks_ ||
          header()->ring_bytes != ring_bytes_)
        throw std::runtime_error(
            "shm segment mismatch (stale job or inconsistent LCI_SHM_RING_KB)");
    }
    slot(self_)->pid.store(static_cast<int32_t>(::getpid()),
                           std::memory_order_release);
    lock_dir_ = bootstrap::job_dir();
    if (!lock_dir_.empty()) {
      const std::string path = lock_dir_ + "/alive-" + std::to_string(self_);
      lock_fd_ = ::open(path.c_str(), O_CREAT | O_RDWR, 0600);
      if (lock_fd_ < 0 || ::flock(lock_fd_, LOCK_EX | LOCK_NB) != 0)
        throw std::runtime_error("cannot take liveness lock " + path);
    }
  }

  static std::size_t align_up(std::size_t n, std::size_t a) {
    return (n + a - 1) & ~(a - 1);
  }

  // Doorbell listener: forwards futex bumps on this rank's word to every
  // registered device doorbell. The waits are bounded (and the thread also
  // serves as the periodic liveness probe for fully idle processes).
  void start_listener() {
    listener_ = std::thread([this] {
      uint32_t seen = slot(self_)->doorbell.load(std::memory_order_acquire);
      const uint64_t timeout_us = peer_timeout_us();
      // With heartbeats on, wake often enough to stamp/judge well inside the
      // timeout; the sweep's freeze grace handles our own stalls.
      long wait_ms = 200;
      if (timeout_us != 0)
        wait_ms = std::max<long>(
            1, std::min<long>(200, static_cast<long>(timeout_us / 4000)));
      while (!listener_stop_.load(std::memory_order_acquire)) {
        futex_wait(&slot(self_)->doorbell, seen, wait_ms);
        const uint32_t now =
            slot(self_)->doorbell.load(std::memory_order_acquire);
        if (now != seen) {
          seen = now;
          ring_all_doorbells();
        } else {
          probe_all_peers();
        }
        if (timeout_us != 0) heartbeat_tick();
      }
    });
  }

  void stop_listener() {
    listener_stop_.store(true, std::memory_order_release);
    slot(self_)->doorbell.fetch_add(1, std::memory_order_release);
    futex_wake_all(&slot(self_)->doorbell);
    if (listener_.joinable()) listener_.join();
  }

  const std::size_t ring_bytes_;
  const std::string seg_name_;
  std::size_t ring_stride_ = 0;
  std::size_t slots_off_ = 0;
  std::size_t rings_off_ = 0;
  std::size_t map_bytes_ = 0;
  void* map_ = nullptr;
  std::string lock_dir_;
  int lock_fd_ = -1;
  std::unique_ptr<util::spinlock_t[]> producer_locks_;
  std::unique_ptr<uint64_t[]> epoch_cache_;  // listener thread only
  uint64_t pump_calls_ = 0;  // pump-lock guarded
  std::thread listener_;
  std::atomic<bool> listener_stop_{false};
};

}  // namespace

std::shared_ptr<fabric_t> create_shm_fabric(int self_rank, int nranks,
                                            const config_t& config) {
  return std::make_shared<shm_fabric_t>(self_rank, nranks, config);
}

}  // namespace lci::net::detail
