// TCP backend: a full mesh of loopback sockets, one per peer pair.
//
// Bootstrap: every rank listens on 127.0.0.1:<ephemeral> and publishes the
// port under key "tcp.<rank>". Rank r then connects to every rank lower than
// r (sending a 4-byte rank hello) and accepts one connection from every rank
// higher than r, so each pair meets exactly once. A final barrier keeps the
// listen sockets alive until the whole mesh exists.
//
// Framing is the shared frame protocol: the 56-byte header's leading
// payload_size word is the length prefix, frames are packed back to back on
// the stream. Egress copies the frame into a per-peer userspace staging
// queue (bounded by LCI_TCP_TXBUF_KB) and flushes with sendmsg/writev in
// nonblocking mode — push_frame returns `full` only when the staging queue
// is at capacity and the socket will not drain, which feeds the generic
// retry machinery. Ingress is epoll-driven: pump() polls a level-triggered
// epoll with zero timeout, appends whatever the sockets hold to per-peer
// reassembly buffers, and dispatches every complete frame.
//
// Peer death is a transport event: EOF or ECONNRESET/EPIPE on a peer's
// socket marks it dead in the fabric's local ledger (the generic epoch sweep
// then purges). kill_rank can therefore only kill the calling rank — it
// shuts down every socket so all peers observe a hangup, exactly like a real
// crash. A second, edge-triggered epoll is watched by a listener thread that
// converts socket readability into device doorbell rings for sleeping
// progress engines.
#include "net/ep_common.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>

#include "net/bootstrap.hpp"

namespace lci::net::detail {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error("tcp backend: " + what + ": " +
                           std::strerror(errno));
}

void set_nonblock(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0)
    sys_fail("fcntl(O_NONBLOCK)");
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Blocking read of exactly n bytes, bounded by a deadline (handshake only).
bool read_exact(int fd, void* buf, std::size_t n,
                std::chrono::steady_clock::time_point deadline) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    struct pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 100) <= 0) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      continue;
    }
    const ssize_t got = ::recv(fd, p, n, 0);
    if (got <= 0) return false;
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

std::size_t env_txbuf_bytes() {
  const char* env = std::getenv("LCI_TCP_TXBUF_KB");
  const long kb = env != nullptr && env[0] != '\0' ? std::atol(env) : 1024;
  return static_cast<std::size_t>(kb > 0 ? kb : 1024) * 1024;
}

class tcp_fabric_t final : public ep_fabric_t {
 public:
  tcp_fabric_t(int self_rank, int nranks, const config_t& config)
      : ep_fabric_t(self_rank, nranks, config),
        txbuf_cap_(env_txbuf_bytes()),
        peers_(static_cast<std::size_t>(nranks)) {
    max_chunk_bytes_ = std::min(max_chunk_bytes_, txbuf_cap_ / 2);
    // A send frame must fit the staging queue whole once it drains; anything
    // larger would bounce with `full` forever (see max_send_payload()).
    max_send_payload_ = txbuf_cap_ - sizeof(frame_header_t);
    // Largest frame a well-behaved peer can emit (its sends are bounded by
    // its txbuf, its write/read chunks by max_chunk_bytes). Anything above
    // this on the wire is a corrupt length prefix, not a big message.
    rx_frame_limit_ = std::max(max_chunk_bytes_, txbuf_cap_);
    poison_deadline_us_.reset(
        new std::atomic<uint64_t>[static_cast<std::size_t>(nranks)]);
    for (int r = 0; r < nranks; ++r)
      poison_deadline_us_[static_cast<std::size_t>(r)].store(
          0, std::memory_order_relaxed);
    // Transport-fault stream (reset / short-write): per-process, distinct
    // salt from the device streams so draws do not correlate.
    uint64_t mix = config.fault.seed;
    mix ^= util::splitmix64(mix) + static_cast<uint64_t>(self_rank);
    mix ^= util::splitmix64(mix) + 0xa5a5c3c3e1e10f0full;
    tfault_rng_ = util::xoshiro256_t(mix);
    connect_mesh();
    setup_epoll();
    start_listener();
    apply_kill_schedule();
  }

  ~tcp_fabric_t() override {
    stop_listener();
    for (auto& p : peers_)
      if (p.fd >= 0) ::close(p.fd);
    if (pump_epfd_ >= 0) ::close(pump_epfd_);
    if (wake_epfd_ >= 0) ::close(wake_epfd_);
    if (wake_eventfd_ >= 0) ::close(wake_eventfd_);
  }

  backend_t kind() const override { return backend_t::tcp; }

  bool kill_rank(int rank) override {
    if (rank < 0 || rank >= nranks_ || is_dead(rank)) return false;
    if (rank == self_) {
      // Self-kill: shut every socket down so all peers observe a hangup,
      // exactly like a real crash.
      for (int r = 0; r < nranks_; ++r)
        if (peers_[static_cast<std::size_t>(r)].fd >= 0)
          ::shutdown(peers_[static_cast<std::size_t>(r)].fd, SHUT_RDWR);
      mark_dead_local(self_);
      return true;
    }
    // Remote kill: order the victim to die with a poison frame — it shuts
    // its transport down and every peer observes the death organically. A
    // wedged victim that never reads the poison is covered by the local
    // fallback deadline (checked by the listener), so this rank converges
    // either way; other survivors converge via EOF or their own liveness
    // timeout.
    frame_header_t poison;
    poison.kind = static_cast<uint8_t>(frame_kind_t::poison);
    poison.src_rank = self_;
    if (push_frame(rank, poison, nullptr) == push_status_t::down) return false;
    const uint64_t fallback =
        std::max<uint64_t>(peer_timeout_us(), 1000000);  // >= 1s
    poison_deadline_us_[static_cast<std::size_t>(rank)].store(
        now_us() + fallback, std::memory_order_release);
    return true;
  }

  push_status_t push_frame(int peer, const frame_header_t& header,
                           const char* payload) override {
    peer_t& p = peers_[static_cast<std::size_t>(peer)];
    const std::size_t need = sizeof(frame_header_t) + header.payload_size;
    std::lock_guard<util::spinlock_t> guard(p.tx_lock);
    if (is_dead(peer)) return push_status_t::down;
    if (p.tx_bytes + need > txbuf_cap_) {
      flush_tx_locked(peer, p);
      if (p.tx_bytes + need > txbuf_cap_)
        return is_dead(peer) ? push_status_t::down : push_status_t::full;
    }
    std::vector<char> buf(need);
    std::memcpy(buf.data(), &header, sizeof(header));
    if (header.payload_size != 0)
      std::memcpy(buf.data() + sizeof(header), payload, header.payload_size);
    p.tx.push_back(std::move(buf));
    p.tx_bytes += need;
    flush_tx_locked(peer, p);
    return push_status_t::ok;
  }

  void pump(std::size_t burst) override {
    struct epoll_event events[64];
    const int n = ::epoll_wait(pump_epfd_, events, 64, 0);
    for (int i = 0; i < n; ++i) {
      const int peer = static_cast<int>(events[i].data.u32);
      drain_rx(peer, burst);
    }
    // A burst-limited parse can leave complete frames in a peer's rx staging
    // after the socket itself is empty — epoll will never report that peer
    // again, so the leftovers must be swept here, not on readiness.
    bool backlog = false;
    for (int r = 0; r < nranks_; ++r) {
      if (r == self_ || is_dead(r)) continue;
      peer_t& p = peers_[static_cast<std::size_t>(r)];
      if (p.rx_pos < p.rx.size()) backlog |= parse_rx(r, burst);
    }
    // Flush staged egress on every pump so a quiet receiver still sends.
    for (int r = 0; r < nranks_; ++r) {
      if (r == self_) continue;
      peer_t& p = peers_[static_cast<std::size_t>(r)];
      if (p.tx_bytes == 0) continue;
      std::lock_guard<util::spinlock_t> guard(p.tx_lock);
      flush_tx_locked(r, p);
    }
    // Deliverable frames remain: make sure a poller comes back for them even
    // if every progress thread was about to park on its doorbell.
    if (backlog) ring_all_doorbells();
  }

 protected:
  void on_peer_dead(int rank) override {
    // shutdown (not close): concurrent senders keep a valid fd and fail with
    // EPIPE instead of racing a reused descriptor. close happens in ~fabric.
    peer_t& p = peers_[static_cast<std::size_t>(rank)];
    if (p.fd >= 0) ::shutdown(p.fd, SHUT_RDWR);
    {
      std::lock_guard<util::spinlock_t> guard(p.tx_lock);
      p.tx.clear();
      p.tx_bytes = 0;
      p.tx_front_off = 0;
    }
    p.rx.clear();
    p.rx_pos = 0;
  }

 private:
  struct peer_t {
    int fd = -1;
    util::spinlock_t tx_lock;
    std::deque<std::vector<char>> tx;  // tx_lock guarded
    std::size_t tx_bytes = 0;          // tx_lock guarded
    std::size_t tx_front_off = 0;      // bytes of tx.front() already sent
    std::vector<char> rx;              // pump-lock guarded
    std::size_t rx_pos = 0;            // parse offset into rx
  };

  // One draw from the per-process transport-fault stream.
  bool tfault_draw(double rate) {
    if (rate <= 0.0) return false;
    std::lock_guard<util::spinlock_t> guard(tfault_lock_);
    return tfault_rng_.uniform() < rate;
  }

  void flush_tx_locked(int peer, peer_t& p) {
    if (!p.tx.empty() && tfault_draw(config_.fault.tcp_reset_rate)) {
      // Injected connection reset: sever the pair link. This side declares
      // the peer dead; the peer observes EOF and declares us dead — both
      // sides exercise the organic connection-death path.
      ::shutdown(p.fd, SHUT_RDWR);
      mark_dead_local(peer);
      p.tx.clear();
      p.tx_bytes = 0;
      p.tx_front_off = 0;
      return;
    }
    while (!p.tx.empty()) {
      struct iovec iov[8];
      int iovcnt = 0;
      std::size_t off = p.tx_front_off;
      for (auto it = p.tx.begin(); it != p.tx.end() && iovcnt < 8; ++it) {
        iov[iovcnt].iov_base = it->data() + off;
        iov[iovcnt].iov_len = it->size() - off;
        ++iovcnt;
        off = 0;
      }
      bool injected_short = false;
      if (tfault_draw(config_.fault.tcp_short_write_rate)) {
        // Injected short write: hand the kernel only a prefix of the first
        // buffer, leaving a mid-frame partial in the staging queue — the
        // tx_front_off resume logic must reassemble it transparently.
        injected_short = true;
        iovcnt = 1;
        iov[0].iov_len = std::max<std::size_t>(1, iov[0].iov_len / 2);
      }
      struct msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
      const ssize_t sent = ::sendmsg(p.fd, &msg, MSG_DONTWAIT | MSG_NOSIGNAL);
      if (sent < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        // EPIPE / ECONNRESET / EBADF after shutdown: the peer is gone.
        mark_dead_local(peer);
        p.tx.clear();
        p.tx_bytes = 0;
        p.tx_front_off = 0;
        return;
      }
      std::size_t left = static_cast<std::size_t>(sent);
      p.tx_bytes -= left;
      while (left > 0) {
        const std::size_t front_left = p.tx.front().size() - p.tx_front_off;
        if (left >= front_left) {
          left -= front_left;
          p.tx.pop_front();
          p.tx_front_off = 0;
        } else {
          p.tx_front_off += left;
          left = 0;
        }
      }
      if (injected_short) return;  // leave the tail for the next flush
    }
  }

  void drain_rx(int peer, std::size_t burst) {
    peer_t& p = peers_[static_cast<std::size_t>(peer)];
    if (p.fd < 0 || is_dead(peer)) return;
    // Append everything the socket holds.
    for (;;) {
      const std::size_t old = p.rx.size();
      p.rx.resize(old + 65536);
      const ssize_t got = ::recv(p.fd, p.rx.data() + old, 65536, MSG_DONTWAIT);
      if (got > 0) {
        p.rx.resize(old + static_cast<std::size_t>(got));
        if (got < 65536) break;
        continue;
      }
      p.rx.resize(old);
      if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (got < 0 && errno == EINTR) continue;
      // EOF or hard error: the peer process is gone.
      mark_dead_local(peer);
      return;
    }
    parse_rx(peer, burst);
  }

  // Dispatches up to `burst` complete frames from the peer's rx staging.
  // Returns true when at least one complete frame is still waiting (the
  // caller must guarantee another pump visits this peer).
  bool parse_rx(int peer, std::size_t burst) {
    peer_t& p = peers_[static_cast<std::size_t>(peer)];
    std::size_t dispatched = 0;
    while (dispatched < burst &&
           p.rx.size() - p.rx_pos >= sizeof(frame_header_t)) {
      frame_header_t header;
      std::memcpy(&header, p.rx.data() + p.rx_pos, sizeof(header));
      if (header.payload_size > rx_frame_limit_) {
        // A length prefix no legitimate frame can carry means stream framing
        // is lost — unrecoverable on a byte stream. Kill the connection
        // rather than growing the reassembly buffer toward 4 GB waiting for
        // payload bytes that will never arrive.
        p.rx.clear();
        p.rx_pos = 0;
        mark_dead_local(peer);
        return false;
      }
      const std::size_t need = sizeof(frame_header_t) + header.payload_size;
      if (p.rx.size() - p.rx_pos < need) break;
      dispatch_frame(header, p.rx.data() + p.rx_pos + sizeof(header));
      p.rx_pos += need;
      ++dispatched;
    }
    bool more = false;
    if (p.rx.size() - p.rx_pos >= sizeof(frame_header_t)) {
      frame_header_t header;
      std::memcpy(&header, p.rx.data() + p.rx_pos, sizeof(header));
      more = p.rx.size() - p.rx_pos >=
             sizeof(frame_header_t) + header.payload_size;
    }
    if (p.rx_pos == p.rx.size()) {
      p.rx.clear();
      p.rx_pos = 0;
    } else if (p.rx_pos > 1 << 20) {
      p.rx.erase(p.rx.begin(),
                 p.rx.begin() + static_cast<std::ptrdiff_t>(p.rx_pos));
      p.rx_pos = 0;
    }
    return more;
  }

  void connect_mesh() {
    const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) sys_fail("socket(listen)");
    struct sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0)
      sys_fail("bind");
    if (::listen(listen_fd, nranks_) != 0) sys_fail("listen");
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
                      &len) != 0)
      sys_fail("getsockname");
    bootstrap::put("tcp." + std::to_string(self_),
                   std::to_string(ntohs(addr.sin_port)));

    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    // Connect to every lower rank, announcing who we are.
    for (int r = 0; r < self_; ++r) {
      const int port = std::atoi(
          bootstrap::get("tcp." + std::to_string(r), 30000, r).c_str());
      int fd = -1;
      for (;;) {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) sys_fail("socket(connect)");
        struct sockaddr_in peer{};
        peer.sin_family = AF_INET;
        peer.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        peer.sin_port = htons(static_cast<uint16_t>(port));
        if (::connect(fd, reinterpret_cast<struct sockaddr*>(&peer),
                      sizeof(peer)) == 0)
          break;
        ::close(fd);
        if (std::chrono::steady_clock::now() >= deadline)
          throw std::runtime_error("tcp backend: timeout connecting to rank " +
                                   std::to_string(r));
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      const int32_t hello = self_;
      if (::send(fd, &hello, sizeof(hello), MSG_NOSIGNAL) !=
          static_cast<ssize_t>(sizeof(hello)))
        sys_fail("send(hello)");
      adopt(r, fd);
    }
    // Accept one connection from every higher rank.
    for (int pending = nranks_ - 1 - self_; pending > 0; --pending) {
      struct pollfd pfd{listen_fd, POLLIN, 0};
      while (::poll(&pfd, 1, 100) <= 0) {
        if (std::chrono::steady_clock::now() >= deadline)
          throw std::runtime_error(
              "tcp backend: timeout accepting peer connections");
      }
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) sys_fail("accept");
      int32_t hello = -1;
      if (!read_exact(fd, &hello, sizeof(hello), deadline) || hello <= self_ ||
          hello >= nranks_) {
        ::close(fd);
        throw std::runtime_error("tcp backend: bad hello from peer");
      }
      adopt(hello, fd);
    }
    bootstrap::barrier("tcp-mesh");
    ::close(listen_fd);
  }

  void adopt(int rank, int fd) {
    set_nodelay(fd);
    set_nonblock(fd);
    peers_[static_cast<std::size_t>(rank)].fd = fd;
  }

  void setup_epoll() {
    pump_epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
    wake_epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
    wake_eventfd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (pump_epfd_ < 0 || wake_epfd_ < 0 || wake_eventfd_ < 0)
      sys_fail("epoll/eventfd setup");
    for (int r = 0; r < nranks_; ++r) {
      const int fd = peers_[static_cast<std::size_t>(r)].fd;
      if (fd < 0) continue;
      struct epoll_event ev{};
      ev.events = EPOLLIN | EPOLLRDHUP;  // level-triggered: pump consumes
      ev.data.u32 = static_cast<uint32_t>(r);
      if (::epoll_ctl(pump_epfd_, EPOLL_CTL_ADD, fd, &ev) != 0)
        sys_fail("epoll_ctl(pump)");
      ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;  // edge: listener only wakes
      if (::epoll_ctl(wake_epfd_, EPOLL_CTL_ADD, fd, &ev) != 0)
        sys_fail("epoll_ctl(wake)");
    }
    struct epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u32 = static_cast<uint32_t>(-1);
    if (::epoll_ctl(wake_epfd_, EPOLL_CTL_ADD, wake_eventfd_, &ev) != 0)
      sys_fail("epoll_ctl(eventfd)");
  }

  // Converts socket readability into doorbell rings so progress engines that
  // sleep on their doorbell wake for incoming traffic. Edge-triggered (the
  // listener never reads the sockets), with a periodic timeout that retries
  // stalled egress flushes.
  void start_listener() {
    listener_ = std::thread([this] {
      struct epoll_event events[16];
      const uint64_t timeout_us = peer_timeout_us();
      // With heartbeats on, wake often enough to ping and judge well inside
      // the timeout; the sweep's freeze grace handles our own stalls.
      int wait_ms = 200;
      if (timeout_us != 0)
        wait_ms = std::max(
            1, std::min(200, static_cast<int>(timeout_us / 4000)));
      uint64_t next_ping_us = 0;
      while (!listener_stop_.load(std::memory_order_acquire)) {
        const int n = ::epoll_wait(wake_epfd_, events, 16, wait_ms);
        if (listener_stop_.load(std::memory_order_acquire)) break;
        if (n > 0) {
          uint64_t junk;
          (void)::read(wake_eventfd_, &junk, sizeof(junk));
          // Socket readiness is proof of life for that socket's owner —
          // cheaper than waiting for the pump to dispatch its frames.
          for (int i = 0; i < n; ++i) {
            const uint32_t tag = events[i].data.u32;
            if (tag != static_cast<uint32_t>(-1))
              note_heard(static_cast<int>(tag));
          }
        }
        ring_all_doorbells();
        if (timeout_us != 0) {
          // Interval-gate the pings: the loop wakes on every socket edge, and
          // an arriving ping is itself an edge — ping-per-wakeup turns two
          // listeners into a ping storm at socket RTT rate.
          const uint64_t now = now_us();
          if (now >= next_ping_us) {
            for (int r = 0; r < nranks_; ++r)
              if (r != self_ && !is_dead(r)) send_ping(r);
            next_ping_us = now + std::max<uint64_t>(timeout_us / 4, 1000);
          }
          liveness_sweep();
        }
        check_poison_deadlines();
      }
    });
  }

  // A poisoned victim that never reads its poison (wedged) is declared dead
  // here when the fallback deadline passes.
  void check_poison_deadlines() {
    for (int r = 0; r < nranks_; ++r) {
      const uint64_t deadline =
          poison_deadline_us_[static_cast<std::size_t>(r)].load(
              std::memory_order_acquire);
      if (deadline == 0 || is_dead(r)) continue;
      if (now_us() >= deadline) mark_dead_local(r);
    }
  }

  void stop_listener() {
    listener_stop_.store(true, std::memory_order_release);
    const uint64_t one = 1;
    (void)::write(wake_eventfd_, &one, sizeof(one));
    if (listener_.joinable()) listener_.join();
  }

  const std::size_t txbuf_cap_;
  std::size_t rx_frame_limit_ = 0;
  std::vector<peer_t> peers_;
  std::unique_ptr<std::atomic<uint64_t>[]> poison_deadline_us_;
  mutable util::spinlock_t tfault_lock_;
  util::xoshiro256_t tfault_rng_;  // tfault_lock_ guarded
  int pump_epfd_ = -1;
  int wake_epfd_ = -1;
  int wake_eventfd_ = -1;
  std::thread listener_;
  std::atomic<bool> listener_stop_{false};
};

}  // namespace

std::shared_ptr<fabric_t> create_tcp_fabric(int self_rank, int nranks,
                                            const config_t& config) {
  return std::make_shared<tcp_fabric_t>(self_rank, nranks, config);
}

}  // namespace lci::net::detail
