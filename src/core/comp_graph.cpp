// Completion graph (paper Sec. 3.2.5 / 4.1.4): a set of operations with a
// partial execution order, similar in spirit to CUDA Graphs. Every node
// tracks its unfinished dependencies with an atomic counter; a node whose
// counter reaches zero is fired immediately, and a completed node signals all
// its descendants.
#include <atomic>
#include <cassert>
#include <deque>
#include <vector>

#include "core/comp_impl.hpp"
#include "core/runtime_impl.hpp"
#include "util/lcrq.hpp"

namespace lci::detail {

class graph_impl_t {
 public:
  uint32_t add_node(graph_fn_t fn) {
    assert(!started_ && "add_node after graph_start");
    const auto id = static_cast<uint32_t>(nodes_.size());
    nodes_.emplace_back();  // std::deque: existing node addresses are stable
    node_t& node = nodes_.back();
    node.fn = std::move(fn);
    node.comp.graph = this;
    node.comp.id = id;
    return id;
  }

  void add_edge(uint32_t from, uint32_t to) {
    assert(!started_ && "add_edge after graph_start");
    nodes_[from].children.push_back(to);
    ++nodes_[to].indegree_static;
  }

  comp_impl_t* node_comp(uint32_t id) { return &nodes_[id].comp; }

  void start() {
    completed_.store(0, std::memory_order_relaxed);
    while (retry_.try_pop()) {
    }
    for (auto& node : nodes_)
      node.pending_deps.store(node.indegree_static,
                              std::memory_order_relaxed);
    started_ = true;
    for (uint32_t id = 0; id < nodes_.size(); ++id) {
      if (nodes_[id].indegree_static == 0) run_node(id);
    }
  }

  bool test() {
    // Re-run nodes that previously hit a retry (bounded by the current
    // backlog so a persistently retrying node does not spin here).
    const std::size_t pending = retry_.size_approx();
    for (std::size_t i = 0; i < pending; ++i) {
      auto id = retry_.try_pop();
      if (!id) break;
      run_node(*id);
    }
    return completed_.load(std::memory_order_acquire) == nodes_.size();
  }

  // Called by a posted operation's completion (node_comp) — possibly from a
  // progress thread.
  void on_node_signal(uint32_t id) { complete_node(id); }

 private:
  struct node_comp_t final : public comp_impl_t {
    graph_impl_t* graph = nullptr;
    uint32_t id = 0;
    void signal(const status_t&) override { graph->on_node_signal(id); }
  };

  struct node_t {
    graph_fn_t fn;
    std::vector<uint32_t> children;
    uint32_t indegree_static = 0;
    std::atomic<uint32_t> pending_deps{0};
    node_comp_t comp;
  };

  void run_node(uint32_t id) {
    const status_t status = nodes_[id].fn();
    if (status.error.is_done() || status.error.is_fatal()) {
      // Fatal counts as completion: the operation will never succeed, and a
      // stuck node would deadlock the whole graph.
      complete_node(id);
    } else if (status.error.is_retry()) {
      retry_.push(id);
    }
    // posted: completion arrives through node_comp.
  }

  void complete_node(uint32_t id) {
    completed_.fetch_add(1, std::memory_order_release);
    for (const uint32_t child : nodes_[id].children) {
      if (nodes_[child].pending_deps.fetch_sub(
              1, std::memory_order_acq_rel) == 1) {
        run_node(child);  // ready nodes fire immediately
      }
    }
  }

  std::deque<node_t> nodes_;
  std::atomic<std::size_t> completed_{0};
  util::lcrq_t<uint32_t> retry_{64};
  bool started_ = false;
};

}  // namespace lci::detail

namespace lci {

graph_t alloc_graph(runtime_t) {
  graph_t graph;
  graph.p = new detail::graph_impl_t;
  return graph;
}

void free_graph(graph_t* graph) {
  if (graph == nullptr || graph->p == nullptr) return;
  delete graph->p;
  graph->p = nullptr;
}

graph_node_t graph_add_node(graph_t graph, graph_fn_t fn) {
  return graph.p->add_node(std::move(fn));
}

void graph_add_edge(graph_t graph, graph_node_t from, graph_node_t to) {
  graph.p->add_edge(from, to);
}

comp_t graph_node_comp(graph_t graph, graph_node_t node) {
  comp_t comp;
  comp.p = graph.p->node_comp(node);
  return comp;
}

void graph_start(graph_t graph) { graph.p->start(); }

bool graph_test(graph_t graph) { return graph.p->test(); }

}  // namespace lci
