// Packets and the packet pool (paper Sec. 4.1.2).
//
// Packets are fixed-size pre-registered buffers used by the buffer-copy
// protocol and as pre-posted receive buffers. The pool is a collection of
// per-thread deques managed by an MPMC array: each thread gets/puts at the
// tail of its own deque (cache-hot end); when its deque is empty it steals
// half the packets from the head of a randomly chosen victim. Thread safety
// is a per-deque spinlock, so there is no contention during normal operation.
//
// Sharded mode (receive-path sharding): constructed with nshards > 1 the
// pool switches to per-shard freelists — indexed by the thread's shard pin
// (lci::pin_thread_shard), falling back to thread_id % nshards — with batch
// refill/spill against a global reservoir. A pinned thread's get/put touches
// only its shard's lock; the reservoir lock is taken once per refill_batch
// moves, not per packet. Packets are carved from the slab in contiguous
// per-shard ranges so first-touch page placement keeps a shard's packets
// local to the NUMA node of the threads that use it. nshards <= 1 keeps the
// per-thread-deque path byte-identical to the unsharded pool.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "util/cacheline.hpp"
#include "util/mpmc_array.hpp"
#include "util/rng.hpp"
#include "util/steal_deque.hpp"
#include "util/thread.hpp"

namespace lci::detail {

class packet_pool_impl_t;

// Packet layout: one cache-line header followed by `capacity` payload bytes.
struct alignas(util::cache_line_size) packet_t {
  packet_pool_impl_t* pool = nullptr;
  // Stamped by the progress engine when a packet is retained in the matching
  // engine as an unexpected message, so the posting path that later matches
  // it can recover the sender and payload length.
  int peer_rank = -1;
  uint32_t payload_size = 0;
  // Reference count for shared ownership of one received packet by several
  // consumers (an eager_batch delivering multiple AM payloads in
  // packet-delivery mode). 0 outside that path; armed by the batch walker and
  // decremented by release_am_packet, which returns the packet to its pool
  // when the count hits zero.
  std::atomic<uint32_t> refs{0};
  // Set on packets heap-allocated by the batch unpacker when the pool ran
  // dry while re-staging an unmatched sub-message; put() frees them instead
  // of pushing them into a deque, so the pool never grows.
  uint32_t heap_orphan = 0;

  char* payload() noexcept {
    return reinterpret_cast<char*>(this) + sizeof(packet_t);
  }
  static packet_t* from_payload(void* payload) noexcept {
    return reinterpret_cast<packet_t*>(static_cast<char*>(payload) -
                                       sizeof(packet_t));
  }
};
static_assert(sizeof(packet_t) == util::cache_line_size);

// Written immediately in front of every packet-delivered active-message
// payload (over the just-parsed msg_header_t / batch sub-header — both are 16
// bytes, so the record always fits). release_am_packet reads it back to find
// the owning packet, which may not be header-adjacent when the payload is a
// slice of an eager_batch.
struct am_packet_ref_t {
  packet_t* owner = nullptr;
  uint64_t magic = 0;
};
inline constexpr uint64_t am_packet_magic = 0x4c4349414d524546ull;  // LCIAMREF
static_assert(sizeof(am_packet_ref_t) == 16);

class packet_pool_impl_t {
 public:
  packet_pool_impl_t(std::size_t npackets, std::size_t packet_capacity,
                     std::size_t nshards = 1);
  ~packet_pool_impl_t();
  packet_pool_impl_t(const packet_pool_impl_t&) = delete;
  packet_pool_impl_t& operator=(const packet_pool_impl_t&) = delete;

  // Non-blocking get: pops from the caller's deque, stealing on miss.
  // Returns nullptr when the steal attempts fail (=> retry_nopacket).
  packet_t* get();
  // Returns a packet to the caller's deque.
  void put(packet_t* packet);

  std::size_t packet_capacity() const noexcept { return packet_capacity_; }
  std::size_t total_packets() const noexcept { return npackets_; }
  // Packets currently sitting in deques (approximate; excludes in-flight).
  std::size_t pooled_approx() const noexcept;

  std::size_t num_shards() const noexcept { return nshards_; }

 private:
  using deque_t = util::steal_deque_t<packet_t*>;
  deque_t* local_deque();

  // Sharded mode: one freelist per shard plus the global reservoir. The
  // vector-as-stack keeps the most recently freed packet on top (hot end);
  // spills move the *front* (coldest) packets out.
  struct alignas(util::cache_line_size) freelist_t {
    util::spinlock_t lock;
    std::vector<packet_t*> items;  // guarded by lock
  };
  static constexpr std::size_t refill_batch = 32;
  std::size_t shard_of() const noexcept;
  packet_t* get_sharded();
  void put_sharded(packet_t* packet);

  const std::size_t npackets_;
  const std::size_t packet_capacity_;
  const std::size_t nshards_;
  std::size_t spill_high_ = 0;  // per-shard high-water before spilling
  std::vector<std::unique_ptr<char[]>> slabs_;
  util::mpmc_array_t<deque_t*> deques_{64};
  std::vector<std::unique_ptr<deque_t>> deque_storage_;  // guarded by reg_lock_
  util::spinlock_t reg_lock_;
  std::unique_ptr<freelist_t[]> shard_lists_;  // size nshards_ when sharded
  freelist_t reservoir_;
};

}  // namespace lci::detail
