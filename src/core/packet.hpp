// Packets and the packet pool (paper Sec. 4.1.2).
//
// Packets are fixed-size pre-registered buffers used by the buffer-copy
// protocol and as pre-posted receive buffers. The pool is a collection of
// per-thread deques managed by an MPMC array: each thread gets/puts at the
// tail of its own deque (cache-hot end); when its deque is empty it steals
// half the packets from the head of a randomly chosen victim. Thread safety
// is a per-deque spinlock, so there is no contention during normal operation.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "util/cacheline.hpp"
#include "util/mpmc_array.hpp"
#include "util/rng.hpp"
#include "util/steal_deque.hpp"
#include "util/thread.hpp"

namespace lci::detail {

class packet_pool_impl_t;

// Packet layout: one cache-line header followed by `capacity` payload bytes.
struct alignas(util::cache_line_size) packet_t {
  packet_pool_impl_t* pool = nullptr;
  // Stamped by the progress engine when a packet is retained in the matching
  // engine as an unexpected message, so the posting path that later matches
  // it can recover the sender and payload length.
  int peer_rank = -1;
  uint32_t payload_size = 0;

  char* payload() noexcept {
    return reinterpret_cast<char*>(this) + sizeof(packet_t);
  }
  static packet_t* from_payload(void* payload) noexcept {
    return reinterpret_cast<packet_t*>(static_cast<char*>(payload) -
                                       sizeof(packet_t));
  }
};
static_assert(sizeof(packet_t) == util::cache_line_size);

class packet_pool_impl_t {
 public:
  packet_pool_impl_t(std::size_t npackets, std::size_t packet_capacity);
  ~packet_pool_impl_t();
  packet_pool_impl_t(const packet_pool_impl_t&) = delete;
  packet_pool_impl_t& operator=(const packet_pool_impl_t&) = delete;

  // Non-blocking get: pops from the caller's deque, stealing on miss.
  // Returns nullptr when the steal attempts fail (=> retry_nopacket).
  packet_t* get();
  // Returns a packet to the caller's deque.
  void put(packet_t* packet);

  std::size_t packet_capacity() const noexcept { return packet_capacity_; }
  std::size_t total_packets() const noexcept { return npackets_; }
  // Packets currently sitting in deques (approximate; excludes in-flight).
  std::size_t pooled_approx() const noexcept;

 private:
  using deque_t = util::steal_deque_t<packet_t*>;
  deque_t* local_deque();

  const std::size_t npackets_;
  const std::size_t packet_capacity_;
  std::vector<std::unique_ptr<char[]>> slabs_;
  util::mpmc_array_t<deque_t*> deques_{64};
  std::vector<std::unique_ptr<deque_t>> deque_storage_;  // guarded by reg_lock_
  util::spinlock_t reg_lock_;
};

}  // namespace lci::detail
