// Operation-lifecycle tracing and latency histograms.
//
// An always-compiled, runtime-gated tracing layer: every stage boundary of a
// message's life (post, backlog park/retire, coalesce buffer/flush, wire
// push/deliver, match, rendezvous RTS/RTR/FIN, completion — including fatal
// completions) can emit a fixed-size event into a per-thread lock-free ring,
// and post-to-completion / progress-poll latencies feed log2-bucketed
// histograms sharded per thread like counter_block_t.
//
// Design constraints, in order:
//  1. Zero-cost when off. Every record helper starts with a single relaxed
//     load of an inline atomic (`on()`); span ends additionally short-circuit
//     on span.id == 0 without touching any atomic. Nothing else happens.
//  2. No link dependency. The simulated fabric (lci_net) instruments wire
//     push/deliver but does not link the core library, so the entire
//     recording path is header-inline; only snapshotting/exporting lives in
//     trace.cpp (core).
//  3. TSan-clean when on. Ring slots are seqlock-published but every word is
//     a std::atomic, so a concurrent snapshot never performs a non-atomic
//     racy read; torn slots are detected via the per-generation sequence
//     number and dropped from the snapshot.
//
// The tracer is process-global, not per-runtime: a wire message crosses
// runtimes (simulated ranks live in one process), so spans must share one id
// space and one clock. Runtimes allocated with alloc_runtime_x().trace(true)
// retain/release a global enable refcount; the first retain installs ring
// size and sampling.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/cacheline.hpp"
#include "util/mpmc_array.hpp"
#include "util/spinlock.hpp"
#include "util/thread.hpp"

namespace lci::trace {

// Span/event taxonomy. Op-lifecycle spans (post + the op kinds) share one op
// id across all their events, so a Chrome trace nests the post call, backlog
// residency and wire hops under the op they belong to.
enum class kind_t : uint8_t {
  post,        // span: duration of the user's post_* call
  op_eager,    // span: post -> completion, eager (inject/bcopy) path
  op_batch,    // span: post -> completion, coalesced (eager_batch) sub-op
  op_rdv,      // span: post -> completion, rendezvous send
  op_recv,     // span: recv post -> completion (eager, batch or rendezvous)
  backlog,     // span: backlog park -> retire
  batch_slot,  // span: aggregation slot armed -> flushed/aborted
  wire,        // span: fabric wire push -> delivery (or drop)
  engine_sleep,  // span: auto-progress worker doorbell sleep -> wakeup
  coalesce,    // instant: sub-message appended into an aggregation slot
  match,       // instant: send/recv matched in a matching engine
  rts,         // instant: rendezvous RTS posted (send side)
  rtr,         // instant: rendezvous RTR posted (recv side)
  fin,         // instant: rendezvous FIN immediate observed (recv side)
  count_
};

enum class phase_t : uint8_t { begin = 0, end = 1, instant = 2 };

// Latency histogram kinds: post-to-completion per op family, plus the
// duration of individual progress polls.
enum class hist_t : uint8_t {
  post_eager,
  post_batch,
  post_rdv,
  post_recv,
  progress_poll,
  count_
};

inline const char* to_string(kind_t kind) noexcept {
  switch (kind) {
    case kind_t::post:
      return "post";
    case kind_t::op_eager:
      return "eager";
    case kind_t::op_batch:
      return "eager_batch";
    case kind_t::op_rdv:
      return "rendezvous";
    case kind_t::op_recv:
      return "recv";
    case kind_t::backlog:
      return "backlog";
    case kind_t::batch_slot:
      return "batch_slot";
    case kind_t::wire:
      return "wire";
    case kind_t::engine_sleep:
      return "engine_sleep";
    case kind_t::coalesce:
      return "coalesce_append";
    case kind_t::match:
      return "match";
    case kind_t::rts:
      return "rts";
    case kind_t::rtr:
      return "rtr";
    case kind_t::fin:
      return "fin";
    default:
      return "?";
  }
}

inline const char* to_string(hist_t hist) noexcept {
  switch (hist) {
    case hist_t::post_eager:
      return "post_eager";
    case hist_t::post_batch:
      return "post_batch";
    case hist_t::post_rdv:
      return "post_rdv";
    case hist_t::post_recv:
      return "post_recv";
    case hist_t::progress_poll:
      return "progress_poll";
    default:
      return "?";
  }
}

// A live span handle carried inside op state (records, pending-table
// entries, backlog entries). id == 0 means "not traced" (tracing off or the
// op was sampled out); all downstream record sites check it first.
struct span_t {
  uint64_t id = 0;
  uint64_t begin_ns = 0;
  explicit operator bool() const noexcept { return id != 0; }
};

namespace detail {

inline std::atomic<bool> g_on{false};       // the hot-path gate
inline std::atomic<int> g_refs{0};          // runtimes holding tracing open
inline std::atomic<uint32_t> g_sample{1};   // record 1 op in N per thread
inline std::atomic<uint64_t> g_next_id{0};  // op ids; 0 is reserved
inline std::atomic<uint64_t> g_gen{1};      // bumped by configure/reset
inline std::atomic<std::size_t> g_ring_cap{1u << 14};  // slots, power of two

constexpr std::size_t hist_buckets = 64;

// One 40-byte seqlock slot per event. All words atomic: a snapshot racing
// the owning writer reads garbage-free values and uses the per-generation
// sequence (index*2+2 when slot i's generation is published) to reject
// in-progress or overwritten slots.
struct slot_t {
  std::atomic<uint64_t> seq{0};
  std::atomic<uint64_t> w[4];
};

// Per-thread state: an SPSC event ring (this thread is the only producer;
// snapshots are the racy consumers) plus this thread's histogram cells.
// States are registered in a global mpmc_array keyed by util::thread_id(),
// exactly like counter_block_t's cell blocks; a generation bump (reconfigure
// or trace_reset) retires a state in place — it stays allocated for any
// concurrent writer but becomes invisible to snapshots, and the thread
// lazily allocates a fresh one on its next event.
struct thread_state_t {
  thread_state_t(std::size_t tid_in, std::size_t capacity, uint64_t gen_in)
      : tid(static_cast<uint32_t>(tid_in)),
        gen(gen_in),
        mask(capacity - 1),
        slots(new slot_t[capacity]) {
    for (auto& cell : hist_cells) cell.store(0, std::memory_order_relaxed);
    for (auto& cell : hist_max) cell.store(0, std::memory_order_relaxed);
  }

  void record_event(uint64_t ts, uint64_t id, uint64_t w2,
                    uint64_t w3) noexcept {
    const uint64_t h = head.load(std::memory_order_relaxed);
    slot_t& slot = slots[h & mask];
    // Seqlock write: odd marks in-progress. The release fence keeps the
    // odd store ahead of the payload stores, so a reader that observes any
    // new payload word re-reads a sequence != i*2+2 and rejects the slot.
    slot.seq.store(h * 2 + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    slot.w[0].store(ts, std::memory_order_relaxed);
    slot.w[1].store(id, std::memory_order_relaxed);
    slot.w[2].store(w2, std::memory_order_relaxed);
    slot.w[3].store(w3, std::memory_order_relaxed);
    slot.seq.store(h * 2 + 2, std::memory_order_release);
    head.store(h + 1, std::memory_order_release);
  }

  void record_hist(hist_t hist, uint64_t ns) noexcept {
    const std::size_t bucket =
        ns == 0 ? 0
                : std::min<std::size_t>(hist_buckets - 1, std::bit_width(ns));
    auto& cell =
        hist_cells[static_cast<std::size_t>(hist) * hist_buckets + bucket];
    cell.fetch_add(1, std::memory_order_relaxed);
    auto& peak = hist_max[static_cast<std::size_t>(hist)];
    if (ns > peak.load(std::memory_order_relaxed))
      peak.store(ns, std::memory_order_relaxed);
  }

  const uint32_t tid;
  const uint64_t gen;
  const std::size_t mask;
  std::atomic<uint64_t> head{0};  // monotonic next-write index
  std::unique_ptr<slot_t[]> slots;
  alignas(util::cache_line_size) std::atomic<uint64_t>
      hist_cells[static_cast<std::size_t>(hist_t::count_) * hist_buckets];
  std::atomic<uint64_t> hist_max[static_cast<std::size_t>(hist_t::count_)];
};

class registry_t {
 public:
  thread_state_t* acquire(std::size_t tid) {
    const uint64_t gen = g_gen.load(std::memory_order_acquire);
    std::size_t capacity = g_ring_cap.load(std::memory_order_acquire);
    capacity = std::max<std::size_t>(8, std::bit_ceil(capacity));
    auto owned = std::make_unique<thread_state_t>(tid, capacity, gen);
    thread_state_t* state = owned.get();
    {
      std::lock_guard<util::spinlock_t> guard(lock_);
      storage_.push_back(std::move(owned));
    }
    states_.put_extend(tid, state);
    return state;
  }

  // Snapshot-side walk over the latest state of every thread id. States from
  // older generations are retired data and skipped.
  template <typename Fn>
  void for_each_current(Fn&& fn) const {
    const uint64_t gen = g_gen.load(std::memory_order_acquire);
    const std::size_t n = states_.size();
    for (std::size_t i = 0; i < n; ++i) {
      thread_state_t* state = states_.get(i);
      if (state != nullptr && state->gen == gen) fn(state);
    }
  }

 private:
  mutable util::mpmc_array_t<thread_state_t*> states_{64};
  std::vector<std::unique_ptr<thread_state_t>> storage_;  // lock_
  util::spinlock_t lock_;
};

inline registry_t& registry() {
  static registry_t instance;
  return instance;
}

inline thread_state_t* local_state() {
  struct cache_t {
    thread_state_t* state = nullptr;
    uint64_t gen = 0;
  };
  thread_local cache_t cache;
  const uint64_t gen = g_gen.load(std::memory_order_relaxed);
  if (cache.state != nullptr && cache.gen == gen) return cache.state;
  cache.state = registry().acquire(util::thread_id());
  cache.gen = cache.state->gen;
  return cache.state;
}

// The 1-in-N sampling decision (per-thread state so no shared cacheline is
// touched on the sampled-out path). A per-thread xorshift draw, not a fixed
// 1-in-N stride: begin() is called in regular patterns (an eager send loop
// alternates post/wire begins), and a fixed stride phase-locks against such
// patterns so one span kind soaks up every sample while another is never
// picked.
inline bool sample_draw() noexcept {
  const uint32_t n = g_sample.load(std::memory_order_relaxed);
  if (n <= 1) return true;
  thread_local uint64_t rng =
      (util::thread_id() + 1) * 0x9e3779b97f4a7c15ull;
  rng ^= rng << 13;
  rng ^= rng >> 7;
  rng ^= rng << 17;
  return rng % n == 0;
}

// Allocate the next op id, honoring sampling. Returns 0 when the op is
// sampled out; every downstream site skips on id == 0.
inline uint64_t next_id() noexcept {
  if (!sample_draw()) return 0;
  return g_next_id.fetch_add(1, std::memory_order_relaxed) + 1;
}

inline void emit(uint64_t ts, uint64_t id, kind_t kind, phase_t phase,
                 uint8_t err, int rank, uint32_t tag, uint64_t size) {
  const uint64_t w2 = static_cast<uint64_t>(kind) |
                      (static_cast<uint64_t>(phase) << 8) |
                      (static_cast<uint64_t>(err) << 16) |
                      (static_cast<uint64_t>(static_cast<uint32_t>(rank))
                       << 32);
  const uint64_t w3 =
      static_cast<uint64_t>(tag) |
      (std::min<uint64_t>(size, 0xffffffffull) << 32);
  local_state()->record_event(ts, id, w2, w3);
}

}  // namespace detail

// The hot-path gate: one relaxed load. Everything else is behind it.
inline bool on() noexcept {
  return detail::g_on.load(std::memory_order_relaxed);
}

// The sampling gate for per-call costs outside the op-id flow (the
// progress-poll timing pays two clock reads per poll; at spin-loop poll
// rates that dwarfs the polled work, so it honors 1-in-N too).
inline bool sampled() noexcept { return detail::sample_draw(); }

inline uint64_t now_ns() noexcept {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Open a span with a fresh op id. Returns a null span when tracing is off or
// the op was sampled out.
inline span_t begin(kind_t kind, int rank = -1, uint32_t tag = 0,
                    uint64_t size = 0) {
  if (!on()) return {};
  const uint64_t id = detail::next_id();
  if (id == 0) return {};
  span_t span{id, now_ns()};
  detail::emit(span.begin_ns, id, kind, phase_t::begin, 0, rank, tag, size);
  return span;
}

// Open a span that shares an existing op's id (e.g. the backlog-residency
// span of an already-traced op). Null when the op itself is untraced.
inline span_t begin_linked(uint64_t id, kind_t kind, int rank = -1,
                           uint32_t tag = 0, uint64_t size = 0) {
  if (id == 0 || !on()) return {};
  span_t span{id, now_ns()};
  detail::emit(span.begin_ns, id, kind, phase_t::begin, 0, rank, tag, size);
  return span;
}

// Open a span sharing `base`'s id AND its begin timestamp: the op-lifecycle
// span of a post whose clock started when the post call did. The begin event
// is emitted retroactively at base.begin_ns (the snapshot sorts by time).
inline span_t begin_at(const span_t& base, kind_t kind, int rank = -1,
                       uint32_t tag = 0, uint64_t size = 0) {
  if (base.id == 0 || !on()) return {};
  detail::emit(base.begin_ns, base.id, kind, phase_t::begin, 0, rank, tag,
               size);
  return base;
}

inline void end(const span_t& span, kind_t kind, uint8_t err = 0,
                int rank = -1, uint32_t tag = 0, uint64_t size = 0) {
  if (span.id == 0 || !on()) return;
  detail::emit(now_ns(), span.id, kind, phase_t::end, err, rank, tag, size);
}

// End an op span and record its latency. Fatal completions (err != 0) emit
// the end event but stay out of the latency histogram: a deadline or peer
// death measures the failure policy, not the path under study.
inline void end_op(const span_t& span, kind_t kind, hist_t hist,
                   uint8_t err = 0, int rank = -1, uint32_t tag = 0,
                   uint64_t size = 0) {
  if (span.id == 0 || !on()) return;
  const uint64_t now = now_ns();
  detail::emit(now, span.id, kind, phase_t::end, err, rank, tag, size);
  if (err == 0 && now >= span.begin_ns)
    detail::local_state()->record_hist(hist, now - span.begin_ns);
}

// Instants annotate an op's track, so an untraced (sampled-out) op skips
// its instants too — every call site passes the op's span id.
inline void instant(kind_t kind, uint64_t id, int rank = -1,
                    uint32_t tag = 0, uint64_t size = 0) {
  if (id == 0 || !on()) return;
  detail::emit(now_ns(), id, kind, phase_t::instant, 0, rank, tag, size);
}

// Record a latency sample directly (progress-poll durations; too frequent
// for ring events).
inline void hist_record(hist_t hist, uint64_t ns) {
  if (!on()) return;
  detail::local_state()->record_hist(hist, ns);
}

// Runtime-lifecycle hooks (trace.cpp): a runtime built with .trace(true)
// retains on construction and releases on destruction; the first retain
// installs ring capacity and sampling.
void retain(std::size_t ring_size, uint32_t sample);
void release();

}  // namespace lci::trace

namespace lci {

// One decoded trace event. Thread id is the dense util::thread_id() of the
// recording thread; `id` groups all events of one op lifecycle (0 for
// instants not attached to a traced op).
struct trace_event_t {
  uint64_t ts_ns = 0;
  uint64_t id = 0;
  trace::kind_t kind = trace::kind_t::post;
  trace::phase_t phase = trace::phase_t::instant;
  uint8_t err = 0;
  uint32_t tid = 0;
  int32_t rank = -1;
  uint32_t tag = 0;
  uint32_t size = 0;
};

struct trace_snapshot_t {
  std::vector<trace_event_t> events;  // sorted by timestamp
  // Events lost to ring wraparound (oldest overwritten) plus the handful of
  // slots skipped because a writer was mid-publish during the snapshot.
  uint64_t trace_dropped = 0;
};

// Merged view of one latency histogram: log2 buckets (bucket i counts
// samples in [2^(i-1), 2^i) ns), count/max exact, percentiles reported at
// bucket resolution (upper bound of the bucket containing the quantile).
struct latency_histogram_t {
  uint64_t count = 0;
  uint64_t max_ns = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  std::array<uint64_t, 64> buckets{};
};

struct histograms_t {
  latency_histogram_t post_eager;
  latency_histogram_t post_batch;
  latency_histogram_t post_rdv;
  latency_histogram_t post_recv;
  latency_histogram_t progress_poll;
};

// Drain every thread's ring into one timestamp-sorted event list. Safe to
// call while traffic is in flight (racing slots are skipped, not torn) but
// meant for quiescent points: after a run, before trace_reset.
trace_snapshot_t trace_snapshot();

// Merge the per-thread histogram cells and compute p50/p99/max.
histograms_t get_histograms();

// Export the current snapshot as Chrome trace_event JSON (load in
// chrome://tracing or https://ui.perfetto.dev). Spans are emitted as async
// begin/end pairs keyed by op id so post->complete pairs render even when
// the two halves ran on different threads. Returns false if the file could
// not be written.
bool trace_dump_json(const std::string& path);

// Discard all recorded events and histogram samples (tests; between bench
// phases). Implemented as a generation bump: per-thread state is lazily
// reallocated, never freed under a concurrent writer.
void trace_reset();

}  // namespace lci
