// Runtime object: wraps default configuration and communication resources
// (paper Sec. 3.2.2 / 4.1).
#include <algorithm>
#include <cassert>
#include <cstring>
#include <mutex>

#include "core/runtime_impl.hpp"
#include "util/log.hpp"
#include "core/sim_internal.hpp"

namespace lci::detail {

namespace {

// get_attr must report the backend actually hosting the rank, which can
// differ from the request when the thread was already bound (sim::spawn
// worlds, a second runtime on a real-backend process).
runtime_attr_t stamp_backend(runtime_attr_t attr, const net::fabric_t& fabric) {
  attr.backend = fabric.kind();
  return attr;
}

}  // namespace

runtime_impl_t::runtime_impl_t(std::shared_ptr<net::fabric_t> fabric, int rank,
                               const runtime_attr_t& attr)
    : attr_(stamp_backend(attr, *fabric)),
      fabric_(std::move(fabric)),
      net_context_(fabric_->create_context(rank)),
      rank_(rank),
      nranks_(fabric_->nranks()) {
  if (attr_.packet_size <= sizeof(msg_header_t))
    throw fatal_error_t("packet_size must exceed the message header size");
  if (attr_.max_inject_size > eager_threshold())
    throw fatal_error_t("max_inject_size must not exceed the eager threshold");
  if (attr_.max_inject_size > 512)
    throw fatal_error_t("max_inject_size is limited to 512 bytes");
  // Eager frames (a packet plus the transport frame header) are not chunked:
  // one that can never fit the backend's ring / staging buffer would retry
  // forever in a silent livelock, so refuse the combination up front.
  if (attr_.packet_size > fabric_->max_send_payload())
    throw fatal_error_t(
        "packet_size exceeds what the backend transport can frame "
        "(raise LCI_SHM_RING_KB / LCI_TCP_TXBUF_KB or shrink packet_size)");
  if (attr_.reg_cache_entries > 0)
    reg_cache_ = std::make_unique<net::reg_cache_t>(net_context_.get(),
                                                    attr_.reg_cache_entries);
  // Receive-path sharding: the default pool and engine are partitioned by
  // the same shard count the devices use, so a pinned thread's packet draws
  // and matching-bucket traffic stay on its shard's freelist/segment. The
  // collective engine stays unsegmented: collective keys use wildcard-ish
  // derivations and see purge-rate traffic, not the per-message fast path.
  const std::size_t nshards = std::max<std::size_t>(1, attr_.device_shards);
  default_pool_ = std::make_unique<packet_pool_impl_t>(
      attr_.npackets, attr_.packet_size, nshards);
  default_engine_ = std::make_unique<matching_engine_impl_t>(
      attr_.matching_engine_buckets, nshards);
  coll_engine_ = std::make_unique<matching_engine_impl_t>(1024);
  register_engine(default_engine_.get());  // id 0
  register_engine(coll_engine_.get());     // id 1
  // Tracing is process-global (wire messages cross runtimes in-process):
  // retain before any device can emit. The first retain installs ring
  // capacity and sampling; later retains keep the gate open.
  if (attr_.trace) trace::retain(attr_.trace_ring_size, attr_.trace_sample);
  default_device_ = std::make_unique<device_impl_t>(this, attr_.prepost_depth,
                                                    attr_.auto_progress_default);
  LCI_LOG_(info,
           "runtime up: rank %d/%d packet_size=%zu npackets=%zu "
           "buckets=%zu",
           rank_, nranks_, attr_.packet_size, attr_.npackets,
           attr_.matching_engine_buckets);
}

runtime_impl_t::~runtime_impl_t() {
  // Teardown order matters: the default device detaches from the engine
  // (pause-the-world) while the engine is still alive, then the engine stops
  // and joins its threads. Only then can the rest of the runtime go away.
  default_device_.reset();
  progress_engine_.reset();
  if (util::log_enabled(util::log_level_t::info)) {
    const counters_t c = counters_.snapshot();
    LCI_LOG_(info,
             "runtime down: rank %d sends inj/bcopy/rdv=%lu/%lu/%lu "
             "matched=%lu am=%lu retries lock/pkt/mem=%lu/%lu/%lu backlog=%lu",
             rank_, c.send_inject, c.send_bcopy, c.send_rdv, c.recv_matched,
             c.am_delivered, c.retry_lock, c.retry_nopacket, c.retry_nomem,
             c.backlog_pushed);
  }
  // Last release closes the recording gate; recorded data stays readable
  // (trace_snapshot / trace_dump_json work after the runtimes are gone).
  if (attr_.trace) trace::release();
}

rcomp_t runtime_impl_t::register_rcomp(comp_impl_t* comp) {
  std::lock_guard<util::spinlock_t> guard(rcomp_lock_);
  if (!rcomp_freelist_.empty()) {
    const rcomp_t id = rcomp_freelist_.back();
    rcomp_freelist_.pop_back();
    rcomp_registry_.put(id, comp);
    return id;
  }
  return static_cast<rcomp_t>(rcomp_registry_.push_back(comp));
}

void runtime_impl_t::deregister_rcomp(rcomp_t rcomp) {
  std::lock_guard<util::spinlock_t> guard(rcomp_lock_);
  rcomp_registry_.put(rcomp, nullptr);
  rcomp_freelist_.push_back(rcomp);
}

comp_impl_t* runtime_impl_t::lookup_rcomp(rcomp_t rcomp) const {
  if (rcomp == rcomp_null || rcomp >= rcomp_registry_.size()) return nullptr;
  return rcomp_registry_.get(rcomp);
}

uint16_t runtime_impl_t::register_engine(matching_engine_impl_t* engine) {
  std::lock_guard<util::spinlock_t> guard(engine_lock_);
  uint16_t id;
  if (!engine_freelist_.empty()) {
    id = engine_freelist_.back();
    engine_freelist_.pop_back();
    engine_registry_.put(id, engine);
  } else {
    id = static_cast<uint16_t>(engine_registry_.push_back(engine));
  }
  engine->set_id(id);
  return id;
}

void runtime_impl_t::deregister_engine(uint16_t id) {
  std::lock_guard<util::spinlock_t> guard(engine_lock_);
  engine_registry_.put(id, nullptr);
  engine_freelist_.push_back(id);
}

matching_engine_impl_t* runtime_impl_t::lookup_engine(uint16_t id) const {
  if (id >= engine_registry_.size()) return nullptr;
  return engine_registry_.get(id);
}

void runtime_impl_t::attach_progress_device(device_impl_t* device) {
  {
    std::lock_guard<util::spinlock_t> guard(engine_create_lock_);
    if (progress_engine_ == nullptr) {
      const std::size_t n = std::max<std::size_t>(1, attr_.nprogress_threads);
      progress_engine_ = std::make_unique<progress_engine_t>(this, n);
    }
  }
  progress_engine_->attach_device(device);
}

void runtime_impl_t::detach_progress_device(device_impl_t* device) {
  // No lock: the engine pointer only transitions null -> engine while the
  // runtime is alive, and a device can only detach after attaching.
  if (progress_engine_ != nullptr) progress_engine_->detach_device(device);
}

uint64_t runtime_impl_t::injected_faults() const {
  std::lock_guard<util::spinlock_t> guard(device_lock_);
  uint64_t total = 0;
  for (device_impl_t* device : devices_)
    total += device->injected_faults_total();
  return total;
}

uint64_t runtime_impl_t::dropped_wire_messages() const {
  std::lock_guard<util::spinlock_t> guard(device_lock_);
  uint64_t total = 0;
  for (device_impl_t* device : devices_)
    total += device->wire_dropped_total();
  return total;
}

runtime_impl_t* resolve_runtime(runtime_t runtime) {
  if (runtime.p != nullptr) return runtime.p;
  runtime_t g = get_g_runtime();
  if (g.p == nullptr)
    throw fatal_error_t(
        "no runtime: pass one explicitly or call g_runtime_init first");
  return g.p;
}

}  // namespace lci::detail

namespace lci {

int get_rank_me(runtime_t runtime) {
  return detail::resolve_runtime(runtime)->rank();
}

int get_rank_n(runtime_t runtime) {
  return detail::resolve_runtime(runtime)->nranks();
}

counters_t get_counters(runtime_t runtime) {
  auto* rt = detail::resolve_runtime(runtime);
  counters_t c = rt->counters().snapshot();
  c.fault_injected = rt->injected_faults();
  c.wire_dropped = rt->dropped_wire_messages();
  if (net::reg_cache_t* cache = rt->reg_cache()) {
    const net::reg_cache_t::stats_t stats = cache->stats();
    c.reg_cache_hits = stats.hits;
    c.reg_cache_misses = stats.misses;
    c.reg_cache_evictions = stats.evictions;
  }
  const net::fabric_health_t health = rt->fabric().health();
  c.heartbeats_sent = health.heartbeats_sent;
  c.peers_timed_out = health.peers_timed_out;
  c.backpressure_waits = health.backpressure_waits;
  return c;
}

void reset_counters(runtime_t runtime) {
  detail::resolve_runtime(runtime)->counters().reset();
}

net::fault_config_t get_fault_config(runtime_t runtime) {
  return detail::resolve_runtime(runtime)->net_config().fault;
}

void progress_pause(runtime_t runtime) {
  auto* rt = detail::resolve_runtime(runtime);
  if (auto* engine = rt->progress_engine()) engine->pause();
}

void progress_resume(runtime_t runtime) {
  auto* rt = detail::resolve_runtime(runtime);
  if (auto* engine = rt->progress_engine()) engine->resume();
}

matching_engine_t alloc_matching_engine(runtime_t runtime,
                                        std::size_t num_buckets) {
  auto* rt = detail::resolve_runtime(runtime);
  matching_engine_t engine;
  engine.p = new detail::matching_engine_impl_t(
      num_buckets ? num_buckets : rt->attr().matching_engine_buckets);
  rt->register_engine(engine.p);
  engine.p->owner = rt;
  return engine;
}

void free_matching_engine(matching_engine_t* engine) {
  if (engine == nullptr || engine->p == nullptr) return;
  engine->p->owner->deregister_engine(engine->p->id());
  delete engine->p;
  engine->p = nullptr;
}

packet_pool_t alloc_packet_pool(runtime_t runtime, std::size_t npackets,
                                std::size_t packet_size) {
  auto* rt = detail::resolve_runtime(runtime);
  packet_pool_t pool;
  pool.p = new detail::packet_pool_impl_t(
      npackets ? npackets : rt->attr().npackets,
      packet_size ? packet_size : rt->attr().packet_size);
  return pool;
}

void free_packet_pool(packet_pool_t* pool) {
  if (pool == nullptr || pool->p == nullptr) return;
  delete pool->p;
  pool->p = nullptr;
}

mr_t register_memory(void* base, std::size_t size, runtime_t runtime) {
  auto* rt = detail::resolve_runtime(runtime);
  mr_t mr;
  mr.id = rt->net_context().register_memory(base, size);
  mr.runtime = rt;
  return mr;
}

void deregister_memory(mr_t* mr) {
  if (mr == nullptr || !mr->is_valid()) return;
  mr->runtime->net_context().deregister_memory(mr->id);
  mr->id = net::invalid_mr;
  mr->runtime = nullptr;
}

packet_handle_t get_packet(runtime_t runtime, packet_pool_t pool) {
  auto* rt = detail::resolve_runtime(runtime);
  detail::packet_pool_impl_t* p = pool.p != nullptr ? pool.p
                                                    : &rt->default_pool();
  detail::packet_t* packet = p->get();
  packet_handle_t handle;
  if (packet == nullptr) return handle;  // exhaustion: invalid handle
  handle.address = packet->payload() + sizeof(detail::msg_header_t);
  handle.capacity = p->packet_capacity() - sizeof(detail::msg_header_t);
  return handle;
}

void put_packet(packet_handle_t handle) {
  if (!handle.is_valid()) return;
  auto* packet = detail::packet_t::from_payload(
      static_cast<char*>(handle.address) - sizeof(detail::msg_header_t));
  packet->pool->put(packet);
}

void release_am_packet(const status_t& status) {
  if (status.buffer.base == nullptr) return;
  // The delivery path stamps an am_packet_ref_t immediately before the
  // payload (over the already-consumed wire header), so this works for both
  // standalone AM packets and sub-messages inside an eager_batch (which share
  // one refcounted packet).
  detail::am_packet_ref_t ref;
  std::memcpy(&ref, static_cast<char*>(status.buffer.base) -
                        sizeof(detail::am_packet_ref_t),
              sizeof(ref));
  assert(ref.magic == detail::am_packet_magic &&
         "release_am_packet: buffer was not delivered in packet mode");
  if (ref.owner->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    ref.owner->pool->put(ref.owner);
  }
}

rmr_t get_rmr(mr_t mr) {
  rmr_t rmr;
  rmr.id = mr.id;
  return rmr;
}

}  // namespace lci
