// Auto-progress engine implementation. See progress_engine.hpp for the
// design (three-phase idle policy, doorbell protocol, pause-the-world).
#include "core/progress_engine.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>

#include "core/runtime_impl.hpp"
#include "core/trace.hpp"
#include "util/backoff.hpp"

namespace lci::detail {

progress_engine_t::progress_engine_t(runtime_impl_t* runtime,
                                     std::size_t nthreads)
    : runtime_(runtime),
      spin_polls_(runtime->attr().progress_spin_polls),
      backoff_polls_(runtime->attr().progress_backoff_polls),
      sleep_bound_(std::chrono::microseconds(
          std::max<std::size_t>(1, runtime->attr().progress_sleep_us))) {
  workers_.reserve(std::max<std::size_t>(1, nthreads));
  for (std::size_t i = 0; i < std::max<std::size_t>(1, nthreads); ++i) {
    workers_.push_back(std::make_unique<worker_t>());
  }
  for (auto& worker : workers_) {
    worker->thread =
        std::thread([this, w = worker.get()]() { worker_loop(w); });
  }
}

progress_engine_t::~progress_engine_t() {
  {
    std::unique_lock<std::mutex> lock(control_mutex_);
    stopping_.store(true, std::memory_order_seq_cst);
  }
  worker_cv_.notify_all();
  for (auto& worker : workers_) {
    worker->waiter.wake();  // pull threads out of doorbell sleeps
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void progress_engine_t::attach_device(device_impl_t* device) {
  pause();
  // Least-loaded assignment keeps the common alloc_device sequence balanced
  // without a rebalancing pass.
  worker_t* target = workers_.front().get();
  for (auto& worker : workers_) {
    if (worker->devices.size() < target->devices.size()) {
      target = worker.get();
    }
  }
  target->devices.push_back(device);
  device->doorbell().attach(&target->waiter);
  resume();
}

void progress_engine_t::detach_device(device_impl_t* device) {
  pause();
  device->doorbell().attach(nullptr);
  for (auto& worker : workers_) {
    auto& devs = worker->devices;
    devs.erase(std::remove(devs.begin(), devs.end(), device), devs.end());
  }
  resume();
}

void progress_engine_t::pause() {
  std::unique_lock<std::mutex> lock(control_mutex_);
  pause_locked(lock);
}

void progress_engine_t::pause_locked(std::unique_lock<std::mutex>& lock) {
  pause_depth_.fetch_add(1, std::memory_order_seq_cst);
  for (auto& worker : workers_) worker->waiter.wake();
  control_cv_.wait(lock, [this]() {
    return parked_ == workers_.size() ||
           stopping_.load(std::memory_order_relaxed);
  });
}

void progress_engine_t::resume() {
  {
    std::unique_lock<std::mutex> lock(control_mutex_);
    resume_locked();
  }
  worker_cv_.notify_all();
}

void progress_engine_t::resume_locked() {
  // All mutations happen under control_mutex_, so this check makes an
  // unbalanced resume a harmless no-op instead of an underflow.
  if (pause_depth_.load(std::memory_order_relaxed) > 0) {
    pause_depth_.fetch_sub(1, std::memory_order_seq_cst);
  }
}

bool progress_engine_t::paused() const {
  return pause_depth_.load(std::memory_order_acquire) > 0;
}

bool progress_engine_t::service(worker_t* worker) {
  runtime_->counters().add(counter_id_t::progress_thread_polls);
  bool advanced = false;
  for (device_impl_t* device : worker->devices) {
    try {
      if (device->progress()) advanced = true;
    } catch (const std::exception& e) {
      // progress() only throws on protocol corruption (pre-acceptance
      // invariant violations). Unwinding out of an engine thread would
      // std::terminate, so report and keep the other devices alive.
      std::fprintf(stderr, "[lci] progress engine: uncaught error: %s\n",
                   e.what());
    }
  }
  if (advanced) {
    runtime_->counters().add(counter_id_t::progress_thread_advances);
  }
  return advanced;
}

void progress_engine_t::park(worker_t* worker,
                             std::unique_lock<std::mutex>& lock) {
  ++parked_;
  control_cv_.notify_all();
  worker_cv_.wait(lock, [this]() {
    return pause_depth_.load(std::memory_order_relaxed) == 0 ||
           stopping_.load(std::memory_order_relaxed);
  });
  --parked_;
  (void)worker;
}

void progress_engine_t::idle_sleep(worker_t* worker) {
  engine_waiter_t& waiter = worker->waiter;
  // Announce intent to sleep before the final poll: a doorbell ring after
  // this point bumps seq and we either see its work in the poll below or
  // fail the seq predicate and skip the wait entirely.
  waiter.sleepers.fetch_add(1, std::memory_order_seq_cst);
  const uint64_t observed = waiter.seq.load(std::memory_order_seq_cst);
  const bool advanced = service(worker);
  bool slept = false;
  if (!advanced && !stopping_.load(std::memory_order_relaxed) &&
      pause_depth_.load(std::memory_order_relaxed) == 0) {
    // An armed aggregation slot must be age-flushed by progress(), so never
    // sleep past its flush deadline — otherwise a coalesced message could sit
    // in the slot for a full sleep_bound_ instead of aggregation_flush_us.
    std::chrono::microseconds bound = sleep_bound_;
    for (device_impl_t* device : worker->devices) {
      if (device->has_armed_aggregation()) {
        const auto flush_us = std::chrono::microseconds(
            std::max<uint64_t>(1, device->agg_flush_us()));
        bound = std::min(bound, flush_us);
      }
    }
    std::unique_lock<std::mutex> lock(waiter.mutex);
    if (waiter.seq.load(std::memory_order_seq_cst) == observed) {
      runtime_->counters().add(counter_id_t::progress_sleeps);
      slept = true;
      const trace::span_t sleep_span =
          trace::begin(trace::kind_t::engine_sleep);
      // Bounded: a missed ring (doorbells are hints) costs at most
      // sleep_bound_ of latency, never liveness.
      waiter.cv.wait_for(lock, bound, [&]() {
        return waiter.seq.load(std::memory_order_relaxed) != observed ||
               stopping_.load(std::memory_order_relaxed) ||
               pause_depth_.load(std::memory_order_relaxed) != 0;
      });
      trace::end(sleep_span, trace::kind_t::engine_sleep);
    }
  }
  waiter.sleepers.fetch_sub(1, std::memory_order_seq_cst);
  if (slept && waiter.seq.load(std::memory_order_relaxed) != observed) {
    runtime_->counters().add(counter_id_t::progress_wakeups);
  }
}

void progress_engine_t::worker_loop(worker_t* worker) {
  util::backoff_t backoff;
  std::size_t idle_polls = 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    if (pause_depth_.load(std::memory_order_acquire) != 0) {
      std::unique_lock<std::mutex> lock(control_mutex_);
      // Re-check under the lock: resume may have raced us here.
      if (pause_depth_.load(std::memory_order_relaxed) != 0 &&
          !stopping_.load(std::memory_order_relaxed)) {
        park(worker, lock);
      }
      idle_polls = 0;
      backoff.reset();
      continue;
    }

    if (service(worker)) {
      idle_polls = 0;
      backoff.reset();
      continue;
    }

    ++idle_polls;
    if (idle_polls <= spin_polls_) {
      util::cpu_relax();
    } else if (idle_polls <= spin_polls_ + backoff_polls_) {
      backoff.spin();
    } else {
      idle_sleep(worker);
      // Stay in the backoff phase after waking: bursts often arrive in
      // trains, but re-earning the sleep keeps a trickle workload from
      // pinning a core.
      idle_polls = spin_polls_ + 1;
      backoff.reset();
    }
  }
}

}  // namespace lci::detail
