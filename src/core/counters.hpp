// Per-runtime statistics counters.
//
// Cheap (relaxed, cache-line-padded per counter) instrumentation of the
// communication paths: protocol mix, retry reasons, backlog traffic,
// rendezvous handshakes. Snapshots are taken with lci::get_counters and are
// approximate under concurrency (each counter is exact; cross-counter
// consistency is not promised), which is all debugging and benchmark
// reporting need.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/cacheline.hpp"

namespace lci {

// Snapshot returned to users; see counter_id_t for meanings.
struct counters_t {
  uint64_t send_inject = 0;      // eager sends below max_inject_size
  uint64_t send_bcopy = 0;       // buffer-copy eager sends
  uint64_t send_rdv = 0;         // rendezvous sends (RTS issued)
  uint64_t recv_posted = 0;      // receives inserted into a matching engine
  uint64_t recv_matched = 0;     // receives satisfied (eager or rendezvous)
  uint64_t am_delivered = 0;     // active messages signaled at the target
  uint64_t rma_put = 0;
  uint64_t rma_get = 0;
  uint64_t retry_lock = 0;       // try-lock wrapper misses surfaced
  uint64_t retry_nopacket = 0;   // packet-pool exhaustion surfaced
  uint64_t retry_nomem = 0;      // send-queue/wire back-pressure surfaced
  uint64_t backlog_pushed = 0;   // operations queued on a backlog
  uint64_t backlog_retired = 0;  // backlogged operations that completed
  uint64_t backlog_retries = 0;  // backlog retry attempts that failed again
  uint64_t backlog_peak_depth = 0;  // high-water mark of any backlog queue
  uint64_t comp_fatal = 0;       // completions delivered with a fatal error
  // Failure lifecycle: operations completed with fatal_canceled by cancel()
  // or drain(), with fatal_timeout by the deadline sweep, and with
  // fatal_peer_down by the dead-peer purge / posts naming a dead rank.
  uint64_t ops_canceled = 0;
  uint64_t ops_timed_out = 0;
  uint64_t peer_down_completions = 0;
  uint64_t progress_calls = 0;
  // Auto-progress engine (core/progress_engine.hpp): service rounds made by
  // background progress threads, rounds that advanced anything, times an
  // engine thread committed to a doorbell sleep, and times a sleeping (or
  // sleep-committing) thread was woken by a doorbell ring. The idle ratio of
  // the engine is 1 - progress_thread_advances / progress_thread_polls.
  uint64_t progress_thread_polls = 0;
  uint64_t progress_thread_advances = 0;
  uint64_t progress_sleeps = 0;
  uint64_t progress_wakeups = 0;
  // Retries forced by the simulated fabric's fault-injection policy. Summed
  // over the runtime's live devices at snapshot time (not a runtime counter
  // cell, so reset_counters does not clear it).
  uint64_t fault_injected = 0;
  // Wire messages that evaporated (loss_rate drops plus traffic discarded at
  // or from dead ranks). Like fault_injected, summed over live devices at
  // snapshot time.
  uint64_t wire_dropped = 0;
};

namespace detail {

enum class counter_id_t : int {
  send_inject,
  send_bcopy,
  send_rdv,
  recv_posted,
  recv_matched,
  am_delivered,
  rma_put,
  rma_get,
  retry_lock,
  retry_nopacket,
  retry_nomem,
  backlog_pushed,
  backlog_retired,
  backlog_retries,
  backlog_peak_depth,
  comp_fatal,
  ops_canceled,
  ops_timed_out,
  peer_down_completions,
  progress_calls,
  progress_thread_polls,
  progress_thread_advances,
  progress_sleeps,
  progress_wakeups,
  count_  // sentinel
};

class counter_block_t {
 public:
  void add(counter_id_t id, uint64_t delta = 1) noexcept {
    cells_[static_cast<std::size_t>(id)]->fetch_add(
        delta, std::memory_order_relaxed);
  }

  // Monotonic high-water mark (used by backlog_peak_depth).
  void record_max(counter_id_t id, uint64_t value) noexcept {
    auto& cell = *cells_[static_cast<std::size_t>(id)];
    uint64_t seen = cell.load(std::memory_order_relaxed);
    while (value > seen &&
           !cell.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  counters_t snapshot() const noexcept {
    counters_t out;
    out.send_inject = load(counter_id_t::send_inject);
    out.send_bcopy = load(counter_id_t::send_bcopy);
    out.send_rdv = load(counter_id_t::send_rdv);
    out.recv_posted = load(counter_id_t::recv_posted);
    out.recv_matched = load(counter_id_t::recv_matched);
    out.am_delivered = load(counter_id_t::am_delivered);
    out.rma_put = load(counter_id_t::rma_put);
    out.rma_get = load(counter_id_t::rma_get);
    out.retry_lock = load(counter_id_t::retry_lock);
    out.retry_nopacket = load(counter_id_t::retry_nopacket);
    out.retry_nomem = load(counter_id_t::retry_nomem);
    out.backlog_pushed = load(counter_id_t::backlog_pushed);
    out.backlog_retired = load(counter_id_t::backlog_retired);
    out.backlog_retries = load(counter_id_t::backlog_retries);
    out.backlog_peak_depth = load(counter_id_t::backlog_peak_depth);
    out.comp_fatal = load(counter_id_t::comp_fatal);
    out.ops_canceled = load(counter_id_t::ops_canceled);
    out.ops_timed_out = load(counter_id_t::ops_timed_out);
    out.peer_down_completions = load(counter_id_t::peer_down_completions);
    out.progress_calls = load(counter_id_t::progress_calls);
    out.progress_thread_polls = load(counter_id_t::progress_thread_polls);
    out.progress_thread_advances =
        load(counter_id_t::progress_thread_advances);
    out.progress_sleeps = load(counter_id_t::progress_sleeps);
    out.progress_wakeups = load(counter_id_t::progress_wakeups);
    return out;
  }

  void reset() noexcept {
    for (auto& cell : cells_) cell->store(0, std::memory_order_relaxed);
  }

 private:
  uint64_t load(counter_id_t id) const noexcept {
    return cells_[static_cast<std::size_t>(id)]->load(
        std::memory_order_relaxed);
  }

  util::padded<std::atomic<uint64_t>>
      cells_[static_cast<std::size_t>(counter_id_t::count_)];
};

}  // namespace detail
}  // namespace lci
