// Per-runtime statistics counters.
//
// Cheap (relaxed) instrumentation of the communication paths: protocol mix,
// retry reasons, backlog traffic, rendezvous handshakes. The hot counters
// (send_bcopy, progress_calls, recv_posted, ...) are bumped by every worker
// thread on every operation, so the block is sharded: each thread owns a
// cache-line-padded block of cells keyed by its dense util::thread_id(), and
// add() is an uncontended relaxed fetch_add on the thread's own line.
// Snapshots (lci::get_counters) sum the blocks and are approximate under
// concurrency (each counter is exact; cross-counter consistency is not
// promised), which is all debugging and benchmark reporting need.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/cacheline.hpp"
#include "util/mpmc_array.hpp"
#include "util/spinlock.hpp"
#include "util/thread.hpp"

namespace lci {

// Snapshot returned to users; see counter_id_t for meanings.
struct counters_t {
  uint64_t send_inject = 0;      // eager sends below max_inject_size
  uint64_t send_bcopy = 0;       // buffer-copy eager sends
  uint64_t send_rdv = 0;         // rendezvous sends (RTS issued)
  uint64_t recv_posted = 0;      // receives inserted into a matching engine
  uint64_t recv_matched = 0;     // receives satisfied (eager or rendezvous)
  uint64_t am_delivered = 0;     // active messages signaled at the target
  uint64_t rma_put = 0;
  uint64_t rma_get = 0;
  uint64_t retry_lock = 0;       // try-lock wrapper misses surfaced
  uint64_t retry_nopacket = 0;   // packet-pool exhaustion surfaced
  uint64_t retry_nomem = 0;      // send-queue/wire back-pressure surfaced
  uint64_t backlog_pushed = 0;   // operations queued on a backlog
  uint64_t backlog_retired = 0;  // backlogged operations that completed
  uint64_t backlog_retries = 0;  // backlog retry attempts that failed again
  uint64_t backlog_peak_depth = 0;  // high-water mark of any backlog queue
  uint64_t comp_fatal = 0;       // completions delivered with a fatal error
  // Failure lifecycle: operations completed with fatal_canceled by cancel()
  // or drain(), with fatal_timeout by the deadline sweep, and with
  // fatal_peer_down by the dead-peer purge / posts naming a dead rank.
  uint64_t ops_canceled = 0;
  uint64_t ops_timed_out = 0;
  uint64_t peer_down_completions = 0;
  uint64_t progress_calls = 0;
  // Auto-progress engine (core/progress_engine.hpp): service rounds made by
  // background progress threads, rounds that advanced anything, times an
  // engine thread committed to a doorbell sleep, and times a sleeping (or
  // sleep-committing) thread was woken by a doorbell ring. The idle ratio of
  // the engine is 1 - progress_thread_advances / progress_thread_polls.
  uint64_t progress_thread_polls = 0;
  uint64_t progress_thread_advances = 0;
  uint64_t progress_sleeps = 0;
  uint64_t progress_wakeups = 0;
  // Eager-message coalescing: sub-messages appended into aggregation slots,
  // eager_batch wire messages posted, flushes forced by the matching-order
  // rule (a non-aggregated message posted to a peer with an armed slot), and
  // eager_batch wire messages received and unpacked.
  uint64_t send_coalesced = 0;
  uint64_t batches_flushed = 0;
  uint64_t batch_flush_ordering = 0;
  uint64_t recv_batches = 0;
  // Shard routing: hashed-fallback routes served by the thread-local
  // (rank, tag) -> shard memo instead of recomputing the mix+mod. Pinned
  // threads bypass the hash entirely and count nothing here.
  uint64_t route_cache_hits = 0;
  // Retries forced by the simulated fabric's fault-injection policy. Summed
  // over the runtime's live devices at snapshot time (not a runtime counter
  // cell, so reset_counters does not clear it).
  uint64_t fault_injected = 0;
  // Wire messages that evaporated (loss_rate drops plus traffic discarded at
  // or from dead ranks). Like fault_injected, summed over live devices at
  // snapshot time.
  uint64_t wire_dropped = 0;
  // Registration cache (net/reg_cache.hpp): acquire()s served by a resident
  // interval, acquires that had to register with the fabric, and idle entries
  // retired by LRU pressure. Read from the runtime's cache at snapshot time
  // (not counter cells, so reset_counters does not clear them); all zero when
  // the cache is disabled (reg_cache_entries = 0).
  uint64_t reg_cache_hits = 0;
  uint64_t reg_cache_misses = 0;
  uint64_t reg_cache_evictions = 0;
  // Transport health (real backends; all zero on sim). Read from the fabric
  // at snapshot time (not counter cells, so reset_counters does not clear
  // them): liveness heartbeats sent (TCP ping frames / SHM progress-epoch
  // stamps), peers declared dead by the liveness timeout (organic deaths —
  // EOF, pid gone — do not count), and producers that parked on a full SHM
  // ring's consumer-progress futex instead of spinning.
  uint64_t heartbeats_sent = 0;
  uint64_t peers_timed_out = 0;
  uint64_t backpressure_waits = 0;
};

namespace detail {

enum class counter_id_t : int {
  send_inject,
  send_bcopy,
  send_rdv,
  recv_posted,
  recv_matched,
  am_delivered,
  rma_put,
  rma_get,
  retry_lock,
  retry_nopacket,
  retry_nomem,
  backlog_pushed,
  backlog_retired,
  backlog_retries,
  backlog_peak_depth,
  comp_fatal,
  ops_canceled,
  ops_timed_out,
  peer_down_completions,
  progress_calls,
  progress_thread_polls,
  progress_thread_advances,
  progress_sleeps,
  progress_wakeups,
  send_coalesced,
  batches_flushed,
  batch_flush_ordering,
  recv_batches,
  route_cache_hits,
  count_  // sentinel
};

// Sharded counter block: a registry of per-thread cell blocks (the same
// MPMC-array + registration-lock shape as the packet pool's deque registry).
// add()/record_max() touch only the calling thread's block; snapshot()/
// reset() walk all registered blocks. backlog_peak_depth is a high-water
// mark, so the snapshot takes the max across blocks instead of the sum.
class counter_block_t {
 public:
  counter_block_t() = default;
  counter_block_t(const counter_block_t&) = delete;
  counter_block_t& operator=(const counter_block_t&) = delete;

  void add(counter_id_t id, uint64_t delta = 1) noexcept {
    local_block()->cells[static_cast<std::size_t>(id)].fetch_add(
        delta, std::memory_order_relaxed);
  }

  // Monotonic high-water mark (used by backlog_peak_depth): each thread
  // raises its own cell; the snapshot maxes across threads.
  void record_max(counter_id_t id, uint64_t value) noexcept {
    auto& cell = local_block()->cells[static_cast<std::size_t>(id)];
    if (value > cell.load(std::memory_order_relaxed))
      cell.store(value, std::memory_order_relaxed);
  }

  counters_t snapshot() const noexcept {
    counters_t out;
    out.send_inject = sum(counter_id_t::send_inject);
    out.send_bcopy = sum(counter_id_t::send_bcopy);
    out.send_rdv = sum(counter_id_t::send_rdv);
    out.recv_posted = sum(counter_id_t::recv_posted);
    out.recv_matched = sum(counter_id_t::recv_matched);
    out.am_delivered = sum(counter_id_t::am_delivered);
    out.rma_put = sum(counter_id_t::rma_put);
    out.rma_get = sum(counter_id_t::rma_get);
    out.retry_lock = sum(counter_id_t::retry_lock);
    out.retry_nopacket = sum(counter_id_t::retry_nopacket);
    out.retry_nomem = sum(counter_id_t::retry_nomem);
    out.backlog_pushed = sum(counter_id_t::backlog_pushed);
    out.backlog_retired = sum(counter_id_t::backlog_retired);
    out.backlog_retries = sum(counter_id_t::backlog_retries);
    out.backlog_peak_depth = max_of(counter_id_t::backlog_peak_depth);
    out.comp_fatal = sum(counter_id_t::comp_fatal);
    out.ops_canceled = sum(counter_id_t::ops_canceled);
    out.ops_timed_out = sum(counter_id_t::ops_timed_out);
    out.peer_down_completions = sum(counter_id_t::peer_down_completions);
    out.progress_calls = sum(counter_id_t::progress_calls);
    out.progress_thread_polls = sum(counter_id_t::progress_thread_polls);
    out.progress_thread_advances = sum(counter_id_t::progress_thread_advances);
    out.progress_sleeps = sum(counter_id_t::progress_sleeps);
    out.progress_wakeups = sum(counter_id_t::progress_wakeups);
    out.send_coalesced = sum(counter_id_t::send_coalesced);
    out.batches_flushed = sum(counter_id_t::batches_flushed);
    out.batch_flush_ordering = sum(counter_id_t::batch_flush_ordering);
    out.recv_batches = sum(counter_id_t::recv_batches);
    out.route_cache_hits = sum(counter_id_t::route_cache_hits);
    return out;
  }

  void reset() noexcept {
    const std::size_t n = blocks_.size();
    for (std::size_t i = 0; i < n; ++i) {
      cell_block_t* block = blocks_.get(i);
      if (block == nullptr) continue;
      for (auto& cell : block->cells) cell.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(util::cache_line_size) cell_block_t {
    std::atomic<uint64_t> cells[static_cast<std::size_t>(counter_id_t::count_)];
    cell_block_t() {
      for (auto& cell : cells) cell.store(0, std::memory_order_relaxed);
    }
  };

  cell_block_t* local_block() noexcept {
    const std::size_t id = util::thread_id();
    cell_block_t* block = id < blocks_.size() ? blocks_.get(id) : nullptr;
    if (block != nullptr) return block;
    auto owned = std::make_unique<cell_block_t>();
    block = owned.get();
    {
      std::lock_guard<util::spinlock_t> guard(reg_lock_);
      block_storage_.push_back(std::move(owned));
    }
    blocks_.put_extend(id, block);
    return block;
  }

  uint64_t sum(counter_id_t id) const noexcept {
    uint64_t total = 0;
    const std::size_t n = blocks_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const cell_block_t* block = blocks_.get(i);
      if (block != nullptr)
        total += block->cells[static_cast<std::size_t>(id)].load(
            std::memory_order_relaxed);
    }
    return total;
  }

  uint64_t max_of(counter_id_t id) const noexcept {
    uint64_t best = 0;
    const std::size_t n = blocks_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const cell_block_t* block = blocks_.get(i);
      if (block == nullptr) continue;
      const uint64_t value = block->cells[static_cast<std::size_t>(id)].load(
          std::memory_order_relaxed);
      if (value > best) best = value;
    }
    return best;
  }

  mutable util::mpmc_array_t<cell_block_t*> blocks_{64};
  std::vector<std::unique_ptr<cell_block_t>> block_storage_;  // reg_lock_
  util::spinlock_t reg_lock_;
};

}  // namespace detail
}  // namespace lci
