// Basic collectives (paper Sec. 6): dissemination barrier and binomial-tree
// broadcast / reduce, built from LCI point-to-point primitives on a dedicated
// internal matching engine so they never interfere with user traffic.
//
// Calling convention: one thread per rank per collective, and every rank must
// invoke the same sequence of collectives (the per-runtime sequence number
// keys the matching tags).
#include <cstdlib>
#include <cstring>
#include <memory>

#include "core/runtime_impl.hpp"
#include "util/backoff.hpp"

namespace lci {

namespace {

using detail::device_impl_t;
using detail::runtime_impl_t;

enum class coll_op_t : uint32_t {
  barrier = 1,
  bcast = 2,
  reduce = 3,
  gather = 4,
  ibarrier = 5,
};

tag_t coll_tag(coll_op_t op, uint32_t seq, uint32_t round) {
  return (static_cast<uint32_t>(op) << 28) | ((seq & 0xfffffu) << 8) |
         (round & 0xffu);
}

struct coll_ctx_t {
  runtime_impl_t* rt;
  device_impl_t* dev;
  uint32_t seq;
};

coll_ctx_t make_ctx(runtime_t runtime, device_t device) {
  auto* rt = detail::resolve_runtime(runtime);
  auto* dev = device.p != nullptr ? device.p : &rt->default_device();
  return coll_ctx_t{rt, dev, rt->next_collective_seq()};
}

// Deadline stamped on every internal post so a collective cannot wait
// forever on a rank that aborted its half (see runtime_attr_t). 0 = none.
uint64_t coll_deadline(const coll_ctx_t& ctx) {
  return ctx.rt->attr().collective_deadline_us;
}

// Blocking wait used by every collective: progress the device until the sync
// fires, yielding to the scheduler on idle rounds so oversubscribed ranks
// (and auto-progressed devices, where our own progress() rarely wins work)
// do not busy-burn a core. Returns the completed status rather than throwing
// on a fatal one, so callers can release their sync comp first.
status_t coll_wait(const coll_ctx_t& ctx, comp_t sync) {
  util::backoff_t backoff;
  status_t status;
  while (!sync_test(sync, &status)) {
    if (ctx.dev->progress()) {
      backoff.reset();
    } else {
      backoff.spin();
    }
  }
  return status;
}

// Settles a collective receive whatever state it is in and frees its sync.
// `abort` is the failure path (the paired send already threw): the receive is
// cancelled if it is still parked, and we then wait out its completion —
// cancelled, matched, timed out, or peer-down, the sync always fires — so the
// sync is never freed with a live receive still pointing at it.
status_t finish_coll_recv(const coll_ctx_t& ctx, comp_t* sync, op_t op,
                          status_t rstatus, bool abort) {
  if (rstatus.error.is_posted()) {
    if (abort) cancel(op);
    rstatus = coll_wait(ctx, *sync);
  }
  free_comp(sync);
  return rstatus;
}

// Blocking send: retries through progress, waits for rendezvous completion.
void coll_send(const coll_ctx_t& ctx, int peer, const void* buf,
               std::size_t size, tag_t tag) {
  comp_t sync = alloc_sync(1, runtime_t{ctx.rt});
  matching_engine_t engine{&ctx.rt->coll_engine()};
  util::backoff_t backoff;
  const uint64_t deadline_us = coll_deadline(ctx);
  const uint64_t give_up =
      deadline_us != 0 ? detail::now_ns() + deadline_us * 1000 : 0;
  while (true) {
    // Collective hops are latency-bound control messages: never coalesce
    // them (a buffered hop would sit in a slot until an age flush, stalling
    // every rank behind the barrier).
    const status_t status =
        post_send_x(peer, const_cast<void*>(buf), size, tag, sync)
            .runtime(runtime_t{ctx.rt})
            .device(device_t{ctx.dev})
            .matching_engine(engine)
            .allow_aggregation(false)
            .deadline(deadline_us)();
    if (status.error.is_done()) break;
    if (status.error.is_posted()) {
      const status_t done = coll_wait(ctx, sync);
      free_comp(&sync);
      if (done.error.is_fatal())
        throw fatal_error_t("collective send failed fatally");
      return;
    }
    if (status.error.is_fatal()) {
      // Retrying a fatal error would spin forever; collectives have no
      // per-operation error reporting, so surface it as an exception.
      free_comp(&sync);
      throw fatal_error_t("collective send failed fatally");
    }
    // Retry: progress and back off when nothing moved (e.g. a peer's packet
    // pool is dry and only remote progress can refill it). The retry path
    // never parks state, so the collective deadline is enforced here.
    if (give_up != 0 && detail::now_ns() >= give_up) {
      free_comp(&sync);
      throw fatal_error_t("collective send timed out");
    }
    if (ctx.dev->progress()) {
      backoff.reset();
    } else {
      backoff.spin();
    }
  }
  free_comp(&sync);
}

// Blocking receive.
void coll_recv(const coll_ctx_t& ctx, int peer, void* buf, std::size_t size,
               tag_t tag) {
  comp_t sync = alloc_sync(1, runtime_t{ctx.rt});
  matching_engine_t engine{&ctx.rt->coll_engine()};
  op_t rop;
  const status_t status = post_recv_x(peer, buf, size, tag, sync)
                              .runtime(runtime_t{ctx.rt})
                              .device(device_t{ctx.dev})
                              .matching_engine(engine)
                              .deadline(coll_deadline(ctx))
                              .op_handle(&rop)();
  const status_t done = finish_coll_recv(ctx, &sync, rop, status, false);
  if (done.error.is_fatal())
    throw fatal_error_t("collective receive failed fatally");
}

}  // namespace

void barrier(runtime_t runtime, device_t device) {
  const coll_ctx_t ctx = make_ctx(runtime, device);
  const int n = ctx.rt->nranks();
  const int me = ctx.rt->rank();
  char token = 0;
  uint32_t round = 0;
  for (int dist = 1; dist < n; dist <<= 1, ++round) {
    const int to = (me + dist) % n;
    const int from = (me - dist % n + n) % n;
    const tag_t tag = coll_tag(coll_op_t::barrier, ctx.seq, round);
    // Post the receive first, then send; wait for the receive. If the send
    // throws, the posted receive must be settled before its stack buffer and
    // sync go out of scope.
    char incoming = 0;
    comp_t sync = alloc_sync(1, runtime_t{ctx.rt});
    matching_engine_t engine{&ctx.rt->coll_engine()};
    op_t rop;
    const status_t rstatus =
        post_recv_x(from, &incoming, sizeof(incoming), tag, sync)
            .runtime(runtime_t{ctx.rt})
            .device(device_t{ctx.dev})
            .matching_engine(engine)
            .deadline(coll_deadline(ctx))
            .op_handle(&rop)();
    try {
      coll_send(ctx, to, &token, sizeof(token), tag);
    } catch (...) {
      finish_coll_recv(ctx, &sync, rop, rstatus, /*abort=*/true);
      throw;
    }
    const status_t done = finish_coll_recv(ctx, &sync, rop, rstatus, false);
    if (done.error.is_fatal())
      throw fatal_error_t("barrier failed fatally");
  }
}

void broadcast(void* buffer, std::size_t size, int root, runtime_t runtime,
               device_t device) {
  const coll_ctx_t ctx = make_ctx(runtime, device);
  const int n = ctx.rt->nranks();
  const int me = ctx.rt->rank();
  if (n == 1) return;
  const int relative = (me - root + n) % n;
  const tag_t tag = coll_tag(coll_op_t::bcast, ctx.seq, 0);

  int mask = 1;
  while (mask < n) {
    if (relative & mask) {
      const int src = (me - mask + n) % n;
      coll_recv(ctx, src, buffer, size, tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < n) {
      const int dst = (me + mask) % n;
      coll_send(ctx, dst, buffer, size, tag);
    }
    mask >>= 1;
  }
}

void reduce(const void* sendbuf, void* recvbuf, std::size_t size,
            reduce_fn_t op, int root, runtime_t runtime, device_t device) {
  const coll_ctx_t ctx = make_ctx(runtime, device);
  const int n = ctx.rt->nranks();
  const int me = ctx.rt->rank();
  if (n == 1) {
    std::memcpy(recvbuf, sendbuf, size);
    return;
  }
  const int relative = (me - root + n) % n;
  const tag_t tag = coll_tag(coll_op_t::reduce, ctx.seq, 0);

  std::unique_ptr<char[]> accumulator(new char[size]);
  std::unique_ptr<char[]> incoming(new char[size]);
  std::memcpy(accumulator.get(), sendbuf, size);

  int mask = 1;
  while (mask < n) {
    if ((relative & mask) == 0) {
      const int source_rel = relative | mask;
      if (source_rel < n) {
        const int src = (source_rel + root) % n;
        coll_recv(ctx, src, incoming.get(), size, tag);
        op(accumulator.get(), incoming.get(), size);
      }
    } else {
      const int dst = ((relative & ~mask) + root) % n;
      coll_send(ctx, dst, accumulator.get(), size, tag);
      break;
    }
    mask <<= 1;
  }
  if (me == root) std::memcpy(recvbuf, accumulator.get(), size);
}

void allreduce(const void* sendbuf, void* recvbuf, std::size_t size,
               reduce_fn_t op, runtime_t runtime, device_t device) {
  // reduce-to-0 then broadcast: two collective sequence numbers, consistent
  // across ranks because every rank issues both calls.
  reduce(sendbuf, recvbuf, size, op, /*root=*/0, runtime, device);
  broadcast(recvbuf, size, /*root=*/0, runtime, device);
}

void allgather(const void* sendbuf, void* recvbuf, std::size_t size,
               runtime_t runtime, device_t device) {
  const coll_ctx_t ctx = make_ctx(runtime, device);
  const int n = ctx.rt->nranks();
  const int me = ctx.rt->rank();
  char* out = static_cast<char*>(recvbuf);
  std::memcpy(out + static_cast<std::size_t>(me) * size, sendbuf, size);
  if (n == 1) return;
  // Bruck-style ring: in round k, receive the block that originated k+1
  // hops upstream from the left neighbor while sending the block that
  // originated k hops upstream to the right neighbor.
  const int right = (me + 1) % n;
  const int left = (me - 1 + n) % n;
  for (int k = 0; k < n - 1; ++k) {
    const int send_origin = (me - k + n) % n;
    const int recv_origin = (me - k - 1 + n) % n;
    const tag_t tag = coll_tag(coll_op_t::gather, ctx.seq,
                               static_cast<uint32_t>(k));
    comp_t sync = alloc_sync(1, runtime_t{ctx.rt});
    matching_engine_t engine{&ctx.rt->coll_engine()};
    op_t rop;
    const status_t rstatus =
        post_recv_x(left, out + static_cast<std::size_t>(recv_origin) * size,
                    size, tag, sync)
            .runtime(runtime_t{ctx.rt})
            .device(device_t{ctx.dev})
            .matching_engine(engine)
            .deadline(coll_deadline(ctx))
            .op_handle(&rop)();
    try {
      coll_send(ctx, right,
                out + static_cast<std::size_t>(send_origin) * size, size, tag);
    } catch (...) {
      finish_coll_recv(ctx, &sync, rop, rstatus, /*abort=*/true);
      throw;
    }
    const status_t done = finish_coll_recv(ctx, &sync, rop, rstatus, false);
    if (done.error.is_fatal())
      throw fatal_error_t("allgather failed fatally");
  }
}

graph_t alloc_barrier_graph(runtime_t runtime, device_t device) {
  const coll_ctx_t ctx = make_ctx(runtime, device);
  const int n = ctx.rt->nranks();
  const int me = ctx.rt->rank();
  graph_t graph = alloc_graph(runtime_t{ctx.rt});

  // Dissemination rounds as graph nodes: recv_k must complete before
  // send_{k+1} starts; receives are posted up front (they are roots).
  graph_node_t previous_recv = graph_node_null;
  uint32_t round = 0;
  for (int dist = 1; dist < n; dist <<= 1, ++round) {
    const int to = (me + dist) % n;
    const int from = (me - dist % n + n) % n;
    const tag_t tag = coll_tag(coll_op_t::ibarrier, ctx.seq, round);
    matching_engine_t engine{&ctx.rt->coll_engine()};
    detail::runtime_impl_t* rt = ctx.rt;
    detail::device_impl_t* dev = ctx.dev;

    // Token storage owned by the closures (shared so copies stay valid).
    auto token = std::make_shared<char>(0);
    // The node id is only known after add_node; the closure reads it through
    // a shared holder filled in right below.
    auto recv_id = std::make_shared<graph_node_t>(graph_node_null);
    const graph_node_t recv_node = graph_add_node(graph, [=]() -> status_t {
      return post_recv_x(from, token.get(), 1, tag,
                         graph_node_comp(graph, *recv_id))
          .runtime(runtime_t{rt})
          .device(device_t{dev})
          .matching_engine(engine)
          .deadline(rt->attr().collective_deadline_us)
          .allow_done(false)();
    });
    *recv_id = recv_node;
    const graph_node_t send_node = graph_add_node(graph, [=]() -> status_t {
      auto out = std::make_shared<char>(1);
      return post_send_x(to, out.get(), 1, tag, comp_t{})
          .runtime(runtime_t{rt})
          .device(device_t{dev})
          .matching_engine(engine)
          .allow_aggregation(false)();  // latency-bound control message
    });
    if (previous_recv != graph_node_null)
      graph_add_edge(graph, previous_recv, send_node);
    previous_recv = recv_node;
  }
  return graph;
}

}  // namespace lci
