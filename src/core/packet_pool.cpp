// Packet pool implementation (paper Sec. 4.1.2).
#include <cstring>
#include <mutex>
#include <new>

#include "core/packet.hpp"
#include "core/lci.hpp"

namespace lci::detail {

namespace {
// Payload stride rounded so every packet header stays cache-line aligned.
std::size_t packet_stride(std::size_t capacity) {
  const std::size_t raw = sizeof(packet_t) + capacity;
  return (raw + util::cache_line_size - 1) & ~(util::cache_line_size - 1);
}
}  // namespace

packet_pool_impl_t::packet_pool_impl_t(std::size_t npackets,
                                       std::size_t packet_capacity)
    : npackets_(npackets), packet_capacity_(packet_capacity) {
  const std::size_t stride = packet_stride(packet_capacity_);
  // One slab, over-allocated for alignment.
  auto slab = std::make_unique<char[]>(npackets_ * stride +
                                       util::cache_line_size);
  char* base = slab.get();
  auto misalign = reinterpret_cast<uintptr_t>(base) % util::cache_line_size;
  if (misalign != 0) base += util::cache_line_size - misalign;
  slabs_.push_back(std::move(slab));

  // All packets start in the creating thread's deque; work stealing spreads
  // them to other threads on demand.
  deque_t* local = local_deque();
  for (std::size_t i = 0; i < npackets_; ++i) {
    auto* packet = new (base + i * stride) packet_t;
    packet->pool = this;
    local->push_tail(packet);
  }
}

packet_pool_impl_t::~packet_pool_impl_t() = default;

packet_pool_impl_t::deque_t* packet_pool_impl_t::local_deque() {
  const std::size_t tid = util::thread_id();
  if (tid < deques_.size()) {
    if (deque_t* d = deques_.get(tid)) return d;
  }
  std::lock_guard<util::spinlock_t> guard(reg_lock_);
  // Re-check under the lock (another call on this thread cannot race, but
  // keep the invariant local).
  if (tid < deques_.size()) {
    if (deque_t* d = deques_.get(tid)) return d;
  }
  deque_storage_.push_back(std::make_unique<deque_t>());
  deque_t* d = deque_storage_.back().get();
  deques_.put_extend(tid, d);
  return d;
}

packet_t* packet_pool_impl_t::get() {
  deque_t* local = local_deque();
  packet_t* packet = nullptr;
  if (local->pop_tail(&packet)) return packet;

  // Local deque empty: try stealing half the packets from a few randomly
  // selected victims (paper: one random victim per failed get; we allow a
  // small number of attempts before reporting retry_nopacket).
  thread_local util::xoshiro256_t rng(0x243f6a8885a308d3ull ^
                                      util::thread_id());
  const std::size_t n = deques_.size();
  if (n == 0) return nullptr;
  std::vector<packet_t*> stolen;
  for (int attempt = 0; attempt < 3; ++attempt) {
    deque_t* victim = deques_.get(rng.below(n));
    if (victim == nullptr || victim == local) continue;
    stolen.clear();
    if (victim->try_steal_half(stolen) > 0) {
      packet = stolen.back();
      stolen.pop_back();
      for (packet_t* p : stolen) local->push_tail(p);
      return packet;
    }
  }
  return nullptr;
}

void packet_pool_impl_t::put(packet_t* packet) {
  if (packet->heap_orphan != 0) {
    // Overflow packet minted by the batch unpacker when the pool was dry:
    // free it instead of growing the pool past npackets.
    packet->~packet_t();
    ::operator delete(packet, std::align_val_t{util::cache_line_size});
    return;
  }
  local_deque()->push_tail(packet);
}

std::size_t packet_pool_impl_t::pooled_approx() const noexcept {
  std::size_t total = 0;
  const std::size_t n = deques_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (const deque_t* d = deques_.get(i)) total += d->size_approx();
  }
  return total;
}

}  // namespace lci::detail
