// Packet pool implementation (paper Sec. 4.1.2).
#include <algorithm>
#include <cstring>
#include <mutex>
#include <new>

#include "core/packet.hpp"
#include "core/lci.hpp"

namespace lci::detail {

// Defined in device.cpp (the lci::pin_thread_shard TLS hint).
int thread_shard_hint() noexcept;

namespace {
// Payload stride rounded so every packet header stays cache-line aligned.
std::size_t packet_stride(std::size_t capacity) {
  const std::size_t raw = sizeof(packet_t) + capacity;
  return (raw + util::cache_line_size - 1) & ~(util::cache_line_size - 1);
}
}  // namespace

packet_pool_impl_t::packet_pool_impl_t(std::size_t npackets,
                                       std::size_t packet_capacity,
                                       std::size_t nshards)
    : npackets_(npackets),
      packet_capacity_(packet_capacity),
      nshards_(nshards == 0 ? 1 : nshards) {
  const std::size_t stride = packet_stride(packet_capacity_);
  // One slab, over-allocated for alignment.
  auto slab = std::make_unique<char[]>(npackets_ * stride +
                                       util::cache_line_size);
  char* base = slab.get();
  auto misalign = reinterpret_cast<uintptr_t>(base) % util::cache_line_size;
  if (misalign != 0) base += util::cache_line_size - misalign;
  slabs_.push_back(std::move(slab));

  if (nshards_ <= 1) {
    // All packets start in the creating thread's deque; work stealing
    // spreads them to other threads on demand.
    deque_t* local = local_deque();
    for (std::size_t i = 0; i < npackets_; ++i) {
      auto* packet = new (base + i * stride) packet_t;
      packet->pool = this;
      local->push_tail(packet);
    }
    return;
  }
  // Sharded mode: carve the slab into contiguous per-shard ranges (shard s
  // owns packets [s*per_shard, ...)) so first-touch page placement keeps a
  // shard's packets on the NUMA node of the threads using it, and seed each
  // shard's freelist with its range — warm start, empty reservoir. Spill
  // when a shard holds more than its fair share plus one refill batch, so
  // balanced traffic never pays the reservoir lock.
  shard_lists_ = std::make_unique<freelist_t[]>(nshards_);
  const std::size_t per_shard = npackets_ / nshards_;
  spill_high_ = std::max<std::size_t>(per_shard, refill_batch) + refill_batch;
  for (std::size_t i = 0; i < npackets_; ++i) {
    auto* packet = new (base + i * stride) packet_t;
    packet->pool = this;
    const std::size_t shard =
        per_shard == 0 ? i % nshards_ : std::min(i / per_shard, nshards_ - 1);
    shard_lists_[shard].items.push_back(packet);
  }
}

packet_pool_impl_t::~packet_pool_impl_t() = default;

packet_pool_impl_t::deque_t* packet_pool_impl_t::local_deque() {
  const std::size_t tid = util::thread_id();
  if (tid < deques_.size()) {
    if (deque_t* d = deques_.get(tid)) return d;
  }
  std::lock_guard<util::spinlock_t> guard(reg_lock_);
  // Re-check under the lock (another call on this thread cannot race, but
  // keep the invariant local).
  if (tid < deques_.size()) {
    if (deque_t* d = deques_.get(tid)) return d;
  }
  deque_storage_.push_back(std::make_unique<deque_t>());
  deque_t* d = deque_storage_.back().get();
  deques_.put_extend(tid, d);
  return d;
}

std::size_t packet_pool_impl_t::shard_of() const noexcept {
  const int pin = thread_shard_hint();
  if (pin >= 0) return static_cast<std::size_t>(pin) % nshards_;
  return util::thread_id() % nshards_;
}

packet_t* packet_pool_impl_t::get_sharded() {
  const std::size_t s = shard_of();
  freelist_t& fl = shard_lists_[s];
  {
    std::lock_guard<util::spinlock_t> guard(fl.lock);
    if (!fl.items.empty()) {
      packet_t* packet = fl.items.back();
      fl.items.pop_back();
      return packet;
    }
  }
  // Shard dry: pull a batch from the reservoir (one lock round-trip for up
  // to refill_batch packets, plus the one we hand out).
  std::vector<packet_t*> batch;
  {
    std::lock_guard<util::spinlock_t> guard(reservoir_.lock);
    const std::size_t take =
        std::min<std::size_t>(refill_batch + 1, reservoir_.items.size());
    batch.assign(reservoir_.items.end() - take, reservoir_.items.end());
    reservoir_.items.resize(reservoir_.items.size() - take);
  }
  if (batch.empty()) {
    // Reservoir dry too: raid the richest sibling shard for half its list.
    // Imbalance-rate path — the spill threshold keeps it rare.
    std::size_t victim = s, best = 0;
    for (std::size_t i = 0; i < nshards_; ++i) {
      if (i == s) continue;
      const std::size_t n = shard_lists_[i].items.size();  // racy peek
      if (n > best) {
        best = n;
        victim = i;
      }
    }
    if (victim == s) return nullptr;
    freelist_t& vfl = shard_lists_[victim];
    std::lock_guard<util::spinlock_t> guard(vfl.lock);
    const std::size_t take = (vfl.items.size() + 1) / 2;
    if (take == 0) return nullptr;
    // Take the front (cold) half, leaving the victim its hot tail.
    batch.assign(vfl.items.begin(), vfl.items.begin() + take);
    vfl.items.erase(vfl.items.begin(), vfl.items.begin() + take);
  }
  packet_t* packet = batch.back();
  batch.pop_back();
  if (!batch.empty()) {
    std::lock_guard<util::spinlock_t> guard(fl.lock);
    fl.items.insert(fl.items.end(), batch.begin(), batch.end());
  }
  return packet;
}

void packet_pool_impl_t::put_sharded(packet_t* packet) {
  freelist_t& fl = shard_lists_[shard_of()];
  std::vector<packet_t*> spill;
  {
    std::lock_guard<util::spinlock_t> guard(fl.lock);
    fl.items.push_back(packet);
    if (fl.items.size() > spill_high_) {
      // Over high-water: move the front (coldest) refill_batch packets out
      // while holding only our own lock; hand them to the reservoir after.
      spill.assign(fl.items.begin(), fl.items.begin() + refill_batch);
      fl.items.erase(fl.items.begin(), fl.items.begin() + refill_batch);
    }
  }
  if (!spill.empty()) {
    std::lock_guard<util::spinlock_t> guard(reservoir_.lock);
    reservoir_.items.insert(reservoir_.items.end(), spill.begin(),
                            spill.end());
  }
}

packet_t* packet_pool_impl_t::get() {
  if (nshards_ > 1) return get_sharded();
  deque_t* local = local_deque();
  packet_t* packet = nullptr;
  if (local->pop_tail(&packet)) return packet;

  // Local deque empty: try stealing half the packets from a few randomly
  // selected victims (paper: one random victim per failed get; we allow a
  // small number of attempts before reporting retry_nopacket).
  thread_local util::xoshiro256_t rng(0x243f6a8885a308d3ull ^
                                      util::thread_id());
  const std::size_t n = deques_.size();
  if (n == 0) return nullptr;
  std::vector<packet_t*> stolen;
  for (int attempt = 0; attempt < 3; ++attempt) {
    deque_t* victim = deques_.get(rng.below(n));
    if (victim == nullptr || victim == local) continue;
    stolen.clear();
    if (victim->try_steal_half(stolen) > 0) {
      packet = stolen.back();
      stolen.pop_back();
      for (packet_t* p : stolen) local->push_tail(p);
      return packet;
    }
  }
  return nullptr;
}

void packet_pool_impl_t::put(packet_t* packet) {
  if (packet->heap_orphan != 0) {
    // Overflow packet minted by the batch unpacker when the pool was dry:
    // free it instead of growing the pool past npackets.
    packet->~packet_t();
    ::operator delete(packet, std::align_val_t{util::cache_line_size});
    return;
  }
  if (nshards_ > 1) {
    put_sharded(packet);
    return;
  }
  local_deque()->push_tail(packet);
}

std::size_t packet_pool_impl_t::pooled_approx() const noexcept {
  std::size_t total = 0;
  if (nshards_ > 1) {
    for (std::size_t i = 0; i < nshards_; ++i)
      total += shard_lists_[i].items.size();  // racy peek, approximate
    return total + reservoir_.items.size();
  }
  const std::size_t n = deques_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (const deque_t* d = deques_.get(i)) total += d->size_approx();
  }
  return total;
}

}  // namespace lci::detail
