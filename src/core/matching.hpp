// Matching engine (paper Sec. 4.1.3).
//
// Matches incoming sends with user-posted receives on the target side.
// Structure: a hashtable of `num_buckets` buckets (default 65536), each
// protected by its own spinlock — far more buckets than threads, so
// contention is rare. Each bucket holds a list of per-key queues; a queue
// holds either pending sends or pending receives for one key (never both: a
// complementary arrival matches instead of queueing). The fast path uses
// fixed-size arrays — up to 3 queues inline per bucket and up to 2 entries
// inline per queue — so a low-load-factor insertion costs a single cache
// miss; overflow spills to heap containers.
//
// Shard steering (receive-path sharding): when constructed with
// num_segments = S > 1, the bucket array is logically partitioned into S
// shard segments plus one shared "global" segment. A default rank_tag key is
// bit-identical to the (rank<<32)|tag word that route_shard() hashes for
// shard routing, and segment selection applies the *same* mix-then-mod — so
// a pinned thread's receives and the headers arriving on its shard's wire
// land in the same segment, and bucket spinlocks become shard-private in the
// common case. Matching is pure key equality (both sides derive identical
// keys, no multi-key probing), so any pure function of the key is a correct
// steering function. Wildcard-policy keys (rank_only / tag_only / none) and
// keys from a custom make_key hook — whose bit layout the engine cannot
// interpret — go to the global segment, keeping cross-shard and collective
// traffic correct at the cost of shared locks there. purge_if and size_slow
// walk every bucket regardless of segment. S <= 1 keeps the flat array
// bit-identical to the unsegmented engine. Note: set_make_key must be called
// before any traffic — entries inserted under the default key derivation
// are steered by policy bits a custom key may not preserve.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/lci.hpp"
#include "util/cacheline.hpp"
#include "util/spinlock.hpp"

namespace lci::detail {

class matching_engine_impl_t {
 public:
  using key_t = uint64_t;
  enum class type_t : uint8_t { send, recv };

  // Custom key derivation (Sec. 3.3.2: users may supply their own make_key).
  using make_key_fn_t = std::function<key_t(int rank, tag_t tag,
                                            matching_policy_t policy)>;

  // Unsegmented (num_segments <= 1): one flat power-of-two array,
  // bit-identical to the pre-sharding engine. Segmented: S same-sized
  // power-of-two shard segments + 1 global segment, laid out contiguously
  // [seg 0][seg 1]...[seg S-1][global]. (buckets_ is sized in the
  // initializer because bucket_t's spinlock makes it non-movable.)
  explicit matching_engine_impl_t(std::size_t num_buckets,
                                  std::size_t num_segments = 1)
      : buckets_(total_buckets(num_buckets, num_segments)),
        mask_(buckets_.size() - 1),
        nsegments_(num_segments <= 1 ? 1 : num_segments),
        seg_size_(segment_size(num_buckets, num_segments)),
        seg_mask_(seg_size_ - 1) {}

  // Default key: [2 bits policy][30 bits rank][32 bits tag] with the wildcard
  // component zeroed, so different policies never collide.
  static key_t default_make_key(int rank, tag_t tag,
                                matching_policy_t policy) {
    assert(rank >= 0 && rank < (1 << 30));
    const auto p = static_cast<key_t>(policy) << 62;
    switch (policy) {
      case matching_policy_t::rank_tag:
        return p | (static_cast<key_t>(rank) << 32) | tag;
      case matching_policy_t::rank_only:
        return p | (static_cast<key_t>(rank) << 32);
      case matching_policy_t::tag_only:
        return p | tag;
      case matching_policy_t::none:
        return p;
    }
    return p;
  }

  void set_make_key(make_key_fn_t fn) { make_key_fn_ = std::move(fn); }

  key_t make_key(int rank, tag_t tag, matching_policy_t policy) const {
    return make_key_fn_ ? make_key_fn_(rank, tag, policy)
                        : default_make_key(rank, tag, policy);
  }

  // Tries to insert (key, value) with the given type. If an entry with the
  // same key and the complementary type exists, removes and returns the
  // oldest such value instead of inserting; otherwise inserts and returns
  // nullptr.
  void* insert(key_t key, void* value, type_t type) {
    bucket_t& bucket = buckets_[bucket_index(key)];
    std::lock_guard<util::spinlock_t> guard(bucket.lock);
    // Fast-path scan.
    for (std::size_t i = 0; i < bucket.nfast; ++i) {
      if (bucket.fast[i].key == key)
        return resolve(bucket, /*in_fast=*/true, i, value, type);
    }
    if (bucket.overflow) {
      for (std::size_t i = 0; i < bucket.overflow->size(); ++i) {
        if ((*bucket.overflow)[i].key == key)
          return resolve(bucket, /*in_fast=*/false, i, value, type);
      }
    }
    // No queue for this key yet: create one.
    if (bucket.nfast < fast_queues) {
      slot_t& slot = bucket.fast[bucket.nfast++];
      slot.reset(key, type);
      slot.push(value);
    } else {
      if (!bucket.overflow) bucket.overflow = std::make_unique<overflow_t>();
      bucket.overflow->emplace_back();
      slot_t& slot = bucket.overflow->back();
      slot.reset(key, type);
      slot.push(value);
    }
    return nullptr;
  }

  // Pops the oldest queued *receive* for `key`, or returns nullptr without
  // inserting anything. Used by the eager_batch walker: a batched sub-message
  // that finds a waiting receive completes it zero-copy from the batch slice;
  // an unmatched one is re-staged into its own packet and insert()ed like any
  // other unexpected eager message.
  void* try_match_recv(key_t key) {
    bucket_t& bucket = buckets_[bucket_index(key)];
    std::lock_guard<util::spinlock_t> guard(bucket.lock);
    for (std::size_t i = 0; i < bucket.nfast; ++i) {
      if (bucket.fast[i].key == key)
        return pop_recv(bucket, /*in_fast=*/true, i);
    }
    if (bucket.overflow) {
      for (std::size_t i = 0; i < bucket.overflow->size(); ++i) {
        if ((*bucket.overflow)[i].key == key)
          return pop_recv(bucket, /*in_fast=*/false, i);
      }
    }
    return nullptr;
  }

  // Removes one specific queued entry (pointer identity). Returns true when
  // the entry was found and removed — the caller then owns it exclusively.
  // False means a complementary arrival already consumed it (or it was never
  // queued): whoever popped it owns its completion. The bucket lock is the
  // arbitration point between cancel/timeout/purge and the matching paths.
  bool remove(key_t key, void* value) {
    bucket_t& bucket = buckets_[bucket_index(key)];
    std::lock_guard<util::spinlock_t> guard(bucket.lock);
    for (std::size_t i = 0; i < bucket.nfast; ++i) {
      if (bucket.fast[i].key == key)
        return remove_from_slot(bucket, /*in_fast=*/true, i, value);
    }
    if (bucket.overflow) {
      for (std::size_t i = 0; i < bucket.overflow->size(); ++i) {
        if ((*bucket.overflow)[i].key == key)
          return remove_from_slot(bucket, /*in_fast=*/false, i, value);
      }
    }
    return false;
  }

  // Removes every queued entry the predicate claims; pred(value, type) must
  // be side-effect free. Removed entries are appended to `out` so the caller
  // can complete or recycle them (it now owns them exclusively). Takes every
  // bucket lock in turn — a purge-rate operation, not a fast-path one.
  template <class Pred>
  std::size_t purge_if(Pred&& pred,
                       std::vector<std::pair<void*, type_t>>& out) {
    std::size_t removed = 0;
    std::vector<void*> vals;
    for (auto& bucket : buckets_) {
      std::lock_guard<util::spinlock_t> guard(bucket.lock);
      // Backwards so remove_slot's swap-from-back only re-seats slots this
      // loop has already visited.
      for (std::size_t i = bucket.nfast; i-- > 0;)
        removed += purge_slot(bucket, /*in_fast=*/true, i, pred, out, vals);
      if (bucket.overflow) {
        for (std::size_t i = bucket.overflow->size(); i-- > 0;)
          removed += purge_slot(bucket, /*in_fast=*/false, i, pred, out, vals);
      }
    }
    return removed;
  }

  // Total queued entries (for tests; takes every bucket lock).
  std::size_t size_slow() const {
    std::size_t total = 0;
    for (auto& bucket : buckets_) {
      std::lock_guard<util::spinlock_t> guard(bucket.lock);
      for (std::size_t i = 0; i < bucket.nfast; ++i)
        total += bucket.fast[i].count;
      if (bucket.overflow)
        for (const auto& slot : *bucket.overflow) total += slot.count;
    }
    return total;
  }

  std::size_t num_buckets() const noexcept { return buckets_.size(); }
  std::size_t num_segments() const noexcept { return nsegments_; }

  // Engine id within its runtime. Carried in message headers so the target
  // matches in the same engine the sender named; like rcomps, ids agree
  // across ranks when every rank allocates its engines in the same order.
  uint16_t id() const noexcept { return id_; }
  void set_id(uint16_t id) noexcept { id_ = id; }

  // Owning runtime (set for user-allocated engines so free_matching_engine
  // can deregister the id).
  runtime_impl_t* owner = nullptr;

 private:
  static constexpr std::size_t fast_queues = 3;    // queues inline per bucket
  static constexpr std::size_t fast_entries = 2;   // entries inline per queue
  static constexpr std::size_t min_segment_buckets = 64;

  // Key -> bucket. Segmented mode picks the segment with the same
  // mix-then-mod route_shard() uses on its hashed fallback — a rank_tag key
  // *is* the (rank<<32)|tag word route_shard hashes (policy bits are 00) —
  // then indexes within the segment using the high hash bits, which are
  // independent of the low bits the mod consumed. Wildcard-policy keys
  // (policy bits != 00) and custom-make_key keys steer to the global
  // segment at index nsegments_.
  std::size_t bucket_index(key_t key) const noexcept {
    const std::size_t h = hash(key);
    if (nsegments_ <= 1) return h & mask_;
    std::size_t seg = nsegments_;  // global segment
    if (!make_key_fn_ && (key >> 62) == 0) seg = h % nsegments_;
    return seg * seg_size_ + ((h >> 32) & seg_mask_);
  }

  // One per-key queue. FIFO; the first `fast_entries` live inline.
  struct slot_t {
    key_t key = 0;
    type_t type = type_t::send;
    uint32_t count = 0;
    void* inline_vals[fast_entries] = {nullptr, nullptr};
    std::unique_ptr<std::deque<void*>> extra;

    void reset(key_t k, type_t t) {
      key = k;
      type = t;
      count = 0;
      if (extra) extra->clear();
    }
    void push(void* value) {
      if (count < fast_entries) {
        inline_vals[count] = value;
      } else {
        if (!extra) extra = std::make_unique<std::deque<void*>>();
        extra->push_back(value);
      }
      ++count;
    }
    void* pop_front() {
      assert(count > 0);
      void* front = inline_vals[0];
      inline_vals[0] = inline_vals[1];
      if (count > fast_entries) {
        inline_vals[1] = extra->front();
        extra->pop_front();
      }
      --count;
      return front;
    }
    // FIFO snapshot / rebuild, used by the removal paths.
    void collect(std::vector<void*>& out) const {
      const uint32_t ninline =
          count < fast_entries ? count : static_cast<uint32_t>(fast_entries);
      for (uint32_t i = 0; i < ninline; ++i) out.push_back(inline_vals[i]);
      if (extra)
        for (void* v : *extra) out.push_back(v);
    }
    void assign(const std::vector<void*>& vals) {
      count = 0;
      inline_vals[0] = inline_vals[1] = nullptr;
      if (extra) extra->clear();
      for (void* v : vals) push(v);
    }
  };

  // Cache-line aligned: neighbouring buckets are hit by unrelated keys from
  // different threads, and an unaligned bucket would put two buckets' locks
  // on one line — every lock acquisition would then invalidate the neighbour
  // (false sharing), exactly the contention the per-bucket locking exists to
  // avoid. sizeof(bucket_t) already exceeds one line (three inline slots),
  // so the alignment costs no memory beyond rounding.
  struct alignas(util::cache_line_size) bucket_t {
    mutable util::spinlock_t lock;
    slot_t fast[fast_queues];
    uint8_t nfast = 0;
    std::unique_ptr<std::vector<slot_t>> overflow;
  };
  using overflow_t = std::vector<slot_t>;

  // Caller holds the bucket lock; the slot at (in_fast, i) has `key`.
  void* resolve(bucket_t& bucket, bool in_fast, std::size_t i, void* value,
                type_t type) {
    slot_t& slot = in_fast ? bucket.fast[i] : (*bucket.overflow)[i];
    if (slot.type == type || slot.count == 0) {
      slot.type = type;  // count==0 can only happen transiently; retype
      slot.push(value);
      return nullptr;
    }
    void* matched = slot.pop_front();
    if (slot.count == 0) remove_slot(bucket, in_fast, i);
    return matched;
  }

  // Caller holds the bucket lock; the slot at (in_fast, i) has the key.
  void* pop_recv(bucket_t& bucket, bool in_fast, std::size_t i) {
    slot_t& slot = in_fast ? bucket.fast[i] : (*bucket.overflow)[i];
    if (slot.type != type_t::recv || slot.count == 0) return nullptr;
    void* matched = slot.pop_front();
    if (slot.count == 0) remove_slot(bucket, in_fast, i);
    return matched;
  }

  // Caller holds the bucket lock; the slot at (in_fast, i) has the key.
  bool remove_from_slot(bucket_t& bucket, bool in_fast, std::size_t i,
                        void* value) {
    slot_t& slot = in_fast ? bucket.fast[i] : (*bucket.overflow)[i];
    std::vector<void*> vals;
    slot.collect(vals);
    auto it = std::find(vals.begin(), vals.end(), value);
    if (it == vals.end()) return false;
    vals.erase(it);
    slot.assign(vals);
    if (slot.count == 0) remove_slot(bucket, in_fast, i);
    return true;
  }

  // Caller holds the bucket lock. Removes the slot's entries claimed by pred.
  template <class Pred>
  std::size_t purge_slot(bucket_t& bucket, bool in_fast, std::size_t i,
                         Pred&& pred,
                         std::vector<std::pair<void*, type_t>>& out,
                         std::vector<void*>& scratch) {
    slot_t& slot = in_fast ? bucket.fast[i] : (*bucket.overflow)[i];
    scratch.clear();
    slot.collect(scratch);
    std::size_t kept = 0, removed = 0;
    for (void* v : scratch) {
      if (pred(v, slot.type)) {
        out.emplace_back(v, slot.type);
        ++removed;
      } else {
        scratch[kept++] = v;
      }
    }
    if (removed == 0) return 0;
    scratch.resize(kept);
    slot.assign(scratch);
    if (slot.count == 0) remove_slot(bucket, in_fast, i);
    return removed;
  }

  static void remove_slot(bucket_t& bucket, bool in_fast, std::size_t i) {
    if (in_fast) {
      const std::size_t last = static_cast<std::size_t>(bucket.nfast) - 1;
      if (i != last) bucket.fast[i] = std::move(bucket.fast[last]);
      bucket.fast[last] = slot_t{};
      --bucket.nfast;
    } else {
      auto& overflow = *bucket.overflow;
      if (i != overflow.size() - 1) overflow[i] = std::move(overflow.back());
      overflow.pop_back();
    }
  }

  static std::size_t round_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p *= 2;
    return p < 2 ? 2 : p;
  }

  // Buckets per segment / total array size for the constructor.
  static std::size_t segment_size(std::size_t num_buckets,
                                  std::size_t num_segments) {
    if (num_segments <= 1) return round_pow2(num_buckets);
    return round_pow2(
        std::max<std::size_t>(num_buckets / num_segments, min_segment_buckets));
  }
  static std::size_t total_buckets(std::size_t num_buckets,
                                   std::size_t num_segments) {
    if (num_segments <= 1) return round_pow2(num_buckets);
    return (num_segments + 1) * segment_size(num_buckets, num_segments);
  }

  static std::size_t hash(key_t key) noexcept {
    // Fibonacci-style mixing; keys differ mostly in low tag bits and the
    // rank field, both of which this spreads across buckets.
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdull;
    key ^= key >> 33;
    return static_cast<std::size_t>(key);
  }

  std::vector<bucket_t> buckets_;
  std::size_t mask_ = 0;       // whole-array mask (unsegmented addressing)
  std::size_t nsegments_ = 1;  // shard segments (1 = flat/unsegmented)
  std::size_t seg_size_ = 0;   // buckets per segment (power of two)
  std::size_t seg_mask_ = 0;   // seg_size_ - 1
  make_key_fn_t make_key_fn_;
  uint16_t id_ = 0;
};

}  // namespace lci::detail
