// Tracing: snapshot, histogram merge, Chrome trace_event export.
//
// Recording is entirely header-inline (trace.hpp) so the net layer can emit
// wire spans without linking the core library; this file holds everything
// that runs off the hot path.
#include "core/trace.hpp"

#include <cmath>
#include <cstdio>

namespace lci::trace {

namespace {

util::spinlock_t g_lifecycle_lock;

}  // namespace

void retain(std::size_t ring_size, uint32_t sample) {
  std::lock_guard<util::spinlock_t> guard(g_lifecycle_lock);
  if (detail::g_refs.fetch_add(1, std::memory_order_seq_cst) == 0) {
    // First traced runtime of a session: install the configuration and start
    // a fresh generation so stale events from a previous session never leak
    // into this session's snapshot. Later retains (other simulated ranks of
    // the same job) share the first runtime's configuration.
    const std::size_t capacity = std::max<std::size_t>(
        8, std::bit_ceil(ring_size != 0 ? ring_size : std::size_t{1} << 14));
    detail::g_ring_cap.store(capacity, std::memory_order_release);
    detail::g_sample.store(sample != 0 ? sample : 1,
                           std::memory_order_release);
    detail::g_gen.fetch_add(1, std::memory_order_seq_cst);
    detail::g_on.store(true, std::memory_order_release);
  }
}

void release() {
  std::lock_guard<util::spinlock_t> guard(g_lifecycle_lock);
  if (detail::g_refs.fetch_sub(1, std::memory_order_seq_cst) == 1) {
    // Recording stops; the data stays readable (snapshots after the runtime
    // is freed are the common pattern) until the next retain or reset.
    detail::g_on.store(false, std::memory_order_release);
  }
}

}  // namespace lci::trace

namespace lci {

trace_snapshot_t trace_snapshot() {
  trace_snapshot_t out;
  uint64_t dropped = 0;
  trace::detail::registry().for_each_current(
      [&](trace::detail::thread_state_t* state) {
        const uint64_t head = state->head.load(std::memory_order_acquire);
        const std::size_t capacity = state->mask + 1;
        const uint64_t start = head > capacity ? head - capacity : 0;
        dropped += start;  // overwritten (oldest) events, exact
        for (uint64_t i = start; i < head; ++i) {
          const trace::detail::slot_t& slot = state->slots[i & state->mask];
          const uint64_t expect = i * 2 + 2;
          if (slot.seq.load(std::memory_order_acquire) != expect) {
            ++dropped;  // writer mid-publish or slot already lapped
            continue;
          }
          const uint64_t w0 = slot.w[0].load(std::memory_order_relaxed);
          const uint64_t w1 = slot.w[1].load(std::memory_order_relaxed);
          const uint64_t w2 = slot.w[2].load(std::memory_order_relaxed);
          const uint64_t w3 = slot.w[3].load(std::memory_order_relaxed);
          std::atomic_thread_fence(std::memory_order_acquire);
          if (slot.seq.load(std::memory_order_relaxed) != expect) {
            ++dropped;
            continue;
          }
          trace_event_t event;
          event.ts_ns = w0;
          event.id = w1;
          event.kind = static_cast<trace::kind_t>(w2 & 0xff);
          event.phase = static_cast<trace::phase_t>((w2 >> 8) & 0xff);
          event.err = static_cast<uint8_t>((w2 >> 16) & 0xff);
          event.rank = static_cast<int32_t>(static_cast<uint32_t>(w2 >> 32));
          event.tag = static_cast<uint32_t>(w3 & 0xffffffffull);
          event.size = static_cast<uint32_t>(w3 >> 32);
          event.tid = state->tid;
          out.events.push_back(event);
        }
      });
  std::sort(out.events.begin(), out.events.end(),
            [](const trace_event_t& a, const trace_event_t& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              if (a.id != b.id) return a.id < b.id;
              return static_cast<uint8_t>(a.phase) <
                     static_cast<uint8_t>(b.phase);
            });
  out.trace_dropped = dropped;
  return out;
}

namespace {

// Upper bound of log2 bucket i (record_hist: ns==0 -> bucket 0, otherwise
// bucket bit_width(ns), i.e. bucket i spans [2^(i-1), 2^i)).
uint64_t bucket_upper_ns(std::size_t bucket) {
  if (bucket == 0) return 0;
  return uint64_t{1} << bucket;
}

uint64_t percentile_ns(const std::array<uint64_t, 64>& buckets, uint64_t count,
                       double q) {
  if (count == 0) return 0;
  uint64_t target =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (target == 0) target = 1;
  if (target > count) target = count;
  uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= target) return bucket_upper_ns(i);
  }
  return bucket_upper_ns(buckets.size() - 1);
}

latency_histogram_t merge_one(trace::hist_t hist) {
  latency_histogram_t out;
  const std::size_t base =
      static_cast<std::size_t>(hist) * trace::detail::hist_buckets;
  trace::detail::registry().for_each_current(
      [&](trace::detail::thread_state_t* state) {
        for (std::size_t i = 0; i < trace::detail::hist_buckets; ++i) {
          out.buckets[i] +=
              state->hist_cells[base + i].load(std::memory_order_relaxed);
        }
        const uint64_t peak =
            state->hist_max[static_cast<std::size_t>(hist)].load(
                std::memory_order_relaxed);
        if (peak > out.max_ns) out.max_ns = peak;
      });
  for (uint64_t bucket : out.buckets) out.count += bucket;
  out.p50_ns = percentile_ns(out.buckets, out.count, 0.50);
  out.p99_ns = percentile_ns(out.buckets, out.count, 0.99);
  // The top bucket's upper bound can overshoot the true maximum; clamp the
  // percentile estimates to the exact observed max.
  if (out.count != 0) {
    out.p50_ns = std::min(out.p50_ns, out.max_ns);
    out.p99_ns = std::min(out.p99_ns, out.max_ns);
  }
  return out;
}

}  // namespace

histograms_t get_histograms() {
  histograms_t out;
  out.post_eager = merge_one(trace::hist_t::post_eager);
  out.post_batch = merge_one(trace::hist_t::post_batch);
  out.post_rdv = merge_one(trace::hist_t::post_rdv);
  out.post_recv = merge_one(trace::hist_t::post_recv);
  out.progress_poll = merge_one(trace::hist_t::progress_poll);
  return out;
}

bool trace_dump_json(const std::string& path) {
  const trace_snapshot_t snapshot = trace_snapshot();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  // Chrome trace_event format. Spans use async begin/end ("b"/"e") keyed by
  // op id: the two halves of post->complete often run on different threads
  // (worker posts, progress engine completes), and async pairing is the
  // format's cross-thread mechanism. Events sharing an id (post call,
  // backlog residency, wire hop) nest under that op's track by name.
  std::fprintf(file, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
  const uint64_t origin =
      snapshot.events.empty() ? 0 : snapshot.events.front().ts_ns;
  bool first = true;
  for (const trace_event_t& event : snapshot.events) {
    const double ts_us =
        static_cast<double>(event.ts_ns - origin) / 1000.0;
    if (!first) std::fprintf(file, ",\n");
    first = false;
    const char* name = trace::to_string(event.kind);
    if (event.phase == trace::phase_t::instant) {
      std::fprintf(file,
                   "{\"ph\":\"i\",\"cat\":\"lci\",\"name\":\"%s\",\"pid\":1,"
                   "\"tid\":%u,\"ts\":%.3f,\"s\":\"t\",\"args\":{\"id\":%llu,"
                   "\"rank\":%d,\"tag\":%u,\"size\":%u}}",
                   name, event.tid, ts_us,
                   static_cast<unsigned long long>(event.id), event.rank,
                   event.tag, event.size);
    } else {
      const char* phase =
          event.phase == trace::phase_t::begin ? "b" : "e";
      std::fprintf(file,
                   "{\"ph\":\"%s\",\"cat\":\"lci\",\"name\":\"%s\",\"id\":"
                   "\"0x%llx\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"args\":{"
                   "\"rank\":%d,\"tag\":%u,\"size\":%u,\"err\":%u}}",
                   phase, name, static_cast<unsigned long long>(event.id),
                   event.tid, ts_us, event.rank, event.tag, event.size,
                   event.err);
    }
  }
  std::fprintf(file, "\n]}\n");
  const bool ok = std::fclose(file) == 0;
  return ok;
}

void trace_reset() {
  // Generation bump: every thread's current ring and histogram cells become
  // invisible to snapshots and are lazily replaced; the memory is retired,
  // not freed, so a writer racing the reset stays safe.
  trace::detail::g_gen.fetch_add(1, std::memory_order_seq_cst);
}

}  // namespace lci
