// Device: a complete set of low-level network resources. Threads operating
// on different devices never interfere (paper Sec. 3.2.3 / 4.2). A device
// may be split into N internal shards (runtime_attr_t::device_shards), each
// a full fabric endpoint with its own pre-posted receives and aggregation
// slots — the VCI idea: threads routed to different shards contend on
// nothing on the send path.
#include <algorithm>

#include "core/runtime_impl.hpp"
#include "util/log.hpp"

namespace lci::detail {

namespace {
// The TLS shard pin behind lci::pin_thread_shard. Process-wide (one hint for
// every device) so benches and apps can pin worker t to shard t once,
// whatever devices they post through.
thread_local int tls_shard_pin = -1;
}  // namespace

int thread_shard_hint() noexcept { return tls_shard_pin; }

device_impl_t::device_impl_t(runtime_impl_t* runtime,
                             std::size_t prepost_depth, bool auto_progress)
    : runtime_(runtime),
      prepost_depth_(prepost_depth ? prepost_depth
                                   : runtime->attr().prepost_depth),
      auto_progress_(auto_progress) {
  counters_ = &runtime_->counters();
  backlog_.bind_counters(counters_);
  // Resolve the eager-coalescing policy (0-defaults filled from the packet
  // geometry) and size one aggregation slot per (shard, peer).
  const runtime_attr_t& attr = runtime_->attr();
  agg_default_ = attr.allow_aggregation;
  agg_bypass_single_ = attr.aggregation_bypass_single_poster;
  const std::size_t payload_capacity = runtime_->eager_threshold();
  agg_max_bytes_ = std::min(attr.aggregation_max_bytes != 0
                                ? attr.aggregation_max_bytes
                                : payload_capacity,
                            payload_capacity);
  agg_max_bytes_ = std::max(agg_max_bytes_, batch_entry_bytes(1));
  agg_eager_max_ = std::min(attr.aggregation_eager_max,
                            agg_max_bytes_ - sizeof(batch_sub_header_t));
  agg_max_msgs_ = std::max<std::size_t>(1, attr.aggregation_max_msgs);
  agg_flush_us_ = attr.aggregation_flush_us;
  // Shards are created in order, so with symmetric configs shard s of the
  // k-th device on every rank gets the same net index — the fabric's
  // index-mod routing then pairs shard s with the peers' shard s, keeping
  // one shard's traffic on one wire mailbox end to end.
  const std::size_t nshards = std::max<std::size_t>(1, attr.device_shards);
  const auto nranks = static_cast<std::size_t>(runtime_->nranks());
  shards_.resize(nshards);
  for (auto& shard : shards_) {
    shard.net_device = runtime_->net_context().create_device();
    shard.agg_slots = std::make_unique<agg_slot_t[]>(nranks);
    // Every shard rings the same device doorbell: engine wakeups are a
    // device-level concern, and progress() services all shards anyway.
    shard.net_device->set_doorbell(&doorbell_);
    // Sharded receive path: each shard's CQ has at most one consumer at a
    // time (progress() walks the shards one at a time per thread, and the
    // backend claims the consumer role per poll), so backends that support
    // it may drop their lock-model CQ lock for a lock-free MPSC queue with
    // an RMW-free idle fast path. Left off at shards=1 so the unsharded
    // device keeps the exact pre-MPSC locked behavior.
    if (nshards > 1) shard.net_device->set_single_consumer(true);
  }
  // CQ poll burst: runtime attr, defaulting to the fabric's own burst. The
  // clamp is per shard per progress() call (see the round-robin in
  // progress()).
  const std::size_t burst = attr.cq_poll_burst != 0
                                ? attr.cq_poll_burst
                                : runtime_->net_config().poll_burst;
  cq_poll_burst_ = std::clamp<std::size_t>(burst, 1, max_cq_poll_burst);
  runtime_->register_device(this);
  // Fill the receive queues up front so early senders find buffers; further
  // replenishment is the progress engine's job.
  replenish_preposts();
  if (auto_progress_) runtime_->attach_progress_device(this);
  LCI_LOG_(debug, "rank %d: device %d up (prepost_depth=%zu shards=%zu auto=%d)",
           runtime_->rank(), net().index(), prepost_depth_, shards_.size(),
           static_cast<int>(auto_progress_));
}

device_impl_t::~device_impl_t() {
  // Leave the engine first (pause-the-world inside): after this no engine
  // thread can hold a pointer to this device or its doorbell.
  if (auto_progress_) runtime_->detach_progress_device(this);
  for (auto& shard : shards_) shard.net_device->set_doorbell(nullptr);
  // Packets still sitting in the pre-posted receive queues are reclaimed when
  // the pool frees its slabs; quiesce traffic before freeing a device.
  runtime_->unregister_device(this);
}

bool device_impl_t::replenish_preposts() {
  // prepost_depth is a per-device budget: split it across the shards so the
  // packet-pool draw is invariant in the shard count (a 16-packet pool that
  // leaves 8 packets free at shards=1 still leaves 8 free at shards=4).
  const std::size_t per_shard =
      std::max<std::size_t>(1, prepost_depth_ / shards_.size());
  bool advanced = false;
  for (auto& shard : shards_) {
    while (shard.net_device->preposted_recvs() < per_shard) {
      packet_t* packet = runtime_->default_pool().get();
      if (packet == nullptr) return advanced;  // pool dry; retry next progress
      const auto result = shard.net_device->post_recv(
          packet->payload(), runtime_->default_pool().packet_capacity(),
          packet);
      if (result != net::post_result_t::ok) {
        runtime_->default_pool().put(packet);
        break;
      }
      advanced = true;
    }
  }
  return advanced;
}

}  // namespace lci::detail

namespace lci {

device_t alloc_device(runtime_t runtime) {
  auto* rt = detail::resolve_runtime(runtime);
  device_t device;
  device.p = new detail::device_impl_t(rt, 0);
  return device;
}

void free_device(device_t* device) {
  if (device == nullptr || device->p == nullptr) return;
  delete device->p;
  device->p = nullptr;
}

void pin_thread_shard(int shard) {
  detail::tls_shard_pin = shard < 0 ? -1 : shard;
}

int get_thread_shard() { return detail::tls_shard_pin; }

namespace detail {
bool progress_impl(runtime_t runtime, device_t device) {
  device_impl_t* dev =
      device.p != nullptr ? device.p : &resolve_runtime(runtime)->default_device();
  return dev->progress();
}
}  // namespace detail

}  // namespace lci
