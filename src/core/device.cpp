// Device: a complete set of low-level network resources. Threads operating
// on different devices never interfere (paper Sec. 3.2.3 / 4.2).
#include <algorithm>

#include "core/runtime_impl.hpp"
#include "util/log.hpp"

namespace lci::detail {

device_impl_t::device_impl_t(runtime_impl_t* runtime,
                             std::size_t prepost_depth, bool auto_progress)
    : runtime_(runtime),
      prepost_depth_(prepost_depth ? prepost_depth
                                   : runtime->attr().prepost_depth),
      auto_progress_(auto_progress),
      net_device_(runtime->net_context().create_device()) {
  backlog_.bind_counters(&runtime_->counters());
  // Resolve the eager-coalescing policy (0-defaults filled from the packet
  // geometry) and size one aggregation slot per peer.
  const runtime_attr_t& attr = runtime_->attr();
  agg_default_ = attr.allow_aggregation;
  const std::size_t payload_capacity = runtime_->eager_threshold();
  agg_max_bytes_ = std::min(attr.aggregation_max_bytes != 0
                                ? attr.aggregation_max_bytes
                                : payload_capacity,
                            payload_capacity);
  agg_max_bytes_ = std::max(agg_max_bytes_, batch_entry_bytes(1));
  agg_eager_max_ = std::min(attr.aggregation_eager_max,
                            agg_max_bytes_ - sizeof(batch_sub_header_t));
  agg_max_msgs_ = std::max<std::size_t>(1, attr.aggregation_max_msgs);
  agg_flush_us_ = attr.aggregation_flush_us;
  agg_slots_ = std::make_unique<agg_slot_t[]>(
      static_cast<std::size_t>(runtime_->nranks()));
  // CQ poll burst: runtime attr, defaulting to the fabric's own burst.
  const std::size_t burst = attr.cq_poll_burst != 0
                                ? attr.cq_poll_burst
                                : runtime_->net_config().poll_burst;
  cq_poll_burst_ = std::clamp<std::size_t>(burst, 1, max_cq_poll_burst);
  // Always register the doorbell: rings are counted (observable via
  // get_attr) even when no engine thread ever attaches to this device.
  net_device_->set_doorbell(&doorbell_);
  runtime_->register_device(this);
  // Fill the receive queue up front so early senders find buffers; further
  // replenishment is the progress engine's job.
  replenish_preposts();
  if (auto_progress_) runtime_->attach_progress_device(this);
  LCI_LOG_(debug, "rank %d: device %d up (prepost_depth=%zu auto=%d)",
           runtime_->rank(), net_device_->index(), prepost_depth_,
           static_cast<int>(auto_progress_));
}

device_impl_t::~device_impl_t() {
  // Leave the engine first (pause-the-world inside): after this no engine
  // thread can hold a pointer to this device or its doorbell.
  if (auto_progress_) runtime_->detach_progress_device(this);
  net_device_->set_doorbell(nullptr);
  // Packets still sitting in the pre-posted receive queue are reclaimed when
  // the pool frees its slabs; quiesce traffic before freeing a device.
  runtime_->unregister_device(this);
}

bool device_impl_t::replenish_preposts() {
  bool advanced = false;
  while (net_device_->preposted_recvs() < prepost_depth_) {
    packet_t* packet = runtime_->default_pool().get();
    if (packet == nullptr) break;  // pool dry; try again next progress call
    const auto result = net_device_->post_recv(
        packet->payload(), runtime_->default_pool().packet_capacity(), packet);
    if (result != net::post_result_t::ok) {
      runtime_->default_pool().put(packet);
      break;
    }
    advanced = true;
  }
  return advanced;
}

}  // namespace lci::detail

namespace lci {

device_t alloc_device(runtime_t runtime) {
  auto* rt = detail::resolve_runtime(runtime);
  device_t device;
  device.p = new detail::device_impl_t(rt, 0);
  return device;
}

void free_device(device_t* device) {
  if (device == nullptr || device->p == nullptr) return;
  delete device->p;
  device->p = nullptr;
}

namespace detail {
bool progress_impl(runtime_t runtime, device_t device) {
  device_impl_t* dev =
      device.p != nullptr ? device.p : &resolve_runtime(runtime)->default_device();
  return dev->progress();
}
}  // namespace detail

}  // namespace lci
