// The auto-progress engine: runtime-owned background progress threads.
//
// The paper deliberately keeps progress() explicit (Sec. 3.2.6) and leaves
// *who* calls it to the client. The companion HPX+LCI study shows that choice
// — worker-loop polling vs dedicated progress threads — is a first-order
// performance knob for AMT runtimes, so this subsystem makes the dedicated
// mode a runtime service without touching the critical path of the explicit
// mode: a pool of engine threads, each servicing a round-robin subset of the
// runtime's auto-progressed devices with a three-phase idle policy
//
//   spin  (progress_spin_polls empty rounds of immediate re-polling)
//     -> backoff (progress_backoff_polls rounds of util::backoff_t, which
//                 escalates pause loops into sched_yield)
//     -> sleep (condvar wait, bounded by progress_sleep_us, armed against
//               the per-device doorbells)
//
// Doorbell protocol. Every device owns a doorbell (registered with its net
// device; also rung by the core's backlog-push sites). ring() forwards to the
// waiter of the engine thread servicing the device. The sleep/wake race is
// closed the standard way: the sleeper (1) registers itself in
// waiter_t::sleepers, (2) snapshots waiter_t::seq, (3) re-polls its devices
// once — any ring that fired before (1) left work this poll observes — and
// only then (4) waits on the condvar with a predicate on seq, which ring()
// bumps before notifying. Because a doorbell is a hint (e.g. a packet-pool
// refill that unblocks prepost replenishment rings nothing), every sleep is
// additionally bounded by progress_sleep_us; a missed ring costs latency,
// never liveness.
//
// pause()/resume() give quiescence: pause blocks until every engine thread is
// parked outside progress(), so callers can mutate device sets (attach,
// detach, teardown) with no engine thread in flight. Attach/detach use it
// internally (stop-the-world; device churn is rare).
//
// Exactly-once interaction with the fatal paths: engine threads drive the
// same device_impl_t::progress() as user threads, so post-acceptance fatal
// errors keep flowing through completion objects (never thrown — a throw out
// of an engine thread would terminate the process, so protocol-corruption
// exceptions are caught and logged instead of unwinding).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/counters.hpp"
#include "net/net.hpp"

namespace lci::detail {

class device_impl_t;
class runtime_impl_t;

// Per-engine-thread wait state the doorbells forward into.
struct engine_waiter_t {
  std::mutex mutex;
  std::condition_variable cv;
  std::atomic<uint64_t> seq{0};
  std::atomic<int> sleepers{0};

  void wake() noexcept {
    seq.fetch_add(1, std::memory_order_seq_cst);
    if (sleepers.load(std::memory_order_seq_cst) > 0) {
      // Taking and dropping the mutex orders this wake against a sleeper
      // between its predicate check and the actual wait; notifying outside
      // the lock keeps the woken thread from immediately blocking on it.
      { std::lock_guard<std::mutex> guard(mutex); }
      cv.notify_all();
    }
  }
};

// Per-device doorbell: registered with the net device (rung by peers pushing
// onto this device's wire and by local dispatch-worthy completions) and rung
// directly by the core's backlog-push sites. Counts rings even when no
// engine thread is attached, so tests and get_attr can observe the protocol.
class doorbell_impl_t final : public net::doorbell_t {
 public:
  void ring() noexcept override {
    rings_.fetch_add(1, std::memory_order_relaxed);
    if (engine_waiter_t* w = waiter_.load(std::memory_order_acquire)) w->wake();
  }

  void attach(engine_waiter_t* waiter) noexcept {
    waiter_.store(waiter, std::memory_order_release);
  }
  uint64_t rings() const noexcept {
    return rings_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<engine_waiter_t*> waiter_{nullptr};
  std::atomic<uint64_t> rings_{0};
};

class progress_engine_t {
 public:
  progress_engine_t(runtime_impl_t* runtime, std::size_t nthreads);
  ~progress_engine_t();  // stops and joins every engine thread
  progress_engine_t(const progress_engine_t&) = delete;
  progress_engine_t& operator=(const progress_engine_t&) = delete;

  // Stop-the-world device-set mutation: pauses (if running), assigns the
  // device to the least-loaded engine thread (attach) or removes it
  // (detach), wires its doorbell, resumes. Safe from any thread.
  void attach_device(device_impl_t* device);
  void detach_device(device_impl_t* device);

  // Quiescence. pause() returns only when every engine thread is parked
  // outside progress(); nested pauses stack.
  void pause();
  void resume();
  bool paused() const;

  std::size_t nthreads() const noexcept { return workers_.size(); }

 private:
  struct worker_t {
    engine_waiter_t waiter;
    std::vector<device_impl_t*> devices;  // mutated only while paused
    std::thread thread;
  };

  void worker_loop(worker_t* worker);
  bool service(worker_t* worker);      // one round over the worker's devices
  void idle_sleep(worker_t* worker);   // phase 3 of the idle policy
  void park(worker_t* worker, std::unique_lock<std::mutex>& lock);
  void pause_locked(std::unique_lock<std::mutex>& lock);
  void resume_locked();

  runtime_impl_t* const runtime_;
  const std::size_t spin_polls_;
  const std::size_t backoff_polls_;
  const std::chrono::microseconds sleep_bound_;

  std::vector<std::unique_ptr<worker_t>> workers_;

  // Control plane (pause/resume/stop). Engine threads only touch it when
  // idle or parking, so the data plane never contends on this mutex.
  mutable std::mutex control_mutex_;
  std::condition_variable control_cv_;  // signaled by workers: parked count
  std::condition_variable worker_cv_;   // signaled at resume/stop
  std::atomic<bool> stopping_{false};
  std::atomic<int> pause_depth_{0};     // >0: workers must park
  std::size_t parked_ = 0;              // guarded by control_mutex_
};

}  // namespace lci::detail
