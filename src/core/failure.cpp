// Failure lifecycle: operation deadlines, cancel(), peer-death purge, and
// graceful drain.
//
// Design invariant (see docs/INTERNALS.md "Failure propagation & drain"):
// every tracked operation completes exactly once, decided at the op's
// arbitration point —
//   * queued receive        -> the matching-engine bucket lock (remove() vs.
//                              a complementary insert),
//   * rendezvous handshake  -> the pending-table take(),
//   * backlogged submission -> the live->executing/terminal state CAS.
// The op record itself is advisory: it says where to look, never who won.
#include <algorithm>
#include <cstdlib>

#include "core/runtime_impl.hpp"
#include "util/log.hpp"

namespace lci {
namespace detail {

using counter_id_t = detail::counter_id_t;

// ---------------------------------------------------------------------------
// Pending-handshake failure helpers
// ---------------------------------------------------------------------------

void finish_failed_send(runtime_impl_t* runtime, rdv_send_t& send,
                        errorcode_t code) {
  if (send.record)
    send.record->state.store(op_record_t::st_terminal,
                             std::memory_order_release);
  trace::end_op(send.span, trace::kind_t::op_rdv, trace::hist_t::post_rdv,
                static_cast<uint8_t>(code), send.peer_rank, send.tag,
                send.size);
  signal_comp(send.comp,
              make_fatal_status(runtime, code, send.peer_rank, send.tag,
                                send.buffer, send.size, send.user_context));
  // send.staged (the buffer-list gather, if any) dies with `send`.
}

void finish_failed_recv(runtime_impl_t* runtime, rdv_recv_t& recv,
                        errorcode_t code) {
  if (recv.record)
    recv.record->state.store(op_record_t::st_terminal,
                             std::memory_order_release);
  if (recv.mr != net::invalid_mr) runtime->reg_release(recv.mr);
  void* user_buffer = recv.buffer;
  if (!recv.list.empty() || recv.runtime_owned_buffer) {
    // Runtime staging (buffer-list landing area or large-AM malloc): the
    // user never saw this pointer.
    std::free(recv.buffer);
    user_buffer = nullptr;
  }
  trace::end_op(recv.span, trace::kind_t::op_recv, trace::hist_t::post_recv,
                static_cast<uint8_t>(code), recv.peer_rank, recv.tag,
                recv.size);
  signal_comp(recv.comp,
              make_fatal_status(runtime, code, recv.peer_rank, recv.tag,
                                user_buffer, recv.size, recv.user_context));
}

bool fail_pending_send(runtime_impl_t* runtime, uint32_t rdv_id,
                       errorcode_t code) {
  rdv_send_t send;
  if (!runtime->pending_sends().take(rdv_id, &send)) return false;
  finish_failed_send(runtime, send, code);
  return true;
}

bool fail_pending_recv(runtime_impl_t* runtime, uint32_t pending_id,
                       errorcode_t code) {
  rdv_recv_t recv;
  if (!runtime->pending_recvs().take(pending_id, &recv)) return false;
  finish_failed_recv(runtime, recv, code);
  return true;
}

// ---------------------------------------------------------------------------
// Tracked-op registry
// ---------------------------------------------------------------------------

void runtime_impl_t::track_op(std::shared_ptr<op_record_t> record) {
  if (!record) return;
  if (record->deadline_ns != 0) {
    // Keep the sweep gate at min(next deadline).
    uint64_t seen = next_deadline_ns_.load(std::memory_order_relaxed);
    while (record->deadline_ns < seen &&
           !next_deadline_ns_.compare_exchange_weak(
               seen, record->deadline_ns, std::memory_order_relaxed)) {
    }
  }
  std::lock_guard<util::spinlock_t> guard(op_lock_);
  // Opportunistic compaction keeps the list bounded even when every op
  // completes normally (terminal records are otherwise only reaped by
  // deadline sweeps, which cancel-only workloads never trigger).
  if (tracked_ops_.size() >= 32) {
    tracked_ops_.erase(
        std::remove_if(tracked_ops_.begin(), tracked_ops_.end(),
                       [](const std::shared_ptr<op_record_t>& r) {
                         return r->state.load(std::memory_order_acquire) ==
                                op_record_t::st_terminal;
                       }),
        tracked_ops_.end());
  }
  tracked_ops_.push_back(std::move(record));
  tracked_count_.store(tracked_ops_.size(), std::memory_order_release);
}

bool runtime_impl_t::finish_tracked_op(
    const std::shared_ptr<op_record_t>& record, errorcode_t code) {
  if (!record) return false;
  bool won = false;
  {
    std::lock_guard<util::spinlock_t> guard(record->lock);
    if (record->state.load(std::memory_order_acquire) ==
        op_record_t::st_terminal)
      return false;
    // Published before any terminal transition below so a flush-time resolve
    // that loses the record CAS can label its trace span with our code.
    record->terminal_code.store(static_cast<uint8_t>(code),
                                std::memory_order_relaxed);
    switch (record->kind) {
      case op_kind_t::recv: {
        if (record->engine == nullptr || record->entry == nullptr)
          return false;  // mid-conversion to rendezvous: the match owns it
        recv_entry_t* entry = record->entry;
        if (!record->engine->remove(record->key, entry))
          return false;  // a complementary arrival matched it first
        record->state.store(op_record_t::st_terminal,
                            std::memory_order_release);
        record->engine = nullptr;
        record->entry = nullptr;
        trace::end_op(entry->span, trace::kind_t::op_recv,
                      trace::hist_t::post_recv, static_cast<uint8_t>(code),
                      record->rank, record->tag, entry->size);
        signal_comp(entry->comp,
                    make_fatal_status(this, code, record->rank, record->tag,
                                      entry->buffer, entry->size,
                                      entry->user_context));
        delete entry;
        won = true;
        break;
      }
      case op_kind_t::rdv_send:
        won = record->rdv_id != 0 &&
              fail_pending_send(this, record->rdv_id, code);
        break;
      case op_kind_t::rdv_recv:
        won = record->rdv_id != 0 &&
              fail_pending_recv(this, record->rdv_id, code);
        break;
      case op_kind_t::backlog:
      case op_kind_t::coalesced: {
        // Backlog: live->terminal CAS races the executor's live->executing.
        // Coalesced: the CAS races the flush-time resolve, which skips
        // records it lost (the staged bytes still travel; cancellation is
        // completion-only once data sits in an aggregation slot).
        uint8_t expected = op_record_t::st_live;
        if (!record->state.compare_exchange_strong(
                expected, op_record_t::st_terminal,
                std::memory_order_acq_rel))
          return false;  // mid-execution or already terminal
        signal_comp(record->comp,
                    make_fatal_status(this, code, record->rank, record->tag,
                                      record->buffer, record->size,
                                      record->user_context));
        won = true;
        break;
      }
    }
  }
  if (!won) return false;
  // Drop the record from the registry (it is terminal now).
  std::lock_guard<util::spinlock_t> guard(op_lock_);
  auto it = std::find(tracked_ops_.begin(), tracked_ops_.end(), record);
  if (it != tracked_ops_.end()) {
    *it = std::move(tracked_ops_.back());
    tracked_ops_.pop_back();
    tracked_count_.store(tracked_ops_.size(), std::memory_order_release);
  }
  return true;
}

std::size_t runtime_impl_t::deadline_sweep() {
  if (tracked_count_.load(std::memory_order_acquire) == 0) return 0;
  const uint64_t now = now_ns();
  if (now < next_deadline_ns_.load(std::memory_order_relaxed)) return 0;
  if (!op_lock_.try_lock()) return 0;  // another thread is sweeping
  std::vector<std::shared_ptr<op_record_t>> expired;
  uint64_t next = UINT64_MAX;
  {
    std::lock_guard<util::spinlock_t> guard(op_lock_, std::adopt_lock);
    for (std::size_t i = tracked_ops_.size(); i-- > 0;) {
      const std::shared_ptr<op_record_t>& rec = tracked_ops_[i];
      if (rec->state.load(std::memory_order_acquire) ==
          op_record_t::st_terminal) {
        tracked_ops_[i] = std::move(tracked_ops_.back());
        tracked_ops_.pop_back();
        continue;
      }
      if (rec->deadline_ns == 0) continue;
      if (rec->deadline_ns <= now)
        expired.push_back(rec);
      else
        next = std::min(next, rec->deadline_ns);
    }
    tracked_count_.store(tracked_ops_.size(), std::memory_order_release);
    next_deadline_ns_.store(next, std::memory_order_relaxed);
  }
  std::size_t completed = 0;
  for (const auto& rec : expired)
    if (finish_tracked_op(rec, errorcode_t::fatal_timeout)) ++completed;
  return completed;
}

// ---------------------------------------------------------------------------
// Dead-peer purge
// ---------------------------------------------------------------------------

std::size_t runtime_impl_t::purge_dead_peer(int peer, bool everything) {
  std::size_t completed = 0;
  // 1. Matching engines: queued receives naming the peer complete with
  //    fatal_peer_down; retained unexpected-send/RTS packets from the peer
  //    are recycled. Wildcard receives (rank < 0 under tag_only/none
  //    policies) are left alone — another peer may still match them.
  using type_t = matching_engine_impl_t::type_t;
  std::vector<std::pair<void*, type_t>> removed;
  const std::size_t nengines = engine_registry_.size();
  for (std::size_t i = 0; i < nengines; ++i) {
    matching_engine_impl_t* engine =
        lookup_engine(static_cast<uint16_t>(i));
    if (engine == nullptr) continue;
    removed.clear();
    engine->purge_if(
        [&](void* value, type_t type) {
          if (type == type_t::recv) {
            auto* entry = static_cast<recv_entry_t*>(value);
            return everything || entry->rank == peer;
          }
          auto* packet = static_cast<packet_t*>(value);
          return everything || packet->peer_rank == peer;
        },
        removed);
    for (auto& [value, type] : removed) {
      if (type == type_t::recv) {
        auto* entry = static_cast<recv_entry_t*>(value);
        if (entry->record) {
          std::lock_guard<util::spinlock_t> guard(entry->record->lock);
          entry->record->engine = nullptr;
          entry->record->entry = nullptr;
          entry->record->state.store(op_record_t::st_terminal,
                                     std::memory_order_release);
        }
        trace::end_op(entry->span, trace::kind_t::op_recv,
                      trace::hist_t::post_recv,
                      static_cast<uint8_t>(errorcode_t::fatal_peer_down),
                      entry->rank, entry->tag, entry->size);
        signal_comp(entry->comp,
                    make_fatal_status(this, errorcode_t::fatal_peer_down,
                                      entry->rank, entry->tag, entry->buffer,
                                      entry->size, entry->user_context));
        delete entry;
        ++completed;
      } else {
        auto* packet = static_cast<packet_t*>(value);
        packet->pool->put(packet);
      }
    }
  }
  // 2. Rendezvous handshakes parked on the peer: the RTR or FIN that would
  //    resolve them will never arrive.
  std::vector<rdv_send_t> sends;
  pending_sends_.take_if(
      [&](const rdv_send_t& s) { return everything || s.peer_rank == peer; },
      sends);
  for (rdv_send_t& send : sends) {
    finish_failed_send(this, send, errorcode_t::fatal_peer_down);
    ++completed;
  }
  std::vector<rdv_recv_t> recvs;
  pending_recvs_.take_if(
      [&](const rdv_recv_t& r) { return everything || r.peer_rank == peer; },
      recvs);
  for (rdv_recv_t& recv : recvs) {
    finish_failed_recv(this, recv, errorcode_t::fatal_peer_down);
    ++completed;
  }
  // 3. Aggregation slots holding bytes destined for the peer: the batch will
  //    never be accepted, so buffered sub-ops that still owe a signal fail
  //    with fatal_peer_down now (delivered at most once: the flush path and
  //    this purge arbitrate through the same per-entry record CAS, and
  //    detaching the slot under its lock means only one side ever holds a
  //    given pending list).
  std::vector<device_impl_t*> devices;
  {
    std::lock_guard<util::spinlock_t> guard(device_lock_);
    devices = devices_;
  }
  for (device_impl_t* device : devices)
    completed += device->abort_aggregation(everything ? -1 : peer,
                                           errorcode_t::fatal_peer_down);
  // 4. Tracked backlogged submissions naming the peer. (Untracked backlog
  //    entries need no purge: their next run posts to a dead rank, gets
  //    peer_down back, and self-delivers the fatal completion.)
  std::vector<std::shared_ptr<op_record_t>> snapshot;
  {
    std::lock_guard<util::spinlock_t> guard(op_lock_);
    snapshot = tracked_ops_;
  }
  for (const auto& rec : snapshot) {
    if (!everything && rec->rank != peer) continue;
    if (finish_tracked_op(rec, errorcode_t::fatal_peer_down)) ++completed;
  }
  if (completed > 0)
    LCI_LOG_(debug, "rank %d: purged %zu ops for dead peer %d", rank_,
             completed, peer);
  return completed;
}

bool runtime_impl_t::check_peer_failures(device_impl_t* device) {
  const uint64_t epoch = device->net().death_epoch();
  if (epoch == death_epoch_seen_.load(std::memory_order_acquire))
    return false;
  // Read the epoch before scanning so a kill that lands mid-purge bumps past
  // the value we store and the next progress call re-runs the scan.
  if (!purge_lock_.try_lock()) return false;  // a purge is already running
  std::lock_guard<util::spinlock_t> guard(purge_lock_, std::adopt_lock);
  if (peer_purged_.size() != static_cast<std::size_t>(nranks_))
    peer_purged_.assign(static_cast<std::size_t>(nranks_), 0);
  bool purged = false;
  net::device_t& net_device = device->net();
  if (net_device.is_peer_down(rank_)) {
    // This rank itself was killed: every op, toward every peer, evaporates.
    purged = purge_dead_peer(/*peer=*/-1, /*everything=*/true) > 0;
    std::fill(peer_purged_.begin(), peer_purged_.end(), 1);
  } else {
    for (int peer = 0; peer < nranks_; ++peer) {
      if (peer_purged_[static_cast<std::size_t>(peer)] != 0) continue;
      if (!net_device.is_peer_down(peer)) continue;
      purge_dead_peer(peer, /*everything=*/false);
      peer_purged_[static_cast<std::size_t>(peer)] = 1;
      purged = true;
    }
  }
  death_epoch_seen_.store(epoch, std::memory_order_release);
  return purged;
}

// ---------------------------------------------------------------------------
// Drain
// ---------------------------------------------------------------------------

std::size_t runtime_impl_t::force_kill_tracked(errorcode_t code) {
  std::vector<std::shared_ptr<op_record_t>> snapshot;
  {
    std::lock_guard<util::spinlock_t> guard(op_lock_);
    snapshot = tracked_ops_;
  }
  std::size_t killed = 0;
  for (const auto& rec : snapshot)
    if (finish_tracked_op(rec, code)) ++killed;
  return killed;
}

std::size_t runtime_impl_t::drain_device(device_impl_t* device,
                                         uint64_t timeout_us) {
  // Phase 1: cooperative. Keep progressing until the device is quiet —
  // several consecutive rounds with no advance and nothing parked — or the
  // timeout expires. A zero timeout skips straight to the force-kill.
  const uint64_t give_up =
      timeout_us != 0 ? now_ns() + timeout_us * 1000 : 0;
  constexpr int quiet_rounds_needed = 8;
  int quiet = 0;
  bool quiesced = false;
  while (give_up != 0) {
    // Force-flush aggregation slots regardless of age: drain means "get
    // everything on the wire", not "wait for the flush timer".
    device->flush_aggregation();
    const bool advanced = device->progress();
    const bool idle = !advanced && device->backlog().size_approx() == 0 &&
                      !device->has_armed_aggregation() &&
                      pending_sends_.size() == 0 &&
                      pending_recvs_.size() == 0 &&
                      tracked_count_.load(std::memory_order_acquire) == 0;
    quiet = idle ? quiet + 1 : 0;
    if (quiet >= quiet_rounds_needed) {
      quiesced = true;
      break;
    }
    if (now_ns() >= give_up) break;
  }
  if (quiesced) return 0;
  // Phase 2: force-kill whatever is still parked. Requires quiescence so no
  // progress thread races the aborts: pause the auto-progress engine (the
  // caller must be the only other thread progressing this device).
  progress_engine_t* engine = progress_engine();
  if (engine != nullptr) engine->pause();
  std::size_t killed = device->backlog().drain_abort();
  // Aggregation slots that survived phase 1 (e.g. the fabric kept bouncing
  // the batch post): cancel the buffered sub-ops that still owe a signal.
  killed += device->abort_aggregation(-1, errorcode_t::fatal_canceled);
  killed += force_kill_tracked(errorcode_t::fatal_canceled);
  std::vector<rdv_send_t> sends;
  pending_sends_.take_if([](const rdv_send_t&) { return true; }, sends);
  for (rdv_send_t& send : sends) {
    finish_failed_send(this, send, errorcode_t::fatal_canceled);
    ++killed;
  }
  std::vector<rdv_recv_t> recvs;
  pending_recvs_.take_if([](const rdv_recv_t&) { return true; }, recvs);
  for (rdv_recv_t& recv : recvs) {
    finish_failed_recv(this, recv, errorcode_t::fatal_canceled);
    ++killed;
  }
  if (engine != nullptr) engine->resume();
  if (killed > 0)
    LCI_LOG_(debug, "rank %d: drain force-killed %zu ops", rank_, killed);
  return killed;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

bool cancel(op_t op) {
  if (!op.is_valid()) return false;
  detail::op_record_t* record = op.p.get();
  if (record->runtime == nullptr) return false;
  return record->runtime->finish_tracked_op(op.p,
                                            errorcode_t::fatal_canceled);
}

bool kill_peer(int rank, runtime_t runtime) {
  detail::runtime_impl_t* rt = detail::resolve_runtime(runtime);
  return rt->fabric().kill_rank(rank);
}

std::size_t drain(device_t device, uint64_t timeout_us, runtime_t runtime) {
  detail::runtime_impl_t* rt = detail::resolve_runtime(runtime);
  detail::device_impl_t* dev =
      device.is_valid() ? device.p : &rt->default_device();
  return rt->drain_device(dev, timeout_us);
}

}  // namespace lci
