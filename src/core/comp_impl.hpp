// Completion objects (paper Sec. 4.1.4). All built-ins are atomic-based.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <memory>
#include <vector>

#include "core/lci.hpp"
#include "util/lcrq.hpp"
#include "util/mpmc_ring.hpp"

namespace lci::detail {

// A completion object is a functor with a virtual signal method taking a
// status (Sec. 3.2.5).
class comp_impl_t {
 public:
  virtual ~comp_impl_t() = default;
  virtual void signal(const status_t& status) = 0;
};

// Handler: essentially a function; runs inline in the signaling context
// (usually the progress engine), so it must be short and must not block.
class handler_impl_t final : public comp_impl_t {
 public:
  explicit handler_impl_t(handler_fn_t fn) : fn_(std::move(fn)) {}
  void signal(const status_t& status) override { fn_(status); }

 private:
  handler_fn_t fn_;
};

// Completion queue: two implementations selectable per paper Sec. 4.1.4 —
// the LCRQ-based unbounded queue (default) and a fetch-and-add fixed-size
// array. The array variant blocks (spin+yield) when full: a signal must
// never be lost.
class cq_impl_t final : public comp_impl_t {
 public:
  explicit cq_impl_t(cq_type_t type, std::size_t capacity)
      : type_(type) {
    if (type_ == cq_type_t::lcrq) {
      lcrq_ = std::make_unique<util::lcrq_t<status_t>>(1024);
    } else {
      ring_ = std::make_unique<util::mpmc_ring_t<status_t>>(capacity);
    }
  }

  void signal(const status_t& status) override {
    if (type_ == cq_type_t::lcrq) {
      lcrq_->push(status);
    } else {
      util::backoff_t backoff;
      while (!ring_->try_push(status)) backoff.spin();
    }
  }

  bool pop(status_t* out) {
    if (type_ == cq_type_t::lcrq) {
      if (auto status = lcrq_->try_pop()) {
        *out = *status;
        return true;
      }
      return false;
    }
    if (auto status = ring_->try_pop()) {
      *out = *status;
      return true;
    }
    return false;
  }

  cq_type_t type() const noexcept { return type_; }

 private:
  const cq_type_t type_;
  std::unique_ptr<util::lcrq_t<status_t>> lcrq_;
  std::unique_ptr<util::mpmc_ring_t<status_t>> ring_;
};

// Synchronizer: similar to an MPI request but accepts `threshold` signals
// before becoming ready. Implemented with a fixed-size status array guarded
// by two atomic counters: `arrivals` claims a slot, `committed` publishes the
// write. Reuse discipline: after test() returns true the synchronizer resets;
// new signals may only be issued after the reset (single logical consumer).
class sync_impl_t final : public comp_impl_t {
 public:
  explicit sync_impl_t(std::size_t threshold)
      : threshold_(threshold ? threshold : 1), slots_(threshold_) {}

  void signal(const status_t& status) override {
    const std::size_t i = arrivals_.fetch_add(1, std::memory_order_acq_rel);
    assert(i < threshold_ && "synchronizer signaled more than its threshold");
    slots_[i] = status;
    committed_.fetch_add(1, std::memory_order_release);
  }

  bool test(status_t* out) {
    if (committed_.load(std::memory_order_acquire) != threshold_) return false;
    if (out != nullptr) {
      for (std::size_t i = 0; i < threshold_; ++i) out[i] = slots_[i];
    }
    committed_.store(0, std::memory_order_relaxed);
    arrivals_.store(0, std::memory_order_release);
    return true;
  }

  std::size_t threshold() const noexcept { return threshold_; }

 private:
  const std::size_t threshold_;
  std::vector<status_t> slots_;
  std::atomic<std::size_t> arrivals_{0};
  std::atomic<std::size_t> committed_{0};
};

}  // namespace lci::detail
