// Completion-object API (paper Sec. 3.2.5 / 4.1.4).
#include "core/comp_impl.hpp"
#include "core/runtime_impl.hpp"

namespace lci {

comp_t alloc_handler(handler_fn_t fn, runtime_t) {
  comp_t comp;
  comp.p = new detail::handler_impl_t(std::move(fn));
  return comp;
}

comp_t alloc_cq(runtime_t runtime) {
  auto* rt = detail::resolve_runtime(runtime);
  comp_t comp;
  comp.p = new detail::cq_impl_t(rt->attr().default_cq_type,
                                 rt->attr().cq_default_capacity);
  return comp;
}

// Extended variant used by tests/benches to pick the queue implementation
// explicitly (the paper's two designs: LCRQ and the FAA array).
comp_t alloc_cq_typed(cq_type_t type, std::size_t capacity) {
  comp_t comp;
  comp.p = new detail::cq_impl_t(type, capacity ? capacity : 65536);
  return comp;
}

comp_t alloc_sync(std::size_t threshold, runtime_t) {
  comp_t comp;
  comp.p = new detail::sync_impl_t(threshold);
  return comp;
}

void free_comp(comp_t* comp) {
  if (comp == nullptr || comp->p == nullptr) return;
  delete comp->p;
  comp->p = nullptr;
}

status_t cq_pop(comp_t cq) {
  auto* impl = dynamic_cast<detail::cq_impl_t*>(cq.p);
  if (impl == nullptr) throw fatal_error_t("cq_pop: not a completion queue");
  status_t status;
  if (impl->pop(&status)) {
    // Keep a fatal completion's code (peer down / canceled / timed out) —
    // rewriting it to `done` would hide the failure from the consumer.
    if (!status.error.is_fatal()) status.error.code = errorcode_t::done;
    return status;
  }
  status.error.code = errorcode_t::retry;
  return status;
}

bool sync_test(comp_t sync, status_t* out) {
  auto* impl = dynamic_cast<detail::sync_impl_t*>(sync.p);
  if (impl == nullptr) throw fatal_error_t("sync_test: not a synchronizer");
  return impl->test(out);
}

void sync_wait(comp_t sync, status_t* out) {
  auto* impl = dynamic_cast<detail::sync_impl_t*>(sync.p);
  if (impl == nullptr) throw fatal_error_t("sync_wait: not a synchronizer");
  // Drive the calling rank's default device while waiting so a single
  // threaded client cannot deadlock on its own progress.
  runtime_t g = get_g_runtime();
  util::backoff_t backoff;
  while (!impl->test(out)) {
    if (g.p != nullptr) {
      if (g.p->default_device().progress()) {
        backoff.reset();
        continue;
      }
    }
    backoff.spin();
  }
}

void comp_signal(comp_t comp, const status_t& status) {
  if (comp.p != nullptr) comp.p->signal(status);
}

rcomp_t register_rcomp(comp_t comp, runtime_t runtime) {
  return detail::resolve_runtime(runtime)->register_rcomp(comp.p);
}

void deregister_rcomp(rcomp_t rcomp, runtime_t runtime) {
  detail::resolve_runtime(runtime)->deregister_rcomp(rcomp);
}

}  // namespace lci

namespace lci {

// ---------------------------------------------------------------------------
// OFF allocation variants and attribute queries
// ---------------------------------------------------------------------------

device_t alloc_device_x::operator()() const {
  auto* rt = detail::resolve_runtime(runtime_);
  device_t device;
  device.p = new detail::device_impl_t(rt, prepost_depth_, auto_progress_);
  return device;
}

comp_t alloc_cq_x::operator()() const {
  auto* rt = detail::resolve_runtime(runtime_);
  comp_t comp;
  comp.p = new detail::cq_impl_t(
      has_type_ ? type_ : rt->attr().default_cq_type,
      capacity_ != 0 ? capacity_ : rt->attr().cq_default_capacity);
  return comp;
}

comp_t alloc_sync_x::operator()() const {
  comp_t comp;
  comp.p = new detail::sync_impl_t(threshold_);
  return comp;
}

matching_engine_t alloc_matching_engine_x::operator()() const {
  auto* rt = detail::resolve_runtime(runtime_);
  matching_engine_t engine;
  engine.p = new detail::matching_engine_impl_t(
      num_buckets_ != 0 ? num_buckets_ : rt->attr().matching_engine_buckets);
  if (make_key_) engine.p->set_make_key(make_key_);
  rt->register_engine(engine.p);
  engine.p->owner = rt;
  return engine;
}

packet_pool_t alloc_packet_pool_x::operator()() const {
  auto* rt = detail::resolve_runtime(runtime_);
  packet_pool_t pool;
  pool.p = new detail::packet_pool_impl_t(
      npackets_ != 0 ? npackets_ : rt->attr().npackets,
      packet_size_ != 0 ? packet_size_ : rt->attr().packet_size);
  return pool;
}

runtime_attr_t get_attr(runtime_t runtime) {
  return detail::resolve_runtime(runtime)->attr();
}

device_attr_t get_attr(device_t device) {
  device_attr_t attr;
  detail::device_impl_t* dev =
      device.p != nullptr ? device.p
                          : &detail::resolve_runtime({})->default_device();
  attr.prepost_depth = dev->prepost_depth();
  attr.net_index = dev->net().index();
  attr.device_shards = dev->nshards();
  attr.backlog_size = dev->backlog().size_approx();
  attr.injected_faults = dev->injected_faults_total();
  attr.auto_progress = dev->auto_progress();
  attr.doorbell_rings = dev->doorbell().rings();
  attr.wire_dropped = dev->wire_dropped_total();
  attr.allow_aggregation = dev->aggregation_default();
  attr.aggregation_eager_max = dev->agg_eager_max();
  attr.aggregation_max_bytes = dev->agg_max_bytes();
  attr.aggregation_max_msgs = dev->agg_max_msgs();
  attr.aggregation_flush_us = dev->agg_flush_us();
  attr.cq_poll_burst = dev->cq_poll_burst();
  const int nranks = dev->runtime()->nranks();
  for (int rank = 0; rank < nranks; ++rank)
    if (dev->net().is_peer_down(rank)) attr.dead_peers.push_back(rank);
  return attr;
}

matching_engine_attr_t get_attr(matching_engine_t engine) {
  matching_engine_attr_t attr;
  if (engine.p == nullptr) return attr;
  attr.num_buckets = engine.p->num_buckets();
  attr.id = engine.p->id();
  attr.entries = engine.p->size_slow();
  return attr;
}

packet_pool_attr_t get_attr(packet_pool_t pool) {
  packet_pool_attr_t attr;
  if (pool.p == nullptr) return attr;
  attr.npackets = pool.p->total_packets();
  attr.packet_size = pool.p->packet_capacity();
  attr.pooled = pool.p->pooled_approx();
  return attr;
}

comp_attr_t get_attr(comp_t comp) {
  comp_attr_t attr;
  if (auto* cq = dynamic_cast<detail::cq_impl_t*>(comp.p)) {
    attr.kind = comp_attr_t::kind_t::cq;
    attr.cq_type = cq->type();
  } else if (auto* sync = dynamic_cast<detail::sync_impl_t*>(comp.p)) {
    attr.kind = comp_attr_t::kind_t::sync;
    attr.sync_threshold = sync->threshold();
  } else if (dynamic_cast<detail::handler_impl_t*>(comp.p) != nullptr) {
    attr.kind = comp_attr_t::kind_t::handler;
  }
  return attr;
}

}  // namespace lci
