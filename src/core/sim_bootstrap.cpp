// Simulated multi-rank bootstrap: the stand-in for the paper's PMI-based
// bootstrapping backends (see DESIGN.md).
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "core/runtime_impl.hpp"
#include "core/sim_internal.hpp"

namespace lci::sim {

namespace detail_sim {

binding_t& tls_binding() {
  thread_local binding_t binding;
  return binding;
}

namespace {

// Real backends (shm/tcp) host exactly one rank per process, so their binding
// is process-global: every thread of the process belongs to the same rank and
// shares one fabric endpoint. (sim keeps per-thread bindings — that is how
// threads impersonate distinct ranks in one process.)
std::mutex& process_binding_lock() {
  static std::mutex lock;
  return lock;
}

binding_t& process_binding_slot() {
  static binding_t binding;
  return binding;
}

binding_t process_binding(net::backend_t backend, uint64_t peer_timeout_us) {
  std::lock_guard<std::mutex> guard(process_binding_lock());
  binding_t& binding = process_binding_slot();
  if (!binding) {
    net::config_t config;
    config.peer_timeout_us = peer_timeout_us;
    auto ctx = std::make_shared<rank_ctx_t>();
    ctx->fabric = net::create_fabric(backend, config);
    ctx->rank = net::bootstrap_rank();
    binding = ctx;
  } else if (binding->fabric->kind() != backend) {
    throw fatal_error_t("LCI_BACKEND changed after the fabric was created");
  }
  return binding;
}

}  // namespace

binding_t process_binding_if_any() {
  std::lock_guard<std::mutex> guard(process_binding_lock());
  return process_binding_slot();
}

binding_t ensure_binding(net::backend_t backend, uint64_t peer_timeout_us) {
  binding_t& binding = tls_binding();
  if (!binding) {
    if (backend == net::backend_t::sim) {
      // Implicit single-rank sim world, per thread (threads may impersonate
      // separate ranks, so an unbound thread gets its own world).
      auto ctx = std::make_shared<rank_ctx_t>();
      ctx->fabric = net::create_sim_fabric(1);
      ctx->rank = 0;
      binding = ctx;
    } else {
      binding = process_binding(backend, peer_timeout_us);
    }
  }
  return binding;
}

}  // namespace detail_sim

struct world_t::impl_t {
  std::shared_ptr<net::fabric_t> fabric;
  std::vector<binding_t> bindings;
};

world_t::world_t(int nranks, const net::config_t& config)
    : impl_(std::make_unique<impl_t>()) {
  impl_->fabric = net::create_sim_fabric(nranks, config);
  impl_->bindings.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    auto ctx = std::make_shared<detail_sim::rank_ctx_t>();
    ctx->fabric = impl_->fabric;
    ctx->rank = r;
    impl_->bindings.push_back(std::move(ctx));
  }
}

world_t::~world_t() = default;

int world_t::nranks() const {
  return static_cast<int>(impl_->bindings.size());
}

binding_t world_t::binding(int rank) const {
  return impl_->bindings.at(static_cast<std::size_t>(rank));
}

void bind(binding_t binding) { detail_sim::tls_binding() = std::move(binding); }

binding_t current_binding() {
  binding_t binding = detail_sim::tls_binding();
  if (binding) return binding;
  // TLS miss: under a real backend, every thread of the process belongs to
  // the one process-wide rank — worker threads that never called bind() (or
  // any init function) still reach the runtime. Under sim there is no such
  // process-wide rank, so the miss stays a miss.
  return detail_sim::process_binding_if_any();
}

void spawn(int nranks, const std::function<void(int rank)>& fn,
           const net::config_t& config) {
  world_t world(nranks, config);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      scoped_binding_t binding(world.binding(r));
      try {
        fn(r);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace lci::sim

namespace lci {

// ---------------------------------------------------------------------------
// Global default runtime lifecycle (Sec. 3.2.2): reference-counted per rank.
// ---------------------------------------------------------------------------

runtime_t g_runtime_init(const runtime_attr_t& attr) {
  auto binding =
      sim::detail_sim::ensure_binding(attr.backend, attr.peer_timeout_us);
  std::lock_guard<util::spinlock_t> guard(binding->lock);
  if (binding->g_refcount++ == 0) {
    binding->g_runtime.p =
        new detail::runtime_impl_t(binding->fabric, binding->rank, attr);
  }
  return binding->g_runtime;
}

void g_runtime_fina() {
  auto binding = sim::current_binding();
  if (!binding) throw fatal_error_t("g_runtime_fina: thread is not bound");
  std::lock_guard<util::spinlock_t> guard(binding->lock);
  if (binding->g_refcount <= 0)
    throw fatal_error_t("g_runtime_fina without matching g_runtime_init");
  if (--binding->g_refcount == 0) {
    delete binding->g_runtime.p;
    binding->g_runtime = {};
  }
}

runtime_t get_g_runtime() {
  auto binding = sim::current_binding();
  if (!binding) return {};
  std::lock_guard<util::spinlock_t> guard(binding->lock);
  return binding->g_runtime;
}

runtime_t alloc_runtime(const runtime_attr_t& attr) {
  auto binding =
      sim::detail_sim::ensure_binding(attr.backend, attr.peer_timeout_us);
  runtime_t runtime;
  runtime.p = new detail::runtime_impl_t(binding->fabric, binding->rank, attr);
  return runtime;
}

void free_runtime(runtime_t* runtime) {
  if (runtime == nullptr || runtime->p == nullptr) return;
  delete runtime->p;
  runtime->p = nullptr;
}

}  // namespace lci
