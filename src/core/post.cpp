// Generic communication posting (paper Sec. 3.2.4 / Table 1).
#include <cassert>
#include <cstring>
#include <memory>

#include "core/runtime_impl.hpp"

namespace lci::detail {

using counter_id_t = detail::counter_id_t;

namespace {

struct resolved_t {
  runtime_impl_t* runtime;
  device_impl_t* device;
  matching_engine_impl_t* engine;
  packet_pool_impl_t* pool;
};

resolved_t resolve(const post_args_t& args) {
  runtime_impl_t* rt = resolve_runtime(args.runtime);
  return resolved_t{
      rt,
      args.device.p != nullptr ? args.device.p : &rt->default_device(),
      args.matching_engine.p != nullptr ? args.matching_engine.p
                                        : &rt->default_engine(),
      args.packet_pool.p != nullptr ? args.packet_pool.p : &rt->default_pool(),
  };
}

std::size_t payload_size(const post_args_t& args) {
  return args.buffers != nullptr ? args.buffers->total_size() : args.size;
}

// Gathers the user payload (single buffer or buffer list) into `dst`.
void gather(const post_args_t& args, char* dst) {
  if (args.buffers == nullptr) {
    std::memcpy(dst, args.local_buffer, args.size);
    return;
  }
  std::size_t offset = 0;
  for (const buffer_t& b : args.buffers->list) {
    std::memcpy(dst + offset, b.base, b.size);
    offset += b.size;
  }
}

status_t retry_status(errorcode_t code) {
  status_t status;
  status.error.code = code;
  return status;
}

status_t done_status(const post_args_t& args, std::size_t size) {
  status_t status;
  status.error.code = errorcode_t::done;
  status.rank = args.rank;
  status.tag = args.tag;
  status.buffer = buffer_t{args.local_buffer, size};
  status.user_context = args.user_context;
  return status;
}

// Applies the done/posted/backlog conventions to a successfully submitted
// immediate-completion operation: if the user forbade `done`, signal the comp
// instead and report `posted`.
status_t finish_immediate(const post_args_t& args, std::size_t size,
                          bool via_backlog) {
  status_t status = done_status(args, size);
  if (!args.allow_done && args.local_comp.p != nullptr) {
    args.local_comp.p->signal(status);
    status.error.code =
        via_backlog ? errorcode_t::posted_backlog : errorcode_t::posted;
    return status;
  }
  status.error.code = via_backlog ? errorcode_t::done_backlog
                                  : errorcode_t::done;
  return status;
}

// ---------------------------------------------------------------------------
// Eager OUT path (inject / buffer-copy) for sends and active messages.
// ---------------------------------------------------------------------------
status_t post_eager_out(const resolved_t& r, const post_args_t& args,
                        uint8_t kind, bool via_backlog) {
  const std::size_t size = payload_size(args);
  msg_header_t header;
  header.kind = kind;
  header.policy = static_cast<uint8_t>(args.matching_policy);
  header.engine_id = r.engine->id();
  header.tag = args.tag;
  header.rcomp = args.remote_comp;

  const std::size_t wire_size = sizeof(header) + size;
  net::post_result_t result;
  if (size <= r.runtime->attr().max_inject_size && !args.from_packet) {
    // Inject: assemble on the stack, no packet consumed (Sec. 4.3).
    alignas(msg_header_t) char staging[sizeof(msg_header_t) + 512];
    assert(wire_size <= sizeof(staging));
    std::memcpy(staging, &header, sizeof(header));
    gather(args, staging + sizeof(header));
    result = r.device->net().post_send(args.rank, staging, wire_size, 0,
                                       nullptr);
    if (result != net::post_result_t::ok)
      return retry_status(map_net_result(result).code);
    r.runtime->counters().add(counter_id_t::send_inject);
    return finish_immediate(args, size, via_backlog);
  }

  // Buffer-copy: stage in a packet. With from_packet the caller already
  // assembled the payload in a packet obtained from get_packet (Sec. 3.3.1),
  // so only the header needs writing — the protocol's memory copy is saved.
  packet_t* packet;
  if (args.from_packet) {
    packet = packet_t::from_payload(static_cast<char*>(args.local_buffer) -
                                    sizeof(msg_header_t));
    std::memcpy(packet->payload(), &header, sizeof(header));
  } else {
    packet = r.pool->get();
    if (packet == nullptr) return retry_status(errorcode_t::retry_nopacket);
    std::memcpy(packet->payload(), &header, sizeof(header));
    gather(args, packet->payload() + sizeof(header));
  }
  result =
      r.device->net().post_send(args.rank, packet->payload(), wire_size, 0,
                                nullptr);
  if (result != net::post_result_t::ok) {
    // from_packet: the caller keeps its packet across the retry.
    if (!args.from_packet) r.pool->put(packet);
    return retry_status(map_net_result(result).code);
  }
  // The simulated wire copies synchronously, so the packet is reusable as
  // soon as the post succeeds (a hardware backend would return it from the
  // send CQE instead). A from_packet post consumes the caller's packet.
  packet->pool->put(packet);
  r.runtime->counters().add(counter_id_t::send_bcopy);
  return finish_immediate(args, size, via_backlog);
}

// ---------------------------------------------------------------------------
// Rendezvous OUT path (zero-copy) for sends and active messages.
// ---------------------------------------------------------------------------
status_t post_rendezvous_out(const resolved_t& r, const post_args_t& args,
                             uint8_t kind) {
  const std::size_t size = payload_size(args);
  rdv_send_t state;
  state.size = size;
  state.comp = args.local_comp.p;
  state.user_context = args.user_context;
  state.peer_rank = args.rank;
  state.tag = args.tag;
  if (args.buffers != nullptr) {
    // Buffer-list rendezvous: gather into a staging copy the runtime owns
    // until the RDMA write completes.
    state.staged = std::make_unique<char[]>(size);
    gather(args, state.staged.get());
    state.buffer = args.local_buffer;  // reported back in the status
  } else {
    state.buffer = args.local_buffer;
  }
  const uint32_t rdv_id = r.runtime->pending_sends().add(std::move(state));

  struct rts_msg_t {
    msg_header_t header;
    rts_payload_t payload;
  } msg;
  msg.header.kind = kind;
  msg.header.policy = static_cast<uint8_t>(args.matching_policy);
  msg.header.engine_id = r.engine->id();
  msg.header.tag = args.tag;
  msg.header.rcomp = args.remote_comp;
  msg.payload.size = size;
  msg.payload.rdv_id = rdv_id;

  const auto result =
      r.device->net().post_send(args.rank, &msg, sizeof(msg), 0, nullptr);
  if (result != net::post_result_t::ok) {
    rdv_send_t rollback;
    r.runtime->pending_sends().take(rdv_id, &rollback);
    return retry_status(map_net_result(result).code);
  }
  r.runtime->counters().add(counter_id_t::send_rdv);
  status_t status;
  status.error.code = errorcode_t::posted;
  return status;
}

// ---------------------------------------------------------------------------
// Receive path.
// ---------------------------------------------------------------------------
status_t post_receive(const resolved_t& r, const post_args_t& args) {
  auto* entry = new recv_entry_t;
  entry->buffer = args.local_buffer;
  entry->size = payload_size(args);
  entry->comp = args.local_comp.p;
  entry->user_context = args.user_context;
  entry->rank = args.rank;
  entry->tag = args.tag;
  if (args.buffers != nullptr) entry->list = args.buffers->list;

  const auto key =
      r.engine->make_key(args.rank, args.tag, args.matching_policy);
  r.runtime->counters().add(counter_id_t::recv_posted);
  void* matched =
      r.engine->insert(key, entry, matching_engine_impl_t::type_t::recv);
  if (matched == nullptr) {
    status_t status;
    status.error.code = errorcode_t::posted;
    return status;
  }
  r.runtime->counters().add(counter_id_t::recv_matched);

  // (9)/(10): the posting procedure itself found the match.
  auto* packet = static_cast<packet_t*>(matched);
  const auto* header =
      reinterpret_cast<const msg_header_t*>(packet->payload());
  const char* data = packet->payload() + sizeof(msg_header_t);
  if (header->kind == msg_header_t::eager_send) {
    // Immediate completion: return `done` without signaling the comp, unless
    // the user forbade the done shortcut.
    const bool force_signal = !args.allow_done && entry->comp != nullptr;
    status_t status;
    complete_eager_recv(r.runtime, entry, packet->peer_rank, header->tag, data,
                        packet->payload_size, &status, force_signal);
    if (force_signal) status.error.code = errorcode_t::posted;
    packet->pool->put(packet);
    return status;
  }
  assert(header->kind == msg_header_t::rts);
  const int peer_rank = packet->peer_rank;
  rts_payload_t rts;
  std::memcpy(&rts, data, sizeof(rts));
  rdv_recv_t state;
  state.buffer = entry->buffer;
  state.size = entry->size;
  state.comp = entry->comp;
  state.user_context = entry->user_context;
  state.list = std::move(entry->list);
  delete entry;
  start_rendezvous_recv(r.runtime, r.device, peer_rank, header->tag,
                        rts.rdv_id, rts.size, std::move(state));
  packet->pool->put(packet);
  status_t status;
  status.error.code = errorcode_t::posted;
  return status;
}

}  // namespace

status_t post_comm_impl(const post_args_t& args) {
  const resolved_t r = resolve(args);

  if (args.rank < 0 || args.rank >= r.runtime->nranks())
    throw fatal_error_t("post_comm: rank out of range");

  status_t status;
  const bool has_remote_buffer = args.remote_buffer.is_valid();
  const bool has_remote_comp = args.remote_comp != rcomp_null;

  if (args.direction == direction_t::out) {
    if (has_remote_buffer) {
      // RMA put, with or without signal.
      if (args.buffers != nullptr)
        throw fatal_error_t("buffer lists are not supported for put/get");
      auto* ctx = new op_ctx_t;
      ctx->kind = ctx_kind_t::rma_put;
      ctx->comp = args.local_comp.p;
      ctx->user_context = args.user_context;
      ctx->buffer = args.local_buffer;
      ctx->size = args.size;
      ctx->rank = args.rank;
      ctx->tag = args.tag;
      const uint32_t imm =
          has_remote_comp ? encode_signal_imm(args.remote_comp, args.tag) : 0;
      net::post_result_t result;
      try {
        result = r.device->net().post_write(
            args.rank, args.local_buffer, args.size, args.remote_buffer.id,
            args.remote_offset, has_remote_comp, imm, ctx);
      } catch (...) {
        // Posting-time fatal (bad MR / bounds): the op context never reached
        // the network, so it is still ours to free.
        delete ctx;
        throw;
      }
      if (result != net::post_result_t::ok) {
        delete ctx;
        status = retry_status(map_net_result(result).code);
      } else {
        r.runtime->counters().add(counter_id_t::rma_put);
        status.error.code = errorcode_t::posted;
      }
    } else {
      // Send (no remote comp) or active message (remote comp given).
      const uint8_t eager_kind = has_remote_comp ? msg_header_t::eager_am
                                                 : msg_header_t::eager_send;
      const uint8_t rdv_kind =
          has_remote_comp ? msg_header_t::rts_am : msg_header_t::rts;
      if (payload_size(args) <= r.runtime->eager_threshold())
        status = post_eager_out(r, args, eager_kind, /*via_backlog=*/false);
      else
        status = post_rendezvous_out(r, args, rdv_kind);
    }
  } else {
    if (has_remote_buffer) {
      // RMA get; with a remote comp this is the read-with-notification
      // extension (see DESIGN.md).
      if (args.buffers != nullptr)
        throw fatal_error_t("buffer lists are not supported for put/get");
      auto* ctx = new op_ctx_t;
      ctx->kind = ctx_kind_t::rma_get;
      ctx->comp = args.local_comp.p;
      ctx->user_context = args.user_context;
      ctx->buffer = args.local_buffer;
      ctx->size = args.size;
      ctx->rank = args.rank;
      ctx->tag = args.tag;
      const uint32_t imm =
          has_remote_comp ? encode_signal_imm(args.remote_comp, args.tag) : 0;
      net::post_result_t result;
      try {
        result = r.device->net().post_read(
            args.rank, args.local_buffer, args.size, args.remote_buffer.id,
            args.remote_offset, has_remote_comp, imm, ctx);
      } catch (...) {
        delete ctx;
        throw;
      }
      if (result != net::post_result_t::ok) {
        delete ctx;
        status = retry_status(map_net_result(result).code);
      } else {
        r.runtime->counters().add(counter_id_t::rma_get);
        status.error.code = errorcode_t::posted;
      }
    } else {
      if (has_remote_comp)
        throw fatal_error_t(
            "invalid post_comm: IN direction with a remote completion but no "
            "remote buffer (Table 1)");
      return post_receive(r, args);
    }
  }

  // allow_retry=false: the user cannot handle retry; queue on the backlog
  // and report the *_backlog variant (Sec. 4.4). For eager-size payloads the
  // backlog entry owns a staged copy, so `done_backlog` honestly means "your
  // buffer is reusable"; larger (rendezvous/RMA) payloads keep referencing
  // the user buffer until the completion object is signaled.
  if (status.error.is_retry()) {
    switch (status.error.code) {
      case errorcode_t::retry_lock:
        r.runtime->counters().add(counter_id_t::retry_lock);
        break;
      case errorcode_t::retry_nopacket:
        r.runtime->counters().add(counter_id_t::retry_nopacket);
        break;
      case errorcode_t::retry_nomem:
        r.runtime->counters().add(counter_id_t::retry_nomem);
        break;
      default:
        break;
    }
  }
  if (status.error.is_retry() && !args.allow_retry) {
    struct backlog_capture_t {
      post_args_t args;
      buffers_t buffers;          // deep copy of a buffer list
      std::vector<char> staged;   // deep copy of an eager payload
    };
    auto capture = std::make_shared<backlog_capture_t>();
    capture->args = args;
    capture->args.allow_retry = true;
    // Pin the resolved handles: the backlog may be retired by a progress
    // engine thread with no sim binding, where default-runtime resolution
    // (get_g_runtime) would fail.
    capture->args.runtime.p = r.runtime;
    capture->args.device.p = r.device;
    capture->args.matching_engine.p = r.engine;
    capture->args.packet_pool.p = r.pool;
    // Guarantee the promised signal: a backlogged op must complete through
    // its completion object, never through a lost `done` return value.
    capture->args.allow_done = false;
    const bool eager_out = args.direction == direction_t::out &&
                           !has_remote_buffer &&
                           payload_size(args) <= r.runtime->eager_threshold();
    if (eager_out) {
      capture->staged.resize(payload_size(args));
      gather(args, capture->staged.data());
      capture->args.local_buffer = capture->staged.data();
      capture->args.size = capture->staged.size();
      capture->args.buffers = nullptr;
    } else if (args.buffers != nullptr) {
      capture->buffers = *args.buffers;
      capture->args.buffers = &capture->buffers;
    }
    r.runtime->counters().add(counter_id_t::backlog_pushed);
    runtime_impl_t* runtime = r.runtime;
    r.device->backlog().push([capture, runtime]() {
      // A backlogged operation may not throw out of the progress engine and
      // may not vanish: a fatal resubmission failure is delivered through the
      // completion object the user was promised (it used to be dropped).
      try {
        return post_comm_impl(capture->args);
      } catch (const std::exception&) {
        signal_comp(capture->args.local_comp.p,
                    make_fatal_status(runtime, errorcode_t::fatal,
                                      capture->args.rank, capture->args.tag,
                                      capture->args.local_buffer,
                                      capture->args.size,
                                      capture->args.user_context));
        status_t failed;
        failed.error.code = errorcode_t::fatal;
        return failed;
      }
    });
    // Wake a sleeping progress thread: the backlog retry is the only way
    // this operation ever completes.
    r.device->ring_doorbell();
    status.error.code = args.local_comp.p != nullptr
                            ? errorcode_t::posted_backlog
                            : errorcode_t::done_backlog;
  }
  return status;
}

}  // namespace lci::detail
