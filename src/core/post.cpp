// Generic communication posting (paper Sec. 3.2.4 / Table 1).
#include <cassert>
#include <cstring>
#include <memory>

#include "core/runtime_impl.hpp"

namespace lci::detail {

using counter_id_t = detail::counter_id_t;

namespace {

struct resolved_t {
  runtime_impl_t* runtime;
  device_impl_t* device;
  matching_engine_impl_t* engine;
  packet_pool_impl_t* pool;
  // Shard this post routes to (thread pin or (rank, tag) hash): every wire
  // post and ordering flush of one call uses the same shard, so a key stream
  // never straddles endpoints.
  std::size_t shard;
};

resolved_t resolve(const post_args_t& args) {
  runtime_impl_t* rt = resolve_runtime(args.runtime);
  device_impl_t* device =
      args.device.p != nullptr ? args.device.p : &rt->default_device();
  return resolved_t{
      rt,
      device,
      args.matching_engine.p != nullptr ? args.matching_engine.p
                                        : &rt->default_engine(),
      args.packet_pool.p != nullptr ? args.packet_pool.p : &rt->default_pool(),
      device->route_shard(args.rank, args.tag),
  };
}

std::size_t payload_size(const post_args_t& args) {
  return args.buffers != nullptr ? args.buffers->total_size() : args.size;
}

// Gathers the user payload (single buffer or buffer list) into `dst`.
void gather(const post_args_t& args, char* dst) {
  if (args.buffers == nullptr) {
    std::memcpy(dst, args.local_buffer, args.size);
    return;
  }
  std::size_t offset = 0;
  for (const buffer_t& b : args.buffers->list) {
    std::memcpy(dst + offset, b.base, b.size);
    offset += b.size;
  }
}

status_t retry_status(errorcode_t code) {
  status_t status;
  status.error.code = code;
  return status;
}

// Maps a failed net post to a status. Retries come back bare; fatal results
// (peer_down today) come back as a fully populated fatal status so retry
// loops terminate instead of spinning on a dead rank. Returned, not thrown:
// the op names state the user still owns, nothing was accepted.
status_t failed_post_status(const resolved_t& r, const post_args_t& args,
                            net::post_result_t result) {
  const error_t err = map_net_result(result);
  if (err.is_fatal())
    return make_fatal_status(r.runtime, err.code, args.rank, args.tag,
                             args.local_buffer, payload_size(args),
                             args.user_context);
  return retry_status(err.code);
}

// Builds the op record for a tracked post (.deadline(us) / .op_handle(&op)).
std::shared_ptr<op_record_t> make_record(const resolved_t& r,
                                         const post_args_t& args,
                                         op_kind_t kind) {
  auto record = std::make_shared<op_record_t>();
  record->kind = kind;
  record->runtime = r.runtime;
  record->device = r.device;
  record->comp = args.local_comp.p;
  record->user_context = args.user_context;
  record->buffer = args.local_buffer;
  record->size = payload_size(args);
  record->rank = args.rank;
  record->tag = args.tag;
  if (args.deadline_us != 0)
    record->deadline_ns = now_ns() + args.deadline_us * 1000;
  return record;
}

bool wants_record(const post_args_t& args) {
  return args.deadline_us != 0 || args.out_op != nullptr;
}

status_t done_status(const post_args_t& args, std::size_t size) {
  status_t status;
  status.error.code = errorcode_t::done;
  status.rank = args.rank;
  status.tag = args.tag;
  status.buffer = buffer_t{args.local_buffer, size};
  status.user_context = args.user_context;
  return status;
}

// Applies the done/posted/backlog conventions to a successfully submitted
// immediate-completion operation: if the user forbade `done`, signal the comp
// instead and report `posted`.
status_t finish_immediate(const post_args_t& args, std::size_t size,
                          bool via_backlog) {
  status_t status = done_status(args, size);
  if (!args.allow_done && args.local_comp.p != nullptr) {
    args.local_comp.p->signal(status);
    status.error.code =
        via_backlog ? errorcode_t::posted_backlog : errorcode_t::posted;
    return status;
  }
  status.error.code = via_backlog ? errorcode_t::done_backlog
                                  : errorcode_t::done;
  return status;
}

// Op-lifecycle span for an operation that failed fatally at posting time:
// begin+end emitted as a pair so fatal posts still show up as (zero-length,
// errored) ops in a trace. Retries emit nothing — the op was never accepted.
void trace_fatal_post(const trace::span_t& post_span, trace::kind_t kind,
                      trace::hist_t hist, const status_t& failed,
                      const post_args_t& args, std::size_t size) {
  const trace::span_t op = trace::begin_at(post_span, kind, args.rank,
                                           args.tag, size);
  trace::end_op(op, kind, hist, static_cast<uint8_t>(failed.error.code),
                args.rank, args.tag, size);
}

// ---------------------------------------------------------------------------
// Eager OUT path (inject / buffer-copy) for sends and active messages.
// ---------------------------------------------------------------------------
status_t post_eager_out(const resolved_t& r, const post_args_t& args,
                        uint8_t kind, bool via_backlog,
                        const trace::span_t& post_span) {
  const std::size_t size = payload_size(args);
  msg_header_t header;
  header.kind = kind;
  header.policy = static_cast<uint8_t>(args.matching_policy);
  header.engine_id = r.engine->id();
  header.tag = args.tag;
  header.rcomp = args.remote_comp;

  const std::size_t wire_size = sizeof(header) + size;
  net::post_result_t result;
  if (size <= r.runtime->attr().max_inject_size && !args.from_packet) {
    // Inject: assemble on the stack, no packet consumed (Sec. 4.3).
    alignas(msg_header_t) char staging[sizeof(msg_header_t) + 512];
    assert(wire_size <= sizeof(staging));
    std::memcpy(staging, &header, sizeof(header));
    gather(args, staging + sizeof(header));
    result = r.device->net(r.shard).post_send(args.rank, staging, wire_size, 0,
                                              nullptr);
    if (result != net::post_result_t::ok) {
      const status_t failed = failed_post_status(r, args, result);
      if (failed.error.is_fatal())
        trace_fatal_post(post_span, trace::kind_t::op_eager,
                         trace::hist_t::post_eager, failed, args, size);
      return failed;
    }
    r.runtime->counters().add(counter_id_t::send_inject);
    const trace::span_t op = trace::begin_at(post_span, trace::kind_t::op_eager,
                                             args.rank, args.tag, size);
    trace::end_op(op, trace::kind_t::op_eager, trace::hist_t::post_eager, 0,
                  args.rank, args.tag, size);
    return finish_immediate(args, size, via_backlog);
  }

  // Buffer-copy: stage in a packet. With from_packet the caller already
  // assembled the payload in a packet obtained from get_packet (Sec. 3.3.1),
  // so only the header needs writing — the protocol's memory copy is saved.
  packet_t* packet;
  if (args.from_packet) {
    packet = packet_t::from_payload(static_cast<char*>(args.local_buffer) -
                                    sizeof(msg_header_t));
    std::memcpy(packet->payload(), &header, sizeof(header));
  } else {
    packet = r.pool->get();
    if (packet == nullptr) return retry_status(errorcode_t::retry_nopacket);
    std::memcpy(packet->payload(), &header, sizeof(header));
    gather(args, packet->payload() + sizeof(header));
  }
  result = r.device->net(r.shard).post_send(args.rank, packet->payload(),
                                            wire_size, 0, nullptr);
  if (result != net::post_result_t::ok) {
    const status_t failed = failed_post_status(r, args, result);
    // from_packet: the caller keeps its packet across a retry — but a fatal
    // result ends the op, so the packet is consumed either way.
    if (!args.from_packet || failed.error.is_fatal())
      packet->pool->put(packet);
    if (failed.error.is_fatal())
      trace_fatal_post(post_span, trace::kind_t::op_eager,
                       trace::hist_t::post_eager, failed, args, size);
    return failed;
  }
  // The simulated wire copies synchronously, so the packet is reusable as
  // soon as the post succeeds (a hardware backend would return it from the
  // send CQE instead). A from_packet post consumes the caller's packet.
  packet->pool->put(packet);
  r.runtime->counters().add(counter_id_t::send_bcopy);
  const trace::span_t op = trace::begin_at(post_span, trace::kind_t::op_eager,
                                           args.rank, args.tag, size);
  trace::end_op(op, trace::kind_t::op_eager, trace::hist_t::post_eager, 0,
                args.rank, args.tag, size);
  return finish_immediate(args, size, via_backlog);
}

// ---------------------------------------------------------------------------
// Rendezvous OUT path (zero-copy) for sends and active messages.
// ---------------------------------------------------------------------------
status_t post_rendezvous_out(const resolved_t& r, const post_args_t& args,
                             uint8_t kind, const trace::span_t& post_span) {
  const std::size_t size = payload_size(args);
  rdv_send_t state;
  state.span = trace::begin_at(post_span, trace::kind_t::op_rdv, args.rank,
                               args.tag, size);
  const trace::span_t op_span = state.span;
  state.size = size;
  state.comp = args.local_comp.p;
  state.user_context = args.user_context;
  state.peer_rank = args.rank;
  state.tag = args.tag;
  if (args.buffers != nullptr) {
    // Buffer-list rendezvous: gather into a staging copy the runtime owns
    // until the RDMA write completes.
    state.staged = std::make_unique<char[]>(size);
    gather(args, state.staged.get());
    state.buffer = args.local_buffer;  // reported back in the status
  } else {
    state.buffer = args.local_buffer;
  }
  std::shared_ptr<op_record_t> record;
  if (wants_record(args)) {
    record = make_record(r, args, op_kind_t::rdv_send);
    state.record = record;
  }
  const uint32_t rdv_id = r.runtime->pending_sends().add(std::move(state));
  if (record) {
    std::lock_guard<util::spinlock_t> guard(record->lock);
    record->rdv_id = rdv_id;
  }

  struct rts_msg_t {
    msg_header_t header;
    rts_payload_t payload;
  } msg;
  msg.header.kind = kind;
  msg.header.policy = static_cast<uint8_t>(args.matching_policy);
  msg.header.engine_id = r.engine->id();
  msg.header.tag = args.tag;
  msg.header.rcomp = args.remote_comp;
  msg.payload.size = size;
  msg.payload.rdv_id = rdv_id;

  const auto result = r.device->net(r.shard).post_send(args.rank, &msg,
                                                       sizeof(msg), 0, nullptr);
  if (result != net::post_result_t::ok) {
    rdv_send_t rollback;
    if (!r.runtime->pending_sends().take(rdv_id, &rollback)) {
      // The peer died between the table add and the RTS post, and the purge
      // already completed this op through its comp. Report `posted`: the
      // op was accepted and its (fatal) completion delivered.
      status_t status;
      status.error.code = errorcode_t::posted;
      return status;
    }
    if (rollback.record)
      rollback.record->state.store(op_record_t::st_terminal,
                                   std::memory_order_release);
    const status_t failed = failed_post_status(r, args, result);
    // The op span opened above must close: fatal ends with the code, a
    // transient retry ends with the retry code (the op never started; a
    // resubmission opens a fresh span).
    trace::end_op(rollback.span, trace::kind_t::op_rdv, trace::hist_t::post_rdv,
                  static_cast<uint8_t>(failed.error.code), args.rank, args.tag,
                  size);
    return failed;
  }
  r.runtime->counters().add(counter_id_t::send_rdv);
  trace::instant(trace::kind_t::rts, op_span.id, args.rank, args.tag, size);
  if (record) {
    r.runtime->track_op(record);
    if (args.out_op != nullptr) args.out_op->p = record;
  }
  status_t status;
  status.error.code = errorcode_t::posted;
  return status;
}

// ---------------------------------------------------------------------------
// Receive path.
// ---------------------------------------------------------------------------
status_t post_receive(const resolved_t& r, const post_args_t& args,
                      const trace::span_t& post_span) {
  // A receive that names its peer (rank not wildcarded by the policy) fails
  // immediately when that peer is already dead: no message from it can ever
  // arrive, and a queued entry would only be purged right back out.
  const bool names_peer =
      args.matching_policy == matching_policy_t::rank_tag ||
      args.matching_policy == matching_policy_t::rank_only;
  if (names_peer && r.device->net().is_peer_down(args.rank))
    return make_fatal_status(r.runtime, errorcode_t::fatal_peer_down,
                             args.rank, args.tag, args.local_buffer,
                             payload_size(args), args.user_context);

  auto* entry = new recv_entry_t;
  entry->buffer = args.local_buffer;
  entry->size = payload_size(args);
  entry->comp = args.local_comp.p;
  entry->user_context = args.user_context;
  entry->rank = args.rank;
  entry->tag = args.tag;
  if (args.buffers != nullptr) entry->list = args.buffers->list;
  entry->span = trace::begin_at(post_span, trace::kind_t::op_recv, args.rank,
                                args.tag, entry->size);

  const auto key =
      r.engine->make_key(args.rank, args.tag, args.matching_policy);
  std::shared_ptr<op_record_t> record;
  if (wants_record(args)) {
    record = make_record(r, args, op_kind_t::recv);
    record->engine = r.engine;
    record->key = key;
    record->entry = entry;
    entry->record = record;
  }
  r.runtime->counters().add(counter_id_t::recv_posted);
  void* matched =
      r.engine->insert(key, entry, matching_engine_impl_t::type_t::recv);
  if (matched == nullptr) {
    if (names_peer && r.device->net().is_peer_down(args.rank)) {
      // The peer died while we were inserting; the purge pass may have swept
      // the engine before our entry landed. Pull it back out. Losing the
      // remove race means the purge (or a real match racing the kill) now
      // owns the entry and will deliver its completion.
      if (r.engine->remove(key, entry)) {
        if (record) {
          std::lock_guard<util::spinlock_t> guard(record->lock);
          record->engine = nullptr;
          record->entry = nullptr;
          record->state.store(op_record_t::st_terminal,
                              std::memory_order_release);
        }
        const status_t status = make_fatal_status(
            r.runtime, errorcode_t::fatal_peer_down, args.rank, args.tag,
            entry->buffer, entry->size, args.user_context);
        trace::end_op(entry->span, trace::kind_t::op_recv,
                      trace::hist_t::post_recv,
                      static_cast<uint8_t>(errorcode_t::fatal_peer_down),
                      args.rank, args.tag, entry->size);
        delete entry;
        return status;
      }
    }
    if (record) {
      r.runtime->track_op(record);
      if (args.out_op != nullptr) args.out_op->p = record;
    }
    status_t status;
    status.error.code = errorcode_t::posted;
    return status;
  }
  r.runtime->counters().add(counter_id_t::recv_matched);

  // (9)/(10): the posting procedure itself found the match.
  auto* packet = static_cast<packet_t*>(matched);
  trace::instant(trace::kind_t::match, entry->span.id, packet->peer_rank,
                 args.tag, packet->payload_size);
  const auto* header =
      reinterpret_cast<const msg_header_t*>(packet->payload());
  const char* data = packet->payload() + sizeof(msg_header_t);
  if (header->kind == msg_header_t::eager_send) {
    // Immediate completion: return `done` without signaling the comp, unless
    // the user forbade the done shortcut.
    const bool force_signal = !args.allow_done && entry->comp != nullptr;
    status_t status;
    complete_eager_recv(r.runtime, entry, packet->peer_rank, header->tag, data,
                        packet->payload_size, &status, force_signal);
    if (force_signal) status.error.code = errorcode_t::posted;
    packet->pool->put(packet);
    return status;
  }
  assert(header->kind == msg_header_t::rts);
  const int peer_rank = packet->peer_rank;
  rts_payload_t rts;
  std::memcpy(&rts, data, sizeof(rts));
  rdv_recv_t state;
  state.buffer = entry->buffer;
  state.size = entry->size;
  state.comp = entry->comp;
  state.user_context = entry->user_context;
  state.list = std::move(entry->list);
  state.record = std::move(entry->record);
  state.span = entry->span;
  if (state.record) {
    std::lock_guard<util::spinlock_t> guard(state.record->lock);
    state.record->engine = nullptr;
    state.record->entry = nullptr;
  }
  delete entry;
  if (record) {
    // The receive continues as a rendezvous: the record stays live (re-homed
    // by start_rendezvous_recv) and cancel/deadline still apply.
    r.runtime->track_op(record);
    if (args.out_op != nullptr) args.out_op->p = record;
  }
  start_rendezvous_recv(r.runtime, r.device, peer_rank, header->tag,
                        rts.rdv_id, rts.size, std::move(state));
  packet->pool->put(packet);
  status_t status;
  status.error.code = errorcode_t::posted;
  return status;
}

// ---------------------------------------------------------------------------
// Dispatch: Table-1 argument decoding. `post_span` is the (possibly null)
// span covering the user's post_* call; the accepted-op paths open their
// op-lifecycle span at its begin timestamp.
// ---------------------------------------------------------------------------
status_t post_comm_dispatch(const post_args_t& args,
                            const trace::span_t& post_span) {
  const resolved_t r = resolve(args);

  if (args.rank < 0 || args.rank >= r.runtime->nranks())
    throw fatal_error_t("post_comm: rank out of range");
  // The handle starts invalid; the paths that park cancellable state fill it.
  if (args.out_op != nullptr) args.out_op->p.reset();

  status_t status;
  const bool has_remote_buffer = args.remote_buffer.is_valid();
  const bool has_remote_comp = args.remote_comp != rcomp_null;

  if (args.direction == direction_t::out) {
    if (has_remote_buffer) {
      // RMA put, with or without signal. A signaling put delivers a remote
      // completion, so it must not overtake a buffered batch (matching-order
      // rule); a plain put carries no completion the peer can observe
      // against the batch, so it may pass.
      if (args.buffers != nullptr)
        throw fatal_error_t("buffer lists are not supported for put/get");
      bool blocked = false;
      if (has_remote_comp && r.device->has_armed_aggregation()) {
        // Per-peer obligation: the signal must not pass any buffered batch
        // for the peer, whichever shard buffers it (shard -1 = all).
        const errorcode_t flushed =
            r.device->flush_peer_for_ordering(args.rank, -1);
        if (error_t{flushed}.is_retry()) {
          blocked = true;
          status = retry_status(flushed);
        }
      }
      if (!blocked) {
        auto* ctx = new op_ctx_t;
        ctx->kind = ctx_kind_t::rma_put;
        ctx->comp = args.local_comp.p;
        ctx->user_context = args.user_context;
        ctx->buffer = args.local_buffer;
        ctx->size = args.size;
        ctx->rank = args.rank;
        ctx->tag = args.tag;
        const uint32_t imm =
            has_remote_comp ? encode_signal_imm(args.remote_comp, args.tag)
                            : 0;
        net::post_result_t result;
        try {
          result = r.device->net(r.shard).post_write(
              args.rank, args.local_buffer, args.size, args.remote_buffer.id,
              args.remote_offset, has_remote_comp, imm, ctx);
        } catch (...) {
          // Posting-time fatal (bad MR / bounds): the op context never
          // reached the network, so it is still ours to free.
          delete ctx;
          throw;
        }
        if (result != net::post_result_t::ok) {
          delete ctx;
          status = failed_post_status(r, args, result);
        } else {
          r.runtime->counters().add(counter_id_t::rma_put);
          status.error.code = errorcode_t::posted;
        }
      }
    } else {
      // Send (no remote comp) or active message (remote comp given).
      const uint8_t eager_kind = has_remote_comp ? msg_header_t::eager_am
                                                 : msg_header_t::eager_send;
      const uint8_t rdv_kind =
          has_remote_comp ? msg_header_t::rts_am : msg_header_t::rts;
      const std::size_t size = payload_size(args);
      // Eager-message coalescing: small single-buffer sends/AMs append into
      // the peer's aggregation slot instead of going out alone. The
      // single-poster bypass skips runtime-default coalescing while only one
      // thread posts to this device — buffering cannot raise a lone poster's
      // rate, and the flush-age wait only adds latency (the 1-thread fig3
      // regression). Explicit per-post aggregation is never bypassed.
      const bool agg_on = args.aggregation >= 0
                              ? args.aggregation == 1
                              : r.device->aggregation_default();
      if (agg_on && !args.from_packet && args.buffers == nullptr &&
          size <= r.device->agg_eager_max() &&
          !r.device->aggregation_bypass(args.aggregation)) {
        status =
            r.device->agg_append(args, eager_kind, r.pool, r.engine, post_span);
      } else {
        // Matching-order rule: nothing may overtake a buffered batch on this
        // key's shard (earlier same-key traffic can only be buffered there).
        // A retry here bounces this post too; peer_down lets the normal path
        // below report the fatal itself (the slot was aborted).
        bool blocked = false;
        if (r.device->has_armed_aggregation()) {
          const errorcode_t flushed = r.device->flush_peer_for_ordering(
              args.rank, static_cast<int>(r.shard));
          if (error_t{flushed}.is_retry()) {
            blocked = true;
            status = retry_status(flushed);
          }
        }
        if (!blocked) {
          if (size <= r.runtime->eager_threshold())
            status = post_eager_out(r, args, eager_kind, /*via_backlog=*/false,
                                    post_span);
          else
            status = post_rendezvous_out(r, args, rdv_kind, post_span);
        }
      }
    }
  } else {
    if (has_remote_buffer) {
      // RMA get; with a remote comp this is the read-with-notification
      // extension (see DESIGN.md). Like a signaling put, a notifying get
      // must not overtake a buffered batch.
      if (args.buffers != nullptr)
        throw fatal_error_t("buffer lists are not supported for put/get");
      bool blocked = false;
      if (has_remote_comp && r.device->has_armed_aggregation()) {
        const errorcode_t flushed =
            r.device->flush_peer_for_ordering(args.rank, -1);
        if (error_t{flushed}.is_retry()) {
          blocked = true;
          status = retry_status(flushed);
        }
      }
      if (!blocked) {
        auto* ctx = new op_ctx_t;
        ctx->kind = ctx_kind_t::rma_get;
        ctx->comp = args.local_comp.p;
        ctx->user_context = args.user_context;
        ctx->buffer = args.local_buffer;
        ctx->size = args.size;
        ctx->rank = args.rank;
        ctx->tag = args.tag;
        const uint32_t imm =
            has_remote_comp ? encode_signal_imm(args.remote_comp, args.tag)
                            : 0;
        net::post_result_t result;
        try {
          result = r.device->net(r.shard).post_read(
              args.rank, args.local_buffer, args.size, args.remote_buffer.id,
              args.remote_offset, has_remote_comp, imm, ctx);
        } catch (...) {
          delete ctx;
          throw;
        }
        if (result != net::post_result_t::ok) {
          delete ctx;
          status = failed_post_status(r, args, result);
        } else {
          r.runtime->counters().add(counter_id_t::rma_get);
          status.error.code = errorcode_t::posted;
        }
      }
    } else {
      if (has_remote_comp)
        throw fatal_error_t(
            "invalid post_comm: IN direction with a remote completion but no "
            "remote buffer (Table 1)");
      return post_receive(r, args, post_span);
    }
  }

  // allow_retry=false: the user cannot handle retry; queue on the backlog
  // and report the *_backlog variant (Sec. 4.4). For eager-size payloads the
  // backlog entry owns a staged copy, so `done_backlog` honestly means "your
  // buffer is reusable"; larger (rendezvous/RMA) payloads keep referencing
  // the user buffer until the completion object is signaled.
  if (status.error.is_retry()) {
    switch (status.error.code) {
      case errorcode_t::retry_lock:
        r.runtime->counters().add(counter_id_t::retry_lock);
        break;
      case errorcode_t::retry_nopacket:
        r.runtime->counters().add(counter_id_t::retry_nopacket);
        break;
      case errorcode_t::retry_nomem:
        r.runtime->counters().add(counter_id_t::retry_nomem);
        break;
      default:
        break;
    }
  }
  if (status.error.is_retry() && !args.allow_retry) {
    struct backlog_capture_t {
      post_args_t args;
      buffers_t buffers;          // deep copy of a buffer list
      std::vector<char> staged;   // deep copy of an eager payload
    };
    auto capture = std::make_shared<backlog_capture_t>();
    capture->args = args;
    capture->args.allow_retry = true;
    // Pin the resolved handles: the backlog may be retired by a progress
    // engine thread with no sim binding, where default-runtime resolution
    // (get_g_runtime) would fail.
    capture->args.runtime.p = r.runtime;
    capture->args.device.p = r.device;
    capture->args.matching_engine.p = r.engine;
    capture->args.packet_pool.p = r.pool;
    // Guarantee the promised signal: a backlogged op must complete through
    // its completion object, never through a lost `done` return value.
    capture->args.allow_done = false;
    const bool eager_out = args.direction == direction_t::out &&
                           !has_remote_buffer &&
                           payload_size(args) <= r.runtime->eager_threshold();
    if (eager_out) {
      capture->staged.resize(payload_size(args));
      gather(args, capture->staged.data());
      capture->args.local_buffer = capture->staged.data();
      capture->args.size = capture->staged.size();
      capture->args.buffers = nullptr;
    } else if (args.buffers != nullptr) {
      capture->buffers = *args.buffers;
      capture->args.buffers = &capture->buffers;
    }
    // Tracked backlogged op: the record's live->executing CAS arbitrates
    // between the retry loop and cancel/timeout/purge. The resubmission must
    // not create a second record for the same logical op.
    std::shared_ptr<op_record_t> record;
    if (wants_record(args)) record = make_record(r, args, op_kind_t::backlog);
    capture->args.deadline_us = 0;
    capture->args.out_op = nullptr;
    r.runtime->counters().add(counter_id_t::backlog_pushed);
    runtime_impl_t* runtime = r.runtime;
    r.device->backlog().push([capture, runtime,
                              record](backlog_action_t action) {
      // A backlogged operation may not throw out of the progress engine and
      // may not vanish: a fatal resubmission failure (or a cancel) is
      // delivered through the completion object the user was promised.
      if (record) {
        uint8_t expected = op_record_t::st_live;
        if (!record->state.compare_exchange_strong(
                expected, op_record_t::st_executing,
                std::memory_order_acq_rel)) {
          // Canceled/timed out/purged while queued: the winner of that CAS
          // already delivered the completion; just retire the entry.
          status_t gone;
          gone.error.code = errorcode_t::done;
          return gone;
        }
      }
      if (action == backlog_action_t::cancel) {
        if (record)
          record->state.store(op_record_t::st_terminal,
                              std::memory_order_release);
        const status_t failed = make_fatal_status(
            runtime, errorcode_t::fatal_canceled, capture->args.rank,
            capture->args.tag, capture->args.local_buffer,
            payload_size(capture->args), capture->args.user_context);
        signal_comp(capture->args.local_comp.p, failed);
        return failed;
      }
      status_t st;
      try {
        st = post_comm_impl(capture->args);
      } catch (const std::exception&) {
        st = make_fatal_status(runtime, errorcode_t::fatal,
                               capture->args.rank, capture->args.tag,
                               capture->args.local_buffer,
                               payload_size(capture->args),
                               capture->args.user_context);
      }
      if (record)
        record->state.store(st.error.is_retry() ? op_record_t::st_live
                                                : op_record_t::st_terminal,
                            std::memory_order_release);
      // Fatal statuses are *returned* by the posting paths, never signaled
      // there; the backlogged op promised completion through the comp.
      if (st.error.is_fatal()) signal_comp(capture->args.local_comp.p, st);
      return st;
    });
    if (record) {
      r.runtime->track_op(record);
      if (args.out_op != nullptr) args.out_op->p = record;
    }
    // Wake a sleeping progress thread: the backlog retry is the only way
    // this operation ever completes.
    r.device->ring_doorbell();
    status.error.code = args.local_comp.p != nullptr
                            ? errorcode_t::posted_backlog
                            : errorcode_t::done_backlog;
  }
  return status;
}

}  // namespace

status_t post_comm_impl(const post_args_t& args) {
  if (!trace::on()) return post_comm_dispatch(args, trace::span_t{});
  const trace::span_t post_span = trace::begin(
      trace::kind_t::post, args.rank, args.tag, payload_size(args));
  status_t status;
  try {
    status = post_comm_dispatch(args, post_span);
  } catch (...) {
    trace::end(post_span, trace::kind_t::post,
               static_cast<uint8_t>(errorcode_t::fatal), args.rank, args.tag,
               payload_size(args));
    throw;
  }
  trace::end(post_span, trace::kind_t::post,
             static_cast<uint8_t>(status.error.code), args.rank, args.tag,
             payload_size(args));
  return status;
}

}  // namespace lci::detail
