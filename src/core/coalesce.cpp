// Eager-message coalescing (docs/INTERNALS.md "Message coalescing").
//
// Send side: small eager sends and active messages append into a per-(device,
// peer) aggregation slot and travel as one eager_batch wire message. A slot
// flushes when the next append would overflow aggregation_max_bytes /
// aggregation_max_msgs, when progress() finds it older than
// aggregation_flush_us, on an explicit flush(), or — the matching-order rule —
// whenever a non-aggregated message to the same peer is about to be posted
// (post.cpp / send_rtr call flush_peer_for_ordering so no later message can
// overtake a buffered one).
//
// Receive side: handle_batch_recv walks the sub-messages of one received
// packet and runs the regular per-message logic on payload slices: matched
// sends complete in place, unmatched ones are re-staged as standalone
// eager_send packets so the retained-packet flow (matching-engine insert,
// dead-peer purge) owns them unchanged, and active messages are delivered
// from the shared packet under a reference count in packet-delivery mode.
//
// Completion semantics: a buffered sub-op that owes nothing (allow_done and
// untracked) completes `done` at copy time exactly like a bcopy send. One
// that owes a signal (allow_done=false) or is tracked (.deadline/.op_handle)
// parks an agg_pending_t; the flush resolves it — done on a successful post,
// fatal_peer_down on a dead peer, fatal_canceled on a drain abort — and for
// tracked entries the record-state CAS arbitrates against cancel()/the
// deadline sweep, so every sub-op completes exactly once.
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <new>

#include "core/runtime_impl.hpp"
#include "util/log.hpp"

namespace lci::detail {

using counter_id_t = detail::counter_id_t;

namespace {

status_t agg_status(errorcode_t code) {
  status_t status;
  status.error.code = code;
  return status;
}

// Delivers the deferred completions of detached pending entries. `code` is
// done after a successful post, or the fatal code of the abort path. Returns
// how many completions were actually delivered here (entries whose record CAS
// lost were already completed by cancel()/timeout — their data may still
// travel, but the completion belongs to the winner).
std::size_t resolve_agg_pending(runtime_impl_t* runtime, int rank,
                                std::vector<agg_pending_t>& entries,
                                errorcode_t code) {
  std::size_t delivered = 0;
  for (agg_pending_t& p : entries) {
    if (p.record) {
      uint8_t expected = op_record_t::st_live;
      if (!p.record->state.compare_exchange_strong(
              expected, op_record_t::st_terminal, std::memory_order_acq_rel)) {
        // Cancel/timeout won the completion; the span handle still lives
        // here, so end it with the code the winner published.
        trace::end_op(p.span, trace::kind_t::op_batch, trace::hist_t::post_batch,
                      p.record->terminal_code.load(std::memory_order_relaxed),
                      rank, p.tag, p.size);
        continue;
      }
    }
    const uint8_t err =
        code == errorcode_t::done ? 0 : static_cast<uint8_t>(code);
    trace::end_op(p.span, trace::kind_t::op_batch, trace::hist_t::post_batch,
                  err, rank, p.tag, p.size);
    if (code == errorcode_t::done) {
      status_t status;
      status.error.code = errorcode_t::done;
      status.rank = rank;
      status.tag = p.tag;
      status.buffer = buffer_t{p.buffer, p.size};
      status.user_context = p.user_context;
      signal_comp(p.comp, status);
    } else {
      signal_comp(p.comp, make_fatal_status(runtime, code, rank, p.tag,
                                            p.buffer, p.size, p.user_context));
    }
    ++delivered;
  }
  entries.clear();
  return delivered;
}

// Overflow packet for re-staging an unmatched batch sub-message when the pool
// is dry. Carries the real pool pointer so the eventual put() routes into the
// heap_orphan branch and frees it.
packet_t* alloc_orphan_packet(packet_pool_impl_t* pool, std::size_t bytes) {
  void* raw = ::operator new(sizeof(packet_t) + bytes,
                             std::align_val_t{util::cache_line_size});
  auto* packet = new (raw) packet_t;
  packet->pool = pool;
  packet->heap_orphan = 1;
  return packet;
}

}  // namespace

void device_impl_t::detach_slot_locked(agg_slot_t& slot,
                                       std::vector<agg_pending_t>& out,
                                       errorcode_t code) {
  if (slot.packet == nullptr) return;
  slot.packet->pool->put(slot.packet);
  slot.packet = nullptr;
  for (agg_pending_t& p : slot.pending) out.push_back(std::move(p));
  slot.pending.clear();
  trace::end(slot.span, trace::kind_t::batch_slot,
             code == errorcode_t::done ? 0 : static_cast<uint8_t>(code),
             /*rank=*/-1, /*tag=*/slot.msgs, /*size=*/slot.bytes);
  slot.span = trace::span_t{};
  slot.bytes = 0;
  slot.msgs = 0;
  slot.armed_ns.store(0, std::memory_order_release);
  armed_slots_.fetch_sub(1, std::memory_order_acq_rel);
}

errorcode_t device_impl_t::post_batch_locked(
    agg_slot_t& slot, net::device_t& net, int rank,
    std::vector<agg_pending_t>& resolved) {
  if (slot.packet == nullptr) return errorcode_t::done;
  msg_header_t header;
  header.kind = msg_header_t::eager_batch;
  std::memcpy(slot.packet->payload(), &header, sizeof(header));
  const std::size_t wire_size = sizeof(msg_header_t) + slot.bytes;
  const auto result =
      net.post_send(rank, slot.packet->payload(), wire_size, 0, nullptr);
  const error_t err = map_net_result(result);
  if (err.is_retry()) return err.code;  // slot stays armed
  // ok or peer_down: the slot empties either way (the simulated wire copies
  // synchronously, so the packet is reusable as soon as the post succeeds).
  detach_slot_locked(slot, resolved, err.code);
  if (err.is_done()) runtime_->counters().add(counter_id_t::batches_flushed);
  return err.code;
}

status_t device_impl_t::agg_append(const post_args_t& args, uint8_t kind,
                                   packet_pool_impl_t* pool,
                                   matching_engine_impl_t* engine,
                                   const trace::span_t& post_span) {
  const int rank = args.rank;
  const std::size_t size = args.size;
  const std::size_t entry_bytes = batch_entry_bytes(size);
  std::vector<agg_pending_t> resolved;
  errorcode_t resolved_code = errorcode_t::done;
  std::shared_ptr<op_record_t> record;
  status_t status = agg_status(errorcode_t::posted);
  // The sub-message coalesces into the slot of the shard its key routes to,
  // and the batch posts on that shard's endpoint — the same endpoint any
  // bypass traffic on this key would use, so the matching-order flush keeps
  // per-key FIFO intact shard by shard.
  const std::size_t shard = route_shard(rank, args.tag);
  net::device_t& wire = net(shard);
  agg_slot_t& slot = agg_slot(shard, rank);
  {
    std::lock_guard<util::spinlock_t> guard(slot.lock);
    if (wire.is_peer_down(rank)) {
      detach_slot_locked(slot, resolved, errorcode_t::fatal_peer_down);
      resolved_code = errorcode_t::fatal_peer_down;
      status = make_fatal_status(runtime_, errorcode_t::fatal_peer_down, rank,
                                 args.tag, args.local_buffer, size,
                                 args.user_context);
    } else {
      // Flush first if this sub-message would not fit the armed batch.
      if (slot.packet != nullptr &&
          (slot.bytes + entry_bytes > agg_max_bytes_ ||
           slot.msgs >= agg_max_msgs_)) {
        const errorcode_t code = post_batch_locked(slot, wire, rank, resolved);
        if (error_t{code}.is_retry()) {
          // The batch ahead of us cannot go out: bounce this post too, or
          // it would be appended behind back-pressure that may persist.
          status = agg_status(code);
        } else if (code == errorcode_t::fatal_peer_down) {
          resolved_code = code;
          status = make_fatal_status(runtime_, code, rank, args.tag,
                                     args.local_buffer, size,
                                     args.user_context);
        }
      }
      if (status.error.code == errorcode_t::posted) {
        if (slot.packet == nullptr) {
          packet_t* packet = pool->get();
          if (packet == nullptr) {
            status = agg_status(errorcode_t::retry_nopacket);
          } else {
            slot.packet = packet;
            slot.bytes = 0;
            slot.msgs = 0;
            slot.span = trace::begin(trace::kind_t::batch_slot, rank);
            slot.armed_ns.store(now_ns(), std::memory_order_release);
            armed_slots_.fetch_add(1, std::memory_order_acq_rel);
          }
        }
        if (slot.packet != nullptr) {
          char* base =
              slot.packet->payload() + sizeof(msg_header_t) + slot.bytes;
          batch_sub_header_t sub;
          sub.kind = kind;
          sub.policy = static_cast<uint8_t>(args.matching_policy);
          sub.engine_id = engine->id();
          sub.size = static_cast<uint32_t>(size);
          sub.tag = args.tag;
          sub.rcomp = args.remote_comp;
          std::memcpy(base, &sub, sizeof(sub));
          std::memcpy(base + sizeof(sub), args.local_buffer, size);
          slot.bytes += static_cast<uint32_t>(entry_bytes);
          slot.msgs += 1;
          runtime_->counters().add(counter_id_t::send_coalesced);
          // Op-lifecycle span of this coalesced sub-op: opened at the post
          // call's timestamp, closed when the flush resolves it (parked) or
          // right here (done-at-copy, nothing owed).
          const trace::span_t op_span = trace::begin_at(
              post_span, trace::kind_t::op_batch, rank, args.tag, size);
          trace::instant(trace::kind_t::coalesce, op_span.id, rank, args.tag,
                         size);

          const bool tracked = args.deadline_us != 0 || args.out_op != nullptr;
          const bool park =
              tracked || (!args.allow_done && args.local_comp.p != nullptr);
          if (park) {
            agg_pending_t p;
            p.comp = args.local_comp.p;
            p.buffer = args.local_buffer;
            p.size = size;
            p.tag = args.tag;
            p.user_context = args.user_context;
            if (tracked) {
              record = std::make_shared<op_record_t>();
              record->kind = op_kind_t::coalesced;
              record->runtime = runtime_;
              record->device = this;
              record->comp = args.local_comp.p;
              record->user_context = args.user_context;
              record->buffer = args.local_buffer;
              record->size = size;
              record->rank = rank;
              record->tag = args.tag;
              if (args.deadline_us != 0)
                record->deadline_ns = now_ns() + args.deadline_us * 1000;
              p.record = record;
            }
            p.span = op_span;
            slot.pending.push_back(std::move(p));
            status = agg_status(errorcode_t::posted);
          } else {
            // Copy made, nothing owed: complete `done` exactly like a bcopy
            // send (the user's buffer is reusable).
            trace::end_op(op_span, trace::kind_t::op_batch,
                          trace::hist_t::post_batch, 0, rank, args.tag, size);
            status.error.code = errorcode_t::done;
            status.rank = rank;
            status.tag = args.tag;
            status.buffer = buffer_t{args.local_buffer, size};
            status.user_context = args.user_context;
          }
          // Post immediately when this append filled the batch.
          if (slot.bytes + sizeof(batch_sub_header_t) > agg_max_bytes_ ||
              slot.msgs >= agg_max_msgs_) {
            const errorcode_t code =
                post_batch_locked(slot, wire, rank, resolved);
            // A retry here leaves the slot armed for a later flush; it does
            // not fail the append (the copy was taken). peer_down resolves
            // the detached entries below — including, possibly, this one.
            if (code == errorcode_t::fatal_peer_down)
              resolved_code = code;
          }
        }
      }
    }
  }
  if (status.error.is_fatal()) {
    // Failed at posting time, never joined a batch: emit a zero-length op
    // span pair so fatal posts still show up (errored) in a trace.
    const trace::span_t op = trace::begin_at(
        post_span, trace::kind_t::op_batch, rank, args.tag, size);
    trace::end_op(op, trace::kind_t::op_batch, trace::hist_t::post_batch,
                  static_cast<uint8_t>(status.error.code), rank, args.tag,
                  size);
  }
  if (record) {
    runtime_->track_op(record);
    if (args.out_op != nullptr) args.out_op->p = record;
  }
  if (!resolved.empty())
    resolve_agg_pending(runtime_, rank, resolved, resolved_code);
  return status;
}

std::size_t device_impl_t::flush_aggregation(int rank, uint64_t older_than_ns) {
  if (!has_armed_aggregation()) return 0;
  const int nranks = runtime_->nranks();
  const int begin = rank >= 0 ? rank : 0;
  const int end = rank >= 0 ? rank + 1 : nranks;
  std::size_t posted = 0;
  std::vector<agg_pending_t> resolved;
  for (std::size_t shard = 0; shard < nshards(); ++shard) {
    for (int peer = begin; peer < end; ++peer) {
      agg_slot_t& slot = agg_slot(shard, peer);
      const uint64_t armed = slot.armed_ns.load(std::memory_order_acquire);
      if (armed == 0) continue;
      if (older_than_ns != 0 && armed > older_than_ns) continue;
      errorcode_t code;
      bool had;
      {
        std::lock_guard<util::spinlock_t> guard(slot.lock);
        had = slot.packet != nullptr;
        code = post_batch_locked(slot, net(shard), peer, resolved);
      }
      if (had && code == errorcode_t::done) ++posted;
      if (!resolved.empty())
        resolve_agg_pending(runtime_, peer, resolved, code);
    }
  }
  return posted;
}

errorcode_t device_impl_t::flush_peer_for_ordering(int rank, int shard) {
  const std::size_t begin = shard >= 0 ? static_cast<std::size_t>(shard) : 0;
  const std::size_t end =
      shard >= 0 ? static_cast<std::size_t>(shard) + 1 : nshards();
  errorcode_t worst = errorcode_t::done;
  for (std::size_t s = begin; s < end; ++s) {
    agg_slot_t& slot = agg_slot(s, rank);
    if (slot.armed_ns.load(std::memory_order_acquire) == 0) continue;
    std::vector<agg_pending_t> resolved;
    errorcode_t code;
    bool had;
    {
      std::lock_guard<util::spinlock_t> guard(slot.lock);
      had = slot.packet != nullptr;
      code = post_batch_locked(slot, net(s), rank, resolved);
    }
    if (!had) continue;
    if (code == errorcode_t::done)
      runtime_->counters().add(counter_id_t::batch_flush_ordering);
    if (!resolved.empty()) resolve_agg_pending(runtime_, rank, resolved, code);
    // A retry anywhere must bounce the caller's message (it would overtake
    // the stuck batch); a dead peer dominates everything else.
    if (error_t{code}.is_retry() && worst != errorcode_t::fatal_peer_down)
      worst = code;
    if (code == errorcode_t::fatal_peer_down) worst = code;
  }
  return worst;
}

std::size_t device_impl_t::abort_aggregation(int rank, errorcode_t code) {
  if (!has_armed_aggregation()) return 0;
  const int nranks = runtime_->nranks();
  const int begin = rank >= 0 ? rank : 0;
  const int end = rank >= 0 ? rank + 1 : nranks;
  std::size_t completed = 0;
  std::vector<agg_pending_t> detached;
  for (std::size_t shard = 0; shard < nshards(); ++shard) {
    for (int peer = begin; peer < end; ++peer) {
      agg_slot_t& slot = agg_slot(shard, peer);
      if (slot.armed_ns.load(std::memory_order_acquire) == 0) continue;
      {
        std::lock_guard<util::spinlock_t> guard(slot.lock);
        detach_slot_locked(slot, detached, code);
      }
      completed += resolve_agg_pending(runtime_, peer, detached, code);
    }
  }
  return completed;
}

// ---------------------------------------------------------------------------
// Receive side: unpack one eager_batch.
// ---------------------------------------------------------------------------
void device_impl_t::handle_batch_recv(const net::cqe_t& cqe) {
  auto* packet = static_cast<packet_t*>(cqe.user_context);
  const char* payload =
      static_cast<const char*>(cqe.buffer) + sizeof(msg_header_t);
  const std::size_t payload_bytes = cqe.length - sizeof(msg_header_t);
  runtime_->counters().add(counter_id_t::recv_batches);
  const bool packets_mode = runtime_->attr().am_deliver_packets;

  // Packet-delivery mode shares this one packet between every AM consumer in
  // the batch: count them first so release_am_packet returns the packet to
  // its pool exactly when the last reference (including the walker's own)
  // drops.
  uint32_t refs = 1;
  if (packets_mode) {
    std::size_t off = 0;
    while (off + sizeof(batch_sub_header_t) <= payload_bytes) {
      batch_sub_header_t sub;
      std::memcpy(&sub, payload + off, sizeof(sub));
      if (sub.kind == msg_header_t::eager_am) ++refs;
      off += batch_entry_bytes(sub.size);
    }
  }
  packet->refs.store(refs, std::memory_order_relaxed);

  std::size_t off = 0;
  while (off + sizeof(batch_sub_header_t) <= payload_bytes) {
    batch_sub_header_t sub;
    std::memcpy(&sub, payload + off, sizeof(sub));
    char* data =
        const_cast<char*>(payload) + off + sizeof(batch_sub_header_t);
    const std::size_t data_size = sub.size;
    off += batch_entry_bytes(sub.size);

    if (sub.kind == msg_header_t::eager_send) {
      matching_engine_impl_t* engine = runtime_->lookup_engine(sub.engine_id);
      if (engine == nullptr)
        throw fatal_error_t("batch sub-message names an unknown engine");
      const auto policy = static_cast<matching_policy_t>(sub.policy);
      const auto key = engine->make_key(cqe.peer_rank, sub.tag, policy);
      if (void* matched = engine->try_match_recv(key)) {
        runtime_->counters().add(counter_id_t::recv_matched);
        trace::instant(trace::kind_t::match,
                       static_cast<recv_entry_t*>(matched)->span.id,
                       cqe.peer_rank, sub.tag, data_size);
        complete_eager_recv(runtime_, static_cast<recv_entry_t*>(matched),
                            cqe.peer_rank, sub.tag, data, data_size, nullptr,
                            /*signal=*/true);
        continue;
      }
      // Unexpected: re-stage as a standalone eager_send packet so the
      // retained-packet flow (match on a later post, dead-peer purge) owns
      // it exactly as if it had arrived uncoalesced.
      packet_t* standalone = runtime_->default_pool().get();
      if (standalone == nullptr)
        standalone = alloc_orphan_packet(&runtime_->default_pool(),
                                         sizeof(msg_header_t) + data_size);
      msg_header_t h;
      h.kind = msg_header_t::eager_send;
      h.policy = sub.policy;
      h.engine_id = sub.engine_id;
      h.tag = sub.tag;
      h.rcomp = sub.rcomp;
      std::memcpy(standalone->payload(), &h, sizeof(h));
      std::memcpy(standalone->payload() + sizeof(h), data, data_size);
      standalone->peer_rank = cqe.peer_rank;
      standalone->payload_size = static_cast<uint32_t>(data_size);
      void* matched = engine->insert(key, standalone,
                                     matching_engine_impl_t::type_t::send);
      if (matched != nullptr) {
        // A receive landed between the try_match and the insert.
        runtime_->counters().add(counter_id_t::recv_matched);
        trace::instant(trace::kind_t::match,
                       static_cast<recv_entry_t*>(matched)->span.id,
                       cqe.peer_rank, sub.tag, data_size);
        complete_eager_recv(runtime_, static_cast<recv_entry_t*>(matched),
                            cqe.peer_rank, sub.tag,
                            standalone->payload() + sizeof(h), data_size,
                            nullptr, /*signal=*/true);
        standalone->pool->put(standalone);
      }
      continue;
    }

    // eager_am sub-message.
    comp_impl_t* comp = runtime_->lookup_rcomp(sub.rcomp);
    if (comp == nullptr)
      throw fatal_error_t("batch active message names an unknown rcomp");
    runtime_->counters().add(counter_id_t::am_delivered);
    status_t status;
    status.error.code = errorcode_t::done;
    status.rank = cqe.peer_rank;
    status.tag = sub.tag;
    if (packets_mode) {
      // Deliver the slice in place; the ref record written over the parsed
      // sub-header lets release_am_packet find the shared owner.
      am_packet_ref_t ref;
      ref.owner = packet;
      ref.magic = am_packet_magic;
      std::memcpy(data - sizeof(ref), &ref, sizeof(ref));
      status.buffer = buffer_t{data, data_size};
      comp->signal(status);
    } else {
      void* buf = std::malloc(data_size ? data_size : 1);
      std::memcpy(buf, data, data_size);
      status.buffer = buffer_t{buf, data_size};
      comp->signal(status);
    }
  }

  if (packet->refs.fetch_sub(1, std::memory_order_acq_rel) == 1)
    packet->pool->put(packet);
}

}  // namespace lci::detail

namespace lci {

std::size_t flush(device_t device, int rank, runtime_t runtime) {
  detail::runtime_impl_t* rt = detail::resolve_runtime(runtime);
  detail::device_impl_t* dev =
      device.is_valid() ? device.p : &rt->default_device();
  if (rank >= rt->nranks()) throw fatal_error_t("flush: rank out of range");
  // Retry internally until every targeted batch is on the wire or has failed
  // fatally: a transient retry (send-lock miss, full wire mailbox) leaves a
  // slot armed, and returning then would silently make "flushed" mean "maybe
  // flushed — call me again". progress() between attempts drains local
  // completions so a full CQ or dry pool can clear; a dead peer aborts its
  // slots inside the flush (fatal_peer_down), so the loop always terminates
  // once the fabric either accepts the message or declares the peer dead.
  std::size_t posted = dev->flush_aggregation(rank);
  while (dev->has_armed_aggregation(rank)) {
    dev->progress();
    posted += dev->flush_aggregation(rank);
  }
  return posted;
}

}  // namespace lci
