// LCI — the Lightweight Communication Interface (public API).
//
// Reproduction of the interface described in Sec. 3 of "LCI: a Lightweight
// Communication Interface for Efficient Asynchronous Multithreaded
// Communication" (Yan & Snir, SC 2025):
//
//  * explicit resources (runtime, device, matching engine, packet pool,
//    completion objects) allocated and freed by the user,
//  * a generic `post_comm` whose *direction* / *remote buffer* / *remote
//    completion* optional arguments select among send, receive, active
//    message, RMA put/get, with or without remote notification (Table 1),
//  * derived operations post_send / post_recv / post_am / post_put /
//    post_get as syntactic sugar over post_comm,
//  * ternary completion status: done (completed immediately; the completion
//    object will NOT be signaled), posted (completion object will be
//    signaled), retry (temporary resource shortage; resubmit). Fatal errors
//    are C++ exceptions,
//  * four completion-object families: handler, completion queue,
//    synchronizer, completion graph,
//  * the Objectified Flexible Function (OFF) idiom: every operation has an
//    `_x` variant returning a functor whose setters name the optional
//    arguments in any order and whose trailing `()` executes it, e.g.
//       post_send_x(rank, buf, size, tag, comp).device(d)();
//  * explicit progress, out-of-order delivery, restricted wildcard matching
//    (matching_policy_t), memory registration, buffer lists, and basic
//    collectives (dissemination barrier, tree broadcast/reduce).
//
// Bootstrap difference from the paper: with no cluster available, ranks are
// simulated in-process (see lci::sim at the bottom and DESIGN.md). A thread
// participates in a rank by holding a *rank binding*; `sim::spawn` arranges
// bindings for the common case.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/counters.hpp"
#include "core/trace.hpp"
#include "net/net.hpp"

namespace lci {

// ---------------------------------------------------------------------------
// Basic types
// ---------------------------------------------------------------------------

using tag_t = uint32_t;

// Handle to a remote completion object, registered with register_rcomp and
// communicated to peers out of band; active messages and RMA-with-signal name
// their target-side completion object through it.
using rcomp_t = uint32_t;
inline constexpr rcomp_t rcomp_null = ~rcomp_t{0};

enum class direction_t : uint8_t { out, in };

// Matching policies (Sec. 3.3.2): the default matches by (source rank, tag);
// the restricted wildcards match by rank only or tag only — both sides must
// agree on the policy for a given message.
enum class matching_policy_t : uint8_t { rank_tag, rank_only, tag_only, none };

struct buffer_t {
  void* base = nullptr;
  std::size_t size = 0;
};

struct buffers_t {
  std::vector<buffer_t> list;
  std::size_t total_size() const {
    std::size_t n = 0;
    for (const auto& b : list) n += b.size;
    return n;
  }
};

// ---------------------------------------------------------------------------
// Error / status
// ---------------------------------------------------------------------------

enum class errorcode_t : uint8_t {
  // done category: completed immediately, completion objects not signaled
  done,
  done_backlog,  // queued on the backlog (allow_retry=false); will complete
  // posted category
  posted,
  posted_backlog,
  // retry category: resubmit later; sub-codes say which resource was short
  retry,          // generic
  retry_init,     // initial value, not yet attempted
  retry_lock,     // a try-lock wrapper missed (network contention)
  retry_nopacket, // packet pool exhausted
  retry_nomem,    // send queue / wire full
  retry_backlog,  // backlog queue busy
  // fatal category: the operation failed permanently. Fatal errors raised
  // while *posting* stay C++ exceptions (Sec. 3.2.5); these codes report
  // failures detected *after* an operation was accepted — they are returned
  // or delivered through the completion object (exactly once), never thrown
  // out of progress(). Exception: fatal_peer_down is also *returned* (not
  // thrown) by posts naming an already-dead rank, so retry loops terminate.
  fatal,            // unclassified permanent failure
  fatal_truncated,  // incoming message exceeds the posted receive buffer(s)
  fatal_peer_down,  // the named peer died (kill schedule / kill_peer hook)
  fatal_canceled,   // terminated by cancel() or drain()
  fatal_timeout,    // the operation's .deadline(us) expired
};

struct error_t {
  errorcode_t code = errorcode_t::retry_init;

  bool is_done() const {
    return code == errorcode_t::done || code == errorcode_t::done_backlog;
  }
  bool is_posted() const {
    return code == errorcode_t::posted || code == errorcode_t::posted_backlog;
  }
  bool is_fatal() const {
    return code == errorcode_t::fatal ||
           code == errorcode_t::fatal_truncated ||
           code == errorcode_t::fatal_peer_down ||
           code == errorcode_t::fatal_canceled ||
           code == errorcode_t::fatal_timeout;
  }
  bool is_retry() const { return !is_done() && !is_posted() && !is_fatal(); }
};

// Fatal errors are reported through C++ exceptions (Sec. 3.2.5).
class fatal_error_t : public std::runtime_error {
 public:
  explicit fatal_error_t(const std::string& what) : std::runtime_error(what) {}
};

// Completion descriptor: returned by posting operations (when `done`) and
// delivered to completion objects (when `posted` operations finish).
struct status_t {
  error_t error{};
  int rank = -1;
  tag_t tag = 0;
  buffer_t buffer{};
  void* user_context = nullptr;

  buffer_t get_buffer() const { return buffer; }
};

// ---------------------------------------------------------------------------
// Resource handles (non-owning; pair each alloc_* with the matching free_*).
// ---------------------------------------------------------------------------

namespace detail {
class runtime_impl_t;
class device_impl_t;
class matching_engine_impl_t;
class packet_pool_impl_t;
class comp_impl_t;
class graph_impl_t;
struct op_record_t;
}  // namespace detail

struct runtime_t {
  detail::runtime_impl_t* p = nullptr;
  bool is_valid() const { return p != nullptr; }
};
struct device_t {
  detail::device_impl_t* p = nullptr;
  bool is_valid() const { return p != nullptr; }
};
struct matching_engine_t {
  detail::matching_engine_impl_t* p = nullptr;
  bool is_valid() const { return p != nullptr; }
};
struct packet_pool_t {
  detail::packet_pool_impl_t* p = nullptr;
  bool is_valid() const { return p != nullptr; }
};
struct comp_t {
  detail::comp_impl_t* p = nullptr;
  bool is_valid() const { return p != nullptr; }
};
struct graph_t {
  detail::graph_impl_t* p = nullptr;
  bool is_valid() const { return p != nullptr; }
};

// Cancellable-operation handle. Filled in by post_*_x(...).op_handle(&op)
// when the operation parks state the runtime can still pull back (a posted
// receive waiting in the matching engine, a backlogged operation, a pending
// rendezvous handshake). Invalid when the post completed or failed
// immediately — there is nothing left to cancel.
struct op_t {
  std::shared_ptr<detail::op_record_t> p;
  bool is_valid() const { return p != nullptr; }
};

// Registered memory region (local handle) and its remote token.
struct mr_t {
  net::mr_id_t id = net::invalid_mr;
  detail::runtime_impl_t* runtime = nullptr;
  bool is_valid() const { return id != net::invalid_mr; }
};
struct rmr_t {
  net::mr_id_t id = net::invalid_mr;
  bool is_valid() const { return id != net::invalid_mr; }
};

using graph_node_t = uint32_t;
inline constexpr graph_node_t graph_node_null = ~graph_node_t{0};

// ---------------------------------------------------------------------------
// Runtime attributes
// ---------------------------------------------------------------------------

enum class cq_type_t : uint8_t { lcrq, array };

namespace detail {

// Environment defaults for the tracing attributes, so any binary (benchmarks,
// shims, mini-apps) can be traced without plumbing attrs through its layers:
// LCI_TRACE=1 enables tracing for every runtime that does not explicitly set
// .trace(); LCI_TRACE_RING / LCI_TRACE_SAMPLE override ring capacity and the
// 1-in-N sampling rate. Read once and cached.
inline bool trace_env_default() {
  static const bool value = []() {
    const char* env = std::getenv("LCI_TRACE");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
  }();
  return value;
}

inline std::size_t trace_env_ring() {
  static const std::size_t value = []() -> std::size_t {
    const char* env = std::getenv("LCI_TRACE_RING");
    if (env == nullptr || env[0] == '\0') return std::size_t{1} << 14;
    const long parsed = std::atol(env);
    return parsed > 0 ? static_cast<std::size_t>(parsed) : std::size_t{1} << 14;
  }();
  return value;
}

inline uint32_t trace_env_sample() {
  static const uint32_t value = []() -> uint32_t {
    const char* env = std::getenv("LCI_TRACE_SAMPLE");
    if (env == nullptr || env[0] == '\0') return 1;
    const long parsed = std::atol(env);
    return parsed > 0 ? static_cast<uint32_t>(parsed) : 1;
  }();
  return value;
}

// Environment default for device sharding (runtime_attr_t::device_shards):
// LCI_DEVICE_SHARDS=N shards every device of every runtime that does not set
// the attribute explicitly. Lets CI (and users) turn sharding on for an
// existing binary without touching its attrs.
inline std::size_t device_shards_env_default() {
  static const std::size_t value = []() -> std::size_t {
    const char* env = std::getenv("LCI_DEVICE_SHARDS");
    if (env == nullptr || env[0] == '\0') return 1;
    const long parsed = std::atol(env);
    return parsed > 0 ? static_cast<std::size_t>(parsed) : 1;
  }();
  return value;
}

// Environment default for the heartbeat liveness timeout
// (runtime_attr_t::peer_timeout_us): LCI_PEER_TIMEOUT_MS=N milliseconds,
// 0 (the default) disables liveness detection.
inline uint64_t peer_timeout_env_default() {
  static const uint64_t value = []() -> uint64_t {
    const char* env = std::getenv("LCI_PEER_TIMEOUT_MS");
    if (env == nullptr || env[0] == '\0') return 0;
    const long long parsed = std::atoll(env);
    return parsed > 0 ? static_cast<uint64_t>(parsed) * 1000 : 0;
  }();
  return value;
}

// Environment default for the registration cache capacity
// (runtime_attr_t::reg_cache_entries): LCI_REG_CACHE=N entries, 0 disables.
inline std::size_t reg_cache_env_default() {
  static const std::size_t value = []() -> std::size_t {
    const char* env = std::getenv("LCI_REG_CACHE");
    if (env == nullptr || env[0] == '\0') return 128;
    const long parsed = std::atol(env);
    return parsed >= 0 ? static_cast<std::size_t>(parsed) : 128;
  }();
  return value;
}

}  // namespace detail

struct runtime_attr_t {
  // Network backend hosting this process's rank (net/net.hpp): sim (in-process
  // simulated ranks, the default), shm (POSIX shared-memory rings across
  // processes), or tcp (loopback sockets). Only consulted when the calling
  // thread is not already bound to a rank — the first init on an unbound
  // thread creates the process's fabric endpoint from it; afterwards (and
  // under sim::spawn bindings) the existing fabric wins and get_attr reports
  // its actual kind. Defaults to LCI_BACKEND, which is how
  // scripts/launch_local.sh selects the transport per job.
  net::backend_t backend = net::backend_env_default();
  // Heartbeat liveness timeout for the real backends (shm/tcp), in
  // microseconds; 0 (the default) turns liveness detection off. When set, a
  // peer not heard from — no frames, no heartbeat — for this long is declared
  // dead exactly as if it had crashed: every survivor observes one
  // fatal_peer_down per dead rank. Detects SIGSTOPped/wedged/partitioned
  // peers that TCP EOF and SHM pid probes cannot. Too-small values false-
  // positive under scheduler stalls; hundreds of milliseconds is a sane
  // floor. The sim backend ignores it. Defaults to LCI_PEER_TIMEOUT_MS.
  uint64_t peer_timeout_us = detail::peer_timeout_env_default();
  // Registration-cache capacity in entries (net/reg_cache.hpp): internal
  // rendezvous registrations are served from a refcounted LRU cache of live
  // registered intervals instead of hitting the fabric every transfer.
  // 0 disables the cache. Defaults to LCI_REG_CACHE.
  std::size_t reg_cache_entries = detail::reg_cache_env_default();
  // Payload capacity of a packet; also the eager/rendezvous threshold for
  // send-receive and active messages.
  std::size_t packet_size = 4096;
  std::size_t npackets = 8192;
  // Messages at most this large are injected from the user buffer without
  // consuming a packet.
  std::size_t max_inject_size = 64;
  // Pre-posted receives the progress engine maintains per device.
  std::size_t prepost_depth = 128;
  std::size_t matching_engine_buckets = 65536;
  // VCI-style device sharding (paper Sec. 4.2): each device owns this many
  // internal shards, each with its own fabric endpoint (wire mailbox + CQ +
  // send locks), pre-posted receives, and aggregation slots. Outgoing traffic
  // is routed to a shard by the calling thread's pin (pin_thread_shard) or,
  // unpinned, by a hash of (rank, tag) — either way a (thread, rank, tag)
  // stream stays on one shard, so per-key FIFO matching is unaffected.
  // 1 (default) is bit-identical to an unsharded device. Defaults to
  // LCI_DEVICE_SHARDS when set.
  std::size_t device_shards = detail::device_shards_env_default();
  cq_type_t default_cq_type = cq_type_t::lcrq;
  std::size_t cq_default_capacity = 65536;
  // Advanced (Sec. 3.3.1): deliver incoming active messages in packets
  // instead of malloc'd buffers, saving the copy of the buffer-copy
  // protocol. The handler/queue consumer must return each payload with
  // release_am_packet instead of std::free.
  bool am_deliver_packets = false;
  // Auto-progress engine (see docs/INTERNALS.md "The auto-progress engine"):
  // background threads the runtime owns that call progress() on the devices
  // marked auto-progressed. 0 = caller-driven progress only. The engine
  // starts lazily when the first auto-progressed device is allocated, with
  // max(1, nprogress_threads) threads; devices spread round-robin over them.
  std::size_t nprogress_threads = 0;
  // Service the runtime's default device with the engine.
  bool auto_progress_default = false;
  // Engine idle policy: consecutive empty service rounds before exponential
  // backoff begins, backoff rounds before a doorbell sleep, and the bound on
  // each sleep (the doorbell is a wakeup hint, not a guarantee — a bounded
  // sleep keeps the engine live when a ring is missed, e.g. a packet pool
  // refill that no doorbell covers).
  std::size_t progress_spin_polls = 256;
  std::size_t progress_backoff_polls = 64;
  std::size_t progress_sleep_us = 500;
  // Deadline (us) stamped on every internal collective receive; 0 = none.
  // When a member rank dies mid-collective, its direct peers fail with
  // fatal_peer_down, but ranks waiting on live-yet-aborted peers would wait
  // forever — the deadline turns those waits into fatal_timeout, so the
  // collective terminates with a fatal code at every member rank.
  uint64_t collective_deadline_us = 0;
  // Eager-message coalescing (docs/INTERNALS.md "Message coalescing"). Off by
  // default: every eager message is its own wire message, exactly as before.
  // When on (or per-post via post_*_x(...).allow_aggregation(true)), eager
  // sends and AMs of at most aggregation_eager_max bytes append into a
  // per-(device, peer) slot and travel as one eager_batch wire message,
  // flushed when the slot reaches aggregation_max_bytes/aggregation_max_msgs,
  // when progress() finds it older than aggregation_flush_us, on explicit
  // flush(), or whenever a non-aggregated message to the same peer must not
  // overtake it (the matching-order rule).
  bool allow_aggregation = false;
  // Single-poster bypass: while only one thread has ever posted eager traffic
  // to a device, runtime-default aggregation is skipped and messages go out
  // individually — buffering cannot help a lone poster (nobody shares the
  // wire) and the flush-age wait only adds latency. The first post from a
  // second thread permanently re-enables coalescing on that device. Explicit
  // per-post .allow_aggregation(true) always coalesces regardless.
  bool aggregation_bypass_single_poster = true;
  std::size_t aggregation_eager_max = 256;
  std::size_t aggregation_max_bytes = 0;  // 0 = packet payload capacity
  std::size_t aggregation_max_msgs = 64;
  uint64_t aggregation_flush_us = 100;
  // CQEs drained per progress() poll of the network completion queue.
  // 0 = align with the fabric's configured poll burst; clamped to [1, 64].
  std::size_t cq_poll_burst = 0;
  // Operation-lifecycle tracing (docs/INTERNALS.md "Tracing"): the runtime
  // retains the process-global tracer while it lives. Zero-cost when false
  // (one relaxed load behind every instrumentation point). The first traced
  // runtime of a session installs ring capacity (events per thread, rounded
  // up to a power of two) and the sampling rate (trace 1 op in N; wire and
  // slot spans sample independently). Defaults come from LCI_TRACE /
  // LCI_TRACE_RING / LCI_TRACE_SAMPLE.
  bool trace = detail::trace_env_default();
  std::size_t trace_ring_size = detail::trace_env_ring();
  uint32_t trace_sample = detail::trace_env_sample();
};

// ---------------------------------------------------------------------------
// Runtime lifecycle (Sec. 3.2.2)
// ---------------------------------------------------------------------------

// Allocates / frees the calling rank's global default runtime. Nested init
// calls are reference counted.
runtime_t g_runtime_init(const runtime_attr_t& attr = {});
void g_runtime_fina();
runtime_t get_g_runtime();

// Additional runtime objects (library composition).
runtime_t alloc_runtime(const runtime_attr_t& attr = {});
void free_runtime(runtime_t* runtime);

// OFF variant: alloc_runtime_x().nprogress_threads(2).auto_progress(true)()
// allocates a runtime whose default device is serviced by two background
// progress threads.
class alloc_runtime_x {
 public:
  alloc_runtime_x() = default;
  alloc_runtime_x& attr(const runtime_attr_t& v) { attr_ = v; return *this; }
  alloc_runtime_x& nprogress_threads(std::size_t v) {
    attr_.nprogress_threads = v;
    return *this;
  }
  // Auto-progress the runtime's default device.
  alloc_runtime_x& auto_progress(bool v) {
    attr_.auto_progress_default = v;
    return *this;
  }
  alloc_runtime_x& progress_spin_polls(std::size_t v) {
    attr_.progress_spin_polls = v;
    return *this;
  }
  alloc_runtime_x& progress_sleep_us(std::size_t v) {
    attr_.progress_sleep_us = v;
    return *this;
  }
  // Default eager-message coalescing policy for the runtime's devices.
  alloc_runtime_x& allow_aggregation(bool v) {
    attr_.allow_aggregation = v;
    return *this;
  }
  // Shards per device (runtime_attr_t::device_shards).
  alloc_runtime_x& device_shards(std::size_t v) {
    attr_.device_shards = v;
    return *this;
  }
  // Network backend (runtime_attr_t::backend).
  alloc_runtime_x& backend(net::backend_t v) {
    attr_.backend = v;
    return *this;
  }
  // Registration-cache capacity (runtime_attr_t::reg_cache_entries).
  alloc_runtime_x& reg_cache_entries(std::size_t v) {
    attr_.reg_cache_entries = v;
    return *this;
  }
  // Heartbeat liveness timeout (runtime_attr_t::peer_timeout_us).
  alloc_runtime_x& peer_timeout_us(uint64_t v) {
    attr_.peer_timeout_us = v;
    return *this;
  }
  // Operation-lifecycle tracing (runtime_attr_t::trace and friends).
  alloc_runtime_x& trace(bool v) {
    attr_.trace = v;
    return *this;
  }
  alloc_runtime_x& trace_ring_size(std::size_t v) {
    attr_.trace_ring_size = v;
    return *this;
  }
  alloc_runtime_x& trace_sample(uint32_t v) {
    attr_.trace_sample = v;
    return *this;
  }
  runtime_t operator()() const { return alloc_runtime(attr_); }

 private:
  runtime_attr_t attr_{};
};

// Quiescence control for the auto-progress engine (no-ops when the runtime
// has none). progress_pause blocks until every engine thread is parked
// outside progress() — after it returns, no engine thread touches any device
// until progress_resume. Explicit progress() stays legal while paused (and is
// how in-flight traffic can still drain during a pause).
void progress_pause(runtime_t runtime = {});
void progress_resume(runtime_t runtime = {});

int get_rank_me(runtime_t runtime = {});
int get_rank_n(runtime_t runtime = {});

// Statistics (protocol mix, retry reasons, backlog traffic); see
// counters.hpp for field meanings.
counters_t get_counters(runtime_t runtime = {});
void reset_counters(runtime_t runtime = {});

// Fault-injection attributes: the policy the runtime's fabric was created
// with (all-zero when injection is off). Configure it through the
// net::config_t handed to sim::spawn / sim::world_t.
net::fault_config_t get_fault_config(runtime_t runtime = {});

// ---------------------------------------------------------------------------
// Failure lifecycle: cancellation, deadlines, peer death, drain
// ---------------------------------------------------------------------------

// Terminates a still-parked operation: a posted receive is pulled back out of
// the matching engine, a backlogged operation is retired before it re-runs, a
// pending rendezvous handshake is torn down. On success the operation
// completes exactly once with fatal_canceled (through its completion object
// if it has one; an operation posted without one just disappears) and cancel
// returns true. Returns false when the runtime no longer owns the operation —
// it already matched, completed, timed out, or is mid-flight — in which case
// the operation completes (or completed) through its normal path.
bool cancel(op_t op);

// Test hook: kills `rank` fabric-wide, as if its kill schedule had fired.
// Every in-flight and subsequently posted operation naming it completes with
// fatal_peer_down. On sim and shm the kill is immediate (shared state). On
// tcp a remote kill travels as a poison control frame: the victim shuts its
// transport down on receipt so every peer observes the death organically; a
// wedged victim that never reads it is covered by a local fallback deadline
// (max(peer_timeout_us, 1s)) at the calling rank, so true means "the kill is
// on its way", not "the rank is dead yet". Returns false if the rank was
// already dead (or the backend cannot kill).
bool kill_peer(int rank, runtime_t runtime = {});

// Quiesces a device for graceful teardown: progresses it until its backlog is
// empty and nothing is moving, or `timeout_us` elapses — then force-cancels
// whatever is still parked on it (backlog entries, tracked receives and
// rendezvous handshakes with handles/deadlines, and this runtime's pending
// rendezvous state). Killed operations complete with fatal_canceled. Returns
// the number of operations it had to kill (0 = clean quiesce).
std::size_t drain(device_t device = {}, uint64_t timeout_us = 0,
                  runtime_t runtime = {});

// Forces every armed aggregation slot on `device` (or only the slots for
// `rank`, when rank >= 0) to post its eager_batch now instead of waiting for
// a size/age trigger. Returns the number of batches posted. When a post hits
// transient back-pressure, flush retries internally (interleaving progress()
// so local completions keep draining) until every targeted batch is on the
// wire or has failed fatally — after flush returns, no targeted slot is still
// armed. Blocking bound: a transient retry clears as soon as the fabric
// accepts the message, so flush blocks at most until the peer drains enough
// of its inbound wire mailbox (or dies, which aborts the batch with
// fatal_peer_down); it never waits on remote matching or completion.
// A no-op (returns 0) when nothing is buffered.
std::size_t flush(device_t device = {}, int rank = -1, runtime_t runtime = {});

// Thread-affinity shard routing (paper Sec. 4.2). Pins the calling thread to
// shard `shard` of every sharded device: its posts (and their coalescing
// slots) use that shard's fabric endpoint, giving a thread private send
// resources without any global coordination. The pin is a process-wide TLS
// hint applied modulo each device's shard count; a negative value unpins
// (routing falls back to the (rank, tag) hash). Pinning is purely a placement
// hint — matching is runtime-wide, so correctness never depends on it.
void pin_thread_shard(int shard);
// The calling thread's current pin (-1 = unpinned).
int get_thread_shard();

// ---------------------------------------------------------------------------
// Resources (Sec. 3.2.3, 4.1)
// ---------------------------------------------------------------------------

device_t alloc_device(runtime_t runtime = {});
void free_device(device_t* device);

matching_engine_t alloc_matching_engine(runtime_t runtime = {},
                                        std::size_t num_buckets = 0);
void free_matching_engine(matching_engine_t* engine);

packet_pool_t alloc_packet_pool(runtime_t runtime = {},
                                std::size_t npackets = 0,
                                std::size_t packet_size = 0);
void free_packet_pool(packet_pool_t* pool);

// Completion objects (Sec. 3.2.5): handler, queue, synchronizer, graph.
using handler_fn_t = std::function<void(const status_t&)>;
comp_t alloc_handler(handler_fn_t fn, runtime_t runtime = {});
comp_t alloc_cq(runtime_t runtime = {});
// Picks the queue implementation explicitly (Sec. 4.1.4: LCRQ or FAA array).
comp_t alloc_cq_typed(cq_type_t type, std::size_t capacity = 0);
comp_t alloc_sync(std::size_t threshold = 1, runtime_t runtime = {});
void free_comp(comp_t* comp);

// ---------------------------------------------------------------------------
// OFF variants of the allocation functions (Sec. 3.1: every LCI function has
// an `_x` form) and resource-attribute queries (Sec. 3.2.3: attributes can be
// set at allocation and queried afterward).
// ---------------------------------------------------------------------------

class alloc_device_x {
 public:
  alloc_device_x() = default;
  alloc_device_x& runtime(runtime_t v) { runtime_ = v; return *this; }
  // Pre-posted receive depth override (0 = runtime default).
  alloc_device_x& prepost_depth(std::size_t v) { prepost_depth_ = v; return *this; }
  // Hand this device to the runtime's auto-progress engine (started lazily
  // with max(1, runtime_attr_t::nprogress_threads) threads). Explicit
  // progress() on the device remains legal alongside.
  alloc_device_x& auto_progress(bool v) { auto_progress_ = v; return *this; }
  device_t operator()() const;

 private:
  runtime_t runtime_{};
  std::size_t prepost_depth_ = 0;
  bool auto_progress_ = false;
};

class alloc_cq_x {
 public:
  alloc_cq_x() = default;
  alloc_cq_x& runtime(runtime_t v) { runtime_ = v; return *this; }
  alloc_cq_x& type(cq_type_t v) { type_ = v; has_type_ = true; return *this; }
  alloc_cq_x& capacity(std::size_t v) { capacity_ = v; return *this; }
  comp_t operator()() const;

 private:
  runtime_t runtime_{};
  cq_type_t type_ = cq_type_t::lcrq;
  bool has_type_ = false;
  std::size_t capacity_ = 0;
};

class alloc_sync_x {
 public:
  alloc_sync_x() = default;
  alloc_sync_x& runtime(runtime_t v) { runtime_ = v; return *this; }
  alloc_sync_x& threshold(std::size_t v) { threshold_ = v; return *this; }
  comp_t operator()() const;

 private:
  runtime_t runtime_{};
  std::size_t threshold_ = 1;
};

// User-supplied matching-key derivation (Sec. 3.3.2: "users can also achieve
// more flexible matching policies by supplying their own make_key function").
using make_key_fn_t =
    std::function<uint64_t(int rank, tag_t tag, matching_policy_t policy)>;

class alloc_matching_engine_x {
 public:
  alloc_matching_engine_x() = default;
  alloc_matching_engine_x& runtime(runtime_t v) { runtime_ = v; return *this; }
  alloc_matching_engine_x& num_buckets(std::size_t v) {
    num_buckets_ = v;
    return *this;
  }
  alloc_matching_engine_x& make_key(make_key_fn_t v) {
    make_key_ = std::move(v);
    return *this;
  }
  matching_engine_t operator()() const;

 private:
  runtime_t runtime_{};
  std::size_t num_buckets_ = 0;
  make_key_fn_t make_key_;
};

class alloc_packet_pool_x {
 public:
  alloc_packet_pool_x() = default;
  alloc_packet_pool_x& runtime(runtime_t v) { runtime_ = v; return *this; }
  alloc_packet_pool_x& npackets(std::size_t v) { npackets_ = v; return *this; }
  alloc_packet_pool_x& packet_size(std::size_t v) {
    packet_size_ = v;
    return *this;
  }
  packet_pool_t operator()() const;

 private:
  runtime_t runtime_{};
  std::size_t npackets_ = 0;
  std::size_t packet_size_ = 0;
};

// Attribute snapshots, queried with get_attr overloads.
struct device_attr_t {
  std::size_t prepost_depth = 0;
  int net_index = -1;           // routing index of shard 0 within the context
  std::size_t device_shards = 0;  // internal shards (fabric endpoints)
  std::size_t backlog_size = 0; // queued backlog operations (approximate)
  uint64_t injected_faults = 0; // forced retries, summed over the shards
  bool auto_progress = false;   // serviced by the runtime's progress engine
  uint64_t doorbell_rings = 0;  // wakeup-hint rings observed on this device
  uint64_t wire_dropped = 0;    // evaporated wire messages, summed over shards
  std::vector<int> dead_peers;  // ranks this device knows to be dead
  // Eager-message coalescing policy resolved for this device (runtime attrs
  // with aggregation_max_bytes 0 replaced by the packet payload capacity).
  bool allow_aggregation = false;
  std::size_t aggregation_eager_max = 0;
  std::size_t aggregation_max_bytes = 0;
  std::size_t aggregation_max_msgs = 0;
  uint64_t aggregation_flush_us = 0;
  // CQEs drained per progress() poll (runtime_attr_t::cq_poll_burst resolved
  // against the fabric's poll burst and clamped).
  std::size_t cq_poll_burst = 0;
};
struct matching_engine_attr_t {
  std::size_t num_buckets = 0;
  uint16_t id = 0;
  std::size_t entries = 0;  // queued sends+recvs (O(buckets) to compute)
};
struct packet_pool_attr_t {
  std::size_t npackets = 0;
  std::size_t packet_size = 0;   // payload capacity
  std::size_t pooled = 0;        // currently in deques (approximate)
};
struct comp_attr_t {
  enum class kind_t { handler, cq, sync, other } kind = kind_t::other;
  cq_type_t cq_type = cq_type_t::lcrq;  // valid when kind == cq
  std::size_t sync_threshold = 0;       // valid when kind == sync
};

runtime_attr_t get_attr(runtime_t runtime);
device_attr_t get_attr(device_t device);
matching_engine_attr_t get_attr(matching_engine_t engine);
packet_pool_attr_t get_attr(packet_pool_t pool);
comp_attr_t get_attr(comp_t comp);

// Completion queue operations. cq_pop returns a status whose error is `done`
// (an entry was popped) or `retry` (empty).
status_t cq_pop(comp_t cq);

// Synchronizer operations. sync_test returns true when the synchronizer has
// received `threshold` signals; it then atomically resets and copies the
// signaled statuses into `out` (may be null). sync_wait spins (making
// progress on the runtime's default device) until ready.
bool sync_test(comp_t sync, status_t* out);
void sync_wait(comp_t sync, status_t* out);

// Manually signal a completion object (also how LCI itself signals them).
void comp_signal(comp_t comp, const status_t& status);

// Remote completion registry (Sec. 3.2.3).
rcomp_t register_rcomp(comp_t comp, runtime_t runtime = {});
void deregister_rcomp(rcomp_t rcomp, runtime_t runtime = {});

// Memory registration (Sec. 3.3.1): optional for local buffers, mandatory
// for buffers accessed remotely by put/get.
mr_t register_memory(void* base, std::size_t size, runtime_t runtime = {});
void deregister_memory(mr_t* mr);
rmr_t get_rmr(mr_t mr);

// ---------------------------------------------------------------------------
// Advanced packet interface (Sec. 3.3.1): assemble messages directly in
// pre-registered packets to save the buffer-copy protocol's memory copy.
// ---------------------------------------------------------------------------

// A user-held packet. `address` points at the message payload area
// (`capacity` bytes, header space already reserved in front).
struct packet_handle_t {
  void* address = nullptr;
  std::size_t capacity = 0;
  bool is_valid() const { return address != nullptr; }
};

// Pops a packet from the pool (the runtime's default pool unless one is
// given). Invalid handle on exhaustion (the caller retries, like
// retry_nopacket). Assemble the message at `address` and post it with
// post_*_x(...).from_packet(true), passing `address` as the local buffer —
// the post consumes the packet. An unused packet goes back with put_packet.
packet_handle_t get_packet(runtime_t runtime = {}, packet_pool_t pool = {});
void put_packet(packet_handle_t packet);

// Returns an AM payload delivered in a packet (am_deliver_packets mode) to
// its pool; the analogue of std::free for malloc'd deliveries.
void release_am_packet(const status_t& status);

// ---------------------------------------------------------------------------
// Completion graph (Sec. 3.2.5)
// ---------------------------------------------------------------------------
//
// A graph node holds either a user function or a communication-posting
// closure. The closure returns a status: `done` completes the node
// immediately; `posted` completes it when the operation it posted signals the
// node (pass graph_node_comp(graph, node) as the operation's completion
// object); `retry` re-runs the node on the next graph_progress/graph_test.
// If u precedes v, v starts only after u completes.

using graph_fn_t = std::function<status_t()>;

graph_t alloc_graph(runtime_t runtime = {});
void free_graph(graph_t* graph);
graph_node_t graph_add_node(graph_t graph, graph_fn_t fn);
void graph_add_edge(graph_t graph, graph_node_t from, graph_node_t to);
comp_t graph_node_comp(graph_t graph, graph_node_t node);
void graph_start(graph_t graph);
// Returns true when every node has completed. Re-runs retry nodes.
bool graph_test(graph_t graph);

// ---------------------------------------------------------------------------
// Communication posting (Sec. 3.2.4) — OFF objects
// ---------------------------------------------------------------------------

namespace detail {

// Aggregate of every argument post_comm understands; the OFF functors are
// thin builders over it.
struct post_args_t {
  // positional
  int rank = -1;
  void* local_buffer = nullptr;
  std::size_t size = 0;
  comp_t local_comp{};
  // optional
  direction_t direction = direction_t::out;
  tag_t tag = 0;
  rmr_t remote_buffer{};              // engaged => RMA
  std::size_t remote_offset = 0;
  rcomp_t remote_comp = rcomp_null;   // engaged => notification at target
  runtime_t runtime{};
  device_t device{};
  matching_engine_t matching_engine{};
  packet_pool_t packet_pool{};
  matching_policy_t matching_policy = matching_policy_t::rank_tag;
  bool allow_retry = true;            // false: queue on the backlog instead
  bool allow_done = true;             // false: force signaling the comp
  void* user_context = nullptr;
  const buffers_t* buffers = nullptr; // engaged => buffer-list operation
  bool from_packet = false;           // local_buffer is a get_packet address
  // Failure lifecycle: relative deadline (0 = none) after which the deadline
  // sweep completes the operation with fatal_timeout if it is still parked
  // (receive unmatched, backlog entry unexecuted, rendezvous handshake
  // unanswered, aggregation-slot entry unflushed); and an optional out-param
  // receiving a cancel() handle.
  uint64_t deadline_us = 0;
  op_t* out_op = nullptr;
  // Eager-message coalescing override: -1 = inherit the runtime attr,
  // 0/1 = force off/on for this post.
  int8_t aggregation = -1;
};

status_t post_comm_impl(const post_args_t& args);

}  // namespace detail

// Shared setter block for all posting OFFs. Each setter returns *this so the
// arguments chain in any order; the trailing () executes (Listing 1).
#define LCI_OFF_COMM_SETTERS(class_name)                                      \
  class_name& direction(direction_t v) { args_.direction = v; return *this; } \
  class_name& tag(tag_t v) { args_.tag = v; return *this; }                   \
  class_name& remote_buffer(rmr_t v, std::size_t offset = 0) {                \
    args_.remote_buffer = v;                                                  \
    args_.remote_offset = offset;                                             \
    return *this;                                                             \
  }                                                                           \
  class_name& remote_comp(rcomp_t v) { args_.remote_comp = v; return *this; } \
  class_name& runtime(runtime_t v) { args_.runtime = v; return *this; }       \
  class_name& device(device_t v) { args_.device = v; return *this; }          \
  class_name& matching_engine(matching_engine_t v) {                          \
    args_.matching_engine = v;                                                \
    return *this;                                                             \
  }                                                                           \
  class_name& packet_pool(packet_pool_t v) {                                  \
    args_.packet_pool = v;                                                    \
    return *this;                                                             \
  }                                                                           \
  class_name& matching_policy(matching_policy_t v) {                          \
    args_.matching_policy = v;                                                \
    return *this;                                                             \
  }                                                                           \
  class_name& allow_retry(bool v) { args_.allow_retry = v; return *this; }    \
  class_name& allow_done(bool v) { args_.allow_done = v; return *this; }      \
  class_name& user_context(void* v) { args_.user_context = v; return *this; } \
  class_name& buffers(const buffers_t& v) { args_.buffers = &v; return *this; } \
  class_name& from_packet(bool v) { args_.from_packet = v; return *this; }     \
  class_name& deadline(uint64_t us) { args_.deadline_us = us; return *this; }  \
  class_name& op_handle(op_t* v) { args_.out_op = v; return *this; }           \
  class_name& allow_aggregation(bool v) {                                      \
    args_.aggregation = v ? 1 : 0;                                             \
    return *this;                                                              \
  }                                                                            \
  status_t operator()() const { return detail::post_comm_impl(args_); }

class post_comm_x {
 public:
  post_comm_x(int rank, void* local_buffer, std::size_t size,
              comp_t local_comp) {
    args_.rank = rank;
    args_.local_buffer = local_buffer;
    args_.size = size;
    args_.local_comp = local_comp;
  }
  LCI_OFF_COMM_SETTERS(post_comm_x)
 private:
  detail::post_args_t args_;
};

class post_send_x {
 public:
  post_send_x(int rank, void* buffer, std::size_t size, tag_t tag,
              comp_t comp) {
    args_.rank = rank;
    args_.local_buffer = buffer;
    args_.size = size;
    args_.tag = tag;
    args_.local_comp = comp;
    args_.direction = direction_t::out;
  }
  LCI_OFF_COMM_SETTERS(post_send_x)
 private:
  detail::post_args_t args_;
};

class post_recv_x {
 public:
  post_recv_x(int rank, void* buffer, std::size_t size, tag_t tag,
              comp_t comp) {
    args_.rank = rank;
    args_.local_buffer = buffer;
    args_.size = size;
    args_.tag = tag;
    args_.local_comp = comp;
    args_.direction = direction_t::in;
  }
  LCI_OFF_COMM_SETTERS(post_recv_x)
 private:
  detail::post_args_t args_;
};

class post_am_x {
 public:
  post_am_x(int rank, void* buffer, std::size_t size, comp_t local_comp,
            rcomp_t remote_comp) {
    args_.rank = rank;
    args_.local_buffer = buffer;
    args_.size = size;
    args_.local_comp = local_comp;
    args_.remote_comp = remote_comp;
    args_.direction = direction_t::out;
  }
  LCI_OFF_COMM_SETTERS(post_am_x)
 private:
  detail::post_args_t args_;
};

class post_put_x {
 public:
  post_put_x(int rank, void* buffer, std::size_t size, comp_t comp,
             rmr_t remote_buffer, std::size_t remote_offset = 0) {
    args_.rank = rank;
    args_.local_buffer = buffer;
    args_.size = size;
    args_.local_comp = comp;
    args_.remote_buffer = remote_buffer;
    args_.remote_offset = remote_offset;
    args_.direction = direction_t::out;
  }
  LCI_OFF_COMM_SETTERS(post_put_x)
 private:
  detail::post_args_t args_;
};

class post_get_x {
 public:
  post_get_x(int rank, void* buffer, std::size_t size, comp_t comp,
             rmr_t remote_buffer, std::size_t remote_offset = 0) {
    args_.rank = rank;
    args_.local_buffer = buffer;
    args_.size = size;
    args_.local_comp = comp;
    args_.remote_buffer = remote_buffer;
    args_.remote_offset = remote_offset;
    args_.direction = direction_t::in;
  }
  LCI_OFF_COMM_SETTERS(post_get_x)
 private:
  detail::post_args_t args_;
};

#undef LCI_OFF_COMM_SETTERS

// Standard (positional-only) forms.
inline status_t post_comm(int rank, void* buffer, std::size_t size,
                          comp_t comp) {
  return post_comm_x(rank, buffer, size, comp)();
}
inline status_t post_send(int rank, void* buffer, std::size_t size, tag_t tag,
                          comp_t comp) {
  return post_send_x(rank, buffer, size, tag, comp)();
}
inline status_t post_recv(int rank, void* buffer, std::size_t size, tag_t tag,
                          comp_t comp) {
  return post_recv_x(rank, buffer, size, tag, comp)();
}
inline status_t post_am(int rank, void* buffer, std::size_t size,
                        comp_t local_comp, rcomp_t remote_comp) {
  return post_am_x(rank, buffer, size, local_comp, remote_comp)();
}
inline status_t post_put(int rank, void* buffer, std::size_t size, comp_t comp,
                         rmr_t remote_buffer, std::size_t remote_offset = 0) {
  return post_put_x(rank, buffer, size, comp, remote_buffer, remote_offset)();
}
inline status_t post_get(int rank, void* buffer, std::size_t size, comp_t comp,
                         rmr_t remote_buffer, std::size_t remote_offset = 0) {
  return post_get_x(rank, buffer, size, comp, remote_buffer, remote_offset)();
}

// ---------------------------------------------------------------------------
// Progress (Sec. 3.2.6)
// ---------------------------------------------------------------------------

namespace detail {
bool progress_impl(runtime_t runtime, device_t device);
}

class progress_x {
 public:
  progress_x() = default;
  progress_x& runtime(runtime_t v) { runtime_ = v; return *this; }
  progress_x& device(device_t v) { device_ = v; return *this; }
  // Returns true when the call made progress (delivered, matched, signaled,
  // retried, or replenished anything).
  bool operator()() const { return detail::progress_impl(runtime_, device_); }
 private:
  runtime_t runtime_{};
  device_t device_{};
};

inline bool progress() { return progress_x()(); }

// ---------------------------------------------------------------------------
// Collectives (Sec. 6: dissemination barrier, tree broadcast / reduce).
// Blocking; call from exactly one thread per rank per collective. Internally
// they use a dedicated matching engine so user traffic cannot interfere.
// ---------------------------------------------------------------------------

void barrier(runtime_t runtime = {}, device_t device = {});
void broadcast(void* buffer, std::size_t size, int root,
               runtime_t runtime = {}, device_t device = {});
using reduce_fn_t = void (*)(void* accumulator, const void* contribution,
                             std::size_t size);
void reduce(const void* sendbuf, void* recvbuf, std::size_t size,
            reduce_fn_t op, int root, runtime_t runtime = {},
            device_t device = {});
// Compositions (reduce-then-broadcast / gather-then-broadcast), provided as
// conveniences over the three primitives above.
void allreduce(const void* sendbuf, void* recvbuf, std::size_t size,
               reduce_fn_t op, runtime_t runtime = {}, device_t device = {});
// Gathers `size` bytes from every rank into recvbuf[rank*size ...].
void allgather(const void* sendbuf, void* recvbuf, std::size_t size,
               runtime_t runtime = {}, device_t device = {});

// Nonblocking barrier expressed as a completion graph (the usage Sec. 3.2.5
// highlights): every dissemination round is a pair of graph nodes — a send
// and a receive — with the ordering edges of the algorithm. Drive it with
// graph_start / graph_test (+ progress); free it with free_graph when done.
graph_t alloc_barrier_graph(runtime_t runtime = {}, device_t device = {});

// ---------------------------------------------------------------------------
// Simulated multi-rank bootstrap (see DESIGN.md: substitution for PMI).
// ---------------------------------------------------------------------------

namespace sim {

namespace detail_sim {
struct rank_ctx_t;
}
using binding_t = std::shared_ptr<detail_sim::rank_ctx_t>;

// A world is a set of ranks connected by one simulated fabric.
class world_t {
 public:
  explicit world_t(int nranks, const net::config_t& config = {});
  ~world_t();
  world_t(const world_t&) = delete;
  world_t& operator=(const world_t&) = delete;

  int nranks() const;
  binding_t binding(int rank) const;

 private:
  struct impl_t;
  std::unique_ptr<impl_t> impl_;
};

// Thread-local rank binding. A bound thread acts as a member of that rank:
// g_runtime_init/alloc_runtime/etc. operate on the bound rank. Threads
// spawned by the application must be bound (copy the parent's binding).
void bind(binding_t binding);
binding_t current_binding();

class scoped_binding_t {
 public:
  explicit scoped_binding_t(binding_t binding)
      : previous_(current_binding()) {
    bind(std::move(binding));
  }
  ~scoped_binding_t() { bind(std::move(previous_)); }
  scoped_binding_t(const scoped_binding_t&) = delete;
  scoped_binding_t& operator=(const scoped_binding_t&) = delete;

 private:
  binding_t previous_;
};

// Creates a world of `nranks` ranks and runs fn(rank) on one thread per rank,
// each bound to its rank; joins them all before returning. Exceptions thrown
// by any rank are rethrown (the first one) after joining.
void spawn(int nranks, const std::function<void(int rank)>& fn,
           const net::config_t& config = {});

}  // namespace sim
}  // namespace lci
