// The progress engine (paper Sec. 3.2.6 / 4.4).
//
// progress(): (3) retry backlogged requests; (4) poll the network device and
// react to completions — (5) insert incoming sends into the matching engine,
// (6) signal completion objects, (7) replenish pre-posted receives, (8) post
// rendezvous continuations. All reactions that cannot be submitted right away
// go to the device's backlog queue.
#include <cassert>
#include <cstdlib>
#include <cstring>

#include "core/runtime_impl.hpp"
#include "util/log.hpp"

namespace lci::detail {

using counter_id_t = detail::counter_id_t;

namespace {

// Scatters `size` bytes into a buffer list (buffer-list receives). Returns
// false — copying nothing — when the list is too small for the payload; the
// caller completes the receive with fatal_truncated. (This used to be an
// assert, which vanished in release builds and silently truncated.)
bool scatter(const char* src, std::size_t size,
             const std::vector<buffer_t>& list) {
  std::size_t capacity = 0;
  for (const buffer_t& b : list) capacity += b.size;
  if (size > capacity) return false;
  std::size_t offset = 0;
  for (const buffer_t& b : list) {
    if (offset >= size) break;
    const std::size_t chunk = std::min(b.size, size - offset);
    std::memcpy(b.base, src + offset, chunk);
    offset += chunk;
  }
  return true;
}

struct rtr_msg_t {
  msg_header_t header;
  rtr_payload_t payload;
};

}  // namespace

status_t make_fatal_status(runtime_impl_t* runtime, errorcode_t code, int rank,
                           tag_t tag, void* buffer, std::size_t size,
                           void* user_context) {
  runtime->counters().add(counter_id_t::comp_fatal);
  switch (code) {
    case errorcode_t::fatal_canceled:
      runtime->counters().add(counter_id_t::ops_canceled);
      break;
    case errorcode_t::fatal_timeout:
      runtime->counters().add(counter_id_t::ops_timed_out);
      break;
    case errorcode_t::fatal_peer_down:
      runtime->counters().add(counter_id_t::peer_down_completions);
      break;
    default:
      break;
  }
  status_t status;
  status.error.code = code;
  status.rank = rank;
  status.tag = tag;
  status.buffer = buffer_t{buffer, size};
  status.user_context = user_context;
  return status;
}

status_t send_rtr(device_impl_t* device, int peer_rank, uint32_t rdv_id,
                  uint32_t pending_id, net::mr_id_t mr, uint64_t mr_offset) {
  // Matching-order rule: an RTR unlocks an RDMA write into this rank, which
  // the peer completes locally — it must not overtake a batch buffered for
  // the peer. The ordering obligation is per-peer, so every shard's slot for
  // the peer is flushed (shard -1). A retry bounces the RTR too (callers
  // backlog it); peer_down falls through so the post below reports it.
  if (device->has_armed_aggregation()) {
    const errorcode_t flushed = device->flush_peer_for_ordering(peer_rank, -1);
    if (error_t{flushed}.is_retry()) {
      status_t status;
      status.error.code = flushed;
      return status;
    }
  }
  rtr_msg_t msg;
  msg.header.kind = msg_header_t::rtr;
  msg.payload.rdv_id = rdv_id;
  msg.payload.pending_id = pending_id;
  msg.payload.mr_id = mr;
  msg.payload.mr_offset = mr_offset;
  const auto result = device->net_for(peer_rank, 0).post_send(
      peer_rank, &msg, sizeof(msg), 0, nullptr);
  status_t status;
  status.error = map_net_result(result);
  return status;
}

void start_rendezvous_recv(runtime_impl_t* runtime, device_impl_t* device,
                           int peer_rank, tag_t tag, uint32_t rdv_id,
                           uint64_t total_size, rdv_recv_t state) {
  if (total_size > state.size) {
    // Refusal: the incoming message does not fit the posted buffer. Complete
    // the receive with fatal_truncated (exactly once, via its comp) and NACK
    // the sender — an RTR carrying net::invalid_mr — so the sender fails too
    // instead of waiting forever for a handshake that will never come. This
    // path used to throw out of the progress engine, leaking the pending
    // rendezvous on both sides.
    void* user_buffer = state.runtime_owned_buffer ? nullptr : state.buffer;
    if (state.runtime_owned_buffer) std::free(state.buffer);
    if (state.record)
      state.record->state.store(op_record_t::st_terminal,
                                std::memory_order_release);
    trace::end_op(state.span, trace::kind_t::op_recv, trace::hist_t::post_recv,
                  static_cast<uint8_t>(errorcode_t::fatal_truncated), peer_rank,
                  tag, total_size);
    signal_comp(state.comp,
                make_fatal_status(runtime, errorcode_t::fatal_truncated,
                                  peer_rank, tag, user_buffer,
                                  static_cast<std::size_t>(total_size),
                                  state.user_context));
    const status_t nack =
        send_rtr(device, peer_rank, rdv_id, 0, net::invalid_mr, 0);
    if (nack.error.is_retry()) {
      runtime->counters().add(counter_id_t::backlog_pushed);
      device->backlog().push([device, peer_rank, rdv_id](backlog_action_t a) {
        if (a == backlog_action_t::cancel) {
          // Nothing owed: the receive already failed; the sender's side is
          // cleaned up by its own deadline or the dead-peer purge.
          status_t s;
          s.error.code = errorcode_t::done;
          return s;
        }
        return send_rtr(device, peer_rank, rdv_id, 0, net::invalid_mr, 0);
      });
      device->ring_doorbell();
    }
    return;
  }
  state.size = static_cast<std::size_t>(total_size);
  state.peer_rank = peer_rank;
  state.tag = tag;
  if (!state.list.empty()) {
    // Buffer-list receive: the RDMA write needs one contiguous registered
    // region; land in runtime staging and scatter at FIN.
    state.buffer = std::malloc(state.size ? state.size : 1);
  }
  const net::reg_handle_t reg = runtime->reg_acquire(state.buffer, state.size);
  state.mr = reg.mr;
  const net::mr_id_t mr = reg.mr;
  const uint64_t mr_offset = reg.offset;
  std::shared_ptr<op_record_t> record = state.record;
  const uint64_t span_id = state.span.id;
  const uint32_t pending_id =
      runtime->pending_recvs().add(std::move(state));
  if (record) {
    // Re-home the tracked op: it now lives in pending_recvs under
    // pending_id. A sweep racing this window sees the old kind with a null
    // engine location and backs off; the next sweep finds the new home.
    std::lock_guard<util::spinlock_t> guard(record->lock);
    record->kind = op_kind_t::rdv_recv;
    record->rdv_id = pending_id;
    record->engine = nullptr;
    record->entry = nullptr;
  }
  const status_t status =
      send_rtr(device, peer_rank, rdv_id, pending_id, mr, mr_offset);
  if (status.error.is_done())
    trace::instant(trace::kind_t::rtr, span_id, peer_rank, tag, total_size);
  if (status.error.is_retry()) {
    // (8): the progress engine cannot keep retrying; push onto the backlog.
    LCI_LOG_(debug, "rank %d: RTR to %d backlogged (pending %u)",
             runtime->rank(), peer_rank, pending_id);
    runtime->counters().add(counter_id_t::backlog_pushed);
    device->backlog().push([runtime, device, peer_rank, rdv_id, pending_id,
                            mr, mr_offset, span_id](backlog_action_t a) {
      if (a == backlog_action_t::cancel) {
        // The RTR was never sent, so no FIN will ever resolve the pending
        // receive: complete it here (unless a purge/timeout already did).
        fail_pending_recv(runtime, pending_id, errorcode_t::fatal_canceled);
        status_t s;
        s.error.code = errorcode_t::fatal_canceled;
        return s;
      }
      const status_t s =
          send_rtr(device, peer_rank, rdv_id, pending_id, mr, mr_offset);
      if (s.error.is_done()) trace::instant(trace::kind_t::rtr, span_id);
      return s;
    });
    device->ring_doorbell();
  }
}

void complete_eager_recv(runtime_impl_t* runtime, recv_entry_t* entry,
                         int peer_rank, tag_t tag, const char* data,
                         std::size_t size, status_t* out_status, bool signal) {
  status_t status;
  status.error.code = errorcode_t::done;
  status.rank = peer_rank;
  status.tag = tag;
  status.user_context = entry->user_context;
  if (!entry->list.empty()) {
    if (scatter(data, size, entry->list)) {
      status.buffer = buffer_t{nullptr, size};
    } else {
      status = make_fatal_status(runtime, errorcode_t::fatal_truncated,
                                 peer_rank, tag, nullptr, size,
                                 entry->user_context);
    }
  } else if (size <= entry->size) {
    std::memcpy(entry->buffer, data, size);
    status.buffer = buffer_t{entry->buffer, size};
  } else {
    // Truncation completes the receive with an error instead of throwing out
    // of the progress engine (which stranded the sender's matched packet).
    status = make_fatal_status(runtime, errorcode_t::fatal_truncated,
                               peer_rank, tag, entry->buffer, size,
                               entry->user_context);
  }
  if (entry->record) {
    // Clear the record's location before freeing the entry so a concurrent
    // sweep can never act on (or collide with a reused allocation of) the
    // entry pointer; the bucket removal that matched us already won the
    // arbitration, so this is bookkeeping, not a race.
    std::lock_guard<util::spinlock_t> guard(entry->record->lock);
    entry->record->engine = nullptr;
    entry->record->entry = nullptr;
    entry->record->state.store(op_record_t::st_terminal,
                               std::memory_order_release);
  }
  trace::end_op(entry->span, trace::kind_t::op_recv, trace::hist_t::post_recv,
                status.error.is_done()
                    ? 0
                    : static_cast<uint8_t>(status.error.code),
                peer_rank, tag, size);
  if (signal) signal_comp(entry->comp, status);
  if (out_status != nullptr) *out_status = status;
  delete entry;
}

// ---------------------------------------------------------------------------
// CQE handling
// ---------------------------------------------------------------------------

void device_impl_t::handle_recv(const net::cqe_t& cqe) {
  auto* packet = static_cast<packet_t*>(cqe.user_context);
  if (net().is_peer_down(cqe.peer_rank)) {
    // The sender died after this message reached our CQ: evaporate it, as if
    // it had been lost on the wire. Without this, traffic already queued
    // locally could resurrect a dead peer's messages after the purge ran.
    packet->pool->put(packet);
    return;
  }
  const auto* header = static_cast<const msg_header_t*>(cqe.buffer);
  const char* data =
      static_cast<const char*>(cqe.buffer) + sizeof(msg_header_t);
  const std::size_t data_size = cqe.length - sizeof(msg_header_t);
  const auto policy = static_cast<matching_policy_t>(header->policy);

  switch (header->kind) {
    case msg_header_t::eager_send: {
      matching_engine_impl_t* engine =
          runtime_->lookup_engine(header->engine_id);
      if (engine == nullptr)
        throw fatal_error_t("message names an unknown matching engine");
      packet->peer_rank = cqe.peer_rank;
      packet->payload_size = static_cast<uint32_t>(data_size);
      const auto key = engine->make_key(cqe.peer_rank, header->tag, policy);
      void* matched =
          engine->insert(key, packet, matching_engine_impl_t::type_t::send);
      if (matched == nullptr) return;  // unexpected: packet retained
      auto* entry = static_cast<recv_entry_t*>(matched);
      runtime_->counters().add(counter_id_t::recv_matched);
      trace::instant(trace::kind_t::match, entry->span.id, cqe.peer_rank,
                     header->tag, data_size);
      complete_eager_recv(runtime_, entry, cqe.peer_rank, header->tag, data,
                          data_size, nullptr, /*signal=*/true);
      packet->pool->put(packet);
      return;
    }
    case msg_header_t::eager_am: {
      comp_impl_t* comp = runtime_->lookup_rcomp(header->rcomp);
      if (comp == nullptr)
        throw fatal_error_t("active message names an unknown rcomp");
      runtime_->counters().add(counter_id_t::am_delivered);
      status_t status;
      status.error.code = errorcode_t::done;
      status.rank = cqe.peer_rank;
      status.tag = header->tag;
      if (runtime_->attr().am_deliver_packets) {
        // Deliver inside the packet (no copy); the consumer returns it with
        // release_am_packet (Sec. 3.3.1). The ref record written over the
        // already-parsed header makes the release path uniform with batch
        // slices, whose payloads are not header-adjacent to the packet.
        packet->refs.store(1, std::memory_order_relaxed);
        am_packet_ref_t ref;
        ref.owner = packet;
        ref.magic = am_packet_magic;
        std::memcpy(const_cast<char*>(data) - sizeof(ref), &ref, sizeof(ref));
        status.buffer = buffer_t{const_cast<char*>(data), data_size};
        comp->signal(status);
      } else {
        // Deliver in a plain buffer the upper layer frees with std::free.
        void* buf = std::malloc(data_size ? data_size : 1);
        std::memcpy(buf, data, data_size);
        status.buffer = buffer_t{buf, data_size};
        comp->signal(status);
        packet->pool->put(packet);
      }
      return;
    }
    case msg_header_t::rts: {
      matching_engine_impl_t* engine =
          runtime_->lookup_engine(header->engine_id);
      if (engine == nullptr)
        throw fatal_error_t("RTS names an unknown matching engine");
      packet->peer_rank = cqe.peer_rank;
      packet->payload_size = static_cast<uint32_t>(data_size);
      const auto key = engine->make_key(cqe.peer_rank, header->tag, policy);
      void* matched =
          engine->insert(key, packet, matching_engine_impl_t::type_t::send);
      if (matched == nullptr) return;  // no receive yet: packet retained
      auto* entry = static_cast<recv_entry_t*>(matched);
      runtime_->counters().add(counter_id_t::recv_matched);
      trace::instant(trace::kind_t::match, entry->span.id, cqe.peer_rank,
                     header->tag, data_size);
      rts_payload_t rts;
      std::memcpy(&rts, data, sizeof(rts));
      rdv_recv_t state;
      state.buffer = entry->buffer;
      state.size = entry->size;
      state.comp = entry->comp;
      state.user_context = entry->user_context;
      state.list = std::move(entry->list);
      state.record = std::move(entry->record);
      state.span = entry->span;
      if (state.record) {
        // The receive is leaving the matching engine for the pending-recv
        // table; blank its old location before the entry is freed (see
        // complete_eager_recv for why this must precede the delete).
        std::lock_guard<util::spinlock_t> guard(state.record->lock);
        state.record->engine = nullptr;
        state.record->entry = nullptr;
      }
      delete entry;
      start_rendezvous_recv(runtime_, this, cqe.peer_rank, header->tag,
                            rts.rdv_id, rts.size, std::move(state));
      packet->pool->put(packet);
      return;
    }
    case msg_header_t::rts_am: {
      comp_impl_t* comp = runtime_->lookup_rcomp(header->rcomp);
      if (comp == nullptr)
        throw fatal_error_t("rendezvous active message names an unknown rcomp");
      rts_payload_t rts;
      std::memcpy(&rts, data, sizeof(rts));
      rdv_recv_t state;
      state.size = static_cast<std::size_t>(rts.size);
      state.buffer = std::malloc(state.size ? state.size : 1);
      state.comp = comp;
      // The runtime owns the malloc until the payload is delivered at FIN
      // (where ownership passes to the AM consumer); a fatal handshake frees
      // it here instead of leaking.
      state.runtime_owned_buffer = true;
      // No posted receive exists for a rendezvous AM; open a fresh op span
      // covering RTS arrival -> FIN delivery.
      state.span = trace::begin(trace::kind_t::op_recv, cqe.peer_rank,
                                header->tag, state.size);
      start_rendezvous_recv(runtime_, this, cqe.peer_rank, header->tag,
                            rts.rdv_id, rts.size, std::move(state));
      packet->pool->put(packet);
      return;
    }
    case msg_header_t::rtr: {
      rtr_payload_t rtr;
      std::memcpy(&rtr, data, sizeof(rtr));
      rdv_send_t send;
      if (!runtime_->pending_sends().take(rtr.rdv_id, &send)) {
        // The send this RTR answers was canceled, timed out, or purged with
        // its peer: the handshake is legitimately orphaned. Drop it. (This
        // used to throw, which turned every canceled rendezvous into a
        // crash when the answer eventually arrived.)
        packet->pool->put(packet);
        return;
      }
      // Taking the pending entry is the arbitration point: from here the
      // write phase owns the completion and the handshake deadline is
      // disarmed (deadlines cover the handshake, not the bulk transfer).
      if (send.record)
        send.record->state.store(op_record_t::st_terminal,
                                 std::memory_order_release);
      if (rtr.mr_id == net::invalid_mr) {
        // Receiver refused the rendezvous (posted buffer too small). Fail
        // this send exactly once; the staged gather (if any) dies with
        // `send` when it goes out of scope.
        trace::end_op(send.span, trace::kind_t::op_rdv, trace::hist_t::post_rdv,
                      static_cast<uint8_t>(errorcode_t::fatal_truncated),
                      send.peer_rank, send.tag, send.size);
        signal_comp(send.comp,
                    make_fatal_status(runtime_, errorcode_t::fatal_truncated,
                                      send.peer_rank, send.tag, send.buffer,
                                      send.size, send.user_context));
        packet->pool->put(packet);
        return;
      }
      const void* src = send.staged ? send.staged.get() : send.buffer;
      auto* ctx = new op_ctx_t;
      ctx->kind = ctx_kind_t::rdv_write;
      ctx->comp = send.comp;
      ctx->user_context = send.user_context;
      ctx->buffer = send.buffer;
      ctx->size = send.size;
      ctx->rank = send.peer_rank;
      ctx->tag = send.tag;
      // Hand the op span to the write phase; it ends at the write CQE (or in
      // the attempt lambda's fatal/cancel arms).
      ctx->span = send.span;
      // Keep the staged gather alive until the write completes.
      char* staged = send.staged.release();
      const int peer = cqe.peer_rank;
      const net::mr_id_t mr = rtr.mr_id;
      const uint64_t mr_offset = rtr.mr_offset;
      const uint32_t imm = encode_fin_imm(rtr.pending_id);
      // Pick the write's shard once (by the send's key) and capture the
      // endpoint: a backlogged retry may run on a progress-engine thread
      // whose TLS pin would route differently.
      net::device_t* wire = &net_for(peer, send.tag);
      // Single owner of `staged` and `ctx` on every exit: retry keeps both
      // for the next attempt, done hands ctx to the write CQE and frees the
      // gather, fatal (including peer death mid-handshake) and cancel free
      // both and deliver the error to the user's comp (this path used to
      // leak ctx and drop the completion silently). Must not throw: the
      // backlog queue retires whatever status comes back.
      auto attempt = [this, peer, src, mr, mr_offset, imm, ctx, staged,
                      wire](backlog_action_t action) {
        status_t status;
        if (action == backlog_action_t::cancel) {
          delete[] staged;
          trace::end_op(ctx->span, trace::kind_t::op_rdv,
                        trace::hist_t::post_rdv,
                        static_cast<uint8_t>(errorcode_t::fatal_canceled),
                        ctx->rank, ctx->tag, ctx->size);
          signal_comp(ctx->comp,
                      make_fatal_status(runtime_, errorcode_t::fatal_canceled,
                                        ctx->rank, ctx->tag, ctx->buffer,
                                        ctx->size, ctx->user_context));
          delete ctx;
          status.error.code = errorcode_t::fatal_canceled;
          return status;
        }
        try {
          status.error = map_net_result(wire->post_write(
              peer, src, ctx->size, mr, mr_offset, /*notify=*/true, imm, ctx));
        } catch (const std::exception&) {
          status.error.code = errorcode_t::fatal;
        }
        if (status.error.is_retry()) return status;
        delete[] staged;
        if (!status.error.is_done()) {
          trace::end_op(ctx->span, trace::kind_t::op_rdv,
                        trace::hist_t::post_rdv,
                        static_cast<uint8_t>(status.error.code), ctx->rank,
                        ctx->tag, ctx->size);
          signal_comp(ctx->comp,
                      make_fatal_status(runtime_, status.error.code,
                                        ctx->rank, ctx->tag, ctx->buffer,
                                        ctx->size, ctx->user_context));
          delete ctx;
        }
        return status;
      };
      const status_t status = attempt(backlog_action_t::run);
      if (status.error.is_retry()) {
        LCI_LOG_(debug, "rank %d: rendezvous write to %d backlogged",
                 runtime_->rank(), cqe.peer_rank);
        runtime_->counters().add(counter_id_t::backlog_pushed);
        backlog_.push(attempt);
        ring_doorbell();
      }
      packet->pool->put(packet);
      return;
    }
    case msg_header_t::eager_batch:
      // Coalesced eager sub-messages; the walker owns the packet from here
      // (it is shared with AM consumers in packet-delivery mode).
      handle_batch_recv(cqe);
      return;
  }
  throw fatal_error_t("corrupt message header");
}

bool device_impl_t::handle_cqe(const net::cqe_t& cqe) {
  switch (cqe.op) {
    case net::op_t::send:
      // Eager sends complete at posting time (the buffer was copied); the
      // CQE itself needs no action.
      return false;
    case net::op_t::recv:
      handle_recv(cqe);
      return true;
    case net::op_t::write:
    case net::op_t::read: {
      if (cqe.user_context == nullptr) return false;
      auto* ctx = static_cast<op_ctx_t*>(cqe.user_context);
      status_t status;
      status.error.code = errorcode_t::done;
      status.rank = ctx->rank;
      status.tag = ctx->tag;
      status.buffer = buffer_t{ctx->buffer, ctx->size};
      status.user_context = ctx->user_context;
      // Only rendezvous writes carry a span (RMA ops have none); its end
      // here is the send-side post -> completion measurement.
      trace::end_op(ctx->span, trace::kind_t::op_rdv, trace::hist_t::post_rdv,
                    0, ctx->rank, ctx->tag, ctx->size);
      signal_comp(ctx->comp, status);
      delete ctx;
      return true;
    }
    case net::op_t::remote_write:
    case net::op_t::remote_read: {
      if (imm_is_fin(cqe.imm)) {
        rdv_recv_t state;
        if (!runtime_->pending_recvs().take(imm_fin_pending_id(cqe.imm),
                                            &state))
          return true;  // receive canceled/timed out/purged: orphaned FIN
        // Taking the pending entry wins the completion; disarm the record.
        if (state.record)
          state.record->state.store(op_record_t::st_terminal,
                                    std::memory_order_release);
        trace::instant(trace::kind_t::fin, state.span.id, state.peer_rank,
                       state.tag, state.size);
        runtime_->reg_release(state.mr);
        status_t status;
        status.error.code = errorcode_t::done;
        status.rank = state.peer_rank;
        status.tag = state.tag;
        status.user_context = state.user_context;
        if (!state.list.empty()) {
          // Buffer-list receive: scatter out of the runtime staging buffer.
          if (scatter(static_cast<const char*>(state.buffer), state.size,
                      state.list)) {
            status.buffer = buffer_t{nullptr, state.size};
          } else {
            status = make_fatal_status(runtime_, errorcode_t::fatal_truncated,
                                       state.peer_rank, state.tag, nullptr,
                                       state.size, state.user_context);
          }
          std::free(state.buffer);
        } else {
          status.buffer = buffer_t{state.buffer, state.size};
        }
        trace::end_op(state.span, trace::kind_t::op_recv,
                      trace::hist_t::post_recv,
                      status.error.is_done()
                          ? 0
                          : static_cast<uint8_t>(status.error.code),
                      state.peer_rank, state.tag, state.size);
        signal_comp(state.comp, status);
        return true;
      }
      // RMA-with-signal notification at the target.
      comp_impl_t* comp = runtime_->lookup_rcomp(imm_signal_rcomp(cqe.imm));
      if (comp != nullptr) {
        status_t status;
        status.error.code = errorcode_t::done;
        status.rank = cqe.peer_rank;
        status.tag = imm_signal_tag(cqe.imm);
        status.buffer = buffer_t{nullptr, cqe.length};
        comp->signal(status);
      }
      return true;
    }
  }
  return false;
}

bool device_impl_t::progress() {
  runtime_->counters().add(counter_id_t::progress_calls);
  const bool traced = trace::on() && trace::sampled();
  const uint64_t poll_start = traced ? trace::now_ns() : 0;
  bool advanced = false;
  // Failure lifecycle: react to newly dead peers (purge their queued state)
  // and expire operation deadlines. Both are no-op cheap on the fast path —
  // an epoch compare and an atomic next-deadline gate.
  advanced |= runtime_->check_peer_failures(this);
  advanced |= runtime_->deadline_sweep() > 0;
  // (3) Backlogged requests first: they are older than anything in the CQ.
  advanced |= backlog_.progress();
  // Flush aggregation slots that have aged past aggregation_flush_us (the
  // armed check is one relaxed load when coalescing is idle or off).
  if (has_armed_aggregation()) {
    const uint64_t now = now_ns();
    const uint64_t age_ns = agg_flush_us_ * 1000;
    if (now > age_ns) advanced |= flush_aggregation(-1, now - age_ns) > 0;
  }
  // (4) Poll every shard's CQ, one burst each. The burst is
  // runtime_attr_t::cq_poll_burst resolved against the fabric's poll burst at
  // device construction — and it is a *per-shard* clamp: a burst larger than
  // one shard's pending depth must not let that shard's traffic monopolize
  // the call. Every shard is polled on every call (so `advanced == false`
  // still means "nothing pending anywhere", which quiescence loops rely
  // on); only the *order* varies. A pinned thread starts with its own shard
  // — that is where its posts complete and where its inbound traffic lands
  // under symmetric pinning — and takes the siblings after; unpinned
  // threads rotate the starting shard so no shard's depth can monopolize
  // the burst budget. The rotation cursor is thread-local: a shared atomic
  // here would put one contended cache line back on every thread's poll
  // path, which is the very sharing the shards exist to remove.
  net::cqe_t cqes[max_cq_poll_burst];
  const std::size_t n = shards_.size();
  std::size_t start = 0;
  if (n > 1) {
    static thread_local std::size_t tls_poll_cursor = 0;
    const int pin = thread_shard_hint();
    start = pin >= 0 ? static_cast<std::size_t>(pin) % n
                     : tls_poll_cursor++ % n;
  }
  for (std::size_t k = 0; k < n; ++k) {
    const auto polled =
        shards_[(start + k) % n].net_device->poll_cq(cqes, cq_poll_burst_);
    for (std::size_t i = 0; i < polled.count; ++i) {
      // Accumulate with |= so every CQE is handled; `advanced` must report
      // only what handle_cqe says (the old `|| cqe.op != send` term claimed
      // progress for no-op completions, defeating callers that spin until
      // quiescence).
      advanced |= handle_cqe(cqes[i]);
    }
  }
  // (7) Keep the receive queue full.
  advanced |= replenish_preposts();
  if (traced)
    trace::hist_record(trace::hist_t::progress_poll,
                       trace::now_ns() - poll_start);
  return advanced;
}

}  // namespace lci::detail
