// Wire protocol of the LCI runtime (paper Sec. 4.3 / 4.4).
//
// Send-receive and active messages use three protocols by message size:
//   inject      (size <= max_inject_size): header+data assembled on the stack
//               and handed to the network, no packet consumed;
//   buffer-copy (size <= eager threshold): header+data staged in a packet;
//   zero-copy   (larger): RTS -> match -> RTR -> RDMA write with immediate
//               ("FIN") rendezvous.
// Put/get translate directly to network write/read; put-with-signal uses
// write-with-immediate, get-with-signal uses the simulated fabric's
// read-with-notification extension.
#pragma once

#include <cstdint>
#include <cstring>

#include "core/lci.hpp"

namespace lci::detail {

struct msg_header_t {
  enum kind_t : uint8_t {
    eager_send,   // matched against posted receives
    eager_am,     // delivered to the rcomp completion object
    rts,          // rendezvous request for a send-receive
    rts_am,       // rendezvous request for an active message
    rtr,          // rendezvous reply (ready to receive)
    eager_batch,  // coalesced sequence of eager_send/eager_am sub-messages
  };

  uint8_t kind = eager_send;
  uint8_t policy = 0;      // matching_policy_t used by the sender
  uint16_t engine_id = 0;  // matching engine the target should match in
  tag_t tag = 0;
  rcomp_t rcomp = rcomp_null;
  uint32_t reserved = 0;
};
static_assert(sizeof(msg_header_t) == 16);

// Sub-message header inside an eager_batch payload: the batch payload is a
// sequence of [batch_sub_header_t][data] entries packed back to back, each
// data block padded to 8-byte alignment so sub-headers stay aligned. The
// sub-header carries exactly the msg_header_t fields a single eager message
// would have carried, plus its payload size.
struct batch_sub_header_t {
  uint8_t kind = msg_header_t::eager_send;  // eager_send or eager_am
  uint8_t policy = 0;
  uint16_t engine_id = 0;
  uint32_t size = 0;  // payload bytes (unpadded)
  tag_t tag = 0;
  rcomp_t rcomp = rcomp_null;
};
static_assert(sizeof(batch_sub_header_t) == 16);

inline constexpr std::size_t batch_align = 8;
inline constexpr std::size_t batch_pad(std::size_t size) noexcept {
  return (size + batch_align - 1) & ~(batch_align - 1);
}
// Bytes one sub-message occupies inside a batch payload.
inline constexpr std::size_t batch_entry_bytes(std::size_t size) noexcept {
  return sizeof(batch_sub_header_t) + batch_pad(size);
}

struct rts_payload_t {
  uint64_t size = 0;     // total message size
  uint32_t rdv_id = 0;   // source-side pending-operation id
  uint32_t reserved = 0;
};

struct rtr_payload_t {
  uint32_t rdv_id = 0;      // echoed source-side id
  uint32_t pending_id = 0;  // target-side pending-receive id
  uint32_t mr_id = 0;       // registered target buffer
  uint32_t reserved = 0;
  // Offset of the receive buffer inside mr_id: a registration-cache hit may
  // serve an MR whose base lies below the posted buffer, and the sender must
  // direct its RDMA write at base + mr_offset, not the MR base.
  uint64_t mr_offset = 0;
};

// Immediate-data encoding (32 bits):
//   bit 31 = 1: rendezvous FIN; bits 0..30 carry the target pending id.
//   bit 31 = 0: RMA notification; bits 16..30 carry the tag (15 bits) and
//               bits 0..15 the rcomp. put/get-with-signal therefore require
//               rcomp < 2^16 and tag < 2^15 (documented API limit).
inline constexpr uint32_t imm_fin_flag = 0x80000000u;

inline uint32_t encode_fin_imm(uint32_t pending_id) {
  return imm_fin_flag | pending_id;
}
inline uint32_t encode_signal_imm(rcomp_t rcomp, tag_t tag) {
  return (static_cast<uint32_t>(tag & 0x7fffu) << 16) |
         static_cast<uint32_t>(rcomp & 0xffffu);
}
inline bool imm_is_fin(uint32_t imm) { return (imm & imm_fin_flag) != 0; }
inline uint32_t imm_fin_pending_id(uint32_t imm) {
  return imm & ~imm_fin_flag;
}
inline rcomp_t imm_signal_rcomp(uint32_t imm) { return imm & 0xffffu; }
inline tag_t imm_signal_tag(uint32_t imm) { return (imm >> 16) & 0x7fffu; }

}  // namespace lci::detail
