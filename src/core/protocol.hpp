// Wire protocol of the LCI runtime (paper Sec. 4.3 / 4.4).
//
// Send-receive and active messages use three protocols by message size:
//   inject      (size <= max_inject_size): header+data assembled on the stack
//               and handed to the network, no packet consumed;
//   buffer-copy (size <= eager threshold): header+data staged in a packet;
//   zero-copy   (larger): RTS -> match -> RTR -> RDMA write with immediate
//               ("FIN") rendezvous.
// Put/get translate directly to network write/read; put-with-signal uses
// write-with-immediate, get-with-signal uses the simulated fabric's
// read-with-notification extension.
#pragma once

#include <cstdint>

#include "core/lci.hpp"

namespace lci::detail {

struct msg_header_t {
  enum kind_t : uint8_t {
    eager_send,  // matched against posted receives
    eager_am,    // delivered to the rcomp completion object
    rts,         // rendezvous request for a send-receive
    rts_am,      // rendezvous request for an active message
    rtr,         // rendezvous reply (ready to receive)
  };

  uint8_t kind = eager_send;
  uint8_t policy = 0;      // matching_policy_t used by the sender
  uint16_t engine_id = 0;  // matching engine the target should match in
  tag_t tag = 0;
  rcomp_t rcomp = rcomp_null;
  uint32_t reserved = 0;
};
static_assert(sizeof(msg_header_t) == 16);

struct rts_payload_t {
  uint64_t size = 0;     // total message size
  uint32_t rdv_id = 0;   // source-side pending-operation id
  uint32_t reserved = 0;
};

struct rtr_payload_t {
  uint32_t rdv_id = 0;      // echoed source-side id
  uint32_t pending_id = 0;  // target-side pending-receive id
  uint32_t mr_id = 0;       // registered target buffer
  uint32_t reserved = 0;
};

// Immediate-data encoding (32 bits):
//   bit 31 = 1: rendezvous FIN; bits 0..30 carry the target pending id.
//   bit 31 = 0: RMA notification; bits 16..30 carry the tag (15 bits) and
//               bits 0..15 the rcomp. put/get-with-signal therefore require
//               rcomp < 2^16 and tag < 2^15 (documented API limit).
inline constexpr uint32_t imm_fin_flag = 0x80000000u;

inline uint32_t encode_fin_imm(uint32_t pending_id) {
  return imm_fin_flag | pending_id;
}
inline uint32_t encode_signal_imm(rcomp_t rcomp, tag_t tag) {
  return (static_cast<uint32_t>(tag & 0x7fffu) << 16) |
         static_cast<uint32_t>(rcomp & 0xffffu);
}
inline bool imm_is_fin(uint32_t imm) { return (imm & imm_fin_flag) != 0; }
inline uint32_t imm_fin_pending_id(uint32_t imm) {
  return imm & ~imm_fin_flag;
}
inline rcomp_t imm_signal_rcomp(uint32_t imm) { return imm & 0xffffu; }
inline tag_t imm_signal_tag(uint32_t imm) { return (imm >> 16) & 0x7fffu; }

}  // namespace lci::detail
