// Internal glue between the sim bootstrap and the runtime lifecycle.
#pragma once

#include <memory>

#include "core/lci.hpp"
#include "util/spinlock.hpp"

namespace lci::sim::detail_sim {

// Per-rank context shared by every thread bound to that rank.
struct rank_ctx_t {
  std::shared_ptr<net::fabric_t> fabric;
  int rank = 0;
  util::spinlock_t lock;           // guards g_runtime / g_refcount
  lci::runtime_t g_runtime{};      // the rank's global default runtime
  int g_refcount = 0;
};

// Binding of the calling thread; null when unbound.
binding_t& tls_binding();

// Binding of the calling thread. When unbound, consults the requested
// backend (runtime_attr_t::backend, whose default is LCI_BACKEND): sim
// creates an implicit single-rank world (so single-process quickstarts need
// no explicit bootstrap); shm/tcp attach the process-global binding for the
// rank described by the launcher environment, creating its fabric endpoint
// on first use (peer_timeout_us seeds its liveness config then — later
// runtimes share the first fabric, whose timeout wins).
binding_t ensure_binding(net::backend_t backend, uint64_t peer_timeout_us = 0);

// The process-global real-backend binding, or null if none was created.
// current_binding() falls back to this on a TLS miss so worker threads that
// never bound explicitly still reach the process's rank under shm/tcp.
binding_t process_binding_if_any();

}  // namespace lci::sim::detail_sim
