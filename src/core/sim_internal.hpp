// Internal glue between the sim bootstrap and the runtime lifecycle.
#pragma once

#include <memory>

#include "core/lci.hpp"
#include "util/spinlock.hpp"

namespace lci::sim::detail_sim {

// Per-rank context shared by every thread bound to that rank.
struct rank_ctx_t {
  std::shared_ptr<net::fabric_t> fabric;
  int rank = 0;
  util::spinlock_t lock;           // guards g_runtime / g_refcount
  lci::runtime_t g_runtime{};      // the rank's global default runtime
  int g_refcount = 0;
};

// Binding of the calling thread; null when unbound.
binding_t& tls_binding();

// Binding of the calling thread, creating an implicit single-rank world when
// unbound (so single-process quickstarts need no explicit bootstrap).
binding_t ensure_binding();

}  // namespace lci::sim::detail_sim
