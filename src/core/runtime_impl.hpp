// Internal runtime, device, backlog-queue, and rendezvous bookkeeping.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/comp_impl.hpp"
#include "core/counters.hpp"
#include "core/lci.hpp"
#include "core/matching.hpp"
#include "core/packet.hpp"
#include "core/progress_engine.hpp"
#include "core/protocol.hpp"
#include "net/net.hpp"
#include "net/reg_cache.hpp"
#include "util/cacheline.hpp"
#include "util/mpmc_array.hpp"
#include "util/spinlock.hpp"
#include "util/thread.hpp"

namespace lci::detail {

class device_impl_t;
struct recv_entry_t;

// Monotonic nanosecond clock used for operation deadlines.
inline uint64_t now_ns() noexcept {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The calling thread's shard pin (set via lci::pin_thread_shard, applied
// modulo each device's shard count); -1 = unpinned. Defined in device.cpp.
int thread_shard_hint() noexcept;

// How a backlogged operation is being invoked: `run` retries the submission;
// `cancel` tells the op it will never run again and must deliver
// fatal_canceled to its own completion object (or report nothing owed).
enum class backlog_action_t : uint8_t { run, cancel };

// ---------------------------------------------------------------------------
// Backlog queue (paper Sec. 4.1.5): holds communication requests that could
// not be submitted and cannot be bounced back to the user. Rarely used, so a
// simple locked deque suffices; the atomic flag keeps the progress engine
// from probing an empty queue.
// ---------------------------------------------------------------------------
class backlog_queue_t {
 public:
  // A backlogged operation: returns a status; retry-category => stay queued.
  // Done/posted/fatal all retire the entry — an op that can fail fatally
  // must deliver that error to its completion object itself (the queue has
  // no idea who to tell), and must not throw. Invoked with `cancel` (by
  // drain_abort) the op must not touch the network; it delivers
  // fatal_canceled itself and returns a non-retry status.
  using op_t = std::function<status_t(backlog_action_t)>;

  // Optional statistics sink: the owning device points this at its
  // runtime's counter block so pushes, retries, retirements, and the depth
  // high-water mark are accounted (null: standalone use, e.g. unit tests).
  void bind_counters(counter_block_t* counters) { counters_ = counters; }

  void push(op_t op) {
    // Park span: opened here, ended when the entry retires (or is aborted).
    // trace_id 0 when tracing is off or the entry was sampled out.
    entry_t entry{std::move(op),
                  trace::begin(trace::kind_t::backlog)};
    std::size_t depth;
    {
      std::lock_guard<util::spinlock_t> guard(lock_);
      queue_.push_back(std::move(entry));
      depth = queue_.size();
      nonempty_.store(true, std::memory_order_release);
    }
    if (counters_ != nullptr)
      counters_->record_max(counter_id_t::backlog_peak_depth, depth);
  }

  // Retries queued operations in order; stops at the first one that still
  // cannot be submitted. Returns true if any operation was retired.
  bool progress() {
    if (!nonempty_.load(std::memory_order_acquire)) return false;
    bool advanced = false;
    while (true) {
      entry_t entry;
      {
        std::lock_guard<util::spinlock_t> guard(lock_);
        if (queue_.empty()) {
          nonempty_.store(false, std::memory_order_release);
          return advanced;
        }
        entry = std::move(queue_.front());
        queue_.pop_front();
      }
      const status_t status = entry.op(backlog_action_t::run);
      if (status.error.is_retry()) {
        if (counters_ != nullptr)
          counters_->add(counter_id_t::backlog_retries);
        std::lock_guard<util::spinlock_t> guard(lock_);
        queue_.push_front(std::move(entry));
        return advanced;
      }
      trace::end(entry.span, trace::kind_t::backlog,
                 static_cast<uint8_t>(status.error.code));
      if (counters_ != nullptr) counters_->add(counter_id_t::backlog_retired);
      advanced = true;
    }
  }

  // Pops every queued operation and invokes it with `cancel`; each op
  // delivers fatal_canceled to its own completion object. Returns the number
  // of entries aborted. Only safe while no other thread can run progress()
  // on this queue (drain() calls it under progress-pause quiescence).
  std::size_t drain_abort() {
    std::deque<entry_t> taken;
    {
      std::lock_guard<util::spinlock_t> guard(lock_);
      taken.swap(queue_);
      nonempty_.store(false, std::memory_order_release);
    }
    for (auto& entry : taken) {
      entry.op(backlog_action_t::cancel);
      trace::end(entry.span, trace::kind_t::backlog,
                 static_cast<uint8_t>(errorcode_t::fatal_canceled));
      if (counters_ != nullptr) counters_->add(counter_id_t::backlog_retired);
    }
    return taken.size();
  }

  std::size_t size_approx() const {
    std::lock_guard<util::spinlock_t> guard(lock_);
    return queue_.size();
  }

 private:
  struct entry_t {
    op_t op;
    trace::span_t span;  // backlog park -> retire
  };

  mutable util::spinlock_t lock_;
  std::deque<entry_t> queue_;
  std::atomic<bool> nonempty_{false};
  counter_block_t* counters_ = nullptr;
};

// ---------------------------------------------------------------------------
// Rendezvous bookkeeping (runtime-wide: the RTR and FIN for one message can
// arrive on different devices than the RTS left from).
// ---------------------------------------------------------------------------
struct rdv_send_t {
  void* buffer = nullptr;
  std::size_t size = 0;
  comp_impl_t* comp = nullptr;
  void* user_context = nullptr;
  int peer_rank = -1;
  tag_t tag = 0;
  // Buffer-list sends stage a gathered copy here (see DESIGN.md: the
  // simulated fabric transfers one contiguous region per RDMA write).
  std::unique_ptr<char[]> staged;
  // Set when the op carries a deadline or a user handle (see op_record_t).
  std::shared_ptr<op_record_t> record;
  trace::span_t span;  // op span: rendezvous post -> completion
};

struct rdv_recv_t {
  void* buffer = nullptr;
  std::size_t size = 0;       // actual transfer size
  comp_impl_t* comp = nullptr;
  void* user_context = nullptr;
  int peer_rank = -1;
  tag_t tag = 0;
  net::mr_id_t mr = net::invalid_mr;
  bool runtime_owned_buffer = false;  // true for large active messages
  // Buffer-list receives land in `buffer` (runtime staging) and scatter into
  // `list` at FIN.
  std::vector<buffer_t> list;
  // Carried over from the posted receive's record (if any) when the RTS
  // matches, so cancel/timeout can still find the op in its new home.
  std::shared_ptr<op_record_t> record;
  // Carried over from the posted receive's entry (recv span) — or from a
  // fresh span for runtime-owned buffers (large active messages).
  trace::span_t span;
};

template <typename T>
class pending_table_t {
 public:
  uint32_t add(T state) {
    std::lock_guard<util::spinlock_t> guard(lock_);
    const uint32_t id = next_id_++ & 0x7fffffffu;  // ids fit FIN immediates
    map_.emplace(id, std::move(state));
    return id;
  }
  bool take(uint32_t id, T* out) {
    std::lock_guard<util::spinlock_t> guard(lock_);
    auto it = map_.find(id);
    if (it == map_.end()) return false;
    *out = std::move(it->second);
    map_.erase(it);
    return true;
  }
  std::size_t size() const {
    std::lock_guard<util::spinlock_t> guard(lock_);
    return map_.size();
  }
  // Removes every entry the predicate claims and moves it to `out`; the
  // caller then owns those handshakes exclusively (the table lock is the
  // arbitration point between the dead-peer purge and the RTR/FIN handlers).
  template <typename Pred>
  std::size_t take_if(Pred&& pred, std::vector<T>& out) {
    std::lock_guard<util::spinlock_t> guard(lock_);
    std::size_t taken = 0;
    for (auto it = map_.begin(); it != map_.end();) {
      if (pred(it->second)) {
        out.push_back(std::move(it->second));
        it = map_.erase(it);
        ++taken;
      } else {
        ++it;
      }
    }
    return taken;
  }

 private:
  mutable util::spinlock_t lock_;
  std::unordered_map<uint32_t, T> map_;
  uint32_t next_id_ = 1;
};

// Receive descriptor stored in the matching engine for posted receives.
struct recv_entry_t {
  void* buffer = nullptr;
  std::size_t size = 0;
  comp_impl_t* comp = nullptr;
  void* user_context = nullptr;
  int rank = -1;  // as posted (may be wildcarded by policy)
  tag_t tag = 0;
  std::vector<buffer_t> list;  // buffer-list receive (empty: single buffer)
  // Set when the op carries a deadline or a user handle (see op_record_t).
  std::shared_ptr<op_record_t> record;
  trace::span_t span;  // op span: recv post -> completion
};

// ---------------------------------------------------------------------------
// Tracked-operation records (failure lifecycle: deadline, cancel, drain).
//
// A record is created only for ops that asked for one (.deadline(us) or
// .op_handle(&op)), so the common posting path pays nothing. The record
// names where the op currently lives; completion ownership is decided at the
// op's *arbitration point* — the matching-engine bucket lock for queued
// receives, the pending-table take() for rendezvous handshakes, the
// live->executing state CAS for backlogged submissions — never by the record
// alone, so an op completes exactly once no matter how many of {match,
// cancel(), deadline sweep, dead-peer purge} race for it.
// ---------------------------------------------------------------------------
enum class op_kind_t : uint8_t { recv, rdv_send, rdv_recv, backlog, coalesced };

struct op_record_t {
  static constexpr uint8_t st_live = 0;
  static constexpr uint8_t st_executing = 1;  // backlog op mid-submission
  static constexpr uint8_t st_terminal = 2;   // completion delivered/forfeit
  std::atomic<uint8_t> state{st_live};
  // Errorcode of a fatal completion delivered through finish_tracked_op,
  // published before the terminal CAS. Advisory: lets the flush-time resolve
  // label the trace span of a sub-op whose completion the cancel/timeout path
  // won (the span handle itself lives in the pending entry, which only the
  // resolve can reach).
  std::atomic<uint8_t> terminal_code{0};

  // Guards the location fields (kind/engine/key/entry/rdv_id) across the
  // recv -> rdv_recv conversion that happens when an RTS matches a tracked
  // receive. Never held while taking a bucket or pending-table lock's
  // *owner* path — the lock order record -> arbitration point is safe
  // because the matching paths never lock the record at all.
  util::spinlock_t lock;
  op_kind_t kind = op_kind_t::recv;

  runtime_impl_t* runtime = nullptr;
  device_impl_t* device = nullptr;
  // recv kind: where the entry is queued.
  matching_engine_impl_t* engine = nullptr;
  matching_engine_impl_t::key_t key = 0;
  recv_entry_t* entry = nullptr;
  // rdv kinds: pending-table id (0 = not assigned yet).
  uint32_t rdv_id = 0;

  // Completion identity, so cancel/timeout can build the fatal status.
  comp_impl_t* comp = nullptr;
  void* user_context = nullptr;
  void* buffer = nullptr;
  std::size_t size = 0;
  int rank = -1;
  tag_t tag = 0;
  uint64_t deadline_ns = 0;  // 0 = no deadline (tracked for cancel only)
};

// ---------------------------------------------------------------------------
// Eager-message coalescing (docs/INTERNALS.md "Message coalescing"): one
// aggregation slot per (device, peer). Buffered sub-operations that owe a
// completion (allow_done=false, or tracked with a deadline/handle) park an
// agg_pending_t in the slot; the flush that posts the batch resolves them —
// done on a successful post, fatal_peer_down on a dead peer, fatal_canceled
// on a drain abort. Sub-ops posted with allow_done=true complete `done` at
// copy time and owe nothing. For tracked entries the record-state CAS is the
// arbitration point against cancel()/deadline-sweep, so each sub-op
// completes exactly once no matter who gets there first.
// ---------------------------------------------------------------------------
struct agg_pending_t {
  comp_impl_t* comp = nullptr;
  void* buffer = nullptr;
  std::size_t size = 0;
  tag_t tag = 0;
  void* user_context = nullptr;
  std::shared_ptr<op_record_t> record;  // set only for tracked sub-ops
  trace::span_t span;  // op span: coalesced sub-op post -> flush resolution
};

// Cache-line aligned: slots are indexed by (shard, peer) from concurrently
// posting threads; without the padding two peers' slots (or two shards'
// arrays) could share a line and turn independent appends into false sharing.
struct alignas(util::cache_line_size) agg_slot_t {
  util::spinlock_t lock;
  packet_t* packet = nullptr;  // staging packet; null = slot empty
  uint32_t bytes = 0;          // batch payload bytes used (headers + padding)
  uint32_t msgs = 0;
  // now_ns() of the first buffered sub-message; 0 = slot empty. Atomic so
  // the flush paths can peek for armed/aged slots without the lock.
  std::atomic<uint64_t> armed_ns{0};
  std::vector<agg_pending_t> pending;
  trace::span_t span;  // batch_slot span: first append -> flush/abort (lock)
};

// Context attached to network operations so completions can be dispatched.
enum class ctx_kind_t : uint8_t { rdv_write, rma_put, rma_get };
struct op_ctx_t {
  ctx_kind_t kind = ctx_kind_t::rma_put;
  comp_impl_t* comp = nullptr;
  void* user_context = nullptr;
  void* buffer = nullptr;
  std::size_t size = 0;
  int rank = -1;
  tag_t tag = 0;
  // Op span carried through the network operation: the rendezvous send span
  // (handed over at RTR time) or the RMA op span; ended at the CQE.
  trace::span_t span;
};

// ---------------------------------------------------------------------------
// Device
// ---------------------------------------------------------------------------

// Upper bound of runtime_attr_t::cq_poll_burst (sizes the progress loop's
// stack CQE array).
inline constexpr std::size_t max_cq_poll_burst = 64;

class device_impl_t {
 public:
  device_impl_t(runtime_impl_t* runtime, std::size_t prepost_depth,
                bool auto_progress = false);
  ~device_impl_t();
  device_impl_t(const device_impl_t&) = delete;
  device_impl_t& operator=(const device_impl_t&) = delete;

  runtime_impl_t* runtime() const noexcept { return runtime_; }
  // Shard 0's endpoint. Correct for fabric-wide queries (is_peer_down,
  // death_epoch, index) — failure state is shared by every endpoint of a
  // fabric — and for any post when the device is unsharded.
  net::device_t& net() noexcept { return *shards_[0].net_device; }
  net::device_t& net(std::size_t shard) noexcept {
    return *shards_[shard].net_device;
  }
  std::size_t nshards() const noexcept { return shards_.size(); }
  // VCI-style affinity routing (paper Sec. 4.2): a pinned thread uses its
  // own shard (private send resources, no coordination); unpinned threads
  // hash (rank, tag) so a given key stream always lands on the same shard —
  // per-key FIFO survives because one key never straddles shards.
  std::size_t route_shard(int rank, tag_t tag) const noexcept {
    const std::size_t n = shards_.size();
    if (n == 1) return 0;
    const int pin = thread_shard_hint();
    if (pin >= 0) return static_cast<std::size_t>(pin) % n;
    const uint64_t key =
        (static_cast<uint64_t>(static_cast<uint32_t>(rank)) << 32) |
        static_cast<uint64_t>(static_cast<uint32_t>(tag));
    // TLS memo of the last hashed route: an unpinned thread usually posts a
    // run of operations on one (rank, tag) stream, so the mix+mod is paid
    // once per stream change, not per post. Keyed on the shard count too —
    // one process can hold devices with different shard counts.
    struct route_cache_t {
      uint64_t key;
      std::size_t n;
      std::size_t shard;
      bool valid;
    };
    thread_local route_cache_t cache{};
    if (cache.valid && cache.key == key && cache.n == n) {
      counters_->add(counter_id_t::route_cache_hits);
      return cache.shard;
    }
    uint64_t h = key;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    cache = route_cache_t{key, n, static_cast<std::size_t>(h % n), true};
    return cache.shard;
  }
  net::device_t& net_for(int rank, tag_t tag) noexcept {
    return net(route_shard(rank, tag));
  }
  // Forced-retry / wire-drop diagnostics, summed over the shards.
  uint64_t injected_faults_total() const noexcept {
    uint64_t sum = 0;
    for (const auto& s : shards_) sum += s.net_device->injected_faults();
    return sum;
  }
  uint64_t wire_dropped_total() const noexcept {
    uint64_t sum = 0;
    for (const auto& s : shards_) sum += s.net_device->wire_dropped();
    return sum;
  }
  backlog_queue_t& backlog() noexcept { return backlog_; }
  std::size_t prepost_depth() const noexcept { return prepost_depth_; }
  bool auto_progress() const noexcept { return auto_progress_; }

  // The per-device wakeup hint (see progress_engine.hpp). Registered with
  // the net device at construction; the core's backlog-push sites ring it
  // directly so a sleeping engine thread retries queued work promptly.
  doorbell_impl_t& doorbell() noexcept { return doorbell_; }
  void ring_doorbell() noexcept { doorbell_.ring(); }

  bool progress();  // defined in progress.cpp

  // --- Eager-message coalescing (defined in coalesce.cpp) -------------------
  // Resolved policy for this device (runtime attrs with 0-defaults filled).
  bool aggregation_default() const noexcept { return agg_default_; }
  std::size_t agg_eager_max() const noexcept { return agg_eager_max_; }
  std::size_t agg_max_bytes() const noexcept { return agg_max_bytes_; }
  std::size_t agg_max_msgs() const noexcept { return agg_max_msgs_; }
  uint64_t agg_flush_us() const noexcept { return agg_flush_us_; }
  std::size_t cq_poll_burst() const noexcept { return cq_poll_burst_; }
  // True while any slot holds buffered sub-messages (bounds the engine's
  // condvar sleep so an armed slot cannot outwait its flush deadline).
  bool has_armed_aggregation() const noexcept {
    return armed_slots_.load(std::memory_order_acquire) > 0;
  }
  // True while any shard still buffers sub-messages for `rank` (rank < 0:
  // for anyone). Used by lci::flush to decide whether to keep retrying.
  bool has_armed_aggregation(int rank) const noexcept {
    if (armed_slots_.load(std::memory_order_acquire) == 0) return false;
    if (rank < 0) return true;
    for (const auto& s : shards_) {
      if (s.agg_slots[static_cast<std::size_t>(rank)].armed_ns.load(
              std::memory_order_acquire) != 0)
        return true;
    }
    return false;
  }
  // Single-poster bypass (runtime_attr_t::aggregation_bypass_single_poster):
  // true = skip runtime-default coalescing because only one thread has ever
  // posted agg-eligible traffic to this device. The first observation of a
  // second poster flips multi_poster_ permanently. A per-post explicit
  // .allow_aggregation(true) (override > 0) never bypasses.
  bool aggregation_bypass(int8_t per_post_override) noexcept {
    if (per_post_override > 0 || !agg_bypass_single_) return false;
    if (agg_multi_poster_.load(std::memory_order_relaxed)) return false;
    const int me = static_cast<int>(util::thread_id());
    int last = agg_last_poster_.load(std::memory_order_relaxed);
    if (last == me) return true;
    if (last < 0 && agg_last_poster_.compare_exchange_strong(
                        last, me, std::memory_order_relaxed))
      return true;
    agg_multi_poster_.store(true, std::memory_order_relaxed);
    return false;
  }
  // Appends one eager sub-message (eager_send or eager_am) to the peer's
  // slot, posting the current batch first when it would overflow. Returns
  // done (copy made, nothing owed), posted (completion deferred to the
  // flush), retry, or a fatal status.
  status_t agg_append(const post_args_t& args, uint8_t kind,
                      packet_pool_impl_t* pool, matching_engine_impl_t* engine,
                      const trace::span_t& post_span);
  // Posts armed batches (rank < 0: every slot; older_than_ns != 0: only
  // slots armed at or before that stamp). Returns batches posted.
  std::size_t flush_aggregation(int rank = -1, uint64_t older_than_ns = 0);
  // The matching-order rule: called before any non-aggregated message is
  // posted to `rank`. done = slot empty or batch posted; retry = the batch
  // could not go out, so the caller's message must bounce with retry too;
  // fatal_peer_down = the peer is dead (slot aborted). `shard` names the
  // shard the caller is about to post on — only that shard's slot can hold
  // earlier same-key traffic, since a key never straddles shards. Pass -1 to
  // flush the peer's slots on every shard (RTR / RMA-with-signal paths,
  // whose ordering obligation is per-peer, not per-key).
  errorcode_t flush_peer_for_ordering(int rank, int shard = -1);
  // Fails every buffered sub-op with `code` (exactly once, via the record
  // CAS for tracked entries) and discards slot contents. rank < 0 = all.
  std::size_t abort_aggregation(int rank, errorcode_t code);

 private:
  // One shard = one fabric endpoint (wire mailbox + CQ + send locks) plus
  // its own per-peer aggregation slots and pre-posted receives. Cache-line
  // aligned so concurrently posting threads on neighbouring shards never
  // false-share the shard descriptors.
  struct alignas(util::cache_line_size) shard_t {
    std::unique_ptr<net::device_t> net_device;
    std::unique_ptr<agg_slot_t[]> agg_slots;  // one per peer
  };

  bool replenish_preposts();
  bool handle_cqe(const net::cqe_t& cqe);
  void handle_recv(const net::cqe_t& cqe);
  void handle_batch_recv(const net::cqe_t& cqe);  // defined in coalesce.cpp
  agg_slot_t& agg_slot(std::size_t shard, int rank) noexcept {
    return shards_[shard].agg_slots[static_cast<std::size_t>(rank)];
  }
  // Posts the slot's batch on `net` (the endpoint of the shard the slot
  // belongs to); caller holds slot.lock. On ok (returns done) or peer_down
  // the slot's pending entries are detached into `resolved` — completions
  // are delivered by the caller *after* dropping the lock, since handlers
  // may re-enter the posting path — and the slot is cleared. On a retry code
  // the slot is left intact.
  errorcode_t post_batch_locked(agg_slot_t& slot, net::device_t& net, int rank,
                                std::vector<agg_pending_t>& resolved);
  // Discards the slot's contents (caller holds slot.lock), detaching the
  // pending entries into `out` for the caller to fail after unlock. `code`
  // labels the end of the slot's batch_slot trace span (done = flushed).
  void detach_slot_locked(agg_slot_t& slot, std::vector<agg_pending_t>& out,
                          errorcode_t code);

  runtime_impl_t* const runtime_;
  // Cached so header-inline paths (route_shard) can count without the
  // complete runtime_impl_t type; set in the constructor.
  counter_block_t* counters_ = nullptr;
  const std::size_t prepost_depth_;
  const bool auto_progress_;
  doorbell_impl_t doorbell_;
  std::vector<shard_t> shards_;
  backlog_queue_t backlog_;

  // armed_slots_ counts slots holding data across all shards so the
  // (default-off) fast paths stay a single relaxed load; the resolved
  // aggregation policy follows.
  std::atomic<int> armed_slots_{0};
  bool agg_default_ = false;
  bool agg_bypass_single_ = true;
  std::atomic<int> agg_last_poster_{-1};   // dense util::thread_id of poster 0
  std::atomic<bool> agg_multi_poster_{false};
  std::size_t agg_eager_max_ = 0;
  std::size_t agg_max_bytes_ = 0;
  std::size_t agg_max_msgs_ = 0;
  uint64_t agg_flush_us_ = 0;
  std::size_t cq_poll_burst_ = 32;
};

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------
class runtime_impl_t {
 public:
  runtime_impl_t(std::shared_ptr<net::fabric_t> fabric, int rank,
                 const runtime_attr_t& attr);
  ~runtime_impl_t();
  runtime_impl_t(const runtime_impl_t&) = delete;
  runtime_impl_t& operator=(const runtime_impl_t&) = delete;

  const runtime_attr_t& attr() const noexcept { return attr_; }
  int rank() const noexcept { return rank_; }
  int nranks() const noexcept { return nranks_; }
  net::context_t& net_context() noexcept { return *net_context_; }

  packet_pool_impl_t& default_pool() noexcept { return *default_pool_; }
  matching_engine_impl_t& default_engine() noexcept { return *default_engine_; }
  matching_engine_impl_t& coll_engine() noexcept { return *coll_engine_; }
  device_impl_t& default_device() noexcept { return *default_device_; }

  // Eager threshold: the largest user payload that fits a packet together
  // with the message header.
  std::size_t eager_threshold() const noexcept {
    return attr_.packet_size - sizeof(msg_header_t);
  }

  // Remote-completion registry (MPMC array: lock-free lookup on the AM path).
  rcomp_t register_rcomp(comp_impl_t* comp);
  void deregister_rcomp(rcomp_t rcomp);
  comp_impl_t* lookup_rcomp(rcomp_t rcomp) const;

  // Matching-engine registry (ids travel in message headers; default engine
  // is id 0, the collective engine id 1).
  uint16_t register_engine(matching_engine_impl_t* engine);
  void deregister_engine(uint16_t id);
  matching_engine_impl_t* lookup_engine(uint16_t id) const;

  pending_table_t<rdv_send_t>& pending_sends() noexcept {
    return pending_sends_;
  }
  pending_table_t<rdv_recv_t>& pending_recvs() noexcept {
    return pending_recvs_;
  }

  uint32_t next_collective_seq() noexcept {
    return coll_seq_.fetch_add(1, std::memory_order_relaxed);
  }

  detail::counter_block_t& counters() noexcept { return counters_; }

  // Registration bracket for the runtime's *internal* MRs (rendezvous
  // receive targets): served from the registration cache when one is
  // configured, direct fabric calls otherwise. User-facing register_memory
  // stays direct — its rmr token must stay valid until the user deregisters,
  // which an LRU cache cannot promise.
  net::reg_handle_t reg_acquire(void* base, std::size_t size) {
    if (reg_cache_ != nullptr) return reg_cache_->acquire(base, size);
    return {net_context_->register_memory(base, size), 0};
  }
  void reg_release(net::mr_id_t id) {
    if (reg_cache_ != nullptr)
      reg_cache_->release(id);
    else
      net_context_->deregister_memory(id);
  }
  net::reg_cache_t* reg_cache() noexcept { return reg_cache_.get(); }

  const net::config_t& net_config() const noexcept {
    return fabric_->config();
  }

  // Device registry: every live device of this runtime, so snapshot-time
  // statistics (fault-injection totals) can be summed across devices.
  void register_device(device_impl_t* device) {
    std::lock_guard<util::spinlock_t> guard(device_lock_);
    devices_.push_back(device);
  }
  void unregister_device(device_impl_t* device) {
    std::lock_guard<util::spinlock_t> guard(device_lock_);
    for (auto it = devices_.begin(); it != devices_.end(); ++it) {
      if (*it == device) {
        devices_.erase(it);
        break;
      }
    }
  }
  uint64_t injected_faults() const;        // defined in runtime.cpp
  uint64_t dropped_wire_messages() const;  // defined in runtime.cpp

  // Auto-progress engine (lazy: created on the first attach so runtimes that
  // never opt in pay nothing — no threads, no doorbell wiring). Defined in
  // runtime.cpp.
  void attach_progress_device(device_impl_t* device);
  void detach_progress_device(device_impl_t* device);
  progress_engine_t* progress_engine() noexcept {
    return progress_engine_.get();
  }

  // --- Failure lifecycle (defined in failure.cpp) ---------------------------
  net::fabric_t& fabric() noexcept { return *fabric_; }
  // Registers a record so the deadline sweep / drain can find it.
  void track_op(std::shared_ptr<op_record_t> record);
  // Completes a live tracked op with `code` if this caller wins the op's
  // arbitration point; returns true iff the completion was delivered here.
  bool finish_tracked_op(const std::shared_ptr<op_record_t>& record,
                         errorcode_t code);
  // Completes tracked ops whose deadline passed; returns how many.
  std::size_t deadline_sweep();
  // Compares the device's death epoch against the last one this runtime
  // handled; on a bump, purges matching-engine entries, pending rendezvous
  // handshakes, and tracked ops naming each newly dead peer. Returns true if
  // anything was purged. Called from every progress path; cheap when no
  // epoch changed.
  bool check_peer_failures(device_impl_t* device);
  // drain(): cooperative progress then force-kill; returns ops killed.
  std::size_t drain_device(device_impl_t* device, uint64_t timeout_us);

 private:
  std::size_t purge_dead_peer(int peer, bool everything);
  std::size_t force_kill_tracked(errorcode_t code);

 public:
  const runtime_attr_t attr_;
  std::shared_ptr<net::fabric_t> fabric_;
  std::unique_ptr<net::context_t> net_context_;
  // Declared after net_context_ (so it is destroyed first: its destructor
  // deregisters every resident entry through the context).
  std::unique_ptr<net::reg_cache_t> reg_cache_;
  const int rank_;
  const int nranks_;

  // Declared before the devices themselves so the registry outlives every
  // device (members are destroyed in reverse declaration order and device
  // destructors unregister here).
  mutable util::spinlock_t device_lock_;
  std::vector<device_impl_t*> devices_;  // guarded by device_lock_

  std::unique_ptr<packet_pool_impl_t> default_pool_;
  std::unique_ptr<matching_engine_impl_t> default_engine_;
  std::unique_ptr<matching_engine_impl_t> coll_engine_;
  std::unique_ptr<device_impl_t> default_device_;

  // Declared after default_device_ so it is destroyed first: engine threads
  // must stop before any device they service is torn down (the dtor also
  // stops it explicitly — device_impl_t dtors detach themselves, which needs
  // a live engine or none at all, never a half-destroyed one).
  util::spinlock_t engine_create_lock_;
  std::unique_ptr<progress_engine_t> progress_engine_;

  util::mpmc_array_t<comp_impl_t*> rcomp_registry_{64};
  util::spinlock_t rcomp_lock_;
  std::vector<rcomp_t> rcomp_freelist_;  // guarded by rcomp_lock_

  util::mpmc_array_t<matching_engine_impl_t*> engine_registry_{16};
  util::spinlock_t engine_lock_;
  std::vector<uint16_t> engine_freelist_;  // guarded by engine_lock_

  pending_table_t<rdv_send_t> pending_sends_;
  pending_table_t<rdv_recv_t> pending_recvs_;

  std::atomic<uint32_t> coll_seq_{0};
  detail::counter_block_t counters_;

  // Failure lifecycle state. tracked_count_ lets the sweep return without
  // touching op_lock_ in the (overwhelmingly common) no-tracked-ops case.
  util::spinlock_t op_lock_;
  std::vector<std::shared_ptr<op_record_t>> tracked_ops_;  // guarded by op_lock_
  std::atomic<std::size_t> tracked_count_{0};
  std::atomic<uint64_t> death_epoch_seen_{0};
  util::spinlock_t purge_lock_;       // serializes dead-peer purges
  std::vector<char> peer_purged_;     // guarded by purge_lock_
  std::atomic<uint64_t> next_deadline_ns_{UINT64_MAX};  // sweep fast-path gate
};

// Resolves optional-argument defaults for the posting/progress paths.
runtime_impl_t* resolve_runtime(runtime_t runtime);

// --------------------------------------------------------------------------
// Protocol helpers shared by the posting path (post.cpp) and the progress
// engine (progress.cpp). See Sec. 4.4: both paths can find a match in the
// matching engine and continue the rendezvous protocol.
// --------------------------------------------------------------------------

inline void signal_comp(comp_impl_t* comp, const status_t& status) {
  if (comp != nullptr) comp->signal(status);
}

inline error_t map_net_result(net::post_result_t result) {
  switch (result) {
    case net::post_result_t::ok:
      return error_t{errorcode_t::done};
    case net::post_result_t::retry_lock:
      return error_t{errorcode_t::retry_lock};
    case net::post_result_t::retry_full:
      return error_t{errorcode_t::retry_nomem};
    case net::post_result_t::retry_nobuf:
      return error_t{errorcode_t::retry_nopacket};
    case net::post_result_t::peer_down:
      return error_t{errorcode_t::fatal_peer_down};
  }
  return error_t{errorcode_t::retry};
}

// Takes a pending rendezvous handshake out of its table and completes it
// with `code` (deregistering MRs / freeing staging as needed). Returns false
// when the id was already consumed — the RTR/FIN/purge path that took it
// owns the completion. Defined in failure.cpp.
bool fail_pending_send(runtime_impl_t* runtime, uint32_t rdv_id,
                       errorcode_t code);
bool fail_pending_recv(runtime_impl_t* runtime, uint32_t pending_id,
                       errorcode_t code);
// Completes an already-taken handshake (shared by the fail_* helpers and the
// dead-peer purge, which batch-takes via take_if). Marks the record terminal.
void finish_failed_send(runtime_impl_t* runtime, rdv_send_t& send,
                        errorcode_t code);
void finish_failed_recv(runtime_impl_t* runtime, rdv_recv_t& recv,
                        errorcode_t code);

// Sends the RTR handshake for a matched rendezvous. `mr_offset` locates the
// receive buffer inside `mr` (nonzero when the registration cache served a
// wider interval). Returns done/retry.
status_t send_rtr(device_impl_t* device, int peer_rank, uint32_t rdv_id,
                  uint32_t pending_id, net::mr_id_t mr, uint64_t mr_offset);

// Continues a matched rendezvous on the receive side: registers the target
// buffer, records the pending receive, and sends the RTR (falling back to the
// device backlog when the network pushes back). If the incoming message is
// larger than the posted buffer, the receive completes with fatal_truncated
// and a refusal RTR (mr == net::invalid_mr) tells the sender to fail too.
void start_rendezvous_recv(runtime_impl_t* runtime, device_impl_t* device,
                           int peer_rank, tag_t tag, uint32_t rdv_id,
                           uint64_t total_size, rdv_recv_t state);

// Delivers an eager payload into a matched receive and signals its comp.
// Consumes (deletes) the entry. An oversized payload (posted buffer or
// buffer list too small) completes the receive with fatal_truncated instead
// of writing past the buffer.
void complete_eager_recv(runtime_impl_t* runtime, recv_entry_t* entry,
                         int peer_rank, tag_t tag, const char* data,
                         std::size_t size, status_t* out_status, bool signal);

// Builds the status delivered with a fatal completion and bumps comp_fatal
// plus the per-code failure counter (ops_canceled / ops_timed_out /
// peer_down_completions). Every fatal completion and every fatal status
// returned by a posting path goes through here, so those counters are exact.
status_t make_fatal_status(runtime_impl_t* runtime, errorcode_t code, int rank,
                           tag_t tag, void* buffer, std::size_t size,
                           void* user_context);

}  // namespace lci::detail
