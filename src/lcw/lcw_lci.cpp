// LCW backend over LCI: one LCI device (+ send/recv completion queues and a
// registered remote completion) per LCW device.
#include <cstdlib>
#include <vector>

#include "core/lci.hpp"
#include "lcw/backends.hpp"

namespace lcw::detail {

namespace {

class lci_device_t final : public device_t {
 public:
  lci_device_t(lci::runtime_t runtime, int index, bool auto_progress)
      : runtime_(runtime), index_(index) {
    device_ = lci::alloc_device_x()
                  .runtime(runtime_)
                  .auto_progress(auto_progress)();
    scq_ = lci::alloc_cq(runtime_);
    rcq_ = lci::alloc_cq(runtime_);
    rcomp_ = lci::register_rcomp(rcq_, runtime_);
  }

  ~lci_device_t() override {
    lci::deregister_rcomp(rcomp_, runtime_);
    lci::free_comp(&rcq_);
    lci::free_comp(&scq_);
    lci::free_device(&device_);
  }

  lci::rcomp_t rcomp() const { return rcomp_; }

  post_t post_am(int dst, void* buffer, std::size_t size, int tag) override {
    // Symmetric device layout: traffic from device i lands on the peer's
    // device i, whose rcq has the same rcomp id on every rank.
    const auto status = lci::post_am_x(dst, buffer, size, scq_, rcomp_)
                            .tag(static_cast<lci::tag_t>(tag))
                            .runtime(runtime_)
                            .device(device_)();
    return map(status);
  }

  post_t post_send(int dst, void* buffer, std::size_t size, int tag) override {
    const auto status =
        lci::post_send_x(dst, buffer, size, static_cast<lci::tag_t>(tag), scq_)
            .runtime(runtime_)
            .device(device_)();
    return map(status);
  }

  post_t post_recv(int src, void* buffer, std::size_t size, int tag) override {
    const auto status =
        lci::post_recv_x(src, buffer, size, static_cast<lci::tag_t>(tag), rcq_)
            .runtime(runtime_)
            .device(device_)
            .allow_done(false)();  // uniform completion through the rcq
    return map(status);
  }

  bool poll_send(request_t* out) override { return pop(scq_, out); }
  bool poll_recv(request_t* out) override { return pop(rcq_, out); }

  bool do_progress() override {
    return lci::progress_x().runtime(runtime_).device(device_)();
  }

 private:
  static post_t map(const lci::status_t& status) {
    if (status.error.is_done()) return post_t::done;
    if (status.error.is_posted()) return post_t::posted;
    // Fatal statuses (dead peer, cancellation, deadline) map to `failed` so
    // callers' retry loops terminate instead of spinning on a dead rank.
    if (status.error.is_fatal()) return post_t::failed;
    return post_t::retry;
  }

  static bool pop(lci::comp_t cq, request_t* out) {
    const lci::status_t status = lci::cq_pop(cq);
    // Fatal completions (peer death, cancel, deadline) are completions too:
    // they hand the buffer back and must drain, not vanish.
    if (!status.error.is_done() && !status.error.is_fatal()) return false;
    out->rank = status.rank;
    out->tag = static_cast<int>(status.tag);
    out->buffer = status.buffer.base;
    out->size = status.buffer.size;
    out->failed = status.error.is_fatal();
    return true;
  }

  lci::runtime_t runtime_;
  int index_;
  lci::device_t device_{};
  lci::comp_t scq_{};
  lci::comp_t rcq_{};
  lci::rcomp_t rcomp_ = lci::rcomp_null;
};

class lci_context_t final : public context_t {
 public:
  explicit lci_context_t(const config_t& config) {
    lci::runtime_attr_t attr;
    attr.packet_size = std::max<std::size_t>(4096, config.max_am_size + 64);
    attr.packet_size = std::max(attr.packet_size, config.eager_size);
    if (config.npackets != 0) {
      attr.npackets = config.npackets;
    } else {
      // Default pool bounded to ~64 MiB regardless of the packet size.
      attr.npackets = std::max<std::size_t>(
          1024, (64u << 20) / attr.packet_size);
    }
    // The paper's 64Ki-bucket default is per-process; with many simulated
    // ranks in one process a smaller table keeps memory reasonable while
    // preserving the low-load-factor fast path.
    attr.matching_engine_buckets = 8192;
    auto_progress_ = config.nprogress_threads > 0;
    if (auto_progress_) {
      attr.nprogress_threads =
          static_cast<std::size_t>(config.nprogress_threads);
    }
    attr.allow_aggregation = config.enable_aggregation;
    // Default flush-age 0 = "whatever accumulated since the last progress
    // poll": batches form between polls without the runtime's 100us timer
    // ever adding latency to this wrapper's poll-driven workloads. Callers
    // running windowed/streaming traffic can pass a small hold instead so
    // slots fill toward aggregation_max_msgs.
    if (config.enable_aggregation)
      attr.aggregation_flush_us = config.aggregation_flush_us;
    if (config.device_shards != 0) attr.device_shards = config.device_shards;
    runtime_ = lci::alloc_runtime(attr);
    devices_.reserve(static_cast<std::size_t>(config.ndevices));
    for (int i = 0; i < config.ndevices; ++i)
      devices_.push_back(
          std::make_unique<lci_device_t>(runtime_, i, auto_progress_));
  }

  ~lci_context_t() override {
    devices_.clear();
    lci::free_runtime(&runtime_);
  }

  backend_t backend() const override { return backend_t::lci; }
  int rank() const override { return lci::get_rank_me(runtime_); }
  int nranks() const override { return lci::get_rank_n(runtime_); }
  int ndevices() const override { return static_cast<int>(devices_.size()); }
  device_t* device(int index) override {
    return devices_[static_cast<std::size_t>(index)].get();
  }
  bool supports_send_recv() const override { return true; }
  bool auto_progress() const override { return auto_progress_; }
  counters_t counters() const override {
    const lci::counters_t c = lci::get_counters(runtime_);
    counters_t out;
    out.retry_lock = c.retry_lock;
    out.route_cache_hits = c.route_cache_hits;
    return out;
  }

 private:
  lci::runtime_t runtime_{};
  std::vector<std::unique_ptr<lci_device_t>> devices_;
  bool auto_progress_ = false;
};

}  // namespace

std::unique_ptr<context_t> make_lci_context(const config_t& config) {
  return std::make_unique<lci_context_t>(config);
}

}  // namespace lcw::detail
