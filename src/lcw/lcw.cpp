#include "lcw/lcw.hpp"

#include <stdexcept>

#include "lcw/backends.hpp"

namespace lcw {

const char* to_string(backend_t backend) {
  switch (backend) {
    case backend_t::lci:
      return "lci";
    case backend_t::mpi:
      return "mpi";
    case backend_t::mpix:
      return "mpix";
    case backend_t::gex:
      return "gex";
  }
  return "?";
}

backend_t backend_from_string(const std::string& name) {
  if (name == "lci") return backend_t::lci;
  if (name == "mpi") return backend_t::mpi;
  if (name == "mpix") return backend_t::mpix;
  if (name == "gex") return backend_t::gex;
  throw std::invalid_argument("unknown LCW backend: " + name);
}

std::unique_ptr<context_t> alloc_context(backend_t backend,
                                         const config_t& config) {
  switch (backend) {
    case backend_t::lci:
      return detail::make_lci_context(config);
    case backend_t::mpi:
      return detail::make_mpi_context(config, /*vci_extension=*/false);
    case backend_t::mpix:
      return detail::make_mpi_context(config, /*vci_extension=*/true);
    case backend_t::gex:
      return detail::make_gex_context(config);
  }
  throw std::invalid_argument("unknown LCW backend");
}

}  // namespace lcw
