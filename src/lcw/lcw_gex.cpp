// LCW backend over simgex: gex_AM_RequestMedium-style active messages on a
// shared endpoint. No send-receive (the paper's LCW omits it for GASNet-EX
// due to implementation complexity) and no resource replication.
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "baseline/simgex.hpp"
#include "lcw/backends.hpp"
#include "util/lcrq.hpp"

namespace lcw::detail {

namespace {

class gex_device_t final : public device_t {
 public:
  explicit gex_device_t(simgex::endpoint_t* endpoint) : endpoint_(endpoint) {
    handler_ = endpoint_->register_handler(
        [this](int src, const void* data, std::size_t size, uint32_t arg0) {
          // AM handlers must be short: copy out and enqueue.
          void* copy = std::malloc(size ? size : 1);
          std::memcpy(copy, data, size);
          recv_results_.push(
              request_t{src, static_cast<int>(arg0), copy, size});
        });
  }

  post_t post_am(int dst, void* buffer, std::size_t size, int tag) override {
    // gex_AM_RequestMedium blocks until injected; the source buffer is
    // reusable on return.
    endpoint_->am_request_medium(dst, handler_, buffer, size,
                                 static_cast<uint32_t>(tag));
    return post_t::done;
  }

  post_t post_send(int, void*, std::size_t, int) override {
    throw std::logic_error("lcw/gex: send-receive is not supported");
  }
  post_t post_recv(int, void*, std::size_t, int) override {
    throw std::logic_error("lcw/gex: send-receive is not supported");
  }

  bool poll_send(request_t*) override { return false; }

  bool poll_recv(request_t* out) override {
    if (auto r = recv_results_.try_pop()) {
      *out = *r;
      return true;
    }
    return false;
  }

  bool do_progress() override { return endpoint_->poll(); }

 private:
  simgex::endpoint_t* endpoint_;
  int handler_ = -1;
  lci::util::lcrq_t<request_t> recv_results_{256};
};

class gex_context_t final : public context_t {
 public:
  explicit gex_context_t(const config_t& config) {
    simgex::config_t gex_config;
    gex_config.max_medium = config.max_am_size;
    endpoint_ = std::make_unique<simgex::endpoint_t>(gex_config);
    device_ = std::make_unique<gex_device_t>(endpoint_.get());
  }

  backend_t backend() const override { return backend_t::gex; }
  int rank() const override { return endpoint_->rank(); }
  int nranks() const override { return endpoint_->size(); }
  int ndevices() const override { return 1; }  // no resource replication
  device_t* device(int) override { return device_.get(); }
  bool supports_send_recv() const override { return false; }

 private:
  std::unique_ptr<simgex::endpoint_t> endpoint_;
  std::unique_ptr<gex_device_t> device_;
};

}  // namespace

std::unique_ptr<context_t> make_gex_context(const config_t& config) {
  return std::make_unique<gex_context_t>(config);
}

}  // namespace lcw::detail
