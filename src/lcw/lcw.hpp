// LCW — the Lightweight Communication Wrapper (paper Sec. 5.2).
//
// "To ensure uniformity across different communication libraries, we build a
// simple layer (LCW) on top of LCI, MPI, and GASNet-EX and use it to write
// the microbenchmarks." This is that layer: non-blocking active messages and
// send-receive over four backends:
//
//   lci   — this repository's LCI (device per LCW device),
//   mpi   — simmpi with one VCI (standard MPI: one big lock),
//   mpix  — simmpi with one VCI per LCW device (MPICH VCI extension),
//   gex   — simgex (GASNet-EX: shared endpoint, AM only, no send-receive).
//
// Conventions (matching the paper's microbenchmarks):
//  * LCW devices are numbered 0..ndevices-1; callers direct an operation at a
//    device and use `tag == device index` so the mpix backend's tag→VCI
//    mapping is the identity (the paper sets mpi_assert_no_any_tag etc. for
//    the same reason).
//  * AM payloads delivered by poll_recv are malloc'd; the caller frees them
//    with std::free. Completed tagged receives report the caller's buffer.
//  * Dedicated-resource mode: each thread allocates (uses) its own device.
//    Shared-resource mode: every thread uses device 0 with ndevices == 1.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace lcw {

enum class backend_t { lci, mpi, mpix, gex };

const char* to_string(backend_t backend);
backend_t backend_from_string(const std::string& name);

// Completion record returned by the polling calls. `failed` marks an
// operation the backend terminated with a fatal error (peer death,
// cancellation, deadline) instead of completing normally; the buffer is
// returned to the caller but holds no delivered data.
struct request_t {
  int rank = -1;
  int tag = 0;
  void* buffer = nullptr;
  std::size_t size = 0;
  bool failed = false;
};

// Posting result: retry = resubmit later; done = completed immediately (the
// buffer is reusable, no completion will be reported); posted = a completion
// will appear on the send queue; failed = the operation can never complete
// (the destination is dead, or the backend raised a fatal error) — the buffer
// is back in the caller's hands and resubmitting would fail again.
enum class post_t { retry, done, posted, failed };

class device_t {
 public:
  virtual ~device_t() = default;

  virtual post_t post_am(int dst, void* buffer, std::size_t size, int tag) = 0;
  virtual post_t post_send(int dst, void* buffer, std::size_t size,
                           int tag) = 0;
  virtual post_t post_recv(int src, void* buffer, std::size_t size,
                           int tag) = 0;

  // Local completions of `posted` operations.
  virtual bool poll_send(request_t* out) = 0;
  // Delivered active messages (malloc'd payload) and completed receives.
  virtual bool poll_recv(request_t* out) = 0;

  virtual bool do_progress() = 0;
};

// Backend-health counters surfaced for benchmarks: zero on backends that
// have no equivalent (mpi, gex). retry_lock counts try-lock misses inside
// the backend's progress/posting paths — a lock-free receive path should
// hold it at zero.
struct counters_t {
  uint64_t retry_lock = 0;
  uint64_t route_cache_hits = 0;
};

class context_t {
 public:
  virtual ~context_t() = default;
  virtual backend_t backend() const = 0;
  virtual int rank() const = 0;
  virtual int nranks() const = 0;
  virtual int ndevices() const = 0;
  virtual device_t* device(int index) = 0;
  virtual bool supports_send_recv() const = 0;
  // True when the backend's devices are progressed by background threads
  // (config_t::nprogress_threads > 0 on a backend that supports it): callers
  // may skip do_progress() entirely; poll_send/poll_recv alone complete
  // traffic. do_progress() stays legal (mixed mode).
  virtual bool auto_progress() const { return false; }
  // Snapshot of the backend's health counters (approximate under
  // concurrency, like the underlying lci counters).
  virtual counters_t counters() const { return {}; }
};

struct config_t {
  int ndevices = 1;                 // forced to 1 by the mpi and gex backends
  std::size_t max_am_size = 8192;   // largest AM payload
  std::size_t npackets = 0;         // lci backend: 0 = runtime default
  // Eager/rendezvous switch-over. Applied to both the lci backend (packet
  // size) and the mpi backend (eager threshold) so protocol crossovers line
  // up in comparisons. 0 = backend defaults.
  std::size_t eager_size = 0;
  // mpi/mpix: pre-post AM receive buffers at context creation. Turn off for
  // pure send-receive workloads — a wildcard AM pre-post would otherwise
  // steal tagged messages (MPI's ordered wildcard matching).
  bool enable_am = true;
  // lci backend: number of background progress threads servicing this
  // context's devices. 0 (default) keeps progress explicit via do_progress();
  // > 0 turns on the runtime's auto-progress engine (context_t::auto_progress
  // reports true) and workers only need the poll_* calls. Other backends
  // ignore this.
  int nprogress_threads = 0;
  // lci backend: coalesce small eager sends/AMs into per-peer batches
  // (lci runtime_attr_t::allow_aggregation). Other backends ignore this.
  bool enable_aggregation = false;
  // lci backend, with enable_aggregation: how long (microseconds) progress
  // may hold an armed batch before flushing it. 0 (default) flushes whatever
  // accumulated on every progress poll — no added latency, batches only form
  // between polls. A small positive hold lets slots fill toward
  // aggregation_max_msgs under windowed/streaming traffic at the cost of a
  // bounded delivery delay (the classic parcel-coalescing trade).
  uint64_t aggregation_flush_us = 0;
  // lci backend: internal shards per device (lci runtime_attr_t::
  // device_shards) — each shard owns its own network endpoint and
  // aggregation slots, and threads can pin themselves to a shard with
  // lci::pin_thread_shard. 0 = runtime default. Other backends ignore this.
  std::size_t device_shards = 0;
};

// Collective call: every rank must allocate its context before any traffic
// flows (resource registrations must line up across ranks).
std::unique_ptr<context_t> alloc_context(backend_t backend,
                                         const config_t& config = {});

}  // namespace lcw
