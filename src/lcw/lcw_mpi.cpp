// LCW backend over simmpi: "mpi" = one VCI (standard MPI, one big lock),
// "mpix" = one VCI per LCW device (the MPICH VCI extension). Active messages
// are MPI_Isend against pre-posted MPI_Irecv buffers, exactly the strategy
// the paper's LCW uses.
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <list>
#include <mutex>
#include <vector>

#include "baseline/simmpi.hpp"
#include "lcw/backends.hpp"
#include "util/lcrq.hpp"
#include "util/spinlock.hpp"

namespace lcw::detail {

namespace {

constexpr std::size_t am_prepost_depth = 128;

class mpi_context_t;

class mpi_device_t final : public device_t {
 public:
  mpi_device_t(simmpi::engine_t* engine, int index, std::size_t max_am,
               bool enable_am_preposts)
      : engine_(engine), index_(index), max_am_(max_am) {
    if (enable_am_preposts) {
      for (std::size_t i = 0; i < am_prepost_depth; ++i) {
        am_buffers_.push_back(std::make_unique<char[]>(max_am_));
        post_am_prepost(am_buffers_.back().get());
      }
    }
  }

  ~mpi_device_t() override {
    // Outstanding requests reference engine state; callers quiesce first.
  }

  post_t post_am(int dst, void* buffer, std::size_t size, int tag) override {
    assert(tag_routes_here(tag));
    simmpi::request_t req = engine_->isend(buffer, size, dst, tag);
    simmpi::status_t status;
    if (engine_->test_nopoll(req, &status)) return post_t::done;
    track(sends_, sends_lock_, tracked_t{req, buffer, /*am_prepost=*/false});
    return post_t::posted;
  }

  post_t post_send(int dst, void* buffer, std::size_t size, int tag) override {
    return post_am(dst, buffer, size, tag);  // same isend path
  }

  post_t post_recv(int src, void* buffer, std::size_t size, int tag) override {
    assert(tag_routes_here(tag));
    simmpi::request_t req = engine_->irecv(buffer, size, src, tag);
    simmpi::status_t status;
    if (engine_->test_nopoll(req, &status)) {
      recv_results_.push(request_t{status.source, status.tag, buffer,
                                   status.count});
      return post_t::posted;  // uniform completion through poll_recv
    }
    track(recvs_, recvs_lock_, tracked_t{req, buffer, false});
    return post_t::posted;
  }

  bool poll_send(request_t* out) override {
    if (auto r = send_results_.try_pop()) {
      *out = *r;
      return true;
    }
    return false;
  }

  bool poll_recv(request_t* out) override {
    if (auto r = recv_results_.try_pop()) {
      *out = *r;
      return true;
    }
    return false;
  }

  bool do_progress() override {
    engine_->progress_vci(engine_->nvci() > 1 ? index_ : 0);
    bool advanced = false;
    advanced |= sweep(sends_, sends_lock_, /*is_recv=*/false);
    advanced |= sweep(recvs_, recvs_lock_, /*is_recv=*/true);
    advanced |= sweep(am_preposts_, am_lock_, /*is_recv=*/true);
    return advanced;
  }

 private:
  struct tracked_t {
    simmpi::request_t request;
    void* buffer;
    bool am_prepost;
  };

  bool tag_routes_here(int tag) const {
    return engine_->nvci() == 1 || engine_->vci_of_tag(tag) == index_;
  }

  void post_am_prepost(char* buffer) {
    // One VCI (mpi backend): wildcard tag; multiple VCIs (mpix): the tag is
    // the device index, matching the benchmarks' tag convention.
    const int tag = engine_->nvci() == 1 ? simmpi::ANY_TAG : index_;
    simmpi::request_t req =
        engine_->irecv(buffer, max_am_, simmpi::ANY_SOURCE, tag);
    track(am_preposts_, am_lock_, tracked_t{req, buffer, true});
  }

  static void track(std::list<tracked_t>& list, lci::util::spinlock_t& lock,
                    tracked_t tracked) {
    std::lock_guard<lci::util::spinlock_t> guard(lock);
    list.push_back(tracked);
  }

  // Tests tracked requests; completed ones move to the result queues. The
  // per-device "replicated request pool" mirrors the paper's mpix setup.
  bool sweep(std::list<tracked_t>& list, lci::util::spinlock_t& lock,
             bool is_recv) {
    std::lock_guard<lci::util::spinlock_t> guard(lock);
    bool advanced = false;
    for (auto it = list.begin(); it != list.end();) {
      simmpi::status_t status;
      if (!engine_->test_nopoll(it->request, &status)) {
        ++it;
        continue;
      }
      advanced = true;
      if (it->am_prepost) {
        // Hand out a malloc'd copy (LCW AM convention) and re-post.
        void* copy = std::malloc(status.count ? status.count : 1);
        std::memcpy(copy, it->buffer, status.count);
        recv_results_.push(
            request_t{status.source, status.tag, copy, status.count});
        char* buffer = static_cast<char*>(it->buffer);
        it = list.erase(it);
        const int tag = engine_->nvci() == 1 ? simmpi::ANY_TAG : index_;
        simmpi::request_t req =
            engine_->irecv(buffer, max_am_, simmpi::ANY_SOURCE, tag);
        list.push_back(tracked_t{req, buffer, true});
      } else {
        auto& results = is_recv ? recv_results_ : send_results_;
        results.push(
            request_t{status.source, status.tag, it->buffer, status.count});
        it = list.erase(it);
      }
    }
    return advanced;
  }

  simmpi::engine_t* engine_;
  const int index_;
  const std::size_t max_am_;

  std::vector<std::unique_ptr<char[]>> am_buffers_;
  std::list<tracked_t> am_preposts_;
  lci::util::spinlock_t am_lock_;
  std::list<tracked_t> sends_;
  lci::util::spinlock_t sends_lock_;
  std::list<tracked_t> recvs_;
  lci::util::spinlock_t recvs_lock_;

  lci::util::lcrq_t<request_t> send_results_{256};
  lci::util::lcrq_t<request_t> recv_results_{256};
};

class mpi_context_t final : public context_t {
 public:
  mpi_context_t(const config_t& config, bool vci_extension)
      : vci_(vci_extension) {
    simmpi::config_t mpi_config;
    mpi_config.nvci = vci_extension ? config.ndevices : 1;
    if (config.eager_size != 0)
      mpi_config.eager_threshold = config.eager_size;
    engine_ = std::make_unique<simmpi::engine_t>(mpi_config);
    const int ndevices = vci_extension ? config.ndevices : 1;
    for (int i = 0; i < ndevices; ++i) {
      devices_.push_back(std::make_unique<mpi_device_t>(
          engine_.get(), i, config.max_am_size, config.enable_am));
    }
  }

  backend_t backend() const override {
    return vci_ ? backend_t::mpix : backend_t::mpi;
  }
  int rank() const override { return engine_->rank(); }
  int nranks() const override { return engine_->size(); }
  int ndevices() const override { return static_cast<int>(devices_.size()); }
  device_t* device(int index) override {
    return devices_[static_cast<std::size_t>(index)].get();
  }
  bool supports_send_recv() const override { return true; }

 private:
  bool vci_;
  std::unique_ptr<simmpi::engine_t> engine_;
  std::vector<std::unique_ptr<mpi_device_t>> devices_;
};

}  // namespace

std::unique_ptr<context_t> make_mpi_context(const config_t& config,
                                            bool vci_extension) {
  return std::make_unique<mpi_context_t>(config, vci_extension);
}

}  // namespace lcw::detail
