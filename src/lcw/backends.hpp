// Internal factory hooks for the LCW backends.
#pragma once

#include <memory>

#include "lcw/lcw.hpp"

namespace lcw::detail {

std::unique_ptr<context_t> make_lci_context(const config_t& config);
std::unique_ptr<context_t> make_mpi_context(const config_t& config,
                                            bool vci_extension);
std::unique_ptr<context_t> make_gex_context(const config_t& config);

}  // namespace lcw::detail
