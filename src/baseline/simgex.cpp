#include "baseline/simgex.hpp"

#include <cassert>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "core/lci.hpp"
#include "core/sim_internal.hpp"
#include "util/backoff.hpp"
#include "util/spinlock.hpp"

namespace simgex {

namespace net = lci::net;

namespace {
struct am_header_t {
  int32_t handler = 0;
  uint32_t arg0 = 0;
};
}  // namespace

struct endpoint_t::impl_t {
  std::unique_ptr<net::context_t> context;
  std::unique_ptr<net::device_t> device;
  std::vector<handler_fn_t> handlers;

  // The endpoint's two locks: injection and poll.
  lci::util::spinlock_t inject_lock;
  lci::util::spinlock_t poll_lock;

  std::size_t buffer_size = 0;
  std::size_t prepost_target = 0;
  lci::util::spinlock_t buffer_lock;
  std::vector<std::unique_ptr<char[]>> buffer_storage;  // guarded by buffer_lock
  std::deque<char*> free_buffers;                       // guarded by buffer_lock

  char* get_buffer() {
    std::lock_guard<lci::util::spinlock_t> guard(buffer_lock);
    if (free_buffers.empty()) {
      buffer_storage.push_back(std::make_unique<char[]>(buffer_size));
      return buffer_storage.back().get();
    }
    char* buf = free_buffers.back();
    free_buffers.pop_back();
    return buf;
  }
  void put_buffer(char* buf) {
    std::lock_guard<lci::util::spinlock_t> guard(buffer_lock);
    free_buffers.push_back(buf);
  }

  void replenish() {
    while (device->preposted_recvs() < prepost_target) {
      char* buf = get_buffer();
      if (device->post_recv(buf, buffer_size, buf) != net::post_result_t::ok) {
        put_buffer(buf);
        break;
      }
    }
  }
};

endpoint_t::endpoint_t(std::shared_ptr<lci::net::fabric_t> fabric, int rank,
                       const config_t& config)
    : fabric_(std::move(fabric)),
      rank_(rank),
      nranks_(fabric_->nranks()),
      config_(config),
      impl_(std::make_unique<impl_t>()) {
  impl_->context = fabric_->create_context(rank);
  impl_->device = impl_->context->create_device();
  impl_->buffer_size = config_.max_medium + sizeof(am_header_t);
  impl_->prepost_target = config_.prepost_depth;
  impl_->replenish();
}

namespace {
lci::sim::binding_t require_binding() {
  auto binding = lci::sim::current_binding();
  if (!binding)
    throw std::runtime_error("simgex: thread has no sim rank binding");
  return binding;
}
}  // namespace

endpoint_t::endpoint_t(const config_t& config)
    : endpoint_t(require_binding()->fabric, require_binding()->rank, config) {}

endpoint_t::~endpoint_t() = default;

int endpoint_t::register_handler(handler_fn_t fn) {
  impl_->handlers.push_back(std::move(fn));
  return static_cast<int>(impl_->handlers.size()) - 1;
}

void endpoint_t::am_request_medium(int dst, int handler, const void* data,
                                   std::size_t size, uint32_t arg0) {
  if (size > config_.max_medium)
    throw std::runtime_error("simgex: payload exceeds the medium AM limit");
  char* staging = impl_->get_buffer();
  am_header_t header;
  header.handler = handler;
  header.arg0 = arg0;
  std::memcpy(staging, &header, sizeof(header));
  std::memcpy(staging + sizeof(header), data, size);

  lci::util::backoff_t backoff;
  while (true) {
    net::post_result_t result;
    {
      std::lock_guard<lci::util::spinlock_t> guard(impl_->inject_lock);
      result = impl_->device->post_send(dst, staging, sizeof(header) + size, 0,
                                        nullptr);
    }
    if (result == net::post_result_t::ok) break;
    if (result == net::post_result_t::peer_down) {
      // A dead target can never accept; spinning here would hang the caller
      // (GASNet's blocking-injection semantics have no failure return).
      impl_->put_buffer(staging);
      throw std::runtime_error("simgex: AM request to a dead rank");
    }
    // Injection back-pressured: poll (GASNet semantics) and retry.
    poll();
    backoff.spin();
  }
  impl_->put_buffer(staging);
}

bool endpoint_t::poll() {
  if (!impl_->poll_lock.try_lock()) return false;  // someone else is polling
  net::cqe_t cqes[16];
  const auto polled = impl_->device->poll_cq(cqes, 16);
  bool processed = false;
  for (std::size_t i = 0; i < polled.count; ++i) {
    const net::cqe_t& cqe = cqes[i];
    if (cqe.op != net::op_t::recv) continue;
    processed = true;
    char* buf = static_cast<char*>(cqe.user_context);
    am_header_t header;
    std::memcpy(&header, buf, sizeof(header));
    const char* data = buf + sizeof(header);
    const std::size_t data_size = cqe.length - sizeof(header);
    assert(header.handler >= 0 &&
           static_cast<std::size_t>(header.handler) < impl_->handlers.size());
    // Handlers run inside the progress engine (GASNet AM semantics).
    impl_->handlers[static_cast<std::size_t>(header.handler)](
        cqe.peer_rank, data, data_size, header.arg0);
    impl_->put_buffer(buf);
  }
  impl_->replenish();
  impl_->poll_lock.unlock();
  return processed;
}

}  // namespace simgex
