// simmpi — an MPI-like baseline engine over the simulated fabric.
//
// Stand-in for "standard MPI" and "MPICH with the VCI extension" in the
// paper's evaluation (Sec. 5). It deliberately reproduces the structural
// properties the paper identifies as the sources of MPI's multithreaded
// penalty (Sec. 2.2):
//
//  * a global critical section: every operation (post, test, wait, progress)
//    acquires the engine's lock — per *VCI*, matching MPICH's design where
//    the legacy single-VCI build serializes everything and the VCI extension
//    replicates the lock together with the network resources;
//  * centralized in-order matching with full wildcard support (ANY_SOURCE /
//    ANY_TAG): posted receives and unexpected messages live in ordered lists
//    scanned linearly, exactly the structure hashtable-based matching cannot
//    replace while MPI's ordering guarantees hold;
//  * progress as a side effect of test/wait (plus an explicit progress()
//    for benchmark loops).
//
// The VCI extension maps an operation to VCI `tag % nvci` (mirroring MPICH's
// communicator/tag mapping); wildcard-tag receives are only legal with a
// single VCI, as in MPICH.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "net/net.hpp"

namespace simmpi {

inline constexpr int ANY_SOURCE = -1;
inline constexpr int ANY_TAG = -1;

struct status_t {
  int source = ANY_SOURCE;
  int tag = ANY_TAG;
  std::size_t count = 0;
};

namespace detail {
struct request_impl_t;
struct vci_t;
}  // namespace detail

using request_t = detail::request_impl_t*;

struct config_t {
  int nvci = 1;
  std::size_t eager_threshold = 16384;
  std::size_t prepost_depth = 256;
};

class engine_t {
 public:
  // Builds on an explicit fabric/rank, or (second form) on the calling
  // thread's sim binding.
  engine_t(std::shared_ptr<lci::net::fabric_t> fabric, int rank,
           const config_t& config = {});
  explicit engine_t(const config_t& config = {});
  ~engine_t();
  engine_t(const engine_t&) = delete;
  engine_t& operator=(const engine_t&) = delete;

  int rank() const noexcept { return rank_; }
  int size() const noexcept { return nranks_; }
  int nvci() const noexcept { return static_cast<int>(vcis_.size()); }
  int vci_of_tag(int tag) const noexcept {
    return tag < 0 ? 0 : tag % static_cast<int>(vcis_.size());
  }

  // Nonblocking operations; the returned request is freed by the test/wait
  // that observes completion.
  request_t isend(const void* buffer, std::size_t size, int dst, int tag);
  request_t irecv(void* buffer, std::size_t size, int src, int tag);

  bool test(request_t request, status_t* status = nullptr);
  // Completion check without the progress side effect — the analogue of
  // testing a request inside an MPI_Testsome sweep where the implementation
  // amortizes one progress pass over many requests.
  bool test_nopoll(request_t request, status_t* status = nullptr);
  void wait(request_t request, status_t* status = nullptr);

  // Blocking convenience wrappers.
  void send(const void* buffer, std::size_t size, int dst, int tag);
  void recv(void* buffer, std::size_t size, int src, int tag,
            status_t* status = nullptr);

  // Explicit progress (benchmark loops); drives one VCI or all.
  void progress();
  void progress_vci(int vci);

 private:
  std::shared_ptr<lci::net::fabric_t> fabric_;
  std::unique_ptr<lci::net::context_t> context_;
  int rank_ = 0;
  int nranks_ = 1;
  config_t config_;
  std::vector<std::unique_ptr<detail::vci_t>> vcis_;
};

}  // namespace simmpi
