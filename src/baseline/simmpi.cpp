#include "baseline/simmpi.hpp"

#include <atomic>
#include <cassert>
#include <cstring>
#include <deque>
#include <list>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "core/lci.hpp"           // sim binding for the convenience ctor
#include "core/sim_internal.hpp"
#include "util/backoff.hpp"

namespace simmpi {
namespace detail {

namespace net = lci::net;

struct msg_header_t {
  enum kind_t : uint8_t { eager, rts, rtr };
  uint8_t kind = eager;
  int32_t tag = 0;
  uint32_t rdv_or_pending = 0;  // rts: sender rdv id; rtr: echoed rdv id
  uint32_t pending_id = 0;      // rtr: target pending id
  uint32_t mr_id = 0;           // rtr: target buffer registration
  uint64_t size = 0;            // rts: total message size
};

struct request_impl_t {
  // Written under the owning VCI's lock; read lock-free by test_nopoll
  // request sweeps (the "replicated request pool" polling pattern).
  std::atomic<bool> done{false};
  int source = ANY_SOURCE;
  int tag = ANY_TAG;
  std::size_t count = 0;
  // receive bookkeeping
  void* buffer = nullptr;
  std::size_t capacity = 0;
  int want_src = ANY_SOURCE;
  int want_tag = ANY_TAG;
  vci_t* vci = nullptr;
};

struct unexpected_t {
  msg_header_t header;
  int src = 0;
  std::vector<char> payload;  // eager payload (owned copy)
};

struct pending_send_t {
  request_impl_t* request = nullptr;
  const void* buffer = nullptr;
  std::size_t size = 0;
};

struct pending_recv_t {
  request_impl_t* request = nullptr;
  net::mr_id_t mr = net::invalid_mr;
};

struct vci_t {
  // THE lock: MPI's global critical section (replicated per VCI).
  std::mutex big_lock;

  std::unique_ptr<net::device_t> device;
  net::context_t* context = nullptr;
  std::size_t eager_threshold = 16384;
  std::size_t prepost_target = 256;

  std::vector<std::unique_ptr<char[]>> buffer_storage;
  std::deque<char*> free_buffers;

  // Centralized ordered matching structures.
  std::list<request_impl_t*> posted_recvs;
  std::list<unexpected_t> unexpected;

  std::unordered_map<uint32_t, pending_send_t> pending_sends;
  std::unordered_map<uint32_t, pending_recv_t> pending_recvs;
  uint32_t next_id = 1;

  std::size_t buffer_size() const {
    return eager_threshold + sizeof(msg_header_t);
  }

  char* get_buffer() {
    if (free_buffers.empty()) {
      buffer_storage.push_back(std::make_unique<char[]>(buffer_size()));
      return buffer_storage.back().get();
    }
    char* buf = free_buffers.back();
    free_buffers.pop_back();
    return buf;
  }
  void put_buffer(char* buf) { free_buffers.push_back(buf); }

  void replenish() {
    while (device->preposted_recvs() < prepost_target) {
      char* buf = get_buffer();
      if (device->post_recv(buf, buffer_size(), buf) !=
          net::post_result_t::ok) {
        put_buffer(buf);
        break;
      }
    }
  }

  // Posts a network send, spinning through local progress until the fabric
  // accepts it (MPI may block inside any call). A dead destination can never
  // accept, so peer_down aborts instead of spinning — the MPI model has no
  // per-operation failure reporting (cf. MPI_ERRORS_ARE_FATAL).
  void post_send_blocking(int dst, const void* data, std::size_t size) {
    lci::util::backoff_t backoff;
    net::post_result_t result;
    while ((result = device->post_send(dst, data, size, 0, nullptr)) !=
           net::post_result_t::ok) {
      if (result == net::post_result_t::peer_down)
        throw std::runtime_error("simmpi: send to a dead rank");
      progress_locked();
      backoff.spin();
    }
  }

  void post_write_blocking(int dst, const void* src, std::size_t size,
                           net::mr_id_t mr, uint32_t imm, void* ctx) {
    lci::util::backoff_t backoff;
    net::post_result_t result;
    while ((result = device->post_write(dst, src, size, mr, 0, true, imm,
                                        ctx)) != net::post_result_t::ok) {
      if (result == net::post_result_t::peer_down)
        throw std::runtime_error("simmpi: RDMA write to a dead rank");
      progress_locked();
      backoff.spin();
    }
  }

  bool matches(const request_impl_t* req, int src, int tag) const {
    return (req->want_src == ANY_SOURCE || req->want_src == src) &&
           (req->want_tag == ANY_TAG || req->want_tag == tag);
  }

  void complete_recv(request_impl_t* req, int src, int tag, const char* data,
                     std::size_t size) {
    assert(size <= req->capacity && "message longer than the receive buffer");
    std::memcpy(req->buffer, data, size);
    req->source = src;
    req->tag = tag;
    req->count = size;
    req->done.store(true, std::memory_order_release);
  }

  void start_rendezvous(request_impl_t* req, int src,
                        const msg_header_t& rts) {
    assert(rts.size <= req->capacity);
    const net::mr_id_t mr = context->register_memory(
        req->buffer, static_cast<std::size_t>(rts.size));
    const uint32_t pid = next_id++;
    pending_recvs.emplace(pid, pending_recv_t{req, mr});
    msg_header_t rtr;
    rtr.kind = msg_header_t::rtr;
    rtr.tag = rts.tag;
    rtr.rdv_or_pending = rts.rdv_or_pending;
    rtr.pending_id = pid;
    rtr.mr_id = mr;
    req->source = src;
    req->tag = rts.tag;
    req->count = static_cast<std::size_t>(rts.size);
    post_send_blocking(src, &rtr, sizeof(rtr));
  }

  // Caller holds big_lock.
  void progress_locked() {
    net::cqe_t cqes[16];
    const auto polled = device->poll_cq(cqes, 16);
    for (std::size_t i = 0; i < polled.count; ++i) handle(cqes[i]);
    replenish();
  }

  void handle(const net::cqe_t& cqe) {
    switch (cqe.op) {
      case net::op_t::send:
        return;
      case net::op_t::recv: {
        char* buf = static_cast<char*>(cqe.user_context);
        msg_header_t header;
        std::memcpy(&header, buf, sizeof(header));
        const char* data = buf + sizeof(header);
        const std::size_t data_size = cqe.length - sizeof(header);
        if (header.kind == msg_header_t::rtr) {
          auto it = pending_sends.find(header.rdv_or_pending);
          assert(it != pending_sends.end());
          pending_send_t pending = it->second;
          pending_sends.erase(it);
          post_write_blocking(cqe.peer_rank, pending.buffer, pending.size,
                              header.mr_id, header.pending_id,
                              pending.request);
        } else {
          // Ordered matching: first satisfiable posted receive wins.
          request_impl_t* matched = nullptr;
          for (auto it = posted_recvs.begin(); it != posted_recvs.end();
               ++it) {
            if (matches(*it, cqe.peer_rank, header.tag)) {
              matched = *it;
              posted_recvs.erase(it);
              break;
            }
          }
          if (matched != nullptr) {
            if (header.kind == msg_header_t::eager)
              complete_recv(matched, cqe.peer_rank, header.tag, data,
                            data_size);
            else
              start_rendezvous(matched, cqe.peer_rank, header);
          } else {
            unexpected_t u;
            u.header = header;
            u.src = cqe.peer_rank;
            if (header.kind == msg_header_t::eager)
              u.payload.assign(data, data + data_size);
            unexpected.push_back(std::move(u));
          }
        }
        put_buffer(buf);
        return;
      }
      case net::op_t::write: {
        // Rendezvous data landed: the sender's request completes.
        auto* req = static_cast<request_impl_t*>(cqe.user_context);
        if (req != nullptr) req->done.store(true, std::memory_order_release);
        return;
      }
      case net::op_t::remote_write: {
        auto it = pending_recvs.find(cqe.imm);
        assert(it != pending_recvs.end());
        pending_recv_t pending = it->second;
        pending_recvs.erase(it);
        context->deregister_memory(pending.mr);
        pending.request->done.store(true, std::memory_order_release);
        return;
      }
      default:
        return;
    }
  }
};

}  // namespace detail

engine_t::engine_t(std::shared_ptr<lci::net::fabric_t> fabric, int rank,
                   const config_t& config)
    : fabric_(std::move(fabric)),
      context_(fabric_->create_context(rank)),
      rank_(rank),
      nranks_(fabric_->nranks()),
      config_(config) {
  if (config_.nvci < 1) config_.nvci = 1;
  for (int v = 0; v < config_.nvci; ++v) {
    auto vci = std::make_unique<detail::vci_t>();
    vci->device = context_->create_device();
    vci->context = context_.get();
    vci->eager_threshold = config_.eager_threshold;
    vci->prepost_target = config_.prepost_depth;
    {
      std::lock_guard<std::mutex> guard(vci->big_lock);
      vci->replenish();
    }
    vcis_.push_back(std::move(vci));
  }
}

namespace {
lci::sim::binding_t require_binding() {
  auto binding = lci::sim::current_binding();
  if (!binding)
    throw std::runtime_error("simmpi: thread has no sim rank binding");
  return binding;
}
}  // namespace

engine_t::engine_t(const config_t& config)
    : engine_t(require_binding()->fabric, require_binding()->rank, config) {}

engine_t::~engine_t() = default;

request_t engine_t::isend(const void* buffer, std::size_t size, int dst,
                          int tag) {
  detail::vci_t& vci = *vcis_[static_cast<std::size_t>(vci_of_tag(tag))];
  std::lock_guard<std::mutex> guard(vci.big_lock);
  auto* req = new detail::request_impl_t;
  req->vci = &vci;
  if (size <= vci.eager_threshold) {
    // Eager: stage header+payload and hand it to the fabric; the payload is
    // buffered, so the request completes immediately.
    char* staging = vci.get_buffer();
    detail::msg_header_t header;
    header.kind = detail::msg_header_t::eager;
    header.tag = tag;
    std::memcpy(staging, &header, sizeof(header));
    std::memcpy(staging + sizeof(header), buffer, size);
    vci.post_send_blocking(dst, staging, sizeof(header) + size);
    vci.put_buffer(staging);
    req->done.store(true, std::memory_order_release);
    req->count = size;
  } else {
    detail::msg_header_t rts;
    rts.kind = detail::msg_header_t::rts;
    rts.tag = tag;
    rts.size = size;
    rts.rdv_or_pending = vci.next_id++;
    vci.pending_sends.emplace(rts.rdv_or_pending,
                              detail::pending_send_t{req, buffer, size});
    vci.post_send_blocking(dst, &rts, sizeof(rts));
  }
  return req;
}

request_t engine_t::irecv(void* buffer, std::size_t size, int src, int tag) {
  if (tag == ANY_TAG && nvci() > 1)
    throw std::runtime_error("simmpi: ANY_TAG requires a single VCI");
  detail::vci_t& vci = *vcis_[static_cast<std::size_t>(vci_of_tag(tag))];
  std::lock_guard<std::mutex> guard(vci.big_lock);
  auto* req = new detail::request_impl_t;
  req->vci = &vci;
  req->buffer = buffer;
  req->capacity = size;
  req->want_src = src;
  req->want_tag = tag;
  // Ordered matching against the unexpected queue first.
  for (auto it = vci.unexpected.begin(); it != vci.unexpected.end(); ++it) {
    if ((src == ANY_SOURCE || src == it->src) &&
        (tag == ANY_TAG || tag == it->header.tag)) {
      detail::unexpected_t u = std::move(*it);
      vci.unexpected.erase(it);
      if (u.header.kind == detail::msg_header_t::eager)
        vci.complete_recv(req, u.src, u.header.tag, u.payload.data(),
                          u.payload.size());
      else
        vci.start_rendezvous(req, u.src, u.header);
      return req;
    }
  }
  vci.posted_recvs.push_back(req);
  return req;
}

namespace {
bool finish_test(detail::request_impl_t* request, status_t* status) {
  if (!request->done.load(std::memory_order_acquire)) return false;
  if (status != nullptr) {
    status->source = request->source;
    status->tag = request->tag;
    status->count = request->count;
  }
  delete request;
  return true;
}
}  // namespace

bool engine_t::test(request_t request, status_t* status) {
  detail::vci_t& vci = *request->vci;
  std::lock_guard<std::mutex> guard(vci.big_lock);
  vci.progress_locked();  // progress as a side effect (MPI semantics)
  return finish_test(request, status);
}

bool engine_t::test_nopoll(request_t request, status_t* status) {
  // Lock-free fast path; only completed requests touch the lock (to retire
  // under the same serialization the progress engine uses).
  if (!request->done.load(std::memory_order_acquire)) return false;
  detail::vci_t& vci = *request->vci;
  std::lock_guard<std::mutex> guard(vci.big_lock);
  return finish_test(request, status);
}

void engine_t::wait(request_t request, status_t* status) {
  lci::util::backoff_t backoff;
  while (!test(request, status)) backoff.spin();
}

void engine_t::send(const void* buffer, std::size_t size, int dst, int tag) {
  wait(isend(buffer, size, dst, tag));
}

void engine_t::recv(void* buffer, std::size_t size, int src, int tag,
                    status_t* status) {
  wait(irecv(buffer, size, src, tag), status);
}

void engine_t::progress() {
  for (auto& vci : vcis_) {
    std::lock_guard<std::mutex> guard(vci->big_lock);
    vci->progress_locked();
  }
}

void engine_t::progress_vci(int index) {
  auto& vci = *vcis_[static_cast<std::size_t>(index)];
  std::lock_guard<std::mutex> guard(vci.big_lock);
  vci.progress_locked();
}

}  // namespace simmpi
