// simgex — a GASNet-EX-like baseline over the simulated fabric.
//
// Stand-in for GASNet-EX in the paper's evaluation. Reproduces the traits
// the paper measures (Sec. 5.2, 5.3):
//  * active-message-only data path (gex_AM_RequestMedium-style), no
//    send-receive;
//  * one shared endpoint per rank, no resource replication (the paper notes
//    GASNet-EX cannot run the dedicated-resource mode);
//  * AM handlers registered in a table and executed inside the poll call,
//    which therefore must be short and must not communicate;
//  * moderate lock granularity: one injection lock, one poll lock — good
//    shared-resource behaviour, but every thread still serializes on them.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

#include "net/net.hpp"

namespace simgex {

// Handler contract (GASNet semantics): runs inside poll, receives a borrowed
// view of the payload; must copy out anything it wants to keep and must not
// call back into simgex.
using handler_fn_t =
    std::function<void(int src, const void* data, std::size_t size,
                       uint32_t arg0)>;

struct config_t {
  std::size_t max_medium = 8192;   // gex_AM_LUBRequestMedium analogue
  std::size_t prepost_depth = 512;
};

class endpoint_t {
 public:
  endpoint_t(std::shared_ptr<lci::net::fabric_t> fabric, int rank,
             const config_t& config = {});
  explicit endpoint_t(const config_t& config = {});
  ~endpoint_t();
  endpoint_t(const endpoint_t&) = delete;
  endpoint_t& operator=(const endpoint_t&) = delete;

  int rank() const noexcept { return rank_; }
  int size() const noexcept { return nranks_; }
  std::size_t max_medium() const noexcept { return config_.max_medium; }

  // Registration must happen before the first poll (GASNet registers
  // handlers at attach time).
  int register_handler(handler_fn_t fn);

  // Blocking injection (GASNet may poll internally until resources free up).
  void am_request_medium(int dst, int handler, const void* data,
                         std::size_t size, uint32_t arg0 = 0);

  // Polls the endpoint and runs handlers inline. Returns true if anything
  // was processed.
  bool poll();

 private:
  struct impl_t;
  std::shared_ptr<lci::net::fabric_t> fabric_;
  int rank_ = 0;
  int nranks_ = 1;
  config_t config_;
  std::unique_ptr<impl_t> impl_;
};

}  // namespace simgex
