// Distributed two-pass k-mer counting pipeline (paper Sec. 5.3).
//
// The HipMer k-mer counting stage: traverse the read set twice — pass 1
// inserts every k-mer into a two-layer Bloom filter on its owner rank;
// pass 2 consults the filter and counts k-mers seen at least twice in a
// hashmap — with each k-mer statically mapped to an owner rank by hash and
// shipped there through per-destination aggregation buffers over active
// messages.
//
// Three execution modes reproduce Fig. 6's three lines:
//   lci_mt — multithreaded, LCW/LCI backend, one device per thread, all
//            threads run application logic and progress the network
//            ("all-worker setup");
//   gex_mt — multithreaded, LCW/GASNet-EX backend (shared endpoint);
//   ref_st — the single-threaded reference layout (HipMer/UPC++ style): one
//            process per "core", i.e. nranks*nthreads single-threaded ranks,
//            over the gex backend (UPC++ rides on GASNet-EX).
//
// Control-plane note: data travels exclusively through the communication
// backend; start/termination synchronization uses in-process atomics (the
// simulated-world analogue of PMI barriers), documented in DESIGN.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "kmer/read_generator.hpp"
#include "net/net.hpp"

namespace kmer {

enum class pipeline_mode_t { lci_mt, gex_mt, ref_st };

const char* to_string(pipeline_mode_t mode);

struct pipeline_config_t {
  genome_params_t genome{};
  int k = 21;
  int nranks = 2;                 // "processes" (2 per node in the paper)
  int nthreads = 2;               // worker threads per rank (mt modes)
  pipeline_mode_t mode = pipeline_mode_t::lci_mt;
  std::size_t agg_buffer_bytes = 8192;  // per-destination aggregation buffer
  lci::net::config_t fabric{};          // simulated-fabric parameters
  // When set, reads come from this FASTA/FASTQ file (extension .fastq/.fq
  // selects FASTQ) instead of the synthetic generator.
  std::string reads_path;
};

struct pipeline_result_t {
  double seconds = 0;                // wall time of the two communication passes
  std::size_t total_kmers = 0;       // k-mer instances processed in pass 2
  std::size_t distinct_counted = 0;  // hashmap entries (seen >= twice)
  std::vector<std::size_t> histogram;  // occurrence histogram (index = count)
};

// Runs the full pipeline on a fresh simulated world; returns the merged
// result. Deterministic input by config.genome.seed.
pipeline_result_t run_pipeline(const pipeline_config_t& config);

// Serial oracle for verification: exact occurrence histogram of all k-mers
// with count >= 2 (what a perfect two-layer Bloom filter would produce).
pipeline_result_t run_serial_oracle(const pipeline_config_t& config);

}  // namespace kmer
