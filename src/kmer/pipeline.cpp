#include "kmer/pipeline.hpp"

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "core/lci.hpp"
#include "kmer/bloom.hpp"
#include "kmer/fasta.hpp"
#include "kmer/hashmap.hpp"
#include "kmer/kmer.hpp"
#include "lcw/lcw.hpp"

namespace kmer {

const char* to_string(pipeline_mode_t mode) {
  switch (mode) {
    case pipeline_mode_t::lci_mt:
      return "lci_mt";
    case pipeline_mode_t::gex_mt:
      return "gex_mt";
    case pipeline_mode_t::ref_st:
      return "ref_st";
  }
  return "?";
}

namespace {

double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// In-process barrier across all participating threads of all ranks (the
// simulated analogue of a PMI/UPC++ barrier on the control plane).
class barrier_t {
 public:
  explicit barrier_t(int count) : count_(count) {}
  void wait() {
    const int generation = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == count_) {
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_release);
    } else {
      while (generation_.load(std::memory_order_acquire) == generation)
        std::this_thread::yield();
    }
  }

 private:
  const int count_;
  std::atomic<int> arrived_{0};
  std::atomic<int> generation_{0};
};

struct pass_sync_t {
  explicit pass_sync_t(int nranks)
      : expected(static_cast<std::size_t>(nranks)),
        processed(static_cast<std::size_t>(nranks)) {
    for (auto& e : expected) e.store(0);
    for (auto& p : processed) p.store(0);
  }
  std::vector<std::atomic<long>> expected;   // k-mers destined to each rank
  std::vector<std::atomic<long>> processed;  // k-mers consumed by each rank
  std::atomic<int> senders_done{0};
};

struct shared_state_t {
  shared_state_t(int nranks, int participants)
      : pass1(nranks), pass2(nranks), barrier(participants) {}
  pass_sync_t pass1;
  pass_sync_t pass2;
  barrier_t barrier;
  std::mutex merge_lock;
  std::vector<std::size_t> merged_histogram;
  std::atomic<std::size_t> merged_distinct{0};
  std::atomic<std::size_t> merged_total{0};
  std::atomic<double> t_start{0};
  std::atomic<double> t_end{0};
};

class rank_worker_t {
 public:
  rank_worker_t(const pipeline_config_t& config, int nranks, int nthreads,
                lcw::context_t* ctx, const read_source_t& reads,
                shared_state_t* shared)
      : config_(config),
        nranks_(nranks),
        nthreads_(nthreads),
        ctx_(ctx),
        reads_(reads),
        shared_(shared),
        bloom_(bloom_size(), /*num_hashes=*/3, /*bits_per_element=*/12),
        map_(map_size()) {}

  two_layer_bloom_t& bloom() { return bloom_; }
  counting_hashmap_t& map() { return map_; }

  // Body of one worker thread (thread index t of this rank).
  void run_thread(int t) {
    run_pass(t, /*pass=*/1);
    run_pass(t, /*pass=*/2);
  }

 private:
  std::size_t bloom_size() const {
    // Expected distinct k-mers owned by this rank: roughly the total read
    // bases (each position yields at most one k-mer), divided across ranks.
    const std::size_t total_bases =
        reads_.total_reads() * config_.genome.read_length;
    return std::max<std::size_t>(config_.genome.genome_length * 2,
                                 total_bases / 4) /
               static_cast<std::size_t>(nranks_) +
           4096;
  }
  std::size_t map_size() const { return bloom_size(); }

  void consume(const kmer_t* kmers, std::size_t n, int pass) {
    if (pass == 1) {
      for (std::size_t i = 0; i < n; ++i) bloom_.insert(kmers[i]);
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        if (bloom_.seen_twice(kmers[i])) map_.increment(kmers[i]);
      }
    }
  }

  // Drains arrivals on this thread's device. Returns number of k-mers
  // consumed.
  long poll_arrivals(lcw::device_t* dev, int pass) {
    long consumed = 0;
    dev->do_progress();
    lcw::request_t req;
    while (dev->poll_recv(&req)) {
      const std::size_t n = req.size / sizeof(kmer_t);
      consume(static_cast<const kmer_t*>(req.buffer), n, pass);
      std::free(req.buffer);
      consumed += static_cast<long>(n);
    }
    lcw::request_t sreq;
    while (dev->poll_send(&sreq)) {
    }
    return consumed;
  }

  void run_pass(int t, int pass) {
    const int me = ctx_->rank();
    pass_sync_t& sync = pass == 1 ? shared_->pass1 : shared_->pass2;
    lcw::device_t* dev =
        ctx_->ndevices() > 1 ? ctx_->device(t) : ctx_->device(0);
    const int tag = ctx_->ndevices() > 1 ? t : 0;

    shared_->barrier.wait();
    if (me == 0 && t == 0 && pass == 1) shared_->t_start.store(now_sec());

    // Per-destination aggregation buffers (paper: 8 KB per destination;
    // multithreading reduces the destination count because there are far
    // fewer processes).
    const std::size_t capacity = config_.agg_buffer_bytes / sizeof(kmer_t);
    std::vector<std::vector<kmer_t>> agg(static_cast<std::size_t>(nranks_));
    for (auto& buffer : agg) buffer.reserve(capacity);

    long consumed = 0;  // k-mers this thread served for its own rank
    auto flush = [&](int dest) {
      auto& buffer = agg[static_cast<std::size_t>(dest)];
      if (buffer.empty()) return;
      while (dev->post_am(dest, buffer.data(),
                          buffer.size() * sizeof(kmer_t),
                          tag) == lcw::post_t::retry) {
        consumed += poll_arrivals(dev, pass);
      }
      sync.expected[static_cast<std::size_t>(dest)].fetch_add(
          static_cast<long>(buffer.size()), std::memory_order_relaxed);
      buffer.clear();
    };

    // My slice of this rank's read shard.
    std::size_t rank_begin = 0, rank_end = 0;
    reads_.shard(me, nranks_, &rank_begin, &rank_end);
    const std::size_t rank_reads = rank_end - rank_begin;
    const std::size_t per_thread =
        (rank_reads + static_cast<std::size_t>(nthreads_) - 1) /
        static_cast<std::size_t>(nthreads_);
    const std::size_t begin =
        rank_begin + static_cast<std::size_t>(t) * per_thread;
    const std::size_t end = std::min(rank_end, begin + per_thread);

    std::vector<kmer_t> kmers;
    for (std::size_t r = begin; r < end; ++r) {
      kmers.clear();
      extract_kmers(reads_.read(r), config_.k, kmers);
      for (const kmer_t kmer : kmers) {
        const int owner =
            static_cast<int>(hash_kmer(kmer) % static_cast<uint64_t>(nranks_));
        auto& buffer = agg[static_cast<std::size_t>(owner)];
        buffer.push_back(kmer);
        if (buffer.size() >= capacity) flush(owner);
      }
      // All-worker setup: every thread periodically progresses the network.
      consumed += poll_arrivals(dev, pass);
    }
    for (int dest = 0; dest < nranks_; ++dest) flush(dest);
    sync.senders_done.fetch_add(1, std::memory_order_acq_rel);

    // Keep serving incoming RPCs until every sender finished and this rank
    // has consumed everything destined to it.
    const int total_senders = nranks_ * nthreads_;
    auto& processed = sync.processed[static_cast<std::size_t>(me)];
    processed.fetch_add(consumed, std::memory_order_relaxed);
    consumed = 0;
    while (true) {
      const long got = poll_arrivals(dev, pass);
      if (got != 0) {
        processed.fetch_add(got, std::memory_order_relaxed);
        continue;
      }
      if (sync.senders_done.load(std::memory_order_acquire) ==
              total_senders &&
          processed.load(std::memory_order_acquire) ==
              sync.expected[static_cast<std::size_t>(me)].load(
                  std::memory_order_acquire)) {
        break;
      }
      std::this_thread::yield();
    }
    shared_->barrier.wait();
    if (me == 0 && t == 0 && pass == 2) shared_->t_end.store(now_sec());
  }

  const pipeline_config_t& config_;
  const int nranks_;
  const int nthreads_;
  lcw::context_t* ctx_;
  const read_source_t& reads_;
  shared_state_t* shared_;
  two_layer_bloom_t bloom_;
  counting_hashmap_t map_;
};

}  // namespace

namespace {
// Builds the configured read source: a file when reads_path is set,
// otherwise the deterministic synthetic generator.
std::unique_ptr<read_source_t> make_read_source(
    const pipeline_config_t& config) {
  if (!config.reads_path.empty()) {
    const bool fastq = config.reads_path.size() > 3 &&
                       (config.reads_path.ends_with(".fastq") ||
                        config.reads_path.ends_with(".fq"));
    const auto records = fastq ? read_fastq_file(config.reads_path)
                               : read_fasta_file(config.reads_path);
    std::vector<std::string> reads;
    reads.reserve(records.size());
    for (const auto& record : records) reads.push_back(record.sequence);
    return std::make_unique<vector_reads_t>(std::move(reads));
  }
  return std::make_unique<read_generator_t>(config.genome);
}
}  // namespace

pipeline_result_t run_pipeline(const pipeline_config_t& config) {
  const bool reference = config.mode == pipeline_mode_t::ref_st;
  const int nranks =
      reference ? config.nranks * config.nthreads : config.nranks;
  const int nthreads = reference ? 1 : config.nthreads;

  const std::unique_ptr<read_source_t> reads_owner = make_read_source(config);
  const read_source_t& reads = *reads_owner;
  shared_state_t shared(nranks, nranks * nthreads);
  shared.merged_histogram.assign(257, 0);

  lci::sim::spawn(
      nranks,
      [&](int rank) {
    (void)rank;
    lcw::config_t lcw_config;
    lcw_config.ndevices =
        config.mode == pipeline_mode_t::lci_mt ? nthreads : 1;
    lcw_config.max_am_size = config.agg_buffer_bytes;
    const lcw::backend_t backend = config.mode == pipeline_mode_t::lci_mt
                                       ? lcw::backend_t::lci
                                       : lcw::backend_t::gex;
    auto ctx = lcw::alloc_context(backend, lcw_config);
    rank_worker_t worker(config, nranks, nthreads, ctx.get(), reads, &shared);

    auto binding = lci::sim::current_binding();
    std::vector<std::thread> threads;
    for (int t = 1; t < nthreads; ++t) {
      threads.emplace_back([&, t] {
        lci::sim::scoped_binding_t bound(binding);
        worker.run_thread(t);
      });
    }
    worker.run_thread(0);
    for (auto& th : threads) th.join();

    // Merge this rank's results (harness-side reduction).
    const auto histogram = worker.map().histogram(256);
    std::size_t total = 0;
    for (std::size_t c = 2; c < histogram.size(); ++c)
      total += histogram[c] * c;
    {
      std::lock_guard<std::mutex> guard(shared.merge_lock);
      for (std::size_t c = 0; c < histogram.size(); ++c)
        shared.merged_histogram[c] += histogram[c];
    }
    shared.merged_distinct.fetch_add(worker.map().size());
    shared.merged_total.fetch_add(total);
      },
      config.fabric);

  pipeline_result_t result;
  result.seconds = shared.t_end.load() - shared.t_start.load();
  result.histogram = shared.merged_histogram;
  result.distinct_counted = shared.merged_distinct.load();
  result.total_kmers = shared.merged_total.load();
  return result;
}

pipeline_result_t run_serial_oracle(const pipeline_config_t& config) {
  const std::unique_ptr<read_source_t> reads_owner = make_read_source(config);
  const read_source_t& reads = *reads_owner;
  std::unordered_map<kmer_t, uint32_t> counts;
  std::vector<kmer_t> kmers;
  for (std::size_t r = 0; r < reads.total_reads(); ++r) {
    kmers.clear();
    extract_kmers(reads.read(r), config.k, kmers);
    for (const kmer_t kmer : kmers) ++counts[kmer];
  }
  pipeline_result_t result;
  result.histogram.assign(257, 0);
  for (const auto& [kmer, count] : counts) {
    if (count < 2) continue;
    ++result.distinct_counted;
    result.total_kmers += count;
    result.histogram[std::min<uint32_t>(count, 256)]++;
  }
  return result;
}

}  // namespace kmer
