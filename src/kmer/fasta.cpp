#include "kmer/fasta.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace kmer {

namespace {

[[noreturn]] void fail(const char* what, std::size_t line) {
  throw std::runtime_error(std::string(what) + " at line " +
                           std::to_string(line));
}

std::string parse_name(const std::string& line) {
  // Marker already checked; name runs to the first whitespace.
  std::size_t end = 1;
  while (end < line.size() && !std::isspace(static_cast<unsigned char>(
                                  line[end])))
    ++end;
  return line.substr(1, end - 1);
}

void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

}  // namespace

std::vector<sequence_record_t> read_fasta(std::istream& in) {
  std::vector<sequence_record_t> records;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    strip_cr(line);
    if (line.empty() || line[0] == ';') continue;  // blank / comment
    if (line[0] == '>') {
      if (line.size() < 2) fail("empty FASTA header", lineno);
      records.push_back({parse_name(line), {}});
      continue;
    }
    if (records.empty()) fail("sequence data before any FASTA header", lineno);
    for (const char c : line) {
      if (std::isspace(static_cast<unsigned char>(c))) continue;
      records.back().sequence.push_back(c);
    }
  }
  return records;
}

std::vector<sequence_record_t> read_fastq(std::istream& in) {
  std::vector<sequence_record_t> records;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    strip_cr(line);
    if (line.empty()) continue;
    if (line[0] != '@' || line.size() < 2)
      fail("expected FASTQ @header", lineno);
    sequence_record_t record{parse_name(line), {}};

    if (!std::getline(in, record.sequence)) fail("missing sequence", lineno);
    ++lineno;
    strip_cr(record.sequence);

    if (!std::getline(in, line)) fail("missing '+' separator", lineno);
    ++lineno;
    strip_cr(line);
    if (line.empty() || line[0] != '+') fail("expected '+' separator", lineno);

    if (!std::getline(in, line)) fail("missing quality string", lineno);
    ++lineno;
    strip_cr(line);
    if (line.size() != record.sequence.size())
      fail("quality length differs from sequence length", lineno);

    records.push_back(std::move(record));
  }
  return records;
}

void write_fasta(std::ostream& out,
                 const std::vector<sequence_record_t>& records,
                 std::size_t line_width) {
  for (const auto& record : records) {
    out << '>' << record.name << '\n';
    if (line_width == 0) {
      out << record.sequence << '\n';
      continue;
    }
    for (std::size_t offset = 0; offset < record.sequence.size();
         offset += line_width) {
      out << record.sequence.substr(offset, line_width) << '\n';
    }
    if (record.sequence.empty()) out << '\n';
  }
}

namespace {
std::ifstream open_for_read(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return in;
}
}  // namespace

std::vector<sequence_record_t> read_fasta_file(const std::string& path) {
  auto in = open_for_read(path);
  return read_fasta(in);
}

std::vector<sequence_record_t> read_fastq_file(const std::string& path) {
  auto in = open_for_read(path);
  return read_fastq(in);
}

void write_fasta_file(const std::string& path,
                      const std::vector<sequence_record_t>& records,
                      std::size_t line_width) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  write_fasta(out, records, line_width);
}

}  // namespace kmer
