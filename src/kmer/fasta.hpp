// FASTA / FASTQ file I/O for the k-mer counting mini-app.
//
// The paper's run consumes the human chr14 read set; this reproduction ships
// a synthetic generator (read_generator.hpp) but the pipeline should also be
// usable with real sequence files, so this module provides minimal, strict
// readers/writers for the two standard formats:
//
//   FASTA:  >name [description]        FASTQ:  @name [description]
//           SEQUENCE (may wrap)                SEQUENCE
//                                              +
//                                              QUALITIES
//
// Quality strings are parsed but discarded (the counting pipeline does not
// model quality-aware error correction).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace kmer {

struct sequence_record_t {
  std::string name;      // up to the first whitespace after the marker
  std::string sequence;  // concatenated, whitespace-free
};

// Readers throw std::runtime_error with a line number on malformed input.
std::vector<sequence_record_t> read_fasta(std::istream& in);
std::vector<sequence_record_t> read_fasta_file(const std::string& path);
std::vector<sequence_record_t> read_fastq(std::istream& in);
std::vector<sequence_record_t> read_fastq_file(const std::string& path);

// Writer: wraps sequence lines at `line_width` characters (0 = no wrap).
void write_fasta(std::ostream& out,
                 const std::vector<sequence_record_t>& records,
                 std::size_t line_width = 70);
void write_fasta_file(const std::string& path,
                      const std::vector<sequence_record_t>& records,
                      std::size_t line_width = 70);

}  // namespace kmer
