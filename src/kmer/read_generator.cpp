#include "kmer/read_generator.hpp"

#include "kmer/kmer.hpp"

#include <cmath>

namespace kmer {

read_generator_t::read_generator_t(const genome_params_t& params)
    : params_(params) {
  lci::util::xoshiro256_t rng(params_.seed);
  genome_.resize(params_.genome_length);
  for (auto& base : genome_) base = "ACGT"[rng.below(4)];
  total_reads_ = static_cast<std::size_t>(
      std::ceil(params_.coverage * static_cast<double>(params_.genome_length) /
                static_cast<double>(params_.read_length)));
}

std::string read_generator_t::read(std::size_t index) const {
  // Derive the read's randomness from (seed, index) so generation is
  // position-independent and shardable.
  uint64_t state = params_.seed ^ (0x9e3779b97f4a7c15ull * (index + 1));
  lci::util::xoshiro256_t rng(lci::util::splitmix64(state));
  const std::size_t max_start = params_.genome_length - params_.read_length;
  const std::size_t start = rng.below(max_start + 1);
  std::string read = genome_.substr(start, params_.read_length);
  for (auto& base : read) {
    if (rng.uniform() < params_.error_rate) {
      // Substitution error: replace with one of the three other bases.
      const int original = encode_base(base);
      const int replacement =
          (original + 1 + static_cast<int>(rng.below(3))) & 3;
      base = decode_base(replacement);
    }
  }
  return read;
}

}  // namespace kmer
