// Synthetic error-prone read generator — the stand-in for the paper's human
// chr14 dataset (7.75 GB, 37M reads; see DESIGN.md substitutions).
//
// A random reference genome is generated from a seed; reads are sampled at
// uniform positions with substitution errors injected at a configurable
// rate, mimicking the error profile that motivates HipMer's two-layer Bloom
// filter (erroneous k-mers mostly occur once). Fully deterministic by seed,
// and shardable: rank r of n generates its slice of the read set without
// materializing the rest.
#pragma once

#include <cstddef>
#include <cstdint>
#include <algorithm>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace kmer {

// Abstract read supplier: the pipeline iterates reads by index so any rank
// can process any slice. Implemented by the synthetic generator below and by
// in-memory record sets (e.g. loaded from FASTA/FASTQ, fasta.hpp).
class read_source_t {
 public:
  virtual ~read_source_t() = default;
  virtual std::size_t total_reads() const = 0;
  virtual std::string read(std::size_t index) const = 0;

  // Shard [begin, end) of the read set for rank r of n (balanced blocks).
  void shard(int rank, int nranks, std::size_t* begin,
             std::size_t* end) const {
    const std::size_t total = total_reads();
    const std::size_t per_rank = total / static_cast<std::size_t>(nranks);
    const std::size_t extra = total % static_cast<std::size_t>(nranks);
    const auto r = static_cast<std::size_t>(rank);
    *begin = r * per_rank + std::min(r, extra);
    *end = *begin + per_rank + (r < extra ? 1 : 0);
  }
};

// In-memory read set (sequences loaded from a file or built by hand).
class vector_reads_t final : public read_source_t {
 public:
  explicit vector_reads_t(std::vector<std::string> reads)
      : reads_(std::move(reads)) {}
  std::size_t total_reads() const override { return reads_.size(); }
  std::string read(std::size_t index) const override { return reads_[index]; }

 private:
  std::vector<std::string> reads_;
};

struct genome_params_t {
  std::size_t genome_length = 1 << 20;  // reference length in bases
  std::size_t read_length = 100;
  double coverage = 10.0;               // total read bases / genome length
  double error_rate = 0.01;             // per-base substitution probability
  uint64_t seed = 42;
};

class read_generator_t final : public read_source_t {
 public:
  explicit read_generator_t(const genome_params_t& params);

  const std::string& genome() const noexcept { return genome_; }
  std::size_t total_reads() const override { return total_reads_; }

  // The i-th read (deterministic: position and errors derive from the seed
  // and i alone, so any rank can produce any read).
  std::string read(std::size_t index) const override;

 private:
  genome_params_t params_;
  std::string genome_;
  std::size_t total_reads_ = 0;
};

}  // namespace kmer
