// Striped concurrent counting hashmap — the libcuckoo[32] stand-in for the
// k-mer counting mini-app (see DESIGN.md substitutions).
//
// Open addressing with linear probing over power-of-two capacity; writers
// take one of `num_stripes` spinlocks chosen by hash, so disjoint keys
// rarely contend (the same property the paper gets from libcuckoo's
// fine-grained locking). Keys are reserved up front: the k-mer pipeline
// knows an upper bound on distinct keys, so no concurrent resize is needed —
// insertion beyond the load-factor limit throws.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "kmer/kmer.hpp"
#include "util/cacheline.hpp"
#include "util/spinlock.hpp"

namespace kmer {

class counting_hashmap_t {
 public:
  explicit counting_hashmap_t(std::size_t expected_keys,
                              std::size_t num_stripes = 1024)
      : capacity_(round_pow2(expected_keys * 2)),
        mask_(capacity_ - 1),
        slots_(capacity_),
        stripes_(num_stripes ? round_pow2(num_stripes) : 1),
        stripe_mask_(stripes_.size() - 1) {}

  counting_hashmap_t(const counting_hashmap_t&) = delete;
  counting_hashmap_t& operator=(const counting_hashmap_t&) = delete;

  // Adds `delta` to the key's count, inserting it if absent.
  void increment(kmer_t key, uint32_t delta = 1) {
    const uint64_t hash = hash_kmer(key);
    std::lock_guard<lci::util::spinlock_t> guard(
        stripes_[hash & stripe_mask_].value);
    std::size_t index = hash & mask_;
    for (std::size_t probes = 0; probes < capacity_; ++probes) {
      slot_t& slot = slots_[index];
      const uint8_t state = slot.state.load(std::memory_order_acquire);
      if (state == slot_t::full) {
        if (slot.key == key) {
          slot.count.fetch_add(delta, std::memory_order_relaxed);
          return;
        }
      } else if (state == slot_t::empty) {
        // Claim the slot; a racing writer of a *different stripe* may be
        // probing through, so publish with a two-phase state.
        uint8_t expected = slot_t::empty;
        if (slot.state.compare_exchange_strong(expected, slot_t::busy,
                                               std::memory_order_acq_rel)) {
          slot.key = key;
          slot.count.store(delta, std::memory_order_relaxed);
          slot.state.store(slot_t::full, std::memory_order_release);
          size_.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        // Lost the claim: fall through and re-inspect this slot.
        while (slot.state.load(std::memory_order_acquire) == slot_t::busy) {
        }
        if (slot.state.load(std::memory_order_acquire) == slot_t::full &&
            slot.key == key) {
          slot.count.fetch_add(delta, std::memory_order_relaxed);
          return;
        }
      } else {  // busy: another stripe's writer is publishing
        while (slot.state.load(std::memory_order_acquire) == slot_t::busy) {
        }
        if (slot.key == key) {
          slot.count.fetch_add(delta, std::memory_order_relaxed);
          return;
        }
      }
      index = (index + 1) & mask_;
    }
    throw std::length_error("counting_hashmap_t: table full");
  }

  // Count for a key (0 if absent). Safe concurrently with increments.
  uint32_t count(kmer_t key) const noexcept {
    std::size_t index = hash_kmer(key) & mask_;
    for (std::size_t probes = 0; probes < capacity_; ++probes) {
      const slot_t& slot = slots_[index];
      const uint8_t state = slot.state.load(std::memory_order_acquire);
      if (state == slot_t::empty) return 0;
      if (state == slot_t::full && slot.key == key)
        return slot.count.load(std::memory_order_relaxed);
      index = (index + 1) & mask_;
    }
    return 0;
  }

  std::size_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }

  // Histogram of counts (index = occurrence count, clamped to max_count);
  // quiescent use only.
  std::vector<std::size_t> histogram(std::size_t max_count = 256) const {
    std::vector<std::size_t> hist(max_count + 1, 0);
    for (const slot_t& slot : slots_) {
      if (slot.state.load(std::memory_order_acquire) != slot_t::full) continue;
      const uint32_t c = slot.count.load(std::memory_order_relaxed);
      hist[std::min<std::size_t>(c, max_count)]++;
    }
    return hist;
  }

  // Visits every (key, count); quiescent use only.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const slot_t& slot : slots_) {
      if (slot.state.load(std::memory_order_acquire) == slot_t::full)
        fn(slot.key, slot.count.load(std::memory_order_relaxed));
    }
  }

 private:
  struct slot_t {
    enum : uint8_t { empty = 0, busy = 1, full = 2 };
    std::atomic<uint8_t> state{empty};
    kmer_t key = 0;
    std::atomic<uint32_t> count{0};
  };

  static std::size_t round_pow2(std::size_t n) {
    std::size_t p = 16;
    while (p < n) p *= 2;
    return p;
  }

  const std::size_t capacity_;
  const std::size_t mask_;
  std::vector<slot_t> slots_;
  std::vector<lci::util::padded<lci::util::spinlock_t>> stripes_;
  const std::size_t stripe_mask_;
  std::atomic<std::size_t> size_{0};
};

}  // namespace kmer
