// Two-layer atomic Bloom filter (paper Sec. 5.3).
//
// HipMer's k-mer counting inserts every k-mer into a two-layer Bloom filter
// on the first pass: the first occurrence of a k-mer sets its bits in layer
// 1; a k-mer that already hits layer 1 is recorded in layer 2. On the second
// pass only k-mers present in layer 2 (seen at least twice, so unlikely to
// be pure sequencing error) enter the counting hashmap — trading a small
// false-positive rate for a much smaller memory footprint.
//
// This is the "hand-written atomic-based Bloom filter" of the paper's
// multithreaded implementation: bit arrays of std::atomic<uint64_t>, set via
// fetch_or, probed with double hashing. insert() is linearizable per bit;
// the two-layer "was it present?" check is approximate under concurrency
// exactly as a Bloom filter is approximate anyway.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "kmer/kmer.hpp"

namespace kmer {

class atomic_bitset_t {
 public:
  explicit atomic_bitset_t(std::size_t nbits)
      : nbits_(round_pow2(nbits)),
        mask_(nbits_ - 1),
        words_(new std::atomic<uint64_t>[nbits_ / 64]) {
    for (std::size_t i = 0; i < nbits_ / 64; ++i)
      words_[i].store(0, std::memory_order_relaxed);
  }

  // Sets the bit; returns its previous value.
  bool test_and_set(uint64_t bit) noexcept {
    bit &= mask_;
    const uint64_t word_mask = uint64_t{1} << (bit & 63);
    const uint64_t previous = words_[bit >> 6].fetch_or(
        word_mask, std::memory_order_relaxed);
    return (previous & word_mask) != 0;
  }

  bool test(uint64_t bit) const noexcept {
    bit &= mask_;
    return (words_[bit >> 6].load(std::memory_order_relaxed) &
            (uint64_t{1} << (bit & 63))) != 0;
  }

  std::size_t size_bits() const noexcept { return nbits_; }

 private:
  static std::size_t round_pow2(std::size_t n) {
    std::size_t p = 64;
    while (p < n) p *= 2;
    return p;
  }
  const std::size_t nbits_;
  const uint64_t mask_;
  std::unique_ptr<std::atomic<uint64_t>[]> words_;
};

class two_layer_bloom_t {
 public:
  // `expected_distinct` sizes both layers (bits_per_element * n).
  explicit two_layer_bloom_t(std::size_t expected_distinct,
                             int num_hashes = 3, int bits_per_element = 10)
      : num_hashes_(num_hashes),
        layer1_(expected_distinct * static_cast<std::size_t>(bits_per_element)),
        layer2_(expected_distinct * static_cast<std::size_t>(bits_per_element)) {}

  // Records one occurrence. Returns true if the k-mer had (probably) been
  // seen before this insertion.
  bool insert(kmer_t kmer) noexcept {
    const uint64_t h1 = hash_kmer(kmer);
    const uint64_t h2 = hash_kmer(h1 ^ 0x5851f42d4c957f2dull) | 1;
    bool was_in_layer1 = true;
    for (int i = 0; i < num_hashes_; ++i) {
      was_in_layer1 &=
          layer1_.test_and_set(h1 + static_cast<uint64_t>(i) * h2);
    }
    if (!was_in_layer1) return false;
    for (int i = 0; i < num_hashes_; ++i) {
      layer2_.test_and_set(h1 + static_cast<uint64_t>(i) * h2);
    }
    return true;
  }

  // True if the k-mer was (probably) seen at least twice.
  bool seen_twice(kmer_t kmer) const noexcept {
    const uint64_t h1 = hash_kmer(kmer);
    const uint64_t h2 = hash_kmer(h1 ^ 0x5851f42d4c957f2dull) | 1;
    for (int i = 0; i < num_hashes_; ++i) {
      if (!layer2_.test(h1 + static_cast<uint64_t>(i) * h2)) return false;
    }
    return true;
  }

  std::size_t memory_bytes() const noexcept {
    return (layer1_.size_bits() + layer2_.size_bits()) / 8;
  }

 private:
  const int num_hashes_;
  atomic_bitset_t layer1_;
  atomic_bitset_t layer2_;
};

}  // namespace kmer
