// k-mer utilities for the HipMer-style counting mini-app (paper Sec. 5.3).
//
// A read is an error-prone sample of a DNA sequence; a k-mer is a length-k
// substring. We 2-bit-encode bases into a 64-bit word, which supports
// k <= 31. The paper's chr14 run uses k = 51 with the real 7.75 GB read set;
// with synthetic data (see read_generator.hpp) a smaller k exercises the
// identical pipeline — the substitution is documented in DESIGN.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace kmer {

using kmer_t = uint64_t;

inline constexpr int max_k = 31;

// A=0 C=1 G=2 T=3; anything else is invalid.
inline int encode_base(char base) noexcept {
  switch (base) {
    case 'A':
    case 'a':
      return 0;
    case 'C':
    case 'c':
      return 1;
    case 'G':
    case 'g':
      return 2;
    case 'T':
    case 't':
      return 3;
    default:
      return -1;
  }
}

inline char decode_base(int code) noexcept { return "ACGT"[code & 3]; }

// Reverse complement of a k-mer (the canonical representation of a k-mer is
// min(kmer, revcomp): both strands count as the same sequence).
inline kmer_t reverse_complement(kmer_t kmer, int k) noexcept {
  kmer_t rc = 0;
  for (int i = 0; i < k; ++i) {
    rc = (rc << 2) | (3 - (kmer & 3));  // complement: A<->T, C<->G
    kmer >>= 2;
  }
  return rc;
}

inline kmer_t canonical(kmer_t kmer, int k) noexcept {
  const kmer_t rc = reverse_complement(kmer, k);
  return kmer < rc ? kmer : rc;
}

// 64-bit mix (splitmix finalizer); used for ownership mapping, Bloom filter
// probes, and the hashmap.
inline uint64_t hash_kmer(kmer_t kmer) noexcept {
  uint64_t z = kmer + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Extracts the canonical k-mers of a read into `out` (appending); windows
// containing non-ACGT characters are skipped, restarting the rolling window
// after the offending base.
void extract_kmers(std::string_view read, int k, std::vector<kmer_t>& out);

}  // namespace kmer
