#include "kmer/kmer.hpp"

#include <cassert>

namespace kmer {

void extract_kmers(std::string_view read, int k, std::vector<kmer_t>& out) {
  assert(k >= 1 && k <= max_k);
  const kmer_t mask = (kmer_t{1} << (2 * k)) - 1;
  kmer_t window = 0;
  int filled = 0;
  for (const char base : read) {
    const int code = encode_base(base);
    if (code < 0) {
      filled = 0;  // restart after an ambiguous base
      window = 0;
      continue;
    }
    window = ((window << 2) | static_cast<kmer_t>(code)) & mask;
    if (++filled >= k) out.push_back(canonical(window, k));
  }
}

}  // namespace kmer
