// Fine-grained spinlocks and the try-lock wrapper idiom (paper Sec. 4.2.2).
#pragma once

#include <atomic>

#include "util/backoff.hpp"
#include "util/cacheline.hpp"

namespace lci::util {

// Test-and-test-and-set spinlock with exponential backoff.
//
// This is the lock used for every fine-grained critical section in the LCI
// runtime: per-deque packet-pool locks, per-bucket matching-engine locks, the
// backlog queue, and the simulated network data structures. Critical sections
// are expected to be a handful of instructions, so a spinlock beats a mutex;
// the backoff yields under oversubscription so the lock is safe on any core
// count. Satisfies Lockable and so works with std::lock_guard.
class spinlock_t {
 public:
  spinlock_t() = default;
  spinlock_t(const spinlock_t&) = delete;
  spinlock_t& operator=(const spinlock_t&) = delete;

  void lock() noexcept {
    backoff_t backoff;
    while (true) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      // Test loop: spin on a plain load to avoid cache-line ping-pong.
      while (locked_.load(std::memory_order_relaxed)) backoff.spin();
    }
  }

  bool try_lock() noexcept {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

  bool is_locked() const noexcept {
    return locked_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> locked_{false};
};

// The "try-lock wrapper" of paper Sec. 4.2.2: low-level network stacks protect
// their objects with *blocking* spinlocks, so LCI shadows each such object
// with its own lock and only ever try-locks it. On failure the operation
// returns the `retry` error code instead of blocking, giving the client the
// chance to do useful work during contention.
//
// `guard()` returns an RAII guard whose boolean value says whether the lock
// was obtained.
class try_lock_wrapper_t {
 public:
  class guard_t {
   public:
    guard_t() = default;
    explicit guard_t(spinlock_t* lock) : lock_(lock) {}
    guard_t(const guard_t&) = delete;
    guard_t& operator=(const guard_t&) = delete;
    guard_t(guard_t&& other) noexcept : lock_(other.lock_) {
      other.lock_ = nullptr;
    }
    guard_t& operator=(guard_t&& other) noexcept {
      if (this != &other) {
        release();
        lock_ = other.lock_;
        other.lock_ = nullptr;
      }
      return *this;
    }
    ~guard_t() { release(); }

    explicit operator bool() const noexcept { return lock_ != nullptr; }

   private:
    void release() noexcept {
      if (lock_ != nullptr) lock_->unlock();
      lock_ = nullptr;
    }
    spinlock_t* lock_ = nullptr;
  };

  // Returns an engaged guard iff the lock was acquired without blocking.
  guard_t guard() noexcept {
    return lock_.try_lock() ? guard_t{&lock_} : guard_t{};
  }

  // Blocking acquisition, for the rare paths (e.g. finalization) that must
  // not fail.
  guard_t blocking_guard() noexcept {
    lock_.lock();
    return guard_t{&lock_};
  }

 private:
  spinlock_t lock_;
};

}  // namespace lci::util
