// Cache-line utilities shared by all concurrent data structures.
#pragma once

#include <cstddef>
#include <new>

namespace lci::util {

// Hardware destructive interference size. We hard-code 64 bytes: the value of
// std::hardware_destructive_interference_size is an ABI hazard on GCC and both
// evaluation platforms in the paper (EPYC 7742/7763) use 64-byte lines.
inline constexpr std::size_t cache_line_size = 64;

// Wraps a value so that it occupies (at least) one full cache line, preventing
// false sharing between adjacent elements of an array.
template <typename T>
struct alignas(cache_line_size) padded {
  T value{};

  padded() = default;
  explicit padded(const T& v) : value(v) {}
  explicit padded(T&& v) : value(static_cast<T&&>(v)) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

}  // namespace lci::util
