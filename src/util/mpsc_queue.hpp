// Bounded lock-free MPSC queue with an explicit consumer-claim protocol.
//
// The receive-path completion queue (paper Sec. 4.1.4 / 4.2.3): many
// producers — wire delivery and local completions posted from any thread —
// and exactly one consumer at a time, the polling thread that currently
// holds the claim. Producers use the Vyukov sequence-cell protocol (one CAS
// on the shared tail plus one cell handoff, producers on different cells
// never interfere). The consumer side exploits single-consumership: pop is
// a plain load of the head cursor, one acquire load of the cell sequence,
// and two relaxed/release stores — no CAS, no RMW on shared state.
//
// Single-consumership is not assumed, it is enforced: consumers must take
// the claim (one CAS on an otherwise-uncontended flag) via
// try_claim_consumer() and pop only while holding the guard. The claim
// release-stores the flag so the head cursor and cell states written by one
// consumer happen-before the next claimant's pops — consumer *rotation*
// (different progress threads claiming in turn) is safe, concurrent
// consumption is not. empty_approx() is designed to be called without the
// claim: an empty poll costs two relaxed loads and zero RMWs, which is what
// makes polling N idle shards cheap.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <optional>
#include <utility>

#include "util/cacheline.hpp"

namespace lci::util {

template <typename T>
class mpsc_queue_t {
 public:
  // Capacity is rounded up to a power of two (minimum 2).
  explicit mpsc_queue_t(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap *= 2;
    capacity_ = cap;
    mask_ = cap - 1;
    cells_ = new cell_t[cap];
    for (std::size_t i = 0; i < cap; ++i)
      cells_[i].sequence.store(i, std::memory_order_relaxed);
  }

  mpsc_queue_t(const mpsc_queue_t&) = delete;
  mpsc_queue_t& operator=(const mpsc_queue_t&) = delete;

  ~mpsc_queue_t() {
    // Destroy any elements still enqueued (destruction is single-threaded).
    std::size_t pos = head_.value.load(std::memory_order_relaxed);
    while (true) {
      cell_t* cell = &cells_[pos & mask_];
      if (cell->sequence.load(std::memory_order_acquire) != pos + 1) break;
      reinterpret_cast<T*>(&cell->storage)->~T();
      ++pos;
    }
    delete[] cells_;
  }

  // Non-blocking push; any thread. Returns false when the ring is full.
  bool try_push(T value) {
    cell_t* cell;
    std::size_t pos = tail_.value.load(std::memory_order_relaxed);
    while (true) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (diff == 0) {
        if (tail_.value.compare_exchange_weak(pos, pos + 1,
                                              std::memory_order_relaxed))
          break;
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = tail_.value.load(std::memory_order_relaxed);
      }
    }
    new (&cell->storage) T(std::move(value));
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  // RAII consumer claim. Exactly one guard is live at a time; pops require
  // a live guard. Movable so a poll function can return early.
  class consumer_guard_t {
   public:
    consumer_guard_t() = default;
    explicit consumer_guard_t(mpsc_queue_t* owner) : owner_(owner) {}
    consumer_guard_t(consumer_guard_t&& other) noexcept
        : owner_(other.owner_) {
      other.owner_ = nullptr;
    }
    consumer_guard_t& operator=(consumer_guard_t&& other) noexcept {
      if (this != &other) {
        release();
        owner_ = other.owner_;
        other.owner_ = nullptr;
      }
      return *this;
    }
    consumer_guard_t(const consumer_guard_t&) = delete;
    consumer_guard_t& operator=(const consumer_guard_t&) = delete;
    ~consumer_guard_t() { release(); }

    explicit operator bool() const noexcept { return owner_ != nullptr; }

    void release() {
      if (owner_ != nullptr) {
        // Publishes this consumer's head/cell writes to the next claimant.
        owner_->consumer_busy_.value.store(false, std::memory_order_release);
        owner_ = nullptr;
      }
    }

   private:
    mpsc_queue_t* owner_ = nullptr;
  };

  // One CAS when the queue is unclaimed; a single relaxed load (no RMW, no
  // cache-line ownership transfer) when another thread already holds it.
  consumer_guard_t try_claim_consumer() {
    if (consumer_busy_.value.load(std::memory_order_relaxed))
      return consumer_guard_t{};
    bool expected = false;
    if (!consumer_busy_.value.compare_exchange_strong(
            expected, true, std::memory_order_acquire))
      return consumer_guard_t{};
    return consumer_guard_t{this};
  }

  // Non-blocking pop; caller must hold the consumer claim.
  std::optional<T> try_pop() {
    const std::size_t pos = head_.value.load(std::memory_order_relaxed);
    cell_t* cell = &cells_[pos & mask_];
    const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
    if (seq != pos + 1) return std::nullopt;  // empty (or producer mid-write)
    T* slot = reinterpret_cast<T*>(&cell->storage);
    std::optional<T> result(std::move(*slot));
    slot->~T();
    cell->sequence.store(pos + capacity_, std::memory_order_release);
    head_.value.store(pos + 1, std::memory_order_relaxed);
    return result;
  }

  std::size_t capacity() const noexcept { return capacity_; }

  // Approximate size; exact only in quiescence. Safe from any thread.
  std::size_t size_approx() const noexcept {
    const std::size_t tail = tail_.value.load(std::memory_order_relaxed);
    const std::size_t head = head_.value.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

  // The idle fast path: two relaxed loads, no RMW. A concurrent push may be
  // missed this round; the caller polls again, so visibility is eventual
  // (the doorbell/poll loop, not this load, is the wakeup mechanism).
  bool empty_approx() const noexcept { return size_approx() == 0; }

 private:
  struct cell_t {
    std::atomic<std::size_t> sequence;
    alignas(T) unsigned char storage[sizeof(T)];
  };

  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  cell_t* cells_ = nullptr;
  padded<std::atomic<std::size_t>> head_{};
  padded<std::atomic<std::size_t>> tail_{};
  padded<std::atomic<bool>> consumer_busy_{};
};

}  // namespace lci::util
