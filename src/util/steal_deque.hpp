// Per-thread deque with head-end stealing (paper Sec. 4.1.2).
//
// The packet pool stores packets in one such deque per thread. The owning
// thread pushes and pops at the *tail* (hot end, best cache locality: the
// most recently freed packet is re-used first); thieves take *half* the
// packets from the *head* (cold end). Thread safety comes from a per-deque
// spinlock, so under normal operation (every thread working its own deque)
// there is no contention at all.
#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

#include "util/cacheline.hpp"
#include "util/spinlock.hpp"

namespace lci::util {

template <typename T>
class alignas(cache_line_size) steal_deque_t {
 public:
  explicit steal_deque_t(std::size_t initial_capacity = 64) {
    buffer_.resize(initial_capacity ? initial_capacity : 1);
  }

  steal_deque_t(const steal_deque_t&) = delete;
  steal_deque_t& operator=(const steal_deque_t&) = delete;

  // Owner-side push at the tail.
  void push_tail(T value) {
    std::lock_guard<spinlock_t> guard(lock_);
    if (size_ == buffer_.size()) grow_locked();
    buffer_[index(head_ + size_)] = value;
    ++size_;
  }

  // Owner-side pop at the tail. Returns false when empty.
  bool pop_tail(T* out) {
    std::lock_guard<spinlock_t> guard(lock_);
    if (size_ == 0) return false;
    --size_;
    *out = buffer_[index(head_ + size_)];
    return true;
  }

  // Thief-side: removes ceil(size/2) elements from the head into `out`.
  // Returns the number of elements stolen (0 when empty or when the lock
  // would block — stealing is opportunistic, so we only try-lock).
  std::size_t try_steal_half(std::vector<T>& out) {
    if (!lock_.try_lock()) return 0;
    const std::size_t count = (size_ + 1) / 2;
    for (std::size_t i = 0; i < count; ++i) {
      out.push_back(buffer_[index(head_)]);
      head_ = index(head_ + 1);
    }
    size_ -= count;
    lock_.unlock();
    return count;
  }

  std::size_t size_approx() const noexcept { return size_; }

 private:
  std::size_t index(std::size_t i) const noexcept { return i % buffer_.size(); }

  // Caller holds lock_.
  void grow_locked() {
    std::vector<T> bigger(buffer_.size() * 2);
    for (std::size_t i = 0; i < size_; ++i) bigger[i] = buffer_[index(head_ + i)];
    buffer_.swap(bigger);
    head_ = 0;
  }

  spinlock_t lock_;
  std::vector<T> buffer_;
  std::size_t head_ = 0;  // index of the oldest element
  std::size_t size_ = 0;
};

}  // namespace lci::util
