// Fixed-capacity inline vector.
//
// The matching engine's fast path (paper Sec. 4.1.3) replaces linked lists
// with fixed-size arrays when buckets hold <= 3 queues and queues hold <= 2
// entries, so that a low-load-factor insertion costs a single cache miss.
// This container is that fixed-size array: no heap allocation, no iterator
// invalidation games, O(capacity) erase by swap-with-last.
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <utility>

namespace lci::util {

template <typename T, std::size_t Capacity>
class inline_vector_t {
 public:
  inline_vector_t() = default;
  inline_vector_t(const inline_vector_t&) = delete;
  inline_vector_t& operator=(const inline_vector_t&) = delete;
  ~inline_vector_t() { clear(); }

  bool try_push_back(T value) {
    if (size_ == Capacity) return false;
    new (slot(size_)) T(std::move(value));
    ++size_;
    return true;
  }

  void push_back(T value) {
    const bool ok = try_push_back(std::move(value));
    assert(ok);
    (void)ok;
  }

  T& operator[](std::size_t i) noexcept {
    assert(i < size_);
    return *slot(i);
  }
  const T& operator[](std::size_t i) const noexcept {
    assert(i < size_);
    return *slot(i);
  }

  // Removes element i by moving the last element into its place (order is
  // not preserved — callers that need order must not use this).
  void erase_unordered(std::size_t i) noexcept {
    assert(i < size_);
    --size_;
    if (i != size_) (*slot(i)) = std::move(*slot(size_));
    slot(size_)->~T();
  }

  // Removes element i preserving order of the remaining elements.
  void erase_ordered(std::size_t i) noexcept {
    assert(i < size_);
    for (std::size_t j = i + 1; j < size_; ++j)
      (*slot(j - 1)) = std::move(*slot(j));
    --size_;
    slot(size_)->~T();
  }

  void clear() noexcept {
    for (std::size_t i = 0; i < size_; ++i) slot(i)->~T();
    size_ = 0;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  bool full() const noexcept { return size_ == Capacity; }
  static constexpr std::size_t capacity() noexcept { return Capacity; }

  T* begin() noexcept { return slot(0); }
  T* end() noexcept { return slot(size_); }
  const T* begin() const noexcept { return slot(0); }
  const T* end() const noexcept { return slot(size_); }

 private:
  T* slot(std::size_t i) noexcept {
    return std::launder(reinterpret_cast<T*>(&storage_[i]));
  }
  const T* slot(std::size_t i) const noexcept {
    return std::launder(reinterpret_cast<const T*>(&storage_[i]));
  }

  alignas(T) unsigned char storage_[Capacity][sizeof(T)];
  std::size_t size_ = 0;
};

}  // namespace lci::util
