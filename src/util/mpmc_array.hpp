// Multi-Producer-Multi-Consumer array (paper Sec. 4.1.1).
//
// A dynamically-resizable array for resource registries: written rarely
// (resource registration, off the critical path), read constantly (every
// incoming active message looks up its remote completion handle). Writes and
// appends take a lock; reads are lock-free. Every resize swaps in an array of
// double the capacity; old arrays are retired, not freed, until destruction,
// so a concurrent lock-free reader can never touch reclaimed memory (the
// deferred-reclamation idea borrowed from hazard-pointer literature [2]).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <mutex>
#include <vector>

#include "util/spinlock.hpp"

namespace lci::util {

// T must be trivially copyable and lock-free as std::atomic<T> for reads to
// be genuinely lock-free (pointers and small handles in practice).
template <typename T>
class mpmc_array_t {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  explicit mpmc_array_t(std::size_t initial_capacity = 8)
      : current_(new slab_t(initial_capacity ? initial_capacity : 1)) {}

  mpmc_array_t(const mpmc_array_t&) = delete;
  mpmc_array_t& operator=(const mpmc_array_t&) = delete;

  ~mpmc_array_t() {
    delete current_.load(std::memory_order_relaxed);
    for (slab_t* retired : retired_) delete retired;
  }

  // Lock-free read. Returns a default-constructed T for never-written slots;
  // out-of-range reads (index >= size()) are the caller's bug.
  T get(std::size_t index) const noexcept {
    const slab_t* slab = current_.load(std::memory_order_acquire);
    assert(index < slab->capacity);
    return slab->slots[index].load(std::memory_order_acquire);
  }

  // Locked write to an existing slot.
  void put(std::size_t index, T value) {
    std::lock_guard<spinlock_t> guard(write_lock_);
    slab_t* slab = current_.load(std::memory_order_relaxed);
    assert(index < size_);
    slab->slots[index].store(value, std::memory_order_release);
  }

  // Locked append; returns the index of the new element. Doubles capacity
  // when full.
  std::size_t push_back(T value) {
    std::lock_guard<spinlock_t> guard(write_lock_);
    slab_t* slab = current_.load(std::memory_order_relaxed);
    if (size_ == slab->capacity) {
      slab = resize_locked(slab->capacity * 2);
    }
    slab->slots[size_].store(value, std::memory_order_release);
    // Publish the new size only after the slot holds the value so a reader
    // that observes index < size() always reads the element.
    return size_.fetch_add(1, std::memory_order_release);
  }

  // Locked write that grows the array so that `index` is valid (slots below
  // it default-initialize to T{}). Used for registries indexed by an
  // externally assigned dense id (e.g. thread ids).
  void put_extend(std::size_t index, T value) {
    std::lock_guard<spinlock_t> guard(write_lock_);
    slab_t* slab = current_.load(std::memory_order_relaxed);
    std::size_t capacity = slab->capacity;
    while (capacity <= index) capacity *= 2;
    if (capacity != slab->capacity) slab = resize_locked(capacity);
    slab->slots[index].store(value, std::memory_order_release);
    if (size_.load(std::memory_order_relaxed) <= index)
      size_.store(index + 1, std::memory_order_release);
  }

  std::size_t size() const noexcept {
    return size_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const noexcept {
    return current_.load(std::memory_order_acquire)->capacity;
  }

 private:
  struct slab_t {
    explicit slab_t(std::size_t cap)
        : capacity(cap), slots(new std::atomic<T>[cap]) {
      for (std::size_t i = 0; i < cap; ++i)
        slots[i].store(T{}, std::memory_order_relaxed);
    }
    ~slab_t() { delete[] slots; }
    const std::size_t capacity;
    std::atomic<T>* const slots;
  };

  // Caller holds write_lock_.
  slab_t* resize_locked(std::size_t new_capacity) {
    slab_t* old_slab = current_.load(std::memory_order_relaxed);
    auto* new_slab = new slab_t(new_capacity);
    for (std::size_t i = 0; i < size_; ++i) {
      new_slab->slots[i].store(old_slab->slots[i].load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
    }
    current_.store(new_slab, std::memory_order_release);
    // Readers may still hold a pointer to old_slab: defer its deallocation.
    retired_.push_back(old_slab);
    return new_slab;
  }

  std::atomic<slab_t*> current_;
  std::atomic<std::size_t> size_{0};
  spinlock_t write_lock_;
  std::vector<slab_t*> retired_;  // guarded by write_lock_
};

}  // namespace lci::util
