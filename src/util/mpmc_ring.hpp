// Bounded MPMC ring with per-cell sequence numbers (Vyukov-style).
//
// This is the "hand-written Fetch-And-Add-based fixed-size array" completion
// queue implementation of paper Sec. 4.1.4, and also the segment type of the
// LCRQ-style unbounded queue. Each cell carries a sequence counter; producers
// and consumers claim slots with fetch-add on shared head/tail counters and
// then synchronize on the cell sequence, so the fast path is one FAA plus one
// cell handoff and threads contending on *different* cells never interfere.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <optional>
#include <utility>

#include "util/backoff.hpp"
#include "util/cacheline.hpp"

namespace lci::util {

template <typename T>
class mpmc_ring_t {
 public:
  // Capacity is rounded up to a power of two (minimum 2).
  explicit mpmc_ring_t(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap *= 2;
    capacity_ = cap;
    mask_ = cap - 1;
    cells_ = new cell_t[cap];
    for (std::size_t i = 0; i < cap; ++i)
      cells_[i].sequence.store(i, std::memory_order_relaxed);
  }

  mpmc_ring_t(const mpmc_ring_t&) = delete;
  mpmc_ring_t& operator=(const mpmc_ring_t&) = delete;

  ~mpmc_ring_t() {
    // Destroy any elements still enqueued.
    while (try_pop().has_value()) {
    }
    delete[] cells_;
  }

  // Non-blocking push. Returns false when the ring is full.
  bool try_push(T value) {
    cell_t* cell;
    std::size_t pos = tail_.value.load(std::memory_order_relaxed);
    while (true) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (diff == 0) {
        if (tail_.value.compare_exchange_weak(pos, pos + 1,
                                              std::memory_order_relaxed))
          break;
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = tail_.value.load(std::memory_order_relaxed);
      }
    }
    new (&cell->storage) T(std::move(value));
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  // Non-blocking pop. Returns nullopt when the ring is empty.
  std::optional<T> try_pop() {
    cell_t* cell;
    std::size_t pos = head_.value.load(std::memory_order_relaxed);
    while (true) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (diff == 0) {
        if (head_.value.compare_exchange_weak(pos, pos + 1,
                                              std::memory_order_relaxed))
          break;
      } else if (diff < 0) {
        return std::nullopt;  // empty
      } else {
        pos = head_.value.load(std::memory_order_relaxed);
      }
    }
    T* slot = reinterpret_cast<T*>(&cell->storage);
    std::optional<T> result(std::move(*slot));
    slot->~T();
    cell->sequence.store(pos + capacity_, std::memory_order_release);
    return result;
  }

  std::size_t capacity() const noexcept { return capacity_; }

  // Approximate size; exact only in quiescence.
  std::size_t size_approx() const noexcept {
    const std::size_t tail = tail_.value.load(std::memory_order_relaxed);
    const std::size_t head = head_.value.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

  bool empty_approx() const noexcept { return size_approx() == 0; }

 private:
  struct cell_t {
    std::atomic<std::size_t> sequence;
    alignas(T) unsigned char storage[sizeof(T)];
  };

  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  cell_t* cells_ = nullptr;
  padded<std::atomic<std::size_t>> head_{};
  padded<std::atomic<std::size_t>> tail_{};
};

}  // namespace lci::util
