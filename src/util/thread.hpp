// Dense thread identifiers.
//
// The packet pool (paper Sec. 4.1.2) keeps one deque per thread, indexed by a
// small dense thread id rather than std::thread::id. Ids are assigned lazily
// on first use and are never reused; long-lived resources sized by thread id
// (packet-pool deque registries) grow monotonically with the number of
// distinct threads that ever touched them, which matches LCI's thread-local
// storage strategy.
#pragma once

#include <atomic>
#include <cstddef>

namespace lci::util {

namespace detail {
inline std::atomic<std::size_t> next_thread_id{0};
}  // namespace detail

// Dense id of the calling thread, assigned on first call.
inline std::size_t thread_id() noexcept {
  thread_local const std::size_t id =
      detail::next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// Upper bound (exclusive) on all ids handed out so far.
inline std::size_t thread_id_bound() noexcept {
  return detail::next_thread_id.load(std::memory_order_relaxed);
}

}  // namespace lci::util
