// Leveled diagnostic logging, off by default.
//
// Enable with LCI_LOG=error|warn|info|debug|trace (or programmatically via
// set_log_level, which tests use). Messages go to stderr with the level,
// rank-agnostic (the sim runs many ranks per process; callers include rank
// context in the message when it matters). The macro evaluates its arguments
// only when the level is enabled, so disabled logging costs one branch on a
// cached atomic.
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lci::util {

enum class log_level_t : int {
  none = 0,
  error = 1,
  warn = 2,
  info = 3,
  debug = 4,
  trace = 5,
};

namespace detail {
inline std::atomic<int>& log_level_cell() {
  static std::atomic<int> level{-1};  // -1: not yet read from the env
  return level;
}

inline int parse_log_env() {
  const char* value = std::getenv("LCI_LOG");
  if (value == nullptr) return static_cast<int>(log_level_t::none);
  if (std::strcmp(value, "error") == 0) return 1;
  if (std::strcmp(value, "warn") == 0) return 2;
  if (std::strcmp(value, "info") == 0) return 3;
  if (std::strcmp(value, "debug") == 0) return 4;
  if (std::strcmp(value, "trace") == 0) return 5;
  return static_cast<int>(log_level_t::none);
}
}  // namespace detail

inline log_level_t log_level() {
  int level = detail::log_level_cell().load(std::memory_order_relaxed);
  if (level < 0) {
    level = detail::parse_log_env();
    detail::log_level_cell().store(level, std::memory_order_relaxed);
  }
  return static_cast<log_level_t>(level);
}

inline void set_log_level(log_level_t level) {
  detail::log_level_cell().store(static_cast<int>(level),
                                 std::memory_order_relaxed);
}

inline bool log_enabled(log_level_t level) {
  return static_cast<int>(log_level()) >= static_cast<int>(level);
}

inline const char* log_level_name(log_level_t level) {
  switch (level) {
    case log_level_t::error: return "error";
    case log_level_t::warn: return "warn";
    case log_level_t::info: return "info";
    case log_level_t::debug: return "debug";
    case log_level_t::trace: return "trace";
    default: return "none";
  }
}

}  // namespace lci::util

// LCI_LOG_(level, "fmt", args...) — printf-style; no trailing newline
// needed. The line is assembled in a local buffer and written with a single
// fwrite so concurrent ranks/threads do not interleave mid-line.
#define LCI_LOG_(level_, ...)                                              \
  do {                                                                     \
    if (lci::util::log_enabled(lci::util::log_level_t::level_)) {         \
      char lci_log_buf_[512];                                              \
      int lci_log_n_ = std::snprintf(                                      \
          lci_log_buf_, sizeof(lci_log_buf_), "[lci:%s] ",                 \
          lci::util::log_level_name(lci::util::log_level_t::level_));     \
      lci_log_n_ += std::snprintf(lci_log_buf_ + lci_log_n_,               \
                                  sizeof(lci_log_buf_) -                   \
                                      static_cast<std::size_t>(lci_log_n_),\
                                  __VA_ARGS__);                            \
      if (lci_log_n_ > static_cast<int>(sizeof(lci_log_buf_)) - 2)         \
        lci_log_n_ = static_cast<int>(sizeof(lci_log_buf_)) - 2;           \
      lci_log_buf_[lci_log_n_] = '\n';                                     \
      std::fwrite(lci_log_buf_, 1, static_cast<std::size_t>(lci_log_n_) + 1,\
                  stderr);                                                 \
    }                                                                      \
  } while (0)
