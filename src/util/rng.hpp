// Small fast RNG (xoshiro256**), used for packet-steal victim selection,
// synthetic workload generation, and property-test sweeps. Deterministic by
// seed so experiments are reproducible.
#pragma once

#include <cstdint>

namespace lci::util {

// SplitMix64: seeds the main generator; also a fine standalone mixer.
inline uint64_t splitmix64(uint64_t& state) noexcept {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

class xoshiro256_t {
 public:
  using result_type = uint64_t;

  explicit xoshiro256_t(uint64_t seed = 0x853c49e6748fea9bull) noexcept {
    uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }

  result_type operator()() noexcept {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Lemire's multiply-shift; slight modulo
  // bias is irrelevant for victim selection and workload generation.
  uint64_t below(uint64_t bound) noexcept {
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(operator()()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t state_[4];
};

}  // namespace lci::util
