// LCRQ-style unbounded MPMC queue (paper Sec. 4.1.4).
//
// The paper's default completion queue follows Morrison & Afek's LCRQ [38]:
// a linked list of fetch-and-add rings. We keep that structure — each segment
// is a Vyukov-style FAA ring (see mpmc_ring.hpp) and segments are chained
// when a ring fills up — with two simplifications that preserve correctness:
//
//  * Segment capacity doubles along the chain, so the total number of
//    segments is logarithmic in the peak queue size.
//  * Segments are only reclaimed at destruction. A consumer therefore never
//    races with reclamation (no hazard pointers needed), and a producer that
//    read a stale tail pointer can safely complete its push into an earlier
//    segment: consumers scan the chain from the first segment, so no element
//    is ever stranded.
//
// FIFO order is maintained per segment but not across segments under
// contention; LCI's completion queues do not promise inter-thread ordering
// (out-of-order delivery is part of the interface contract, Sec. 3.3.2).
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>

#include "util/mpmc_ring.hpp"

namespace lci::util {

template <typename T>
class lcrq_t {
 public:
  explicit lcrq_t(std::size_t initial_segment_capacity = 1024)
      : head_(new node_t(initial_segment_capacity)) {
    tail_.store(head_, std::memory_order_relaxed);
  }

  lcrq_t(const lcrq_t&) = delete;
  lcrq_t& operator=(const lcrq_t&) = delete;

  ~lcrq_t() {
    node_t* node = head_;
    while (node != nullptr) {
      node_t* next = node->next.load(std::memory_order_relaxed);
      delete node;
      node = next;
    }
  }

  // Always succeeds; grows the queue when the tail segment is full.
  void push(T value) {
    while (true) {
      node_t* tail = tail_.load(std::memory_order_acquire);
      if (tail->ring.try_push(std::move(value))) return;
      // Tail segment full: extend the chain with a segment twice as large.
      node_t* next = tail->next.load(std::memory_order_acquire);
      if (next == nullptr) {
        auto* fresh = new node_t(tail->ring.capacity() * 2);
        node_t* expected = nullptr;
        if (tail->next.compare_exchange_strong(expected, fresh,
                                               std::memory_order_acq_rel)) {
          next = fresh;
        } else {
          delete fresh;
          next = expected;
        }
      }
      // Help swing the tail; losing the race is fine.
      tail_.compare_exchange_strong(tail, next, std::memory_order_acq_rel);
    }
  }

  // Non-blocking pop; scans the segment chain from the head so a value pushed
  // into an earlier (stale-tail) segment is still found.
  std::optional<T> try_pop() {
    for (node_t* node = head_; node != nullptr;
         node = node->next.load(std::memory_order_acquire)) {
      if (auto value = node->ring.try_pop()) return value;
    }
    return std::nullopt;
  }

  bool empty_approx() const noexcept {
    for (const node_t* node = head_; node != nullptr;
         node = node->next.load(std::memory_order_acquire)) {
      if (!node->ring.empty_approx()) return false;
    }
    return true;
  }

  std::size_t size_approx() const noexcept {
    std::size_t total = 0;
    for (const node_t* node = head_; node != nullptr;
         node = node->next.load(std::memory_order_acquire)) {
      total += node->ring.size_approx();
    }
    return total;
  }

  // Number of segments in the chain (diagnostic; 1 unless the queue ever
  // overflowed its initial segment).
  std::size_t segment_count() const noexcept {
    std::size_t count = 0;
    for (const node_t* node = head_; node != nullptr;
         node = node->next.load(std::memory_order_acquire)) {
      ++count;
    }
    return count;
  }

 private:
  struct node_t {
    explicit node_t(std::size_t capacity) : ring(capacity) {}
    mpmc_ring_t<T> ring;
    std::atomic<node_t*> next{nullptr};
  };

  node_t* const head_;
  std::atomic<node_t*> tail_;
};

}  // namespace lci::util
