// Exponential backoff helper for spin loops.
//
// All spin loops in this codebase must eventually yield to the OS scheduler:
// the evaluation may oversubscribe cores (the paper runs up to 128 threads per
// node; this reproduction may run on far fewer cores), and a pure busy-wait
// would livelock when the lock holder is descheduled.
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace lci::util {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // Fallback: nothing cheaper than a compiler barrier.
  asm volatile("" ::: "memory");
#endif
}

// Spins with increasing numbers of pause instructions, then falls back to
// std::this_thread::yield so progress is possible under oversubscription.
class backoff_t {
 public:
  void spin() noexcept {
    if (round_ < yield_threshold) {
      const uint32_t spins = 1u << round_;
      for (uint32_t i = 0; i < spins; ++i) cpu_relax();
      ++round_;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() noexcept { round_ = 0; }

 private:
  static constexpr uint32_t yield_threshold = 6;  // up to 32 pauses, then yield
  uint32_t round_ = 0;
};

}  // namespace lci::util
