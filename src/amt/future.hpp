// Futures for minihpx — the continuation-passing layer HPX applications are
// written against (the paper's Sec. 5.4 workload is "a set of fine-grained
// tasks and task dependencies"; futures are how HPX expresses those
// dependencies).
//
// Deliberately small: promise/future with value or exception, inline or
// scheduled continuations (`then`), `async` on a scheduler, and `when_all`.
// get() spins with yield — inside a worker, prefer then() so the worker
// keeps executing tasks instead of blocking.
#pragma once

#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "amt/minihpx.hpp"
#include "util/spinlock.hpp"

namespace minihpx {

template <typename T>
class promise_t;

namespace detail {

template <typename T>
struct shared_state_t {
  lci::util::spinlock_t lock;
  std::optional<T> value;                 // guarded by lock until ready
  std::exception_ptr error;               // guarded by lock until ready
  std::atomic<bool> ready{false};
  std::vector<std::function<void()>> continuations;  // guarded by lock

  // Publishes the result and returns the continuations to run.
  std::vector<std::function<void()>> publish(std::optional<T> v,
                                             std::exception_ptr e) {
    std::vector<std::function<void()>> to_run;
    {
      std::lock_guard<lci::util::spinlock_t> guard(lock);
      if (ready.load(std::memory_order_relaxed))
        throw std::logic_error("promise already satisfied");
      value = std::move(v);
      error = e;
      to_run.swap(continuations);
      ready.store(true, std::memory_order_release);
    }
    return to_run;
  }
};

}  // namespace detail

template <typename T>
class future_t {
 public:
  future_t() = default;
  explicit future_t(std::shared_ptr<detail::shared_state_t<T>> state)
      : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }
  bool is_ready() const {
    return state_ != nullptr &&
           state_->ready.load(std::memory_order_acquire);
  }

  // Blocking get (spin+yield). Rethrows a stored exception.
  T get() const {
    if (!state_) throw std::logic_error("get() on an invalid future");
    while (!state_->ready.load(std::memory_order_acquire))
      std::this_thread::yield();
    if (state_->error) std::rethrow_exception(state_->error);
    return *state_->value;
  }

  // Attaches a continuation fn(T) -> U; returns the future of its result.
  // Runs inline if already ready, inline at set_value time otherwise — or as
  // a scheduled task when a scheduler is given (the AMT style: completions
  // spawn work instead of blocking anybody).
  template <typename Fn>
  auto then(Fn fn, scheduler_t* scheduler = nullptr) const
      -> future_t<std::invoke_result_t<Fn, T>> {
    using U = std::invoke_result_t<Fn, T>;
    if (!state_) throw std::logic_error("then() on an invalid future");
    auto next = std::make_shared<detail::shared_state_t<U>>();
    auto state = state_;
    auto run = [state, next, fn = std::move(fn)]() mutable {
      std::vector<std::function<void()>> to_run;
      try {
        if (state->error) {
          to_run = next->publish(std::nullopt, state->error);
        } else {
          to_run = next->publish(fn(*state->value), nullptr);
        }
      } catch (...) {
        to_run = next->publish(std::nullopt, std::current_exception());
      }
      for (auto& c : to_run) c();
    };

    bool run_now = false;
    {
      std::lock_guard<lci::util::spinlock_t> guard(state_->lock);
      if (state_->ready.load(std::memory_order_acquire)) {
        run_now = true;
      } else if (scheduler != nullptr) {
        state_->continuations.push_back(
            [scheduler, run]() mutable { scheduler->spawn(run); });
      } else {
        state_->continuations.push_back(run);
      }
    }
    if (run_now) {
      if (scheduler != nullptr)
        scheduler->spawn(run);
      else
        run();
    }
    return future_t<U>(next);
  }

 private:
  std::shared_ptr<detail::shared_state_t<T>> state_;
};

template <typename T>
class promise_t {
 public:
  promise_t() : state_(std::make_shared<detail::shared_state_t<T>>()) {}

  future_t<T> get_future() const { return future_t<T>(state_); }

  void set_value(T value) {
    auto to_run = state_->publish(std::move(value), nullptr);
    for (auto& c : to_run) c();
  }

  void set_exception(std::exception_ptr error) {
    auto to_run = state_->publish(std::nullopt, error);
    for (auto& c : to_run) c();
  }

 private:
  std::shared_ptr<detail::shared_state_t<T>> state_;
};

template <typename T>
future_t<T> make_ready_future(T value) {
  promise_t<T> promise;
  promise.set_value(std::move(value));
  return promise.get_future();
}

// Runs fn() as a task on the scheduler; the returned future becomes ready
// with its result (or exception).
template <typename Fn>
auto async(scheduler_t& scheduler, Fn fn)
    -> future_t<std::invoke_result_t<Fn>> {
  using T = std::invoke_result_t<Fn>;
  promise_t<T> promise;
  auto future = promise.get_future();
  scheduler.spawn([promise, fn = std::move(fn)]() mutable {
    try {
      promise.set_value(fn());
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
  });
  return future;
}

// Future of all results, ready when every input is (collected by a shared
// atomic countdown; order of `futures` preserved in the result).
// Limitation: an input that completes with an exception leaves the gathered
// future pending — handle errors with then() before gathering.
template <typename T>
future_t<std::vector<T>> when_all(std::vector<future_t<T>> futures,
                                  scheduler_t* scheduler = nullptr) {
  struct gather_t {
    promise_t<std::vector<T>> promise;
    std::vector<std::optional<T>> slots;
    std::atomic<std::size_t> remaining;
    lci::util::spinlock_t error_lock;
    std::exception_ptr first_error;
  };
  auto gather = std::make_shared<gather_t>();
  gather->slots.resize(futures.size());
  gather->remaining.store(futures.size(), std::memory_order_relaxed);
  if (futures.empty()) {
    gather->promise.set_value({});
    return gather->promise.get_future();
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    futures[i].then(
        [gather, i](T value) {
          gather->slots[i] = std::move(value);
          if (gather->remaining.fetch_sub(1, std::memory_order_acq_rel) ==
              1) {
            std::vector<T> all;
            all.reserve(gather->slots.size());
            for (auto& slot : gather->slots) all.push_back(std::move(*slot));
            gather->promise.set_value(std::move(all));
          }
          return 0;  // then() needs a value; discarded
        },
        scheduler);
  }
  return gather->promise.get_future();
}

}  // namespace minihpx
