// octo — an Octo-Tiger-like octree mini-application on minihpx (the Fig. 7
// workload; see DESIGN.md substitutions).
//
// Octo-Tiger evolves stellar systems on an adaptive octree of 8^3 subgrids
// with fully asynchronous task execution and communication overlap. This
// mini-app keeps the communication-relevant structure:
//  * a 3D arrangement of fixed-size subgrids distributed block-wise over
//    ranks (the fixed-depth octree leaf level);
//  * per timestep, every subgrid exchanges its 6 ghost faces with its
//    neighbors — same-rank neighbors by direct copy, remote neighbors by
//    parcel — and runs a 7-point stencil update as a task once all faces
//    for its step have arrived;
//  * subgrids advance asynchronously (a subgrid may start step s+1 while a
//    neighbor is still in step s; double-buffered ghost slots bound the skew
//    to one step), so many fine-grained parcels from many worker threads are
//    in flight concurrently — the regime Fig. 7 measures;
//  * an upward octree reduction of a scalar per step (total mass analogue),
//    used as the determinism checksum.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lcw/lcw.hpp"
#include "net/net.hpp"

namespace octo {

struct config_t {
  int grid_dim = 4;        // subgrids per side (total = grid_dim^3)
  int subgrid_dim = 8;     // cells per subgrid side (Octo-Tiger uses 8)
  int steps = 4;
  int nranks = 2;
  int nthreads = 2;        // worker threads per rank
  lcw::backend_t backend = lcw::backend_t::lci;
  int ndevices = 1;        // devices/VCIs per rank (Fig. 7's tuning knob)
  lci::net::config_t fabric{};  // simulated-fabric parameters
};

struct result_t {
  double seconds = 0;
  double seconds_per_step = 0;
  double checksum = 0;       // deterministic across backends & rank counts
  std::size_t parcels = 0;   // total remote face parcels
  // Per-step total mass from the in-band octree reduction (leaf subgrids ->
  // rank partials -> binary tree over ranks -> rank 0). Deterministic for a
  // fixed rank count; across rank counts it differs only by floating-point
  // summation order.
  std::vector<double> step_mass;
};

// Runs the mini-app on a fresh simulated world.
result_t run(const config_t& config);

// Single-rank, single-thread reference (no communication) for verification.
result_t run_serial(const config_t& config);

}  // namespace octo
