#include "amt/octo.hpp"

#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "amt/minihpx.hpp"
#include "core/lci.hpp"

namespace octo {

namespace {

double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Faces: 0 x-, 1 x+, 2 y-, 3 y+, 4 z-, 5 z+.
constexpr int opposite_face(int face) { return face ^ 1; }

struct face_msg_t {
  int32_t target;  // global subgrid id
  int32_t face;    // ghost slot at the target
  int32_t step;
  int32_t pad = 0;
  // followed by subgrid_dim^2 doubles
};

class subgrid_t {
 public:
  void init(int id, int dim, double seed_value) {
    id_ = id;
    dim_ = dim;
    const std::size_t n = static_cast<std::size_t>(dim) * dim * dim;
    cur_.assign(n, 0.0);
    next_.assign(n, 0.0);
    // Deterministic initial condition: a smooth bump keyed by the global id.
    for (int z = 0; z < dim; ++z)
      for (int y = 0; y < dim; ++y)
        for (int x = 0; x < dim; ++x)
          cur_[index(x, y, z)] =
              seed_value + 0.01 * std::sin(0.7 * x + 1.3 * y + 2.1 * z);
    for (auto& parity : ghosts_)
      for (auto& face : parity)
        face.assign(static_cast<std::size_t>(dim) * dim, 0.0);
  }

  std::size_t index(int x, int y, int z) const {
    return static_cast<std::size_t>(x) +
           static_cast<std::size_t>(dim_) *
               (static_cast<std::size_t>(y) +
                static_cast<std::size_t>(dim_) * static_cast<std::size_t>(z));
  }

  // Extracts face `f` of the current state into `out` (dim^2 doubles).
  void extract_face(int f, double* out) const {
    const int d = dim_;
    std::size_t o = 0;
    for (int b = 0; b < d; ++b)
      for (int a = 0; a < d; ++a) out[o++] = cur_[face_cell(f, a, b)];
  }

  std::size_t face_cell(int f, int a, int b) const {
    const int d = dim_;
    switch (f) {
      case 0: return index(0, a, b);
      case 1: return index(d - 1, a, b);
      case 2: return index(a, 0, b);
      case 3: return index(a, d - 1, b);
      case 4: return index(a, b, 0);
      default: return index(a, b, d - 1);
    }
  }

  void store_ghost(int face, int step, const double* data) {
    auto& slot = ghosts_[step & 1][static_cast<std::size_t>(face)];
    std::memcpy(slot.data(), data, slot.size() * sizeof(double));
  }

  // 7-point relaxation using parity ghosts for out-of-subgrid neighbors;
  // missing (domain-boundary) faces read 0 contributions.
  void update(int step, const bool* has_neighbor) {
    const int d = dim_;
    const auto& g = ghosts_[step & 1];
    auto neighbor_value = [&](int x, int y, int z, int f) -> double {
      // (x,y,z) is in range except along the face axis.
      if (x < 0) return has_neighbor[0] ? g[0][ghost_index(y, z)] : 0.0;
      if (x >= d) return has_neighbor[1] ? g[1][ghost_index(y, z)] : 0.0;
      if (y < 0) return has_neighbor[2] ? g[2][ghost_index(x, z)] : 0.0;
      if (y >= d) return has_neighbor[3] ? g[3][ghost_index(x, z)] : 0.0;
      if (z < 0) return has_neighbor[4] ? g[4][ghost_index(x, y)] : 0.0;
      if (z >= d) return has_neighbor[5] ? g[5][ghost_index(x, y)] : 0.0;
      (void)f;
      return cur_[index(x, y, z)];
    };
    for (int z = 0; z < d; ++z)
      for (int y = 0; y < d; ++y)
        for (int x = 0; x < d; ++x) {
          const double sum = neighbor_value(x - 1, y, z, 0) +
                             neighbor_value(x + 1, y, z, 1) +
                             neighbor_value(x, y - 1, z, 2) +
                             neighbor_value(x, y + 1, z, 3) +
                             neighbor_value(x, y, z - 1, 4) +
                             neighbor_value(x, y, z + 1, 5);
          next_[index(x, y, z)] = 0.125 * (2.0 * cur_[index(x, y, z)] + sum);
        }
    cur_.swap(next_);
  }

  std::size_t ghost_index(int a, int b) const {
    return static_cast<std::size_t>(a) +
           static_cast<std::size_t>(dim_) * static_cast<std::size_t>(b);
  }

  double sum() const {
    double total = 0;
    for (const double v : cur_) total += v;
    return total;
  }

  int id() const { return id_; }

  // Asynchronous-progress state. Face arrivals are counted per step parity:
  // a face for step s+1 may overtake a face for step s (its sender only
  // depended on its own neighborhood), so a cumulative count could claim an
  // update while one of the current step's ghosts is still stale.
  std::atomic<long> arrived[2] = {0, 0};
  std::atomic<int> claimed_step{0};
  std::atomic<int> completed_steps{0};

 private:
  int id_ = 0;
  int dim_ = 0;
  std::vector<double> cur_;
  std::vector<double> next_;
  std::vector<double> ghosts_[2][6];
};

struct rank_app_t {
  config_t config;
  int me = 0;
  int nranks = 1;
  minihpx::scheduler_t* scheduler = nullptr;
  minihpx::parcelport_t* port = nullptr;

  std::vector<std::unique_ptr<subgrid_t>> owned;  // indexed by local id
  std::vector<int> local_of_global;               // -1 if not owned
  std::atomic<int> subgrids_finished{0};
  std::atomic<std::size_t> parcels_sent{0};

  // Per-step mass reduction (the upward pass): every completed subgrid
  // update contributes its cell sum; when all local subgrids and both tree
  // children have reported, the partial flows to the parent rank.
  std::vector<std::atomic<double>> step_mass;       // accumulators per step
  std::vector<std::atomic<int>> step_reports;       // local + child reports
  std::vector<double> root_mass;                    // rank 0: final values
  std::atomic<int> steps_reduced{0};                // rank 0: completed steps
  uint32_t mass_handler = 0;

  int total() const { return config.grid_dim * config.grid_dim * config.grid_dim; }
  int owner(int id) const {
    return static_cast<int>(static_cast<long>(id) * nranks / total());
  }

  int neighbor_id(int id, int face) const {
    const int g = config.grid_dim;
    int x = id % g, y = (id / g) % g, z = id / (g * g);
    switch (face) {
      case 0: x -= 1; break;
      case 1: x += 1; break;
      case 2: y -= 1; break;
      case 3: y += 1; break;
      case 4: z -= 1; break;
      default: z += 1; break;
    }
    if (x < 0 || x >= g || y < 0 || y >= g || z < 0 || z >= g) return -1;
    return x + g * (y + g * z);
  }

  int neighbor_count(int id) const {
    int count = 0;
    for (int f = 0; f < 6; ++f) count += neighbor_id(id, f) >= 0 ? 1 : 0;
    return count;
  }

  // A face for `step` arrived at owned subgrid `sg` (from handler or local
  // copy). Checks whether the subgrid can run its next update.
  void on_face(subgrid_t& sg, int step) {
    sg.arrived[step & 1].fetch_add(1, std::memory_order_acq_rel);
    maybe_spawn_update(sg);
  }

  void maybe_spawn_update(subgrid_t& sg) {
    while (true) {
      const int s = sg.claimed_step.load(std::memory_order_acquire);
      if (s >= config.steps) return;
      if (sg.completed_steps.load(std::memory_order_acquire) != s) return;
      const long needed = neighbor_count(sg.id());
      if (sg.arrived[s & 1].load(std::memory_order_acquire) < needed) return;
      int expected = s;
      if (sg.claimed_step.compare_exchange_strong(expected, s + 1,
                                                  std::memory_order_acq_rel)) {
        scheduler->spawn([this, &sg, s] { run_update(sg, s); });
        return;
      }
      // Lost the claim; someone else spawned it.
      return;
    }
  }

  void run_update(subgrid_t& sg, int step) {
    bool has_neighbor[6];
    for (int f = 0; f < 6; ++f) has_neighbor[f] = neighbor_id(sg.id(), f) >= 0;
    sg.update(step, has_neighbor);
    report_mass(step, sg.sum());  // upward-pass contribution for this step
    // This parity slot now counts step+2 arrivals; reset it before sending
    // our step+1 faces (a neighbor cannot ship step+2 until it has them).
    sg.arrived[step & 1].store(0, std::memory_order_release);
    if (step + 1 < config.steps) {
      // Ship the new state BEFORE publishing completion: once
      // completed_steps reads step+1, the step+1 update may claim the
      // subgrid and swap the buffers this extraction reads from.
      send_faces(sg, step + 1);
      sg.completed_steps.store(step + 1, std::memory_order_release);
      maybe_spawn_update(sg);  // next step's faces may already be here
    } else {
      sg.completed_steps.store(step + 1, std::memory_order_release);
      subgrids_finished.fetch_add(1, std::memory_order_release);
    }
  }

  // Ships subgrid `sg`'s state for update `step` to all existing neighbors.
  void send_faces(subgrid_t& sg, int step) {
    const int d = config.subgrid_dim;
    const std::size_t face_doubles = static_cast<std::size_t>(d) * d;
    std::vector<char> wire(sizeof(face_msg_t) + face_doubles * sizeof(double));
    for (int f = 0; f < 6; ++f) {
      const int nid = neighbor_id(sg.id(), f);
      if (nid < 0) continue;
      auto* msg = reinterpret_cast<face_msg_t*>(wire.data());
      msg->target = nid;
      msg->face = opposite_face(f);
      msg->step = step;
      sg.extract_face(
          f, reinterpret_cast<double*>(wire.data() + sizeof(face_msg_t)));
      deliver(wire.data(), wire.size());
    }
  }

  uint32_t face_handler = 0;

  // Binary reduction tree over ranks.
  int tree_parent() const { return (me - 1) / 2; }
  int tree_children() const {
    int count = 0;
    if (2 * me + 1 < nranks) ++count;
    if (2 * me + 2 < nranks) ++count;
    return count;
  }

  // Called for every local subgrid completion and every child partial.
  void report_mass(int step, double value) {
    const auto s = static_cast<std::size_t>(step);
    double expected = step_mass[s].load(std::memory_order_relaxed);
    while (!step_mass[s].compare_exchange_weak(
        expected, expected + value, std::memory_order_acq_rel)) {
    }
    const int needed = static_cast<int>(owned.size()) + tree_children();
    if (step_reports[s].fetch_add(1, std::memory_order_acq_rel) + 1 !=
        needed)
      return;
    const double partial = step_mass[s].load(std::memory_order_acquire);
    if (me == 0) {
      root_mass[s] = partial;
      steps_reduced.fetch_add(1, std::memory_order_release);
      return;
    }
    struct mass_msg_t {
      int32_t step;
      double value;
    } msg{step, partial};
    parcels_sent.fetch_add(1, std::memory_order_relaxed);
    while (!port->send_parcel(tree_parent(), mass_handler, &msg,
                              sizeof(msg))) {
      port->progress(0);
      std::this_thread::yield();
    }
  }

  void deliver(const char* wire, std::size_t size) {
    const auto* msg = reinterpret_cast<const face_msg_t*>(wire);
    const int dest = owner(msg->target);
    if (dest == me) {
      handle_face(wire, size);
      return;
    }
    parcels_sent.fetch_add(1, std::memory_order_relaxed);
    while (!port->send_parcel(dest, face_handler, wire, size)) {
      port->progress(0);
      std::this_thread::yield();
    }
  }

  void handle_face(const char* data, std::size_t size) {
    (void)size;
    const auto* msg = reinterpret_cast<const face_msg_t*>(data);
    subgrid_t& sg =
        *owned[static_cast<std::size_t>(local_of_global[
            static_cast<std::size_t>(msg->target)])];
    sg.store_ghost(msg->face,
                   msg->step,
                   reinterpret_cast<const double*>(data + sizeof(face_msg_t)));
    on_face(sg, msg->step);
  }
};

}  // namespace

result_t run(const config_t& config) {
  struct shared_t {
    std::mutex lock;
    std::vector<double> step_mass;
    std::vector<double> subgrid_sums;
    std::atomic<std::size_t> parcels{0};
    std::atomic<double> t0{0}, t1{0};
    std::atomic<int> ranks_ready{0};
    std::atomic<int> ranks_done{0};
  } shared;
  const int total =
      config.grid_dim * config.grid_dim * config.grid_dim;
  shared.subgrid_sums.assign(static_cast<std::size_t>(total), 0.0);

  lci::sim::spawn(
      config.nranks,
      [&](int rank) {
    minihpx::scheduler_t scheduler(config.nthreads);
    minihpx::parcelport_config_t pp_config;
    pp_config.backend = config.backend;
    pp_config.ndevices = config.ndevices;
    pp_config.max_parcel_size =
        sizeof(face_msg_t) +
        static_cast<std::size_t>(config.subgrid_dim) * config.subgrid_dim *
            sizeof(double) +
        64;
    minihpx::parcelport_t port(pp_config, &scheduler);

    rank_app_t app;
    app.config = config;
    app.me = rank;
    app.nranks = config.nranks;
    app.scheduler = &scheduler;
    app.port = &port;
    app.local_of_global.assign(static_cast<std::size_t>(total), -1);
    for (int id = 0; id < total; ++id) {
      if (app.owner(id) != rank) continue;
      app.local_of_global[static_cast<std::size_t>(id)] =
          static_cast<int>(app.owned.size());
      app.owned.push_back(std::make_unique<subgrid_t>());
      app.owned.back()->init(id, config.subgrid_dim,
                             1.0 + 0.001 * static_cast<double>(id));
    }
    app.step_mass = std::vector<std::atomic<double>>(
        static_cast<std::size_t>(config.steps));
    app.step_reports =
        std::vector<std::atomic<int>>(static_cast<std::size_t>(config.steps));
    for (int s = 0; s < config.steps; ++s) {
      app.step_mass[static_cast<std::size_t>(s)].store(0.0);
      app.step_reports[static_cast<std::size_t>(s)].store(0);
    }
    app.root_mass.assign(static_cast<std::size_t>(config.steps), 0.0);
    app.face_handler = port.register_handler(
        [&app](int, const void* data, std::size_t size) {
          app.handle_face(static_cast<const char*>(data), size);
        });
    app.mass_handler = port.register_handler(
        [&app](int, const void* data, std::size_t) {
          struct mass_msg_t {
            int32_t step;
            double value;
          } msg;
          std::memcpy(&msg, data, sizeof(msg));
          app.report_mass(msg.step, msg.value);
        });

    // Rendezvous before traffic: every rank's handlers must be registered.
    shared.ranks_ready.fetch_add(1, std::memory_order_acq_rel);
    while (shared.ranks_ready.load(std::memory_order_acquire) != config.nranks)
      std::this_thread::yield();

    if (rank == 0) shared.t0.store(now_sec());
    scheduler.start([&port](int worker) { return port.progress(worker); });

    // Kick off: ship every owned subgrid's step-0 faces.
    for (auto& sg : app.owned) app.send_faces(*sg, 0);
    const int target = static_cast<int>(app.owned.size());
    scheduler.run_until([&] {
      const bool reduced =
          rank != 0 ||
          app.steps_reduced.load(std::memory_order_acquire) == config.steps;
      return app.subgrids_finished.load(std::memory_order_acquire) ==
                 target &&
             reduced && port.quiescent();
    });
    // Keep progressing until every rank is done (peers may still need our
    // progress to receive their final faces).
    shared.ranks_done.fetch_add(1, std::memory_order_acq_rel);
    while (shared.ranks_done.load(std::memory_order_acquire) !=
           config.nranks) {
      port.progress(0);
      std::this_thread::yield();
    }
    scheduler.stop();
    if (rank == 0) shared.t1.store(now_sec());

    shared.parcels.fetch_add(app.parcels_sent.load());
    std::lock_guard<std::mutex> guard(shared.lock);
    if (rank == 0) shared.step_mass = app.root_mass;
    for (auto& sg : app.owned)
      shared.subgrid_sums[static_cast<std::size_t>(sg->id())] = sg->sum();
      },
      config.fabric);

  result_t result;
  result.seconds = shared.t1.load() - shared.t0.load();
  result.seconds_per_step = result.seconds / config.steps;
  result.parcels = shared.parcels.load();
  result.step_mass = shared.step_mass;
  double checksum = 0;
  for (const double s : shared.subgrid_sums) checksum += s;
  result.checksum = checksum;
  return result;
}

result_t run_serial(const config_t& config) {
  config_t serial = config;
  serial.nranks = 1;
  serial.nthreads = 1;
  return run(serial);
}

}  // namespace octo
