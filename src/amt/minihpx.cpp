#include "amt/minihpx.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "core/lci.hpp"
#include "util/backoff.hpp"

namespace minihpx {

// ---------------------------------------------------------------------------
// scheduler_t
// ---------------------------------------------------------------------------

namespace {
// Worker identity within its scheduler: set while a thread runs a worker
// loop, -1 elsewhere (external spawns go to the shared queue). A thread
// belongs to at most one scheduler at a time, so one thread-local suffices.
thread_local int tls_worker = -1;
}  // namespace

scheduler_t::scheduler_t(int nthreads) : nthreads_(nthreads) {
  assert(nthreads >= 1);
  for (int w = 0; w < nthreads; ++w)
    deques_.push_back(
        std::make_unique<lci::util::steal_deque_t<task_t*>>(256));
}

scheduler_t::~scheduler_t() { stop(); }

void scheduler_t::spawn(task_t task) {
  auto* boxed = new task_t(std::move(task));
  // Workers keep their spawns local (hot caches, no contention); external
  // threads use the shared queue.
  if (tls_worker >= 0 && tls_worker < nthreads_) {
    deques_[static_cast<std::size_t>(tls_worker)]->push_tail(boxed);
  } else {
    shared_queue_.push(boxed);
  }
}

task_t* scheduler_t::obtain_task(int worker) {
  task_t* task = nullptr;
  // 1. Own deque (LIFO end: most recently spawned — cache-warm, the
  // standard work-first policy).
  if (deques_[static_cast<std::size_t>(worker)]->pop_tail(&task)) return task;
  // 2. Shared overflow queue.
  if (auto boxed = shared_queue_.try_pop()) return *boxed;
  // 3. Steal half a random victim's deque (FIFO end: oldest tasks).
  thread_local lci::util::xoshiro256_t rng(0xfeedfacecafef00dull ^
                                           static_cast<uint64_t>(worker));
  const int victim = static_cast<int>(rng.below(
      static_cast<uint64_t>(nthreads_)));
  if (victim != worker) {
    std::vector<task_t*> loot;
    if (deques_[static_cast<std::size_t>(victim)]->try_steal_half(loot) > 0) {
      task = loot.back();
      loot.pop_back();
      for (task_t* extra : loot)
        deques_[static_cast<std::size_t>(worker)]->push_tail(extra);
      return task;
    }
  }
  return nullptr;
}

void scheduler_t::worker_loop(int worker, const std::function<bool()>* done) {
  const int previous_worker = tls_worker;
  tls_worker = worker;
  lci::util::backoff_t backoff;
  while (true) {
    if (stopping_.load(std::memory_order_acquire)) break;
    if (done != nullptr && (*done)()) break;
    if (task_t* task = obtain_task(worker)) {
      (*task)();
      delete task;
      executed_.fetch_add(1, std::memory_order_relaxed);
      backoff.reset();
      continue;
    }
    bool progressed = false;
    if (idle_fn_) progressed = idle_fn_(worker);
    if (progressed) {
      backoff.reset();
    } else {
      // Escalating idle policy instead of an unconditional yield: short idle
      // gaps stay on-core (steal/parcel latency), sustained idleness yields.
      backoff.spin();
    }
  }
  tls_worker = previous_worker;
}

void scheduler_t::start(std::function<bool(int)> idle_fn) {
  idle_fn_ = std::move(idle_fn);
  auto binding = lci::sim::current_binding();
  for (int w = 1; w < nthreads_; ++w) {
    workers_.emplace_back([this, w, binding] {
      lci::sim::scoped_binding_t bound(binding);
      worker_loop(w, nullptr);
    });
  }
}

void scheduler_t::run_until(const std::function<bool()>& done) {
  worker_loop(0, &done);
}

void scheduler_t::stop() {
  stopping_.store(true, std::memory_order_release);
  for (auto& worker : workers_) worker.join();
  workers_.clear();
  // Drain unexecuted tasks.
  while (auto task = shared_queue_.try_pop()) delete *task;
  for (auto& deque : deques_) {
    task_t* task = nullptr;
    while (deque->pop_tail(&task)) delete task;
  }
  stopping_.store(false, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// parcelport_t
// ---------------------------------------------------------------------------

namespace {
struct parcel_header_t {
  uint32_t handler = 0;
};
}  // namespace

struct parcelport_t::impl_t {
  std::unique_ptr<lcw::context_t> ctx;
  scheduler_t* scheduler = nullptr;
  std::vector<parcel_handler_t> handlers;
  std::atomic<long> outstanding_sends{0};
  std::atomic<long> inflight_handlers{0};
  std::atomic<long> failed_parcels{0};
  std::atomic<int> round_robin{0};
};

parcelport_t::parcelport_t(const parcelport_config_t& config,
                           scheduler_t* scheduler)
    : impl_(std::make_unique<impl_t>()) {
  lcw::config_t lcw_config;
  lcw_config.ndevices =
      config.backend == lcw::backend_t::mpi ? 1 : config.ndevices;
  lcw_config.max_am_size = config.max_parcel_size + sizeof(parcel_header_t);
  lcw_config.nprogress_threads = config.nprogress_threads;
  lcw_config.enable_aggregation = config.enable_aggregation;
  lcw_config.aggregation_flush_us = config.aggregation_flush_us;
  impl_->ctx = lcw::alloc_context(config.backend, lcw_config);
  impl_->scheduler = scheduler;
}

parcelport_t::~parcelport_t() = default;

int parcelport_t::rank() const { return impl_->ctx->rank(); }
int parcelport_t::nranks() const { return impl_->ctx->nranks(); }

uint32_t parcelport_t::register_handler(parcel_handler_t handler) {
  impl_->handlers.push_back(std::move(handler));
  return static_cast<uint32_t>(impl_->handlers.size()) - 1;
}

bool parcelport_t::send_parcel(int dest, uint32_t handler, const void* data,
                               std::size_t size) {
  // Serialize header + payload (the upper layer of the paper's Listing 2
  // split: handler index rides in front of the serialized arguments).
  std::vector<char> wire(sizeof(parcel_header_t) + size);
  parcel_header_t header{handler};
  std::memcpy(wire.data(), &header, sizeof(header));
  std::memcpy(wire.data() + sizeof(header), data, size);

  // Parcels may be issued from any worker; spread them round-robin across
  // the replicated devices/VCIs (the tag equals the device index so the
  // mpix backend's tag->VCI mapping is the identity).
  const int send_device =
      impl_->round_robin.fetch_add(1, std::memory_order_relaxed) %
      impl_->ctx->ndevices();
  lcw::device_t* dev = impl_->ctx->device(send_device);
  const auto result =
      dev->post_am(dest, wire.data(), wire.size(), send_device);
  if (result == lcw::post_t::retry) return false;
  if (result == lcw::post_t::failed) {
    // Dead destination: the parcel is consumed (retrying would fail again) so
    // callers' retry loops terminate and quiescent() stays reachable.
    impl_->failed_parcels.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (result == lcw::post_t::posted)
    impl_->outstanding_sends.fetch_add(1, std::memory_order_relaxed);
  return true;
}

long parcelport_t::failed_parcels() const {
  return impl_->failed_parcels.load(std::memory_order_relaxed);
}

bool parcelport_t::progress(int worker) {
  // Each worker covers the devices congruent to it modulo the worker count,
  // so every replicated device is progressed even when ndevices exceeds the
  // thread count (e.g. the paper's mpix configuration needing 8 VCIs).
  const int ndevices = impl_->ctx->ndevices();
  const int stride = std::max(1, impl_->scheduler->nthreads());
  bool advanced = false;
  for (int d = worker % stride; d < ndevices; d += stride)
    advanced |= progress_device(d);
  if ((worker % stride) >= ndevices) advanced |= progress_device(0);
  return advanced;
}

bool parcelport_t::progress_device(int index) {
  lcw::device_t* dev = impl_->ctx->device(index);
  // Auto-progress: the backend's engine threads drive the wire; workers only
  // consume completions (draining the queues is not progress — skipping it
  // would strand arrived parcels).
  bool advanced = impl_->ctx->auto_progress() ? false : dev->do_progress();
  lcw::request_t req;
  while (dev->poll_recv(&req)) {
    advanced = true;
    impl_->inflight_handlers.fetch_add(1, std::memory_order_relaxed);
    // Parcels execute as scheduled tasks — unrestricted handlers, unlike AM
    // handlers (paper Sec. 3.2.1).
    impl_->scheduler->spawn([this, req] {
      parcel_header_t header;
      std::memcpy(&header, req.buffer, sizeof(header));
      const char* data = static_cast<const char*>(req.buffer) + sizeof(header);
      impl_->handlers[header.handler](req.rank, data,
                                      req.size - sizeof(header));
      std::free(req.buffer);
      impl_->inflight_handlers.fetch_sub(1, std::memory_order_release);
    });
  }
  while (dev->poll_send(&req)) {
    advanced = true;
    impl_->outstanding_sends.fetch_sub(1, std::memory_order_release);
  }
  return advanced;
}

bool parcelport_t::quiescent() {
  return impl_->outstanding_sends.load(std::memory_order_acquire) == 0 &&
         impl_->inflight_handlers.load(std::memory_order_acquire) == 0;
}

}  // namespace minihpx
