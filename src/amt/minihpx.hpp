// minihpx — a miniature Asynchronous Many-Task runtime (the HPX stand-in for
// the paper's Sec. 5.4 evaluation; see DESIGN.md substitutions).
//
// Provides the two things the paper's AMT experiment depends on:
//  * a task scheduler in the HPX style: per-worker deques with work
//    stealing (a worker pushes and pops its own deque; an idle worker steals
//    from a random victim), plus a shared overflow queue for tasks spawned
//    by non-worker threads. Each worker runs an idle hook when it finds no
//    work — this is where communication progress happens ("all worker
//    threads periodically progress the network", the regime LCI targets);
//  * a *parcelport*: the HPX abstraction for sending serialized messages
//    (parcels) that execute a registered handler at the destination. The
//    implementation rides on LCW, so the same application runs over the
//    lci, mpi, and mpix backends exactly as Fig. 7 compares them.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "lcw/lcw.hpp"
#include "util/lcrq.hpp"
#include "util/rng.hpp"
#include "util/steal_deque.hpp"

namespace minihpx {

using task_t = std::function<void()>;

// ---------------------------------------------------------------------------
// Task scheduler
// ---------------------------------------------------------------------------
class scheduler_t {
 public:
  // `nthreads` workers; `idle_fn(worker)` runs whenever a worker finds the
  // queue empty (returns true if it made progress). Workers must be started
  // with start() from a thread holding the rank binding they should inherit.
  explicit scheduler_t(int nthreads);
  ~scheduler_t();

  void spawn(task_t task);
  void start(std::function<bool(int)> idle_fn);
  // Blocks until `done()` returns true; the calling thread participates as
  // worker 0.
  void run_until(const std::function<bool()>& done);
  void stop();

  int nthreads() const noexcept { return nthreads_; }
  std::size_t tasks_executed() const noexcept {
    return executed_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop(int worker, const std::function<bool()>* done);
  task_t* obtain_task(int worker);

  const int nthreads_;
  // Per-worker deques (owner works the tail, thieves take from the head)
  // plus a shared overflow queue for external spawns (completion handlers
  // running outside the pool, the main thread before start()).
  std::vector<std::unique_ptr<lci::util::steal_deque_t<task_t*>>> deques_;
  lci::util::lcrq_t<task_t*> shared_queue_{1024};
  std::function<bool(int)> idle_fn_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> executed_{0};
};

// ---------------------------------------------------------------------------
// Parcelport
// ---------------------------------------------------------------------------

// A parcel handler receives (source rank, payload); it runs as a scheduled
// task (unrestricted, unlike an AM handler — it may communicate).
using parcel_handler_t =
    std::function<void(int src, const void* data, std::size_t size)>;

struct parcelport_config_t {
  lcw::backend_t backend = lcw::backend_t::lci;
  int ndevices = 1;  // LCI devices / MPICH VCIs (Fig. 7's tuning knob)
  std::size_t max_parcel_size = 8192;
  // Background progress threads (lci backend only): > 0 offloads network
  // progress from the scheduler's idle hook — workers then only poll the
  // completion queues for arrived parcels, the "dedicated progress thread"
  // configuration of the HPX+LCI study.
  int nprogress_threads = 0;
  // Coalesce small parcels into per-peer batches (lci backend only): maps to
  // lcw::config_t::enable_aggregation.
  bool enable_aggregation = false;
  // Batch hold time in microseconds (lci backend, with enable_aggregation):
  // maps to lcw::config_t::aggregation_flush_us. 0 flushes every poll.
  uint64_t aggregation_flush_us = 0;
};

class parcelport_t {
 public:
  parcelport_t(const parcelport_config_t& config, scheduler_t* scheduler);
  ~parcelport_t();

  int rank() const;
  int nranks() const;

  // Handler registration (collective: same order on every rank).
  uint32_t register_handler(parcel_handler_t handler);

  // Nonblocking: false = resources busy, retry (the caller is a task; it can
  // yield and come back, the pattern LCI's retry code enables). A parcel
  // addressed to a dead rank returns true (consumed — retrying can never
  // succeed) and is counted in failed_parcels() instead of being delivered.
  bool send_parcel(int dest, uint32_t handler, const void* data,
                   std::size_t size);

  // Parcels dropped because their destination rank was dead.
  long failed_parcels() const;

  // Progress hook for scheduler idle loops: polls device (worker % ndevices)
  // and enqueues handler tasks for arrived parcels.
  bool progress(int worker);

  // Outstanding send completions drained?
  bool quiescent();

 private:
  bool progress_device(int index);

  struct impl_t;
  std::unique_ptr<impl_t> impl_;
};

}  // namespace minihpx
