// Operation-lifecycle tracing (docs/INTERNALS.md "Tracing"): span pairing
// across the eager / coalesced / rendezvous protocols including fatal
// completions, ring wraparound accounting, 1-in-N sampling, the Chrome
// trace exporter, and the zero-record guarantee when tracing is off.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/lci.hpp"

namespace {

uint8_t code(lci::errorcode_t c) { return static_cast<uint8_t>(c); }

// Per-(op id, kind) begin/end tallies. Every span begin must be closed by
// exactly one end — the whole point of riding the completion arbitration
// points (record CAS, pending-table take, bucket remove) is that no path,
// fatal ones included, can end a span twice or forget it.
struct pairing_t {
  std::map<std::pair<uint64_t, lci::trace::kind_t>, std::pair<int, int>> spans;
  std::map<lci::trace::kind_t, int> instants;
  std::map<uint8_t, int> end_errs;  // err byte -> count across all span ends

  explicit pairing_t(const lci::trace_snapshot_t& snap) {
    for (const auto& event : snap.events) {
      switch (event.phase) {
        case lci::trace::phase_t::begin:
          spans[{event.id, event.kind}].first++;
          break;
        case lci::trace::phase_t::end:
          spans[{event.id, event.kind}].second++;
          end_errs[event.err]++;
          break;
        case lci::trace::phase_t::instant:
          instants[event.kind]++;
          break;
      }
    }
  }

  int unbalanced() const {
    int bad = 0;
    for (const auto& [key, counts] : spans) {
      if (counts.first != counts.second) ++bad;
    }
    return bad;
  }

  int begins(lci::trace::kind_t kind) const {
    int n = 0;
    for (const auto& [key, counts] : spans) {
      if (key.second == kind) n += counts.first;
    }
    return n;
  }
};

lci::runtime_attr_t traced_attr() {
  lci::runtime_attr_t attr;
  attr.trace = true;
  attr.trace_ring_size = std::size_t{1} << 16;
  attr.trace_sample = 1;
  return attr;
}

// With tracing off (the default; no LCI_TRACE in the test environment),
// traffic must leave no events and no histogram samples behind. trace_reset
// first: an earlier traced test's generation would otherwise still be
// visible to the snapshot.
TEST(Trace, OffRecordsNothing) {
  lci::trace_reset();
  lci::sim::spawn(2, [](int rank) {
    lci::g_runtime_init();
    const int peer = 1 - rank;
    char out[64] = "quiet";
    char in[64] = {};
    lci::comp_t sync = lci::alloc_sync(1);
    const lci::status_t rs = lci::post_recv(peer, in, sizeof(in), 7, sync);
    lci::barrier();
    lci::status_t ss;
    do {
      ss = lci::post_send(peer, out, sizeof(out), 7, {});
      lci::progress();
    } while (ss.error.is_retry());
    if (rs.error.is_posted()) lci::sync_wait(sync, nullptr);
    lci::barrier();
    lci::free_comp(&sync);
    lci::g_runtime_fina();
  });
  const lci::trace_snapshot_t snap = lci::trace_snapshot();
  EXPECT_TRUE(snap.events.empty());
  EXPECT_EQ(snap.trace_dropped, 0u);
  const lci::histograms_t hist = lci::get_histograms();
  EXPECT_EQ(hist.post_eager.count, 0u);
  EXPECT_EQ(hist.post_batch.count, 0u);
  EXPECT_EQ(hist.post_rdv.count, 0u);
  EXPECT_EQ(hist.post_recv.count, 0u);
  EXPECT_EQ(hist.progress_poll.count, 0u);
}

// Mixed traffic crossing all three protocols: 8 B sends coalesce into
// batches, 600 B sends take the plain eager (bcopy) path, 20 kB sends go
// rendezvous. Every span must pair, every protocol must contribute its
// events and histogram samples, and the Chrome exporter must produce a
// loadable dump.
TEST(Trace, SpanPairingAcrossProtocols) {
  lci::runtime_attr_t attr = traced_attr();
  attr.allow_aggregation = true;
  // One posting thread per rank: keep the single-poster bypass off so the
  // 8 B sends actually coalesce and emit post_batch spans.
  attr.aggregation_bypass_single_poster = false;
  attr.aggregation_flush_us = 0;  // flush per progress poll
  lci::sim::spawn(2, [&](int rank) {
    lci::g_runtime_init(attr);
    const int peer = 1 - rank;
    constexpr int rounds = 8;
    const std::size_t sizes[] = {8, 600, 20000};  // batch / eager / rdv
    constexpr int per_round = 3;

    std::vector<std::vector<char>> inbox;
    lci::comp_t rsync = lci::alloc_sync(rounds * per_round);
    for (int i = 0; i < rounds; ++i) {
      for (int s = 0; s < per_round; ++s) {
        inbox.emplace_back(sizes[s], 0);
        const lci::status_t rs =
            lci::post_recv_x(peer, inbox.back().data(), sizes[s],
                             static_cast<lci::tag_t>(s), rsync)
                .allow_done(false)();
        ASSERT_TRUE(rs.error.is_posted());
      }
    }
    lci::barrier();
    std::vector<char> out(20000, static_cast<char>('a' + rank));
    lci::comp_t scq = lci::alloc_cq();
    int owed = 0;
    for (int i = 0; i < rounds; ++i) {
      for (int s = 0; s < per_round; ++s) {
        lci::status_t ss;
        do {
          ss = lci::post_send_x(peer, out.data(), sizes[s],
                                static_cast<lci::tag_t>(s), scq)();
          lci::progress();
        } while (ss.error.is_retry());
        if (ss.error.is_posted()) ++owed;
      }
    }
    while (owed > 0) {
      lci::progress();
      if (lci::cq_pop(scq).error.is_done()) --owed;
    }
    lci::sync_wait(rsync, nullptr);
    lci::barrier();
    lci::free_comp(&rsync);
    lci::free_comp(&scq);
    lci::g_runtime_fina();
  });

  const lci::trace_snapshot_t snap = lci::trace_snapshot();
  ASSERT_FALSE(snap.events.empty());
  EXPECT_EQ(snap.trace_dropped, 0u);
  const pairing_t pairs(snap);
  EXPECT_EQ(pairs.unbalanced(), 0);

  using k = lci::trace::kind_t;
  EXPECT_GT(pairs.begins(k::post), 0);
  EXPECT_GT(pairs.begins(k::op_eager), 0);
  EXPECT_GT(pairs.begins(k::op_batch), 0);
  EXPECT_GT(pairs.begins(k::op_rdv), 0);
  EXPECT_GT(pairs.begins(k::op_recv), 0);
  EXPECT_GT(pairs.begins(k::batch_slot), 0);
  EXPECT_GT(pairs.begins(k::wire), 0);
  EXPECT_GT(pairs.instants.count(k::coalesce), 0u);
  EXPECT_GT(pairs.instants.count(k::match), 0u);
  EXPECT_GT(pairs.instants.count(k::rts), 0u);
  EXPECT_GT(pairs.instants.count(k::rtr), 0u);
  EXPECT_GT(pairs.instants.count(k::fin), 0u);

  const lci::histograms_t hist = lci::get_histograms();
  EXPECT_GT(hist.post_eager.count, 0u);
  EXPECT_GT(hist.post_batch.count, 0u);
  EXPECT_GT(hist.post_rdv.count, 0u);
  EXPECT_GT(hist.post_recv.count, 0u);
  EXPECT_GT(hist.progress_poll.count, 0u);
  EXPECT_LE(hist.post_rdv.p50_ns, hist.post_rdv.p99_ns);
  EXPECT_LE(hist.post_rdv.p99_ns, hist.post_rdv.max_ns);

  const std::string path =
      ::testing::TempDir() + "trace_pairing_dump.json";
  ASSERT_TRUE(lci::trace_dump_json(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char head[2] = {};
  ASSERT_EQ(std::fread(head, 1, 1, f), 1u);
  EXPECT_EQ(head[0], '{');
  std::fclose(f);
  std::remove(path.c_str());
}

// Deadline and cancel() on sub-operations buffered in an aggregation slot:
// the cancel/timeout path wins the completion, the later flush resolves the
// pending entry — the trace span must still end exactly once, labeled with
// the winner's errorcode.
TEST(Trace, FatalTimeoutAndCancelEndSpans) {
  lci::runtime_attr_t attr = traced_attr();
  attr.allow_aggregation = true;
  // The test needs the sends parked in a slot; the single-poster bypass
  // would send them straight through and there would be nothing to cancel.
  attr.aggregation_bypass_single_poster = false;
  attr.aggregation_flush_us = 1000000;  // no age flush in-test
  lci::sim::spawn(2, [&](int rank) {
    lci::g_runtime_init(attr);
    if (rank == 0) {
      lci::comp_t cq = lci::alloc_cq();
      char out[8] = "timed";
      lci::status_t ss = lci::post_send_x(1, out, sizeof(out), 1, cq)
                             .allow_done(false)
                             .deadline(2000)();
      ASSERT_TRUE(ss.error.is_posted());
      lci::status_t st;
      do {
        lci::progress();
        st = lci::cq_pop(cq);
      } while (st.error.is_retry());
      EXPECT_EQ(st.error.code, lci::errorcode_t::fatal_timeout);

      lci::op_t op;
      ss = lci::post_send_x(1, out, sizeof(out), 2, cq)
               .allow_done(false)
               .op_handle(&op)();
      ASSERT_TRUE(ss.error.is_posted());
      EXPECT_TRUE(lci::cancel(op));
      do {
        st = lci::cq_pop(cq);
      } while (st.error.is_retry());
      EXPECT_EQ(st.error.code, lci::errorcode_t::fatal_canceled);

      // Flush the slot so the pending entries resolve and the spans close.
      for (int i = 0; i < 100000; ++i) {
        if (lci::flush() != 0) break;
        lci::progress();
      }
      for (int i = 0; i < 50; ++i) lci::progress();
      lci::free_comp(&cq);
    }
    lci::barrier();
    lci::g_runtime_fina();
  });

  const lci::trace_snapshot_t snap = lci::trace_snapshot();
  const pairing_t pairs(snap);
  EXPECT_EQ(pairs.unbalanced(), 0);
  EXPECT_GE(pairs.begins(lci::trace::kind_t::op_batch), 2);
  EXPECT_GT(pairs.end_errs.count(code(lci::errorcode_t::fatal_timeout)), 0u);
  EXPECT_GT(pairs.end_errs.count(code(lci::errorcode_t::fatal_canceled)), 0u);
}

// Peer death: a send posted to an already-dead rank completes fatally at
// posting time (zero-length span pair), and a parked receive purged by the
// death sweep ends its span with fatal_peer_down.
TEST(Trace, PeerDownEndsSpans) {
  static std::atomic<bool> rank0_done{false};
  static std::atomic<int> inited{0};
  rank0_done.store(false);
  inited.store(0);
  lci::sim::spawn(2, [](int rank) {
    lci::g_runtime_init(traced_attr());
    // Both runtimes must be up before rank 0 proceeds: if rank 0 ran its
    // whole body and finalized before rank 1 initialized, the trace
    // refcount would hit zero and rank 1's init would start a fresh trace
    // generation, retiring rank 0's events from the snapshot below. A
    // plain flag, not barrier(): rank 1 could still be inside a collective
    // when kill_peer(1) fires, failing the barrier fatally.
    inited.fetch_add(1, std::memory_order_release);
    while (inited.load(std::memory_order_acquire) < 2)
      std::this_thread::yield();
    if (rank == 0) {
      lci::comp_t cq = lci::alloc_cq();
      char in[32] = {};
      const lci::status_t rs =
          lci::post_recv_x(1, in, sizeof(in), 9, cq).allow_done(false)();
      ASSERT_TRUE(rs.error.is_posted());
      EXPECT_TRUE(lci::kill_peer(1));
      // The death sweep purges the parked receive with fatal_peer_down.
      lci::status_t st;
      do {
        lci::progress();
        st = lci::cq_pop(cq);
      } while (st.error.is_retry());
      EXPECT_EQ(st.error.code, lci::errorcode_t::fatal_peer_down);
      // Sends naming the dead rank fail at posting time (returned fatal).
      char out[8] = "late";
      const lci::status_t ss = lci::post_send(1, out, sizeof(out), 9, {});
      EXPECT_EQ(ss.error.code, lci::errorcode_t::fatal_peer_down);
      lci::free_comp(&cq);
      rank0_done.store(true);
    } else {
      // No barrier: rank 0 declared us dead, so collective traffic with it
      // can never complete. Park until its checks are done.
      while (!rank0_done.load()) lci::progress();
    }
    lci::g_runtime_fina();
  });

  const lci::trace_snapshot_t snap = lci::trace_snapshot();
  const pairing_t pairs(snap);
  EXPECT_EQ(pairs.unbalanced(), 0);
  auto it = pairs.end_errs.find(code(lci::errorcode_t::fatal_peer_down));
  ASSERT_NE(it, pairs.end_errs.end());
  EXPECT_GE(it->second, 2);  // the purged receive + the rejected send
}

// A ring much smaller than the event volume: the snapshot reports the
// overwritten slots in trace_dropped and keeps only the newest events,
// while the histograms (separate per-thread cells, no ring) still count
// every completed operation.
TEST(Trace, WraparoundDropsOldestAndCounts) {
  lci::runtime_attr_t attr = traced_attr();
  attr.trace_ring_size = 64;
  constexpr int count = 400;
  lci::sim::spawn(2, [&](int rank) {
    lci::g_runtime_init(attr);
    const int peer = 1 - rank;
    lci::comp_t rcq = lci::alloc_cq();
    const lci::rcomp_t rcomp = lci::register_rcomp(rcq);
    lci::barrier();
    char payload[16] = "wrap";
    int sent = 0, received = 0;
    while (sent < count || received < count) {
      if (sent < count) {
        const auto ss =
            lci::post_am(peer, payload, sizeof(payload), {}, rcomp);
        if (!ss.error.is_retry()) ++sent;
      }
      lci::progress();
      const lci::status_t st = lci::cq_pop(rcq);
      if (st.error.is_done()) {
        std::free(st.buffer.base);
        ++received;
      }
    }
    lci::barrier();
    lci::deregister_rcomp(rcomp);
    lci::free_comp(&rcq);
    lci::g_runtime_fina();
  });

  const lci::trace_snapshot_t snap = lci::trace_snapshot();
  EXPECT_GT(snap.trace_dropped, 0u);
  ASSERT_FALSE(snap.events.empty());
  // Oldest-first overwrite: everything still in the ring is newer than
  // everything dropped, so the survivors must include the very last events
  // recorded — at least one op id from the final quarter of the id space.
  uint64_t max_id = 0;
  for (const auto& event : snap.events) max_id = std::max(max_id, event.id);
  EXPECT_GT(max_id, static_cast<uint64_t>(count));
  // The histograms never wrap: every eager AM completion is counted.
  EXPECT_GE(lci::get_histograms().post_eager.count,
            static_cast<uint64_t>(2 * count));
}

// 1-in-N sampling: unsampled ops record no events at all, but the sampled
// subset still feeds the histograms, so percentiles stay usable at a
// fraction of the ring traffic.
TEST(Trace, SamplingKeepsHistograms) {
  lci::runtime_attr_t attr = traced_attr();
  attr.trace_sample = 8;
  constexpr int count = 256;
  lci::sim::spawn(2, [&](int rank) {
    lci::g_runtime_init(attr);
    const int peer = 1 - rank;
    lci::comp_t rcq = lci::alloc_cq();
    const lci::rcomp_t rcomp = lci::register_rcomp(rcq);
    lci::barrier();
    char payload[16] = "sample";
    int sent = 0, received = 0;
    while (sent < count || received < count) {
      if (sent < count) {
        const auto ss =
            lci::post_am(peer, payload, sizeof(payload), {}, rcomp);
        if (!ss.error.is_retry()) ++sent;
      }
      lci::progress();
      const lci::status_t st = lci::cq_pop(rcq);
      if (st.error.is_done()) {
        std::free(st.buffer.base);
        ++received;
      }
    }
    lci::barrier();
    lci::deregister_rcomp(rcomp);
    lci::free_comp(&rcq);
    lci::g_runtime_fina();
  });

  const lci::trace_snapshot_t snap = lci::trace_snapshot();
  const pairing_t pairs(snap);
  EXPECT_EQ(pairs.unbalanced(), 0);
  const int posts = pairs.begins(lci::trace::kind_t::post);
  EXPECT_GT(posts, 0);
  EXPECT_LT(posts, 2 * count / 2);  // well below the 2*count total posts
  const lci::histograms_t hist = lci::get_histograms();
  EXPECT_GT(hist.post_eager.count, 0u);
  EXPECT_LT(hist.post_eager.count, static_cast<uint64_t>(2 * count));
}

}  // namespace
