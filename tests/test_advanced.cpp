// Advanced-feature tests (paper Sec. 3.3.1): explicit packets, AM delivery
// in packets, OFF argument-order invariance, and the simulated bootstrap.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "core/lci.hpp"

namespace {

lci::runtime_attr_t small_attr() {
  lci::runtime_attr_t attr;
  attr.matching_engine_buckets = 256;
  return attr;
}

TEST(PacketApi, GetPutRoundTrip) {
  lci::sim::spawn(1, [](int) {
    lci::g_runtime_init(small_attr());
    lci::packet_handle_t p = lci::get_packet();
    ASSERT_TRUE(p.is_valid());
    EXPECT_GE(p.capacity, 4096u - 64);  // payload minus header reservation
    // The payload area is writable.
    std::memset(p.address, 0x5a, p.capacity);
    lci::put_packet(p);
    lci::g_runtime_fina();
  });
}

TEST(PacketApi, ExhaustionReturnsInvalidHandle) {
  lci::runtime_attr_t attr = small_attr();
  attr.npackets = 16;
  attr.prepost_depth = 8;
  lci::sim::spawn(1, [&](int) {
    lci::g_runtime_init(attr);
    std::vector<lci::packet_handle_t> held;
    // Drain the pool completely.
    while (true) {
      lci::packet_handle_t p = lci::get_packet();
      if (!p.is_valid()) break;
      held.push_back(p);
      ASSERT_LE(held.size(), 16u);
    }
    EXPECT_FALSE(lci::get_packet().is_valid());
    for (auto& p : held) lci::put_packet(p);
    EXPECT_TRUE(lci::get_packet().is_valid());  // recovered
    lci::g_runtime_fina();
  });
}

// Assemble-in-packet send: the buffer-copy protocol without the copy.
TEST(PacketApi, FromPacketSend) {
  lci::sim::spawn(2, [](int rank) {
    lci::g_runtime_init(small_attr());
    const int peer = 1 - rank;
    const std::size_t size = 900;  // buffer-copy territory
    char inbox[900] = {};
    lci::comp_t sync = lci::alloc_sync(1);
    lci::status_t rs = lci::post_recv(peer, inbox, size, 4, sync);

    lci::packet_handle_t p = lci::get_packet();
    ASSERT_TRUE(p.is_valid());
    ASSERT_GE(p.capacity, size);
    std::memset(p.address, 'a' + rank, size);
    lci::status_t ss;
    do {
      ss = lci::post_send_x(peer, p.address, size, 4, {}).from_packet(true)();
      lci::progress();
    } while (ss.error.is_retry());
    // The packet is consumed by the post; p must not be reused or put back.
    if (rs.error.is_posted()) lci::sync_wait(sync, &rs);
    EXPECT_EQ(inbox[0], 'a' + peer);
    EXPECT_EQ(inbox[size - 1], 'a' + peer);
    lci::barrier();
    lci::free_comp(&sync);
    lci::g_runtime_fina();
  });
}

// AM delivery in packets: no malloc/copy on the receive path; payloads are
// returned to the pool with release_am_packet.
TEST(PacketApi, AmPacketDelivery) {
  lci::runtime_attr_t attr = small_attr();
  attr.am_deliver_packets = true;
  lci::sim::spawn(2, [&](int rank) {
    lci::g_runtime_init(attr);
    const int peer = 1 - rank;
    lci::comp_t rcq = lci::alloc_cq();
    const lci::rcomp_t rcomp = lci::register_rcomp(rcq);
    lci::barrier();
    constexpr int count = 300;  // more than prepost_depth: recycling matters
    char payload[128];
    int sent = 0, received = 0;
    while (sent < count || received < count) {
      if (sent < count) {
        snprintf(payload, sizeof(payload), "packet am %d from %d", sent,
                 rank);
        const auto ss =
            lci::post_am(peer, payload, sizeof(payload), {}, rcomp);
        if (!ss.error.is_retry()) ++sent;
      }
      lci::progress();
      lci::status_t s = lci::cq_pop(rcq);
      if (s.error.is_done()) {
        int index = -1, from = -1;
        sscanf(static_cast<char*>(s.buffer.base), "packet am %d from %d",
               &index, &from);
        EXPECT_EQ(from, peer);
        lci::release_am_packet(s);  // NOT std::free
        ++received;
      }
    }
    lci::barrier();
    lci::deregister_rcomp(rcomp);
    lci::free_comp(&rcq);
    lci::g_runtime_fina();
  });
}

// OFF idiom: optional arguments compose in any order with the same result.
TEST(Off, SetterOrderIrrelevant) {
  lci::sim::spawn(2, [](int rank) {
    lci::g_runtime_init(small_attr());
    const int peer = 1 - rank;
    lci::device_t device = lci::alloc_device();
    lci::barrier();

    char in1[8] = {}, in2[8] = {};
    lci::comp_t sync = lci::alloc_sync(2);
    // Same operation, setters in two different orders.
    (void)lci::post_recv_x(peer, in1, sizeof(in1), 11, sync)
        .device(device)
        .matching_policy(lci::matching_policy_t::rank_only)
        .allow_done(false)();
    (void)lci::post_recv_x(peer, in2, sizeof(in2), 12, sync)
        .allow_done(false)
        .matching_policy(lci::matching_policy_t::rank_only)
        .device(device)();

    char out[8] = "offtest";
    for (int i = 0; i < 2; ++i) {
      lci::status_t ss;
      do {
        ss = lci::post_send_x(peer, out, sizeof(out), 99, {})
                 .matching_policy(lci::matching_policy_t::rank_only)
                 .device(device)();
        lci::progress_x().device(device)();
      } while (ss.error.is_retry());
    }
    lci::status_t statuses[2];
    while (!lci::sync_test(sync, statuses)) lci::progress_x().device(device)();
    EXPECT_STREQ(in1, "offtest");
    EXPECT_STREQ(in2, "offtest");
    lci::barrier();
    lci::free_comp(&sync);
    lci::free_device(&device);
    lci::g_runtime_fina();
  });
}

// Simulated bootstrap: worlds, bindings, and the reference-counted
// g_runtime lifecycle.
TEST(SimBootstrap, WorldBindingsAndRefcount) {
  lci::sim::world_t world(3);
  EXPECT_EQ(world.nranks(), 3);
  std::vector<std::thread> threads;
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] {
      lci::sim::scoped_binding_t bound(world.binding(r));
      // Nested init: refcounted.
      lci::runtime_t rt1 = lci::g_runtime_init();
      lci::runtime_t rt2 = lci::g_runtime_init();
      EXPECT_EQ(rt1.p, rt2.p);
      EXPECT_EQ(lci::get_rank_me(), r);
      EXPECT_EQ(lci::get_rank_n(), 3);
      lci::g_runtime_fina();
      EXPECT_TRUE(lci::get_g_runtime().is_valid());  // still one ref
      lci::g_runtime_fina();
      EXPECT_FALSE(lci::get_g_runtime().is_valid());
    });
  }
  for (auto& t : threads) t.join();
}

TEST(SimBootstrap, ChildThreadsShareTheRankRuntime) {
  lci::sim::spawn(2, [](int rank) {
    lci::g_runtime_init();
    auto binding = lci::sim::current_binding();
    ASSERT_TRUE(binding != nullptr);
    lci::runtime_t parent_rt = lci::get_g_runtime();
    std::thread child([&] {
      // Unbound: no runtime visible.
      EXPECT_FALSE(lci::get_g_runtime().is_valid());
      lci::sim::scoped_binding_t bound(binding);
      EXPECT_EQ(lci::get_g_runtime().p, parent_rt.p);
      EXPECT_EQ(lci::get_rank_me(), rank);
    });
    child.join();
    lci::barrier();
    lci::g_runtime_fina();
  });
}

TEST(SimBootstrap, SpawnPropagatesExceptions) {
  EXPECT_THROW(lci::sim::spawn(2,
                               [](int rank) {
                                 if (rank == 1)
                                   throw std::runtime_error("rank 1 failed");
                               }),
               std::runtime_error);
}

TEST(SimBootstrap, UnboundThreadGetsImplicitSingleRankWorld) {
  std::thread t([] {
    lci::g_runtime_init();
    EXPECT_EQ(lci::get_rank_me(), 0);
    EXPECT_EQ(lci::get_rank_n(), 1);
    // Self-traffic works on the implicit world.
    char in[16] = {}, out[16] = "loopback";
    lci::comp_t sync = lci::alloc_sync(1);
    lci::status_t rs = lci::post_recv(0, in, sizeof(in), 1, sync);
    lci::status_t ss;
    do {
      ss = lci::post_send(0, out, sizeof(out), 1, {});
      lci::progress();
    } while (ss.error.is_retry());
    if (rs.error.is_posted()) lci::sync_wait(sync, nullptr);
    EXPECT_STREQ(in, "loopback");
    lci::free_comp(&sync);
    lci::g_runtime_fina();
  });
  t.join();
}

}  // namespace
