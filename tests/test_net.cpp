// Unit tests for the simulated network backend layer (paper Sec. 4.2).
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "net/net.hpp"

namespace {

using namespace lci::net;

struct two_rank_fixture_t {
  explicit two_rank_fixture_t(const config_t& config = {})
      : fabric(create_sim_fabric(2, config)),
        ctx0(fabric->create_context(0)),
        ctx1(fabric->create_context(1)),
        dev0(ctx0->create_device()),
        dev1(ctx1->create_device()) {}

  // Pre-posts `n` buffers of `size` bytes on `dev`.
  std::vector<std::unique_ptr<char[]>> prepost(device_t& dev, int n,
                                               std::size_t size) {
    std::vector<std::unique_ptr<char[]>> buffers;
    for (int i = 0; i < n; ++i) {
      buffers.push_back(std::make_unique<char[]>(size));
      EXPECT_EQ(dev.post_recv(buffers.back().get(), size,
                              buffers.back().get()),
                post_result_t::ok);
    }
    return buffers;
  }

  // Polls until one CQE of kind `op` appears (draining others into `extra`).
  cqe_t poll_for(device_t& dev, op_t op) {
    cqe_t cqes[8];
    while (true) {
      const auto polled = dev.poll_cq(cqes, 8);
      for (std::size_t i = 0; i < polled.count; ++i) {
        if (cqes[i].op == op) return cqes[i];
      }
      std::this_thread::yield();
    }
  }

  std::shared_ptr<fabric_t> fabric;
  std::unique_ptr<context_t> ctx0, ctx1;
  std::unique_ptr<device_t> dev0, dev1;
};

TEST(Net, FabricValidation) {
  EXPECT_THROW(create_sim_fabric(0), std::invalid_argument);
  auto fabric = create_sim_fabric(3);
  EXPECT_EQ(fabric->nranks(), 3);
  EXPECT_THROW(fabric->create_context(3), std::out_of_range);
  EXPECT_THROW(fabric->create_context(-1), std::out_of_range);
}

TEST(Net, SendDeliversPayloadAndMetadata) {
  two_rank_fixture_t f;
  auto buffers = f.prepost(*f.dev1, 4, 256);
  const char msg[] = "payload!";
  ASSERT_EQ(f.dev0->post_send(1, msg, sizeof(msg), /*imm=*/7, nullptr),
            post_result_t::ok);

  // Source-side completion.
  const cqe_t send_cqe = f.poll_for(*f.dev0, op_t::send);
  EXPECT_EQ(send_cqe.peer_rank, 1);
  EXPECT_EQ(send_cqe.length, sizeof(msg));

  // Target-side delivery into the pre-posted buffer.
  const cqe_t recv_cqe = f.poll_for(*f.dev1, op_t::recv);
  EXPECT_EQ(recv_cqe.peer_rank, 0);
  EXPECT_EQ(recv_cqe.imm, 7u);
  EXPECT_EQ(recv_cqe.length, sizeof(msg));
  EXPECT_STREQ(static_cast<char*>(recv_cqe.buffer), "payload!");
  EXPECT_EQ(recv_cqe.buffer, recv_cqe.user_context);
}

TEST(Net, LargePayloadTakesHeapPath) {
  two_rank_fixture_t f;
  auto buffers = f.prepost(*f.dev1, 2, 8192);
  std::vector<char> big(4000);
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<char>(i * 7);
  ASSERT_EQ(f.dev0->post_send(1, big.data(), big.size(), 0, nullptr),
            post_result_t::ok);
  const cqe_t cqe = f.poll_for(*f.dev1, op_t::recv);
  EXPECT_EQ(cqe.length, big.size());
  EXPECT_EQ(std::memcmp(cqe.buffer, big.data(), big.size()), 0);
}

TEST(Net, ReceiverNotReadyStallsUntilPrepost) {
  two_rank_fixture_t f;
  const int value = 99;
  ASSERT_EQ(f.dev0->post_send(1, &value, sizeof(value), 0, nullptr),
            post_result_t::ok);
  // No pre-posted receives at dev1: polls deliver nothing (RNR stash).
  cqe_t cqes[4];
  for (int i = 0; i < 5; ++i) {
    const auto polled = f.dev1->poll_cq(cqes, 4);
    EXPECT_EQ(polled.count, 0u);
  }
  auto buffers = f.prepost(*f.dev1, 1, 64);
  const cqe_t cqe = f.poll_for(*f.dev1, op_t::recv);
  EXPECT_EQ(*static_cast<int*>(cqe.buffer), 99);
}

TEST(Net, WireBackpressureReturnsRetry) {
  config_t config;
  config.wire_depth = 4;
  two_rank_fixture_t f(config);
  const int v = 1;
  int accepted = 0;
  while (f.dev0->post_send(1, &v, sizeof(v), 0, nullptr) ==
         post_result_t::ok) {
    ++accepted;
    ASSERT_LT(accepted, 100);  // must back-pressure eventually
  }
  EXPECT_GE(accepted, 4);
  // Draining the target frees the wire.
  auto buffers = f.prepost(*f.dev1, 8, 64);
  f.poll_for(*f.dev1, op_t::recv);
  EXPECT_EQ(f.dev0->post_send(1, &v, sizeof(v), 0, nullptr),
            post_result_t::ok);
}

TEST(Net, WriteReachesRegisteredMemory) {
  two_rank_fixture_t f;
  std::vector<char> window(128, 'x');
  const mr_id_t mr = f.ctx1->register_memory(window.data(), window.size());

  const char data[] = "written";
  ASSERT_EQ(f.dev0->post_write(1, data, sizeof(data), mr, /*offset=*/8,
                               /*notify=*/false, 0, nullptr),
            post_result_t::ok);
  f.poll_for(*f.dev0, op_t::write);
  EXPECT_EQ(std::memcmp(window.data() + 8, data, sizeof(data)), 0);
  EXPECT_EQ(window[0], 'x');  // untouched before the offset
}

TEST(Net, WriteWithNotifyRaisesRemoteCqe) {
  two_rank_fixture_t f;
  std::vector<char> window(64);
  const mr_id_t mr = f.ctx1->register_memory(window.data(), window.size());
  const char data[] = "ping";
  ASSERT_EQ(f.dev0->post_write(1, data, sizeof(data), mr, 0, /*notify=*/true,
                               /*imm=*/0x1234, nullptr),
            post_result_t::ok);
  const cqe_t cqe = f.poll_for(*f.dev1, op_t::remote_write);
  EXPECT_EQ(cqe.imm, 0x1234u);
  EXPECT_EQ(cqe.peer_rank, 0);
  EXPECT_EQ(cqe.length, sizeof(data));
}

TEST(Net, ReadPullsRemoteMemory) {
  two_rank_fixture_t f;
  std::vector<char> window(64);
  snprintf(window.data(), window.size(), "remote content");
  const mr_id_t mr = f.ctx1->register_memory(window.data(), window.size());
  char local[64] = {};
  ASSERT_EQ(f.dev0->post_read(1, local, sizeof(local), mr, 0, false, 0,
                              nullptr),
            post_result_t::ok);
  f.poll_for(*f.dev0, op_t::read);
  EXPECT_STREQ(local, "remote content");
}

TEST(Net, ReadWithNotifyIsTheExtension) {
  two_rank_fixture_t f;
  std::vector<char> window(32, 'z');
  const mr_id_t mr = f.ctx1->register_memory(window.data(), window.size());
  char local[32];
  ASSERT_EQ(f.dev0->post_read(1, local, sizeof(local), mr, 0, /*notify=*/true,
                              /*imm=*/42, nullptr),
            post_result_t::ok);
  const cqe_t cqe = f.poll_for(*f.dev1, op_t::remote_read);
  EXPECT_EQ(cqe.imm, 42u);
}

TEST(Net, RemoteAccessValidation) {
  two_rank_fixture_t f;
  std::vector<char> window(64);
  const mr_id_t mr = f.ctx1->register_memory(window.data(), window.size());
  char buf[128];
  // Bounds violation.
  EXPECT_THROW(f.dev0->post_write(1, buf, sizeof(buf), mr, 0, false, 0,
                                  nullptr),
               std::out_of_range);
  EXPECT_THROW(
      f.dev0->post_write(1, buf, 32, mr, 40, false, 0, nullptr),
      std::out_of_range);
  // Unknown MR.
  EXPECT_THROW(f.dev0->post_write(1, buf, 8, 12345, 0, false, 0, nullptr),
               std::invalid_argument);
  // Deregistered MR.
  f.ctx1->deregister_memory(mr);
  EXPECT_THROW(f.dev0->post_write(1, buf, 8, mr, 0, false, 0, nullptr),
               std::invalid_argument);
  EXPECT_THROW(f.ctx1->deregister_memory(mr), std::invalid_argument);
}

TEST(Net, MrIdsAreRecycled) {
  two_rank_fixture_t f;
  char a[16], b[16];
  const mr_id_t first = f.ctx0->register_memory(a, sizeof(a));
  f.ctx0->deregister_memory(first);
  const mr_id_t second = f.ctx0->register_memory(b, sizeof(b));
  EXPECT_EQ(first, second);  // freelist reuse
  f.ctx0->deregister_memory(second);
}

TEST(Net, RoutingByDeviceIndex) {
  // Messages from device i land on the target's device i (mod count).
  two_rank_fixture_t f;
  auto dev1b = f.ctx1->create_device();  // rank1 now has devices {0, 1}
  auto dev0b = f.ctx0->create_device();  // rank0 too

  auto buffers0 = f.prepost(*f.dev1, 2, 64);
  auto buffers1 = f.prepost(*dev1b, 2, 64);

  const int from_dev0 = 0xaaaa, from_dev1 = 0xbbbb;
  ASSERT_EQ(f.dev0->post_send(1, &from_dev0, sizeof(int), 0, nullptr),
            post_result_t::ok);
  ASSERT_EQ(dev0b->post_send(1, &from_dev1, sizeof(int), 0, nullptr),
            post_result_t::ok);

  const cqe_t on_dev0 = f.poll_for(*f.dev1, op_t::recv);
  EXPECT_EQ(*static_cast<int*>(on_dev0.buffer), 0xaaaa);
  const cqe_t on_dev1 = f.poll_for(*dev1b, op_t::recv);
  EXPECT_EQ(*static_cast<int*>(on_dev1.buffer), 0xbbbb);
}

TEST(Net, RoutingSkipsFreedDevices) {
  two_rank_fixture_t f;
  auto dev1b = f.ctx1->create_device();
  auto dev0b = f.ctx0->create_device();
  dev1b.reset();  // rank1 frees its second device
  auto buffers = f.prepost(*f.dev1, 2, 64);
  const int v = 5;
  // Device index 1 at rank 1 is gone; the message must fall over to dev 0.
  ASSERT_EQ(dev0b->post_send(1, &v, sizeof(v), 0, nullptr),
            post_result_t::ok);
  const cqe_t cqe = f.poll_for(*f.dev1, op_t::recv);
  EXPECT_EQ(*static_cast<int*>(cqe.buffer), 5);
}

// The ofi lock model serializes poll and post on one endpoint lock: a poll
// while the endpoint is held reports lock_missed instead of blocking.
TEST(Net, OfiEndpointLockMiss) {
  config_t config;
  config.lock_model = lock_model_t::ofi;
  two_rank_fixture_t f(config);

  std::atomic<bool> hold{true}, held{false};
  // Occupy dev0's endpoint lock by keeping a poll outstanding from another
  // thread is not directly expressible; instead verify single-threaded
  // behaviour: poll and post both succeed when uncontended.
  cqe_t cqes[4];
  const auto polled = f.dev0->poll_cq(cqes, 4);
  EXPECT_FALSE(polled.lock_missed);
  (void)hold;
  (void)held;
}

// Timing model (optional): a message is deliverable only after
// latency + size/bandwidth has elapsed.
TEST(Net, TimingModelDelaysDelivery) {
  config_t config;
  config.latency_us = 20000;  // 20 ms: comfortably measurable
  two_rank_fixture_t f(config);
  auto buffers = f.prepost(*f.dev1, 2, 64);
  const int v = 7;
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_EQ(f.dev0->post_send(1, &v, sizeof(v), 0, nullptr),
            post_result_t::ok);
  // Immediately: nothing deliverable.
  cqe_t cqes[4];
  EXPECT_EQ(f.dev1->poll_cq(cqes, 4).count, 0u);
  const cqe_t cqe = f.poll_for(*f.dev1, op_t::recv);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(*static_cast<const int*>(cqe.buffer), 7);
  EXPECT_GE(elapsed_ms, 19.0);
}

TEST(Net, TimingModelChargesBandwidth) {
  config_t config;
  config.bandwidth_gbps = 0.001;  // 1 MB/s: 1 ms per KiB
  two_rank_fixture_t f(config);
  auto buffers = f.prepost(*f.dev1, 2, 65536);
  std::vector<char> payload(32 * 1024);  // ~32 ms of wire time
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_EQ(f.dev0->post_send(1, payload.data(), payload.size(), 0, nullptr),
            post_result_t::ok);
  f.poll_for(*f.dev1, op_t::recv);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(elapsed_ms, 30.0);
}

TEST(Net, SelfSendLoopsBack) {
  auto fabric = create_sim_fabric(1);
  auto ctx = fabric->create_context(0);
  auto dev = ctx->create_device();
  char buffer[64];
  ASSERT_EQ(dev->post_recv(buffer, sizeof(buffer), buffer),
            post_result_t::ok);
  const char msg[] = "to myself";
  ASSERT_EQ(dev->post_send(0, msg, sizeof(msg), 0, nullptr),
            post_result_t::ok);
  cqe_t cqes[4];
  bool got_recv = false;
  for (int i = 0; i < 100 && !got_recv; ++i) {
    const auto polled = dev->poll_cq(cqes, 4);
    for (std::size_t j = 0; j < polled.count; ++j)
      if (cqes[j].op == op_t::recv) {
        got_recv = true;
        EXPECT_STREQ(static_cast<char*>(cqes[j].buffer), "to myself");
      }
  }
  EXPECT_TRUE(got_recv);
}

}  // namespace
