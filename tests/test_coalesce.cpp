// Eager-message coalescing (docs/INTERNALS.md "Message coalescing"):
// batch assembly and unpack, the matching-order flush, AM delivery in both
// modes from shared batch packets, explicit flush(), resolved device
// attributes, and deadline/cancel on buffered sub-operations.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <vector>

#include "core/lci.hpp"

namespace {

lci::runtime_attr_t agg_attr() {
  lci::runtime_attr_t attr;
  attr.matching_engine_buckets = 256;
  attr.allow_aggregation = true;
  // These tests assert exact coalescing counters from single-threaded
  // posters, so the single-poster bypass must not silently divert their
  // traffic to the plain eager path.
  attr.aggregation_bypass_single_poster = false;
  return attr;
}

// flush() retries transient back-pressure internally, so one call posts
// every armed batch; the loop remains for batches that are not armed yet at
// the first call (e.g. an age-flush race re-arming a slot).
std::size_t flush_until_posted() {
  for (int i = 0; i < 100000; ++i) {
    const std::size_t n = lci::flush();
    if (n != 0) return n;
    lci::progress();
  }
  return 0;
}

// Coalesced traffic and bypass traffic to the same peer must match in posted
// order: every non-aggregated message flushes the armed slot first, so the
// wire carries [batch{0,1}, large 2, batch{3,4}, large 5, ...] and rank_only
// receives (pure FIFO matching) observe exactly the posted sequence.
TEST(Coalesce, BatchAndBypassMatchInPostedOrder) {
  lci::runtime_attr_t attr = agg_attr();
  // No age flush in-test: every batch below goes out via the matching-order
  // rule or the explicit flush(), so the counters are exact.
  attr.aggregation_flush_us = 1000000;
  lci::sim::spawn(2, [&](int rank) {
    lci::g_runtime_init(attr);
    const lci::counters_t base = lci::get_counters();
    constexpr int count = 10;
    constexpr std::size_t small_size = 8;
    constexpr std::size_t large_size = 600;  // above aggregation_eager_max
    auto is_large = [](int i) { return i % 3 == 2; };
    if (rank == 1) {
      std::vector<std::vector<char>> inbox(
          count, std::vector<char>(large_size, 0));
      lci::comp_t sync = lci::alloc_sync(count);
      for (int i = 0; i < count; ++i) {
        const lci::status_t rs =
            lci::post_recv_x(0, inbox[static_cast<std::size_t>(i)].data(),
                             large_size, 0, sync)
                .matching_policy(lci::matching_policy_t::rank_only)
                .allow_done(false)();
        ASSERT_TRUE(rs.error.is_posted());
      }
      lci::sync_wait(sync, nullptr);
      for (int i = 0; i < count; ++i) {
        const auto& buf = inbox[static_cast<std::size_t>(i)];
        EXPECT_EQ(buf[0], static_cast<char>('A' + i)) << "message " << i;
        const std::size_t last = (is_large(i) ? large_size : small_size) - 1;
        EXPECT_EQ(buf[last], static_cast<char>('A' + i)) << "message " << i;
      }
      EXPECT_GE(lci::get_counters().recv_batches - base.recv_batches, 4u);
      lci::free_comp(&sync);
    } else {
      std::vector<char> out(large_size);
      for (int i = 0; i < count; ++i) {
        const std::size_t size = is_large(i) ? large_size : small_size;
        std::memset(out.data(), 'A' + i, size);
        lci::status_t ss;
        do {
          ss = lci::post_send_x(1, out.data(), size, 0, {})
                   .matching_policy(lci::matching_policy_t::rank_only)();
          lci::progress();
        } while (ss.error.is_retry());
        ASSERT_TRUE(ss.error.is_done());  // copy taken: buffer reusable
      }
      // Message 9 is still buffered; push it explicitly.
      EXPECT_EQ(flush_until_posted(), 1u);
      EXPECT_EQ(lci::flush(), 0u);  // nothing armed anymore
      const lci::counters_t c = lci::get_counters();
      EXPECT_EQ(c.send_coalesced - base.send_coalesced, 7u);  // small sends
      // One ordering flush per large bypass send; plus the explicit flush.
      EXPECT_EQ(c.batch_flush_ordering - base.batch_flush_ordering, 3u);
      EXPECT_EQ(c.batches_flushed - base.batches_flushed, 4u);
    }
    lci::barrier();
    lci::g_runtime_fina();
  });
}

// A per-post override can opt out (and in) regardless of the runtime attr.
TEST(Coalesce, PerPostOverride) {
  lci::sim::spawn(2, [](int rank) {
    lci::runtime_attr_t attr = agg_attr();
    attr.allow_aggregation = false;     // off by default...
    attr.aggregation_flush_us = 1000000;  // explicit flush only, no age race
    lci::g_runtime_init(attr);
    if (rank == 0) {
      const lci::counters_t base = lci::get_counters();
      char out[8] = "sub";
      lci::status_t ss;
      do {  // ...but forced on for this post
        ss = lci::post_send_x(1, out, sizeof(out), 3, {})
                 .allow_aggregation(true)();
        lci::progress();
      } while (ss.error.is_retry());
      EXPECT_EQ(lci::get_counters().send_coalesced - base.send_coalesced, 1u);
      EXPECT_EQ(flush_until_posted(), 1u);
    } else {
      char in[8] = {};
      lci::comp_t sync = lci::alloc_sync(1);
      const lci::status_t rs = lci::post_recv(0, in, sizeof(in), 3, sync);
      if (rs.error.is_posted()) lci::sync_wait(sync, nullptr);
      EXPECT_STREQ(in, "sub");
      lci::free_comp(&sync);
    }
    lci::barrier();
    lci::g_runtime_fina();
  });
}

// Aggregated active messages, copy delivery: payloads malloc'd per AM.
TEST(Coalesce, AggregatedAmsCopyDelivery) {
  lci::runtime_attr_t attr = agg_attr();
  attr.aggregation_flush_us = 0;  // flush whatever accumulated per progress
  lci::sim::spawn(2, [&](int rank) {
    lci::g_runtime_init(attr);
    const lci::counters_t base = lci::get_counters();
    const int peer = 1 - rank;
    lci::comp_t rcq = lci::alloc_cq();
    const lci::rcomp_t rcomp = lci::register_rcomp(rcq);
    lci::barrier();
    constexpr int count = 200;
    char payload[96];
    int sent = 0, received = 0;
    while (sent < count || received < count) {
      // Post in small bursts so batches really carry several sub-messages.
      for (int burst = 0; burst < 4 && sent < count; ++burst) {
        snprintf(payload, sizeof(payload), "batched am %d from %d", sent,
                 rank);
        const auto ss =
            lci::post_am(peer, payload, sizeof(payload), {}, rcomp);
        if (!ss.error.is_retry()) ++sent;
      }
      lci::progress();
      lci::status_t s = lci::cq_pop(rcq);
      if (s.error.is_done()) {
        int index = -1, from = -1;
        sscanf(static_cast<char*>(s.buffer.base), "batched am %d from %d",
               &index, &from);
        EXPECT_EQ(from, peer);
        EXPECT_GE(index, 0);
        std::free(s.buffer.base);
        ++received;
      }
    }
    EXPECT_EQ(lci::get_counters().send_coalesced - base.send_coalesced,
              static_cast<uint64_t>(count));
    lci::barrier();
    lci::deregister_rcomp(rcomp);
    lci::free_comp(&rcq);
    lci::g_runtime_fina();
  });
}

// Aggregated active messages, packet delivery: every AM in a batch shares one
// refcounted packet; release_am_packet returns it to the pool exactly when
// the last slice is released.
TEST(Coalesce, AggregatedAmsPacketDelivery) {
  lci::runtime_attr_t attr = agg_attr();
  attr.aggregation_flush_us = 0;
  attr.am_deliver_packets = true;
  lci::sim::spawn(2, [&](int rank) {
    lci::g_runtime_init(attr);
    const int peer = 1 - rank;
    lci::comp_t rcq = lci::alloc_cq();
    const lci::rcomp_t rcomp = lci::register_rcomp(rcq);
    lci::barrier();
    constexpr int count = 200;
    char payload[96];
    int sent = 0, received = 0;
    std::vector<lci::status_t> held;  // delay releases across whole batches
    while (sent < count || received < count) {
      for (int burst = 0; burst < 4 && sent < count; ++burst) {
        snprintf(payload, sizeof(payload), "batched am %d from %d", sent,
                 rank);
        const auto ss =
            lci::post_am(peer, payload, sizeof(payload), {}, rcomp);
        if (!ss.error.is_retry()) ++sent;
      }
      lci::progress();
      lci::status_t s = lci::cq_pop(rcq);
      if (s.error.is_done()) {
        int index = -1, from = -1;
        sscanf(static_cast<char*>(s.buffer.base), "batched am %d from %d",
               &index, &from);
        EXPECT_EQ(from, peer);
        held.push_back(s);
        ++received;
        if (held.size() >= 8) {
          for (const auto& h : held) lci::release_am_packet(h);
          held.clear();
        }
      }
    }
    for (const auto& h : held) lci::release_am_packet(h);
    lci::barrier();
    lci::deregister_rcomp(rcomp);
    lci::free_comp(&rcq);
    lci::g_runtime_fina();
  });
}

// Resolved aggregation policy and poll burst are visible in device attrs.
TEST(Coalesce, DeviceAttrsReportResolvedPolicy) {
  lci::sim::spawn(1, [](int) {
    lci::g_runtime_init(agg_attr());
    lci::device_attr_t attr = lci::get_attr(lci::device_t{});
    EXPECT_TRUE(attr.allow_aggregation);
    EXPECT_EQ(attr.aggregation_eager_max, 256u);
    EXPECT_EQ(attr.aggregation_max_bytes, 4096u - 16u);  // payload capacity
    EXPECT_EQ(attr.aggregation_max_msgs, 64u);
    EXPECT_EQ(attr.aggregation_flush_us, 100u);
    EXPECT_EQ(attr.cq_poll_burst, 64u);  // fabric poll_burst default
    lci::g_runtime_fina();

    lci::runtime_attr_t custom = agg_attr();
    custom.cq_poll_burst = 7;
    lci::g_runtime_init(custom);
    EXPECT_EQ(lci::get_attr(lci::device_t{}).cq_poll_burst, 7u);
    lci::g_runtime_fina();

    custom.cq_poll_burst = 1000;  // clamped to the progress stack array
    lci::g_runtime_init(custom);
    EXPECT_EQ(lci::get_attr(lci::device_t{}).cq_poll_burst, 64u);
    lci::g_runtime_fina();
  });
}

// Deadline and cancel() complete a buffered sub-operation exactly once; the
// staged bytes still travel on the eventual flush (completion-only cancel).
TEST(Coalesce, DeadlineAndCancelOnBufferedSubOps) {
  lci::runtime_attr_t attr = agg_attr();
  attr.aggregation_flush_us = 1000000;  // nothing flushes by age in-test
  lci::sim::spawn(2, [&](int rank) {
    lci::g_runtime_init(attr);
    if (rank == 0) {
      // Tags 1 and 2 hash to different shards when device_shards > 1; pin
      // this thread so both sub-ops park in one slot and the flush posts
      // exactly one batch regardless of the shard count.
      lci::pin_thread_shard(0);
      lci::comp_t cq = lci::alloc_cq();
      char out[8] = "timed";

      // Deadline: the sweep completes the buffered entry with fatal_timeout.
      lci::status_t ss = lci::post_send_x(1, out, sizeof(out), 1, cq)
                             .allow_done(false)
                             .deadline(2000)();
      ASSERT_TRUE(ss.error.is_posted());
      lci::status_t st;
      do {
        lci::progress();
        st = lci::cq_pop(cq);
      } while (st.error.is_retry());
      EXPECT_EQ(st.error.code, lci::errorcode_t::fatal_timeout);

      // Cancel: wins the record CAS, the flush then skips the entry.
      lci::op_t op;
      ss = lci::post_send_x(1, out, sizeof(out), 2, cq)
               .allow_done(false)
               .op_handle(&op)();
      ASSERT_TRUE(ss.error.is_posted());
      EXPECT_TRUE(lci::cancel(op));
      EXPECT_FALSE(lci::cancel(op));  // spent
      do {
        st = lci::cq_pop(cq);
      } while (st.error.is_retry());
      EXPECT_EQ(st.error.code, lci::errorcode_t::fatal_canceled);

      // Both sub-messages still sit in the slot; they travel now, but their
      // completions were already consumed — the flush delivers nothing new.
      EXPECT_EQ(flush_until_posted(), 1u);
      for (int i = 0; i < 50; ++i) lci::progress();
      EXPECT_TRUE(lci::cq_pop(cq).error.is_retry());

      const lci::counters_t c = lci::get_counters();
      EXPECT_EQ(c.ops_timed_out, 1u);
      EXPECT_EQ(c.ops_canceled, 1u);
      EXPECT_EQ(c.comp_fatal, 2u);
      lci::free_comp(&cq);
      lci::pin_thread_shard(-1);  // don't leak the pin to later tests
    }
    lci::barrier();
    lci::g_runtime_fina();
  });
}

// drain() force-flushes armed slots in its cooperative phase: buffered
// sub-operations complete done, not fatal_canceled.
TEST(Coalesce, DrainFlushesBufferedSubOps) {
  lci::runtime_attr_t attr = agg_attr();
  attr.aggregation_flush_us = 1000000;
  lci::sim::spawn(2, [&](int rank) {
    lci::g_runtime_init(attr);
    if (rank == 0) {
      lci::comp_t cq = lci::alloc_cq();
      char out[8] = "drained";
      const lci::status_t ss =
          lci::post_send_x(1, out, sizeof(out), 5, cq).allow_done(false)();
      ASSERT_TRUE(ss.error.is_posted());
      EXPECT_EQ(lci::drain(lci::device_t{}, 100000), 0u);  // clean drain
      lci::status_t st = lci::cq_pop(cq);
      EXPECT_TRUE(st.error.is_done());
      lci::free_comp(&cq);
    }
    lci::barrier();
    lci::g_runtime_fina();
  });
}

}  // namespace
