// Torture tests for the lock-free receive path (docs/INTERNALS.md "Lock
// layout"): the bounded MPSC completion queue — producers on every thread,
// consumer rotation through the claim protocol, wraparound and full/empty
// ring edges — and the shard-steered matching engine racing a dead-peer
// purge with device_shards = 4. Runs in the tsan tier-1 leg: every test
// here must stay race-free under concurrent producers, rotating consumers,
// and a purge walking all bucket segments mid-traffic.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/lci.hpp"
#include "util/mpsc_queue.hpp"

namespace {

// ---------------------------------------------------------------------------
// Ring edges: wraparound, full, empty — deterministic, single-threaded.
// ---------------------------------------------------------------------------

TEST(MpscQueue, WraparoundFullEmptyEdges) {
  lci::util::mpsc_queue_t<int> q(3);  // rounds up to 4
  ASSERT_EQ(q.capacity(), 4u);
  auto guard = q.try_claim_consumer();
  ASSERT_TRUE(static_cast<bool>(guard));
  int next_push = 0;
  int next_pop = 0;
  // Five full fill/drain cycles walk the cursors well past one lap of the
  // ring, so the sequence-cell wraparound arithmetic (pos + capacity) is
  // exercised at both the full and the empty edge every cycle.
  for (int cycle = 0; cycle < 5; ++cycle) {
    EXPECT_TRUE(q.empty_approx());
    EXPECT_FALSE(q.try_pop().has_value());  // empty edge
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(next_push++));
    EXPECT_FALSE(q.try_push(-1));  // full edge: push refused, nothing lost
    EXPECT_EQ(q.size_approx(), 4u);
    // Partial drain then refill: head and tail wrap at different offsets.
    for (int i = 0; i < 2; ++i) {
      const std::optional<int> v = q.try_pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, next_pop++);
    }
    EXPECT_TRUE(q.try_push(next_push++));
    EXPECT_TRUE(q.try_push(next_push++));
    EXPECT_FALSE(q.try_push(-1));  // full again at a rotated position
    for (int i = 0; i < 4; ++i) {
      const std::optional<int> v = q.try_pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, next_pop++);  // FIFO held across the wrap
    }
  }
  EXPECT_TRUE(q.empty_approx());
}

// ---------------------------------------------------------------------------
// Claim protocol: exactly one live consumer, release hands over cleanly.
// ---------------------------------------------------------------------------

TEST(MpscQueue, ConsumerClaimIsExclusive) {
  lci::util::mpsc_queue_t<int> q(8);
  auto first = q.try_claim_consumer();
  ASSERT_TRUE(static_cast<bool>(first));
  EXPECT_FALSE(static_cast<bool>(q.try_claim_consumer()));  // held
  // Moving the guard moves the claim, it does not release it.
  auto moved = std::move(first);
  EXPECT_TRUE(static_cast<bool>(moved));
  EXPECT_FALSE(static_cast<bool>(q.try_claim_consumer()));
  moved.release();
  auto second = q.try_claim_consumer();  // free again after release
  EXPECT_TRUE(static_cast<bool>(second));
}

// ---------------------------------------------------------------------------
// MPSC torture: producers on every thread, consumers rotating the claim.
// ---------------------------------------------------------------------------

// Four producers hammer a deliberately tiny ring (capacity 64, so the full
// edge and wraparound fire constantly) while three consumer threads rotate
// the claim, each popping a small batch per tenure. Checked invariants:
//  * exactly-once delivery — every pushed value is popped exactly once;
//  * per-producer FIFO — values from one producer arrive in push order
//    (the ring is MPSC: producers interleave, but never reorder
//    themselves);
//  * single consumership — the claim admits one popper at a time, and the
//    release/acquire handoff publishes the previous tenure's cursor so the
//    per-producer sequence log needs no locking of its own (TSan verifies
//    exactly that happens-before edge).
TEST(MpscQueue, ProducersEverywhereConsumerRotation) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr long kPerProducer = 20000;
  constexpr long kTotal = kProducers * kPerProducer;

  lci::util::mpsc_queue_t<uint64_t> q(64);
  std::atomic<long> popped{0};
  std::atomic<int> live_consumers{0};
  std::atomic<bool> overlap{false};
  std::atomic<bool> misorder{false};
  // Guarded by the consumer claim (not a lock): only the claim holder
  // touches it, and the claim handoff publishes it to the next holder.
  long last_seq[kProducers];
  for (long& s : last_seq) s = -1;

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (long i = 0; i < kPerProducer; ++i) {
        const uint64_t value =
            (static_cast<uint64_t>(static_cast<unsigned>(p)) << 32) |
            static_cast<uint64_t>(i);
        while (!q.try_push(value)) std::this_thread::yield();  // ring full
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (popped.load(std::memory_order_relaxed) < kTotal) {
        auto guard = q.try_claim_consumer();
        if (!guard) {
          std::this_thread::yield();
          continue;
        }
        if (live_consumers.fetch_add(1, std::memory_order_relaxed) != 0)
          overlap.store(true, std::memory_order_relaxed);
        // Short tenure: pop a batch, then release so the claim genuinely
        // rotates between the consumer threads.
        for (int batch = 0; batch < 32; ++batch) {
          const std::optional<uint64_t> v = q.try_pop();
          if (!v.has_value()) break;
          const int producer = static_cast<int>(*v >> 32);
          const long seq = static_cast<long>(*v & 0xffffffffu);
          if (seq != last_seq[producer] + 1)
            misorder.store(true, std::memory_order_relaxed);
          last_seq[producer] = seq;
          popped.fetch_add(1, std::memory_order_relaxed);
        }
        live_consumers.fetch_sub(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(popped.load(), kTotal);
  EXPECT_FALSE(overlap.load()) << "two consumers held the claim at once";
  EXPECT_FALSE(misorder.load()) << "per-producer FIFO violated";
  for (int p = 0; p < kProducers; ++p)
    EXPECT_EQ(last_seq[p], kPerProducer - 1);
  EXPECT_TRUE(q.empty_approx());
}

// ---------------------------------------------------------------------------
// Purge racing steered inserts at device_shards = 4.
// ---------------------------------------------------------------------------

// Four posters, each pinned to its own shard, stream receives naming rank 1
// into the segmented matching engine — rank_tag keys steer to per-shard
// segments, every eighth post uses rank_only (a wildcard key) and lands in
// the shared global segment. Mid-stream, poster 0 kills the peer: the purge
// walks every bucket of every segment while the other three posters are
// still inserting. The accounting invariant is exact: every post either
// fails inline with fatal_peer_down (posted after the death was visible) or
// is queued and must surface exactly once through the CQ as
// fatal_peer_down — the insert-vs-purge race in post_receive re-removes
// entries that landed behind the sweep, so nothing is ever orphaned or
// completed twice.
TEST(MpscCq, PurgeWhileSteeredShards4) {
  constexpr int kPosters = 4;
  constexpr long kPostsPerThread = 256;
  std::atomic<int> finished{0};
  lci::sim::spawn(2, [&](int rank) {
    lci::runtime_attr_t attr;
    attr.device_shards = 4;
    attr.matching_engine_buckets = 256;
    lci::g_runtime_init(attr);
    if (rank == 0) {
      lci::comp_t cq = lci::alloc_cq();
      std::atomic<long> queued{0};
      std::atomic<long> inline_fatal{0};
      // One buffer per post, alive until the completion drain below.
      std::vector<std::vector<char>> bufs(
          static_cast<std::size_t>(kPosters),
          std::vector<char>(static_cast<std::size_t>(kPostsPerThread) * 8));
      auto binding = lci::sim::current_binding();
      auto poster = [&](int t) {
        lci::sim::scoped_binding_t bound(binding);
        lci::pin_thread_shard(t);
        for (long i = 0; i < kPostsPerThread; ++i) {
          if (t == 0 && i == kPostsPerThread / 2) {
            EXPECT_TRUE(lci::kill_peer(1));
          }
          char* buf = bufs[static_cast<std::size_t>(t)].data() + i * 8;
          const lci::matching_policy_t policy =
              (i % 8 == 7) ? lci::matching_policy_t::rank_only
                           : lci::matching_policy_t::rank_tag;
          const lci::status_t st =
              lci::post_recv_x(1, buf, 8,
                               static_cast<lci::tag_t>(i & 0xffff), cq)
                  .matching_policy(policy)
                  .allow_done(false)();
          if (st.error.is_posted()) {
            queued.fetch_add(1, std::memory_order_relaxed);
          } else if (st.error.is_fatal()) {
            EXPECT_EQ(st.error.code, lci::errorcode_t::fatal_peer_down);
            inline_fatal.fetch_add(1, std::memory_order_relaxed);
          } else {
            --i;  // retry: try the same post again
            lci::progress();
          }
        }
        lci::pin_thread_shard(-1);
      };
      std::vector<std::thread> posters;
      for (int t = 1; t < kPosters; ++t) posters.emplace_back(poster, t);
      poster(0);
      for (auto& t : posters) t.join();
      EXPECT_EQ(queued.load() + inline_fatal.load(),
                static_cast<long>(kPosters) * kPostsPerThread);
      EXPECT_GT(queued.load(), 0);        // some posts beat the kill
      EXPECT_GT(inline_fatal.load(), 0);  // some posts saw the dead peer
      // Every queued receive owes exactly one fatal completion.
      long fatal = 0;
      while (fatal < queued.load()) {
        lci::progress();
        const lci::status_t st = lci::cq_pop(cq);
        if (st.error.is_retry()) continue;
        ASSERT_EQ(st.error.code, lci::errorcode_t::fatal_peer_down);
        EXPECT_EQ(st.rank, 1);
        ++fatal;
      }
      // Owed-pop audit: never one completion more than was queued.
      for (int i = 0; i < 50; ++i) {
        lci::progress();
        EXPECT_TRUE(lci::cq_pop(cq).error.is_retry());
      }
      lci::free_comp(&cq);
    }
    finished.fetch_add(1, std::memory_order_release);
    while (finished.load(std::memory_order_acquire) < 2) {
      lci::progress();
      std::this_thread::yield();
    }
    lci::g_runtime_fina();
  });
}

}  // namespace
