// post_comm semantics tests (paper Sec. 3.2.4/3.2.5, Table 1): the protocol
// sweep across inject / buffer-copy / rendezvous, matching policies,
// done/posted/retry/backlog conventions, buffer lists, RMA, and library
// composition with multiple runtimes.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "core/lci.hpp"

namespace {

void run2(const std::function<void(int)>& fn, lci::runtime_attr_t attr = {}) {
  if (attr.matching_engine_buckets == 65536)
    attr.matching_engine_buckets = 1024;
  lci::sim::spawn(2, [&](int rank) {
    lci::g_runtime_init(attr);
    fn(rank);
    lci::barrier();
    lci::g_runtime_fina();
  });
}

// Blocking helpers for test brevity.
void send_blocking(int peer, void* buf, std::size_t n, lci::tag_t tag) {
  lci::comp_t sync = lci::alloc_sync(1);
  lci::status_t s;
  do {
    s = lci::post_send(peer, buf, n, tag, sync);
    lci::progress();
  } while (s.error.is_retry());
  if (s.error.is_posted()) lci::sync_wait(sync, nullptr);
  lci::free_comp(&sync);
}

lci::status_t recv_blocking(int peer, void* buf, std::size_t n,
                            lci::tag_t tag) {
  lci::comp_t sync = lci::alloc_sync(1);
  lci::status_t s = lci::post_recv(peer, buf, n, tag, sync);
  if (s.error.is_posted()) lci::sync_wait(sync, &s);
  lci::free_comp(&sync);
  return s;
}

// ---------------------------------------------------------------------------
// Protocol sweep: message sizes crossing the inject (<=64B), buffer-copy
// (<= packet payload), and rendezvous (beyond) protocol boundaries.
// ---------------------------------------------------------------------------
class ProtocolSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ProtocolSizes, SendRecvRoundTrip) {
  const std::size_t size = GetParam();
  run2([&](int rank) {
    const int peer = 1 - rank;
    std::vector<char> out(size);
    for (std::size_t i = 0; i < size; ++i)
      out[i] = static_cast<char>((i * 31 + static_cast<std::size_t>(rank)) &
                                 0xff);
    std::vector<char> in(size, 0);
    // Symmetric exchange: post recv first, then send.
    lci::comp_t sync = lci::alloc_sync(1);
    lci::status_t rs = lci::post_recv(peer, in.data(), size, 3, sync);
    send_blocking(peer, out.data(), size, 3);
    if (rs.error.is_posted()) lci::sync_wait(sync, &rs);
    ASSERT_TRUE(rs.error.is_done());
    EXPECT_EQ(rs.buffer.size, size);
    EXPECT_EQ(rs.rank, peer);
    for (std::size_t i = 0; i < size; ++i)
      ASSERT_EQ(in[i], static_cast<char>((i * 31 +
                                          static_cast<std::size_t>(peer)) &
                                         0xff))
          << "at byte " << i;
    lci::free_comp(&sync);
  });
}

TEST_P(ProtocolSizes, ActiveMessageRoundTrip) {
  const std::size_t size = GetParam();
  run2([&](int rank) {
    const int peer = 1 - rank;
    lci::comp_t rcq = lci::alloc_cq();
    const lci::rcomp_t rcomp = lci::register_rcomp(rcq);
    lci::barrier();

    std::vector<char> out(size);
    for (std::size_t i = 0; i < size; ++i)
      out[i] = static_cast<char>((i + static_cast<std::size_t>(rank) * 3) &
                                 0xff);
    lci::comp_t sync = lci::alloc_sync(1);
    lci::status_t ss;
    do {
      ss = lci::post_am_x(peer, out.data(), size, sync, rcomp).tag(6)();
      lci::progress();
    } while (ss.error.is_retry());
    if (ss.error.is_posted()) lci::sync_wait(sync, nullptr);

    lci::status_t arrival;
    do {
      lci::progress();
      arrival = lci::cq_pop(rcq);
    } while (!arrival.error.is_done());
    EXPECT_EQ(arrival.buffer.size, size);
    EXPECT_EQ(arrival.rank, peer);
    EXPECT_EQ(arrival.tag, 6u);
    const char* data = static_cast<const char*>(arrival.buffer.base);
    for (std::size_t i = 0; i < size; ++i)
      ASSERT_EQ(data[i],
                static_cast<char>((i + static_cast<std::size_t>(peer) * 3) &
                                  0xff));
    std::free(arrival.buffer.base);
    lci::barrier();
    lci::deregister_rcomp(rcomp);
    lci::free_comp(&rcq);
    lci::free_comp(&sync);
  });
}

INSTANTIATE_TEST_SUITE_P(
    SizeSweep, ProtocolSizes,
    // 1B and 64B: inject; 65B..4080B: buffer-copy; beyond: rendezvous.
    ::testing::Values(1, 8, 64, 65, 1024, 4080, 4081, 16384, 262144),
    [](const auto& info) { return "bytes" + std::to_string(info.param); });

// ---------------------------------------------------------------------------
// Registration cache: a receive posted at an interior pointer of a previously
// cached registration is served by the covering MR, and the RTR must carry
// the buffer's offset inside it — without the offset the sender's RDMA write
// lands at the cached entry's base instead of the posted buffer (regression).
// ---------------------------------------------------------------------------

TEST(RegCache, InteriorPointerRendezvousLandsAtPostedBuffer) {
  lci::runtime_attr_t attr;
  attr.reg_cache_entries = 64;
  run2(
      [&](int rank) {
        const int peer = 1 - rank;
        const std::size_t chunk = 64 * 1024;  // rendezvous-sized
        const std::size_t parts = 4;
        if (rank == 0) {
          std::vector<char> arena(parts * chunk, 0);
          // Prime the cache: one transfer spanning the whole arena leaves its
          // registration resident.
          lci::status_t rs =
              recv_blocking(peer, arena.data(), arena.size(), 1);
          ASSERT_TRUE(rs.error.is_done());
          const uint64_t hits_before = lci::get_counters().reg_cache_hits;
          for (std::size_t k = 1; k < parts; ++k) {
            std::fill(arena.begin(), arena.end(), 0);
            lci::status_t is =
                recv_blocking(peer, arena.data() + k * chunk, chunk,
                              static_cast<lci::tag_t>(1 + k));
            ASSERT_TRUE(is.error.is_done());
            for (std::size_t i = 0; i < chunk; ++i)
              ASSERT_EQ(arena[k * chunk + i],
                        static_cast<char>((i * 13 + k) & 0xff))
                  << "part " << k << " byte " << i;
            // Nothing may land at the MR base (where the payload went when
            // the RTR dropped the offset).
            for (std::size_t i = 0; i < chunk; ++i)
              ASSERT_EQ(arena[i], 0) << "corruption at arena base, byte " << i;
          }
          // Every interior receive must have been a covering-interval hit.
          EXPECT_GE(lci::get_counters().reg_cache_hits - hits_before,
                    parts - 1);
        } else {
          std::vector<char> whole(parts * chunk);
          for (std::size_t i = 0; i < whole.size(); ++i)
            whole[i] = static_cast<char>(i & 0xff);
          send_blocking(peer, whole.data(), whole.size(), 1);
          for (std::size_t k = 1; k < parts; ++k) {
            std::vector<char> out(chunk);
            for (std::size_t i = 0; i < chunk; ++i)
              out[i] = static_cast<char>((i * 13 + k) & 0xff);
            send_blocking(peer, out.data(), chunk,
                          static_cast<lci::tag_t>(1 + k));
          }
        }
      },
      attr);
}

// ---------------------------------------------------------------------------
// Matching policies (Sec. 3.3.2)
// ---------------------------------------------------------------------------

TEST(MatchingPolicy, RankOnlyIgnoresTags) {
  run2([&](int rank) {
    const int peer = 1 - rank;
    int out = rank, in = -1;
    lci::comp_t sync = lci::alloc_sync(1);
    // Receive with rank_only, tag 111; send with rank_only, tag 999.
    lci::status_t rs = lci::post_recv_x(peer, &in, sizeof(in), 111, sync)
                           .matching_policy(lci::matching_policy_t::rank_only)();
    lci::status_t ss;
    do {
      ss = lci::post_send_x(peer, &out, sizeof(out), 999, {})
               .matching_policy(lci::matching_policy_t::rank_only)();
      lci::progress();
    } while (ss.error.is_retry());
    if (rs.error.is_posted()) lci::sync_wait(sync, &rs);
    EXPECT_EQ(in, peer);
    lci::free_comp(&sync);
  });
}

TEST(MatchingPolicy, TagOnlyIsAnySource) {
  run2([&](int rank) {
    const int peer = 1 - rank;
    int out = 100 + rank, in = -1;
    lci::comp_t sync = lci::alloc_sync(1);
    // The receive names the peer but the key ignores rank: any source with
    // tag 7 matches.
    lci::status_t rs = lci::post_recv_x(peer, &in, sizeof(in), 7, sync)
                           .matching_policy(lci::matching_policy_t::tag_only)();
    lci::status_t ss;
    do {
      ss = lci::post_send_x(peer, &out, sizeof(out), 7, {})
               .matching_policy(lci::matching_policy_t::tag_only)();
      lci::progress();
    } while (ss.error.is_retry());
    if (rs.error.is_posted()) lci::sync_wait(sync, &rs);
    EXPECT_EQ(in, 100 + peer);
    EXPECT_EQ(rs.rank, peer);  // the actual source is reported
    lci::free_comp(&sync);
  });
}

TEST(MatchingPolicy, DifferentPoliciesDoNotCross) {
  run2([&](int rank) {
    // One-directional to avoid cross-rank timing races: rank 1 sends, rank 0
    // receives with both an exact (rank_tag) and a wildcard (rank_only)
    // posted. A rank_only send must match only the wildcard receive.
    if (rank == 1) {
      int out = 1;
      lci::status_t ss;
      do {
        ss = lci::post_send_x(0, &out, sizeof(out), 5, {})
                 .matching_policy(lci::matching_policy_t::rank_only)();
        lci::progress();
      } while (ss.error.is_retry());
      // Wait for rank 0's acknowledgment, then satisfy the exact receive.
      char ack;
      recv_blocking(0, &ack, 1, 77);
      out = 2;
      do {
        ss = lci::post_send(0, &out, sizeof(out), 5, {});
        lci::progress();
      } while (ss.error.is_retry());
      return;
    }
    int in_wild = -1, in_exact = -1;
    lci::comp_t sync_exact = lci::alloc_sync(1);
    lci::comp_t sync_wild = lci::alloc_sync(1);
    lci::status_t r_exact =
        lci::post_recv(1, &in_exact, sizeof(int), 5, sync_exact);
    lci::status_t r_wild =
        lci::post_recv_x(1, &in_wild, sizeof(int), 5, sync_wild)
            .matching_policy(lci::matching_policy_t::rank_only)();
    if (r_wild.error.is_posted()) lci::sync_wait(sync_wild, &r_wild);
    EXPECT_EQ(in_wild, 1);
    EXPECT_EQ(in_exact, -1);  // the rank_only send did not cross policies
    char ack = 'k';
    send_blocking(1, &ack, 1, 77);
    if (r_exact.error.is_posted()) lci::sync_wait(sync_exact, nullptr);
    EXPECT_EQ(in_exact, 2);
    lci::free_comp(&sync_exact);
    lci::free_comp(&sync_wild);
  });
}

// ---------------------------------------------------------------------------
// Return-value conventions
// ---------------------------------------------------------------------------

TEST(ReturnValues, EagerSendCompletesImmediately) {
  run2([&](int rank) {
    const int peer = 1 - rank;
    char byte = 'x';
    char in = 0;
    lci::comp_t sync = lci::alloc_sync(1);
    lci::status_t rs = lci::post_recv(peer, &in, 1, 2, sync);
    lci::status_t ss;
    do {
      ss = lci::post_send(peer, &byte, 1, 2, {});
      lci::progress();
    } while (ss.error.is_retry());
    // Inject-size send: done, with a valid status.
    EXPECT_TRUE(ss.error.is_done());
    EXPECT_EQ(ss.rank, peer);
    EXPECT_EQ(ss.tag, 2u);
    if (rs.error.is_posted()) lci::sync_wait(sync, nullptr);
    lci::free_comp(&sync);
  });
}

TEST(ReturnValues, AllowDoneFalseForcesSignal) {
  run2([&](int rank) {
    const int peer = 1 - rank;
    char byte = 'y';
    char in = 0;
    lci::comp_t rsync = lci::alloc_sync(1);
    lci::status_t rs = lci::post_recv(peer, &in, 1, 3, rsync);
    lci::comp_t ssync = lci::alloc_sync(1);
    lci::status_t ss;
    do {
      ss = lci::post_send_x(peer, &byte, 1, 3, ssync).allow_done(false)();
      lci::progress();
    } while (ss.error.is_retry());
    EXPECT_TRUE(ss.error.is_posted());  // done was forbidden
    lci::status_t signaled;
    lci::sync_wait(ssync, &signaled);
    EXPECT_TRUE(signaled.error.is_done());
    EXPECT_EQ(signaled.tag, 3u);
    if (rs.error.is_posted()) lci::sync_wait(rsync, nullptr);
    lci::free_comp(&rsync);
    lci::free_comp(&ssync);
  });
}

TEST(ReturnValues, UserContextTravels) {
  run2([&](int rank) {
    const int peer = 1 - rank;
    int marker = 1234;
    char in = 0, out = 'z';
    lci::comp_t sync = lci::alloc_sync(1);
    lci::status_t rs = lci::post_recv_x(peer, &in, 1, 4, sync)
                           .user_context(&marker)();
    send_blocking(peer, &out, 1, 4);
    if (rs.error.is_posted()) lci::sync_wait(sync, &rs);
    EXPECT_EQ(rs.user_context, &marker);
    lci::free_comp(&sync);
  });
}

TEST(ReturnValues, FatalErrorsThrow) {
  run2([&](int rank) {
    char buf[8];
    // Rank out of range.
    EXPECT_THROW(lci::post_send(99, buf, sizeof(buf), 0, {}),
                 lci::fatal_error_t);
    EXPECT_THROW(lci::post_send(-1, buf, sizeof(buf), 0, {}),
                 lci::fatal_error_t);
    // Table 1's invalid combination.
    EXPECT_THROW(lci::post_comm_x(1 - rank, buf, sizeof(buf), {})
                     .direction(lci::direction_t::in)
                     .remote_comp(0)(),
                 lci::fatal_error_t);
  });
}

// allow_retry=false: the operation lands on the backlog queue and completes
// through the completion object; the user buffer is immediately reusable for
// eager-size payloads (*_backlog status). A shallow wire (fabric flow
// control) forces the retry path deterministically.
TEST(Backlog, AllowRetryFalseCompletesEventually) {
  lci::net::config_t net_config;
  net_config.wire_depth = 4;  // back-pressure after a handful of messages
  lci::sim::spawn(
      2,
      [&](int rank) {
        lci::runtime_attr_t attr;
        attr.matching_engine_buckets = 256;
        lci::g_runtime_init(attr);
        const int peer = 1 - rank;
        constexpr int count = 32;
        constexpr std::size_t size = 512;  // buffer-copy path
        std::vector<std::vector<char>> in(count,
                                          std::vector<char>(size, 0));
        std::vector<char> out(size, static_cast<char>('A' + rank));
        lci::comp_t rsync = lci::alloc_sync(count);
        lci::comp_t scq = lci::alloc_cq();
        for (int i = 0; i < count; ++i) {
          (void)lci::post_recv_x(peer, in[static_cast<std::size_t>(i)].data(),
                                 size, 8, rsync)
              .allow_done(false)();
        }
        // Burst of sends: the shallow wire back-pressures; allow_retry=false
        // must absorb every retry into the backlog.
        int signals_owed = 0, backlogged = 0;
        for (int i = 0; i < count; ++i) {
          lci::status_t ss = lci::post_send_x(peer, out.data(), size, 8, scq)
                                 .allow_retry(false)();
          ASSERT_FALSE(ss.error.is_retry());
          if (ss.error.code == lci::errorcode_t::posted_backlog) {
            ++backlogged;
            ++signals_owed;
          } else if (ss.error.is_posted()) {
            ++signals_owed;
          }
        }
        EXPECT_GT(backlogged, 0);  // the wire really did push back
        // Drain: all receives complete, all owed send signals arrive.
        lci::sync_wait(rsync, nullptr);
        while (signals_owed > 0) {
          lci::progress();
          if (lci::cq_pop(scq).error.is_done()) --signals_owed;
        }
        for (const auto& buf : in)
          EXPECT_EQ(buf[0], static_cast<char>('A' + peer));
        lci::barrier();
        lci::free_comp(&rsync);
        lci::free_comp(&scq);
        lci::g_runtime_fina();
      },
      net_config);
}

// ---------------------------------------------------------------------------
// Buffer lists (Sec. 3.3.1)
// ---------------------------------------------------------------------------

class BufferLists : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BufferLists, GatherScatter) {
  const std::size_t chunk = GetParam();
  run2([&](int rank) {
    const int peer = 1 - rank;
    // Three source chunks gather into one message; three destination chunks
    // scatter it back apart.
    std::vector<char> src1(chunk), src2(chunk / 2 + 1), src3(chunk * 2);
    auto fill = [&](std::vector<char>& v, int salt) {
      for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = static_cast<char>((i + static_cast<std::size_t>(salt) +
                                  static_cast<std::size_t>(rank)) &
                                 0xff);
    };
    fill(src1, 1);
    fill(src2, 2);
    fill(src3, 3);
    lci::buffers_t out;
    out.list = {{src1.data(), src1.size()},
                {src2.data(), src2.size()},
                {src3.data(), src3.size()}};
    const std::size_t total = out.total_size();

    std::vector<char> dst1(chunk), dst2(chunk / 2 + 1), dst3(chunk * 2);
    lci::buffers_t in;
    in.list = {{dst1.data(), dst1.size()},
               {dst2.data(), dst2.size()},
               {dst3.data(), dst3.size()}};

    lci::comp_t sync = lci::alloc_sync(1);
    lci::status_t rs =
        lci::post_recv_x(peer, nullptr, 0, 9, sync).buffers(in)();
    lci::comp_t ssync = lci::alloc_sync(1);
    lci::status_t ss;
    do {
      ss = lci::post_send_x(peer, nullptr, 0, 9, ssync).buffers(out)();
      lci::progress();
    } while (ss.error.is_retry());
    if (ss.error.is_posted()) lci::sync_wait(ssync, nullptr);
    if (rs.error.is_posted()) lci::sync_wait(sync, &rs);
    EXPECT_EQ(rs.buffer.size, total);

    auto check = [&](const std::vector<char>& got, int salt) {
      for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_EQ(got[i],
                  static_cast<char>((i + static_cast<std::size_t>(salt) +
                                     static_cast<std::size_t>(peer)) &
                                    0xff));
    };
    check(dst1, 1);
    check(dst2, 2);
    check(dst3, 3);
    lci::free_comp(&sync);
    lci::free_comp(&ssync);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, BufferLists,
                         ::testing::Values(16,    // gathers to inject size
                                           600,   // buffer-copy
                                           4000), // rendezvous (total > 4KB)
                         [](const auto& info) {
                           return "chunk" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Library composition: multiple runtimes on one rank stay isolated.
// ---------------------------------------------------------------------------

TEST(Runtimes, TwoRuntimesDoNotInterfere) {
  run2([&](int rank) {
    const int peer = 1 - rank;
    lci::runtime_attr_t attr;
    attr.matching_engine_buckets = 256;
    lci::runtime_t second = lci::alloc_runtime(attr);

    // Same tag on both runtimes; each message must stay within its runtime.
    int out_a = 10 + rank, out_b = 20 + rank;
    int in_a = -1, in_b = -1;
    lci::comp_t sync_a = lci::alloc_sync(1);
    lci::comp_t sync_b = lci::alloc_sync(1, second);
    lci::status_t ra = lci::post_recv(peer, &in_a, sizeof(int), 1, sync_a);
    lci::status_t rb = lci::post_recv_x(peer, &in_b, sizeof(int), 1, sync_b)
                           .runtime(second)();
    lci::status_t sa, sb;
    do {
      sa = lci::post_send(peer, &out_a, sizeof(int), 1, {});
      lci::progress();
    } while (sa.error.is_retry());
    do {
      sb = lci::post_send_x(peer, &out_b, sizeof(int), 1, {}).runtime(second)();
      lci::progress_x().runtime(second)();
    } while (sb.error.is_retry());

    bool done_a = !ra.error.is_posted();
    bool done_b = !rb.error.is_posted();
    while (!done_a || !done_b) {
      lci::progress();
      lci::progress_x().runtime(second)();
      if (!done_a && lci::sync_test(sync_a, nullptr)) done_a = true;
      if (!done_b && lci::sync_test(sync_b, nullptr)) done_b = true;
    }
    EXPECT_EQ(in_a, 10 + peer);
    EXPECT_EQ(in_b, 20 + peer);

    // Quiesce the second runtime on both ranks before freeing it.
    lci::barrier();
    lci::free_comp(&sync_a);
    lci::free_comp(&sync_b);
    lci::free_runtime(&second);
  });
}

// ---------------------------------------------------------------------------
// User-allocated matching engines (engine ids agree across ranks).
// ---------------------------------------------------------------------------

TEST(MatchingEngineArg, SeparateDomains) {
  run2([&](int rank) {
    const int peer = 1 - rank;
    lci::matching_engine_t engine = lci::alloc_matching_engine({}, 128);
    lci::barrier();  // both ranks allocated engine id 2

    // Same tag through the default engine and the custom engine; messages
    // must not cross domains.
    int out_d = 1 + rank, out_c = 100 + rank, in_d = -1, in_c = -1;
    lci::comp_t sync_d = lci::alloc_sync(1);
    lci::comp_t sync_c = lci::alloc_sync(1);
    lci::status_t rd = lci::post_recv(peer, &in_d, sizeof(int), 6, sync_d);
    lci::status_t rc = lci::post_recv_x(peer, &in_c, sizeof(int), 6, sync_c)
                           .matching_engine(engine)();
    lci::status_t s;
    do {
      s = lci::post_send_x(peer, &out_c, sizeof(int), 6, {})
              .matching_engine(engine)();
      lci::progress();
    } while (s.error.is_retry());
    do {
      s = lci::post_send(peer, &out_d, sizeof(int), 6, {});
      lci::progress();
    } while (s.error.is_retry());
    if (rd.error.is_posted()) lci::sync_wait(sync_d, nullptr);
    if (rc.error.is_posted()) lci::sync_wait(sync_c, nullptr);
    EXPECT_EQ(in_d, 1 + peer);
    EXPECT_EQ(in_c, 100 + peer);
    lci::barrier();
    lci::free_comp(&sync_d);
    lci::free_comp(&sync_c);
    lci::free_matching_engine(&engine);
  });
}

}  // namespace
