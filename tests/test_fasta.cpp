// FASTA/FASTQ I/O tests.
#include <gtest/gtest.h>

#include <sstream>

#include "kmer/fasta.hpp"
#include "kmer/kmer.hpp"
#include "kmer/read_generator.hpp"

namespace {

TEST(Fasta, ParsesMultiRecordWrappedSequences) {
  std::istringstream in(
      ">chr1 description text\n"
      "ACGTACGT\n"
      "TTGG\n"
      "; a comment line\n"
      "\n"
      ">chr2\n"
      "CCCC\n");
  const auto records = kmer::read_fasta(in);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "chr1");
  EXPECT_EQ(records[0].sequence, "ACGTACGTTTGG");
  EXPECT_EQ(records[1].name, "chr2");
  EXPECT_EQ(records[1].sequence, "CCCC");
}

TEST(Fasta, HandlesCrlfAndInlineWhitespace) {
  std::istringstream in(">r\r\nAC GT\r\nTT\r\n");
  const auto records = kmer::read_fasta(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].sequence, "ACGTTT");
}

TEST(Fasta, RejectsMalformedInput) {
  std::istringstream headerless("ACGT\n");
  EXPECT_THROW(kmer::read_fasta(headerless), std::runtime_error);
  std::istringstream empty_header(">\nACGT\n");
  EXPECT_THROW(kmer::read_fasta(empty_header), std::runtime_error);
}

TEST(Fasta, WriteReadRoundTrip) {
  std::vector<kmer::sequence_record_t> records = {
      {"a", "ACGTACGTACGTACGTACGT"},
      {"b", std::string(200, 'G')},
      {"c", ""},
  };
  std::ostringstream out;
  kmer::write_fasta(out, records, /*line_width=*/8);
  std::istringstream in(out.str());
  const auto parsed = kmer::read_fasta(in);
  ASSERT_EQ(parsed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(parsed[i].name, records[i].name);
    EXPECT_EQ(parsed[i].sequence, records[i].sequence);
  }
}

TEST(Fastq, ParsesRecords) {
  std::istringstream in(
      "@read1 lane=1\n"
      "ACGT\n"
      "+\n"
      "IIII\n"
      "@read2\n"
      "GG\n"
      "+read2\n"
      "##\n");
  const auto records = kmer::read_fastq(in);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "read1");
  EXPECT_EQ(records[0].sequence, "ACGT");
  EXPECT_EQ(records[1].name, "read2");
  EXPECT_EQ(records[1].sequence, "GG");
}

TEST(Fastq, RejectsMalformedRecords) {
  std::istringstream bad_marker("read1\nACGT\n+\nIIII\n");
  EXPECT_THROW(kmer::read_fastq(bad_marker), std::runtime_error);
  std::istringstream missing_quality("@r\nACGT\n+\n");
  EXPECT_THROW(kmer::read_fastq(missing_quality), std::runtime_error);
  std::istringstream quality_mismatch("@r\nACGT\n+\nII\n");
  EXPECT_THROW(kmer::read_fastq(quality_mismatch), std::runtime_error);
}

TEST(Fasta, SyntheticReadsExportAndReload) {
  // The generator's reads can be exported to FASTA and reloaded with the
  // same k-mer content — the bridge to running the pipeline on real files.
  kmer::genome_params_t params;
  params.genome_length = 5000;
  params.read_length = 60;
  params.coverage = 2;
  kmer::read_generator_t generator(params);
  std::vector<kmer::sequence_record_t> records;
  for (std::size_t i = 0; i < 20; ++i)
    records.push_back({"read" + std::to_string(i), generator.read(i)});
  std::ostringstream out;
  kmer::write_fasta(out, records);
  std::istringstream in(out.str());
  const auto reloaded = kmer::read_fasta(in);
  ASSERT_EQ(reloaded.size(), 20u);
  std::vector<kmer::kmer_t> original, roundtripped;
  for (std::size_t i = 0; i < 20; ++i) {
    kmer::extract_kmers(records[i].sequence, 21, original);
    kmer::extract_kmers(reloaded[i].sequence, 21, roundtripped);
  }
  EXPECT_EQ(original, roundtripped);
}

}  // namespace
