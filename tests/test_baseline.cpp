// Baseline engine tests: simmpi must behave like MPI (ordered wildcard
// matching, request semantics, rendezvous, VCI mapping) and simgex like
// GASNet-EX (AM-only, handler-in-poll, medium size limit).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "baseline/simgex.hpp"
#include "baseline/simmpi.hpp"
#include "core/lci.hpp"

namespace {

TEST(SimMpi, BlockingSendRecv) {
  lci::sim::spawn(2, [](int rank) {
    simmpi::engine_t engine;
    const int peer = 1 - rank;
    int out = 10 + rank, in = -1;
    simmpi::request_t rreq = engine.irecv(&in, sizeof(in), peer, 0);
    engine.send(&out, sizeof(out), peer, 0);
    simmpi::status_t status;
    engine.wait(rreq, &status);
    EXPECT_EQ(in, 10 + peer);
    EXPECT_EQ(status.source, peer);
    EXPECT_EQ(status.tag, 0);
    EXPECT_EQ(status.count, sizeof(int));
  });
}

TEST(SimMpi, WildcardSourceAndTag) {
  lci::sim::spawn(3, [](int rank) {
    simmpi::engine_t engine;
    if (rank == 0) {
      // Two wildcard receives catch one message from each sender.
      int in1 = -1, in2 = -1;
      simmpi::request_t r1 =
          engine.irecv(&in1, sizeof(in1), simmpi::ANY_SOURCE, simmpi::ANY_TAG);
      simmpi::request_t r2 =
          engine.irecv(&in2, sizeof(in2), simmpi::ANY_SOURCE, simmpi::ANY_TAG);
      simmpi::status_t s1, s2;
      engine.wait(r1, &s1);
      engine.wait(r2, &s2);
      EXPECT_NE(s1.source, s2.source);
      EXPECT_EQ(in1 + in2, (100 + 1 + 7) + (100 + 2 + 14));
      EXPECT_EQ(s1.tag + s2.tag, 7 + 14);
    } else {
      int out = 100 + rank + 7 * rank;
      engine.send(&out, sizeof(out), 0, 7 * rank);
      // Keep progressing so rank 0 can finish (sim teardown etiquette).
      for (int i = 0; i < 500; ++i) engine.progress();
    }
  });
}

TEST(SimMpi, OrderedMatchingSameTag) {
  // MPI guarantee: two sends with the same (source, tag) match two receives
  // in posting order.
  lci::sim::spawn(2, [](int rank) {
    simmpi::engine_t engine;
    if (rank == 1) {
      int first = 111, second = 222;
      engine.send(&first, sizeof(first), 0, 9);
      engine.send(&second, sizeof(second), 0, 9);
      for (int i = 0; i < 500; ++i) engine.progress();
    } else {
      int in1 = 0, in2 = 0;
      simmpi::request_t r1 = engine.irecv(&in1, sizeof(in1), 1, 9);
      simmpi::request_t r2 = engine.irecv(&in2, sizeof(in2), 1, 9);
      engine.wait(r1);
      engine.wait(r2);
      EXPECT_EQ(in1, 111);
      EXPECT_EQ(in2, 222);
    }
  });
}

TEST(SimMpi, RendezvousLargeMessages) {
  lci::sim::spawn(2, [](int rank) {
    simmpi::config_t config;
    config.eager_threshold = 1024;
    simmpi::engine_t engine(config);
    const int peer = 1 - rank;
    const std::size_t big = 256 * 1024;  // far beyond eager
    std::vector<char> out(big), in(big, 0);
    std::iota(out.begin(), out.end(), static_cast<char>(rank));
    simmpi::request_t rreq = engine.irecv(in.data(), big, peer, 1);
    simmpi::request_t sreq = engine.isend(out.data(), big, peer, 1);
    engine.wait(sreq);
    simmpi::status_t status;
    engine.wait(rreq, &status);
    EXPECT_EQ(status.count, big);
    std::vector<char> expect(big);
    std::iota(expect.begin(), expect.end(), static_cast<char>(peer));
    EXPECT_EQ(std::memcmp(in.data(), expect.data(), big), 0);
    for (int i = 0; i < 200; ++i) engine.progress();
  });
}

TEST(SimMpi, VciMappingByTag) {
  lci::sim::spawn(2, [](int rank) {
    simmpi::config_t config;
    config.nvci = 4;
    simmpi::engine_t engine(config);
    EXPECT_EQ(engine.nvci(), 4);
    EXPECT_EQ(engine.vci_of_tag(0), 0);
    EXPECT_EQ(engine.vci_of_tag(5), 1);
    EXPECT_EQ(engine.vci_of_tag(7), 3);
    // Traffic on distinct VCIs.
    const int peer = 1 - rank;
    for (int tag = 0; tag < 4; ++tag) {
      int out = tag * 10 + rank, in = -1;
      simmpi::request_t rreq = engine.irecv(&in, sizeof(in), peer, tag);
      engine.send(&out, sizeof(out), peer, tag);
      engine.wait(rreq);
      EXPECT_EQ(in, tag * 10 + peer);
    }
    // ANY_TAG is illegal with multiple VCIs (as in MPICH).
    int dummy;
    EXPECT_THROW(engine.irecv(&dummy, sizeof(dummy), peer, simmpi::ANY_TAG),
                 std::runtime_error);
    for (int i = 0; i < 200; ++i) engine.progress();
  });
}

TEST(SimMpi, TestReportsFalseUntilComplete) {
  // One-directional: rank 1 sends only after rank 0's negative test checks,
  // sequenced through an acknowledgment message.
  lci::sim::spawn(2, [](int rank) {
    simmpi::engine_t engine;
    if (rank == 0) {
      int in = -1;
      simmpi::request_t rreq = engine.irecv(&in, sizeof(in), 1, 3);
      // Nothing sent yet: test fails (and must not consume the request).
      EXPECT_FALSE(engine.test(rreq));
      EXPECT_FALSE(engine.test_nopoll(rreq));
      char ack = 'a';
      engine.send(&ack, 1, 1, 99);
      engine.wait(rreq);
      EXPECT_EQ(in, 5);
    } else {
      char ack = 0;
      engine.recv(&ack, 1, 0, 99);
      int out = 5;
      engine.send(&out, sizeof(out), 0, 3);
    }
    for (int i = 0; i < 200; ++i) engine.progress();
  });
}

TEST(SimGex, AmHandlersRunInPoll) {
  lci::sim::spawn(2, [](int rank) {
    simgex::endpoint_t endpoint;
    const int peer = 1 - rank;
    std::atomic<int> received{0};
    std::atomic<uint32_t> last_arg{0};
    const int handler = endpoint.register_handler(
        [&](int src, const void* data, std::size_t size, uint32_t arg0) {
          EXPECT_EQ(src, peer);
          EXPECT_EQ(size, 5u);
          EXPECT_EQ(std::memcmp(data, "ping", 5), 0);
          last_arg.store(arg0);
          received.fetch_add(1);
        });
    constexpr int count = 20;
    for (int i = 0; i < count; ++i)
      endpoint.am_request_medium(peer, handler, "ping", 5,
                                 static_cast<uint32_t>(i));
    while (received.load() < count) endpoint.poll();
    EXPECT_EQ(last_arg.load(), static_cast<uint32_t>(count - 1));
    // Let the peer drain too.
    for (int i = 0; i < 500; ++i) endpoint.poll();
  });
}

TEST(SimGex, MediumSizeLimitEnforced) {
  lci::sim::spawn(1, [](int) {
    simgex::config_t config;
    config.max_medium = 128;
    simgex::endpoint_t endpoint(config);
    const int handler =
        endpoint.register_handler([](int, const void*, std::size_t,
                                     uint32_t) {});
    std::vector<char> big(256);
    EXPECT_THROW(
        endpoint.am_request_medium(0, handler, big.data(), big.size()),
        std::runtime_error);
  });
}

TEST(SimGex, SharedEndpointManyThreads) {
  lci::sim::spawn(2, [](int rank) {
    simgex::endpoint_t endpoint;
    const int peer = 1 - rank;
    std::atomic<long> received_sum{0};
    std::atomic<int> received{0};
    const int handler = endpoint.register_handler(
        [&](int, const void* data, std::size_t, uint32_t) {
          long v;
          std::memcpy(&v, data, sizeof(v));
          received_sum.fetch_add(v);
          received.fetch_add(1);
        });
    constexpr int threads = 4, per = 500;
    auto binding = lci::sim::current_binding();
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        lci::sim::scoped_binding_t bound(binding);
        for (long i = 1; i <= per; ++i) {
          const long value = t * per + i;
          endpoint.am_request_medium(peer, handler, &value, sizeof(value));
          endpoint.poll();
        }
      });
    }
    for (auto& th : pool) th.join();
    while (received.load() < threads * per) endpoint.poll();
    long expect = 0;
    for (int t = 0; t < threads; ++t)
      for (long i = 1; i <= per; ++i) expect += t * per + i;
    EXPECT_EQ(received_sum.load(), expect);
    for (int i = 0; i < 500; ++i) endpoint.poll();
  });
}

}  // namespace
