// minihpx futures tests: value/exception propagation, continuations (inline
// and scheduled), async, when_all, and integration with the parcelport
// (future-based remote request/response — the HPX programming style).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <thread>

#include "amt/future.hpp"
#include "amt/minihpx.hpp"
#include "core/lci.hpp"

namespace {

// Cross-rank startup rendezvous (see DESIGN.md): no traffic before every
// rank finished creating its devices.
inline void startup_rendezvous(std::atomic<int>& arrived, int n) {
  arrived.fetch_add(1, std::memory_order_acq_rel);
  while (arrived.load(std::memory_order_acquire) < n)
    std::this_thread::yield();
}

TEST(Future, ReadyFutureGet) {
  auto f = minihpx::make_ready_future(42);
  EXPECT_TRUE(f.is_ready());
  EXPECT_EQ(f.get(), 42);
  EXPECT_EQ(f.get(), 42);  // get is repeatable (shared state)
}

TEST(Future, PromiseSetThenGet) {
  minihpx::promise_t<std::string> promise;
  auto f = promise.get_future();
  EXPECT_FALSE(f.is_ready());
  promise.set_value("done");
  EXPECT_TRUE(f.is_ready());
  EXPECT_EQ(f.get(), "done");
}

TEST(Future, ExceptionPropagates) {
  minihpx::promise_t<int> promise;
  auto f = promise.get_future();
  promise.set_exception(
      std::make_exception_ptr(std::runtime_error("boom")));
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(Future, DoubleSetThrows) {
  minihpx::promise_t<int> promise;
  promise.set_value(1);
  EXPECT_THROW(promise.set_value(2), std::logic_error);
}

TEST(Future, ThenChainsInline) {
  auto f = minihpx::make_ready_future(10)
               .then([](int v) { return v * 2; })
               .then([](int v) { return v + 1; });
  EXPECT_EQ(f.get(), 21);
}

TEST(Future, ThenBeforeReadyRunsAtSetValue) {
  minihpx::promise_t<int> promise;
  int observed = -1;
  auto f = promise.get_future().then([&](int v) {
    observed = v;
    return v;
  });
  EXPECT_EQ(observed, -1);
  promise.set_value(7);
  EXPECT_EQ(observed, 7);
  EXPECT_EQ(f.get(), 7);
}

TEST(Future, ThenPropagatesExceptions) {
  minihpx::promise_t<int> promise;
  auto f = promise.get_future().then([](int v) { return v; });
  promise.set_exception(std::make_exception_ptr(std::runtime_error("x")));
  EXPECT_THROW(f.get(), std::runtime_error);
  // A throwing continuation also surfaces downstream.
  auto g = minihpx::make_ready_future(1).then(
      [](int) -> int { throw std::logic_error("inner"); });
  EXPECT_THROW(g.get(), std::logic_error);
}

TEST(Future, AsyncRunsOnScheduler) {
  minihpx::scheduler_t scheduler(2);
  scheduler.start([](int) { return false; });
  auto f = minihpx::async(scheduler, [] { return 6 * 7; });
  scheduler.run_until([&] { return f.is_ready(); });
  EXPECT_EQ(f.get(), 42);
  scheduler.stop();
}

TEST(Future, ScheduledContinuationsRunAsTasks) {
  minihpx::scheduler_t scheduler(2);
  scheduler.start([](int) { return false; });
  std::atomic<int> sum{0};
  std::vector<minihpx::future_t<int>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(minihpx::async(scheduler, [i] { return i; })
                          .then(
                              [&sum](int v) {
                                sum.fetch_add(v);
                                return v;
                              },
                              &scheduler));
  }
  auto all = minihpx::when_all(std::move(futures), &scheduler);
  scheduler.run_until([&] { return all.is_ready(); });
  scheduler.stop();
  EXPECT_EQ(sum.load(), 120);
  const auto values = all.get();
  ASSERT_EQ(values.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(values[static_cast<std::size_t>(i)], i);
}

TEST(Future, WhenAllEmpty) {
  auto all = minihpx::when_all(std::vector<minihpx::future_t<int>>{});
  EXPECT_TRUE(all.is_ready());
  EXPECT_TRUE(all.get().empty());
}

// The HPX style end to end: a remote "square" service where the caller gets
// a future for the response parcel.
TEST(Future, RemoteRequestResponse) {
  std::atomic<int> ready{0};
  lci::sim::spawn(2, [&](int rank) {
    (void)rank;
    minihpx::scheduler_t scheduler(2);
    minihpx::parcelport_config_t config;
    config.ndevices = 2;
    minihpx::parcelport_t port(config, &scheduler);
    startup_rendezvous(ready, 2);

    // Response handler: fulfils the promise stored by request id.
    struct pending_t {
      lci::util::spinlock_t lock;
      std::vector<minihpx::promise_t<int>> promises;
    } pending;
    uint32_t respond_handler = 0;
    const uint32_t response_handler = port.register_handler(
        [&](int, const void* data, std::size_t) {
          int payload[2];  // {request id, result}
          std::memcpy(payload, data, sizeof(payload));
          minihpx::promise_t<int> promise;
          {
            std::lock_guard<lci::util::spinlock_t> guard(pending.lock);
            promise = pending.promises[static_cast<std::size_t>(payload[0])];
          }
          promise.set_value(payload[1]);
        });
    // Request handler: computes and sends the response parcel back.
    respond_handler = port.register_handler(
        [&](int src, const void* data, std::size_t) {
          int payload[2];  // {request id, argument}
          std::memcpy(payload, data, sizeof(payload));
          const int response[2] = {payload[0], payload[1] * payload[1]};
          while (!port.send_parcel(src, response_handler, response,
                                   sizeof(response)))
            port.progress(0);
        });

    auto call_square = [&](int target, int value) {
      minihpx::promise_t<int> promise;
      int id;
      {
        std::lock_guard<lci::util::spinlock_t> guard(pending.lock);
        id = static_cast<int>(pending.promises.size());
        pending.promises.push_back(promise);
      }
      const int request[2] = {id, value};
      while (!port.send_parcel(target, respond_handler, request,
                               sizeof(request)))
        port.progress(0);
      return promise.get_future();
    };

    scheduler.start([&port](int worker) { return port.progress(worker); });
    std::vector<minihpx::future_t<int>> results;
    for (int v = 1; v <= 8; ++v) results.push_back(call_square(1 - rank, v));
    auto all = minihpx::when_all(std::move(results));
    scheduler.run_until([&] { return all.is_ready() && port.quiescent(); });
    const auto squares = all.get();
    for (int v = 1; v <= 8; ++v)
      EXPECT_EQ(squares[static_cast<std::size_t>(v - 1)], v * v);
    // Serve the peer until it is done too.
    std::atomic<bool> stop{false};
    (void)stop;
    for (int i = 0; i < 2000; ++i) port.progress(0);
    scheduler.stop();
  });
}

}  // namespace
