// Fault-injection tests (see docs/INTERNALS.md "Error handling &
// backpressure"):
//  * the simulated fabric's deterministic fault policy at the net layer
//    (seeded decision sequence, max_faults cap, shrunk queue depths, delayed
//    delivery),
//  * the runtime's retry/backlog paths under injected faults — send/recv
//    across all three protocols, active messages, RMA-put-with-signal, the
//    dissemination barrier, and allow_retry=false — every operation must
//    complete exactly once and the backlog counters must balance,
//  * the truncation error paths: oversized eager and rendezvous messages
//    complete both sides with fatal_truncated instead of hanging, throwing,
//    or overrunning buffers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <tuple>
#include <vector>

#include "core/lci.hpp"

namespace {

using lci::net::config_t;
using lci::net::post_result_t;

// ---------------------------------------------------------------------------
// Net layer: the policy itself.
// ---------------------------------------------------------------------------

struct net_fixture_t {
  explicit net_fixture_t(const config_t& config)
      : fabric(lci::net::create_sim_fabric(2, config)),
        ctx0(fabric->create_context(0)),
        ctx1(fabric->create_context(1)),
        dev0(ctx0->create_device()),
        dev1(ctx1->create_device()) {}

  std::shared_ptr<lci::net::fabric_t> fabric;
  std::unique_ptr<lci::net::context_t> ctx0, ctx1;
  std::unique_ptr<lci::net::device_t> dev0, dev1;
};

TEST(FaultNet, SameSeedSameDecisionSequence) {
  config_t config;
  config.fault.retry_rate = 0.5;
  config.fault.seed = 0xfeedbeefull;
  auto run = [&config]() {
    net_fixture_t f(config);
    std::vector<post_result_t> seq;
    const int v = 7;
    for (int i = 0; i < 256; ++i) {
      seq.push_back(f.dev0->post_send(1, &v, sizeof(v), 0, nullptr));
      lci::net::cqe_t cqe;
      (void)f.dev0->poll_cq(&cqe, 1);  // keep the send CQ drained
    }
    return seq;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);  // the policy is a pure function of (seed, coordinates)
  const auto faults = static_cast<std::size_t>(
      std::count_if(a.begin(), a.end(),
                    [](post_result_t r) { return r != post_result_t::ok; }));
  EXPECT_GT(faults, 0u);
  EXPECT_LT(faults, a.size());
  // Both retry flavors appear at lock_fraction 0.5.
  EXPECT_TRUE(std::find(a.begin(), a.end(), post_result_t::retry_lock) !=
              a.end());
  EXPECT_TRUE(std::find(a.begin(), a.end(), post_result_t::retry_full) !=
              a.end());
}

TEST(FaultNet, DifferentSeedsDifferentSequences) {
  auto run = [](uint64_t seed) {
    config_t config;
    config.fault.retry_rate = 0.5;
    config.fault.seed = seed;
    net_fixture_t f(config);
    std::vector<post_result_t> seq;
    const int v = 7;
    for (int i = 0; i < 256; ++i) {
      seq.push_back(f.dev0->post_send(1, &v, sizeof(v), 0, nullptr));
      lci::net::cqe_t cqe;
      (void)f.dev0->poll_cq(&cqe, 1);
    }
    return seq;
  };
  EXPECT_NE(run(1), run(2));
}

TEST(FaultNet, MaxFaultsCapsInjection) {
  config_t config;
  config.fault.retry_rate = 1.0;
  config.fault.max_faults = 5;
  net_fixture_t f(config);
  const int v = 1;
  for (int i = 0; i < 5; ++i)
    EXPECT_NE(f.dev0->post_send(1, &v, sizeof(v), 0, nullptr),
              post_result_t::ok);
  EXPECT_EQ(f.dev0->injected_faults(), 5u);
  // The cap reached: the policy steps aside and the post goes through.
  EXPECT_EQ(f.dev0->post_send(1, &v, sizeof(v), 0, nullptr),
            post_result_t::ok);
  EXPECT_EQ(f.dev0->injected_faults(), 5u);
}

TEST(FaultNet, InjectedFaultsMatchRetryResults) {
  config_t config;
  config.fault.retry_rate = 0.3;
  config.fault.seed = 99;
  net_fixture_t f(config);
  const int v = 2;
  uint64_t retries = 0;
  for (int i = 0; i < 300; ++i) {
    if (f.dev0->post_send(1, &v, sizeof(v), 0, nullptr) != post_result_t::ok)
      ++retries;
    lci::net::cqe_t cqe;
    (void)f.dev0->poll_cq(&cqe, 1);
  }
  // No other backpressure is possible here, so every retry was injected.
  EXPECT_EQ(f.dev0->injected_faults(), retries);
  EXPECT_EQ(f.dev1->injected_faults(), 0u);  // the peer never posted
}

TEST(FaultNet, ShrunkSendDepthBackpressures) {
  config_t config;
  config.fault.send_depth = 2;  // far below the configured cq_depth
  net_fixture_t f(config);
  const int v = 3;
  ASSERT_EQ(f.dev0->post_send(1, &v, sizeof(v), 0, nullptr),
            post_result_t::ok);
  ASSERT_EQ(f.dev0->post_send(1, &v, sizeof(v), 0, nullptr),
            post_result_t::ok);
  // Two unreaped send CQEs: the shrunk queue is full.
  EXPECT_EQ(f.dev0->post_send(1, &v, sizeof(v), 0, nullptr),
            post_result_t::retry_full);
  lci::net::cqe_t cqes[4];
  (void)f.dev0->poll_cq(cqes, 4);  // reap
  EXPECT_EQ(f.dev0->post_send(1, &v, sizeof(v), 0, nullptr),
            post_result_t::ok);
}

TEST(FaultNet, DelayedDeliveryArrivesAfterTheConfiguredPolls) {
  config_t config;
  config.fault.delay_rate = 1.0;
  config.fault.delay_polls = 3;
  net_fixture_t f(config);
  std::vector<char> buffer(256);
  ASSERT_EQ(f.dev1->post_recv(buffer.data(), buffer.size(), nullptr),
            post_result_t::ok);
  const int v = 4;
  ASSERT_EQ(f.dev0->post_send(1, &v, sizeof(v), 0, nullptr),
            post_result_t::ok);
  lci::net::cqe_t cqe;
  int polls = 0;
  while (f.dev1->poll_cq(&cqe, 1).count == 0) {
    ++polls;
    ASSERT_LT(polls, 64) << "delayed message never arrived";
  }
  EXPECT_GE(polls, 3);  // each poll burns one deferred attempt
  EXPECT_EQ(cqe.op, lci::net::op_t::recv);
  EXPECT_EQ(std::memcmp(cqe.buffer, &v, sizeof(v)), 0);
}

// ---------------------------------------------------------------------------
// Runtime layer: full protocol stack under injected faults.
// ---------------------------------------------------------------------------

// Runs fn(rank) on `nranks` ranks over a faulty fabric, then checks the
// invariants every fault-free-completion run must satisfy: no fatal
// completions, balanced backlog counters, and (when faults were possible)
// evidence the policy actually fired.
void run_faulty(int nranks, double rate, uint64_t seed,
                const std::function<void(int)>& fn) {
  config_t config;
  config.fault.retry_rate = rate;
  config.fault.seed = seed;
  lci::sim::spawn(
      nranks,
      [&](int rank) {
        lci::runtime_attr_t attr;
        attr.matching_engine_buckets = 256;
        lci::g_runtime_init(attr);
        fn(rank);
        lci::barrier();
        // Quiesce: every backlogged operation retires before teardown.
        lci::counters_t c = lci::get_counters();
        while (c.backlog_pushed != c.backlog_retired) {
          lci::progress();
          c = lci::get_counters();
        }
        EXPECT_EQ(c.comp_fatal, 0u) << "rank " << rank;
        // Low rates on short tests can legitimately draw zero faults; only
        // assert the policy fired where it is statistically certain.
        if (rate >= 0.25) {
          EXPECT_GT(c.fault_injected, 0u) << "rank " << rank;
        }
        lci::barrier();  // nobody tears down while a peer is still draining
        lci::g_runtime_fina();
      },
      config);
}

// Blocking helpers that tolerate injected retries.
void send_blocking(int peer, void* buf, std::size_t n, lci::tag_t tag) {
  lci::comp_t sync = lci::alloc_sync(1);
  lci::status_t s;
  do {
    s = lci::post_send(peer, buf, n, tag, sync);
    lci::progress();
  } while (s.error.is_retry());
  ASSERT_FALSE(s.error.is_fatal());
  if (s.error.is_posted()) lci::sync_wait(sync, &s);
  ASSERT_TRUE(s.error.is_done());
  lci::free_comp(&sync);
}

lci::status_t recv_blocking(int peer, void* buf, std::size_t n,
                            lci::tag_t tag) {
  lci::comp_t sync = lci::alloc_sync(1);
  lci::status_t s = lci::post_recv(peer, buf, n, tag, sync);
  if (s.error.is_posted()) lci::sync_wait(sync, &s);
  lci::free_comp(&sync);
  return s;
}

class FaultSweep
    : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {
 protected:
  double rate() const { return std::get<0>(GetParam()); }
  uint64_t seed() const { return std::get<1>(GetParam()); }
};

TEST_P(FaultSweep, SendRecvAllProtocolsCompleteExactlyOnce) {
  run_faulty(2, rate(), seed(), [](int rank) {
    const int peer = 1 - rank;
    // Inject, buffer-copy, and rendezvous sizes (eager threshold is 4080).
    const std::size_t sizes[] = {8, 1024, 8192};
    constexpr int rounds = 6;
    lci::tag_t tag = 0;
    for (int round = 0; round < rounds; ++round) {
      for (const std::size_t size : sizes) {
        std::vector<char> out(size), in(size, 0);
        for (std::size_t i = 0; i < size; ++i)
          out[i] = static_cast<char>(
              (i * 13 + static_cast<std::size_t>(rank) +
               static_cast<std::size_t>(round)) & 0xff);
        lci::comp_t rsync = lci::alloc_sync(1);
        lci::status_t rs = lci::post_recv(peer, in.data(), size, tag, rsync);
        send_blocking(peer, out.data(), size, tag);
        if (rs.error.is_posted()) lci::sync_wait(rsync, &rs);
        ASSERT_TRUE(rs.error.is_done());
        ASSERT_EQ(rs.buffer.size, size);
        for (std::size_t i = 0; i < size; ++i)
          ASSERT_EQ(in[i], static_cast<char>(
                               (i * 13 + static_cast<std::size_t>(peer) +
                                static_cast<std::size_t>(round)) & 0xff))
              << "size " << size << " round " << round << " byte " << i;
        lci::free_comp(&rsync);
        ++tag;
      }
    }
  });
}

TEST_P(FaultSweep, ActiveMessagesDeliverExactlyOnce) {
  run_faulty(2, rate(), seed(), [](int rank) {
    const int peer = 1 - rank;
    lci::comp_t rcq = lci::alloc_cq();
    const lci::rcomp_t rcomp = lci::register_rcomp(rcq);
    lci::barrier();

    const std::size_t sizes[] = {8, 1024, 8192};  // eager_am and rts_am
    constexpr int count = 12;
    for (int i = 0; i < count; ++i) {
      const std::size_t size = sizes[static_cast<std::size_t>(i) % 3];
      std::vector<char> out(size, static_cast<char>('a' + i));
      lci::comp_t sync = lci::alloc_sync(1);
      lci::status_t ss;
      do {
        ss = lci::post_am_x(peer, out.data(), size, sync, rcomp)
                 .tag(static_cast<lci::tag_t>(i))();
        lci::progress();
      } while (ss.error.is_retry());
      ASSERT_FALSE(ss.error.is_fatal());
      if (ss.error.is_posted()) lci::sync_wait(sync, nullptr);
      lci::free_comp(&sync);
    }

    int arrived = 0;
    std::vector<int> seen(count, 0);
    while (arrived < count) {
      lci::progress();
      const lci::status_t st = lci::cq_pop(rcq);
      if (!st.error.is_done()) continue;
      const int i = static_cast<int>(st.tag);
      ASSERT_GE(i, 0);
      ASSERT_LT(i, count);
      seen[static_cast<std::size_t>(i)]++;
      EXPECT_EQ(st.buffer.size, sizes[static_cast<std::size_t>(i) % 3]);
      EXPECT_EQ(static_cast<const char*>(st.buffer.base)[0],
                static_cast<char>('a' + i));
      std::free(st.buffer.base);
      ++arrived;
    }
    for (int i = 0; i < count; ++i)
      EXPECT_EQ(seen[static_cast<std::size_t>(i)], 1) << "AM " << i;
    lci::barrier();  // the peer drained its arrivals too
    lci::deregister_rcomp(rcomp);
    lci::free_comp(&rcq);
  });
}

TEST_P(FaultSweep, RmaPutWithSignalUnderFaults) {
  run_faulty(2, rate(), seed(), [](int rank) {
    const int peer = 1 - rank;
    constexpr int count = 8;
    constexpr std::size_t chunk = 1024;
    std::vector<char> window(count * chunk, 0);
    lci::mr_t mr = lci::register_memory(window.data(), window.size());
    lci::comp_t scq = lci::alloc_cq();
    const lci::rcomp_t rcomp = lci::register_rcomp(scq);

    // Exchange the window's rmr and signal rcomp with the peer.
    struct handshake_t {
      uint32_t mr_id;
      lci::rcomp_t rcomp;
    } mine{lci::get_rmr(mr).id, rcomp}, theirs{};
    lci::comp_t hsync = lci::alloc_sync(1);
    lci::status_t hs = lci::post_recv(peer, &theirs, sizeof(theirs), 900,
                                      hsync);
    send_blocking(peer, &mine, sizeof(mine), 900);
    if (hs.error.is_posted()) lci::sync_wait(hsync, &hs);
    ASSERT_TRUE(hs.error.is_done());
    lci::free_comp(&hsync);
    lci::rmr_t remote;
    remote.id = theirs.mr_id;

    std::vector<std::vector<char>> out(count);
    for (int i = 0; i < count; ++i) {
      out[static_cast<std::size_t>(i)].assign(
          chunk, static_cast<char>('A' + rank * 8 + i));
      lci::comp_t sync = lci::alloc_sync(1);
      lci::status_t ss;
      do {
        ss = lci::post_put_x(peer, out[static_cast<std::size_t>(i)].data(),
                             chunk, sync, remote,
                             static_cast<std::size_t>(i) * chunk)
                 .remote_comp(theirs.rcomp)
                 .tag(static_cast<lci::tag_t>(i))();
        lci::progress();
      } while (ss.error.is_retry());
      ASSERT_FALSE(ss.error.is_fatal());
      if (ss.error.is_posted()) lci::sync_wait(sync, nullptr);
      lci::free_comp(&sync);
    }

    // Collect the peer's signals; each names a chunk that must now hold the
    // peer's pattern.
    int signals = 0;
    std::vector<int> seen(count, 0);
    while (signals < count) {
      lci::progress();
      const lci::status_t st = lci::cq_pop(scq);
      if (!st.error.is_done()) continue;
      const int i = static_cast<int>(st.tag);
      ASSERT_GE(i, 0);
      ASSERT_LT(i, count);
      seen[static_cast<std::size_t>(i)]++;
      const char expect = static_cast<char>('A' + peer * 8 + i);
      for (std::size_t b = 0; b < chunk; ++b)
        ASSERT_EQ(window[static_cast<std::size_t>(i) * chunk + b], expect)
            << "chunk " << i << " byte " << b;
      ++signals;
    }
    for (int i = 0; i < count; ++i)
      EXPECT_EQ(seen[static_cast<std::size_t>(i)], 1) << "signal " << i;
    lci::barrier();  // peer's puts into our window are done too
    lci::deregister_rcomp(rcomp);
    lci::free_comp(&scq);
    lci::deregister_memory(&mr);
  });
}

TEST_P(FaultSweep, DisseminationBarrierCompletes) {
  // 4 ranks: two dissemination rounds per barrier, all under injection.
  run_faulty(4, rate(), seed(), [](int) {
    for (int i = 0; i < 10; ++i) lci::barrier();
  });
}

TEST_P(FaultSweep, AllowRetryFalseAbsorbsInjectedRetries) {
  run_faulty(2, rate(), seed(), [this](int rank) {
    const int peer = 1 - rank;
    constexpr int count = 32;
    constexpr std::size_t size = 512;  // buffer-copy path
    std::vector<std::vector<char>> in(count, std::vector<char>(size, 0));
    std::vector<char> out(size, static_cast<char>('A' + rank));
    lci::comp_t rsync = lci::alloc_sync(count);
    lci::comp_t scq = lci::alloc_cq();
    for (int i = 0; i < count; ++i) {
      (void)lci::post_recv_x(peer, in[static_cast<std::size_t>(i)].data(),
                             size, 8, rsync)
          .allow_done(false)();
    }
    int signals_owed = 0, backlogged = 0;
    for (int i = 0; i < count; ++i) {
      const lci::status_t ss =
          lci::post_send_x(peer, out.data(), size, 8, scq).allow_retry(false)();
      ASSERT_FALSE(ss.error.is_retry());
      ASSERT_FALSE(ss.error.is_fatal());
      if (ss.error.code == lci::errorcode_t::posted_backlog) {
        ++backlogged;
        ++signals_owed;
      } else if (ss.error.is_posted()) {
        ++signals_owed;
      }
    }
    lci::sync_wait(rsync, nullptr);
    while (signals_owed > 0) {
      lci::progress();
      if (lci::cq_pop(scq).error.is_done()) --signals_owed;
    }
    for (const auto& buf : in)
      EXPECT_EQ(buf[0], static_cast<char>('A' + peer));
    if (rate() >= 0.25) {
      EXPECT_GT(backlogged, 0);
      const lci::counters_t c = lci::get_counters();
      EXPECT_GT(c.backlog_peak_depth, 0u);
    }
    lci::free_comp(&rsync);
    lci::free_comp(&scq);
  });
}

INSTANTIATE_TEST_SUITE_P(
    RatesAndSeeds, FaultSweep,
    ::testing::Combine(::testing::Values(0.1, 0.25, 0.5),
                       ::testing::Values(1ull, 7ull, 42ull)),
    [](const auto& info) {
      return "rate" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 100)) +
             "pct_seed" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Fault config surfaced through runtime attributes.
// ---------------------------------------------------------------------------

TEST(FaultConfig, SurfacedAndCountedThroughTheRuntime) {
  config_t config;
  config.fault.retry_rate = 1.0;
  config.fault.max_faults = 2;
  config.fault.seed = 77;
  lci::sim::spawn(
      2,
      [&](int rank) {
        lci::runtime_attr_t attr;
        attr.matching_engine_buckets = 256;
        lci::g_runtime_init(attr);
        const lci::net::fault_config_t fc = lci::get_fault_config();
        EXPECT_EQ(fc.retry_rate, 1.0);
        EXPECT_EQ(fc.max_faults, 2u);
        EXPECT_EQ(fc.seed, 77u);
        EXPECT_TRUE(fc.enabled());

        const int peer = 1 - rank;
        int out = rank, in = -1;
        lci::status_t rs = lci::post_recv(peer, &in, sizeof(in), 1, {});
        lci::status_t ss;
        do {
          ss = lci::post_send(peer, &out, sizeof(out), 1, {});
          lci::progress();
        } while (ss.error.is_retry());
        while (rs.error.is_posted() && in == -1) lci::progress();
        EXPECT_EQ(in, peer);

        // rate 1.0 capped at 2: exactly the cap was injected, and
        // reset_counters does not clear the device-owned total.
        lci::counters_t c = lci::get_counters();
        EXPECT_EQ(c.fault_injected, 2u);
        lci::reset_counters();
        c = lci::get_counters();
        EXPECT_EQ(c.fault_injected, 2u);
        EXPECT_EQ(c.send_inject, 0u);
        lci::barrier();
        lci::g_runtime_fina();
      },
      config);
}

TEST(FaultConfig, DisabledByDefault) {
  const lci::net::fault_config_t fc;
  EXPECT_FALSE(fc.enabled());
  config_t config;
  EXPECT_FALSE(config.fault.enabled());
}

// ---------------------------------------------------------------------------
// Error taxonomy.
// ---------------------------------------------------------------------------

TEST(ErrorCategories, FatalIsItsOwnCategory) {
  lci::error_t e;
  for (const auto code :
       {lci::errorcode_t::fatal, lci::errorcode_t::fatal_truncated}) {
    e.code = code;
    EXPECT_TRUE(e.is_fatal());
    EXPECT_FALSE(e.is_retry());  // a fatal error must never be resubmitted
    EXPECT_FALSE(e.is_done());
    EXPECT_FALSE(e.is_posted());
  }
  e.code = lci::errorcode_t::retry_nomem;
  EXPECT_TRUE(e.is_retry());
  EXPECT_FALSE(e.is_fatal());
}

// ---------------------------------------------------------------------------
// Truncation error paths (no injection needed).
// ---------------------------------------------------------------------------

void run2(const std::function<void(int)>& fn) {
  lci::sim::spawn(2, [&](int rank) {
    lci::runtime_attr_t attr;
    attr.matching_engine_buckets = 256;
    lci::g_runtime_init(attr);
    fn(rank);
    lci::barrier();
    lci::g_runtime_fina();
  });
}

TEST(Truncation, EagerRecvBufferTooSmallCompletesWithError) {
  run2([](int rank) {
    if (rank == 1) {
      std::vector<char> out(512, 'x');
      send_blocking(0, out.data(), out.size(), 5);  // sender unaffected
      return;
    }
    char tiny[8] = {0};
    const lci::status_t rs = recv_blocking(1, tiny, sizeof(tiny), 5);
    EXPECT_EQ(rs.error.code, lci::errorcode_t::fatal_truncated);
    EXPECT_TRUE(rs.error.is_fatal());
    EXPECT_EQ(rs.buffer.size, 512u);  // the size that did not fit
    const lci::counters_t c = lci::get_counters();
    EXPECT_GE(c.comp_fatal, 1u);
  });
}

TEST(Truncation, EagerBufferListTooSmallCompletesWithError) {
  run2([](int rank) {
    if (rank == 1) {
      std::vector<char> out(512, 'y');
      send_blocking(0, out.data(), out.size(), 6);
      return;
    }
    char a[4], b[4];
    lci::buffers_t list;
    list.list = {{a, sizeof(a)}, {b, sizeof(b)}};
    lci::comp_t sync = lci::alloc_sync(1);
    lci::status_t rs =
        lci::post_recv_x(1, nullptr, 0, 6, sync).buffers(list)();
    if (rs.error.is_posted()) lci::sync_wait(sync, &rs);
    EXPECT_EQ(rs.error.code, lci::errorcode_t::fatal_truncated);
    lci::free_comp(&sync);
  });
}

TEST(Truncation, RendezvousRefusalFailsBothSidesExactlyOnce) {
  run2([](int rank) {
    constexpr std::size_t send_size = 16384;  // rendezvous
    constexpr std::size_t recv_size = 1024;   // too small: receiver refuses
    if (rank == 1) {
      std::vector<char> out(send_size, 'z');
      lci::comp_t sync = lci::alloc_sync(1);
      lci::status_t ss;
      do {
        ss = lci::post_send(0, out.data(), out.size(), 7, sync);
        lci::progress();
      } while (ss.error.is_retry());
      ASSERT_TRUE(ss.error.is_posted());  // the RTS went out
      // The receiver's NACK must fail this send — not hang it forever.
      lci::sync_wait(sync, &ss);
      EXPECT_EQ(ss.error.code, lci::errorcode_t::fatal_truncated);
      EXPECT_EQ(ss.rank, 0);
      lci::free_comp(&sync);
    } else {
      std::vector<char> in(recv_size, 0);
      const lci::status_t rs = recv_blocking(1, in.data(), in.size(), 7);
      EXPECT_EQ(rs.error.code, lci::errorcode_t::fatal_truncated);
      EXPECT_EQ(rs.buffer.size, send_size);
    }
    const lci::counters_t c = lci::get_counters();
    EXPECT_EQ(c.comp_fatal, 1u);  // exactly once on each side
  });
}

}  // namespace
