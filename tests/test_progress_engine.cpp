// Auto-progress engine tests (core/progress_engine.hpp):
//  * zero-explicit-progress completion: with auto_progress on, traffic
//    completes while user threads only wait on completion objects,
//  * the doorbell race: a sleeping engine thread vs a concurrent post —
//    every message must complete promptly and the sleep/wakeup counters
//    must show the engine actually slept and was rung awake (run under
//    seeded forced-retry fault injection, so retries land while the engine
//    sleeps),
//  * quiescent shutdown: pause/resume around in-flight backlogged
//    operations, then runtime teardown with the engine attached,
//  * mixed mode: explicit progress() from many user threads stays safe and
//    useful while the engine runs,
//  * zero-explicit-progress modes of the LCW shim and the minihpx
//    parcelport.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "amt/minihpx.hpp"
#include "core/lci.hpp"
#include "lcw/lcw.hpp"

namespace {

inline void startup_rendezvous(std::atomic<int>& arrived, int n) {
  arrived.fetch_add(1, std::memory_order_acq_rel);
  while (arrived.load(std::memory_order_acquire) < n)
    std::this_thread::yield();
}

// Waits for a synchronizer WITHOUT calling progress: auto-progress must
// complete the operation on its own.
void wait_no_progress(lci::comp_t sync, lci::status_t* out) {
  while (!lci::sync_test(sync, out))
    std::this_thread::sleep_for(std::chrono::microseconds(50));
}

// Deadline-bounded wait for a counter to become nonzero. Robust under
// machine load: the engine gets there eventually, not on a fixed schedule.
template <typename F>
uint64_t wait_nonzero(F getter) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (getter() == 0 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  return getter();
}

// Engine-friendly attr: small spin/backoff phases so the engine reaches the
// sleep phase quickly in tests.
lci::runtime_attr_t engine_attr(std::size_t nthreads = 1) {
  lci::runtime_attr_t attr;
  attr.matching_engine_buckets = 1024;
  attr.auto_progress_default = true;
  attr.nprogress_threads = nthreads;
  attr.progress_spin_polls = 64;
  attr.progress_backoff_polls = 16;
  return attr;
}

TEST(AutoProgress, ZeroExplicitProgressPingPong) {
  lci::sim::spawn(2, [](int rank) {
    lci::g_runtime_init(engine_attr());
    const int peer = 1 - rank;
    // Eager and rendezvous sizes: both protocols must complete end-to-end
    // with nobody calling progress().
    for (const std::size_t size : {64ul, 1ul << 20}) {
      std::vector<char> buf(size, static_cast<char>(rank + 1));
      lci::comp_t sync = lci::alloc_sync(1);
      lci::status_t status;
      if (rank == 0) {
        do {
          status = lci::post_send(peer, buf.data(), size, 5, sync);
        } while (status.error.is_retry());
        if (status.error.is_posted()) wait_no_progress(sync, &status);
        EXPECT_TRUE(status.error.is_done());
      } else {
        do {
          status = lci::post_recv(peer, buf.data(), size, 5, sync);
        } while (status.error.is_retry());
        if (status.error.is_posted()) wait_no_progress(sync, &status);
        EXPECT_TRUE(status.error.is_done());
        EXPECT_EQ(buf[size / 2], 1);
      }
      lci::free_comp(&sync);
    }
    const lci::counters_t c = lci::get_counters();
    EXPECT_GT(c.progress_thread_polls, 0u);
    EXPECT_GT(c.progress_thread_advances, 0u);
    lci::g_runtime_fina();
  });
}

// The doorbell race: rank 1's engine thread is asleep (long bounded sleep,
// no traffic) when rank 0 posts; the wire push must ring rank 1's doorbell
// and the sleeper must wake and complete the message. Forced retries (seeded
// fault injection) run concurrently so the retry/backlog machinery is
// exercised while the engine sleeps.
TEST(AutoProgress, DoorbellWakesSleepingEngine) {
  lci::net::config_t fabric;
  fabric.fault.retry_rate = 0.3;
  fabric.fault.delay_rate = 0.25;
  fabric.fault.seed = 0xd00bbe11ull;
  std::atomic<int> ready{0};
  lci::sim::spawn(
      2,
      [&](int rank) {
        lci::runtime_attr_t attr = engine_attr();
        attr.auto_progress_default = false;  // default devices stay manual
        attr.progress_sleep_us = 100000;     // sticky sleeps: rings must wake
        lci::g_runtime_init(attr);
        // Symmetric second device (net index 1 on both ranks, so traffic on
        // it routes device-1 to device-1); only the receiver's is engine-run.
        lci::device_t dev = lci::alloc_device_x()
                                .auto_progress(rank == 1)();
        startup_rendezvous(ready, 2);
        const int iterations = 30;
        if (rank == 0) {
          char msg[64];
          for (int i = 0; i < iterations; ++i) {
            std::memset(msg, i & 0x7f, sizeof(msg));
            lci::comp_t sync = lci::alloc_sync(1);
            lci::status_t status;
            do {
              status = lci::post_send_x(1, msg, sizeof(msg),
                                        static_cast<lci::tag_t>(i), sync)
                           .device(dev)();
              if (status.error.is_retry()) lci::progress_x().device(dev)();
            } while (status.error.is_retry());
            if (status.error.is_posted()) {
              while (!lci::sync_test(sync, &status))
                lci::progress_x().device(dev)();
            }
            EXPECT_TRUE(status.error.is_done());
            lci::free_comp(&sync);
            // Give the receiver's engine time to fall asleep between
            // messages — each send then races a genuinely sleeping engine.
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          }
          // Faults are injected on the posting side; the sender's retry
          // loop above must actually have exercised them.
          EXPECT_GT(lci::get_counters().fault_injected, 0u);
        } else {
          for (int i = 0; i < iterations; ++i) {
            char buf[64] = {};
            lci::comp_t sync = lci::alloc_sync(1);
            lci::status_t status;
            do {
              status = lci::post_recv_x(0, buf, sizeof(buf),
                                        static_cast<lci::tag_t>(i), sync)
                           .device(dev)();
            } while (status.error.is_retry());
            if (status.error.is_posted()) wait_no_progress(sync, &status);
            EXPECT_TRUE(status.error.is_done());
            EXPECT_EQ(buf[0], static_cast<char>(i & 0x7f));
            lci::free_comp(&sync);
          }
          const lci::device_attr_t dattr = lci::get_attr(dev);
          EXPECT_TRUE(dattr.auto_progress);
          EXPECT_GT(dattr.doorbell_rings, 0u);
        }
        // Phase B: wait (deadline-bounded) until rank 1's engine has actually
        // committed a sleep — under machine load it reaches the sleep phase
        // eventually, not on a fixed schedule.
        if (rank == 1)
          EXPECT_GT(wait_nonzero(
                        [] { return lci::get_counters().progress_sleeps; }),
                    0u);
        startup_rendezvous(ready, 4);
        // Phase C: each wake message races a sleeping engine. Several spaced
        // attempts make the wakeup observation robust even if a ring lands in
        // the engine's brief inter-sleep service window.
        constexpr int wake_rounds = 10;
        if (rank == 0) {
          char msg[8] = {};
          for (int i = 0; i < wake_rounds; ++i) {
            lci::comp_t sync = lci::alloc_sync(1);
            lci::status_t status;
            do {
              status = lci::post_send_x(1, msg, sizeof(msg),
                                        static_cast<lci::tag_t>(1000 + i),
                                        sync)
                           .device(dev)();
              if (status.error.is_retry()) lci::progress_x().device(dev)();
            } while (status.error.is_retry());
            if (status.error.is_posted()) {
              while (!lci::sync_test(sync, &status))
                lci::progress_x().device(dev)();
            }
            lci::free_comp(&sync);
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
          }
        } else {
          for (int i = 0; i < wake_rounds; ++i) {
            char buf[8];
            lci::comp_t sync = lci::alloc_sync(1);
            lci::status_t status;
            do {
              status = lci::post_recv_x(0, buf, sizeof(buf),
                                        static_cast<lci::tag_t>(1000 + i),
                                        sync)
                           .device(dev)();
            } while (status.error.is_retry());
            if (status.error.is_posted()) wait_no_progress(sync, &status);
            EXPECT_TRUE(status.error.is_done());
            lci::free_comp(&sync);
          }
          EXPECT_GT(wait_nonzero(
                        [] { return lci::get_counters().progress_wakeups; }),
                    0u);
        }
        startup_rendezvous(ready, 6);
        lci::free_device(&dev);
        lci::g_runtime_fina();
      },
      fabric);
}

// Quiescence: pause/resume with in-flight backlogged operations (forced
// retries + allow_retry(false) push sends onto the device backlog), then a
// clean teardown with the engine still attached. Every completion must be
// delivered exactly once.
TEST(AutoProgress, QuiescentShutdownWithBacklog) {
  lci::net::config_t fabric;
  fabric.fault.retry_rate = 0.8;
  fabric.fault.max_faults = 64;  // forward progress guaranteed
  fabric.fault.seed = 0xbacc1066ull;
  lci::sim::spawn(
      2,
      [](int rank) {
        lci::g_runtime_init(engine_attr());
        const int peer = 1 - rank;
        constexpr int count = 16;
        std::vector<lci::comp_t> syncs;
        std::vector<std::vector<char>> bufs;
        for (int i = 0; i < count; ++i) {
          syncs.push_back(lci::alloc_sync(1));
          bufs.emplace_back(256, static_cast<char>(rank));
          lci::status_t status;
          if (rank == 0) {
            // allow_retry(false): a rejected post goes to the backlog — the
            // engine thread must retire it (and ring itself awake to do so).
            status = lci::post_send_x(peer, bufs.back().data(), 256,
                                      static_cast<lci::tag_t>(i), syncs.back())
                         .allow_retry(false)();
            EXPECT_FALSE(status.error.is_retry());
          } else {
            do {
              status = lci::post_recv_x(peer, bufs.back().data(), 256,
                                        static_cast<lci::tag_t>(i),
                                        syncs.back())();
            } while (status.error.is_retry());
          }
          if (status.error.is_done()) {
            // Completed inline: keep the slot; sync_test below still passes
            // because done posts do not signal. Mark by freeing here.
            lci::free_comp(&syncs.back());
            syncs.back().p = nullptr;
          }
        }
        // Pause mid-flight: must return (engine parked), and ops must not be
        // lost across the pause.
        lci::progress_pause();
        lci::progress_resume();
        for (int i = 0; i < count; ++i) {
          if (syncs[static_cast<std::size_t>(i)].p == nullptr) continue;
          lci::status_t status;
          wait_no_progress(syncs[static_cast<std::size_t>(i)], &status);
          EXPECT_TRUE(status.error.is_done())
              << "rank " << rank << " op " << i << " code "
              << static_cast<int>(status.error.code);
          lci::free_comp(&syncs[static_cast<std::size_t>(i)]);
        }
        lci::barrier();
        // Teardown with the engine attached exercises the quiescent-shutdown
        // ordering (device detach -> engine stop -> runtime free).
        lci::g_runtime_fina();
      },
      fabric);
}

// Mixed mode: explicit progress() from several user threads concurrently
// with the engine. Both must stay safe and the traffic must complete.
TEST(AutoProgress, MixedModeExplicitProgress) {
  lci::sim::spawn(2, [](int rank) {
    lci::g_runtime_init(engine_attr(2));
    const int peer = 1 - rank;
    constexpr int nthreads = 4;
    constexpr int per_thread = 25;
    auto binding = lci::sim::current_binding();
    std::vector<std::thread> threads;
    for (int t = 0; t < nthreads; ++t) {
      threads.emplace_back([&, t] {
        lci::sim::scoped_binding_t bound(binding);
        for (int i = 0; i < per_thread; ++i) {
          const auto tag =
              static_cast<lci::tag_t>(t * per_thread + i);
          char buf[32];
          std::memset(buf, rank, sizeof(buf));
          lci::comp_t sync = lci::alloc_sync(1);
          lci::status_t status;
          do {
            status = rank == 0
                         ? lci::post_send(peer, buf, sizeof(buf), tag, sync)
                         : lci::post_recv(peer, buf, sizeof(buf), tag, sync);
            lci::progress();  // explicit progress, racing the engine
          } while (status.error.is_retry());
          if (status.error.is_posted()) {
            while (!lci::sync_test(sync, &status)) lci::progress();
          }
          EXPECT_TRUE(status.error.is_done());
          lci::free_comp(&sync);
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_GT(lci::get_counters().progress_calls, 0u);  // user threads ran
    // The engine must poll too — but on an oversubscribed host the engine
    // threads may not have been scheduled even once by the time the (busy-
    // spinning) workers finish, so give the scheduler a bounded grace
    // period instead of sampling the counter exactly at join.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (lci::get_counters().progress_thread_polls == 0 &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::yield();
    EXPECT_GT(lci::get_counters().progress_thread_polls, 0u);
    lci::barrier();
    lci::g_runtime_fina();
  });
}

// pause() freezes the engine (no polls while parked; nested pauses stack);
// resume() restarts it.
TEST(AutoProgress, PauseStopsPollingResumeRestarts) {
  lci::sim::spawn(1, [](int) {
    lci::g_runtime_init(engine_attr());
    auto polls = [] { return lci::get_counters().progress_thread_polls; };
    lci::progress_pause();
    lci::progress_pause();  // nested
    const uint64_t frozen = polls();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(polls(), frozen);
    lci::progress_resume();  // still paused (depth 1)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(polls(), frozen);
    lci::progress_resume();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (polls() == frozen && std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_GT(polls(), frozen);
    lci::g_runtime_fina();
  });
}

// LCW: nprogress_threads > 0 turns the lci backend into auto-progress mode;
// an AM ping-pong completes with zero do_progress() calls.
TEST(AutoProgress, LcwZeroExplicitProgress) {
  std::atomic<int> ready{0};
  lci::sim::spawn(2, [&](int rank) {
    lcw::config_t config;
    config.ndevices = 1;
    config.max_am_size = 128;
    config.nprogress_threads = 1;
    auto ctx = lcw::alloc_context(lcw::backend_t::lci, config);
    EXPECT_TRUE(ctx->auto_progress());
    startup_rendezvous(ready, 2);
    lcw::device_t* dev = ctx->device(0);
    const int peer = 1 - rank;
    constexpr int count = 32;
    int payload = rank;
    int sent = 0, delivered = 0, send_comps = 0, posted = 0;
    while (sent < count || delivered < count || send_comps < posted) {
      if (sent < count) {
        const auto r = dev->post_am(peer, &payload, sizeof(payload), 0);
        if (r != lcw::post_t::retry) {
          ++sent;
          if (r == lcw::post_t::posted) ++posted;
        }
      }
      lcw::request_t req;
      while (dev->poll_recv(&req)) {
        EXPECT_EQ(req.size, sizeof(int));
        std::free(req.buffer);
        ++delivered;
      }
      while (dev->poll_send(&req)) ++send_comps;
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
    EXPECT_EQ(delivered, count);
    startup_rendezvous(ready, 4);
  });
}

// minihpx: with parcelport nprogress_threads > 0, scheduler workers never
// call do_progress (progress_device only drains completion queues) and the
// round trip still completes.
TEST(AutoProgress, MinihpxZeroExplicitProgress) {
  std::atomic<int> ready{0};
  lci::sim::spawn(2, [&](int rank) {
    minihpx::scheduler_t scheduler(2);
    minihpx::parcelport_config_t config;
    config.backend = lcw::backend_t::lci;
    config.ndevices = 2;
    config.nprogress_threads = 1;
    minihpx::parcelport_t port(config, &scheduler);
    startup_rendezvous(ready, 2);
    std::atomic<int> received{0};
    const uint32_t handler = port.register_handler(
        [&](int src, const void* data, std::size_t size) {
          EXPECT_EQ(src, 1 - rank);
          EXPECT_EQ(size, sizeof(int));
          int value;
          std::memcpy(&value, data, sizeof(value));
          EXPECT_EQ(value, 1 - rank);
          received.fetch_add(1);
        });
    scheduler.start([&port](int worker) { return port.progress(worker); });
    constexpr int count = 40;
    for (int i = 0; i < count; ++i) {
      while (!port.send_parcel(1 - rank, handler, &rank, sizeof(rank)))
        port.progress(0);
    }
    scheduler.run_until(
        [&] { return received.load() == count && port.quiescent(); });
    scheduler.stop();
    EXPECT_EQ(received.load(), count);
    startup_rendezvous(ready, 4);
  });
}

}  // namespace
