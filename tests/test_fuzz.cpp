// Randomized protocol fuzzing: a reproducible stream of mixed operations —
// sends/receives of random sizes (crossing all three protocols), active
// messages, puts and gets at random offsets — executed against an oracle
// that predicts every byte. Seeds are fixed so failures replay.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <deque>
#include <map>
#include <vector>

#include "core/lci.hpp"
#include "util/rng.hpp"

namespace {

constexpr std::size_t max_msg = 20000;  // spans inject/bcopy/rendezvous

// Deterministic payload for (seed, stream, index, size).
void fill_payload(std::vector<char>& buf, uint64_t key) {
  lci::util::xoshiro256_t rng(key);
  for (auto& b : buf) b = static_cast<char>(rng());
}

// (seed, aggregation, trace): every schedule replays with eager coalescing
// off and on, and with operation tracing off and on. Aggregation must be
// invisible to the oracle — per-key FIFO holds because the matching-order
// flush keeps coalesced and bypass traffic to a peer in posted order on the
// wire. Tracing must be invisible full stop: it observes the same races the
// fuzz provokes (cancellations racing flushes, seeded retries), so the
// traced replays double as a span-lifecycle stress test, and a small ring
// keeps wraparound in play.
class Fuzz
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool, bool>> {};

// Mixed tagged traffic: each rank issues a random schedule of sends and
// receives; tags are drawn from a small space so multiple messages queue on
// the same key (exercising per-key FIFO and the unexpected path). The oracle
// is per-(direction, tag) sequence numbers: per-key delivery is FIFO, so the
// i-th receive on a tag must carry the i-th payload sent on it. Sizes span
// inject/bcopy/rendezvous, so with aggregation on the schedule constantly
// alternates coalesced messages with ordering-flush bypass traffic; the
// fabric injects seeded retries and delivery delays on top.
TEST_P(Fuzz, TaggedTrafficMatchesOracle) {
  const auto [seed, aggregation, trace] = GetParam();
  lci::net::config_t fabric;
  fabric.fault.retry_rate = 0.05;
  fabric.fault.delay_rate = 0.05;
  fabric.fault.seed = seed ^ 0xfa017ull;
  lci::sim::spawn(2, [&](int rank) {
    lci::runtime_attr_t attr;
    attr.matching_engine_buckets = 512;
    attr.allow_aggregation = aggregation;
    // Each rank posts from one thread; without this the single-poster bypass
    // would turn the "_agg" variants into plain eager replays.
    attr.aggregation_bypass_single_poster = false;
    attr.trace = trace;
    attr.trace_ring_size = 512;  // small: wraparound under load
    lci::g_runtime_init(attr);
    const int peer = 1 - rank;
    lci::util::xoshiro256_t rng(seed ^ (0x1234u * (rank + 1)));
    lci::util::xoshiro256_t peer_rng(seed ^ (0x1234u * (peer + 1)));

    constexpr int ops = 120;
    constexpr int ntags = 4;

    // Precompute both schedules (same derivation both sides => agreement).
    struct op_t {
      lci::tag_t tag;
      std::size_t size;
    };
    auto make_schedule = [&](lci::util::xoshiro256_t& r) {
      std::vector<op_t> schedule;
      for (int i = 0; i < ops; ++i) {
        schedule.push_back({static_cast<lci::tag_t>(r.below(ntags)),
                            1 + static_cast<std::size_t>(r.below(max_msg))});
      }
      return schedule;
    };
    const auto my_sends = make_schedule(rng);
    const auto peer_sends = make_schedule(peer_rng);

    // Payload key for the k-th message on tag t from rank r.
    auto payload_key = [&](int from, lci::tag_t tag, int k) {
      return seed ^ (static_cast<uint64_t>(from + 1) << 40) ^
             (static_cast<uint64_t>(tag) << 20) ^ static_cast<uint64_t>(k);
    };

    // Post all receives for the peer's schedule (in schedule order per tag,
    // which matches per-key FIFO).
    struct recv_slot_t {
      std::vector<char> buffer;
      lci::tag_t tag;
      int k;
    };
    std::deque<recv_slot_t> slots;
    std::map<lci::tag_t, int> recv_seq;
    lci::comp_t rsync = lci::alloc_sync(ops);
    for (const auto& op : peer_sends) {
      slots.push_back({std::vector<char>(op.size), op.tag,
                       recv_seq[op.tag]++});
      (void)lci::post_recv_x(peer, slots.back().buffer.data(), op.size,
                             op.tag, rsync)
          .allow_done(false)();
    }

    // Cancellations mixed into the op stream: receives on a tag nobody
    // sends to (ntags) are posted and canceled at random points between the
    // real sends. Every one must complete exactly once with fatal_canceled
    // through its own queue, and none may disturb the oracle traffic.
    lci::comp_t ccq = lci::alloc_cq();
    std::deque<std::array<char, 32>> cancel_bufs;
    std::vector<lci::op_t> cancelable;
    int extra = 0;
    const uint64_t canceled_before = lci::get_counters().ops_canceled;
    auto post_cancelable = [&] {
      cancel_bufs.emplace_back();
      lci::op_t op;
      lci::status_t rs;
      do {
        rs = lci::post_recv_x(peer, cancel_bufs.back().data(),
                              cancel_bufs.back().size(),
                              static_cast<lci::tag_t>(ntags), ccq)
                 .op_handle(&op)
                 .allow_done(false)();
        if (rs.error.is_retry()) lci::progress();
      } while (rs.error.is_retry());
      ASSERT_TRUE(rs.error.is_posted());
      cancelable.push_back(op);
      ++extra;
    };

    // Issue my sends with a window of outstanding completions.
    lci::comp_t scq = lci::alloc_cq();
    std::map<lci::tag_t, int> send_seq;
    int owed = 0;
    std::vector<std::vector<char>> live_buffers;
    for (const auto& op : my_sends) {
      if (rng.below(4) == 0) post_cancelable();
      if (rng.below(4) == 0 && !cancelable.empty()) {
        const std::size_t pick = rng.below(cancelable.size());
        EXPECT_TRUE(lci::cancel(cancelable[pick]));
        cancelable[pick] = cancelable.back();
        cancelable.pop_back();
      }
      std::vector<char> payload(op.size);
      fill_payload(payload, payload_key(rank, op.tag, send_seq[op.tag]++));
      lci::status_t ss;
      do {
        ss = lci::post_send_x(peer, payload.data(), op.size, op.tag, scq)();
        lci::progress();
      } while (ss.error.is_retry());
      if (ss.error.is_posted()) {
        ++owed;
        live_buffers.push_back(std::move(payload));  // keep until completion
      }
    }
    // Drain all send completions and receive completions.
    while (owed > 0) {
      lci::progress();
      if (lci::cq_pop(scq).error.is_done()) --owed;
    }
    lci::sync_wait(rsync, nullptr);

    // Cancel the leftovers; each must still be parked (nothing matches the
    // reserved tag), and every cancellation surfaces exactly once.
    for (const auto& op : cancelable) EXPECT_TRUE(lci::cancel(op));
    int fatal_pops = 0;
    while (fatal_pops < extra) {
      const lci::status_t st = lci::cq_pop(ccq);
      if (st.error.is_retry()) {
        lci::progress();
        continue;
      }
      ASSERT_EQ(st.error.code, lci::errorcode_t::fatal_canceled);
      ++fatal_pops;
    }
    EXPECT_TRUE(lci::cq_pop(ccq).error.is_retry());
    EXPECT_EQ(lci::get_counters().ops_canceled - canceled_before,
              static_cast<uint64_t>(extra));

    // Verify every received payload against the oracle.
    for (const auto& slot : slots) {
      std::vector<char> expect(slot.buffer.size());
      fill_payload(expect, payload_key(peer, slot.tag, slot.k));
      ASSERT_EQ(std::memcmp(slot.buffer.data(), expect.data(), expect.size()),
                0)
          << "tag " << slot.tag << " seq " << slot.k << " size "
          << expect.size();
    }
    lci::barrier();
    lci::free_comp(&ccq);
    lci::free_comp(&rsync);
    lci::free_comp(&scq);
    lci::g_runtime_fina();
  }, fabric);
}

// Random RMA traffic: puts at random offsets into the peer's window with a
// shadow copy maintained locally; a final bulk get must observe exactly the
// shadow state.
TEST_P(Fuzz, RmaPutsMatchShadow) {
  const auto [seed, aggregation, trace] = GetParam();
  lci::sim::spawn(2, [&](int rank) {
    lci::runtime_attr_t attr;
    attr.matching_engine_buckets = 512;
    attr.allow_aggregation = aggregation;
    attr.aggregation_bypass_single_poster = false;
    attr.trace = trace;
    attr.trace_ring_size = 512;
    lci::g_runtime_init(attr);
    const int peer = 1 - rank;
    constexpr std::size_t window_size = 8192;
    std::vector<char> window(window_size, 0);
    lci::mr_t mr = lci::register_memory(window.data(), window.size());
    lci::rmr_t my_rmr = lci::get_rmr(mr);
    std::vector<lci::rmr_t> rmrs(2);
    lci::allgather(&my_rmr, rmrs.data(), sizeof(lci::rmr_t));
    lci::barrier();

    // Each rank writes only to its own half of the peer's window, so the
    // shadow is exact without cross-rank ordering assumptions.
    const std::size_t half = window_size / 2;
    const std::size_t base = static_cast<std::size_t>(rank) * half;
    std::vector<char> shadow(half, 0);
    lci::util::xoshiro256_t rng(seed ^ (0x9999u * (rank + 1)));
    lci::comp_t sync = lci::alloc_sync(1);
    for (int i = 0; i < 60; ++i) {
      const std::size_t size = 1 + rng.below(512);
      const std::size_t offset = rng.below(half - size);
      std::vector<char> data(size);
      fill_payload(data, seed ^ (static_cast<uint64_t>(i) << 8) ^
                             static_cast<uint64_t>(rank));
      std::memcpy(shadow.data() + offset, data.data(), size);
      lci::status_t ss;
      do {
        ss = lci::post_put(peer, data.data(), size, sync,
                           rmrs[static_cast<std::size_t>(peer)],
                           base + offset);
        lci::progress();
      } while (ss.error.is_retry());
      if (ss.error.is_posted()) lci::sync_wait(sync, nullptr);
    }
    lci::barrier();  // all writes placed

    // Read back the half I wrote and compare with the shadow.
    std::vector<char> readback(half);
    lci::status_t gs;
    do {
      gs = lci::post_get(peer, readback.data(), half, sync,
                         rmrs[static_cast<std::size_t>(peer)], base);
      lci::progress();
    } while (gs.error.is_retry());
    if (gs.error.is_posted()) lci::sync_wait(sync, nullptr);
    EXPECT_EQ(std::memcmp(readback.data(), shadow.data(), half), 0);

    lci::barrier();
    lci::free_comp(&sync);
    lci::deregister_memory(&mr);
    lci::g_runtime_fina();
  });
}

// Naming: the "_agg" suffix is load-bearing — CI's failure-injection job
// selects the aggregation variants with --gtest_filter='*_agg*', and the
// trace suffix appends after it so the filter still matches.
INSTANTIATE_TEST_SUITE_P(
    Seeds, Fuzz,
    ::testing::Combine(::testing::Values(1ull, 0xdeadbeefull, 42ull,
                                         0xabcdef0123ull),
                       ::testing::Bool(), ::testing::Bool()),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_agg" : "") +
             (std::get<2>(info.param) ? "_trace" : "");
    });

}  // namespace
