// End-to-end smoke tests of the LCI core: every communication paradigm of
// paper Table 1 exercised across simulated ranks.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "core/lci.hpp"

namespace {

// Runs fn on `n` simulated ranks with an initialized g_runtime.
void run_ranks(int n, const std::function<void(int)>& fn,
               lci::runtime_attr_t attr = {}) {
  // Small matching engine: smoke tests do not need the paper's 64Ki buckets.
  attr.matching_engine_buckets = 1024;
  lci::sim::spawn(n, [&](int rank) {
    lci::g_runtime_init(attr);
    fn(rank);
    lci::g_runtime_fina();
  });
}

TEST(Smoke, InitFina) {
  run_ranks(2, [](int rank) {
    EXPECT_EQ(lci::get_rank_me(), rank);
    EXPECT_EQ(lci::get_rank_n(), 2);
  });
}

TEST(Smoke, EagerSendRecv) {
  run_ranks(2, [](int rank) {
    const int peer = 1 - rank;
    if (rank == 0) {
      char msg[32] = "hello from rank 0";
      lci::status_t status;
      do {
        status = lci::post_send(peer, msg, sizeof(msg), /*tag=*/7, {});
        lci::progress();
      } while (status.error.is_retry());
    } else {
      char buf[32] = {};
      lci::comp_t sync = lci::alloc_sync(1);
      lci::status_t status = lci::post_recv(0, buf, sizeof(buf), 7, sync);
      if (status.error.is_posted()) lci::sync_wait(sync, &status);
      EXPECT_TRUE(status.error.is_done());
      EXPECT_STREQ(buf, "hello from rank 0");
      EXPECT_EQ(status.rank, 0);
      EXPECT_EQ(status.tag, 7u);
      lci::free_comp(&sync);
    }
    lci::barrier();
  });
}

TEST(Smoke, RendezvousSendRecv) {
  run_ranks(2, [](int rank) {
    const std::size_t big = 1 << 20;  // 1 MiB, far beyond the eager threshold
    if (rank == 0) {
      std::vector<char> msg(big);
      std::iota(msg.begin(), msg.end(), 0);
      lci::comp_t sync = lci::alloc_sync(1);
      lci::status_t status;
      do {
        status = lci::post_send(1, msg.data(), big, 9, sync);
        lci::progress();
      } while (status.error.is_retry());
      if (status.error.is_posted()) lci::sync_wait(sync, &status);
      lci::free_comp(&sync);
    } else {
      std::vector<char> buf(big, 0);
      lci::comp_t sync = lci::alloc_sync(1);
      lci::status_t status = lci::post_recv(0, buf.data(), big, 9, sync);
      if (status.error.is_posted()) lci::sync_wait(sync, &status);
      EXPECT_TRUE(status.error.is_done());
      EXPECT_EQ(status.buffer.size, big);
      std::vector<char> expect(big);
      std::iota(expect.begin(), expect.end(), 0);
      EXPECT_EQ(std::memcmp(buf.data(), expect.data(), big), 0);
      lci::free_comp(&sync);
    }
    lci::barrier();
  });
}

TEST(Smoke, ActiveMessage) {
  run_ranks(2, [](int rank) {
    lci::comp_t rcq = lci::alloc_cq();
    const lci::rcomp_t rcomp = lci::register_rcomp(rcq);
    lci::barrier();  // both rcomps registered
    const int peer = 1 - rank;
    char msg[64];
    snprintf(msg, sizeof(msg), "am from %d", rank);
    lci::status_t status;
    do {
      status = lci::post_am_x(peer, msg, sizeof(msg), {}, rcomp).tag(3)();
      lci::progress();
    } while (status.error.is_retry());

    lci::status_t incoming;
    do {
      lci::progress();
      incoming = lci::cq_pop(rcq);
    } while (!incoming.error.is_done());
    char expect[64];
    snprintf(expect, sizeof(expect), "am from %d", peer);
    EXPECT_STREQ(static_cast<char*>(incoming.buffer.base), expect);
    EXPECT_EQ(incoming.rank, peer);
    EXPECT_EQ(incoming.tag, 3u);
    std::free(incoming.buffer.base);

    lci::barrier();
    lci::deregister_rcomp(rcomp);
    lci::free_comp(&rcq);
  });
}

TEST(Smoke, PutGet) {
  run_ranks(2, [](int rank) {
    // Each rank exposes a registered window; peers put into [0,64) and get
    // from [64,128).
    std::vector<char> window(128, static_cast<char>('A' + rank));
    lci::mr_t mr = lci::register_memory(window.data(), window.size());
    lci::rmr_t my_rmr = lci::get_rmr(mr);

    // Exchange rmrs via send/recv (out-of-band channel in a real system).
    lci::rmr_t peer_rmr;
    const int peer = 1 - rank;
    lci::comp_t sync = lci::alloc_sync(1);
    lci::status_t rstatus =
        lci::post_recv(peer, &peer_rmr, sizeof(peer_rmr), 100, sync);
    lci::status_t sstatus;
    do {
      sstatus = lci::post_send(peer, &my_rmr, sizeof(my_rmr), 100, {});
      lci::progress();
    } while (sstatus.error.is_retry());
    if (rstatus.error.is_posted()) lci::sync_wait(sync, &rstatus);

    // Put 64 bytes into the peer's window.
    char payload[64];
    std::memset(payload, '0' + rank, sizeof(payload));
    lci::comp_t put_sync = lci::alloc_sync(1);
    lci::status_t put_status;
    do {
      put_status =
          lci::post_put(peer, payload, sizeof(payload), put_sync, peer_rmr);
      lci::progress();
    } while (put_status.error.is_retry());
    if (put_status.error.is_posted()) lci::sync_wait(put_sync, nullptr);
    lci::barrier();
    EXPECT_EQ(window[0], '0' + peer);
    EXPECT_EQ(window[63], '0' + peer);
    EXPECT_EQ(window[64], 'A' + rank);  // untouched

    // Get 64 bytes from the peer's window tail.
    char fetched[64] = {};
    lci::comp_t get_sync = lci::alloc_sync(1);
    lci::status_t get_status;
    do {
      get_status = lci::post_get(peer, fetched, sizeof(fetched), get_sync,
                                 peer_rmr, 64);
      lci::progress();
    } while (get_status.error.is_retry());
    if (get_status.error.is_posted()) lci::sync_wait(get_sync, nullptr);
    EXPECT_EQ(fetched[0], 'A' + peer);
    EXPECT_EQ(fetched[63], 'A' + peer);

    lci::barrier();
    lci::free_comp(&get_sync);
    lci::free_comp(&put_sync);
    lci::free_comp(&sync);
    lci::deregister_memory(&mr);
  });
}

TEST(Smoke, Collectives) {
  run_ranks(4, [](int rank) {
    lci::barrier();
    int value = rank == 2 ? 42 : -1;
    lci::broadcast(&value, sizeof(value), /*root=*/2);
    EXPECT_EQ(value, 42);

    const int mine = rank + 1;
    int total = 0;
    lci::reduce(
        &mine, &total, sizeof(int),
        [](void* acc, const void* in, std::size_t) {
          *static_cast<int*>(acc) += *static_cast<const int*>(in);
        },
        /*root=*/0);
    if (rank == 0) {
      EXPECT_EQ(total, 1 + 2 + 3 + 4);
    }
    lci::barrier();
  });
}

}  // namespace
