// Stress and failure-injection tests: heavy multithreaded traffic over
// shared and dedicated devices, packet-pool exhaustion and recovery,
// rendezvous floods, and collectives at larger rank counts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "core/lci.hpp"

namespace {

lci::runtime_attr_t small_attr() {
  lci::runtime_attr_t attr;
  attr.matching_engine_buckets = 1024;
  return attr;
}

// N threads per rank hammer one shared device with AMs to the peer; every
// payload must arrive intact exactly once.
TEST(Stress, SharedDeviceManyThreads) {
  constexpr int nthreads = 4;
  constexpr int per_thread = 300;
  constexpr int total = nthreads * per_thread;
  lci::sim::spawn(2, [&](int rank) {
    lci::g_runtime_init(small_attr());
    const int peer = 1 - rank;
    lci::comp_t rcq = lci::alloc_cq();
    const lci::rcomp_t rcomp = lci::register_rcomp(rcq);
    lci::barrier();

    std::vector<std::atomic<int>> seen(total);
    for (auto& s : seen) s.store(0);
    std::atomic<int> received{0};
    auto binding = lci::sim::current_binding();
    std::vector<std::thread> pool;
    for (int t = 0; t < nthreads; ++t) {
      pool.emplace_back([&, t] {
        lci::sim::scoped_binding_t bound(binding);
        int sent = 0;
        while (sent < per_thread || received.load() < total) {
          if (sent < per_thread) {
            uint64_t payload = static_cast<uint64_t>(t) * per_thread + sent;
            const auto status =
                lci::post_am(peer, &payload, sizeof(payload), {}, rcomp);
            if (!status.error.is_retry()) ++sent;
          }
          lci::progress();
          lci::status_t s = lci::cq_pop(rcq);
          if (s.error.is_done()) {
            uint64_t payload;
            std::memcpy(&payload, s.buffer.base, sizeof(payload));
            std::free(s.buffer.base);
            ASSERT_LT(payload, static_cast<uint64_t>(total));
            seen[payload].fetch_add(1);
            received.fetch_add(1);
          }
        }
      });
    }
    for (auto& th : pool) th.join();
    for (int i = 0; i < total; ++i) EXPECT_EQ(seen[i].load(), 1);
    lci::barrier();
    lci::deregister_rcomp(rcomp);
    lci::free_comp(&rcq);
    lci::g_runtime_fina();
  });
}

// Dedicated mode: a device (and its own cq) per thread, the configuration
// the paper's Fig. 3(a) measures.
TEST(Stress, DedicatedDevicesPerThread) {
  constexpr int nthreads = 4;
  constexpr int per_thread = 300;
  lci::sim::spawn(2, [&](int rank) {
    lci::g_runtime_init(small_attr());
    const int peer = 1 - rank;
    // Registration order fixes rcomp ids: thread t's cq gets id t.
    std::vector<lci::comp_t> cqs(nthreads);
    std::vector<lci::rcomp_t> rcomps(nthreads);
    for (int t = 0; t < nthreads; ++t) {
      cqs[static_cast<std::size_t>(t)] = lci::alloc_cq();
      rcomps[static_cast<std::size_t>(t)] =
          lci::register_rcomp(cqs[static_cast<std::size_t>(t)]);
    }
    std::vector<lci::device_t> devices(nthreads);
    for (auto& d : devices) d = lci::alloc_device();
    lci::barrier();

    auto binding = lci::sim::current_binding();
    std::atomic<int> threads_done{0};
    std::vector<std::thread> pool;
    for (int t = 0; t < nthreads; ++t) {
      pool.emplace_back([&, t] {
        lci::sim::scoped_binding_t bound(binding);
        lci::device_t dev = devices[static_cast<std::size_t>(t)];
        lci::comp_t cq = cqs[static_cast<std::size_t>(t)];
        int sent = 0, received = 0;
        while (sent < per_thread || received < per_thread) {
          if (sent < per_thread) {
            uint64_t payload = static_cast<uint64_t>(rank) << 32 | sent;
            const auto status =
                lci::post_am_x(peer, &payload, sizeof(payload), {},
                               rcomps[static_cast<std::size_t>(t)])
                    .device(dev)
                    .tag(static_cast<lci::tag_t>(t))();
            if (!status.error.is_retry()) ++sent;
          }
          lci::progress_x().device(dev)();
          lci::status_t s = lci::cq_pop(cq);
          if (s.error.is_done()) {
            EXPECT_EQ(s.tag, static_cast<lci::tag_t>(t));
            EXPECT_EQ(s.rank, peer);
            std::free(s.buffer.base);
            ++received;
          }
        }
        threads_done.fetch_add(1);
        while (threads_done.load() < nthreads)
          lci::progress_x().device(dev)();
        for (int i = 0; i < 100; ++i) lci::progress_x().device(dev)();
      });
    }
    for (auto& th : pool) th.join();
    lci::barrier();
    for (int t = 0; t < nthreads; ++t) {
      lci::deregister_rcomp(rcomps[static_cast<std::size_t>(t)]);
      lci::free_comp(&cqs[static_cast<std::size_t>(t)]);
      lci::free_device(&devices[static_cast<std::size_t>(t)]);
    }
    lci::g_runtime_fina();
  });
}

// Packet-pool exhaustion: with a pool sized barely above the pre-post
// depth, buffer-copy sends must hit retry_nopacket under a burst and then
// recover once arrivals recycle packets.
TEST(FailureInjection, PacketPoolExhaustionRecovers) {
  lci::runtime_attr_t attr = small_attr();
  attr.npackets = 40;
  attr.prepost_depth = 32;  // leaves ~8 packets for send staging
  lci::sim::spawn(2, [&](int rank) {
    lci::g_runtime_init(attr);
    const int peer = 1 - rank;
    lci::comp_t rcq = lci::alloc_cq();
    const lci::rcomp_t rcomp = lci::register_rcomp(rcq);
    lci::barrier();
    constexpr int count = 200;
    constexpr std::size_t size = 512;  // buffer-copy: consumes a packet
    std::vector<char> out(size, static_cast<char>(rank));
    int sent = 0, received = 0;
    int nopacket_retries = 0;
    while (sent < count || received < count) {
      if (sent < count) {
        const auto status = lci::post_am(peer, out.data(), size, {}, rcomp);
        if (status.error.code == lci::errorcode_t::retry_nopacket)
          ++nopacket_retries;
        if (!status.error.is_retry()) ++sent;
      }
      lci::progress();
      lci::status_t s = lci::cq_pop(rcq);
      if (s.error.is_done()) {
        std::free(s.buffer.base);
        ++received;
      }
    }
    EXPECT_EQ(received, count);  // exhaustion never loses messages
    lci::barrier();
    lci::deregister_rcomp(rcomp);
    lci::free_comp(&rcq);
    lci::g_runtime_fina();
  });
}

// Rendezvous flood: many concurrent large transfers in both directions.
TEST(Stress, RendezvousFlood) {
  lci::sim::spawn(2, [&](int rank) {
    lci::g_runtime_init(small_attr());
    const int peer = 1 - rank;
    constexpr int count = 16;
    const std::size_t size = 64 * 1024;
    std::vector<std::vector<char>> outs(count), ins(count);
    for (int i = 0; i < count; ++i) {
      outs[static_cast<std::size_t>(i)].assign(size,
                                               static_cast<char>(rank + i));
      ins[static_cast<std::size_t>(i)].assign(size, 0);
    }
    lci::comp_t rsync = lci::alloc_sync(count);
    lci::comp_t ssync = lci::alloc_sync(count);
    for (int i = 0; i < count; ++i) {
      (void)lci::post_recv_x(peer, ins[static_cast<std::size_t>(i)].data(),
                             size, static_cast<lci::tag_t>(i), rsync)
          .allow_done(false)();
    }
    for (int i = 0; i < count; ++i) {
      lci::status_t s;
      do {
        s = lci::post_send_x(peer, outs[static_cast<std::size_t>(i)].data(),
                             size, static_cast<lci::tag_t>(i), ssync)
                .allow_done(false)();
        lci::progress();
      } while (s.error.is_retry());
    }
    lci::sync_wait(ssync, nullptr);
    lci::sync_wait(rsync, nullptr);
    for (int i = 0; i < count; ++i) {
      const auto& in = ins[static_cast<std::size_t>(i)];
      EXPECT_EQ(in[0], static_cast<char>(peer + i));
      EXPECT_EQ(in[size - 1], static_cast<char>(peer + i));
    }
    lci::barrier();
    lci::free_comp(&rsync);
    lci::free_comp(&ssync);
    lci::g_runtime_fina();
  });
}

// Collectives at scale: correctness over 8 ranks, repeated (sequence-number
// reuse across many collectives).
TEST(Stress, CollectivesEightRanks) {
  lci::sim::spawn(8, [&](int rank) {
    lci::g_runtime_init(small_attr());
    for (int round = 0; round < 5; ++round) {
      lci::barrier();
      int value = rank == round ? round * 100 : -1;
      lci::broadcast(&value, sizeof(value), /*root=*/round);
      EXPECT_EQ(value, round * 100);

      long mine = rank + round;
      long total = 0;
      lci::reduce(
          &mine, &total, sizeof(long),
          [](void* acc, const void* in, std::size_t) {
            *static_cast<long*>(acc) += *static_cast<const long*>(in);
          },
          /*root=*/round % 8);
      if (rank == round % 8) {
        long expect = 0;
        for (int r = 0; r < 8; ++r) expect += r + round;
        EXPECT_EQ(total, expect);
      }
    }
    lci::barrier();
    lci::g_runtime_fina();
  });
}

// Broadcast of a rendezvous-sized buffer exercises collectives over the
// zero-copy path.
TEST(Stress, LargeBroadcast) {
  lci::sim::spawn(4, [&](int rank) {
    lci::g_runtime_init(small_attr());
    const std::size_t size = 128 * 1024;
    std::vector<char> data(size);
    if (rank == 2) {
      for (std::size_t i = 0; i < size; ++i)
        data[i] = static_cast<char>(i * 13);
    }
    lci::broadcast(data.data(), size, /*root=*/2);
    for (std::size_t i = 0; i < size; i += 997)
      ASSERT_EQ(data[i], static_cast<char>(i * 13));
    lci::barrier();
    lci::g_runtime_fina();
  });
}

}  // namespace
