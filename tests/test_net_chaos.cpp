// Hostile-conditions matrix for the real backends (net/shm_fabric.cpp,
// net/tcp_fabric.cpp): the deterministic fault-injection knobs and the
// heartbeat liveness layer under adversarial schedules.
//
// Like test_net_backends, every test forks + execs N copies of this binary
// (the scripts/launch_local.sh environment contract) with LCI_FAULT_* /
// LCI_PEER_TIMEOUT_MS set, and the children run one role each:
//
//   * delay        — seeded receive-side frame holds; full data integrity
//   * loss         — seeded sender-side drops; deadline-bounded receives,
//                    no hang, wire_dropped observed
//   * killsched    — LCI_FAULT_KILL_RANK/KILL_AFTER_OPS; the survivor sees
//                    exactly-once fatal_peer_down
//   * sigstop      — a SIGSTOPped (wedged, not dead) rank is declared dead
//                    by the heartbeat timeout within a bounded wall clock
//   * backpressure — (shm) a shrunken ring parks producers on the futex
//   * tcpreset     — (tcp) injected connection resets; bounded, no hang
//   * tcpshort     — (tcp) injected short writes are invisible to the data
//
// Runs are reproducible per seed: the parent forwards LCI_FAULT_SEED from
// its own environment (default 1), so CI can sweep seeds.
//
// Not part of tier-1 (label "backend"): tier-1 stays the in-process sim
// suite; CI drives this binary in the backend-chaos legs.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/lci.hpp"

namespace {

// ---------------------------------------------------------------------------
// Child roles. A child process is this same binary with LCI_TEST_CHILD_ROLE
// set; the static runner below intercepts it before gtest sees anything.
// ---------------------------------------------------------------------------

int env_rank() {
  const char* env = std::getenv("LCI_RANK");
  return env != nullptr ? std::atoi(env) : 0;
}

#define CHILD_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "[child rank %d] CHECK failed at %s:%d: %s\n",  \
                   env_rank(), __FILE__, __LINE__, #cond);                 \
      return 1;                                                            \
    }                                                                      \
  } while (0)

uint64_t wall_us() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Blocking send with the retry idiom.
void send_blocking(int peer, const void* buf, std::size_t size,
                   lci::tag_t tag) {
  lci::status_t s;
  do {
    s = lci::post_send(peer, const_cast<void*>(buf), size, tag, {});
    lci::progress();
  } while (s.error.is_retry());
}

// Blocking send that gives up on fatal errors (peer death mid-test is part
// of some scenarios). Returns false once the post stops being retryable-ok.
bool send_blocking_or_down(int peer, const void* buf, std::size_t size,
                           lci::tag_t tag) {
  for (int i = 0; i < 2000000; ++i) {
    lci::status_t s = lci::post_send(peer, const_cast<void*>(buf), size, tag,
                                     lci::comp_t{});
    lci::progress();
    if (s.error.is_fatal()) return false;
    if (!s.error.is_retry()) return true;
    if (i % 64 == 0) usleep(100);
  }
  return false;
}

// Neighbour-ring integrity sweep under delay injection: every frame may be
// held for several pump rounds, but per-sender FIFO and the payload bytes
// must survive intact, at any rank count.
int child_delay() {
  lci::g_runtime_init();
  const int me = lci::get_rank_me();
  const int n = lci::get_rank_n();
  const int to = (me + 1) % n;
  const int from = (me + n - 1) % n;
  constexpr int count = 100;
  constexpr std::size_t size = 64;
  lci::comp_t sync = lci::alloc_sync(1);
  char in[size], out[size];
  for (int i = 0; i < count; ++i) {
    std::snprintf(out, size, "delayed %d from rank %d", i, me);
    std::memset(in, 0, size);
    lci::status_t rs = lci::post_recv(from, in, size, /*tag=*/1, sync);
    send_blocking(to, out, size, 1);
    if (rs.error.is_posted()) lci::sync_wait(sync, &rs);
    CHILD_CHECK(rs.error.is_done());
    char expect[size];
    std::snprintf(expect, size, "delayed %d from rank %d", i, from);
    CHILD_CHECK(std::memcmp(in, expect, std::strlen(expect) + 1) == 0);
  }
  // No closing barrier: a barrier token can itself be held by the delay
  // injection while its sender finishes and exits, at which point the death
  // purge evaporates it (held frames are in-flight wire state, dropped on
  // peer death like the sim does). The lockstep loop above means both ranks
  // are data-complete here, but the slower rank's *last* inbound frame may
  // still be parked in its delay staging — stay alive and progressing for a
  // grace period so its countdown ticks out before our exit looks like a
  // death to it.
  const uint64_t grace_until = wall_us() + 500 * 1000;
  while (wall_us() < grace_until) {
    lci::progress();
    usleep(1000);
  }
  lci::free_comp(&sync);
  lci::g_runtime_fina();
  return 0;
}

// Lockstep exchange under sender-side loss: dropped messages never arrive,
// so every receive carries a deadline. The run must stay bounded, some
// drops must actually happen (the RNG is seeded, rates are high enough that
// zero drops is astronomically unlikely), and everything that does arrive
// must be intact.
int child_loss() {
  lci::g_runtime_init();
  const int me = lci::get_rank_me();
  const int peer = 1 - me;
  constexpr int count = 150;
  constexpr std::size_t size = 64;
  lci::comp_t sync = lci::alloc_sync(1);
  char in[size], out[size];
  int delivered = 0, timed_out = 0, peer_exited = 0;
  for (int i = 0; i < count; ++i) {
    std::snprintf(out, size, "lossy %d from rank %d", i, me);
    std::memset(in, 0, size);
    lci::status_t rs = lci::post_recv_x(peer, in, size, /*tag=*/1, sync)
                           .deadline(200 * 1000)();
    if (rs.error.code == lci::errorcode_t::fatal_peer_down) {
      ++peer_exited;
      break;
    }
    if (!send_blocking_or_down(peer, out, size, 1)) {
      ++peer_exited;
      if (rs.error.is_posted()) lci::sync_wait(sync, &rs);
      break;
    }
    if (rs.error.is_posted()) lci::sync_wait(sync, &rs);
    if (rs.error.is_done()) {
      ++delivered;
      // Drops shift the sequence but per-(rank, tag) FIFO holds: whatever
      // arrives is a prefix-intact message from the peer.
      char prefix[16];
      std::snprintf(prefix, sizeof(prefix), "lossy ");
      CHILD_CHECK(std::memcmp(in, prefix, std::strlen(prefix)) == 0);
    } else if (rs.error.code == lci::errorcode_t::fatal_peer_down) {
      // The peer ran out of its own iterations, finalized, and exited —
      // without a closing barrier (impossible under loss) the tail of the
      // exchange legitimately observes the organic death.
      ++peer_exited;
      break;
    } else {
      CHILD_CHECK(rs.error.code == lci::errorcode_t::fatal_timeout);
      ++timed_out;
    }
  }
  CHILD_CHECK(delivered + timed_out + peer_exited >= 1);
  CHILD_CHECK(delivered > 0);
  const lci::counters_t c = lci::get_counters();
  CHILD_CHECK(c.wire_dropped > 0);
  // No closing barrier: barrier traffic is lossy too and would hang.
  lci::free_comp(&sync);
  lci::g_runtime_fina();
  return 0;
}

// LCI_FAULT_KILL_RANK=1 / KILL_AFTER_OPS=<n>: rank 1 self-destructs after
// its n-th successful post, exactly like the sim kill schedule. Rank 0
// asserts the exactly-once fatal_peer_down contract.
int child_killsched() {
  lci::g_runtime_init();
  const int me = lci::get_rank_me();
  if (me == 1) {
    // Victim: spray eager traffic until the schedule fires. After the
    // self-kill, posts either fail fatally (tcp: our sockets are gone) or
    // land in a tombstoned world (shm) — either way the loop stays bounded.
    char out[64];
    for (int i = 0; i < 200; ++i) {
      std::snprintf(out, sizeof(out), "doomed %d", i);
      if (!send_blocking_or_down(0, out, sizeof(out), 5)) break;
    }
    lci::g_runtime_fina();
    return 0;
  }
  // Survivor: a parked receive the victim will never satisfy must complete
  // exactly once with fatal_peer_down once the death is observed.
  // On shm the victim's self-kill tombstone is visible through the shared
  // segment the moment it lands, so a fast victim can be dead before this
  // post: the recv is then rejected with fatal_peer_down at post time
  // instead of parking — both are the exactly-once contract.
  char parked[64];
  lci::comp_t parked_sync = lci::alloc_sync(1);
  lci::status_t parked_rs =
      lci::post_recv(1, parked, sizeof(parked), /*tag=*/99, parked_sync);
  const bool was_parked = parked_rs.error.is_posted();
  CHILD_CHECK(was_parked ||
              parked_rs.error.code == lci::errorcode_t::fatal_peer_down);
  bool saw_peer_down = false;
  char probe[64] = "are you there";
  for (int i = 0; i < 200000 && !saw_peer_down; ++i) {
    lci::status_t s =
        lci::post_send(1, probe, sizeof(probe), /*tag=*/6, lci::comp_t{});
    lci::progress();
    if (s.error.code == lci::errorcode_t::fatal_peer_down) saw_peer_down = true;
    if (s.error.is_retry() || i % 16 == 0) usleep(500);
  }
  CHILD_CHECK(saw_peer_down);
  if (was_parked) {
    lci::sync_wait(parked_sync, &parked_rs);
    CHILD_CHECK(parked_rs.error.code == lci::errorcode_t::fatal_peer_down);
    const lci::counters_t c = lci::get_counters();
    CHILD_CHECK(c.peer_down_completions >= 1);
  }
  lci::free_comp(&parked_sync);
  lci::g_runtime_fina();
  return 0;
}

// Rank 1 wedges (the parent SIGSTOPs it — the process is alive, its pid
// probes pass, its flocks are held, but it makes no progress). With
// LCI_PEER_TIMEOUT_MS set the heartbeat layer must declare it dead and fold
// the death through the usual exactly-once fatal_peer_down purge.
int child_sigstop() {
  lci::g_runtime_init();
  const int me = lci::get_rank_me();
  const int n = lci::get_rank_n();
  lci::barrier();  // everyone heard from everyone just now
  if (me == 1) {
    // Victim: tell the parent we are ready to be wedged, then spin on
    // progress until the SIGSTOP lands (the parent SIGKILLs us later).
    const char* dir = std::getenv("LCI_JOB_DIR");
    if (dir != nullptr) {
      const std::string path = std::string(dir) + "/chaos-ready";
      std::FILE* f = std::fopen(path.c_str(), "w");
      if (f != nullptr) std::fclose(f);
    }
    const uint64_t until = wall_us() + 60u * 1000 * 1000;
    while (wall_us() < until) {
      lci::progress();
      usleep(1000);
    }
    lci::g_runtime_fina();
    return 0;
  }
  // Survivor: park a receive on the victim, then probe it until the
  // liveness timeout declares it dead. Bounded wall clock — a hang here is
  // exactly the failure mode this layer exists to remove.
  char parked[64];
  lci::comp_t parked_sync = lci::alloc_sync(1);
  lci::status_t parked_rs =
      lci::post_recv(1, parked, sizeof(parked), /*tag=*/99, parked_sync);
  CHILD_CHECK(parked_rs.error.is_posted());
  // Post the survivors-ring receive NOW, before the probe loop: survivors
  // leave that loop at different times, and a fast survivor may send its
  // ring message and exit while a slow one is still probing — an unmatched
  // frame from a now-dead peer evaporates in the death purge. With the recv
  // pre-posted the frame matches (and completes) the moment it arrives.
  std::vector<int> survivors;
  for (int r = 0; r < n; ++r)
    if (r != 1) survivors.push_back(r);
  lci::comp_t ring_sync = lci::alloc_sync(1);
  lci::status_t ring_rs;
  int ring_to = -1, ring_from = -1;
  char ring_in[64] = {};
  if (survivors.size() >= 2) {
    std::size_t idx = 0;
    while (survivors[idx] != me) ++idx;
    ring_to = survivors[(idx + 1) % survivors.size()];
    ring_from = survivors[(idx + survivors.size() - 1) % survivors.size()];
    ring_rs =
        lci::post_recv(ring_from, ring_in, sizeof(ring_in), /*tag=*/7, ring_sync);
    CHILD_CHECK(ring_rs.error.is_posted() || ring_rs.error.is_done());
  }
  const uint64_t start = wall_us();
  const uint64_t limit = start + 20u * 1000 * 1000;
  bool saw_peer_down = false;
  char probe[64] = "anyone home";
  while (!saw_peer_down && wall_us() < limit) {
    lci::status_t s =
        lci::post_send(1, probe, sizeof(probe), /*tag=*/6, lci::comp_t{});
    lci::progress();
    if (s.error.code == lci::errorcode_t::fatal_peer_down) saw_peer_down = true;
    usleep(1000);
  }
  CHILD_CHECK(saw_peer_down);
  lci::sync_wait(parked_sync, &parked_rs);
  CHILD_CHECK(parked_rs.error.code == lci::errorcode_t::fatal_peer_down);
  const lci::counters_t c = lci::get_counters();
  CHILD_CHECK(c.heartbeats_sent > 0);
  // peers_timed_out is NOT asserted per survivor: on shm the timeout
  // handler tombstones the victim fabric-wide, so only the first sweeper
  // counts it — the others observe the tombstone organically. Publish the
  // local count; the parent asserts the sum across survivors >= 1.
  if (const char* dir = std::getenv("LCI_JOB_DIR")) {
    const std::string path =
        std::string(dir) + "/timeout-count-" + std::to_string(me);
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f, "%llu",
                   static_cast<unsigned long long>(c.peers_timed_out));
      std::fclose(f);
    }
  }
  // The survivors can still talk to each other (a ring over everyone but
  // the victim; only meaningful with at least two survivors). The receive
  // was pre-posted before the probe loop, above.
  if (survivors.size() >= 2) {
    char out[64];
    std::snprintf(out, sizeof(out), "still alive (rank %d)", me);
    send_blocking(ring_to, out, sizeof(out), 7);
    if (ring_rs.error.is_posted()) lci::sync_wait(ring_sync, &ring_rs);
    if (!ring_rs.error.is_done())
      std::fprintf(stderr, "[child rank %d] ring recv from %d code=%d\n", me,
                   ring_from, static_cast<int>(ring_rs.error.code));
    CHILD_CHECK(ring_rs.error.is_done());
    char expect[64];
    std::snprintf(expect, sizeof(expect), "still alive (rank %d)", ring_from);
    CHILD_CHECK(std::memcmp(ring_in, expect, std::strlen(expect) + 1) == 0);
  }
  lci::free_comp(&ring_sync);
  lci::free_comp(&parked_sync);
  lci::g_runtime_fina();
  return 0;
}

// (shm) LCI_FAULT_SHM_RING_SHRINK squeezes the effective ring capacity to a
// few frames: the producer must hit ring-full, park on the consumer-progress
// futex (instead of spinning), and surface the event in the counters.
int child_backpressure() {
  lci::g_runtime_init();
  const int me = lci::get_rank_me();
  constexpr int count = 1000;
  constexpr std::size_t size = 1024;
  if (me == 0) {
    std::vector<char> out(size, 'b');
    for (int i = 0; i < count; ++i) {
      std::snprintf(out.data(), 32, "bp %d", i);
      send_blocking(1, out.data(), size, 8);
    }
    const lci::counters_t c = lci::get_counters();
    CHILD_CHECK(c.backpressure_waits > 0);
  } else {
    std::vector<char> in(size);
    lci::comp_t sync = lci::alloc_sync(1);
    for (int i = 0; i < count; ++i) {
      std::memset(in.data(), 0, 32);
      lci::status_t rs = lci::post_recv(0, in.data(), size, /*tag=*/8, sync);
      if (rs.error.is_posted()) lci::sync_wait(sync, &rs);
      CHILD_CHECK(rs.error.is_done());
      char expect[32];
      std::snprintf(expect, sizeof(expect), "bp %d", i);
      CHILD_CHECK(std::memcmp(in.data(), expect, std::strlen(expect) + 1) == 0);
      // Stay a little behind the producer so the shrunken ring really fills.
      if (i % 16 == 0) usleep(200);
    }
    lci::free_comp(&sync);
  }
  lci::barrier();
  lci::g_runtime_fina();
  return 0;
}

// (tcp) Injected connection resets: either the exchange completes, or the
// link dies and both sides observe fatal_peer_down — never a hang, never a
// crash. Intact payloads are checked for whatever does get through.
int child_tcpreset() {
  lci::g_runtime_init();
  const int me = lci::get_rank_me();
  const int peer = 1 - me;
  constexpr int count = 200;
  constexpr std::size_t size = 64;
  lci::comp_t sync = lci::alloc_sync(1);
  char in[size], out[size];
  for (int i = 0; i < count; ++i) {
    std::snprintf(out, size, "reset %d from rank %d", i, me);
    std::memset(in, 0, size);
    lci::status_t rs = lci::post_recv_x(peer, in, size, /*tag=*/1, sync)
                           .deadline(500 * 1000)();
    if (rs.error.code == lci::errorcode_t::fatal_peer_down) break;
    const bool sent = send_blocking_or_down(peer, out, size, 1);
    if (rs.error.is_posted()) lci::sync_wait(sync, &rs);
    if (rs.error.is_done()) {
      char prefix[16];
      std::snprintf(prefix, sizeof(prefix), "reset ");
      CHILD_CHECK(std::memcmp(in, prefix, std::strlen(prefix)) == 0);
    } else {
      CHILD_CHECK(rs.error.code == lci::errorcode_t::fatal_timeout ||
                  rs.error.code == lci::errorcode_t::fatal_peer_down);
    }
    if (!sent) break;  // link is gone — nothing more to exchange
  }
  lci::free_comp(&sync);
  lci::g_runtime_fina();
  return 0;
}

// (tcp) Injected short writes: the transport must resume mid-frame and the
// injection must be invisible to the data — full integrity for both eager
// and rendezvous-sized messages at an aggressive injection rate.
int child_tcpshort() {
  lci::g_runtime_init();
  const int me = lci::get_rank_me();
  const int peer = 1 - me;
  lci::comp_t sync = lci::alloc_sync(1);
  lci::comp_t send_sync = lci::alloc_sync(1);
  // Eager sweep.
  constexpr int count = 100;
  constexpr std::size_t size = 64;
  char in[size], out[size];
  for (int i = 0; i < count; ++i) {
    std::snprintf(out, size, "short %d from rank %d", i, me);
    std::memset(in, 0, size);
    lci::status_t rs = lci::post_recv(peer, in, size, /*tag=*/1, sync);
    send_blocking(peer, out, size, 1);
    if (rs.error.is_posted()) lci::sync_wait(sync, &rs);
    CHILD_CHECK(rs.error.is_done());
    char expect[size];
    std::snprintf(expect, size, "short %d from rank %d", i, peer);
    CHILD_CHECK(std::memcmp(in, expect, std::strlen(expect) + 1) == 0);
  }
  // Rendezvous sweep — large frames make partial writev the common case.
  constexpr int iters = 4;
  constexpr std::size_t big = 128 * 1024;
  std::vector<char> bin(big), bout(big);
  for (int i = 0; i < iters; ++i) {
    for (std::size_t j = 0; j < big; j += 512)
      bout[j] = static_cast<char>((i * 37 + me * 11 + j / 512) & 0x7f);
    std::memset(bin.data(), 0, big);
    lci::status_t rs = lci::post_recv(peer, bin.data(), big, /*tag=*/2, sync);
    lci::status_t ss;
    do {
      ss = lci::post_send(peer, bout.data(), big, 2, send_sync);
      lci::progress();
    } while (ss.error.is_retry());
    if (ss.error.is_posted()) lci::sync_wait(send_sync, &ss);
    CHILD_CHECK(ss.error.is_done());
    if (rs.error.is_posted()) lci::sync_wait(sync, &rs);
    CHILD_CHECK(rs.error.is_done());
    for (std::size_t j = 0; j < big; j += 512) {
      const char want = static_cast<char>((i * 37 + peer * 11 + j / 512) & 0x7f);
      CHILD_CHECK(bin[j] == want);
    }
  }
  lci::barrier();
  lci::free_comp(&send_sync);
  lci::free_comp(&sync);
  lci::g_runtime_fina();
  return 0;
}

int run_child(const std::string& role) {
  if (role == "delay") return child_delay();
  if (role == "loss") return child_loss();
  if (role == "killsched") return child_killsched();
  if (role == "sigstop") return child_sigstop();
  if (role == "backpressure") return child_backpressure();
  if (role == "tcpreset") return child_tcpreset();
  if (role == "tcpshort") return child_tcpshort();
  std::fprintf(stderr, "unknown chaos child role: %s\n", role.c_str());
  return 2;
}

// Runs before main(): children never reach gtest.
struct child_runner_t {
  child_runner_t() {
    const char* role = std::getenv("LCI_TEST_CHILD_ROLE");
    if (role == nullptr) return;
    std::_Exit(run_child(role));
  }
} child_runner_;

// ---------------------------------------------------------------------------
// Parent-side launcher. Extends the test_net_backends launcher with
// per-scenario environment (the fault knobs) and the SIGSTOP schedule.
// ---------------------------------------------------------------------------

struct launch_opt_t {
  std::vector<std::pair<std::string, std::string>> env;
  // When >= 0: wait for the victim's chaos-ready marker, SIGSTOP that rank,
  // reap every other rank, then SIGCONT+SIGKILL the victim.
  int sigstop_rank = -1;
};

struct launch_result_t {
  std::vector<int> exit_codes;    // -1 when the rank died of a signal
  std::vector<int> term_signals;  // 0 when the rank exited normally
  double stop_to_exit_s = 0.0;    // SIGSTOP → last survivor reaped
  unsigned long long peers_timed_out_sum = 0;  // from timeout-count-* files
};

std::string fault_seed() {
  const char* env = std::getenv("LCI_FAULT_SEED");
  return env != nullptr && env[0] != '\0' ? env : "1";
}

launch_result_t launch(const std::string& backend, int nranks,
                       const std::string& role, const launch_opt_t& opt = {}) {
  char tmpl[] = "/tmp/lci-chaos-job.XXXXXX";
  const char* dir = mkdtemp(tmpl);
  if (dir == nullptr) throw std::runtime_error("mkdtemp failed");
  const std::string job_dir = dir;
  const std::string job_id =
      "chaos" + std::to_string(static_cast<unsigned>(::getpid())) +
      job_dir.substr(job_dir.size() - 6);
  std::vector<pid_t> pids;
  for (int r = 0; r < nranks; ++r) {
    const pid_t pid = fork();
    if (pid == 0) {
      setenv("LCI_BACKEND", backend.c_str(), 1);
      setenv("LCI_RANK", std::to_string(r).c_str(), 1);
      setenv("LCI_NRANKS", std::to_string(nranks).c_str(), 1);
      setenv("LCI_JOB_DIR", job_dir.c_str(), 1);
      setenv("LCI_JOB_ID", job_id.c_str(), 1);
      setenv("LCI_TEST_CHILD_ROLE", role.c_str(), 1);
      setenv("LCI_FAULT_SEED", fault_seed().c_str(), 1);
      for (const auto& kv : opt.env) setenv(kv.first.c_str(), kv.second.c_str(), 1);
      execl("/proc/self/exe", "test_net_chaos_child",
            static_cast<char*>(nullptr));
      _exit(127);
    }
    pids.push_back(pid);
  }
  launch_result_t result;
  result.exit_codes.assign(static_cast<std::size_t>(nranks), -1);
  result.term_signals.assign(static_cast<std::size_t>(nranks), 0);
  auto reap = [&](int r) {
    int status = 0;
    waitpid(pids[static_cast<std::size_t>(r)], &status, 0);
    result.exit_codes[static_cast<std::size_t>(r)] =
        WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    result.term_signals[static_cast<std::size_t>(r)] =
        WIFSIGNALED(status) ? WTERMSIG(status) : 0;
  };
  if (opt.sigstop_rank >= 0) {
    // Wedge the victim only once its runtime is up (it write the marker
    // after the post-init barrier) so the bootstrap handshake is clean.
    const std::string marker = job_dir + "/chaos-ready";
    struct stat st;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (::stat(marker.c_str(), &st) != 0 &&
           std::chrono::steady_clock::now() < deadline)
      usleep(2000);
    kill(pids[static_cast<std::size_t>(opt.sigstop_rank)], SIGSTOP);
    const auto stopped = std::chrono::steady_clock::now();
    for (int r = 0; r < nranks; ++r)
      if (r != opt.sigstop_rank) reap(r);
    result.stop_to_exit_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      stopped)
            .count();
    kill(pids[static_cast<std::size_t>(opt.sigstop_rank)], SIGCONT);
    kill(pids[static_cast<std::size_t>(opt.sigstop_rank)], SIGKILL);
    reap(opt.sigstop_rank);
  } else {
    for (int r = 0; r < nranks; ++r) reap(r);
  }
  for (int r = 0; r < nranks; ++r) {
    const std::string path = job_dir + "/timeout-count-" + std::to_string(r);
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) continue;
    unsigned long long v = 0;
    if (std::fscanf(f, "%llu", &v) == 1) result.peers_timed_out_sum += v;
    std::fclose(f);
  }
  const std::string rm = "rm -rf " + job_dir;
  std::system(rm.c_str());
  const std::string shm = "/dev/shm/lci-" + job_id;
  ::unlink(shm.c_str());
  return result;
}

std::vector<int> zeros(int n) { return std::vector<int>(static_cast<std::size_t>(n), 0); }

class NetChaos : public ::testing::TestWithParam<const char*> {};

TEST_P(NetChaos, DelaySweep2) {
  launch_opt_t opt;
  opt.env = {{"LCI_FAULT_DELAY_RATE", "0.3"}, {"LCI_FAULT_DELAY_POLLS", "8"}};
  const launch_result_t r = launch(GetParam(), 2, "delay", opt);
  EXPECT_EQ(r.exit_codes, zeros(2));
}

TEST_P(NetChaos, DelaySweep4) {
  launch_opt_t opt;
  opt.env = {{"LCI_FAULT_DELAY_RATE", "0.3"}, {"LCI_FAULT_DELAY_POLLS", "8"}};
  const launch_result_t r = launch(GetParam(), 4, "delay", opt);
  EXPECT_EQ(r.exit_codes, zeros(4));
}

TEST_P(NetChaos, LossSweep) {
  launch_opt_t opt;
  opt.env = {{"LCI_FAULT_LOSS_RATE", "0.15"}};
  const launch_result_t r = launch(GetParam(), 2, "loss", opt);
  EXPECT_EQ(r.exit_codes, zeros(2));
}

TEST_P(NetChaos, KillSchedule) {
  launch_opt_t opt;
  opt.env = {{"LCI_FAULT_KILL_RANK", "1"}, {"LCI_FAULT_KILL_AFTER_OPS", "20"}};
  const launch_result_t r = launch(GetParam(), 2, "killsched", opt);
  EXPECT_EQ(r.exit_codes[0], 0);
  EXPECT_EQ(r.exit_codes[1], 0);
}

// 2000 ms rather than a snappier value: liveness timeouts cannot tell a
// SIGSTOPped peer from one that is merely starved of CPU, and CI boxes (and
// this repo's single-core container) starve freely. The detection bound
// asserted below is still far under the hang this test exists to rule out.
TEST_P(NetChaos, SigstopHang2) {
  launch_opt_t opt;
  opt.env = {{"LCI_PEER_TIMEOUT_MS", "2000"}};
  opt.sigstop_rank = 1;
  const launch_result_t r = launch(GetParam(), 2, "sigstop", opt);
  EXPECT_EQ(r.exit_codes[0], 0);
  EXPECT_EQ(r.term_signals[1], SIGKILL);
  EXPECT_GE(r.peers_timed_out_sum, 1u);
  // Survivors must be out well within a handful of timeouts (the acceptance
  // bound is 2x the 2 s timeout for the detection itself; the exit adds
  // teardown, so give scheduling slack without letting a hang pass).
  EXPECT_LT(r.stop_to_exit_s, 10.0);
}

TEST_P(NetChaos, SigstopHang4) {
  launch_opt_t opt;
  opt.env = {{"LCI_PEER_TIMEOUT_MS", "2000"}};
  opt.sigstop_rank = 1;
  const launch_result_t r = launch(GetParam(), 4, "sigstop", opt);
  EXPECT_EQ(r.exit_codes[0], 0);
  EXPECT_EQ(r.exit_codes[2], 0);
  EXPECT_EQ(r.exit_codes[3], 0);
  EXPECT_EQ(r.term_signals[1], SIGKILL);
  EXPECT_GE(r.peers_timed_out_sum, 1u);
  EXPECT_LT(r.stop_to_exit_s, 10.0);
}

TEST_P(NetChaos, Backpressure) {
  if (std::string(GetParam()) != "shm")
    GTEST_SKIP() << "futex backpressure is an shm-ring mechanism";
  launch_opt_t opt;
  opt.env = {{"LCI_FAULT_SHM_RING_SHRINK", "4096"}};
  const launch_result_t r = launch(GetParam(), 2, "backpressure", opt);
  EXPECT_EQ(r.exit_codes, zeros(2));
}

TEST_P(NetChaos, TcpReset) {
  if (std::string(GetParam()) != "tcp")
    GTEST_SKIP() << "connection resets are a tcp fault";
  launch_opt_t opt;
  opt.env = {{"LCI_FAULT_TCP_RESET_RATE", "0.02"},
             {"LCI_PEER_TIMEOUT_MS", "500"}};
  const launch_result_t r = launch(GetParam(), 2, "tcpreset", opt);
  EXPECT_EQ(r.exit_codes, zeros(2));
}

TEST_P(NetChaos, TcpShortWrite) {
  if (std::string(GetParam()) != "tcp")
    GTEST_SKIP() << "short writes are a tcp fault";
  launch_opt_t opt;
  opt.env = {{"LCI_FAULT_TCP_SHORT_WRITE_RATE", "0.3"}};
  const launch_result_t r = launch(GetParam(), 2, "tcpshort", opt);
  EXPECT_EQ(r.exit_codes, zeros(2));
}

INSTANTIATE_TEST_SUITE_P(Backends, NetChaos,
                         ::testing::Values("shm", "tcp"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

}  // namespace
