// Device sharding & affinity routing (docs/INTERNALS.md "Device sharding"):
// shard-count attributes, the TLS pin, hashed (rank, tag) routing
// determinism, matching correctness across shards under faults, pinned
// multithreaded traffic, and the failure lifecycle (kill_peer / drain) with
// device_shards > 1. Runs in the tsan tier-1 leg: every test here must stay
// race-free with concurrent posters and explicit progress.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstring>
#include <deque>
#include <map>
#include <thread>
#include <vector>

#include "core/lci.hpp"
#include "util/rng.hpp"

namespace {

lci::runtime_attr_t sharded_attr(std::size_t shards) {
  lci::runtime_attr_t attr;
  attr.device_shards = shards;
  attr.matching_engine_buckets = 256;
  return attr;
}

// The resolved device attribute reports the shard count, and the default of
// 1 keeps the single-endpoint layout.
TEST(Shards, AttrReportsShardCount) {
  lci::sim::spawn(1, [](int) {
    lci::g_runtime_init(sharded_attr(4));
    EXPECT_EQ(lci::get_attr(lci::device_t{}).device_shards, 4u);
    lci::g_runtime_fina();

    lci::runtime_attr_t attr;
    attr.device_shards = 0;  // 0 behaves as "unsharded"
    lci::g_runtime_init(attr);
    EXPECT_EQ(lci::get_attr(lci::device_t{}).device_shards, 1u);
    lci::g_runtime_fina();
  });
}

// The TLS pin is a plain per-thread value: unset reads -1, set reads back
// what was pinned, negative values unpin, and other threads are unaffected.
TEST(Shards, PinIsPerThread) {
  EXPECT_EQ(lci::get_thread_shard(), -1);
  lci::pin_thread_shard(2);
  EXPECT_EQ(lci::get_thread_shard(), 2);
  std::thread other([] {
    EXPECT_EQ(lci::get_thread_shard(), -1);  // TLS: not inherited
    lci::pin_thread_shard(0);
    EXPECT_EQ(lci::get_thread_shard(), 0);
  });
  other.join();
  EXPECT_EQ(lci::get_thread_shard(), 2);  // untouched by the other thread
  lci::pin_thread_shard(-1);
  EXPECT_EQ(lci::get_thread_shard(), -1);
}

// Routing determinism: every post on one (rank, tag) key from an unpinned
// thread lands on the same shard, so with aggregation on they all park in
// one slot and the explicit flush posts exactly one batch. A second tag may
// hash elsewhere — flushing both keys posts exactly two.
TEST(Shards, SameKeyRoutesToOneShard) {
  lci::runtime_attr_t attr = sharded_attr(4);
  attr.allow_aggregation = true;
  attr.aggregation_bypass_single_poster = false;
  attr.aggregation_flush_us = 1000000;  // no age flush: flush() is the only exit
  lci::sim::spawn(2, [&](int rank) {
    lci::g_runtime_init(attr);
    if (rank == 0) {
      constexpr int per_tag = 5;
      lci::comp_t cq = lci::alloc_cq();
      char out[8] = "routed";
      const lci::counters_t base = lci::get_counters();
      for (lci::tag_t tag = 0; tag < 2; ++tag) {
        for (int i = 0; i < per_tag; ++i) {
          lci::status_t ss;
          do {
            ss = lci::post_send_x(1, out, sizeof(out), tag, cq)
                     .allow_done(false)();
            if (ss.error.is_retry()) lci::progress();
          } while (ss.error.is_retry());
          ASSERT_TRUE(ss.error.is_posted());
        }
      }
      lci::counters_t c = lci::get_counters();
      EXPECT_EQ(c.send_coalesced - base.send_coalesced, 2u * per_tag);
      EXPECT_EQ(c.batches_flushed - base.batches_flushed, 0u);

      // One armed slot per distinct key's shard: flush() posts them all.
      const std::size_t batches = lci::flush();
      EXPECT_GE(batches, 1u);
      EXPECT_LE(batches, 2u);  // equal keys never split across shards
      int owed = 2 * per_tag;
      while (owed > 0) {
        lci::progress();
        if (lci::cq_pop(cq).error.is_done()) --owed;
      }
      lci::free_comp(&cq);
    } else {
      // Sink: absorb everything as unexpected AM-style tagged receives.
      std::vector<std::array<char, 8>> inbox(10);
      lci::comp_t rsync = lci::alloc_sync(10);
      for (int i = 0; i < 10; ++i)
        (void)lci::post_recv_x(0, inbox[static_cast<std::size_t>(i)].data(), 8,
                               static_cast<lci::tag_t>(i / 5), rsync)
            .allow_done(false)();
      lci::sync_wait(rsync, nullptr);
      lci::free_comp(&rsync);
    }
    lci::barrier();
    lci::g_runtime_fina();
  });
}

// Pinned multithreaded traffic: one worker per shard, each pinned to its own
// shard, all hammering the same peer on per-thread tags. Payloads verify
// byte-exact; per-key FIFO holds within each thread's stream.
TEST(Shards, PinnedWorkersMatchAcrossShards) {
  constexpr int nthreads = 4;
  constexpr int per_thread = 20;
  constexpr std::size_t msg = 64;
  lci::runtime_attr_t attr = sharded_attr(nthreads);
  lci::sim::spawn(2, [&](int rank) {
    lci::g_runtime_init(attr);
    const int peer = 1 - rank;
    auto binding = lci::sim::current_binding();
    std::vector<std::thread> workers;
    for (int t = 0; t < nthreads; ++t) {
      workers.emplace_back([&, t] {
        lci::sim::scoped_binding_t bound(binding);
        lci::pin_thread_shard(t);
        const auto tag = static_cast<lci::tag_t>(t);
        for (int i = 0; i < per_thread; ++i) {
          char buf[msg];
          std::memset(buf, 'A' + t, sizeof(buf));
          buf[0] = static_cast<char>(i);  // sequence stamp
          lci::comp_t sync = lci::alloc_sync(1);
          lci::status_t status;
          do {
            status = rank == 0
                         ? lci::post_send(peer, buf, msg, tag, sync)
                         : lci::post_recv(peer, buf, msg, tag, sync);
            lci::progress();
          } while (status.error.is_retry());
          if (status.error.is_posted()) {
            while (!lci::sync_test(sync, &status)) lci::progress();
          }
          EXPECT_TRUE(status.error.is_done());
          if (rank == 1) {
            EXPECT_EQ(buf[0], static_cast<char>(i));  // per-key FIFO
            EXPECT_EQ(buf[1], static_cast<char>('A' + t));
          }
          lci::free_comp(&sync);
        }
        lci::pin_thread_shard(-1);
      });
    }
    for (auto& w : workers) w.join();
    lci::barrier();
    lci::g_runtime_fina();
  });
}

// (shards, aggregation, trace) fuzz: a trimmed version of the protocol fuzz
// oracle run across the shard axis, with seeded fabric faults on top. Tags
// spread over shards; matching is runtime-wide, so the arrival shard must
// never affect which receive a message matches, and per-key FIFO must hold
// because a key always routes to one shard.
class ShardFuzz : public ::testing::TestWithParam<
                      std::tuple<std::size_t, bool, bool>> {};

TEST_P(ShardFuzz, TaggedTrafficMatchesOracle) {
  const auto [shards, aggregation, trace] = GetParam();
  constexpr uint64_t seed = 0x51a2d5ull;
  constexpr std::size_t max_msg = 20000;  // spans inject/bcopy/rendezvous
  lci::net::config_t fabric;
  fabric.fault.retry_rate = 0.05;
  fabric.fault.delay_rate = 0.05;
  fabric.fault.seed = seed;
  lci::sim::spawn(2, [&](int rank) {
    lci::runtime_attr_t attr = sharded_attr(shards);
    attr.allow_aggregation = aggregation;
    attr.aggregation_bypass_single_poster = false;
    attr.trace = trace;
    attr.trace_ring_size = 512;
    lci::g_runtime_init(attr);
    const int peer = 1 - rank;
    lci::util::xoshiro256_t rng(seed ^ (0x7777u * (rank + 1)));
    lci::util::xoshiro256_t peer_rng(seed ^ (0x7777u * (peer + 1)));

    constexpr int ops = 60;
    constexpr int ntags = 6;  // > shards: several keys per shard, some empty
    struct op_t {
      lci::tag_t tag;
      std::size_t size;
    };
    auto make_schedule = [&](lci::util::xoshiro256_t& r) {
      std::vector<op_t> schedule;
      for (int i = 0; i < ops; ++i)
        schedule.push_back({static_cast<lci::tag_t>(r.below(ntags)),
                            1 + static_cast<std::size_t>(r.below(max_msg))});
      return schedule;
    };
    const auto my_sends = make_schedule(rng);
    const auto peer_sends = make_schedule(peer_rng);
    auto payload_key = [&](int from, lci::tag_t tag, int k) {
      return seed ^ (static_cast<uint64_t>(from + 1) << 40) ^
             (static_cast<uint64_t>(tag) << 20) ^ static_cast<uint64_t>(k);
    };
    auto fill = [](std::vector<char>& buf, uint64_t key) {
      lci::util::xoshiro256_t r(key);
      for (auto& b : buf) b = static_cast<char>(r());
    };

    struct recv_slot_t {
      std::vector<char> buffer;
      lci::tag_t tag;
      int k;
    };
    std::deque<recv_slot_t> slots;
    std::map<lci::tag_t, int> recv_seq;
    lci::comp_t rsync = lci::alloc_sync(ops);
    for (const auto& op : peer_sends) {
      slots.push_back(
          {std::vector<char>(op.size), op.tag, recv_seq[op.tag]++});
      (void)lci::post_recv_x(peer, slots.back().buffer.data(), op.size,
                             op.tag, rsync)
          .allow_done(false)();
    }

    lci::comp_t scq = lci::alloc_cq();
    std::map<lci::tag_t, int> send_seq;
    int owed = 0;
    std::vector<std::vector<char>> live;
    for (const auto& op : my_sends) {
      std::vector<char> payload(op.size);
      fill(payload, payload_key(rank, op.tag, send_seq[op.tag]++));
      lci::status_t ss;
      do {
        ss = lci::post_send_x(peer, payload.data(), op.size, op.tag, scq)();
        lci::progress();
      } while (ss.error.is_retry());
      if (ss.error.is_posted()) {
        ++owed;
        live.push_back(std::move(payload));
      }
    }
    while (owed > 0) {
      lci::progress();
      if (lci::cq_pop(scq).error.is_done()) --owed;
    }
    lci::sync_wait(rsync, nullptr);

    for (const auto& slot : slots) {
      std::vector<char> expect(slot.buffer.size());
      fill(expect, payload_key(peer, slot.tag, slot.k));
      ASSERT_EQ(
          std::memcmp(slot.buffer.data(), expect.data(), expect.size()), 0)
          << "tag " << slot.tag << " seq " << slot.k << " size "
          << expect.size();
    }
    lci::barrier();
    lci::free_comp(&rsync);
    lci::free_comp(&scq);
    lci::g_runtime_fina();
  }, fabric);
}

INSTANTIATE_TEST_SUITE_P(
    Axes, ShardFuzz,
    ::testing::Combine(::testing::Values<std::size_t>(1, 4),
                       ::testing::Bool(), ::testing::Bool()),
    [](const auto& info) {
      return "shards" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_agg" : "") +
             (std::get<2>(info.param) ? "_trace" : "");
    });

// kill_peer() with device_shards > 1: sends buffered across several shards'
// slots (tags spread by the hash) must each surface exactly once with
// fatal_peer_down — the purge walks every shard, not just shard 0.
TEST(Shards, KillPeerPurgesEveryShard) {
  lci::runtime_attr_t attr = sharded_attr(4);
  attr.allow_aggregation = true;
  attr.aggregation_bypass_single_poster = false;
  attr.aggregation_flush_us = 1000000;  // no age flush: only the purge
  std::atomic<int> finished{0};
  lci::sim::spawn(2, [&](int rank) {
    lci::g_runtime_init(attr);
    if (rank == 0) {
      constexpr int buffered = 8;  // tags 0..7 spread over the 4 shards
      lci::comp_t cq = lci::alloc_cq();
      char bufs[buffered][16];
      for (int i = 0; i < buffered; ++i) {
        std::memset(bufs[i], 'a' + i, sizeof(bufs[i]));
        lci::status_t ss;
        do {
          ss = lci::post_send_x(1, bufs[i], sizeof(bufs[i]),
                                static_cast<lci::tag_t>(i), cq)
                   .allow_done(false)();
          if (ss.error.is_retry()) lci::progress();
        } while (ss.error.is_retry());
        ASSERT_TRUE(ss.error.is_posted());
      }
      EXPECT_TRUE(lci::kill_peer(1));
      int fatal = 0;
      while (fatal < buffered) {
        lci::progress();
        const lci::status_t st = lci::cq_pop(cq);
        if (st.error.is_retry()) continue;
        ASSERT_EQ(st.error.code, lci::errorcode_t::fatal_peer_down);
        ++fatal;
      }
      // Owed-pop audit: exactly `buffered` completions, never one more.
      for (int i = 0; i < 50; ++i) {
        lci::progress();
        EXPECT_TRUE(lci::cq_pop(cq).error.is_retry());
      }
      EXPECT_EQ(lci::flush(), 0u);  // every shard's slot died with the peer
      lci::free_comp(&cq);
    }
    finished.fetch_add(1, std::memory_order_release);
    while (finished.load(std::memory_order_acquire) < 2) {
      lci::progress();
      std::this_thread::yield();
    }
    lci::g_runtime_fina();
  });
}

// drain() with device_shards > 1: the cooperative phase force-flushes armed
// slots on every shard, so sub-operations buffered under distinct tags all
// complete done and the drain reports zero casualties.
TEST(Shards, DrainFlushesEveryShard) {
  lci::runtime_attr_t attr = sharded_attr(4);
  attr.allow_aggregation = true;
  attr.aggregation_bypass_single_poster = false;
  attr.aggregation_flush_us = 1000000;
  lci::sim::spawn(2, [&](int rank) {
    lci::g_runtime_init(attr);
    if (rank == 0) {
      constexpr int buffered = 8;
      lci::comp_t cq = lci::alloc_cq();
      char bufs[buffered][16];
      for (int i = 0; i < buffered; ++i) {
        std::memset(bufs[i], 'a' + i, sizeof(bufs[i]));
        lci::status_t ss;
        do {
          ss = lci::post_send_x(1, bufs[i], sizeof(bufs[i]),
                                static_cast<lci::tag_t>(i), cq)
                   .allow_done(false)();
          if (ss.error.is_retry()) lci::progress();
        } while (ss.error.is_retry());
        ASSERT_TRUE(ss.error.is_posted());
      }
      EXPECT_EQ(lci::drain(lci::device_t{}, 1000000), 0u);  // clean drain
      int done = 0;
      while (done < buffered) {
        lci::progress();
        const lci::status_t st = lci::cq_pop(cq);
        if (st.error.is_retry()) continue;
        EXPECT_TRUE(st.error.is_done());
        ++done;
      }
      lci::free_comp(&cq);
    } else {
      std::vector<std::array<char, 16>> inbox(8);
      lci::comp_t rsync = lci::alloc_sync(8);
      for (int i = 0; i < 8; ++i)
        (void)lci::post_recv_x(0, inbox[static_cast<std::size_t>(i)].data(),
                               16, static_cast<lci::tag_t>(i), rsync)
            .allow_done(false)();
      lci::sync_wait(rsync, nullptr);
      lci::free_comp(&rsync);
    }
    lci::barrier();
    lci::g_runtime_fina();
  });
}

// The hashed routing fallback memoizes its last (rank, tag) -> shard answer
// per thread: an unpinned sender streaming one key hits the cache on every
// post after the first, and the hits surface in route_cache_hits. A pinned
// thread never hashes, so the same traffic counts nothing.
TEST(Shards, RouteCacheCountsHashedFallbackHits) {
  lci::sim::spawn(2, [](int rank) {
    lci::g_runtime_init(sharded_attr(4));
    constexpr int messages = 16;
    if (rank == 0) {
      lci::comp_t cq = lci::alloc_cq();
      char buf[8] = "payload";
      const lci::counters_t before = lci::get_counters();
      for (int i = 0; i < messages; ++i) {
        lci::status_t ss;
        do {
          ss = lci::post_send_x(1, buf, sizeof(buf), /*tag=*/7, cq)
                   .allow_done(false)();
          if (ss.error.is_retry()) lci::progress();
        } while (ss.error.is_retry());
        ASSERT_TRUE(ss.error.is_posted());
      }
      int done = 0;
      while (done < messages) {
        lci::progress();
        if (lci::cq_pop(cq).error.is_done()) ++done;
      }
      const lci::counters_t after = lci::get_counters();
      // Same key every time: at most the first post (and stray internal
      // routes) miss; the stream must be nearly all hits.
      EXPECT_GE(after.route_cache_hits - before.route_cache_hits,
                static_cast<uint64_t>(messages - 2));
      lci::free_comp(&cq);
    } else {
      lci::comp_t rsync = lci::alloc_sync(messages);
      std::vector<std::array<char, 8>> inbox(messages);
      for (int i = 0; i < messages; ++i)
        (void)lci::post_recv_x(0, inbox[static_cast<std::size_t>(i)].data(),
                               8, /*tag=*/7, rsync)
            .allow_done(false)();
      lci::sync_wait(rsync, nullptr);
      lci::free_comp(&rsync);
    }
    lci::barrier();
    lci::g_runtime_fina();
  });
}

}  // namespace
