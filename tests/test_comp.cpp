// Completion-object tests (paper Sec. 3.2.5 / 4.1.4): handler, completion
// queue (both implementations), synchronizer, completion graph, and the
// remote-completion registry.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/lci.hpp"

namespace {

// All comp tests run inside a single simulated rank.
void with_runtime(const std::function<void()>& fn) {
  lci::sim::spawn(1, [&](int) {
    lci::runtime_attr_t attr;
    attr.matching_engine_buckets = 256;
    lci::g_runtime_init(attr);
    fn();
    lci::g_runtime_fina();
  });
}

lci::status_t make_status(int rank, lci::tag_t tag) {
  lci::status_t status;
  status.error.code = lci::errorcode_t::done;
  status.rank = rank;
  status.tag = tag;
  return status;
}

TEST(Handler, RunsInline) {
  with_runtime([] {
    int calls = 0;
    lci::comp_t handler = lci::alloc_handler([&](const lci::status_t& s) {
      ++calls;
      EXPECT_EQ(s.rank, 3);
      EXPECT_EQ(s.tag, 9u);
    });
    lci::comp_signal(handler, make_status(3, 9));
    lci::comp_signal(handler, make_status(3, 9));
    EXPECT_EQ(calls, 2);
    lci::free_comp(&handler);
    EXPECT_FALSE(handler.is_valid());
  });
}

class CqType : public ::testing::TestWithParam<lci::cq_type_t> {};

TEST_P(CqType, PushPopBasics) {
  with_runtime([&] {
    lci::comp_t cq = lci::alloc_cq_typed(GetParam(), 1024);
    EXPECT_TRUE(lci::cq_pop(cq).error.is_retry());  // empty
    lci::comp_signal(cq, make_status(1, 10));
    lci::comp_signal(cq, make_status(2, 20));
    lci::status_t a = lci::cq_pop(cq);
    ASSERT_TRUE(a.error.is_done());
    lci::status_t b = lci::cq_pop(cq);
    ASSERT_TRUE(b.error.is_done());
    EXPECT_EQ(a.rank + b.rank, 3);
    EXPECT_EQ(a.tag + b.tag, 30u);
    EXPECT_TRUE(lci::cq_pop(cq).error.is_retry());
    lci::free_comp(&cq);
  });
}

TEST_P(CqType, ManyEntriesSurvive) {
  with_runtime([&] {
    lci::comp_t cq = lci::alloc_cq_typed(GetParam(), 256);
    // LCRQ grows; the array impl wraps (we stay within capacity per round).
    for (int round = 0; round < 10; ++round) {
      for (int i = 0; i < 200; ++i)
        lci::comp_signal(cq, make_status(i, static_cast<lci::tag_t>(round)));
      for (int i = 0; i < 200; ++i)
        EXPECT_TRUE(lci::cq_pop(cq).error.is_done());
    }
    lci::free_comp(&cq);
  });
}

TEST_P(CqType, ConcurrentProducersConsumers) {
  with_runtime([&] {
    lci::comp_t cq = lci::alloc_cq_typed(GetParam(), 4096);
    constexpr int producers = 2, consumers = 2, per = 20000;
    std::atomic<long> rank_sum{0};
    std::atomic<int> popped{0};
    std::vector<std::thread> threads;
    for (int p = 0; p < producers; ++p) {
      threads.emplace_back([&] {
        for (int i = 1; i <= per; ++i) lci::comp_signal(cq, make_status(i, 0));
      });
    }
    for (int c = 0; c < consumers; ++c) {
      threads.emplace_back([&] {
        while (popped.load() < producers * per) {
          const lci::status_t s = lci::cq_pop(cq);
          if (s.error.is_done()) {
            rank_sum.fetch_add(s.rank);
            popped.fetch_add(1);
          } else {
            std::this_thread::yield();
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(rank_sum.load(),
              static_cast<long>(producers) * per * (per + 1) / 2);
    lci::free_comp(&cq);
  });
}

INSTANTIATE_TEST_SUITE_P(Impls, CqType,
                         ::testing::Values(lci::cq_type_t::lcrq,
                                           lci::cq_type_t::array),
                         [](const auto& info) {
                           return info.param == lci::cq_type_t::lcrq
                                      ? "lcrq"
                                      : "array";
                         });

TEST(Sync, SingleSignal) {
  with_runtime([] {
    lci::comp_t sync = lci::alloc_sync(1);
    lci::status_t out;
    EXPECT_FALSE(lci::sync_test(sync, &out));
    lci::comp_signal(sync, make_status(4, 44));
    ASSERT_TRUE(lci::sync_test(sync, &out));
    EXPECT_EQ(out.rank, 4);
    EXPECT_EQ(out.tag, 44u);
    // test() reset it: reusable.
    EXPECT_FALSE(lci::sync_test(sync, &out));
    lci::comp_signal(sync, make_status(5, 55));
    ASSERT_TRUE(lci::sync_test(sync, &out));
    EXPECT_EQ(out.rank, 5);
    lci::free_comp(&sync);
  });
}

TEST(Sync, ThresholdAccumulatesSignals) {
  with_runtime([] {
    lci::comp_t sync = lci::alloc_sync(3);
    lci::status_t out[3];
    lci::comp_signal(sync, make_status(1, 1));
    lci::comp_signal(sync, make_status(2, 2));
    EXPECT_FALSE(lci::sync_test(sync, out));  // 2 of 3
    lci::comp_signal(sync, make_status(3, 3));
    ASSERT_TRUE(lci::sync_test(sync, out));
    int rank_sum = 0;
    for (const auto& s : out) rank_sum += s.rank;
    EXPECT_EQ(rank_sum, 6);
    lci::free_comp(&sync);
  });
}

TEST(Sync, ConcurrentSignalers) {
  with_runtime([] {
    constexpr std::size_t threshold = 64;
    lci::comp_t sync = lci::alloc_sync(threshold);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        for (std::size_t i = 0; i < threshold / 4; ++i)
          lci::comp_signal(sync, make_status(t, 0));
      });
    }
    for (auto& th : threads) th.join();
    std::vector<lci::status_t> out(threshold);
    EXPECT_TRUE(lci::sync_test(sync, out.data()));
    lci::free_comp(&sync);
  });
}

TEST(Rcomp, RegistryLookupAndReuse) {
  with_runtime([] {
    lci::comp_t cq1 = lci::alloc_cq();
    lci::comp_t cq2 = lci::alloc_cq();
    const lci::rcomp_t a = lci::register_rcomp(cq1);
    const lci::rcomp_t b = lci::register_rcomp(cq2);
    EXPECT_NE(a, b);
    lci::deregister_rcomp(a);
    const lci::rcomp_t c = lci::register_rcomp(cq1);
    EXPECT_EQ(c, a);  // freed id recycled
    lci::deregister_rcomp(b);
    lci::deregister_rcomp(c);
    lci::free_comp(&cq1);
    lci::free_comp(&cq2);
  });
}

TEST(CompErrors, WrongKindThrows) {
  with_runtime([] {
    lci::comp_t handler = lci::alloc_handler([](const lci::status_t&) {});
    EXPECT_THROW(lci::cq_pop(handler), lci::fatal_error_t);
    EXPECT_THROW(lci::sync_test(handler, nullptr), lci::fatal_error_t);
    lci::free_comp(&handler);
  });
}

// ---------------------------------------------------------------------------
// Completion graph
// ---------------------------------------------------------------------------

lci::status_t done_now() {
  lci::status_t s;
  s.error.code = lci::errorcode_t::done;
  return s;
}

TEST(Graph, ChainExecutesInOrder) {
  with_runtime([] {
    lci::graph_t graph = lci::alloc_graph();
    std::vector<int> order;
    const auto a = lci::graph_add_node(graph, [&] {
      order.push_back(1);
      return done_now();
    });
    const auto b = lci::graph_add_node(graph, [&] {
      order.push_back(2);
      return done_now();
    });
    const auto c = lci::graph_add_node(graph, [&] {
      order.push_back(3);
      return done_now();
    });
    lci::graph_add_edge(graph, a, b);
    lci::graph_add_edge(graph, b, c);
    lci::graph_start(graph);
    EXPECT_TRUE(lci::graph_test(graph));
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    lci::free_graph(&graph);
  });
}

TEST(Graph, DiamondRespectsPartialOrder) {
  with_runtime([] {
    lci::graph_t graph = lci::alloc_graph();
    std::vector<int> order;
    const auto top = lci::graph_add_node(graph, [&] {
      order.push_back(0);
      return done_now();
    });
    const auto left = lci::graph_add_node(graph, [&] {
      order.push_back(1);
      return done_now();
    });
    const auto right = lci::graph_add_node(graph, [&] {
      order.push_back(2);
      return done_now();
    });
    const auto bottom = lci::graph_add_node(graph, [&] {
      order.push_back(3);
      return done_now();
    });
    lci::graph_add_edge(graph, top, left);
    lci::graph_add_edge(graph, top, right);
    lci::graph_add_edge(graph, left, bottom);
    lci::graph_add_edge(graph, right, bottom);
    lci::graph_start(graph);
    EXPECT_TRUE(lci::graph_test(graph));
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order.front(), 0);
    EXPECT_EQ(order.back(), 3);
    lci::free_graph(&graph);
  });
}

TEST(Graph, PostedNodesCompleteViaSignal) {
  with_runtime([] {
    lci::graph_t graph = lci::alloc_graph();
    int after_runs = 0;
    const auto pending = lci::graph_add_node(graph, [] {
      lci::status_t s;
      s.error.code = lci::errorcode_t::posted;  // completes via node comp
      return s;
    });
    const auto after = lci::graph_add_node(graph, [&] {
      ++after_runs;
      return done_now();
    });
    lci::graph_add_edge(graph, pending, after);
    lci::graph_start(graph);
    EXPECT_FALSE(lci::graph_test(graph));
    EXPECT_EQ(after_runs, 0);
    // The "operation" completes: signal the node's comp.
    lci::comp_signal(lci::graph_node_comp(graph, pending), done_now());
    EXPECT_TRUE(lci::graph_test(graph));
    EXPECT_EQ(after_runs, 1);
    lci::free_graph(&graph);
  });
}

TEST(Graph, RetryNodesRerunOnTest) {
  with_runtime([] {
    lci::graph_t graph = lci::alloc_graph();
    int attempts = 0;
    lci::graph_add_node(graph, [&] {
      lci::status_t s;
      s.error.code = ++attempts < 3 ? lci::errorcode_t::retry
                                    : lci::errorcode_t::done;
      return s;
    });
    lci::graph_start(graph);
    EXPECT_FALSE(lci::graph_test(graph));  // attempt 2 (retry again)
    EXPECT_TRUE(lci::graph_test(graph));   // attempt 3 succeeds
    EXPECT_EQ(attempts, 3);
    lci::free_graph(&graph);
  });
}

TEST(Graph, RestartReusesTheGraph) {
  with_runtime([] {
    lci::graph_t graph = lci::alloc_graph();
    int runs = 0;
    const auto a = lci::graph_add_node(graph, [&] {
      ++runs;
      return done_now();
    });
    const auto b = lci::graph_add_node(graph, [&] {
      ++runs;
      return done_now();
    });
    lci::graph_add_edge(graph, a, b);
    lci::graph_start(graph);
    EXPECT_TRUE(lci::graph_test(graph));
    lci::graph_start(graph);
    EXPECT_TRUE(lci::graph_test(graph));
    EXPECT_EQ(runs, 4);
    lci::free_graph(&graph);
  });
}

// A graph whose nodes are real communication posts: the use case the paper
// highlights (intuitive nonblocking collective implementations).
TEST(Graph, CommunicationNodes) {
  lci::sim::spawn(2, [](int rank) {
    lci::runtime_attr_t attr;
    attr.matching_engine_buckets = 256;
    lci::g_runtime_init(attr);
    const int peer = 1 - rank;

    // Two-node graph per rank: post a recv, and once it completes, send an
    // acknowledgment; ranks are symmetric.
    char inbox[32] = {};
    char outbox[32];
    snprintf(outbox, sizeof(outbox), "from %d", rank);

    lci::graph_t graph = lci::alloc_graph();
    const auto recv_node = lci::graph_add_node(graph, [&] {
      return lci::post_recv_x(peer, inbox, sizeof(inbox), 5,
                              lci::graph_node_comp(graph, 0))
          .allow_done(false)();
    });
    const auto send_node = lci::graph_add_node(graph, [&] {
      lci::status_t s =
          lci::post_send(peer, outbox, sizeof(outbox), 5, {});
      return s;
    });
    // Send first, then the recv completes the graph:
    // actually model: send -> recv (our send must go out; the recv node
    // depends on nothing remote to be *posted*, but sequencing send before
    // recv exercises a communication edge).
    lci::graph_add_edge(graph, send_node, recv_node);
    (void)recv_node;
    lci::graph_start(graph);
    while (!lci::graph_test(graph)) lci::progress();
    char expect[32];
    snprintf(expect, sizeof(expect), "from %d", peer);
    EXPECT_STREQ(inbox, expect);
    lci::free_graph(&graph);
    lci::barrier();
    lci::g_runtime_fina();
  });
}

}  // namespace
