// LCW integration tests: the same traffic patterns run over all four
// backends (lci / mpi / mpix / gex), mirroring how the paper's
// microbenchmarks exercise every library through one wrapper.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "core/lci.hpp"
#include "lcw/lcw.hpp"

namespace {

// Cross-rank startup rendezvous: traffic may only start once every rank has
// created its full device set (messages route by device index; a send racing
// context creation would land on a device nobody polls — on a real fabric
// the bootstrap's barrier provides this guarantee).
class rendezvous_t {
 public:
  explicit rendezvous_t(int n) : n_(n) {}
  void wait() {
    arrived_.fetch_add(1, std::memory_order_acq_rel);
    while (arrived_.load(std::memory_order_acquire) < n_)
      std::this_thread::yield();
  }

 private:
  const int n_;
  std::atomic<int> arrived_{0};
};

class LcwBackend : public ::testing::TestWithParam<lcw::backend_t> {};

// Each of two ranks sends `count` AMs to the other and waits for `count`
// arrivals; checks payload integrity and tag transport.
TEST_P(LcwBackend, AmPingPong) {
  const lcw::backend_t backend = GetParam();
  rendezvous_t ready(2);
  lci::sim::spawn(2, [&](int rank) {
    lcw::config_t config;
    config.ndevices = 1;
    auto ctx = lcw::alloc_context(backend, config);
    ready.wait();
    ASSERT_EQ(ctx->rank(), rank);
    ASSERT_EQ(ctx->nranks(), 2);
    lcw::device_t* dev = ctx->device(0);
    const int peer = 1 - rank;
    const int count = 50;

    int sent = 0, received = 0, send_completions = 0;
    std::vector<bool> seen(count, false);
    char payload[64];
    while (received < count || sent < count) {
      if (sent < count) {
        snprintf(payload, sizeof(payload), "msg %d from %d", sent, rank);
        const auto r = dev->post_am(peer, payload, sizeof(payload), 0);
        if (r != lcw::post_t::retry) {
          ++sent;
          if (r == lcw::post_t::posted) --send_completions;  // owed one
        }
      }
      dev->do_progress();
      lcw::request_t req;
      while (dev->poll_recv(&req)) {
        // Delivery order is not guaranteed (LCI is out-of-order by design;
        // the MPI backend's request sweep observes completions in arbitrary
        // order, like MPI_Testsome): verify each message is one the peer
        // sent, exactly once.
        int index = -1, from = -1;
        ASSERT_EQ(
            sscanf(static_cast<char*>(req.buffer), "msg %d from %d", &index,
                   &from),
            2);
        EXPECT_EQ(from, peer);
        ASSERT_GE(index, 0);
        ASSERT_LT(index, count);
        EXPECT_FALSE(seen[static_cast<std::size_t>(index)]);
        seen[static_cast<std::size_t>(index)] = true;
        EXPECT_EQ(req.rank, peer);
        std::free(req.buffer);
        ++received;
      }
      while (dev->poll_send(&req)) ++send_completions;
    }
    for (int i = 0; i < count; ++i)
      EXPECT_TRUE(seen[static_cast<std::size_t>(i)]) << "message " << i;
    // Drain any outstanding local completions before teardown.
    while (send_completions < 0) {
      dev->do_progress();
      lcw::request_t req;
      while (dev->poll_send(&req)) ++send_completions;
    }
    // Let the peer finish receiving everything we sent.
    for (int i = 0; i < 1000; ++i) dev->do_progress();
  });
}

TEST_P(LcwBackend, TaggedSendRecv) {
  const lcw::backend_t backend = GetParam();
  rendezvous_t ready(2);
  lci::sim::spawn(2, [&](int rank) {
    lcw::config_t config;
    config.ndevices = 1;
    config.enable_am = false;
    auto ctx = lcw::alloc_context(backend, config);
    ready.wait();
    if (!ctx->supports_send_recv()) {
      EXPECT_EQ(backend, lcw::backend_t::gex);  // matches the paper
      return;
    }
    lcw::device_t* dev = ctx->device(0);
    const int peer = 1 - rank;
    const std::size_t size = 1024;
    std::vector<char> out(size, static_cast<char>('a' + rank));
    std::vector<char> in(size, 0);

    ASSERT_NE(dev->post_recv(peer, in.data(), size, 0), lcw::post_t::retry);
    lcw::post_t s;
    do {
      s = dev->post_send(peer, out.data(), size, 0);
      dev->do_progress();
    } while (s == lcw::post_t::retry);

    lcw::request_t req;
    while (!dev->poll_recv(&req)) dev->do_progress();
    EXPECT_EQ(req.buffer, in.data());
    EXPECT_EQ(req.size, size);
    EXPECT_EQ(in[0], 'a' + peer);
    EXPECT_EQ(in[size - 1], 'a' + peer);
    if (s == lcw::post_t::posted) {
      while (!dev->poll_send(&req)) dev->do_progress();
    }
    for (int i = 0; i < 1000; ++i) dev->do_progress();
  });
}

// Dedicated-resource mode: multiple threads per rank, each with its own LCW
// device (lci devices / mpix VCIs), ping-ponging with its peer thread.
TEST_P(LcwBackend, MultiThreadedDedicated) {
  const lcw::backend_t backend = GetParam();
  if (backend == lcw::backend_t::mpi || backend == lcw::backend_t::gex)
    GTEST_SKIP() << "backend does not support dedicated resources";
  constexpr int nthreads = 4;
  constexpr int count = 30;
  rendezvous_t ready(2);
  lci::sim::spawn(2, [&](int rank) {
    lcw::config_t config;
    config.ndevices = nthreads;
    auto ctx = lcw::alloc_context(backend, config);
    ready.wait();
    auto binding = lci::sim::current_binding();
    std::atomic<int> threads_done{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < nthreads; ++t) {
      threads.emplace_back([&, t] {
        lci::sim::scoped_binding_t bound(binding);
        lcw::device_t* dev = ctx->device(t);
        const int peer = 1 - rank;
        int sent = 0, received = 0;
        uint64_t payload = 0;
        while (sent < count || received < count) {
          if (sent < count) {
            payload = (static_cast<uint64_t>(rank) << 32) | sent;
            if (dev->post_am(peer, &payload, sizeof(payload), t) !=
                lcw::post_t::retry)
              ++sent;
          }
          dev->do_progress();
          lcw::request_t req;
          while (dev->poll_recv(&req)) {
            EXPECT_EQ(req.tag, t);
            std::free(req.buffer);
            ++received;
          }
          lcw::request_t sreq;
          while (dev->poll_send(&sreq)) {
          }
        }
        threads_done.fetch_add(1);
        // Keep progressing until every thread on this rank is done (their
        // traffic may land on this device).
        while (threads_done.load() < nthreads) dev->do_progress();
        for (int i = 0; i < 200; ++i) dev->do_progress();
      });
    }
    for (auto& th : threads) th.join();
  });
}

INSTANTIATE_TEST_SUITE_P(AllBackends, LcwBackend,
                         ::testing::Values(lcw::backend_t::lci,
                                           lcw::backend_t::mpi,
                                           lcw::backend_t::mpix,
                                           lcw::backend_t::gex),
                         [](const auto& info) {
                           return lcw::to_string(info.param);
                         });

}  // namespace
