// minihpx (AMT runtime) and octo (octree mini-app) tests.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <thread>

#include "amt/minihpx.hpp"
#include "amt/octo.hpp"
#include "core/lci.hpp"

namespace {

// Cross-rank startup rendezvous (see DESIGN.md): no traffic before every
// rank finished creating its devices.
inline void startup_rendezvous(std::atomic<int>& arrived, int n) {
  arrived.fetch_add(1, std::memory_order_acq_rel);
  while (arrived.load(std::memory_order_acquire) < n)
    std::this_thread::yield();
}

TEST(Scheduler, RunsSpawnedTasks) {
  minihpx::scheduler_t scheduler(3);
  std::atomic<int> done{0};
  scheduler.start([](int) { return false; });
  for (int i = 0; i < 100; ++i)
    scheduler.spawn([&done] { done.fetch_add(1); });
  scheduler.run_until([&] { return done.load() == 100; });
  scheduler.stop();
  EXPECT_EQ(done.load(), 100);
}

TEST(Scheduler, TasksMaySpawnTasks) {
  minihpx::scheduler_t scheduler(2);
  std::atomic<int> countdown{64};
  scheduler.start([](int) { return false; });
  std::function<void()> fission = [&]() {
    if (countdown.fetch_sub(1) > 1) scheduler.spawn(fission);
  };
  scheduler.spawn(fission);
  scheduler.run_until([&] { return countdown.load() <= 0; });
  scheduler.stop();
  EXPECT_LE(countdown.load(), 0);
}

// Work stealing: a single task floods its own worker's deque with children;
// the other workers must steal and complete them all.
std::atomic<long> benchmark_sink{0};  // defeats optimizing the work away

TEST(Scheduler, WorkStealingBalancesUnevenSpawns) {
  minihpx::scheduler_t scheduler(4);
  std::atomic<int> done{0};
  std::atomic<int> distinct_runners{0};
  thread_local bool counted = false;
  scheduler.start([](int) { return false; });
  scheduler.spawn([&] {
    for (int i = 0; i < 400; ++i) {
      scheduler.spawn([&] {
        if (!counted) {
          counted = true;
          distinct_runners.fetch_add(1);
        }
        // A little work so stealing has time to engage.
        int x = 0;
        for (int j = 0; j < 500; ++j) x += j;
        benchmark_sink.fetch_add(x, std::memory_order_relaxed);
        done.fetch_add(1);
      });
    }
  });
  scheduler.run_until([&] { return done.load() == 400; });
  scheduler.stop();
  EXPECT_EQ(done.load(), 400);
  // On a timeshared core we cannot guarantee >1 runner, but the count must
  // be sane and the scheduler must not have lost tasks.
  EXPECT_GE(distinct_runners.load(), 1);
  EXPECT_GE(scheduler.tasks_executed(), 401u);
}

class Parcelport : public ::testing::TestWithParam<lcw::backend_t> {};

TEST_P(Parcelport, RoundTrip) {
  const auto backend = GetParam();
  std::atomic<int> ready{0};
  lci::sim::spawn(2, [&](int rank) {
    minihpx::scheduler_t scheduler(2);
    minihpx::parcelport_config_t config;
    config.backend = backend;
    config.ndevices = backend == lcw::backend_t::mpi ? 1 : 2;
    minihpx::parcelport_t port(config, &scheduler);
    startup_rendezvous(ready, 2);
    ASSERT_EQ(port.rank(), rank);

    std::atomic<int> received{0};
    const uint32_t handler = port.register_handler(
        [&](int src, const void* data, std::size_t size) {
          EXPECT_EQ(src, 1 - rank);
          EXPECT_EQ(size, sizeof(int));
          int value;
          std::memcpy(&value, data, sizeof(value));
          EXPECT_EQ(value, 1 - rank);
          received.fetch_add(1);
        });

    scheduler.start([&port](int worker) { return port.progress(worker); });
    constexpr int count = 40;
    for (int i = 0; i < count; ++i) {
      while (!port.send_parcel(1 - rank, handler, &rank, sizeof(rank)))
        port.progress(0);
    }
    scheduler.run_until(
        [&] { return received.load() == count && port.quiescent(); });
    scheduler.stop();
    EXPECT_EQ(received.load(), count);
  });
}

INSTANTIATE_TEST_SUITE_P(Backends, Parcelport,
                         ::testing::Values(lcw::backend_t::lci,
                                           lcw::backend_t::mpi,
                                           lcw::backend_t::mpix),
                         [](const auto& info) {
                           return lcw::to_string(info.param);
                         });

// The mini-app's checksum must be bit-identical regardless of distribution,
// thread count, or parcelport backend (the computation is deterministic; only
// the communication schedule varies).
TEST(Octo, ChecksumInvariantAcrossConfigurations) {
  octo::config_t base;
  base.grid_dim = 3;
  base.subgrid_dim = 4;
  base.steps = 3;

  const auto serial = octo::run_serial(base);
  EXPECT_GT(serial.checksum, 0.0);

  for (const auto backend :
       {lcw::backend_t::lci, lcw::backend_t::mpi, lcw::backend_t::mpix}) {
    for (int nranks : {2, 3}) {
      octo::config_t config = base;
      config.backend = backend;
      config.nranks = nranks;
      config.nthreads = 2;
      config.ndevices = backend == lcw::backend_t::mpi ? 1 : 2;
      const auto result = octo::run(config);
      EXPECT_DOUBLE_EQ(result.checksum, serial.checksum)
          << lcw::to_string(backend) << " nranks=" << nranks;
      EXPECT_GT(result.parcels, 0u);
    }
  }
}

// The in-band octree reduction: per-step masses arrive at rank 0 through
// the parcel tree and must match the serial run (exactly at equal rank
// counts; within float-summation-order tolerance otherwise).
TEST(Octo, StepMassReductionMatchesSerial) {
  octo::config_t base;
  base.grid_dim = 3;
  base.subgrid_dim = 4;
  base.steps = 4;
  const auto serial = octo::run_serial(base);
  ASSERT_EQ(serial.step_mass.size(), 4u);
  // Absorbing boundaries: per-step mass strictly decreases.
  for (std::size_t s = 1; s < serial.step_mass.size(); ++s)
    EXPECT_LT(serial.step_mass[s], serial.step_mass[s - 1]);

  for (const auto backend :
       {lcw::backend_t::lci, lcw::backend_t::mpi, lcw::backend_t::mpix}) {
    octo::config_t config = base;
    config.backend = backend;
    config.nranks = 3;
    config.nthreads = 2;
    config.ndevices = backend == lcw::backend_t::mpi ? 1 : 2;
    const auto result = octo::run(config);
    ASSERT_EQ(result.step_mass.size(), 4u);
    for (std::size_t s = 0; s < 4; ++s) {
      EXPECT_NEAR(result.step_mass[s], serial.step_mass[s],
                  1e-9 * std::abs(serial.step_mass[s]))
          << lcw::to_string(backend) << " step " << s;
    }
  }
}

TEST(Octo, MoreStepsDiffuse) {
  octo::config_t config;
  config.grid_dim = 2;
  config.subgrid_dim = 4;
  config.steps = 1;
  const auto one = octo::run_serial(config);
  config.steps = 4;
  const auto four = octo::run_serial(config);
  // The relaxation with absorbing domain boundaries strictly decreases the
  // total, so more steps => smaller checksum.
  EXPECT_LT(four.checksum, one.checksum);
}

}  // namespace
