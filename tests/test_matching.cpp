// Matching engine tests (paper Sec. 4.1.3 / 3.3.2).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/matching.hpp"

namespace {

using engine_t = lci::detail::matching_engine_impl_t;
using type_t = engine_t::type_t;
using lci::matching_policy_t;

TEST(MatchingKey, PoliciesNeverCollide) {
  // The same (rank, tag) under different policies must map to distinct keys.
  const int rank = 5;
  const lci::tag_t tag = 77;
  const auto a = engine_t::default_make_key(rank, tag,
                                            matching_policy_t::rank_tag);
  const auto b = engine_t::default_make_key(rank, tag,
                                            matching_policy_t::rank_only);
  const auto c = engine_t::default_make_key(rank, tag,
                                            matching_policy_t::tag_only);
  const auto d = engine_t::default_make_key(rank, tag,
                                            matching_policy_t::none);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_NE(b, c);
  EXPECT_NE(b, d);
  EXPECT_NE(c, d);
}

TEST(MatchingKey, WildcardsIgnoreTheWildcardedField) {
  // rank_only: any tag matches the same key.
  EXPECT_EQ(
      engine_t::default_make_key(3, 1, matching_policy_t::rank_only),
      engine_t::default_make_key(3, 999, matching_policy_t::rank_only));
  // tag_only: any rank matches the same key.
  EXPECT_EQ(
      engine_t::default_make_key(0, 42, matching_policy_t::tag_only),
      engine_t::default_make_key(17, 42, matching_policy_t::tag_only));
  // rank_tag: both matter.
  EXPECT_NE(
      engine_t::default_make_key(1, 2, matching_policy_t::rank_tag),
      engine_t::default_make_key(1, 3, matching_policy_t::rank_tag));
  EXPECT_NE(
      engine_t::default_make_key(1, 2, matching_policy_t::rank_tag),
      engine_t::default_make_key(2, 2, matching_policy_t::rank_tag));
}

TEST(Matching, SendThenRecvMatches) {
  engine_t engine(64);
  int send_value, recv_value;
  const auto key = engine.make_key(0, 1, matching_policy_t::rank_tag);
  EXPECT_EQ(engine.insert(key, &send_value, type_t::send), nullptr);
  EXPECT_EQ(engine.insert(key, &recv_value, type_t::recv), &send_value);
  EXPECT_EQ(engine.size_slow(), 0u);  // fully drained
}

TEST(Matching, RecvThenSendMatches) {
  engine_t engine(64);
  int send_value, recv_value;
  const auto key = engine.make_key(0, 1, matching_policy_t::rank_tag);
  EXPECT_EQ(engine.insert(key, &recv_value, type_t::recv), nullptr);
  EXPECT_EQ(engine.insert(key, &send_value, type_t::send), &recv_value);
}

TEST(Matching, DifferentKeysDoNotMatch) {
  engine_t engine(64);
  int a, b;
  const auto k1 = engine.make_key(0, 1, matching_policy_t::rank_tag);
  const auto k2 = engine.make_key(0, 2, matching_policy_t::rank_tag);
  EXPECT_EQ(engine.insert(k1, &a, type_t::send), nullptr);
  EXPECT_EQ(engine.insert(k2, &b, type_t::recv), nullptr);
  EXPECT_EQ(engine.size_slow(), 2u);
}

TEST(Matching, FifoPerKey) {
  engine_t engine(64);
  int v1, v2, v3;
  const auto key = engine.make_key(1, 1, matching_policy_t::rank_tag);
  engine.insert(key, &v1, type_t::send);
  engine.insert(key, &v2, type_t::send);
  engine.insert(key, &v3, type_t::send);
  int r;
  EXPECT_EQ(engine.insert(key, &r, type_t::recv), &v1);
  EXPECT_EQ(engine.insert(key, &r, type_t::recv), &v2);
  EXPECT_EQ(engine.insert(key, &r, type_t::recv), &v3);
}

// Exercises the inline fast path overflow: > 2 entries per queue spills to
// the heap deque, > 3 queues per bucket spills to the overflow vector.
TEST(Matching, OverflowPathsPreserveSemantics) {
  engine_t engine(2);  // tiny table: everything collides into 2 buckets
  constexpr int keys = 16, per_key = 5;
  std::vector<std::vector<int>> values(keys, std::vector<int>(per_key));
  for (int k = 0; k < keys; ++k) {
    const auto key = engine.make_key(k, 0, matching_policy_t::rank_tag);
    for (int i = 0; i < per_key; ++i)
      EXPECT_EQ(engine.insert(key, &values[k][i], type_t::send), nullptr);
  }
  EXPECT_EQ(engine.size_slow(),
            static_cast<std::size_t>(keys) * per_key);
  int r;
  for (int k = 0; k < keys; ++k) {
    const auto key = engine.make_key(k, 0, matching_policy_t::rank_tag);
    for (int i = 0; i < per_key; ++i)
      EXPECT_EQ(engine.insert(key, &r, type_t::recv), &values[k][i])
          << "key " << k << " entry " << i;
  }
  EXPECT_EQ(engine.size_slow(), 0u);
}

TEST(Matching, CustomMakeKey) {
  engine_t engine(64);
  // Collapse everything onto one key: any send matches any recv.
  engine.set_make_key([](int, lci::tag_t, matching_policy_t) -> uint64_t {
    return 42;
  });
  int send_value, recv_value;
  const auto k1 = engine.make_key(1, 100, matching_policy_t::rank_tag);
  const auto k2 = engine.make_key(9, 999, matching_policy_t::tag_only);
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(engine.insert(k1, &send_value, type_t::send), nullptr);
  EXPECT_EQ(engine.insert(k2, &recv_value, type_t::recv), &send_value);
}

// Concurrent stress: every send matched exactly once, nothing lost.
TEST(Matching, ConcurrentSendRecvBalance) {
  engine_t engine(1024);
  constexpr int threads = 4;
  constexpr int per_thread = 20000;
  std::atomic<long> matches{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      int dummy;
      for (int i = 0; i < per_thread; ++i) {
        // Half the threads insert sends, half insert recvs, same key space.
        const auto key = engine.make_key(i % 97, 0,
                                         matching_policy_t::rank_tag);
        const auto type = (t % 2 == 0) ? type_t::send : type_t::recv;
        if (engine.insert(key, &dummy, type) != nullptr) matches.fetch_add(1);
      }
    });
  }
  for (auto& th : pool) th.join();
  // Every match removes one send and one recv:
  // remaining = inserted - 2 * matches.
  const long total = static_cast<long>(threads) * per_thread;
  EXPECT_EQ(engine.size_slow(),
            static_cast<std::size_t>(total - 2 * matches.load()));
  EXPECT_GT(matches.load(), 0);
}

TEST(Matching, BucketCountRoundsToPowerOfTwo) {
  engine_t engine(1000);
  EXPECT_EQ(engine.num_buckets(), 1024u);
  engine_t tiny(0);
  EXPECT_GE(tiny.num_buckets(), 2u);
}

}  // namespace
