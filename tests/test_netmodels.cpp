// End-to-end protocol correctness under every network model the fabric can
// assume: both lock models (ibv/ofi), all three thread-domain strategies,
// and the optional wire timing model. The same traffic must behave
// identically — only performance may differ.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "core/lci.hpp"

namespace {

struct model_t {
  const char* name;
  lci::net::config_t config;
};

std::vector<model_t> models() {
  using lm = lci::net::lock_model_t;
  using td = lci::net::td_strategy_t;
  std::vector<model_t> all;
  {
    lci::net::config_t c;
    c.lock_model = lm::ibv;
    c.td_strategy = td::per_qp;
    all.push_back({"ibv_per_qp", c});
  }
  {
    lci::net::config_t c;
    c.lock_model = lm::ibv;
    c.td_strategy = td::all_qp;
    all.push_back({"ibv_all_qp", c});
  }
  {
    lci::net::config_t c;
    c.lock_model = lm::ibv;
    c.td_strategy = td::none;
    all.push_back({"ibv_none", c});
  }
  {
    lci::net::config_t c;
    c.lock_model = lm::ofi;
    all.push_back({"ofi", c});
  }
  {
    lci::net::config_t c;
    c.latency_us = 200;        // visible but test-friendly
    c.bandwidth_gbps = 1.0;
    all.push_back({"ibv_timed", c});
  }
  return all;
}

class NetModels : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NetModels, ProtocolsWorkUnderEveryModel) {
  const model_t model = models()[GetParam()];
  lci::sim::spawn(
      2,
      [&](int rank) {
        lci::runtime_attr_t attr;
        attr.matching_engine_buckets = 512;
        lci::g_runtime_init(attr);
        const int peer = 1 - rank;
        lci::comp_t rcq = lci::alloc_cq();
        const lci::rcomp_t rcomp = lci::register_rcomp(rcq);
        lci::barrier();

        // One message per protocol + an AM, interleaved.
        for (const std::size_t size : {std::size_t{8}, std::size_t{1024},
                                       std::size_t{32768}}) {
          std::vector<char> out(size, static_cast<char>(rank + 1));
          std::vector<char> in(size, 0);
          lci::comp_t sync = lci::alloc_sync(1);
          lci::status_t rs =
              lci::post_recv(peer, in.data(), size, 1, sync);
          lci::comp_t ssync = lci::alloc_sync(1);
          lci::status_t ss;
          do {
            ss = lci::post_send(peer, out.data(), size, 1, ssync);
            lci::progress();
          } while (ss.error.is_retry());
          if (ss.error.is_posted()) lci::sync_wait(ssync, nullptr);
          if (rs.error.is_posted()) lci::sync_wait(sync, &rs);
          ASSERT_EQ(rs.buffer.size, size) << model.name;
          ASSERT_EQ(in[0], static_cast<char>(peer + 1)) << model.name;
          ASSERT_EQ(in[size - 1], static_cast<char>(peer + 1)) << model.name;
          lci::free_comp(&sync);
          lci::free_comp(&ssync);
        }

        char am_payload[128];
        snprintf(am_payload, sizeof(am_payload), "model am from %d", rank);
        lci::status_t ss;
        do {
          ss = lci::post_am(peer, am_payload, sizeof(am_payload), {}, rcomp);
          lci::progress();
        } while (ss.error.is_retry());
        lci::status_t arrival;
        do {
          lci::progress();
          arrival = lci::cq_pop(rcq);
        } while (!arrival.error.is_done());
        char expect[128];
        snprintf(expect, sizeof(expect), "model am from %d", peer);
        EXPECT_STREQ(static_cast<char*>(arrival.buffer.base), expect)
            << model.name;
        std::free(arrival.buffer.base);

        lci::barrier();
        lci::deregister_rcomp(rcomp);
        lci::free_comp(&rcq);
        lci::g_runtime_fina();
      },
      model.config);
}

INSTANTIATE_TEST_SUITE_P(AllModels, NetModels,
                         ::testing::Range(std::size_t{0}, models().size()),
                         [](const auto& info) {
                           return models()[info.param].name;
                         });

// RMA under the timing model: the put's remote notification is delayed but
// the data lands; the notification must still pair with the right window.
TEST(NetModels, RmaWithTimingModel) {
  lci::net::config_t config;
  config.latency_us = 300;
  lci::sim::spawn(
      2,
      [&](int rank) {
        lci::runtime_attr_t attr;
        attr.matching_engine_buckets = 256;
        lci::g_runtime_init(attr);
        const int peer = 1 - rank;
        std::vector<char> window(512, 0);
        lci::mr_t mr = lci::register_memory(window.data(), window.size());
        lci::rmr_t my_rmr = lci::get_rmr(mr);
        std::vector<lci::rmr_t> rmrs(2);
        lci::allgather(&my_rmr, rmrs.data(), sizeof(lci::rmr_t));
        lci::comp_t rcq = lci::alloc_cq();
        const lci::rcomp_t rcomp = lci::register_rcomp(rcq);
        lci::barrier();

        char payload[64];
        std::memset(payload, 'p', sizeof(payload));
        lci::comp_t sync = lci::alloc_sync(1);
        lci::status_t ss;
        do {
          ss = lci::post_put_x(peer, payload, sizeof(payload), sync,
                               rmrs[static_cast<std::size_t>(peer)], 0)
                   .remote_comp(rcomp)
                   .tag(9)();
          lci::progress();
        } while (ss.error.is_retry());
        if (ss.error.is_posted()) lci::sync_wait(sync, nullptr);

        lci::status_t note;
        do {
          lci::progress();
          note = lci::cq_pop(rcq);
        } while (!note.error.is_done());
        EXPECT_EQ(note.tag, 9u);
        EXPECT_EQ(note.rank, peer);
        EXPECT_EQ(window[0], 'p');

        lci::barrier();
        lci::deregister_rcomp(rcomp);
        lci::free_comp(&rcq);
        lci::free_comp(&sync);
        lci::deregister_memory(&mr);
        lci::g_runtime_fina();
      },
      config);
}

}  // namespace
