// Failure-lifecycle tests (docs/INTERNALS.md "Failure propagation & drain"):
//  * cancel(): a parked receive completes exactly once with fatal_canceled;
//    cancel after completion refuses,
//  * deadlines: an expired .deadline(us) completes the operation exactly once
//    with fatal_timeout; a completed operation never times out retroactively,
//  * peer death: a seeded mid-traffic kill of rank 1 (2/4/8 ranks, eager and
//    rendezvous sizes, worker-polled and auto-progress modes) completes every
//    operation naming the dead rank exactly once with fatal_peer_down — no
//    hangs, no double completions,
//  * kill_peer(): the runtime hook behaves like the schedule, and posts
//    naming a dead rank fail fast with a returned (not thrown) fatal status,
//  * drain(): force-cancels parked tracked operations and reports the count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <tuple>
#include <vector>

#include "core/lci.hpp"

namespace {

lci::runtime_attr_t small_attr() {
  lci::runtime_attr_t attr;
  attr.matching_engine_buckets = 256;
  return attr;
}

// ---------------------------------------------------------------------------
// cancel()
// ---------------------------------------------------------------------------

TEST(Cancel, ParkedRecvCompletesExactlyOnceWithFatalCanceled) {
  lci::sim::spawn(2, [](int rank) {
    lci::g_runtime_init(small_attr());
    if (rank == 0) {
      char buf[64];
      lci::comp_t sync = lci::alloc_sync(1);
      lci::op_t op;
      const lci::status_t rs =
          lci::post_recv_x(1, buf, sizeof(buf), 77, sync).op_handle(&op)();
      ASSERT_TRUE(rs.error.is_posted());
      ASSERT_TRUE(op.is_valid());
      EXPECT_TRUE(lci::cancel(op));
      lci::status_t done;
      ASSERT_TRUE(lci::sync_test(sync, &done));  // signaled synchronously
      EXPECT_EQ(done.error.code, lci::errorcode_t::fatal_canceled);
      EXPECT_EQ(done.rank, 1);
      EXPECT_EQ(done.tag, 77u);
      // Exactly once: the same handle cannot be canceled again.
      EXPECT_FALSE(lci::cancel(op));
      const lci::counters_t c = lci::get_counters();
      EXPECT_EQ(c.ops_canceled, 1u);
      EXPECT_EQ(c.comp_fatal, 1u);
      lci::free_comp(&sync);
    }
    lci::g_runtime_fina();
  });
}

TEST(Cancel, CompletedRecvRefusesCancel) {
  lci::sim::spawn(2, [](int rank) {
    lci::g_runtime_init(small_attr());
    const int peer = 1 - rank;
    char in[8] = {0}, out[8] = {'h', 'i'};
    lci::comp_t sync = lci::alloc_sync(1);
    lci::op_t op;
    lci::status_t rs =
        lci::post_recv_x(peer, in, sizeof(in), 3, sync).op_handle(&op)();
    lci::status_t ss;
    do {
      ss = lci::post_send(peer, out, sizeof(out), 3, {});
      lci::progress();
    } while (ss.error.is_retry());
    if (rs.error.is_posted()) lci::sync_wait(sync, &rs);
    ASSERT_TRUE(rs.error.is_done());
    // The receive already completed: the runtime no longer owns it.
    if (op.is_valid()) {
      EXPECT_FALSE(lci::cancel(op));
    }
    EXPECT_EQ(lci::get_counters().ops_canceled, 0u);
    lci::barrier();
    lci::free_comp(&sync);
    lci::g_runtime_fina();
  });
}

TEST(Cancel, InvalidHandleRefuses) {
  lci::sim::spawn(1, [](int) {
    lci::g_runtime_init(small_attr());
    lci::op_t op;  // never filled
    EXPECT_FALSE(lci::cancel(op));
    lci::g_runtime_fina();
  });
}

// ---------------------------------------------------------------------------
// deadlines
// ---------------------------------------------------------------------------

TEST(Deadline, ExpiredRecvCompletesExactlyOnceWithFatalTimeout) {
  lci::sim::spawn(2, [](int rank) {
    lci::g_runtime_init(small_attr());
    if (rank == 0) {
      char buf[64];
      lci::comp_t sync = lci::alloc_sync(1);
      lci::op_t op;
      const lci::status_t rs = lci::post_recv_x(1, buf, sizeof(buf), 5, sync)
                                   .deadline(2000)  // 2 ms; nobody sends
                                   .op_handle(&op)();
      ASSERT_TRUE(rs.error.is_posted());
      lci::status_t done;
      lci::sync_wait(sync, &done);  // progress drives the deadline sweep
      EXPECT_EQ(done.error.code, lci::errorcode_t::fatal_timeout);
      EXPECT_EQ(done.rank, 1);
      // Exactly once: the handle is spent, extra progress changes nothing.
      EXPECT_FALSE(lci::cancel(op));
      for (int i = 0; i < 50; ++i) lci::progress();
      const lci::counters_t c = lci::get_counters();
      EXPECT_EQ(c.ops_timed_out, 1u);
      EXPECT_EQ(c.comp_fatal, 1u);
      lci::free_comp(&sync);
    }
    lci::g_runtime_fina();
  });
}

TEST(Deadline, CompletedRecvNeverTimesOutRetroactively) {
  lci::sim::spawn(2, [](int rank) {
    lci::g_runtime_init(small_attr());
    const int peer = 1 - rank;
    char in[8] = {0}, out[8] = {'o', 'k'};
    lci::comp_t sync = lci::alloc_sync(1);
    lci::status_t rs = lci::post_recv_x(peer, in, sizeof(in), 6, sync)
                           .deadline(50 * 1000)();  // generous: 50 ms
    lci::status_t ss;
    do {
      ss = lci::post_send(peer, out, sizeof(out), 6, {});
      lci::progress();
    } while (ss.error.is_retry());
    if (rs.error.is_posted()) lci::sync_wait(sync, &rs);
    if (rs.error.is_done()) {
      // Outlive the deadline, keep progressing: no late fatal completion.
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
      for (int i = 0; i < 100; ++i) lci::progress();
      const lci::counters_t c = lci::get_counters();
      EXPECT_EQ(c.ops_timed_out, 0u);
      EXPECT_EQ(c.comp_fatal, 0u);
    } else {
      // On an oversubscribed host the 50 ms can legitimately elapse before
      // the peer's send lands. The retroactivity property isn't exercised
      // this run, but the timeout must still be a clean exactly-once
      // delivery — and this rank must reach the barrier either way (an
      // early return here would hang the peer for the full ctest timeout).
      EXPECT_EQ(rs.error.code, lci::errorcode_t::fatal_timeout);
      const lci::counters_t c = lci::get_counters();
      EXPECT_EQ(c.ops_timed_out, 1u);
      EXPECT_EQ(c.comp_fatal, 1u);
    }
    lci::barrier();
    lci::free_comp(&sync);
    lci::g_runtime_fina();
  });
}

// ---------------------------------------------------------------------------
// kill_peer() + fast-fail posts
// ---------------------------------------------------------------------------

TEST(PeerDeath, KillPeerHookFailsParkedAndFuturePosts) {
  std::atomic<int> finished{0};
  lci::sim::spawn(2, [&](int rank) {
    lci::g_runtime_init(small_attr());
    if (rank == 0) {
      char buf[64];
      lci::comp_t cq = lci::alloc_cq();
      // Parked receive naming rank 1 (queued in the matching engine).
      const lci::status_t rs =
          lci::post_recv_x(1, buf, sizeof(buf), 9, cq).allow_done(false)();
      ASSERT_TRUE(rs.error.is_posted());

      EXPECT_TRUE(lci::kill_peer(1));
      EXPECT_FALSE(lci::kill_peer(1));  // already dead

      // The purge completes the parked receive with fatal_peer_down.
      lci::status_t st;
      do {
        lci::progress();
        st = lci::cq_pop(cq);
      } while (st.error.is_retry());
      EXPECT_EQ(st.error.code, lci::errorcode_t::fatal_peer_down);
      EXPECT_EQ(st.rank, 1);

      // Fast-fail: posts naming the dead rank return (not throw) fatal.
      const lci::status_t dead_recv =
          lci::post_recv(1, buf, sizeof(buf), 10, {});
      EXPECT_EQ(dead_recv.error.code, lci::errorcode_t::fatal_peer_down);
      char byte = 'x';
      const lci::status_t dead_send = lci::post_send(1, &byte, 1, 10, {});
      EXPECT_EQ(dead_send.error.code, lci::errorcode_t::fatal_peer_down);

      const lci::counters_t c = lci::get_counters();
      EXPECT_GE(c.peer_down_completions, 1u);

      // Dead peers are reported through the device attributes.
      const lci::device_attr_t attr = lci::get_attr(lci::device_t{});
      ASSERT_EQ(attr.dead_peers.size(), 1u);
      EXPECT_EQ(attr.dead_peers[0], 1);
      lci::free_comp(&cq);
    }
    finished.fetch_add(1, std::memory_order_release);
    while (finished.load(std::memory_order_acquire) < 2) {
      lci::progress();
      std::this_thread::yield();
    }
    lci::g_runtime_fina();
  });
}

// Aggregation + kill_peer(): sub-operations buffered in an aggregation slot
// for a peer that dies before any flush must each surface exactly once with
// fatal_peer_down. The owed-pop audit (drain the queue, then keep polling)
// proves none are lost and none are delivered twice.
TEST(PeerDeath, FlushToDeadPeerFailsBufferedSubOpsOnce) {
  std::atomic<int> finished{0};
  lci::sim::spawn(2, [&](int rank) {
    lci::runtime_attr_t attr = small_attr();
    attr.allow_aggregation = true;
    // The sends must park in the slot until kill_peer(); the single-poster
    // bypass would post them immediately and nothing would be buffered.
    attr.aggregation_bypass_single_poster = false;
    attr.aggregation_flush_us = 1000000;  // no age flush: only the purge
    lci::g_runtime_init(attr);
    if (rank == 0) {
      constexpr int buffered = 6;
      lci::comp_t cq = lci::alloc_cq();
      char bufs[buffered][16];
      const lci::counters_t base = lci::get_counters();
      for (int i = 0; i < buffered; ++i) {
        std::memset(bufs[i], 'a' + i, sizeof(bufs[i]));
        lci::status_t ss;
        do {
          ss = lci::post_send_x(1, bufs[i], sizeof(bufs[i]),
                                static_cast<lci::tag_t>(i), cq)
                   .allow_done(false)();
          if (ss.error.is_retry()) lci::progress();
        } while (ss.error.is_retry());
        ASSERT_TRUE(ss.error.is_posted());
      }
      EXPECT_EQ(lci::get_counters().send_coalesced - base.send_coalesced,
                static_cast<uint64_t>(buffered));

      EXPECT_TRUE(lci::kill_peer(1));

      // The purge force-fails the buffered slot: every parked sub-op comes
      // back through its own queue with fatal_peer_down.
      int fatal = 0;
      while (fatal < buffered) {
        lci::progress();
        const lci::status_t st = lci::cq_pop(cq);
        if (st.error.is_retry()) continue;
        ASSERT_EQ(st.error.code, lci::errorcode_t::fatal_peer_down);
        EXPECT_EQ(st.rank, 1);
        ++fatal;
      }
      // Owed-pop audit: exactly `buffered` completions, never one more.
      for (int i = 0; i < 50; ++i) {
        lci::progress();
        EXPECT_TRUE(lci::cq_pop(cq).error.is_retry());
      }
      // The slot died with the peer: nothing is left to flush.
      EXPECT_EQ(lci::flush(), 0u);
      const lci::counters_t c = lci::get_counters();
      EXPECT_EQ(c.peer_down_completions - base.peer_down_completions,
                static_cast<uint64_t>(buffered));
      EXPECT_EQ(c.comp_fatal - base.comp_fatal,
                static_cast<uint64_t>(buffered));
      lci::free_comp(&cq);
    }
    finished.fetch_add(1, std::memory_order_release);
    while (finished.load(std::memory_order_acquire) < 2) {
      lci::progress();
      std::this_thread::yield();
    }
    lci::g_runtime_fina();
  });
}

// ---------------------------------------------------------------------------
// drain()
// ---------------------------------------------------------------------------

TEST(Drain, ForceCancelsParkedTrackedOps) {
  lci::sim::spawn(2, [](int rank) {
    lci::g_runtime_init(small_attr());
    if (rank == 0) {
      constexpr int parked = 5;
      std::vector<std::vector<char>> bufs(parked, std::vector<char>(64));
      lci::comp_t cq = lci::alloc_cq();
      lci::op_t ops[parked];
      for (int i = 0; i < parked; ++i) {
        const lci::status_t rs =
            lci::post_recv_x(1, bufs[static_cast<std::size_t>(i)].data(), 64,
                             static_cast<lci::tag_t>(i), cq)
                .op_handle(&ops[i])();
        ASSERT_TRUE(rs.error.is_posted());
      }
      // Nothing is moving and nobody will send: the cooperative phase gives
      // up at the timeout and the force-kill phase cancels all five.
      const std::size_t killed = lci::drain(lci::device_t{}, 2000);
      EXPECT_EQ(killed, static_cast<std::size_t>(parked));
      int fatal = 0;
      lci::status_t st;
      while (!(st = lci::cq_pop(cq)).error.is_retry()) {
        EXPECT_EQ(st.error.code, lci::errorcode_t::fatal_canceled);
        ++fatal;
      }
      EXPECT_EQ(fatal, parked);
      for (auto& op : ops) EXPECT_FALSE(lci::cancel(op));  // all spent
      const lci::counters_t c = lci::get_counters();
      EXPECT_EQ(c.ops_canceled, static_cast<uint64_t>(parked));
      lci::free_comp(&cq);
    }
    lci::g_runtime_fina();
  });
}

TEST(Drain, QuiescedDeviceDrainsClean) {
  lci::sim::spawn(1, [](int) {
    lci::g_runtime_init(small_attr());
    EXPECT_EQ(lci::drain(lci::device_t{}, 5000), 0u);
    lci::g_runtime_fina();
  });
}

// ---------------------------------------------------------------------------
// Seeded mid-traffic kill of rank 1: the acceptance sweep.
// ---------------------------------------------------------------------------

// Ring traffic: every rank receives from its left neighbor and sends to its
// right neighbor while rank 1's kill schedule fires mid-stream. Each
// operation must complete exactly once — done for live pairs, fatal_peer_down
// for operations naming the dead rank (dead-rank locals see their whole world
// fail). Completion accounting is per-operation through a CQ, so a double
// completion shows up as an excess pop and a lost one as a hang (ctest
// timeout).
class KillSweep : public ::testing::TestWithParam<
                      std::tuple<int, std::size_t, bool>> {
 protected:
  int nranks() const { return std::get<0>(GetParam()); }
  std::size_t msg_size() const { return std::get<1>(GetParam()); }
  bool auto_progress() const { return std::get<2>(GetParam()); }
};

TEST_P(KillSweep, EveryOpNamingTheDeadRankFailsExactlyOnce) {
  const int n = nranks();
  const std::size_t size = msg_size();
  const bool auto_prog = auto_progress();
  constexpr int messages = 48;

  lci::net::config_t config;
  config.fault.kill_rank = 1;
  config.fault.kill_after_ops = 40;  // past the preposts, mid-traffic
  config.fault.seed = 0xdeadull;

  std::atomic<int> finished{0};
  lci::sim::spawn(
      n,
      [&](int rank) {
        lci::runtime_attr_t attr = small_attr();
        attr.prepost_depth = 16;  // keep preposts below the kill threshold
        if (auto_prog) {
          attr.auto_progress_default = true;
          attr.nprogress_threads = 2;
        }
        lci::g_runtime_init(attr);
        const int right = (rank + 1) % n;
        const int left = (rank - 1 + n) % n;

        auto step = [&] {
          if (!auto_prog) lci::progress();
          std::this_thread::yield();
        };

        lci::comp_t cq = lci::alloc_cq();
        std::vector<std::vector<char>> in(
            messages, std::vector<char>(size, 0));
        std::vector<char> out(size, static_cast<char>('A' + rank));

        // Post all receives; some fail immediately once the peer is dead.
        // `peer_down` counts both failure paths — returned by the post
        // (fast-fail on an already-dead rank) and popped from the CQ (the
        // death interrupted an in-flight operation).
        int owed = 0, done = 0, peer_down = 0;
        for (int i = 0; i < messages; ++i) {
          const lci::status_t rs =
              lci::post_recv_x(left, in[static_cast<std::size_t>(i)].data(),
                               size, static_cast<lci::tag_t>(i), cq)
                  .allow_done(false)();
          if (rs.error.is_posted()) {
            ++owed;
          } else {
            ASSERT_EQ(rs.error.code, lci::errorcode_t::fatal_peer_down);
            ++peer_down;
          }
        }
        // Send the stream; a send may fail-fast (returned fatal) once the
        // destination dies, or complete fatally through the CQ if it was
        // already in flight (e.g. a rendezvous handshake the death orphans).
        for (int i = 0; i < messages; ++i) {
          lci::status_t ss;
          do {
            ss = lci::post_send_x(right, out.data(), size,
                                  static_cast<lci::tag_t>(i), cq)
                     .allow_done(false)();
            if (ss.error.is_retry()) step();
          } while (ss.error.is_retry());
          if (ss.error.is_posted()) {
            ++owed;
          } else {
            ASSERT_EQ(ss.error.code, lci::errorcode_t::fatal_peer_down);
            ++peer_down;
          }
        }

        // Drain: every posted operation completes exactly once, normally or
        // fatally. A lost completion hangs here; a duplicated one trips the
        // owed counter below zero.
        while (owed > 0) {
          const lci::status_t st = lci::cq_pop(cq);
          if (st.error.is_retry()) {
            step();
            continue;
          }
          --owed;
          if (st.error.is_done()) {
            ++done;
          } else {
            ASSERT_EQ(st.error.code, lci::errorcode_t::fatal_peer_down)
                << "rank " << rank;
            ++peer_down;
          }
        }
        ASSERT_EQ(owed, 0);
        // Ranks bordering the dead rank (and the dead rank itself) must have
        // seen failures; pairs of live ranks complete some traffic normally.
        if (n > 2 && rank != 0 && rank != 1 && rank != 2) {
          EXPECT_EQ(peer_down, 0) << "rank " << rank;
        }
        if (rank == 2) {
          EXPECT_GT(peer_down, 0);
        }

        // No duplicate completions were queued behind the drain.
        for (int i = 0; i < 50; ++i) {
          EXPECT_TRUE(lci::cq_pop(cq).error.is_retry());
          step();
        }

        // Out-of-band teardown sync: collectives may legitimately throw here
        // (a member rank is dead), so don't use lci::barrier.
        finished.fetch_add(1, std::memory_order_release);
        while (finished.load(std::memory_order_acquire) < n) step();
        lci::free_comp(&cq);
        lci::g_runtime_fina();
      },
      config);
}

INSTANTIATE_TEST_SUITE_P(
    RanksSizesModes, KillSweep,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Values(std::size_t{8}, std::size_t{16384}),
                       ::testing::Bool()),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) <= 8 ? "_eager" : "_rdv") +
             (std::get<2>(info.param) ? "_auto" : "_polled");
    });

// ---------------------------------------------------------------------------
// Collectives with a dead member terminate fatally at every rank.
// ---------------------------------------------------------------------------

TEST(PeerDeathCollective, BarrierThrowsAtEveryLiveRank) {
  constexpr int n = 4;
  std::atomic<int> finished{0};
  lci::net::config_t config;
  config.fault.kill_rank = 1;
  config.fault.kill_after_ops = 0;  // dead from the start
  lci::sim::spawn(
      n,
      [&](int rank) {
        lci::runtime_attr_t attr = small_attr();
        // Non-neighbor ranks wait on live-but-stuck peers: the collective
        // deadline turns those waits into fatal_timeout instead of a hang.
        attr.collective_deadline_us = 200 * 1000;
        lci::g_runtime_init(attr);
        EXPECT_THROW(lci::barrier(), lci::fatal_error_t) << "rank " << rank;
        finished.fetch_add(1, std::memory_order_release);
        while (finished.load(std::memory_order_acquire) < n) {
          lci::progress();
          std::this_thread::yield();
        }
        lci::g_runtime_fina();
      },
      config);
}

}  // namespace
