// Statistics-counter tests: the protocol mix reported by get_counters must
// reflect exactly what the traffic did.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/lci.hpp"

namespace {

lci::runtime_attr_t small_attr() {
  lci::runtime_attr_t attr;
  attr.matching_engine_buckets = 256;
  return attr;
}

void exchange(int peer, std::size_t size, lci::tag_t tag) {
  std::vector<char> out(size, 'x'), in(size, 0);
  lci::comp_t sync = lci::alloc_sync(1);
  lci::status_t rs = lci::post_recv(peer, in.data(), size, tag, sync);
  lci::comp_t ssync = lci::alloc_sync(1);
  lci::status_t ss;
  do {
    ss = lci::post_send(peer, out.data(), size, tag, ssync);
    lci::progress();
  } while (ss.error.is_retry());
  if (ss.error.is_posted()) lci::sync_wait(ssync, nullptr);
  if (rs.error.is_posted()) lci::sync_wait(sync, &rs);
  lci::free_comp(&sync);
  lci::free_comp(&ssync);
}

TEST(Counters, ProtocolMixBySize) {
  lci::sim::spawn(2, [](int rank) {
    lci::g_runtime_init(small_attr());
    const int peer = 1 - rank;
    lci::reset_counters();
    lci::barrier();

    constexpr int injects = 5, bcopies = 3, rdvs = 2;
    for (int i = 0; i < injects; ++i) exchange(peer, 8, 1);        // inject
    for (int i = 0; i < bcopies; ++i) exchange(peer, 1024, 2);     // bcopy
    for (int i = 0; i < rdvs; ++i) exchange(peer, 64 * 1024, 3);   // rdv

    const lci::counters_t counters = lci::get_counters();
    // The barrier's own token exchange also counts as inject traffic, so
    // inject/recv counters are lower bounds; bcopy and rdv are exact.
    EXPECT_GE(counters.send_inject, static_cast<uint64_t>(injects));
    EXPECT_EQ(counters.send_bcopy, static_cast<uint64_t>(bcopies));
    EXPECT_EQ(counters.send_rdv, static_cast<uint64_t>(rdvs));
    EXPECT_GE(counters.recv_posted,
              static_cast<uint64_t>(injects + bcopies + rdvs));
    EXPECT_GE(counters.recv_matched,
              static_cast<uint64_t>(injects + bcopies + rdvs));
    EXPECT_GT(counters.progress_calls, 0u);
    EXPECT_EQ(counters.am_delivered, 0u);

    lci::barrier();
    lci::g_runtime_fina();
  });
}

TEST(Counters, AmAndRmaCounts) {
  lci::sim::spawn(2, [](int rank) {
    lci::g_runtime_init(small_attr());
    const int peer = 1 - rank;
    lci::comp_t rcq = lci::alloc_cq();
    const lci::rcomp_t rcomp = lci::register_rcomp(rcq);
    std::vector<char> window(256, 0);
    lci::mr_t mr = lci::register_memory(window.data(), window.size());
    lci::rmr_t my_rmr = lci::get_rmr(mr);
    std::vector<lci::rmr_t> rmrs(2);
    lci::allgather(&my_rmr, rmrs.data(), sizeof(lci::rmr_t));
    // Reset BEFORE the barrier: a peer past the barrier may deliver its AMs
    // into our progress while we are still inside it.
    lci::reset_counters();
    lci::barrier();

    // 4 active messages.
    char payload[32] = "count me";
    for (int i = 0; i < 4; ++i) {
      lci::status_t ss;
      do {
        ss = lci::post_am(peer, payload, sizeof(payload), {}, rcomp);
        lci::progress();
      } while (ss.error.is_retry());
    }
    int received = 0;
    while (received < 4) {
      lci::progress();
      lci::status_t s = lci::cq_pop(rcq);
      if (s.error.is_done()) {
        std::free(s.buffer.base);
        ++received;
      }
    }

    // 2 puts, 1 get.
    lci::comp_t sync = lci::alloc_sync(1);
    for (int i = 0; i < 2; ++i) {
      lci::status_t ss;
      do {
        ss = lci::post_put(peer, payload, sizeof(payload), sync,
                           rmrs[static_cast<std::size_t>(peer)], 0);
        lci::progress();
      } while (ss.error.is_retry());
      if (ss.error.is_posted()) lci::sync_wait(sync, nullptr);
    }
    char fetched[32];
    lci::status_t gs;
    do {
      gs = lci::post_get(peer, fetched, sizeof(fetched), sync,
                         rmrs[static_cast<std::size_t>(peer)], 0);
      lci::progress();
    } while (gs.error.is_retry());
    if (gs.error.is_posted()) lci::sync_wait(sync, nullptr);

    const lci::counters_t counters = lci::get_counters();
    EXPECT_GE(counters.send_inject, 4u);  // the four AMs (32B -> inject)
    EXPECT_EQ(counters.am_delivered, 4u);
    EXPECT_EQ(counters.rma_put, 2u);
    EXPECT_EQ(counters.rma_get, 1u);

    lci::barrier();
    lci::free_comp(&sync);
    lci::deregister_rcomp(rcomp);
    lci::free_comp(&rcq);
    lci::deregister_memory(&mr);
    lci::g_runtime_fina();
  });
}

TEST(Counters, ResetClearsEverything) {
  lci::sim::spawn(1, [](int) {
    lci::g_runtime_init(small_attr());
    lci::progress();
    EXPECT_GT(lci::get_counters().progress_calls, 0u);
    lci::reset_counters();
    EXPECT_EQ(lci::get_counters().progress_calls, 0u);
    EXPECT_EQ(lci::get_counters().send_inject, 0u);
    lci::g_runtime_fina();
  });
}

// Failure-lifecycle counters must be exact, not lower bounds: a seeded kill
// schedule (rank 1 dies on its 5th successful net post) plus one cancel()
// and one expired deadline produce known deltas. Rank 0 never calls
// progress() until rank 1 is dead, so all five wire messages from the dying
// rank evaporate at delivery — wire_dropped is exact too.
TEST(Counters, FailureDeltasFromSeededKillSchedule) {
  lci::net::config_t net_config;
  net_config.fault.kill_rank = 1;
  net_config.fault.kill_after_ops = 5;  // preposts don't count: 5 sends
  net_config.fault.seed = 0xc0ffeeull;
  std::atomic<int> finished{0};
  lci::sim::spawn(
      2,
      [&](int rank) {
        lci::g_runtime_init(small_attr());
        if (rank == 1) {
          // Five inject sends; the fifth trips the kill schedule. Inject
          // completes locally (done), so no completion object is needed.
          char byte = 'k';
          for (int i = 0; i < 5; ++i) {
            lci::status_t ss;
            do {
              ss = lci::post_send(0, &byte, 1, 7, {});
            } while (ss.error.is_retry());
          }
        } else {
          lci::reset_counters();
          lci::comp_t cq = lci::alloc_cq();
          char bufs[2][8];
          // Two receives naming the rank that is about to die. If it is
          // already dead they fail at the post (returned status); otherwise
          // they park and the purge completes them. Both paths run through
          // make_fatal_status, so peer_down_completions is 2 either way.
          int posted = 0;
          for (auto& buf : bufs) {
            const lci::status_t rs =
                lci::post_recv_x(1, buf, sizeof(buf), 8, cq)
                    .allow_done(false)();
            if (rs.error.is_posted()) ++posted;
          }
          // A parked self-receive to cancel (tag nobody sends on).
          char cbuf[8];
          lci::op_t cop;
          const lci::status_t cs =
              lci::post_recv_x(0, cbuf, sizeof(cbuf), 9, cq)
                  .op_handle(&cop)
                  .allow_done(false)();
          ASSERT_TRUE(cs.error.is_posted());
          EXPECT_TRUE(lci::cancel(cop));
          ++posted;  // the cancellation completes through the CQ
          // A self-receive with a deadline nobody will meet.
          char tbuf[8];
          lci::comp_t tsync = lci::alloc_sync(1);
          const lci::status_t ts =
              lci::post_recv_x(0, tbuf, sizeof(tbuf), 10, tsync)
                  .deadline(1500)
                  .allow_done(false)();
          ASSERT_TRUE(ts.error.is_posted());

          // Wait for the death without progressing (fabric state, not
          // wire traffic), then let the deadline lapse.
          while (lci::get_attr(lci::device_t{}).dead_peers.empty())
            std::this_thread::yield();
          std::this_thread::sleep_for(std::chrono::milliseconds(3));

          // First progress: the purge fails any parked recvs naming rank 1,
          // the sweep expires the deadline, and delivery drops the five
          // wire messages from the dead sender.
          int canceled = 0, down = 0;
          while (posted > 0) {
            lci::progress();
            const lci::status_t st = lci::cq_pop(cq);
            if (st.error.is_retry()) continue;
            --posted;
            if (st.error.code == lci::errorcode_t::fatal_canceled) ++canceled;
            if (st.error.code == lci::errorcode_t::fatal_peer_down) ++down;
          }
          lci::status_t tstat;
          lci::sync_wait(tsync, &tstat);
          EXPECT_EQ(tstat.error.code, lci::errorcode_t::fatal_timeout);
          while (lci::get_attr(lci::device_t{}).wire_dropped < 5)
            lci::progress();

          EXPECT_EQ(canceled, 1);
          const lci::counters_t c = lci::get_counters();
          EXPECT_EQ(c.ops_canceled, 1u);
          EXPECT_EQ(c.ops_timed_out, 1u);
          EXPECT_EQ(c.peer_down_completions, 2u);
          EXPECT_EQ(c.comp_fatal, 4u);
          EXPECT_EQ(lci::get_attr(lci::device_t{}).wire_dropped, 5u);
          lci::free_comp(&tsync);
          lci::free_comp(&cq);
        }
        finished.fetch_add(1, std::memory_order_release);
        while (finished.load(std::memory_order_acquire) < 2) {
          lci::progress();
          std::this_thread::yield();
        }
        lci::g_runtime_fina();
      },
      net_config);
}

TEST(Counters, RetryAndBacklogAreCounted) {
  lci::net::config_t net_config;
  net_config.wire_depth = 2;
  lci::sim::spawn(
      2,
      [&](int rank) {
        lci::g_runtime_init(small_attr());
        const int peer = 1 - rank;
        lci::barrier();
        lci::reset_counters();
        // Burst into a 2-deep wire: retries and/or backlog pushes must show.
        char byte = 'b';
        lci::comp_t scq = lci::alloc_cq();
        int owed = 0;
        for (int i = 0; i < 64; ++i) {
          const auto ss =
              lci::post_send_x(peer, &byte, 1, 9, scq).allow_retry(false)();
          if (ss.error.is_posted()) ++owed;
        }
        lci::comp_t rsync = lci::alloc_sync(64);
        char in[64];
        for (int i = 0; i < 64; ++i)
          (void)lci::post_recv_x(peer, &in[i], 1, 9, rsync)
              .allow_done(false)();
        lci::sync_wait(rsync, nullptr);
        while (owed > 0) {
          lci::progress();
          if (lci::cq_pop(scq).error.is_done()) --owed;
        }
        const lci::counters_t counters = lci::get_counters();
        EXPECT_GT(counters.retry_nomem + counters.backlog_pushed, 0u);
        lci::barrier();
        lci::free_comp(&scq);
        lci::free_comp(&rsync);
        lci::g_runtime_fina();
      },
      net_config);
}

}  // namespace
