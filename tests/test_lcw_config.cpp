// LCW configuration-knob tests: the wrapper's tuning options must actually
// steer the backends (verified through LCI's statistics counters and
// resource attributes rather than timing).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/lci.hpp"
#include "lcw/lcw.hpp"

namespace {

void rendezvous(std::atomic<int>& arrived, int n) {
  arrived.fetch_add(1, std::memory_order_acq_rel);
  while (arrived.load(std::memory_order_acquire) < n)
    std::this_thread::yield();
}

// eager_size moves the lci backend's buffer-copy/rendezvous crossover: an
// 8 KiB send is rendezvous at the 4 KiB default but buffer-copy at 16 KiB.
TEST(LcwConfig, EagerSizeMovesTheProtocolCrossover) {
  for (const std::size_t eager : {std::size_t{0}, std::size_t{16384}}) {
    std::atomic<int> ready{0};
    std::vector<uint64_t> rdv_counts(2);
    lci::sim::spawn(2, [&](int rank) {
      lcw::config_t config;
      config.ndevices = 1;
      config.enable_am = false;
      config.max_am_size = 64;  // don't let the AM limit inflate the packets
      config.eager_size = eager;
      auto ctx = lcw::alloc_context(lcw::backend_t::lci, config);
      rendezvous(ready, 2);
      lcw::device_t* dev = ctx->device(0);
      const int peer = 1 - rank;
      constexpr std::size_t size = 8192;
      std::vector<char> out(size, 'e'), in(size);

      ASSERT_NE(dev->post_recv(peer, in.data(), size, 0), lcw::post_t::retry);
      lcw::post_t s;
      do {
        s = dev->post_send(peer, out.data(), size, 0);
        dev->do_progress();
      } while (s == lcw::post_t::retry);
      lcw::request_t req;
      while (!dev->poll_recv(&req)) {
        if (!dev->do_progress()) std::this_thread::yield();
      }
      if (s == lcw::post_t::posted) {
        while (!dev->poll_send(&req)) {
          if (!dev->do_progress()) std::this_thread::yield();
        }
      }
      // The lcw lci context owns a private runtime; ask any runtime on this
      // rank... the context does not expose it, so read through the send
      // result instead: rendezvous sends report `posted`, buffer-copy sends
      // report `done`.
      rdv_counts[static_cast<std::size_t>(rank)] =
          s == lcw::post_t::posted ? 1 : 0;
      for (int i = 0; i < 500; ++i) dev->do_progress();
    });
    if (eager == 0) {
      EXPECT_EQ(rdv_counts[0], 1u) << "8KiB at default crossover: rendezvous";
      EXPECT_EQ(rdv_counts[1], 1u);
    } else {
      EXPECT_EQ(rdv_counts[0], 0u) << "8KiB under 16KiB crossover: eager";
      EXPECT_EQ(rdv_counts[1], 0u);
    }
  }
}

// npackets caps the lci backend's pool; a context with a tiny pool still
// moves traffic (retries recover), a sized one does too.
TEST(LcwConfig, NpacketsOverrideStillDeliversTraffic) {
  std::atomic<int> ready{0};
  lci::sim::spawn(2, [&](int rank) {
    lcw::config_t config;
    config.ndevices = 1;
    // Small but viable: the runtime's default device and the LCW device
    // each pre-post 128 packets; leave slack for send staging.
    config.npackets = 512;
    auto ctx = lcw::alloc_context(lcw::backend_t::lci, config);
    rendezvous(ready, 2);
    lcw::device_t* dev = ctx->device(0);
    const int peer = 1 - rank;
    constexpr int count = 100;
    char payload[512];  // buffer-copy: consumes packets
    int sent = 0, received = 0;
    while (sent < count || received < count) {
      if (sent < count) {
        if (dev->post_am(peer, payload, sizeof(payload), 0) !=
            lcw::post_t::retry)
          ++sent;
      }
      dev->do_progress();
      lcw::request_t req;
      while (dev->poll_recv(&req)) {
        std::free(req.buffer);
        ++received;
      }
      while (dev->poll_send(&req)) {
      }
    }
    EXPECT_EQ(received, count);
    for (int i = 0; i < 500; ++i) dev->do_progress();
  });
}

// The mpi backend must reject dedicated-resource requests by collapsing to
// one device, while mpix honors them — the paper's Fig. 3 feature matrix.
TEST(LcwConfig, BackendDeviceSupportMatrix) {
  std::atomic<int> ready{0};
  lci::sim::spawn(1, [&](int) {
    lcw::config_t config;
    config.ndevices = 4;
    auto lci_ctx = lcw::alloc_context(lcw::backend_t::lci, config);
    auto mpi_ctx = lcw::alloc_context(lcw::backend_t::mpi, config);
    auto mpix_ctx = lcw::alloc_context(lcw::backend_t::mpix, config);
    auto gex_ctx = lcw::alloc_context(lcw::backend_t::gex, config);
    rendezvous(ready, 1);
    EXPECT_EQ(lci_ctx->ndevices(), 4);
    EXPECT_EQ(mpi_ctx->ndevices(), 1);   // standard MPI: one global lock
    EXPECT_EQ(mpix_ctx->ndevices(), 4);  // VCI extension replicates
    EXPECT_EQ(gex_ctx->ndevices(), 1);   // no resource replication
    EXPECT_TRUE(lci_ctx->supports_send_recv());
    EXPECT_TRUE(mpi_ctx->supports_send_recv());
    EXPECT_FALSE(gex_ctx->supports_send_recv());
  });
}

}  // namespace
