// OFF allocation variants and resource-attribute queries (Sec. 3.1 / 3.2.3).
#include <gtest/gtest.h>

#include "core/lci.hpp"

namespace {

lci::runtime_attr_t small_attr() {
  lci::runtime_attr_t attr;
  attr.matching_engine_buckets = 256;
  return attr;
}

TEST(Attrs, RuntimeAttrRoundTrips) {
  lci::sim::spawn(1, [](int) {
    lci::runtime_attr_t attr = small_attr();
    attr.packet_size = 2048;
    attr.npackets = 512;
    attr.max_inject_size = 32;
    lci::g_runtime_init(attr);
    const lci::runtime_attr_t got = lci::get_attr(lci::runtime_t{});
    EXPECT_EQ(got.packet_size, 2048u);
    EXPECT_EQ(got.npackets, 512u);
    EXPECT_EQ(got.max_inject_size, 32u);
    lci::g_runtime_fina();
  });
}

TEST(Attrs, DeviceOffAndAttrs) {
  lci::sim::spawn(1, [](int) {
    lci::g_runtime_init(small_attr());
    lci::device_t device = lci::alloc_device_x().prepost_depth(17)();
    const lci::device_attr_t attr = lci::get_attr(device);
    EXPECT_EQ(attr.prepost_depth, 17u);
    EXPECT_GE(attr.net_index, 0);
    EXPECT_EQ(attr.backlog_size, 0u);
    lci::free_device(&device);
    lci::g_runtime_fina();
  });
}

TEST(Attrs, CqOffSelectsImplementation) {
  lci::sim::spawn(1, [](int) {
    lci::g_runtime_init(small_attr());
    lci::comp_t lcrq_cq = lci::alloc_cq_x().type(lci::cq_type_t::lcrq)();
    lci::comp_t array_cq =
        lci::alloc_cq_x().type(lci::cq_type_t::array).capacity(128)();
    EXPECT_EQ(lci::get_attr(lcrq_cq).kind, lci::comp_attr_t::kind_t::cq);
    EXPECT_EQ(lci::get_attr(lcrq_cq).cq_type, lci::cq_type_t::lcrq);
    EXPECT_EQ(lci::get_attr(array_cq).cq_type, lci::cq_type_t::array);
    lci::free_comp(&lcrq_cq);
    lci::free_comp(&array_cq);
    lci::g_runtime_fina();
  });
}

TEST(Attrs, SyncAndHandlerKinds) {
  lci::sim::spawn(1, [](int) {
    lci::g_runtime_init(small_attr());
    lci::comp_t sync = lci::alloc_sync_x().threshold(5)();
    lci::comp_t handler = lci::alloc_handler([](const lci::status_t&) {});
    EXPECT_EQ(lci::get_attr(sync).kind, lci::comp_attr_t::kind_t::sync);
    EXPECT_EQ(lci::get_attr(sync).sync_threshold, 5u);
    EXPECT_EQ(lci::get_attr(handler).kind, lci::comp_attr_t::kind_t::handler);
    lci::free_comp(&sync);
    lci::free_comp(&handler);
    lci::g_runtime_fina();
  });
}

TEST(Attrs, MatchingEngineOffWithCustomMakeKey) {
  lci::sim::spawn(2, [](int rank) {
    lci::g_runtime_init(small_attr());
    // Custom make_key: match on (tag mod 10) only — sends tagged 13 match
    // receives tagged 3.
    lci::matching_engine_t engine =
        lci::alloc_matching_engine_x()
            .num_buckets(64)
            .make_key([](int, lci::tag_t tag, lci::matching_policy_t) {
              return static_cast<uint64_t>(tag % 10);
            })();
    const auto attr = lci::get_attr(engine);
    EXPECT_EQ(attr.num_buckets, 64u);
    EXPECT_GE(attr.id, 2);  // after default (0) and collective (1)
    lci::barrier();

    const int peer = 1 - rank;
    int out = 7 + rank, in = -1;
    lci::comp_t sync = lci::alloc_sync(1);
    lci::status_t rs = lci::post_recv_x(peer, &in, sizeof(in), 3, sync)
                           .matching_engine(engine)();
    lci::status_t ss;
    do {
      ss = lci::post_send_x(peer, &out, sizeof(out), 13, {})
               .matching_engine(engine)();
      lci::progress();
    } while (ss.error.is_retry());
    if (rs.error.is_posted()) lci::sync_wait(sync, nullptr);
    EXPECT_EQ(in, 7 + peer);
    lci::barrier();
    lci::free_comp(&sync);
    lci::free_matching_engine(&engine);
    lci::g_runtime_fina();
  });
}

TEST(Attrs, PacketPoolOffAndAttrs) {
  lci::sim::spawn(1, [](int) {
    lci::g_runtime_init(small_attr());
    lci::packet_pool_t pool =
        lci::alloc_packet_pool_x().npackets(64).packet_size(1024)();
    const auto attr = lci::get_attr(pool);
    EXPECT_EQ(attr.npackets, 64u);
    EXPECT_EQ(attr.packet_size, 1024u);
    EXPECT_EQ(attr.pooled, 64u);  // nothing in flight
    lci::free_packet_pool(&pool);
    lci::g_runtime_fina();
  });
}

TEST(Attrs, EngineEntriesCountQueuedMessages) {
  lci::sim::spawn(1, [](int) {
    lci::g_runtime_init(small_attr());
    lci::matching_engine_t engine = lci::alloc_matching_engine({}, 64);
    int buf;
    // Post 3 receives that will never match (self rank, unused tags).
    for (lci::tag_t tag = 100; tag < 103; ++tag)
      (void)lci::post_recv_x(0, &buf, sizeof(buf), tag, {})
          .matching_engine(engine)();
    EXPECT_EQ(lci::get_attr(engine).entries, 3u);
    lci::g_runtime_fina();
  });
}

}  // namespace
